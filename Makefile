# Developer entry points. CI and the tier-1 gate run `make check`.

GO ?= go

.PHONY: build test check race bench vet

build:
	$(GO) build ./...

test: build
	$(GO) vet ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the race detector over the whole tree, including the
# instrumented protocol loop (internal/obs's live-group integration
# test) and the lock-free metrics under concurrency.
race:
	$(GO) test -race ./...

# check is the full verification: vet + race across every package (the
# transport tree — wire codec + UDP backend — and internal/core — the
# protocol loop plus the reconcile fast path's packet-drop tests — get
# their own explicit race passes so a filtered run of check's tail
# still covers them), plus the static-vs-adaptive failure-detector
# ablation in short mode (the quick cell asserts nothing but must run
# to completion), plus a quick E1 whose captured trace must pass every
# offline checker (vstrace -analyze exits non-zero on any
# paper-invariant violation) and the span profiler (vstrace -profile
# exits non-zero when any view-change span never closed — a change the
# run left unresolved), plus a quick E10 that exercises the same
# protocol over real loopback UDP sockets. The E8M runs are the
# install-mismatch gate: vsbench exits non-zero if any manufactured
# divergence escalated to a re-proposal round with reconciliation on
# (reproposal_total must be 0), on the simulator and over UDP, and the
# sim run's trace must still satisfy the offline checkers and profile
# with no unclosed spans. The admin package gets its own race pass
# (HTTP handlers racing the protocol loop's status publishes, plus the
# live-group integration tests), and the quick E1 runs once more with
# a live admin endpoint: -admin-check makes vsbench scrape its own
# /metrics and /status after the run and exit non-zero if the
# Prometheus exposition fails to parse or any member's status document
# is missing a view id. The vschaos runs are the quick chaos gate: a
# few short seeded fault plans per transport (seeded so the gate is
# reproducible), exiting non-zero on any invariant violation or
# reconvergence timeout and printing the failing seed/plan path; the
# chaos package's own race pass covers the fault filter racing the
# protocol loop.
check: build
	$(GO) vet ./... && $(GO) test -race ./...
	$(GO) test -race ./internal/transport/...
	$(GO) test -race ./internal/core
	$(GO) test -race ./internal/admin
	$(GO) run ./cmd/vsbench -exp e7 -quick
	$(GO) run ./cmd/vsbench -exp e1 -quick -admin 127.0.0.1:0 -admin-check
	$(GO) run ./cmd/vsbench -exp e1 -quick -trace-out /tmp/vsbench-e1-check.jsonl
	$(GO) run ./cmd/vstrace -analyze /tmp/vsbench-e1-check.jsonl
	$(GO) run ./cmd/vstrace -profile /tmp/vsbench-e1-check.jsonl
	$(GO) run ./cmd/vsbench -exp e10 -quick
	$(GO) run ./cmd/vsbench -exp e8m -quick -trace-out /tmp/vsbench-e8m-check.jsonl
	$(GO) run ./cmd/vstrace -analyze /tmp/vsbench-e8m-check.jsonl
	$(GO) run ./cmd/vstrace -profile /tmp/vsbench-e8m-check.jsonl
	$(GO) run ./cmd/vsbench -exp e8m -quick -transport udp
	$(GO) test -race ./internal/chaos
	$(GO) run ./cmd/vschaos -runs 3 -out /tmp/vschaos-check
	$(GO) run ./cmd/vschaos -seed 5 -transport udp -out /tmp/vschaos-check

bench:
	$(GO) test -run NONE -bench . -benchmem ./...
