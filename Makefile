# Developer entry points. CI and the tier-1 gate run `make check`.

GO ?= go

.PHONY: build test check race bench vet

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the race detector over the whole tree, including the
# instrumented protocol loop (internal/obs's live-group integration
# test) and the lock-free metrics under concurrency.
race:
	$(GO) test -race ./...

# check is the full verification: vet + race across every package, plus
# the static-vs-adaptive failure-detector ablation in short mode (the
# quick cell asserts nothing but must run to completion).
check: build
	$(GO) vet ./... && $(GO) test -race ./...
	$(GO) run ./cmd/vsbench -exp e7 -quick

bench:
	$(GO) test -run NONE -bench . -benchmem ./...
