package viewsync

// One benchmark per reproduced figure/claim (DESIGN.md §3 maps each to
// the paper). The benches wrap the experiment harness in
// internal/experiments; cmd/vsbench prints the same data as tables.
//
// Custom metrics reported via b.ReportMetric carry the paper-facing
// numbers (view counts, message counts, latencies); ns/op is the
// scenario wall time.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/transfer"
	"repro/internal/vstest"
)

// BenchmarkF1ModeTransitions drives the Figure-1 mode machine through a
// failure/repair/crash/recovery schedule on the quorum file object.
func BenchmarkF1ModeTransitions(b *testing.B) {
	illegal := 0
	transitions := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunF1(experiments.FastTiming(), int64(42+i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			illegal += r.IllegalSteps
			for _, c := range r.Transitions {
				transitions += c
			}
		}
	}
	if illegal != 0 {
		b.Fatalf("%d illegal Figure-1 steps", illegal)
	}
	b.ReportMetric(float64(transitions)/float64(b.N), "transitions/run")
}

// BenchmarkF2StructurePreservation replays Figure 2 (partition + merge)
// and verifies P6.3 plus all other properties over the trace.
func BenchmarkF2StructurePreservation(b *testing.B) {
	var subviews float64
	for i := 0; i < b.N; i++ {
		rows, violations, err := experiments.RunF2(experiments.FastTiming(), int64(42+i))
		if err != nil {
			b.Fatal(err)
		}
		if violations != 0 {
			b.Fatalf("%d property violations", violations)
		}
		final := rows[len(rows)-1]
		// The two sides must never collapse into one subview without an
		// application merge; a member arriving via an intermediate view
		// may add an extra cluster (typically exactly 2).
		if final.Subviews < 2 {
			b.Fatalf("merged view has %d subviews: clusters collapsed", final.Subviews)
		}
		subviews += float64(final.Subviews)
	}
	b.ReportMetric(subviews/float64(b.N), "merged-subviews")
}

// BenchmarkF3EViewChanges measures Figure 3's e-view change latency
// (SV-SetMerge then SubviewMerge) in a stable five-member view.
func BenchmarkF3EViewChanges(b *testing.B) {
	var svset, subview float64
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunF3(5, experiments.FastTiming(), int64(42+i))
		if err != nil {
			b.Fatal(err)
		}
		if row.Violations != 0 {
			b.Fatalf("%d property violations", row.Violations)
		}
		svset += float64(row.SVSetMergeLatency.Microseconds())
		subview += float64(row.SubviewMergeLatency.Microseconds())
	}
	b.ReportMetric(svset/float64(b.N), "svset-merge-µs")
	b.ReportMetric(subview/float64(b.N), "subview-merge-µs")
}

// BenchmarkE1MergeViewChanges reproduces the Section-5 claim: absorbing
// m members costs one view change under the partitionable model and m
// under Isis's grow-by-one rule; a true partition merge costs one.
func BenchmarkE1MergeViewChanges(b *testing.B) {
	for _, m := range []int{2, 4, 8} {
		m := m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var part, single, merge float64
			for i := 0; i < b.N; i++ {
				row, err := experiments.RunE1(m, experiments.FastTiming(), int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				part += float64(row.JoinStormPartitionable)
				single += float64(row.JoinStormSingleJoin)
				merge += float64(row.PartitionMergePartitionable)
			}
			b.ReportMetric(part/float64(b.N), "views-partitionable")
			b.ReportMetric(single/float64(b.N), "views-singlejoin")
			b.ReportMetric(merge/float64(b.N), "views-partition-merge")
		})
	}
}

// BenchmarkE2Classification contrasts the flat announcement protocol
// (Θ(n²) messages, one round) with enriched local classification (zero
// messages) after the same repair.
func BenchmarkE2Classification(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var flatMsgs, flatLat, enrLat float64
			for i := 0; i < b.N; i++ {
				row, err := experiments.RunE2(n, experiments.FastTiming(), int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				if !row.Agreement {
					b.Fatal("classifiers disagree")
				}
				flatMsgs += float64(row.FlatMsgs)
				flatLat += float64(row.FlatLatency.Microseconds())
				enrLat += float64(row.EnrichedLatency.Nanoseconds())
			}
			b.ReportMetric(flatMsgs/float64(b.N), "flat-msgs")
			b.ReportMetric(flatLat/float64(b.N), "flat-latency-µs")
			b.ReportMetric(0, "enriched-msgs")
			b.ReportMetric(enrLat/float64(b.N), "enriched-latency-ns")
		})
	}
}

// BenchmarkE3StateTransfer measures blocking vs split transfer across
// state sizes over a bandwidth-limited link.
func BenchmarkE3StateTransfer(b *testing.B) {
	for _, size := range []int{64 << 10, 1 << 20} {
		for _, strat := range []transfer.Strategy{transfer.Blocking, transfer.Split} {
			size, strat := size, strat
			b.Run(fmt.Sprintf("size=%dKiB/%v", size>>10, strat), func(b *testing.B) {
				var resume, full float64
				for i := 0; i < b.N; i++ {
					row, err := experiments.RunE3(size, strat, experiments.FastTiming(), int64(42+i))
					if err != nil {
						b.Fatal(err)
					}
					resume += float64(row.TimeToResume.Microseconds())
					full += float64(row.TimeToFull.Microseconds())
				}
				b.ReportMetric(resume/float64(b.N), "resume-µs")
				b.ReportMetric(full/float64(b.N), "full-µs")
			})
		}
	}
}

// BenchmarkE4ProblemIncidence runs the four §4 scenarios plus the
// primary-partition exhaustive check and asserts the classifier verdict.
func BenchmarkE4ProblemIncidence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE4(experiments.FastTiming(), int64(42+i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Detected != r.Expected {
				b.Fatalf("%s: detected %v, expected %v", r.Scenario, r.Detected, r.Expected)
			}
		}
	}
}

// BenchmarkE6ChurnAvailability is the false-suspicion ablation: inject
// suspicions every ~200ms for two seconds and report the surviving
// N-mode (write-available) fraction.
func BenchmarkE6ChurnAvailability(b *testing.B) {
	for _, enriched := range []bool{false, true} {
		enriched := enriched
		b.Run(fmt.Sprintf("enriched=%v", enriched), func(b *testing.B) {
			var avail, reconciles float64
			for i := 0; i < b.N; i++ {
				row, err := experiments.RunE6(200*time.Millisecond, 2*time.Second, enriched,
					experiments.FastTiming(), int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				avail += row.AvailabilityPct
				reconciles += float64(row.Reconciles)
			}
			b.ReportMetric(avail/float64(b.N), "availability-%N")
			b.ReportMetric(reconciles/float64(b.N), "reconciles")
		})
	}
}

// BenchmarkMulticastObserverOverhead measures the cost of the
// observability layer on the multicast hot path: the same stable
// three-member group pushing messages end to end, with no observer (the
// run-time's no-op fast path), with a full metrics+trace Collector, and
// with the Collector teed behind the property checker's Recorder. The
// allocs/op and ns/op deltas between the sub-benchmarks are the
// instrumentation overhead.
func BenchmarkMulticastObserverOverhead(b *testing.B) {
	run := func(b *testing.B, observer Observer) {
		net := vstest.NewNet(b, 11)
		opts := vstest.FastOptions()
		opts.LogViews = false
		opts.Observer = observer
		procs := net.StartRawN(3, opts)
		for _, p := range procs {
			p := p
			go func() {
				for range p.Events() {
				}
			}()
		}
		vstest.WaitConverged(b, procs, 15*time.Second)

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := procs[i%3].Multicast([]byte("bench")); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	}

	b.Run("nop", func(b *testing.B) { run(b, nil) })
	b.Run("collector", func(b *testing.B) {
		coll := obs.NewCollector(obs.NewRegistry(), obs.NewTracer(1024))
		run(b, coll)
	})
	b.Run("collector+recorder", func(b *testing.B) {
		coll := obs.NewCollector(obs.NewRegistry(), obs.NewTracer(1024))
		run(b, obs.Tee(NewRecorder(), coll))
	})
}

// BenchmarkE5EnrichedOverhead measures multicast throughput and join
// latency with the enriched-view machinery on and off.
func BenchmarkE5EnrichedOverhead(b *testing.B) {
	for _, enriched := range []bool{false, true} {
		enriched := enriched
		b.Run(fmt.Sprintf("enriched=%v", enriched), func(b *testing.B) {
			var tput, join float64
			for i := 0; i < b.N; i++ {
				row, err := experiments.RunE5(4, enriched, experiments.FastTiming(), int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				tput += row.Throughput
				join += float64(row.JoinLatency.Microseconds())
			}
			b.ReportMetric(tput/float64(b.N), "msgs/s")
			b.ReportMetric(join/float64(b.N), "join-µs")
		})
	}
}
