// Command lockmgr demonstrates the paper's §6.2 example: a group object
// managing a mutually-exclusive write lock that can be used only in a
// view containing a majority of processes. The shared global state — the
// identities of the lock manager and of the current holder — is exactly
// the kind of state the shared-state problems threaten.
//
// The run shows:
//
//  1. grants and releases sequenced by the manager (the view's smallest
//     member), with every member tracking the holder;
//  2. a partition isolating the holder in a minority: the holder
//     observes R-mode (its lock is no longer protected) while the
//     majority settles, frees the stale lock, and grants it again;
//  3. the heal: the returning members adopt the majority's lock state
//     and reconcile.
//
// Run with:
//
//	go run ./examples/lockmgr
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps/lockmgr"
	"repro/internal/core"
	"repro/internal/modes"
	"repro/internal/quorum"
	"repro/internal/simnet"
	"repro/internal/stable"
)

var sites = []string{"m1", "m2", "m3", "m4", "m5"}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("lockmgr: %v", err)
	}
}

func run() error {
	fabric := simnet.New(simnet.Config{Seed: 13})
	defer fabric.Close()
	reg := stable.NewRegistry()
	rw := quorum.MajorityRW(quorum.Uniform(sites...))

	ms := make([]*lockmgr.Manager, 0, len(sites))
	for _, s := range sites {
		m, err := lockmgr.Open(fabric, reg, s, core.Options{Group: "lock"}, lockmgr.Config{RW: rw, Enriched: true})
		if err != nil {
			return err
		}
		defer m.Close()
		ms = append(ms, m)
	}
	if err := waitNormal(ms, 20*time.Second); err != nil {
		return fmt.Errorf("formation: %w", err)
	}
	fmt.Println("--- five members in N-mode; m5 acquires the lock ---")
	if err := acquireRetry(ms[4], 10*time.Second); err != nil {
		return err
	}
	showHolders(ms)
	if err := ms[2].TryAcquire(); err == lockmgr.ErrBusy {
		fmt.Println("m3's acquire correctly rejected:", err)
	}

	fmt.Println("--- partitioning {m1,m2,m3} | {m4,m5}: the holder is isolated ---")
	fabric.SetPartitions([]string{"m1", "m2", "m3"}, []string{"m4", "m5"})
	if err := waitMode(ms[4], modes.Reduced, 20*time.Second); err != nil {
		return err
	}
	fmt.Printf("isolated holder m5: mode=%v HeldByMe=%v (the lock is no longer protected)\n",
		ms[4].Mode(), ms[4].HeldByMe())

	if err := waitNormal(ms[:3], 20*time.Second); err != nil {
		return err
	}
	fmt.Println("--- the majority settled; it freed the stale lock and can grant again ---")
	if err := acquireRetry(ms[0], 10*time.Second); err != nil {
		return err
	}
	showHolders(ms[:3])

	fmt.Println("--- healing: the returning members adopt the majority's state ---")
	fabric.Heal()
	if err := waitNormal(ms, 25*time.Second); err != nil {
		return err
	}
	showHolders(ms)
	for _, m := range ms {
		st := m.Stats()
		fmt.Printf("[%v] grants=%d releases=%d stale-frees=%d classifications=%v\n",
			m.Process().PID(), st.Grants, st.Releases, st.StaleFrees, st.Classifications)
	}
	if err := releaseRetry(ms[0], 10*time.Second); err != nil {
		return err
	}
	fmt.Println("--- released; done ---")
	return nil
}

func releaseRetry(m *lockmgr.Manager, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := m.Release()
		if err == nil {
			return nil
		}
		if err == lockmgr.ErrNotHolder {
			// Valid outcome: a transient view change excluded the holder
			// and the group freed its lock — exactly the semantics the
			// isolated-holder scenario demonstrates.
			fmt.Println("lock was already freed by a view change:", err)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("release: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitNormal(ms []*lockmgr.Manager, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, m := range ms {
			if m.Mode() != modes.Normal {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for N-mode")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitMode(m *lockmgr.Manager, want modes.Mode, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for m.Mode() != want {
		if time.Now().After(deadline) {
			return fmt.Errorf("%v never reached %v", m.Process().PID(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

func acquireRetry(m *lockmgr.Manager, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := m.TryAcquire()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("acquire: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func showHolders(ms []*lockmgr.Manager) {
	for _, m := range ms {
		fmt.Printf("[%v] mode=%v holder=%v heldByMe=%v\n",
			m.Process().PID(), m.Mode(), m.Holder(), m.HeldByMe())
	}
}
