// Command repfile demonstrates the paper's replicated-file group object
// (Section 3, example 1) across the full failure spectrum:
//
//  1. a five-replica file forms and serves quorum writes (N-mode);
//  2. a partition splits off a two-replica minority, which drops to
//     R-mode (reads only, possibly stale) while the majority keeps
//     writing — the Failure transition of Figure 1;
//  3. the partition heals: the stale minority Repairs into S-mode, the
//     shared-state classifier reports a *state transfer* problem, the
//     transfer tool pulls the missing state, the subviews merge (§6.2),
//     and everyone Reconciles back to N-mode;
//  4. a total failure and recovery exercises the *state creation*
//     problem from permanent storage.
//
// Run with:
//
//	go run ./examples/repfile
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps/repfile"
	"repro/internal/core"
	"repro/internal/modes"
	"repro/internal/quorum"
	"repro/internal/simnet"
	"repro/internal/stable"
)

var sites = []string{"n1", "n2", "n3", "n4", "n5"}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("repfile: %v", err)
	}
}

func run() error {
	fabric := simnet.New(simnet.Config{Seed: 7})
	defer fabric.Close()
	reg := stable.NewRegistry()
	rw := quorum.MajorityRW(quorum.Uniform(sites...))
	cfg := repfile.Config{RW: rw, Enriched: true}

	open := func(site string) (*repfile.File, error) {
		return repfile.Open(fabric, reg, site, core.Options{Group: "file"}, cfg)
	}

	files := make([]*repfile.File, 0, len(sites))
	for _, s := range sites {
		f, err := open(s)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	if err := waitModes(files, modes.Normal, 15*time.Second); err != nil {
		return fmt.Errorf("formation: %w", err)
	}
	fmt.Println("--- five replicas in N-mode; writing v1 ---")
	if err := writeRetry(files[0], []byte("contents v1"), 10*time.Second); err != nil {
		return err
	}
	show(files)

	fmt.Println("--- partitioning {n1,n2,n3} | {n4,n5} ---")
	fabric.SetPartitions([]string{"n1", "n2", "n3"}, []string{"n4", "n5"})
	if err := waitModes(files[3:], modes.Reduced, 15*time.Second); err != nil {
		return fmt.Errorf("minority to R: %w", err)
	}
	fmt.Println("minority replicas are in R-mode: reads only")
	if err := files[4].Write([]byte("rejected")); err == repfile.ErrNotWritable {
		fmt.Println("minority write correctly rejected:", err)
	}
	if err := waitModes(files[:3], modes.Normal, 15*time.Second); err != nil {
		return fmt.Errorf("majority to N: %w", err)
	}
	fmt.Println("--- majority writes v2 during the partition ---")
	if err := writeRetry(files[0], []byte("contents v2"), 10*time.Second); err != nil {
		return err
	}
	show(files)

	fmt.Println("--- healing; minority repairs and pulls the state ---")
	fabric.Heal()
	if err := waitModes(files, modes.Normal, 20*time.Second); err != nil {
		return fmt.Errorf("reconciliation: %w", err)
	}
	show(files)
	for _, f := range files {
		st := f.Stats()
		fmt.Printf("[%v] classifications=%v transfers=%d reconciles=%d\n",
			f.Process().PID(), st.Classifications, st.TransfersPulled, st.Reconciles)
	}

	fmt.Println("--- total failure: all five replicas crash ---")
	for _, f := range files {
		f.Process().Crash()
	}
	time.Sleep(100 * time.Millisecond)

	fmt.Println("--- all five sites recover; state creation from permanent storage ---")
	recovered := make([]*repfile.File, 0, len(sites))
	for _, s := range sites {
		f, err := open(s)
		if err != nil {
			return err
		}
		recovered = append(recovered, f)
	}
	if err := waitModes(recovered, modes.Normal, 20*time.Second); err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	show(recovered)
	for _, f := range recovered {
		fmt.Printf("[%v] classifications=%v\n", f.Process().PID(), f.Stats().Classifications)
		f.Close()
	}
	return nil
}

func waitModes(files []*repfile.File, want modes.Mode, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, f := range files {
			if f.Mode() != want {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			for _, f := range files {
				fmt.Printf("  %v stuck in %v\n", f.Process().PID(), f.Mode())
			}
			return fmt.Errorf("timed out waiting for mode %v", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func writeRetry(f *repfile.File, data []byte, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := f.Write(data)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("write: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func show(files []*repfile.File) {
	for _, f := range files {
		v, content, mode := f.Read()
		fmt.Printf("[%v] mode=%v version=%d content=%q\n", f.Process().PID(), mode, v, content)
	}
}
