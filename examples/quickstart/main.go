// Command quickstart is the smallest end-to-end tour of the library: it
// boots a three-member group over the simulated fabric, multicasts a few
// replicated-counter increments with view-synchronous guarantees, then
// partitions and heals the network and shows how failures surface as
// view changes carrying subview structure (the paper's Figure 2). The
// group runs instrumented — a metrics summary (view changes, latencies,
// per-kind packet counts) is printed at the end.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	viewsync "repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("quickstart: %v", err)
	}
}

func run() error {
	fabric := viewsync.NewFabric(viewsync.FabricConfig{Seed: 1})
	defer fabric.Close()
	reg := viewsync.NewRegistry()

	// Instrument the group: one shared metrics registry, one collector
	// attached to every member via Options.Observer.
	metrics := viewsync.NewMetrics()
	opts := viewsync.Options{
		Group:    "counter",
		Enriched: true,
		Observer: viewsync.NewCollector(metrics, nil),
	}

	// A tiny replicated counter: every member applies every delivered
	// increment; view synchrony's Agreement property keeps the replicas
	// identical at every view boundary.
	type member struct {
		proc    *viewsync.Process
		mu      sync.Mutex
		counter int
		views   int
	}
	sites := []string{"alpha", "beta", "gamma"}
	members := make([]*member, 0, len(sites))
	var wg sync.WaitGroup
	for _, site := range sites {
		p, err := viewsync.Start(fabric, reg, site, opts)
		if err != nil {
			return fmt.Errorf("start %s: %w", site, err)
		}
		m := &member{proc: p}
		members = append(members, m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range p.Events() {
				switch e := ev.(type) {
				case viewsync.ViewEvent:
					m.mu.Lock()
					m.views++
					m.mu.Unlock()
					fmt.Printf("[%v] view %v installed: members=%v subviews=%d\n",
						p.PID(), e.EView.ID, e.EView.Members, e.EView.Structure.NumSubviews())
				case viewsync.MsgEvent:
					m.mu.Lock()
					m.counter++
					m.mu.Unlock()
				case viewsync.EChangeEvent:
					fmt.Printf("[%v] e-view change #%d (%v)\n", p.PID(), e.Seq, e.Kind)
				}
			}
		}()
	}

	// Wait for the group to converge on one three-member view.
	if err := waitFor(5*time.Second, func() bool {
		for _, m := range members {
			if m.proc.CurrentView().Size() != len(sites) {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("convergence: %w", err)
	}
	fmt.Println("--- group formed; multicasting 10 increments ---")

	for i := 0; i < 10; i++ {
		if err := members[i%3].proc.Multicast([]byte("incr")); err != nil {
			return fmt.Errorf("multicast: %w", err)
		}
	}
	if err := waitFor(5*time.Second, func() bool {
		for _, m := range members {
			m.mu.Lock()
			n := m.counter
			m.mu.Unlock()
			if n != 10 {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("replication: %w", err)
	}
	fmt.Println("--- all replicas reached counter=10 ---")

	// Partition gamma away: the survivors install a smaller view, gamma
	// a singleton one — concurrent views, the partitionable model.
	fmt.Println("--- partitioning {alpha,beta} | {gamma} ---")
	fabric.SetPartitions([]string{"alpha", "beta"}, []string{"gamma"})
	if err := waitFor(5*time.Second, func() bool {
		return members[0].proc.CurrentView().Size() == 2 &&
			members[2].proc.CurrentView().Size() == 1
	}); err != nil {
		return fmt.Errorf("partition: %w", err)
	}

	fmt.Println("--- healing ---")
	fabric.Heal()
	if err := waitFor(5*time.Second, func() bool {
		for _, m := range members {
			if m.proc.CurrentView().Size() != len(sites) {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("heal: %w", err)
	}
	merged := members[0].proc.CurrentView()
	fmt.Printf("--- merged view has %d subviews (the paper's clusters): %v ---\n",
		merged.Structure.NumSubviews(), merged.Structure)

	for _, m := range members {
		m.proc.Leave()
	}
	wg.Wait()
	for _, m := range members {
		m.mu.Lock()
		fmt.Printf("[%v] final counter=%d, views seen=%d\n", m.proc.PID(), m.counter, m.views)
		m.mu.Unlock()
	}

	// What the run cost, from the instrumentation.
	snap := metrics.Snapshot()
	fmt.Printf("--- metrics: %d view installs, %d proposals, %d suspicions ---\n",
		snap.Counters["view.installs"], snap.Counters["view.proposals"],
		snap.Counters["fd.suspicions"])
	if h, ok := snap.Histograms["view.change_latency_s"]; ok && h.Count > 0 {
		fmt.Printf("--- view-change latency: %d samples, mean %.1fms ---\n",
			h.Count, h.Sum/float64(h.Count)*1000)
	}
	for _, kind := range []string{"hb", "data", "propose", "ack", "install"} {
		fmt.Printf("    pkts sent %-8s %6d  (%d bytes)\n",
			kind, snap.Counters["pkts.sent."+kind], snap.Counters["bytes.sent."+kind])
	}
	return nil
}

func waitFor(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}
