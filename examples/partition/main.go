// Command partition is a tour of *enriched view synchrony itself*
// (Section 6): it reproduces the scenarios of Figures 2 and 3 on a live
// group and contrasts what a process can deduce locally under enriched
// views versus flat views after the same failure schedule — the paper's
// central argument.
//
// The run shows:
//
//  1. Figure 3: within a stable view, SV-SetMerge then SubviewMerge
//     produce totally ordered e-view changes at every member;
//  2. Figure 2: across a partition and a merge, co-subview processes
//     stay co-subview (Property 6.3) and each former partition arrives
//     as a distinct cluster;
//  3. classification: the same merged view is classified locally with
//     zero messages using the enriched structure, and the sets R_v, N_v
//     and the clusters are printed; a flat-view process would need a
//     full round of announcements to learn the same thing.
//
// Run with:
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"log"
	"time"

	viewsync "repro"
)

var sites = []string{"p1", "p2", "p3", "p4", "p5"}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("partition: %v", err)
	}
}

func run() error {
	fabric := viewsync.NewFabric(viewsync.FabricConfig{Seed: 5})
	defer fabric.Close()
	reg := viewsync.NewRegistry()

	procs := make([]*viewsync.Process, 0, len(sites))
	for _, s := range sites {
		p, err := viewsync.Start(fabric, reg, s, viewsync.Options{Group: "demo", Enriched: true})
		if err != nil {
			return err
		}
		procs = append(procs, p)
		go drain(p)
	}
	if err := converged(procs, len(sites), 10*time.Second); err != nil {
		return err
	}
	v := procs[0].CurrentView()
	fmt.Printf("formed view %v with %d singleton subviews (every joiner arrives alone)\n",
		v.ID, v.Structure.NumSubviews())

	// --- Figure 3: application-controlled merges within one view ---
	fmt.Println("--- Figure 3: SV-SetMerge of all five sv-sets, then SubviewMerge ---")
	if err := mergeRetry(procs[0], true, 10*time.Second); err != nil {
		return err
	}
	if err := waitStructure(procs, 10*time.Second, "one sv-set", func(v viewsync.EView) bool {
		return v.Structure.NumSVSets() == 1
	}); err != nil {
		return err
	}
	v = procs[0].CurrentView()
	fmt.Printf("after SV-SetMerge: %d sv-sets, %d subviews\n", v.Structure.NumSVSets(), v.Structure.NumSubviews())
	if err := mergeRetry(procs[0], false, 10*time.Second); err != nil {
		return err
	}
	if err := waitStructure(procs, 10*time.Second, "one subview", func(v viewsync.EView) bool {
		return v.Structure.NumSubviews() == 1
	}); err != nil {
		return err
	}
	v = procs[0].CurrentView()
	fmt.Printf("after SubviewMerge: %v\n", v.Structure)
	fmt.Println("every member applied the two e-view changes in the same order (P6.1)")

	// --- Figure 2: partition, then merge ---
	fmt.Println("--- partitioning {p1,p2,p3} | {p4,p5} ---")
	fabric.SetPartitions([]string{"p1", "p2", "p3"}, []string{"p4", "p5"})
	if err := converged(procs[:3], 3, 10*time.Second); err != nil {
		return err
	}
	if err := converged(procs[3:], 2, 10*time.Second); err != nil {
		return err
	}
	left := procs[0].CurrentView()
	right := procs[3].CurrentView()
	fmt.Printf("left view  %v: %v\n", left.ID, left.Structure)
	fmt.Printf("right view %v: %v\n", right.ID, right.Structure)
	fmt.Println("failures only shrink structure: each side is the restriction of the merged subview")

	fmt.Println("--- healing ---")
	fabric.Heal()
	if err := converged(procs, len(sites), 15*time.Second); err != nil {
		return err
	}
	merged := procs[0].CurrentView()
	fmt.Printf("merged view %v: %v\n", merged.ID, merged.Structure)
	fmt.Println("Property 6.3: {p1,p2,p3} still share a subview; {p4,p5} share another")

	// --- local classification (§6.2) ---
	fmt.Println("--- classifying the shared-state problem locally, zero messages ---")
	rw := viewsync.MajorityRW(viewsync.UniformVoting(sites...))
	class := viewsync.ClassifyEnriched(merged, func(cluster viewsync.PIDSet) bool {
		return rw.CanWrite(cluster)
	})
	fmt.Printf("kind      = %v\n", class.Kind)
	fmt.Printf("N_v       = %v (the up-to-date cluster)\n", class.NSet)
	fmt.Printf("R_v       = %v (processes needing a state transfer)\n", class.RSet)
	fmt.Printf("clusters  = %d\n", len(class.Clusters))
	fmt.Println("a flat-view process would need announcements from all 5 members (n² messages)")
	fmt.Println("to distinguish this transfer problem from creation or merging — see §4.")

	for _, p := range procs {
		p.Leave()
	}
	return nil
}

func drain(p *viewsync.Process) {
	for range p.Events() {
	}
}

func converged(procs []*viewsync.Process, size int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		var ref viewsync.ViewID
		for i, p := range procs {
			v := p.CurrentView()
			if v.Size() != size {
				ok = false
				break
			}
			if i == 0 {
				ref = v.ID
			} else if v.ID != ref {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for convergence at size %d", size)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// mergeRetry issues an SV-SetMerge (svsets=true) or SubviewMerge of the
// whole current structure, retrying through transient view changes with
// freshly resolved identifiers.
func mergeRetry(p *viewsync.Process, svsets bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		v := p.CurrentView()
		var err error
		if svsets {
			sss := v.Structure.SVSets()
			if len(sss) < 2 {
				return nil // already merged
			}
			err = p.SVSetMerge(sss...)
		} else {
			svs := v.Structure.Subviews()
			if len(svs) < 2 {
				return nil
			}
			err = p.SubviewMerge(svs...)
		}
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("merge: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitStructure(procs []*viewsync.Process, timeout time.Duration, what string, pred func(viewsync.EView) bool) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, p := range procs {
			if !pred(p.CurrentView()) {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
