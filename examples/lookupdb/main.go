// Command lookupdb demonstrates the paper's second group-object example
// (Section 3): a fully replicated look-up database whose query is
// performed in parallel by the members, each responsible for a subset of
// the database. For this object R-mode does not exist — look-ups serve
// in any view — and every view change passes through S-mode to redefine
// the division of responsibility.
//
// The run shows:
//
//  1. inserts replicating to every member, and the responsibility
//     assignment partitioning the keyspace exactly once;
//  2. a network partition with *independent* inserts on both sides —
//     progress in concurrent partitions, which the primary-partition
//     model forbids;
//  3. the heal: the classifier reports a *state merging* problem, one
//     representative per subview dumps its cluster's data (enriched
//     views know who diverged; flat views would make everyone dump),
//     and the add-only union reconciles the replicas.
//
// Run with:
//
//	go run ./examples/lookupdb
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps/lookupdb"
	"repro/internal/core"
	"repro/internal/modes"
	"repro/internal/simnet"
	"repro/internal/stable"
)

var sites = []string{"u1", "u2", "u3", "u4"}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("lookupdb: %v", err)
	}
}

func run() error {
	fabric := simnet.New(simnet.Config{Seed: 11})
	defer fabric.Close()
	reg := stable.NewRegistry()

	dbs := make([]*lookupdb.DB, 0, len(sites))
	for _, s := range sites {
		db, err := lookupdb.Open(fabric, reg, s, core.Options{Group: "db"}, lookupdb.Config{Enriched: true})
		if err != nil {
			return err
		}
		defer db.Close()
		dbs = append(dbs, db)
	}
	if err := waitNormal(dbs, 15*time.Second); err != nil {
		return fmt.Errorf("formation: %w", err)
	}

	fmt.Println("--- inserting 12 records ---")
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("user:%04d", i)
		if err := insertRetry(dbs[i%len(dbs)], key, fmt.Sprintf("record-%d", i), 10*time.Second); err != nil {
			return err
		}
	}
	if err := waitLen(dbs, 12, 10*time.Second); err != nil {
		return err
	}
	fmt.Println("--- parallel query: each member searches only its share ---")
	total := 0
	for _, db := range dbs {
		mine := db.ScanMine()
		total += len(mine)
		fmt.Printf("[%v] responsible for %d keys: %v\n", db.Process().PID(), len(mine), mine)
	}
	fmt.Printf("shares cover %d keys in total (every key searched exactly once)\n", total)

	fmt.Println("--- partitioning {u1,u2} | {u3,u4}; both sides keep serving ---")
	fabric.SetPartitions([]string{"u1", "u2"}, []string{"u3", "u4"})
	if err := waitView(dbs[0], 2, 15*time.Second); err != nil {
		return err
	}
	if err := waitView(dbs[2], 2, 15*time.Second); err != nil {
		return err
	}
	if err := waitNormal(dbs, 15*time.Second); err != nil {
		return err
	}
	if err := insertRetry(dbs[0], "left:exclusive", "L", 10*time.Second); err != nil {
		return err
	}
	if err := insertRetry(dbs[2], "right:exclusive", "R", 10*time.Second); err != nil {
		return err
	}
	fmt.Println("left partition inserted left:exclusive; right inserted right:exclusive")
	if _, ok := dbs[0].Lookup("right:exclusive"); ok {
		return fmt.Errorf("left side sees right-side insert during partition")
	}
	fmt.Println("lookups keep working on both sides (R-mode does not exist for this object)")

	fmt.Println("--- healing: state merging via add-only union ---")
	fabric.Heal()
	if err := waitView(dbs[0], 4, 20*time.Second); err != nil {
		return err
	}
	if err := waitNormal(dbs, 20*time.Second); err != nil {
		return err
	}
	if err := waitLen(dbs, 14, 10*time.Second); err != nil {
		return err
	}
	for _, db := range dbs {
		l, _ := db.Lookup("left:exclusive")
		r, _ := db.Lookup("right:exclusive")
		st := db.Stats()
		fmt.Printf("[%v] keys=%d left=%q right=%q classifications=%v dumps=%d\n",
			db.Process().PID(), db.Len(), l, r, st.Classifications, st.DumpsSent)
	}
	return nil
}

func waitNormal(dbs []*lookupdb.DB, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, db := range dbs {
			if db.Mode() != modes.Normal {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for N-mode")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitLen(dbs []*lookupdb.DB, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, db := range dbs {
			if db.Len() < want {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %d keys", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitView(db *lookupdb.DB, size int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for db.Process().CurrentView().Size() != size {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for view of %d at %v", size, db.Process().PID())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

func insertRetry(db *lookupdb.DB, k, v string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := db.Insert(k, v)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("insert %q: %w", k, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
