// Package viewsync is the public facade of the enriched view synchrony
// library — a Go implementation of the programming model of Babaoğlu,
// Bartoli and Dini, "On Programming with View Synchrony" (ICDCS 1996).
//
// The library provides, over a simulated asynchronous partitionable
// network (Fabric):
//
//   - a partitionable group membership service integrated with reliable
//     multicast satisfying the view synchrony properties — Agreement,
//     Uniqueness, Integrity (paper §2);
//   - the enriched view extension: subviews and subview-sets that shrink
//     on failures and grow only under application control, with totally
//     ordered, causally cut-consistent e-view changes whose structure
//     survives view changes (paper §6);
//   - the application model of §3: NORMAL / REDUCED / SETTLING execution
//     modes with the Figure-1 transitions;
//   - the shared state machinery of §4: classification of state
//     transfer / creation / merging problems, both locally from enriched
//     views and via the costly protocol flat views force;
//   - an Isis-style state transfer tool (§5), last-process-to-fail
//     determination, weighted voting quorums, and trace-based property
//     checkers;
//   - three complete group objects built on the model: a quorum
//     replicated file, a parallel look-up database, and a majority lock
//     manager.
//
// Quick start:
//
//	fabric := viewsync.NewFabric(viewsync.FabricConfig{})
//	defer fabric.Close()
//	reg := viewsync.NewRegistry()
//	p, err := viewsync.Start(fabric, reg, "site-a", viewsync.Options{Group: "demo", Enriched: true})
//	if err != nil { ... }
//	p.Multicast([]byte("hello"))
//	for ev := range p.Events() {
//		switch e := ev.(type) {
//		case viewsync.ViewEvent:    // new view installed
//		case viewsync.EChangeEvent: // subview / sv-set merge applied
//		case viewsync.MsgEvent:     // message delivered
//		}
//	}
//
// See examples/ for runnable programs and DESIGN.md for the paper-to-code
// map.
package viewsync

import (
	"repro/internal/admin"
	"repro/internal/check"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/evs"
	"repro/internal/gobject"
	"repro/internal/ids"
	"repro/internal/lastfail"
	"repro/internal/modes"
	"repro/internal/obs"
	"repro/internal/quorum"
	"repro/internal/simnet"
	"repro/internal/sstate"
	"repro/internal/stable"
	"repro/internal/transfer"
	"repro/internal/transport"
	"repro/internal/transport/udp"
)

// Identifier types (paper §2: process identifiers come from an infinite
// name space; recovery yields a fresh identifier).
type (
	// PID identifies one incarnation of a process: (site, incarnation).
	PID = ids.PID
	// ViewID identifies an installed view.
	ViewID = ids.ViewID
	// MsgID identifies a multicast message.
	MsgID = ids.MsgID
	// SubviewID identifies a subview (enriched views, §6).
	SubviewID = ids.SubviewID
	// SVSetID identifies a subview-set (enriched views, §6).
	SVSetID = ids.SVSetID
	// PIDSet is a set of process identifiers.
	PIDSet = ids.PIDSet
)

// NewPIDSet builds a PIDSet from members.
func NewPIDSet(members ...PID) PIDSet { return ids.NewPIDSet(members...) }

// Network transports. Transport is the pluggable seam every run-time
// layer consumes; Fabric (the simulated network) is the default
// implementation, and UDPTransport carries the same protocol over real
// loopback/LAN sockets.
type (
	// Transport is the abstract network: endpoint attachment, broadcast
	// discovery, per-kind traffic statistics.
	Transport = transport.Transport
	// TransportEndpoint is one process's attachment to a Transport.
	TransportEndpoint = transport.Endpoint
	// Partitioner is the optional fault-injection surface of a
	// Transport (both Fabric and UDPTransport implement it).
	Partitioner = transport.Partitioner
	// Fabric is the simulated network: delays, losses, partitions.
	Fabric = simnet.Fabric
	// FabricConfig parametrizes a Fabric.
	FabricConfig = simnet.Config
	// DelayModel produces per-message latencies.
	DelayModel = simnet.DelayModel
	// FabricStats are a transport's message counters.
	FabricStats = transport.Stats
	// UDPTransport carries the protocol over real UDP sockets.
	UDPTransport = udp.Transport
	// UDPConfig parametrizes a UDPTransport.
	UDPConfig = udp.Config
)

// NewFabric creates a running fabric.
func NewFabric(cfg FabricConfig) *Fabric { return simnet.New(cfg) }

// NewUDP creates a transport over real UDP sockets (loopback by
// default); see the udp package for LAN use.
func NewUDP(cfg UDPConfig) *UDPTransport { return udp.New(cfg) }

// NewUniformDelay returns a uniform [min,max] latency model.
var NewUniformDelay = simnet.NewUniformDelay

// Stable storage (crash-surviving per-site state, §3).
type (
	// Registry hands out per-site stable stores.
	Registry = stable.Registry
	// Store is one site's permanent storage.
	Store = stable.Store
	// ViewRecord is one persisted view-log entry.
	ViewRecord = stable.ViewRecord
)

// NewRegistry creates an empty storage registry.
func NewRegistry() *Registry { return stable.NewRegistry() }

// The view synchrony run-time (§2 + §6).
type (
	// Process is a group member: the application's handle on the
	// run-time.
	Process = core.Process
	// Options configures a Process.
	Options = core.Options
	// EView is an enriched view: composition + subview/sv-set structure.
	EView = core.EView
	// Event is a delivered event; one of MsgEvent, ViewEvent,
	// EChangeEvent.
	Event = core.Event
	// MsgEvent is a message delivery.
	MsgEvent = core.MsgEvent
	// ViewEvent is a view installation.
	ViewEvent = core.ViewEvent
	// EChangeEvent is an applied e-view change.
	EChangeEvent = core.EChangeEvent
	// ProcessStats are per-process counters.
	ProcessStats = core.Stats
	// Structure is the subview / sv-set decomposition of a view.
	Structure = evs.Structure
	// Observer receives synchronous event callbacks (tracing).
	Observer = core.Observer
	// VectorClock is a vector timestamp.
	VectorClock = clock.Vector
)

// Start boots a new incarnation of site on the transport (a *Fabric or
// a *UDPTransport) and joins its group. See core.Start.
func Start(tr Transport, reg *Registry, site string, opts Options) (*Process, error) {
	return core.Start(tr, reg, site, opts)
}

// Run-time errors.
var (
	// ErrStopped is returned by Process methods after Leave/Crash.
	ErrStopped = core.ErrStopped
	// ErrBlocked is returned while a view change is in progress.
	ErrBlocked = core.ErrBlocked
)

// The simulation-speed timing profile every fast harness in this repo
// runs with (see experiments.FastTiming).
const (
	SimHeartbeatEvery = core.SimHeartbeatEvery
	SimSuspectAfter   = core.SimSuspectAfter
	SimTick           = core.SimTick
	SimProposeTimeout = core.SimProposeTimeout
)

// The application model (§3, Figure 1).
type (
	// Mode is a group-object execution mode (N / R / S).
	Mode = modes.Mode
	// Transition labels Figure-1 edges.
	Transition = modes.Transition
	// ModeMachine enforces the Figure-1 transitions.
	ModeMachine = modes.Machine
	// ModeFunc maps views to target modes.
	ModeFunc = modes.Func
	// ModeStep is one recorded transition.
	ModeStep = modes.Step
)

// The three modes and four transitions of Figure 1.
const (
	Normal   = modes.Normal
	Reduced  = modes.Reduced
	Settling = modes.Settling

	Failure     = modes.Failure
	Repair      = modes.Repair
	Reconfigure = modes.Reconfigure
	Reconcile   = modes.Reconcile
)

// NewModeMachine creates a Figure-1 machine for the first installed view.
func NewModeMachine(fn ModeFunc, first EView) *ModeMachine { return modes.NewMachine(fn, first) }

// Mode-function library.
var (
	// AlwaysSettle: the look-up database example (§3).
	AlwaysSettle = modes.AlwaysSettle
	// QuorumEnriched: the replicated-file example on enriched views
	// (§6.2 local reasoning).
	QuorumEnriched = modes.QuorumEnriched
	// QuorumFlat: the replicated-file example on flat views.
	QuorumFlat = modes.QuorumFlat
)

// Shared state classification (§4).
type (
	// ProblemKind is the incarnation of the shared state problem.
	ProblemKind = sstate.Kind
	// Classification is a classifier verdict with its inducing sets.
	Classification = sstate.Classification
	// WasNormal judges whether a cluster served in N-mode.
	WasNormal = sstate.WasNormal
	// FlatProtocol collects the announcement round flat views need.
	FlatProtocol = sstate.Protocol
)

// The shared-state problem kinds.
const (
	ProblemNone            = sstate.None
	ProblemTransfer        = sstate.Transfer
	ProblemCreation        = sstate.Creation
	ProblemMerging         = sstate.Merging
	ProblemTransferMerging = sstate.TransferMerging
)

// ClassifyEnriched classifies locally from an enriched view (§6.2).
func ClassifyEnriched(v EView, wasN WasNormal) Classification {
	return sstate.ClassifyEnriched(v, wasN)
}

// NewFlatProtocol starts a flat-view classification round for v.
func NewFlatProtocol(v EView) *FlatProtocol { return sstate.NewProtocol(v) }

// Quorums (weighted voting for the replicated-file example).
type (
	// Voting assigns votes to sites.
	Voting = quorum.Voting
	// RW is a read/write quorum system.
	RW = quorum.RW
)

// Quorum constructors.
var (
	// NewVoting validates a vote assignment.
	NewVoting = quorum.New
	// UniformVoting assigns one vote per site.
	UniformVoting = quorum.Uniform
	// NewRW validates read/write thresholds.
	NewRW = quorum.NewRW
	// MajorityRW builds the symmetric majority system.
	MajorityRW = quorum.MajorityRW
)

// State transfer (§5).
type (
	// TransferTool moves application state from a donor to a joiner.
	TransferTool = transfer.Tool
	// TransferApp is the application callback interface.
	TransferApp = transfer.App
	// TransferOptions configures a tool.
	TransferOptions = transfer.Options
	// TransferStrategy selects Blocking or Split shipping.
	TransferStrategy = transfer.Strategy
	// TransferProgress reports reception progress.
	TransferProgress = transfer.Progress
)

// The transfer strategies of §5.
const (
	TransferBlocking = transfer.Blocking
	TransferSplit    = transfer.Split
)

// NewTransferTool creates a transfer tool for p.
func NewTransferTool(p *Process, app TransferApp, opts TransferOptions) *TransferTool {
	return transfer.New(p, app, opts)
}

// Last-process-to-fail determination (state creation, §4).
type (
	// LastFailResult is the outcome of the determination.
	LastFailResult = lastfail.Result
)

// DetermineLastToFail analyzes persisted view logs.
func DetermineLastToFail(logs map[string][]ViewRecord) LastFailResult {
	return lastfail.Determine(logs)
}

// Group-object framework: the reusable harness for building replicated
// objects on the application model (internal/gobject).
type (
	// GroupObject is the application-specific part of a group object.
	GroupObject = gobject.Object
	// ObjectHost runs one replica of a GroupObject: it owns the event
	// loop, the mode machine, classification, snapshot exchange, bulk
	// transfer, and structure merging.
	ObjectHost = gobject.Host
	// ObjectConfig parametrizes an ObjectHost.
	ObjectConfig = gobject.Config
	// ObjectStats counts host activity.
	ObjectStats = gobject.Stats
)

// OpenObject starts a replica of obj at the given site.
func OpenObject(tr Transport, reg *Registry, site string, coreOpts Options, cfg ObjectConfig, obj GroupObject) (*ObjectHost, error) {
	return gobject.Open(tr, reg, site, coreOpts, cfg, obj)
}

// Group-object framework errors.
var (
	// ErrNotServing is returned by ObjectHost.Multicast outside N-mode.
	ErrNotServing = gobject.ErrNotServing
)

// Observability (internal/obs): a lock-cheap metrics registry and a
// structured trace facility, folded together by a Collector that
// implements the run-time's extended observer hooks.
type (
	// Metrics is a named collection of counters, gauges and histograms.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time JSON-serializable copy.
	MetricsSnapshot = obs.Snapshot
	// Tracer is a bounded ring of structured protocol events.
	Tracer = obs.Tracer
	// TraceEvent is one structured trace event.
	TraceEvent = obs.Event
	// TraceSink receives every appended trace event.
	TraceSink = obs.Sink
	// Collector turns observer callbacks into metrics and trace events.
	Collector = obs.Collector
	// ExtendedObserver adds fine-grained hooks (packets, ticks,
	// suspicions, flush timing) to Observer; detected by type assertion.
	ExtendedObserver = core.ExtendedObserver
)

// Observability constructors.
var (
	// NewMetrics creates an empty metrics registry.
	NewMetrics = obs.NewRegistry
	// NewTracer creates a trace ring with optional sinks.
	NewTracer = obs.NewTracer
	// NewCollector creates a collector over a registry and tracer.
	NewCollector = obs.NewCollector
	// NewJSONLSink writes trace events as JSON lines.
	NewJSONLSink = obs.NewJSONLSink
	// NewTextSink writes trace events as human-readable lines.
	NewTextSink = obs.NewTextSink
	// TeeObservers composes observers (e.g. a Recorder and a Collector).
	TeeObservers = obs.Tee
)

// Live runtime introspection (internal/admin): an HTTP server exposing
// the metrics registry (Prometheus text + JSON), per-member status
// snapshots, the recent trace ring, and pprof — while the group runs.
// cmd/vsmon polls a set of these endpoints and renders a group-wide
// health table.
type (
	// AdminServer serves /metrics, /metrics.json, /status, /trace and
	// /debug/pprof for a set of registered members.
	AdminServer = admin.Server
	// AdminMember is one member's introspection hooks.
	AdminMember = admin.Member
	// MemberStatus is the /status document for one member: the process
	// status plus the Figure-1 mode label.
	MemberStatus = admin.MemberStatus
	// ProcessStatus is a live snapshot of one process (view id,
	// composition, structure, per-peer detector state, proposal age,
	// loop health); see Process.StatusSnapshot.
	ProcessStatus = core.Status
	// PeerStatus is one co-member's state within a ProcessStatus.
	PeerStatus = core.PeerStatus
	// GroupMonitor turns polled member statuses into health verdicts
	// (divergence beyond a grace window, stuck proposals, staleness).
	GroupMonitor = admin.Monitor
	// GroupAssessment is one monitoring round's verdict.
	GroupAssessment = admin.Assessment
)

// NewAdmin binds addr (":0" for an ephemeral port) and serves the admin
// endpoints for reg and tr (either may be nil). Register members with
// RegisterProcess / RegisterObject; Close releases the port.
func NewAdmin(addr string, reg *Metrics, tr *Tracer) (*AdminServer, error) {
	return admin.New(addr, reg, tr)
}

// RegisterProcess exposes p on the admin server under its PID. Raw
// processes have no mode automaton, so their /status mode is "".
func RegisterProcess(s *AdminServer, p *Process) {
	s.Register(p.PID().String(), admin.Member{Status: p.StatusSnapshot})
}

// RegisterObject exposes a group-object host on the admin server under
// its PID: the process status plus its live Figure-1 mode.
func RegisterObject(s *AdminServer, h *ObjectHost) {
	s.Register(h.Process().PID().String(), admin.Member{
		Status: h.Process().StatusSnapshot,
		Mode:   func() string { return h.Mode().String() },
	})
}

// Trace checking (verifies P2.1–P2.3 and P6.1–P6.3 over executions).
type (
	// Recorder collects per-process traces; implements Observer.
	Recorder = check.Recorder
	// TraceSummary aggregates trace sizes.
	TraceSummary = check.Summary
)

// NewRecorder creates an empty trace recorder.
func NewRecorder() *Recorder { return check.NewRecorder() }
