// Command vsmon watches a running group through its members' admin
// endpoints (see internal/admin; start members with vsbench/vstrace
// -admin, or attach an admin server through the viewsync facade). It
// polls every endpoint's /status, flattens the member documents into
// one group-wide table, and flags:
//
//   - divergence — a member disagreeing with the majority view id for
//     longer than the grace window (brief disagreement during a view
//     change is normal and not flagged),
//   - stuck proposals — an in-flight membership round older than the
//     stuck threshold,
//   - unreachable endpoints and stale members (a process whose
//     protocol loop stopped publishing snapshots).
//
// Usage:
//
//	vsmon -addrs host1:9090,host2:9090,host3:9090
//	vsmon -addrs :9090 -once            # one table and exit
//	vsmon -addrs :9090 -interval 500ms -grace 2s -stuck 4s
//
// Exit status in -once mode: 0 when the group is healthy, 1 when any
// member is flagged (usable as a probe from scripts).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/admin"
)

func main() {
	log.SetFlags(0)
	addrs := flag.String("addrs", "", "comma-separated admin endpoints (host:port) to poll")
	interval := flag.Duration("interval", time.Second, "polling interval")
	grace := flag.Duration("grace", admin.DefaultGrace, "how long view-id disagreement is tolerated before flagging divergence")
	stuck := flag.Duration("stuck", admin.DefaultStuck, "in-flight proposal age beyond which a member is flagged stuck")
	stale := flag.Duration("stale", admin.DefaultStaleAfter, "status age beyond which a member is flagged stale")
	once := flag.Bool("once", false, "poll once, print the table, exit (status 1 if unhealthy)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-endpoint HTTP timeout")
	flag.Parse()

	if *addrs == "" {
		fmt.Fprintln(os.Stderr, "vsmon: -addrs is required (comma-separated admin endpoints)")
		flag.Usage()
		os.Exit(2)
	}
	endpoints := strings.Split(*addrs, ",")
	for i := range endpoints {
		endpoints[i] = strings.TrimSpace(endpoints[i])
	}

	client := &http.Client{Timeout: *timeout}
	mon := &admin.Monitor{Grace: *grace, Stuck: *stuck, StaleAfter: *stale}

	for {
		var reports []admin.MemberReport
		for _, ep := range endpoints {
			if ep == "" {
				continue
			}
			reports = append(reports, admin.PollStatus(client, ep)...)
		}
		a := mon.Assess(time.Now(), reports)
		render(os.Stdout, a)
		if *once {
			if !a.Healthy {
				os.Exit(1)
			}
			return
		}
		time.Sleep(*interval)
	}
}

// render prints one assessment as a table followed by a one-line group
// summary. Each polling round appends a fresh table (plain sequential
// output keeps vsmon usable under tee/redirect and in CI logs).
func render(w *os.File, a admin.Assessment) {
	fmt.Fprintf(w, "=== %s  members=%d views=%d majority=%s\n",
		a.At.Format("15:04:05.000"), len(a.Members), len(a.Views), orDash(a.Majority))
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "MEMBER\tENDPOINT\tMODE\tVIEW\tSIZE\tBLOCKED\tHEALTH")
	for _, h := range a.Members {
		health := "ok"
		if h.Flagged() {
			health = h.Detail
		} else if h.DivergentFor > 0 {
			health = fmt.Sprintf("ok (view changing, %s)", h.DivergentFor.Round(time.Millisecond))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%v\t%s\n",
			orDash(h.PID), h.Endpoint, orDash(h.Mode), orDash(h.ViewID), h.Size, h.Blocked, health)
	}
	tw.Flush()
	if a.Healthy {
		fmt.Fprintln(w, "group: healthy")
	} else {
		fmt.Fprintln(w, "group: UNHEALTHY")
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
