// Command vstrace runs a seeded random fault schedule against a live
// group, reports what happened, and verifies all six paper properties
// over the recorded trace:
//
//	P2.1 Agreement   P2.2 Uniqueness   P2.3 Integrity      (§2)
//	P6.1 Total order P6.2 Causal cuts  P6.3 Structure      (§6)
//
// Usage:
//
//	go run ./cmd/vstrace                 # default random schedule
//	go run ./cmd/vstrace -n 6 -steps 40  # bigger group, longer schedule
//	go run ./cmd/vstrace -seed 7         # a different schedule
//	go run ./cmd/vstrace -trace-out trace.jsonl  # structured event stream
//	go run ./cmd/vstrace -analyze trace.jsonl    # offline trace checking
//	go run ./cmd/vstrace -profile trace.jsonl    # latency attribution
//	go run ./cmd/vstrace -diff a.jsonl b.jsonl   # first divergence of two traces
//
// With -trace-out, every process is additionally instrumented with an
// obs tracer and the full event stream (sends, deliveries, suspicions,
// proposals, installs, e-changes — one JSON object per line, see the
// README "Observability" section) is written to the given file.
//
// -analyze reads a JSONL trace back (tolerating a truncated tail),
// reconstructs per-process, per-view timelines, and runs the
// internal/tracecheck invariant suite — agreement, e-change total
// order, structure survival, mode legality, flush discipline —
// exiting 1 if any checker finds a violation. -profile reads a trace
// back and attributes latency instead: the per-view phase breakdown
// (detect / agree / flush / install), phase and delivery-latency
// percentiles, and the critical-path member whose ack gated each
// install (see internal/profile); it exits 1 if any view-change span
// never closed. -diff aligns two traces of the same scenario (e.g.
// two seeds) by view lineage and event type and reports the first
// divergence. Every live run also pipes its own event stream through
// the same checkers in-process and prints a one-line latency profile.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/admin"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/simnet"
	"repro/internal/stable"
	"repro/internal/tracecheck"
	"repro/internal/transport/udp"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 5, "group size")
	steps := flag.Int("steps", 30, "schedule length")
	seed := flag.Int64("seed", 1, "schedule seed")
	traceOut := flag.String("trace-out", "", "write a JSONL trace of protocol events to this file")
	transportName := flag.String("transport", "sim", "network backend for the live schedule: sim (deterministic simulator) or udp (real loopback sockets)")
	analyze := flag.String("analyze", "", "analyze a JSONL trace file instead of running a schedule; exit 1 on violation")
	prof := flag.String("profile", "", "profile a JSONL trace file: per-view phase breakdown, phase/delivery percentiles, critical path; exit 1 on unclosed spans")
	diff := flag.Bool("diff", false, "diff two JSONL trace files (two positional args); report the first divergence")
	adminAddr := flag.String("admin", "", "serve live admin endpoints (/metrics, /status, /trace, /debug/pprof) on this address while the schedule runs, e.g. :9090 (use :0 for an ephemeral port)")
	flag.Parse()
	switch {
	case *analyze != "":
		if err := runAnalyze(*analyze); err != nil {
			log.Fatalf("vstrace: %v", err)
		}
	case *prof != "":
		if err := runProfile(*prof); err != nil {
			log.Fatalf("vstrace: %v", err)
		}
	case *diff:
		if flag.NArg() != 2 {
			log.Fatal("vstrace: -diff needs exactly two trace files")
		}
		if err := runDiff(flag.Arg(0), flag.Arg(1)); err != nil {
			log.Fatalf("vstrace: %v", err)
		}
	default:
		if *transportName != "sim" && *transportName != "udp" {
			log.Fatalf("vstrace: unknown transport %q (want sim|udp)", *transportName)
		}
		if err := run(*n, *steps, *seed, *traceOut, *transportName, *adminAddr); err != nil {
			log.Fatalf("vstrace: %v", err)
		}
	}
}

// runAnalyze reads a trace file and runs the full checker suite over
// it, returning an error (exit 1) when any violation is found.
func runAnalyze(path string) error {
	events, malformed, err := tracecheck.ReadFile(path)
	if err != nil {
		return err
	}
	rep := tracecheck.Check(events)
	rep.Summary.Malformed = malformed
	rep.Summary.Write(os.Stdout)
	if rep.OK() {
		fmt.Println("no violations: agreement, e-change order, structure survival, mode legality, flush discipline all hold")
		return nil
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(os.Stderr, "VIOLATION: %v\n", v)
	}
	return fmt.Errorf("%d trace violation(s)", len(rep.Violations))
}

// runProfile reads a trace file and prints its latency profile. An
// unclosed span — a view change the trace never saw complete — is an
// error (exit 1): either the trace was truncated mid-change or the run
// ended with membership unresolved.
func runProfile(path string) error {
	rep, err := profile.FromFile(path)
	if err != nil {
		return err
	}
	rep.WriteText(os.Stdout)
	if rep.Unclosed > 0 {
		return fmt.Errorf("%d view-change span(s) never closed (truncated trace or unresolved change)", rep.Unclosed)
	}
	return nil
}

// runDiff aligns two traces by view lineage and event type and
// reports the first divergence. A divergence is information, not a
// failure: the exit code stays 0 unless a file cannot be read.
func runDiff(pathA, pathB string) error {
	a, malA, err := tracecheck.ReadFile(pathA)
	if err != nil {
		return err
	}
	b, malB, err := tracecheck.ReadFile(pathB)
	if err != nil {
		return err
	}
	fmt.Printf("a: %s (%d events, %d malformed)\nb: %s (%d events, %d malformed)\n",
		pathA, len(a), malA, pathB, len(b), malB)
	d := tracecheck.Diff(a, b)
	if d == nil {
		fmt.Println("traces are equivalent up to schedule-dependent identifiers")
		return nil
	}
	fmt.Println(d)
	return nil
}

func run(n, steps int, seed int64, traceOut, transportName, adminAddr string) error {
	r := rand.New(rand.NewSource(seed))
	rec := check.NewRecorder()

	// Every run keeps its event stream in memory and feeds it through
	// the tracecheck suite at the end; -trace-out additionally streams
	// it to a JSONL file.
	mem := obs.NewMemorySink()
	sinks := []obs.Sink{mem}
	var traceFile *os.File
	var traceBuf *bufio.Writer
	var jsonl *obs.JSONLSink
	if traceOut != "" {
		var err error
		traceFile, err = os.Create(traceOut)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		traceBuf = bufio.NewWriter(traceFile)
		jsonl = obs.NewJSONLSink(traceBuf)
		sinks = append(sinks, jsonl)
	}
	mreg := obs.NewRegistry()
	tracer := obs.NewTracer(0, sinks...)
	coll := obs.NewCollector(mreg, tracer)
	observer := obs.Tee(rec, coll)
	var fabric experiments.NetFabric
	if transportName == "udp" {
		fabric = udp.New(udp.Config{})
	} else {
		fabric = simnet.New(simnet.Config{
			Delay: simnet.NewUniformDelay(50*time.Microsecond, 400*time.Microsecond, seed+1),
			Seed:  seed,
		})
	}
	defer fabric.Close()
	reg := stable.NewRegistry()
	timing := experiments.FastTiming()
	timing.Observer = observer
	if adminAddr != "" {
		srv, err := admin.New(adminAddr, mreg, tracer)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("admin endpoints on http://%s (/metrics /metrics.json /status /trace /debug/pprof)\n", srv.Addr())
		timing.OnStart = func(p *core.Process) {
			srv.Register(p.PID().String(), admin.Member{Status: p.StatusSnapshot})
		}
	}
	opts := timing.Options("trace", true)

	sites := make([]string, n)
	live := make(map[string]*core.Process, n)
	start := func(site string) error {
		p, err := timing.Start(fabric, reg, site, opts)
		if err != nil {
			return err
		}
		go func() {
			for range p.Events() {
			}
		}()
		live[site] = p
		return nil
	}
	for i := 0; i < n; i++ {
		sites[i] = fmt.Sprintf("n%d", i+1)
		if err := start(sites[i]); err != nil {
			return err
		}
	}
	all := func() []*core.Process {
		keys := make([]string, 0, len(live))
		for s := range live {
			keys = append(keys, s)
		}
		sort.Strings(keys)
		out := make([]*core.Process, 0, len(keys))
		for _, s := range keys {
			out = append(out, live[s])
		}
		return out
	}
	if err := converge(all(), 15*time.Second); err != nil {
		return fmt.Errorf("formation: %w", err)
	}
	fmt.Printf("group of %d formed; running %d scheduled steps (seed %d)\n", n, steps, seed)

	partitioned := false
	for step := 0; step < steps; step++ {
		switch r.Intn(9) {
		case 0, 1, 2:
			procs := all()
			p := procs[r.Intn(len(procs))]
			k := 1 + r.Intn(4)
			for i := 0; i < k; i++ {
				_ = p.Multicast([]byte(fmt.Sprintf("m-%d-%d", step, i)))
			}
			fmt.Printf("step %2d: %v multicast %d messages\n", step, p.PID(), k)
		case 3:
			if len(live) > 2 {
				procs := all()
				p := procs[r.Intn(len(procs))]
				delete(live, p.Site())
				p.Crash()
				fmt.Printf("step %2d: crash %v\n", step, p.PID())
			}
		case 4:
			for _, s := range sites {
				if _, ok := live[s]; !ok {
					if err := start(s); err != nil {
						return err
					}
					fmt.Printf("step %2d: recover site %s as %v\n", step, s, live[s].PID())
					break
				}
			}
		case 5:
			if !partitioned {
				cut := 1 + r.Intn(n-1)
				fabric.SetPartitions(sites[:cut], sites[cut:])
				partitioned = true
				fmt.Printf("step %2d: partition %v | %v\n", step, sites[:cut], sites[cut:])
			}
		case 6:
			if partitioned {
				fabric.Heal()
				partitioned = false
				fmt.Printf("step %2d: heal\n", step)
			}
		case 7:
			procs := all()
			p := procs[r.Intn(len(procs))]
			st := p.CurrentView().Structure
			if sss := st.SVSets(); len(sss) >= 2 {
				_ = p.SVSetMerge(sss[0], sss[1])
				fmt.Printf("step %2d: %v requests SV-SetMerge\n", step, p.PID())
			}
		case 8:
			procs := all()
			p := procs[r.Intn(len(procs))]
			st := p.CurrentView().Structure
			if svs := st.Subviews(); len(svs) >= 2 {
				_ = p.SubviewMerge(svs[0], svs[1])
				fmt.Printf("step %2d: %v requests SubviewMerge\n", step, p.PID())
			}
		}
		time.Sleep(time.Duration(r.Intn(25)) * time.Millisecond)
	}

	fabric.Heal()
	if err := converge(all(), 20*time.Second); err != nil {
		return fmt.Errorf("stabilization: %w", err)
	}
	time.Sleep(150 * time.Millisecond)
	for _, p := range all() {
		v := p.CurrentView()
		fmt.Printf("final: %v in view %v %v, structure %v\n", p.PID(), v.ID, v.Members, v.Structure)
	}

	s := rec.Summary()
	fmt.Printf("\ntrace: %d processes, %d sends, %d deliveries, %d views, %d e-changes\n",
		s.Processes, s.Sends, s.Deliveries, s.Views, s.EChanges)
	// Stop the processes first: Crash blocks until the protocol loop
	// exits, so no observer callback can race the buffer flush or the
	// in-memory stream handed to the checkers.
	for _, p := range all() {
		p.Crash()
	}
	if traceBuf != nil {
		if err := traceBuf.Flush(); err != nil {
			return fmt.Errorf("flush trace: %w", err)
		}
		if err := jsonl.Err(); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Printf("structured trace written to %s\n", traceOut)
	}
	errs := rec.Verify()
	check.SortErrors(errs)
	rep := tracecheck.Check(mem.Events())
	for _, v := range rep.Violations {
		errs = append(errs, fmt.Errorf("trace: %v", v))
	}
	if len(errs) == 0 {
		fmt.Println("all properties held: Agreement, Uniqueness, Integrity, Total order, Causal cuts, Structure")
		fmt.Printf("trace checkers passed over %d events\n", rep.Summary.Events)
		// One-line latency attribution; -profile on the written trace
		// gives the full per-view breakdown.
		prof := profile.FromEvents(mem.Events())
		if c := prof.Phases.Total.Count; c > 0 {
			fmt.Printf("latency: %d view-change spans, total p50/p95/max %v/%v/%v (p95 detect %v, agree %v, flush %v, install %v), %d unclosed\n",
				c, prof.Phases.Total.P50.Round(100*time.Microsecond),
				prof.Phases.Total.P95.Round(100*time.Microsecond),
				prof.Phases.Total.Max.Round(100*time.Microsecond),
				prof.Phases.Detect.P95.Round(100*time.Microsecond),
				prof.Phases.Agree.P95.Round(100*time.Microsecond),
				prof.Phases.Flush.P95.Round(100*time.Microsecond),
				prof.Phases.Install.P95.Round(100*time.Microsecond),
				prof.Unclosed)
		}
		return nil
	}
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "VIOLATION: %v\n", err)
	}
	return fmt.Errorf("%d property violations", len(errs))
}

func converge(procs []*core.Process, timeout time.Duration) error {
	want := make(ids.PIDSet, len(procs))
	for _, p := range procs {
		want.Add(p.PID())
	}
	deadline := time.Now().Add(timeout)
	for {
		v0 := procs[0].CurrentView()
		ok := v0.Comp().Equal(want)
		if ok {
			for _, p := range procs[1:] {
				v := p.CurrentView()
				if v.ID != v0.ID || !v.Comp().Equal(want) {
					ok = false
					break
				}
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("convergence timeout")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
