// Command vschaos runs seeded chaos schedules against live view-
// synchrony groups and gates every run through the paper's invariant
// suite plus a reconvergence oracle (internal/chaos; README "Chaos
// testing").
//
// Usage:
//
//	go run ./cmd/vschaos -runs 20                 # 20 generated plans, seeds 1..20
//	go run ./cmd/vschaos -seed 7                  # one specific seed
//	go run ./cmd/vschaos -seed 7 -transport udp   # same schedule, real sockets
//	go run ./cmd/vschaos -plan failing.json       # replay a saved plan
//	go run ./cmd/vschaos -plan failing.json -shrink  # minimize it first
//	go run ./cmd/vschaos -runs 50 -out /tmp/chaos    # save artifacts there
//
// On any failing run vschaos writes the failing plan to
// <out>/failing-seed<seed>.json (plus a -shrink-minimized
// <out>/failing-seed<seed>-min.json), prints the seed and plan path,
// and exits 1 — the printed seed alone reproduces the schedule:
//
//	go run ./cmd/vschaos -seed <seed>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

// run is main minus os.Exit, so the trace-file flush deferred inside
// actually runs before the process exits.
func run() int {
	log.SetFlags(0)
	seed := flag.Int64("seed", 0, "run exactly this seed's generated plan (0: seeds 1..runs)")
	runs := flag.Int("runs", 1, "number of generated plans to run when -seed and -plan are unset")
	planPath := flag.String("plan", "", "replay a saved plan JSON instead of generating one")
	doShrink := flag.Bool("shrink", false, "on failure, greedily minimize the failing plan before reporting")
	transportName := flag.String("transport", "sim", "network backend: sim (deterministic simulator) or udp (real loopback sockets)")
	n := flag.Int("n", 0, "group size for generated plans (0: generator default)")
	horizon := flag.Int("horizon", 0, "fault horizon in ms for generated plans (0: generator default)")
	out := flag.String("out", ".", "directory for failing-plan artifacts")
	traceOut := flag.String("trace-out", "", "append a JSONL trace of every run's protocol events to this file")
	settle := flag.Duration("settle", 0, "reconvergence bound after faults cease (0: 15s default)")
	budget := flag.Int("shrink-budget", 32, "max candidate re-runs the shrinker may spend")
	flag.Parse()

	if *transportName != "sim" && *transportName != "udp" {
		fmt.Fprintf(os.Stderr, "unknown transport %q (want sim|udp)\n", *transportName)
		return 2
	}

	cfg := chaos.Config{Transport: *transportName, SettleTimeout: *settle}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("vschaos: %v", err)
		}
		w := bufio.NewWriter(f)
		defer func() {
			w.Flush()
			f.Close()
		}()
		cfg.TraceSinks = []obs.Sink{obs.NewJSONLSink(w)}
	}

	gc := chaos.GenConfig{N: *n, Horizon: time.Duration(*horizon) * time.Millisecond}

	var plans []chaos.Plan
	switch {
	case *planPath != "":
		p, err := chaos.Load(*planPath)
		if err != nil {
			log.Fatalf("vschaos: load %s: %v", *planPath, err)
		}
		plans = []chaos.Plan{p}
	case *seed != 0:
		plans = []chaos.Plan{chaos.Generate(*seed, gc)}
	default:
		for s := int64(1); s <= int64(*runs); s++ {
			plans = append(plans, chaos.Generate(s, gc))
		}
	}

	failed := 0
	for _, plan := range plans {
		res, err := chaos.Run(plan, cfg)
		if err != nil {
			// Infrastructure errors (formation timeouts, bad plans) are
			// harness failures, not oracle verdicts — still a non-zero
			// exit, with the seed so the run is reproducible.
			log.Printf("seed=%d %s: harness error: %v", plan.Seed, *transportName, err)
			failed++
			continue
		}
		log.Printf("%s", res.Summary())
		if !res.Failed() {
			continue
		}
		failed++
		for _, v := range res.Violations {
			log.Printf("  violation: %s", v)
		}
		if res.OracleDetail != "" {
			log.Printf("  oracle: %s", res.OracleDetail)
		}
		report(plan, cfg, *out, *doShrink, *budget)
	}
	if failed > 0 {
		log.Printf("vschaos: %d/%d runs failed", failed, len(plans))
		return 1
	}
	log.Printf("vschaos: all %d runs clean", len(plans))
	return 0
}

// report saves the failing plan (and optionally its shrunk core) and
// prints the reproduction handles: the seed and the plan path.
func report(plan chaos.Plan, cfg chaos.Config, out string, doShrink bool, budget int) {
	if err := os.MkdirAll(out, 0o755); err != nil {
		log.Printf("  save: %v", err)
		return
	}
	path := filepath.Join(out, fmt.Sprintf("failing-seed%d.json", plan.Seed))
	if err := plan.Save(path); err != nil {
		log.Printf("  save: %v", err)
		return
	}
	log.Printf("  FAILING SEED %d; plan saved to %s", plan.Seed, path)
	log.Printf("  reproduce with: go run ./cmd/vschaos -plan %s -transport %s", path, cfg.Transport)
	if !doShrink {
		return
	}
	shrunk, st, err := chaos.Shrink(plan, func(cand chaos.Plan) (chaos.Result, error) {
		return chaos.Run(cand, cfg)
	}, budget)
	if err != nil {
		log.Printf("  shrink: %v", err)
		return
	}
	log.Printf("  %s", chaos.ShrinkReport(plan, shrunk, st))
	minPath := filepath.Join(out, fmt.Sprintf("failing-seed%d-min.json", plan.Seed))
	if err := shrunk.Save(minPath); err != nil {
		log.Printf("  save: %v", err)
		return
	}
	log.Printf("  minimized plan saved to %s", minPath)
}
