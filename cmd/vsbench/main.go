// Command vsbench regenerates every figure/claim reproduction of the
// paper as formatted tables (the experiment index lives in DESIGN.md §3,
// the paper-vs-measured record in EXPERIMENTS.md).
//
// Usage:
//
//	go run ./cmd/vsbench                        # run everything
//	go run ./cmd/vsbench -exp e1                # one experiment
//	go run ./cmd/vsbench -seed 7                # different seed
//	go run ./cmd/vsbench -quick                 # smaller sweeps
//	go run ./cmd/vsbench -exp e1 -metrics m.json  # dump a metrics snapshot
//	go run ./cmd/vsbench -exp e1 -quick -trace-out e1.jsonl  # JSONL event trace
//
// With -metrics, every protocol stack the experiments start is
// instrumented with an obs.Collector sharing one registry, and a JSON
// snapshot (counters, gauges, histograms — see the README
// "Observability" section for the schema) is written to the given file
// when the run completes.
//
// With -trace-out, the same collector streams every protocol event to
// a JSONL file, with run-boundary markers between experiments (and
// between an experiment's internal sub-scenarios) so the trace can be
// analyzed offline with vstrace -analyze.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/transfer"
)

func main() {
	log.SetFlags(0)
	exp := flag.String("exp", "all", "experiment to run: all|f1|f2|f3|e1|e2|e3|e4|e5|e6|e7|e8|e8m|e9|e10|e11")
	seed := flag.Int64("seed", 42, "random seed")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot to this file")
	traceOut := flag.String("trace-out", "", "write a JSONL trace of protocol events to this file")
	transportName := flag.String("transport", "sim", "network backend: sim (deterministic simulator) or udp (real loopback sockets); e3/e7 always use sim, e10 always compares both")
	adminAddr := flag.String("admin", "", "serve live admin endpoints (/metrics, /status, /trace, /debug/pprof) on this address while the run is in progress, e.g. :9090 (use :0 for an ephemeral port)")
	adminCheck := flag.Bool("admin-check", false, "with -admin: after the run, self-scrape /metrics and /status and fail unless both are well-formed and non-empty (make check uses this)")
	flag.Parse()

	timing := experiments.FastTiming()
	switch *transportName {
	case "sim", "udp":
		timing.Transport = *transportName
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q (want sim|udp)\n", *transportName)
		os.Exit(2)
	}
	var reg *obs.Registry
	var metricsFile *os.File
	if *metrics != "" {
		// Open the output up front so a bad path fails before the run,
		// not after it.
		f, err := os.Create(*metrics)
		if err != nil {
			log.Fatalf("vsbench: %v", err)
		}
		metricsFile = f
		reg = obs.NewRegistry()
	}
	if *adminAddr != "" && reg == nil {
		// The admin endpoint serves the metrics registry live, so one is
		// needed even without a -metrics snapshot file.
		reg = obs.NewRegistry()
	}
	var traceBuf *bufio.Writer
	var traceFile *os.File
	var jsonl *obs.JSONLSink
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("vsbench: %v", err)
		}
		traceFile = f
		traceBuf = bufio.NewWriter(f)
		jsonl = obs.NewJSONLSink(traceBuf)
		tracer = obs.NewTracer(0, jsonl)
	}
	if reg != nil || tracer != nil {
		timing.Observer = obs.NewCollector(reg, tracer)
	}
	var adminSrv *admin.Server
	if *adminAddr != "" {
		srv, err := admin.New(*adminAddr, reg, tracer)
		if err != nil {
			log.Fatalf("vsbench: %v", err)
		}
		adminSrv = srv
		defer adminSrv.Close()
		fmt.Printf("admin endpoints on http://%s (/metrics /metrics.json /status /trace /debug/pprof)\n", adminSrv.Addr())
		// Every process any experiment starts registers itself, so
		// /status covers whatever group is currently running. Experiment
		// processes are raw core stacks (no gobject mode automaton), so
		// their Figure-1 mode renders as "".
		timing.OnStart = func(p *core.Process) {
			adminSrv.Register(p.PID().String(), admin.Member{Status: p.StatusSnapshot})
		}
	} else if *adminCheck {
		log.Fatal("vsbench: -admin-check needs -admin")
	}

	runners := map[string]func(experiments.Timing, int64, bool) error{
		"f1": runF1, "f2": runF2, "f3": runF3,
		"e1": runE1, "e2": runE2, "e3": runE3, "e4": runE4, "e5": runE5, "e6": runE6,
		"e7": runE7, "e8": runE8, "e8m": runE8M, "e9": runE9, "e10": runE10,
		"e11": runE11,
	}
	order := []string{"f1", "f2", "f3", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e8m", "e9", "e10", "e11"}

	which := strings.ToLower(*exp)
	if which == "all" {
		for _, name := range order {
			timing.MarkRun(name)
			if err := runners[name](timing, *seed, *quick); err != nil {
				log.Fatalf("vsbench: %s: %v", name, err)
			}
		}
	} else {
		r, ok := runners[which]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want all|%s)\n", which, strings.Join(order, "|"))
			os.Exit(2)
		}
		if err := r(timing, *seed, *quick); err != nil {
			log.Fatalf("vsbench: %s: %v", which, err)
		}
	}

	if metricsFile != nil {
		if err := reg.WriteJSON(metricsFile); err != nil {
			log.Fatalf("vsbench: %v", err)
		}
		if err := metricsFile.Close(); err != nil {
			log.Fatalf("vsbench: %v", err)
		}
		fmt.Printf("\nmetrics snapshot written to %s\n", *metrics)
	}
	if traceBuf != nil {
		// Experiments stop every process they start before returning, so
		// no observer callback can race the flush here.
		if err := traceBuf.Flush(); err != nil {
			log.Fatalf("vsbench: flush trace: %v", err)
		}
		if err := jsonl.Err(); err != nil {
			log.Fatalf("vsbench: write trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatalf("vsbench: %v", err)
		}
		fmt.Printf("\nstructured trace written to %s\n", *traceOut)
	}
	if *adminCheck {
		if err := adminSelfCheck(adminSrv.Addr()); err != nil {
			log.Fatalf("vsbench: admin self-check: %v", err)
		}
		fmt.Println("\nadmin self-check passed: /metrics and /status well-formed and non-empty")
	}
}

// adminSelfCheck scrapes this process's own admin endpoints and
// validates the two machine-readable surfaces CI depends on: /metrics
// must be non-empty, parseable Prometheus text exposition (every line
// a comment or "name value"), and /status must decode as a non-empty
// member array whose entries carry a view id. make check runs a quick
// experiment with -admin :0 -admin-check to keep both honest.
func adminSelfCheck(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: status %s", resp.Status)
	}
	lines, samples := strings.Split(strings.TrimRight(string(body), "\n"), "\n"), 0
	if len(body) == 0 {
		return fmt.Errorf("/metrics: empty body")
	}
	for i, ln := range lines {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		fields := strings.Fields(ln)
		if len(fields) != 2 {
			return fmt.Errorf("/metrics line %d: want 'name value', got %q", i+1, ln)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("/metrics line %d: bad value %q: %v", i+1, fields[1], err)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("/metrics: no samples")
	}

	reports := admin.PollStatus(client, addr)
	for _, r := range reports {
		if r.Err != nil {
			return fmt.Errorf("/status: %w", r.Err)
		}
		if r.Status.ViewID == "" {
			return fmt.Errorf("/status: member %s has no view id", r.Status.PID)
		}
	}
	fmt.Printf("admin self-check: %d metric samples, %d member status documents\n", samples, len(reports))
	return nil
}

func header(title, source string) {
	fmt.Printf("\n=== %s ===\n", title)
	fmt.Printf("    paper: %s\n\n", source)
}

func runF1(timing experiments.Timing, seed int64, _ bool) error {
	header("F1 — execution modes of a group object process",
		"Figure 1: N/R/S modes with Failure, Repair, Reconfigure, Reconcile transitions")
	rows, err := experiments.RunF1(timing, seed)
	if err != nil {
		return err
	}
	fmt.Println(experiments.F1Header)
	for _, r := range rows {
		fmt.Println(r)
	}
	return nil
}

func runF2(timing experiments.Timing, seed int64, _ bool) error {
	header("F2 — views, subviews and sv-sets across a partition and a merge",
		"Figure 2: structure shrinks on failures, survives merges as distinct clusters (P6.3)")
	rows, violations, err := experiments.RunF2(timing, seed)
	if err != nil {
		return err
	}
	fmt.Println(experiments.F2Header)
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Printf("property checker violations (P2.1-P2.3, P6.1-P6.3): %d\n", violations)
	return nil
}

func runF3(timing experiments.Timing, seed int64, quick bool) error {
	header("F3 — e-view changes within a view",
		"Figure 3: SV-SetMerge then SubviewMerge, totally ordered at all members (P6.1, P6.2)")
	sizes := []int{3, 5, 8}
	if quick {
		sizes = []int{3, 5}
	}
	fmt.Println(experiments.F3Header)
	for _, n := range sizes {
		row, err := experiments.RunF3(n, timing, seed)
		if err != nil {
			return err
		}
		fmt.Println(row)
	}
	return nil
}

func runE1(timing experiments.Timing, seed int64, quick bool) error {
	header("E1 — view changes to absorb m members",
		"§5: two m-member partitions merging cost m view changes per side under Isis's grow-by-one rule, when one suffices")
	ms := []int{2, 4, 8, 16}
	if quick {
		ms = []int{2, 4}
	}
	fmt.Println(experiments.E1Header)
	for _, m := range ms {
		row, err := experiments.RunE1(m, timing, seed)
		if err != nil {
			return err
		}
		fmt.Println(row)
	}
	return nil
}

func runE2(timing experiments.Timing, seed int64, quick bool) error {
	header("E2 — classifying the shared state problem after a repair",
		"§4: flat views classify 'only through complex and costly protocols'; §6.2: enriched views classify locally")
	ns := []int{3, 5, 7, 9}
	if quick {
		ns = []int{3, 5}
	}
	fmt.Println(experiments.E2Header)
	for _, n := range ns {
		row, err := experiments.RunE2(n, timing, seed)
		if err != nil {
			return err
		}
		fmt.Println(row)
	}
	return nil
}

func runE3(timing experiments.Timing, seed int64, quick bool) error {
	header("E3 — state transfer strategies vs state size",
		"§5: blocking view installation during transfer 'might be infeasible'; split the state into a small synchronous piece and a concurrent bulk")
	sizes := []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}
	if quick {
		sizes = []int{64 << 10, 1 << 20}
	}
	fmt.Println(experiments.E3Header)
	for _, size := range sizes {
		for _, strat := range []transfer.Strategy{transfer.Blocking, transfer.Split} {
			row, err := experiments.RunE3(size, strat, timing, seed)
			if err != nil {
				return err
			}
			fmt.Println(row)
		}
	}
	return nil
}

func runE4(timing experiments.Timing, seed int64, _ bool) error {
	header("E4 — incidence of the shared state problems",
		"§4: necessary conditions for transfer / creation / merging; primary partitions never merge")
	rows, err := experiments.RunE4(timing, seed)
	if err != nil {
		return err
	}
	fmt.Println(experiments.E4Header)
	ok := true
	for _, r := range rows {
		fmt.Println(r)
		if r.Detected != r.Expected {
			ok = false
		}
	}
	fmt.Printf("all scenarios classified as expected: %v\n", ok)
	return nil
}

func runE5(timing experiments.Timing, seed int64, quick bool) error {
	header("E5 — run-time overhead of enriched views",
		"§6: the extension 'requires minor modifications ... and can be implemented efficiently'")
	ns := []int{3, 5, 8}
	if quick {
		ns = []int{3, 5}
	}
	fmt.Println(experiments.E5Header)
	for _, n := range ns {
		for _, enriched := range []bool{false, true} {
			row, err := experiments.RunE5(n, enriched, timing, seed)
			if err != nil {
				return err
			}
			fmt.Println(row)
		}
	}
	return nil
}

func runE6(timing experiments.Timing, seed int64, quick bool) error {
	header("E6 — write availability under false-suspicion churn (ablation)",
		"§2: false suspicions are indistinguishable from failures; each one costs a view change and a reconciliation")
	gaps := []time.Duration{100 * time.Millisecond, 300 * time.Millisecond, time.Second}
	window := 3 * time.Second
	if quick {
		gaps = []time.Duration{200 * time.Millisecond}
		window = 2 * time.Second
	}
	fmt.Println(experiments.E6Header)
	for _, gap := range gaps {
		for _, enriched := range []bool{false, true} {
			row, err := experiments.RunE6(gap, window, enriched, timing, seed)
			if err != nil {
				return err
			}
			fmt.Println(row)
		}
	}
	return nil
}

func runE7(timing experiments.Timing, seed int64, quick bool) error {
	header("E7 — static vs adaptive suspicion timeouts under delay jitter (ablation)",
		"§2: failure detectors need only be eventually accurate; false suspicions are failures, so the timeout must track the network instead of being provisioned for it")
	jitters := []time.Duration{time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond}
	window := 1500 * time.Millisecond
	if quick {
		jitters = []time.Duration{25 * time.Millisecond}
		window = time.Second
	}
	fmt.Println(experiments.E7Header)
	for _, jitter := range jitters {
		for _, adaptive := range []bool{false, true} {
			row, err := experiments.RunE7(jitter, window, adaptive, timing, seed)
			if err != nil {
				return err
			}
			fmt.Println(row)
		}
	}
	return nil
}

func runE8(timing experiments.Timing, seed int64, quick bool) error {
	header("E8 — view-agreement latency under churn (span profile)",
		"§4: each change costs a coordinator round with the group blocked between ack and install; overlapping changes force retries that stretch the agree phase")
	gaps := []time.Duration{100 * time.Millisecond, 300 * time.Millisecond, time.Second}
	window := 3 * time.Second
	if quick {
		gaps = []time.Duration{200 * time.Millisecond}
		window = 2 * time.Second
	}
	fmt.Println(experiments.E8Header)
	for _, gap := range gaps {
		row, err := experiments.RunE8(gap, window, timing, seed)
		if err != nil {
			return err
		}
		fmt.Println(row)
	}
	return nil
}

func runE8M(timing experiments.Timing, seed int64, quick bool) error {
	header("E8M — install-propagation mismatch: reconcile fast path vs re-proposal (ablation)",
		"§4: the install is already agreed; re-delivering it to a lagging member needs no new round — re-proposing there is pure protocol overhead")
	cycles := 8
	if quick {
		cycles = 4
	}
	fmt.Println(experiments.E8MismatchHeader)
	for _, reconcile := range []bool{true, false} {
		row, err := experiments.RunE8Mismatch(cycles, reconcile, timing, seed)
		if err != nil {
			return err
		}
		fmt.Println(row)
		// The fast path's acceptance gate: with reconciliation on, every
		// manufactured divergence must heal by an install re-send —
		// never a re-proposal round. CI runs `vsbench -exp e8m` for this.
		if reconcile {
			if row.Reproposals > 0 {
				return fmt.Errorf("e8m: %d reproposals with reconciliation enabled (want 0)", row.Reproposals)
			}
			if row.Dropped > 0 && row.Reconciles == 0 {
				return fmt.Errorf("e8m: %d installs dropped but no reconciles recorded", row.Dropped)
			}
		}
	}
	return nil
}

func runE10(timing experiments.Timing, seed int64, quick bool) error {
	header("E10 — simulated fabric vs real UDP loopback sockets",
		"§2: the run-time assumes only an asynchronous partitionable network; the same protocol history should unfold over real sockets with only the latency constants shifting")
	msgs := 200
	if quick {
		msgs = 50
	}
	fmt.Println(experiments.E10Header)
	for _, backend := range []string{"sim", "udp"} {
		row, err := experiments.RunE10(backend, msgs, timing, seed)
		if err != nil {
			return err
		}
		fmt.Println(row)
	}
	return nil
}

func runE11(timing experiments.Timing, seed int64, quick bool) error {
	header("E11 — chaos soak: seeded fault schedules gated by the invariant suite",
		"§2-§4: every partition/loss/crash schedule must be masked behind view changes — zero invariant violations, bounded post-fault reconvergence")
	runs := 12
	if quick {
		runs = 4
	}
	fmt.Println(experiments.E11Header)
	row, err := experiments.RunE11(runs, timing, seed)
	if err != nil {
		return err
	}
	fmt.Println(row)
	// The soak's acceptance gate: a failing seed is a bug report, and
	// the seed alone reproduces it.
	if row.Failed > 0 {
		return fmt.Errorf("e11: %d/%d runs failed (seeds %v); reproduce with: go run ./cmd/vschaos -seed <seed> -transport %s",
			row.Failed, row.Runs, row.FailedSeeds, row.Backend)
	}
	return nil
}

func runE9(timing experiments.Timing, seed int64, quick bool) error {
	header("E9 — time in reduced mode under partition churn",
		"Figure 1 / §3: a quorum object without its write quorum serves reads only (R-mode); residency there is the user-visible cost of partitions")
	gaps := []time.Duration{50 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond}
	window := 2 * time.Second
	if quick {
		gaps = []time.Duration{100 * time.Millisecond}
		window = 1500 * time.Millisecond
	}
	fmt.Println(experiments.E9Header)
	for _, gap := range gaps {
		for _, enriched := range []bool{false, true} {
			row, err := experiments.RunE9(gap, window, enriched, timing, seed)
			if err != nil {
				return err
			}
			fmt.Println(row)
		}
	}
	return nil
}
