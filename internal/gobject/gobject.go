// Package gobject is a reusable harness for building group objects
// (Section 3's application model) on top of the enriched view synchrony
// run-time. It owns the machinery every group object otherwise
// re-implements:
//
//   - consuming the process's event stream;
//   - driving the Figure-1 mode machine from the object's mode function;
//   - classifying the shared state problem at each S-mode entry
//     (enriched local classification, or the flat announcement protocol);
//   - exchanging per-view state snapshots among the members;
//   - pulling bulk state with the transfer tool when the object says a
//     replica is behind;
//   - folding the subview structure back together (§6.2) once the object
//     declares the view reconciled, and invoking Reconcile on the mode
//     machine.
//
// The application implements the Object interface: its semantics
// (snapshots, merges, donors) stay object-specific, the choreography is
// shared. internal/apps/counter is the reference implementation; the
// hand-rolled objects in internal/apps show the same pattern inlined.
package gobject

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/sstate"
	"repro/internal/stable"
	"repro/internal/transfer"
)

// Metric names the host registers (ROADMAP: metrics over the
// group-object layer). Classification counters are the prefix plus the
// sstate.Kind label ("gobject.classifications.Transfer").
const (
	// MetricSnapAnnounces counts snapshot announcements multicast by
	// this host (one per view change plus one per completed pull).
	MetricSnapAnnounces = "gobject.snap_announces"
	// MetricSnapMerges counts peer snapshots folded into local state.
	MetricSnapMerges = "gobject.snap_merges"
	// MetricPulls counts completed bulk state transfers.
	MetricPulls = "gobject.pulls"
	// MetricPullDuration is the request-to-done latency of bulk pulls,
	// in seconds.
	MetricPullDuration = "gobject.pull_duration_s"
	// MetricReconciles counts successful Reconcile transitions.
	MetricReconciles = "gobject.reconciles"
	// MetricClassifyPrefix prefixes per-kind shared-state
	// classification counters.
	MetricClassifyPrefix = "gobject.classifications."
)

// pullDurationBuckets spans sub-millisecond simulated pulls up to
// multi-second bulk transfers; override per registry with SetBuckets.
var pullDurationBuckets = obs.LogLinearBuckets(0.0001, 10, 3)

// Errors returned by the Host API.
var (
	// ErrNotServing is returned by Multicast outside N-mode.
	ErrNotServing = errors.New("gobject: not in N-mode")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("gobject: closed")
)

// Object is the application-specific part of a group object. All methods
// are invoked from the host's single event-loop goroutine; the object
// must do its own locking only if the application reads its state from
// other goroutines.
type Object interface {
	// ModeFunc returns the object's mode function (§3: shared by all
	// members) for this member.
	ModeFunc(self ids.PID) modes.Func
	// WasNormal is the classifier judgment: did this cluster serve
	// external operations in N-mode before the change?
	WasNormal(cluster ids.PIDSet) bool
	// Snapshot serializes the small reconciliation state announced to
	// every member at each view change (versions, digests — not bulk).
	Snapshot() ([]byte, error)
	// MergeSnapshot folds a member's announced snapshot into local
	// state. It must be idempotent and order-insensitive.
	MergeSnapshot(from ids.PID, snap []byte) error
	// NeedPull decides, once every member's snapshot arrived, whether
	// this replica still needs a bulk state transfer and from whom.
	NeedPull(view core.EView, snaps map[ids.PID][]byte) (donor ids.PID, need bool)
	// Apply handles an ordinary application multicast.
	Apply(m core.MsgEvent)

	// Bulk transfer callbacks (transfer.App).
	transfer.App
}

// Config parametrizes a Host.
type Config struct {
	// Enriched selects §6.2 local classification; false runs the flat
	// announcement protocol.
	Enriched bool
	// Transfer configures the bulk transfer tool.
	Transfer transfer.Options
	// ModeObserver, when non-nil, is called for every Figure-1 mode
	// transition with the dwell time spent in the mode being left
	// (obs.Collector.OnModeStep fits). Called on the host's event
	// goroutine; keep it fast.
	ModeObserver func(self ids.PID, st modes.Step, dwell time.Duration)
	// Metrics is the registry the host's counters and histograms are
	// registered in. Nil gets a private per-host registry, which keeps
	// Stats a per-host reading; passing one shared registry aggregates
	// the gobject.* metrics group-wide (and Stats then reports group
	// totals at every member).
	Metrics *obs.Registry
}

// Stats counts host activity. It is a point-in-time view over the
// host's obs metrics (see the Metric constants), kept for harnesses
// that want plain numbers without a registry snapshot.
type Stats struct {
	Classifications map[sstate.Kind]int
	Pulls           int
	Reconciles      int
}

// Host runs one replica of a group object.
type Host struct {
	p   *core.Process
	obj Object
	cfg Config

	tool *transfer.Tool

	mu       sync.Mutex
	machine  *modes.Machine
	settling *settle
	snapView ids.ViewID
	snaps    map[ids.PID][]byte
	closed   bool

	// Metric handles (lock-free); classCounters is the lazily built
	// per-classification-kind cache, guarded by statsMu along with the
	// open pull's start time.
	reg           *obs.Registry
	snapAnnounces *obs.Counter
	snapMerges    *obs.Counter
	pulls         *obs.Counter
	reconciles    *obs.Counter
	pullDuration  *obs.Histogram

	statsMu       sync.Mutex
	classCounters map[sstate.Kind]*obs.Counter
	pullStart     time.Time

	done chan struct{}
}

type settle struct {
	view    core.EView
	proto   *sstate.Protocol
	class   *sstate.Classification
	pulling bool
}

type hostMsg struct {
	Type string  `json:"t"` // "snap"
	From ids.PID `json:"from"`
	Data []byte  `json:"data"`
}

var hostMagic = []byte("\x01gobject1\x00")

func encodeHostMsg(m hostMsg) []byte {
	body, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("gobject: encode: %v", err)) // unreachable
	}
	return append(append([]byte{}, hostMagic...), body...)
}

func decodeHostMsg(payload []byte) (hostMsg, bool) {
	if !bytes.HasPrefix(payload, hostMagic) {
		return hostMsg{}, false
	}
	var m hostMsg
	if err := json.Unmarshal(payload[len(hostMagic):], &m); err != nil {
		return hostMsg{}, false
	}
	return m, true
}

// Open starts a replica of obj at the given site.
func Open(fabric transport.Transport, reg *stable.Registry, site string, coreOpts core.Options, cfg Config, obj Object) (*Host, error) {
	coreOpts.Enriched = cfg.Enriched
	coreOpts.LogViews = true
	p, err := core.Start(fabric, reg, site, coreOpts)
	if err != nil {
		return nil, fmt.Errorf("gobject: %w", err)
	}
	mreg := cfg.Metrics
	if mreg == nil {
		mreg = obs.NewRegistry()
	}
	h := &Host{
		p:             p,
		obj:           obj,
		cfg:           cfg,
		snaps:         make(map[ids.PID][]byte),
		reg:           mreg,
		snapAnnounces: mreg.Counter(MetricSnapAnnounces),
		snapMerges:    mreg.Counter(MetricSnapMerges),
		pulls:         mreg.Counter(MetricPulls),
		reconciles:    mreg.Counter(MetricReconciles),
		pullDuration:  mreg.Histogram(MetricPullDuration, pullDurationBuckets),
		classCounters: make(map[sstate.Kind]*obs.Counter),
		done:          make(chan struct{}),
	}
	h.tool = transfer.New(p, obj, cfg.Transfer)
	go h.run()
	return h, nil
}

// Process exposes the underlying process.
func (h *Host) Process() *core.Process { return h.p }

// Mode returns the current Figure-1 mode.
func (h *Host) Mode() modes.Mode {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.machine == nil {
		return modes.Settling
	}
	return h.machine.Mode()
}

// Metrics returns the registry the host's gobject.* metrics live in
// (the Config.Metrics registry, or the private one created for the
// host).
func (h *Host) Metrics() *obs.Registry { return h.reg }

// Stats returns a snapshot of the host counters, read back from the
// metrics registry.
func (h *Host) Stats() Stats {
	out := Stats{
		Pulls:      int(h.pulls.Value()),
		Reconciles: int(h.reconciles.Value()),
	}
	h.statsMu.Lock()
	out.Classifications = make(map[sstate.Kind]int, len(h.classCounters))
	for k, c := range h.classCounters {
		out.Classifications[k] = int(c.Value())
	}
	h.statsMu.Unlock()
	return out
}

// Multicast sends an external-operation message; allowed only in N-mode.
func (h *Host) Multicast(payload []byte) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrClosed
	}
	if h.machine == nil || h.machine.Mode() != modes.Normal {
		h.mu.Unlock()
		return ErrNotServing
	}
	h.mu.Unlock()
	return h.p.Multicast(payload)
}

// Close leaves the group.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	h.p.Leave()
	<-h.done
}

func (h *Host) run() {
	defer close(h.done)
	for ev := range h.p.Events() {
		switch e := ev.(type) {
		case core.ViewEvent:
			h.onView(e.EView)
		case core.EChangeEvent:
			h.onEChange(e)
		case core.MsgEvent:
			h.onMsg(e)
		}
	}
}

func (h *Host) onView(v core.EView) {
	h.mu.Lock()
	prevMode := modes.Settling
	prevView := ids.ViewID{}
	if h.machine != nil {
		prevMode = h.machine.Mode()
		prevView = h.machine.View().ID
	}
	if h.machine == nil {
		h.machine = modes.NewMachine(h.obj.ModeFunc(h.p.PID()), v)
		if fn := h.cfg.ModeObserver; fn != nil {
			self := h.p.PID()
			h.machine.Observe(func(st modes.Step, dwell time.Duration) {
				fn(self, st, dwell)
			})
		}
	} else {
		h.machine.OnView(v)
	}
	h.tool.Abort()
	h.settling = nil
	h.snapView = v.ID
	h.snaps = make(map[ids.PID][]byte)
	if h.machine.Mode() == modes.Settling {
		s := &settle{view: v}
		h.settling = s
		if h.cfg.Enriched {
			class := sstate.ClassifyEnriched(v, h.obj.WasNormal)
			s.class = &class
			h.countClassification(class.Kind)
		} else {
			s.proto = sstate.NewProtocol(v)
		}
	}
	h.mu.Unlock()

	h.announce()
	if !h.cfg.Enriched {
		if payload, err := sstate.Announcement(h.p.PID(), prevView, prevMode); err == nil {
			_ = h.p.Multicast(payload)
		}
	}
	h.advance()
}

// announce multicasts the object's snapshot (every member, every view —
// settlers need it to reconcile; N members answer so settlers can).
func (h *Host) announce() {
	snap, err := h.obj.Snapshot()
	if err != nil {
		return // the next view change retries
	}
	h.mu.Lock()
	h.snaps[h.p.PID()] = snap
	h.mu.Unlock()
	h.snapAnnounces.Inc()
	_ = h.p.Multicast(encodeHostMsg(hostMsg{Type: "snap", From: h.p.PID(), Data: snap}))
}

func (h *Host) countClassification(k sstate.Kind) {
	h.statsMu.Lock()
	c, ok := h.classCounters[k]
	if !ok {
		c = h.reg.Counter(MetricClassifyPrefix + k.String())
		h.classCounters[k] = c
	}
	h.statsMu.Unlock()
	c.Inc()
}

// onEChange tracks structure changes for the settle round but does not
// re-drive the mode machine: e-view changes only grow the structure
// (application merges), so they can never degrade a capability, while
// an AlwaysSettle-style mode function would spuriously Reconfigure a
// reconciled member back into S with no settle round open.
func (h *Host) onEChange(e core.EChangeEvent) {
	h.mu.Lock()
	if h.settling != nil {
		h.settling.view = e.EView
	}
	h.mu.Unlock()
	h.advance()
}

func (h *Host) onMsg(m core.MsgEvent) {
	if pr, handled, _ := h.tool.HandleMessage(m); handled {
		if pr.Done {
			h.mu.Lock()
			if h.settling != nil {
				h.settling.pulling = false
			}
			h.mu.Unlock()
			h.pulls.Inc()
			h.statsMu.Lock()
			if !h.pullStart.IsZero() {
				h.pullDuration.ObserveDuration(time.Since(h.pullStart))
				h.pullStart = time.Time{}
			}
			h.statsMu.Unlock()
			h.announce() // peers learn we caught up
			h.advance()
		}
		return
	}
	if sstate.IsInfo(m.Payload) {
		h.mu.Lock()
		s := h.settling
		if s != nil && s.proto != nil && m.View == s.view.ID {
			done, _ := s.proto.Offer(m)
			if done && s.class == nil {
				if class, err := s.proto.Classify(); err == nil {
					s.class = &class
					h.countClassification(class.Kind)
				}
			}
		}
		h.mu.Unlock()
		h.advance()
		return
	}
	if msg, ok := decodeHostMsg(m.Payload); ok {
		if msg.Type == "snap" {
			h.mu.Lock()
			inView := m.View == h.snapView
			if inView {
				h.snaps[msg.From] = msg.Data
			}
			h.mu.Unlock()
			if inView {
				h.snapMerges.Inc()
				_ = h.obj.MergeSnapshot(msg.From, msg.Data)
			}
			h.advance()
		}
		return
	}
	h.obj.Apply(m)
}

// advance drives the settle round and the sequencer's merge duty.
func (h *Host) advance() {
	h.mu.Lock()
	if h.machine == nil {
		h.mu.Unlock()
		return
	}
	view := h.p.CurrentView()
	comp := view.Comp()
	allAnnounced := h.snapView == view.ID && len(h.snaps) >= len(comp)
	snaps := make(map[ids.PID][]byte, len(h.snaps))
	for k, v := range h.snaps {
		snaps[k] = v
	}

	type action int
	const (
		actNone action = iota
		actPull
		actMergeSVSets
		actMergeSubviews
	)
	act := actNone
	var donor ids.PID

	// Settler: pull if the object says this replica is behind.
	if s := h.settling; s != nil && h.machine.Mode() == modes.Settling &&
		allAnnounced && s.class != nil && !s.pulling {
		if d, need := h.obj.NeedPull(view, snaps); need {
			donor = d
			s.pulling = true
			act = actPull
		}
	}

	// Sequencer: merge the structure once everyone announced and nobody
	// reports needing a pull (deterministic: NeedPull judges from the
	// same snapshot table everywhere).
	if act == actNone && h.cfg.Enriched && allAnnounced {
		if min, ok := comp.Min(); ok && min == h.p.PID() {
			if _, need := h.obj.NeedPull(view, snaps); !need {
				if view.Structure.NumSVSets() > 1 {
					act = actMergeSVSets
				} else if view.Structure.NumSubviews() > 1 {
					act = actMergeSubviews
				}
			}
		}
	}

	// Settler: reconcile once state and (enriched) structure agree.
	reconciled := false
	if act == actNone && h.settling != nil && h.machine.Mode() == modes.Settling &&
		allAnnounced && h.settling.class != nil && !h.settling.pulling {
		if _, need := h.obj.NeedPull(view, snaps); !need {
			// The machine's own rule: any capability but R may reconcile.
			// With the pull complete and every snapshot merged, the state
			// is reconstructed even if the mode function still reports S
			// (e.g. AlwaysSettle-style objects, or a structure merge that
			// has not round-tripped yet).
			if _, err := h.machine.Reconcile(); err == nil {
				h.settling = nil
				reconciled = true
			}
		}
	}

	var (
		svsets   []ids.SVSetID
		subviews []ids.SubviewID
	)
	switch act {
	case actMergeSVSets:
		svsets = view.Structure.SVSets()
	case actMergeSubviews:
		subviews = view.Structure.Subviews()
	}
	h.mu.Unlock()

	if reconciled {
		h.reconciles.Inc()
	}
	switch act {
	case actPull:
		h.statsMu.Lock()
		h.pullStart = time.Now()
		h.statsMu.Unlock()
		_ = h.tool.Request(donor)
	case actMergeSVSets:
		_ = h.p.SVSetMerge(svsets...)
	case actMergeSubviews:
		_ = h.p.SubviewMerge(subviews...)
	}
}
