package gobject_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gobject"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/obs"
	"repro/internal/quorum"
	"repro/internal/sstate"
	"repro/internal/vstest"
)

// blobObject is a versioned-blob group object exercising the framework's
// bulk-transfer path: snapshots carry only the version, behind replicas
// pull the content from the freshest member.
type blobObject struct {
	self ids.PID
	rw   quorum.RW

	mu      sync.Mutex
	version uint64
	content []byte
}

type blobSnap struct {
	Version uint64 `json:"v"`
}

var blobMagic = []byte("\x01blob\x00")

func (o *blobObject) ModeFunc(self ids.PID) modes.Func {
	return modes.QuorumEnriched(self, o.rw)
}

func (o *blobObject) WasNormal(cluster ids.PIDSet) bool { return o.rw.CanWrite(cluster) }

func (o *blobObject) Snapshot() ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return json.Marshal(blobSnap{Version: o.version})
}

func (o *blobObject) MergeSnapshot(ids.PID, []byte) error { return nil } // versions only inform NeedPull

func (o *blobObject) NeedPull(view core.EView, snaps map[ids.PID][]byte) (ids.PID, bool) {
	o.mu.Lock()
	mine := o.version
	o.mu.Unlock()
	var maxVer uint64
	var donor ids.PID
	for p, raw := range snaps {
		var s blobSnap
		if err := json.Unmarshal(raw, &s); err != nil {
			continue
		}
		if s.Version > maxVer || (s.Version == maxVer && (donor.IsZero() || p.Less(donor))) {
			maxVer, donor = s.Version, p
		}
	}
	if mine < maxVer {
		return donor, true
	}
	return ids.PID{}, false
}

func (o *blobObject) Apply(m core.MsgEvent) {
	if !bytes.HasPrefix(m.Payload, blobMagic) {
		return
	}
	body := m.Payload[len(blobMagic):]
	if len(body) < 8 {
		return
	}
	version := binary.BigEndian.Uint64(body[:8])
	o.mu.Lock()
	if version > o.version {
		o.version = version
		o.content = append([]byte{}, body[8:]...)
	}
	o.mu.Unlock()
}

func (o *blobObject) MarshalCritical() ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], o.version)
	return buf[:], nil
}

func (o *blobObject) MarshalBulk() ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], o.version)
	return append(buf[:], o.content...), nil
}

func (o *blobObject) ApplyCritical([]byte) error { return nil }

func (o *blobObject) ApplyBulk(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("short bulk")
	}
	version := binary.BigEndian.Uint64(b[:8])
	o.mu.Lock()
	defer o.mu.Unlock()
	if version > o.version {
		o.version = version
		o.content = append([]byte{}, b[8:]...)
	}
	return nil
}

func (o *blobObject) snapshotState() (uint64, []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.version, append([]byte{}, o.content...)
}

// write multicasts a new blob revision through the host.
func write(t *testing.T, h *gobject.Host, o *blobObject, version uint64, content string, timeout time.Duration) {
	t.Helper()
	payload := make([]byte, 0, len(blobMagic)+8+len(content))
	payload = append(payload, blobMagic...)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], version)
	payload = append(payload, buf[:]...)
	payload = append(payload, content...)
	deadline := time.Now().Add(timeout)
	for {
		if err := h.Multicast(payload); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("write v%d never accepted", version)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func blobCluster(t *testing.T, seed int64, n int, enriched bool) (*vstest.Net, []*gobject.Host, []*blobObject) {
	t.Helper()
	net := vstest.NewNet(t, seed)
	sites := make([]string, n)
	for i := range sites {
		sites[i] = vstest.SiteName(i)
	}
	rw := quorum.MajorityRW(quorum.Uniform(sites...))
	hosts := make([]*gobject.Host, 0, n)
	objs := make([]*blobObject, 0, n)
	for _, s := range sites {
		obj := &blobObject{rw: rw}
		h, err := gobject.Open(net.Fabric, net.Reg, s, vstest.FastOptions(), gobject.Config{Enriched: enriched}, obj)
		if err != nil {
			t.Fatalf("Open(%s): %v", s, err)
		}
		obj.self = h.Process().PID()
		t.Cleanup(h.Close)
		hosts = append(hosts, h)
		objs = append(objs, obj)
	}
	for _, h := range hosts {
		h := h
		vstest.Eventually(t, 15*time.Second, "N-mode", func() bool {
			return h.Mode() == modes.Normal
		})
	}
	return net, hosts, objs
}

func TestBlobReplication(t *testing.T) {
	_, hosts, objs := blobCluster(t, 600, 3, true)
	write(t, hosts[0], objs[0], 1, "rev one", 5*time.Second)
	vstest.Eventually(t, 5*time.Second, "replication", func() bool {
		for _, o := range objs {
			v, c := o.snapshotState()
			if v != 1 || string(c) != "rev one" {
				return false
			}
		}
		return true
	})
}

func TestBlobTransferAfterPartition(t *testing.T) {
	// The framework's pull path: the minority misses a write during the
	// partition and must transfer the bulk state from the majority on
	// repair.
	net, hosts, objs := blobCluster(t, 601, 5, true)
	write(t, hosts[0], objs[0], 1, "base", 5*time.Second)
	vstest.Eventually(t, 5*time.Second, "base replication", func() bool {
		for _, o := range objs {
			v, _ := o.snapshotState()
			if v != 1 {
				return false
			}
		}
		return true
	})

	net.Fabric.SetPartitions([]string{"a", "b", "c"}, []string{"d", "e"})
	for _, h := range hosts[3:] {
		h := h
		vstest.Eventually(t, 15*time.Second, "minority in R", func() bool {
			return h.Mode() == modes.Reduced
		})
	}
	for _, h := range hosts[:3] {
		h := h
		vstest.Eventually(t, 15*time.Second, "majority in N", func() bool {
			return h.Mode() == modes.Normal
		})
	}
	write(t, hosts[0], objs[0], 2, "written during partition", 10*time.Second)

	net.Fabric.Heal()
	for _, h := range hosts {
		h := h
		vstest.Eventually(t, 25*time.Second, "post-heal N", func() bool {
			return h.Mode() == modes.Normal
		})
	}
	vstest.Eventually(t, 10*time.Second, "minority caught up", func() bool {
		for _, o := range objs[3:] {
			v, c := o.snapshotState()
			if v != 2 || string(c) != "written during partition" {
				return false
			}
		}
		return true
	})
	pulls := 0
	transfersClassified := 0
	for _, h := range hosts {
		st := h.Stats()
		pulls += st.Pulls
		transfersClassified += st.Classifications[sstate.Transfer] + st.Classifications[sstate.TransferMerging]
	}
	if pulls == 0 {
		t.Error("no bulk pulls recorded; the framework transfer path never ran")
	}
	if transfersClassified == 0 {
		t.Error("no transfer classification recorded")
	}
}

func TestBlobFlatMode(t *testing.T) {
	_, hosts, objs := blobCluster(t, 602, 3, false)
	write(t, hosts[2], objs[2], 1, "flat", 5*time.Second)
	vstest.Eventually(t, 5*time.Second, "replication", func() bool {
		for _, o := range objs {
			v, _ := o.snapshotState()
			if v != 1 {
				return false
			}
		}
		return true
	})
	// Flat mode classified via the announcement protocol at formation.
	classified := 0
	for _, h := range hosts {
		for _, n := range h.Stats().Classifications {
			classified += n
		}
	}
	if classified == 0 {
		t.Error("flat mode never classified")
	}
}

func TestHostAPIErrors(t *testing.T) {
	net := vstest.NewNet(t, 603)
	rw := quorum.MajorityRW(quorum.Uniform("a", "b", "c"))
	obj := &blobObject{rw: rw}
	h, err := gobject.Open(net.Fabric, net.Reg, "a", vstest.FastOptions(), gobject.Config{Enriched: true}, obj)
	if err != nil {
		t.Fatal(err)
	}
	obj.self = h.Process().PID()
	// Singleton of a 3-site quorum system: R-mode, not serving.
	vstest.Eventually(t, 5*time.Second, "R-mode", func() bool {
		return h.Mode() == modes.Reduced
	})
	if err := h.Multicast([]byte("x")); err != gobject.ErrNotServing {
		t.Fatalf("Multicast in R: %v", err)
	}
	h.Close()
	if err := h.Multicast([]byte("x")); err != gobject.ErrClosed {
		t.Fatalf("Multicast after close: %v", err)
	}
	h.Close() // idempotent
}

// TestModeObserver wires the observability collector into the host's
// mode machine and checks that reaching N-mode (the S -Reconcile-> N
// arc every member takes at formation) lands in the dwell histograms
// and transition counters.
func TestModeObserver(t *testing.T) {
	net := vstest.NewNet(t, 604)
	const n = 3
	sites := make([]string, n)
	for i := range sites {
		sites[i] = vstest.SiteName(i)
	}
	rw := quorum.MajorityRW(quorum.Uniform(sites...))

	coll := obs.NewCollector(obs.NewRegistry(), nil)
	cfg := gobject.Config{Enriched: true, ModeObserver: coll.OnModeStep}
	hosts := make([]*gobject.Host, 0, n)
	for _, s := range sites {
		obj := &blobObject{rw: rw}
		h, err := gobject.Open(net.Fabric, net.Reg, s, vstest.FastOptions(), cfg, obj)
		if err != nil {
			t.Fatalf("Open(%s): %v", s, err)
		}
		obj.self = h.Process().PID()
		t.Cleanup(h.Close)
		hosts = append(hosts, h)
	}
	for _, h := range hosts {
		h := h
		vstest.Eventually(t, 15*time.Second, "N-mode", func() bool {
			return h.Mode() == modes.Normal
		})
	}

	snap := coll.Registry().Snapshot()
	if got := snap.Counters[obs.MetricModeTransitionPrefix+"Reconcile"]; got < n {
		t.Fatalf("mode.transitions.Reconcile = %d, want >= %d", got, n)
	}
	dwellS := snap.Histograms[obs.MetricModeDwellPrefix+"S"]
	if dwellS.Count < n {
		t.Fatalf("mode.dwell_s.S count = %d, want >= %d", dwellS.Count, n)
	}
}

// TestHostMetrics: the host registers its activity counters in the
// Config.Metrics registry (shared here, so values aggregate across the
// cluster) and Stats reads back from the same counters.
func TestHostMetrics(t *testing.T) {
	net := vstest.NewNet(t, 605)
	const n = 3
	sites := make([]string, n)
	for i := range sites {
		sites[i] = vstest.SiteName(i)
	}
	rw := quorum.MajorityRW(quorum.Uniform(sites...))

	reg := obs.NewRegistry()
	cfg := gobject.Config{Enriched: true, Metrics: reg}
	hosts := make([]*gobject.Host, 0, n)
	objs := make([]*blobObject, 0, n)
	for _, s := range sites {
		obj := &blobObject{rw: rw}
		h, err := gobject.Open(net.Fabric, net.Reg, s, vstest.FastOptions(), cfg, obj)
		if err != nil {
			t.Fatalf("Open(%s): %v", s, err)
		}
		obj.self = h.Process().PID()
		t.Cleanup(h.Close)
		hosts = append(hosts, h)
		objs = append(objs, obj)
	}
	for _, h := range hosts {
		h := h
		vstest.Eventually(t, 15*time.Second, "N-mode", func() bool {
			return h.Mode() == modes.Normal
		})
	}
	write(t, hosts[0], objs[0], 1, "metered", 5*time.Second)

	snap := reg.Snapshot()
	if got := snap.Counters[gobject.MetricSnapAnnounces]; got < n {
		t.Fatalf("%s = %d, want >= %d", gobject.MetricSnapAnnounces, got, n)
	}
	// Each member merges the n-1 peers' announcements at formation.
	if got := snap.Counters[gobject.MetricSnapMerges]; got < n*(n-1) {
		t.Fatalf("%s = %d, want >= %d", gobject.MetricSnapMerges, got, n*(n-1))
	}
	if got := snap.Counters[gobject.MetricReconciles]; got < n {
		t.Fatalf("%s = %d, want >= %d", gobject.MetricReconciles, got, n)
	}
	if got := snap.Counters[gobject.MetricClassifyPrefix+sstate.Creation.String()]; got == 0 {
		t.Fatalf("no %s%s classifications recorded", gobject.MetricClassifyPrefix, sstate.Creation)
	}
	// Stats is a view over the same counters; with a shared registry it
	// reports the group totals at every member.
	st := hosts[0].Stats()
	if uint64(st.Reconciles) != snap.Counters[gobject.MetricReconciles] {
		t.Fatalf("Stats.Reconciles = %d, registry says %d", st.Reconciles, snap.Counters[gobject.MetricReconciles])
	}
	if hosts[0].Metrics() != reg {
		t.Fatal("Metrics() does not return the shared registry")
	}
}
