package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// TestHistogramBucketEdges pins the boundary rule: an observation equal
// to a bound lands in that bound's bucket; anything above the last
// bound lands in the overflow bucket.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0},
		{0.5, 0},
		{1, 0}, // exactly on a bound -> that bucket
		{1.0001, 1},
		{2, 1},
		{4.9, 2},
		{5, 2},
		{5.0001, 3}, // above the last bound -> overflow
		{math.Inf(1), 3},
	}
	for _, tc := range cases {
		before := make([]uint64, len(h.counts))
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(tc.v)
		for i := range h.counts {
			want := before[i]
			if i == tc.bucket {
				want++
			}
			if got := h.counts[i].Load(); got != want {
				t.Fatalf("Observe(%v): bucket %d = %d, want %d", tc.v, i, got, want)
			}
		}
	}
	if got := h.Count(); got != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", got, len(cases))
	}
}

func TestHistogramSumAndDuration(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	h.Observe(0.25)
	h.ObserveDuration(750 * time.Millisecond)
	if got, want := h.Sum(), 1.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	if got := h.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

// TestHistogramUnsortedBounds: constructor sorts, so callers can pass
// bounds in any order.
func TestHistogramUnsortedBounds(t *testing.T) {
	h := newHistogram([]float64{5, 1, 2})
	h.Observe(1.5)
	if got := h.counts[1].Load(); got != 1 {
		t.Fatalf("Observe(1.5) with unsorted bounds: bucket 1 = %d, want 1", got)
	}
}

// TestConcurrentMetrics hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this doubles as the
// lock-freedom soundness check, and the final totals verify no lost
// updates.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix registration with updates: lookups race the write lock.
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", []float64{0.5})
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	const total = goroutines * perG
	if got := r.Counter("c").Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("g").Value(); got != total {
		t.Fatalf("gauge = %d, want %d", got, total)
	}
	h := r.Histogram("h", nil)
	if got := h.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	if got, want := h.Sum(), 0.25*total; math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
}

func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter returned different handles for one name")
	}
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{9}) // later bounds ignored
	if h1 != h2 {
		t.Fatal("Histogram returned different handles for one name")
	}
	if len(h1.bounds) != 2 {
		t.Fatalf("first registration's bounds lost: %v", h1.bounds)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs.sent").Add(3)
	r.Gauge("group.size").Set(5)
	r.Histogram("lat", []float64{0.1, 1}).Observe(0.05)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["msgs.sent"] != 3 {
		t.Fatalf("counter in snapshot = %d, want 3", s.Counters["msgs.sent"])
	}
	if s.Gauges["group.size"] != 5 {
		t.Fatalf("gauge in snapshot = %d, want 5", s.Gauges["group.size"])
	}
	h := s.Histograms["lat"]
	if h.Count != 1 || len(h.Counts) != len(h.Bounds)+1 {
		t.Fatalf("histogram in snapshot = %+v", h)
	}
	if h.Counts[0] != 1 {
		t.Fatalf("0.05 should land in the first bucket: %v", h.Counts)
	}
	if s.TakenAt.IsZero() {
		t.Fatal("TakenAt not stamped")
	}
}

// TestLogLinearBuckets pins the shape of generated bounds: perDecade
// bounds per factor of ten, first bound exactly min, last bound >= max.
func TestLogLinearBuckets(t *testing.T) {
	b := LogLinearBuckets(0.001, 1, 1)
	// One bound per decade: 0.001, 0.01, 0.1, 1 (modulo float rounding).
	if len(b) != 4 {
		t.Fatalf("bounds = %v, want 4 entries", b)
	}
	if b[0] != 0.001 {
		t.Fatalf("first bound = %v, want min exactly", b[0])
	}
	if b[len(b)-1] < 1 {
		t.Fatalf("last bound = %v, must cover max", b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", b)
		}
		ratio := b[i] / b[i-1]
		if math.Abs(ratio-10) > 1e-9 {
			t.Fatalf("ratio b[%d]/b[%d] = %v, want 10", i, i-1, ratio)
		}
	}
	// Finer spacing: 4 per decade over 3 decades -> 13 bounds.
	b = LogLinearBuckets(0.001, 1, 4)
	if len(b) != 13 {
		t.Fatalf("4/decade over 3 decades: %d bounds (%v), want 13", len(b), b)
	}
	for _, bad := range []func(){
		func() { LogLinearBuckets(0, 1, 1) },
		func() { LogLinearBuckets(1, 1, 1) },
		func() { LogLinearBuckets(0.1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid arguments did not panic")
				}
			}()
			bad()
		}()
	}
}

// TestSetBuckets: an override installed before first registration wins
// over the bounds passed to Histogram; after the histogram exists the
// override is a no-op; nil removes a pending override.
func TestSetBuckets(t *testing.T) {
	r := NewRegistry()
	r.SetBuckets("lat", []float64{1, 10, 100})
	h := r.Histogram("lat", []float64{0.001, 0.01})
	if got := len(h.bounds); got != 3 || h.bounds[2] != 100 {
		t.Fatalf("override ignored: bounds = %v", h.bounds)
	}
	// Mutating the caller's slice must not affect the stored override.
	r2 := NewRegistry()
	bs := []float64{1, 2}
	r2.SetBuckets("lat", bs)
	bs[0] = 999
	if got := r2.Histogram("lat", nil).bounds[0]; got != 1 {
		t.Fatalf("override aliases caller slice: bounds[0] = %v", got)
	}
	// Too late: histogram already exists.
	r.SetBuckets("lat", []float64{7})
	if got := r.Histogram("lat", nil); got != h || len(got.bounds) != 3 {
		t.Fatalf("late SetBuckets changed an existing histogram: %v", got.bounds)
	}
	// nil removes a pending override.
	r3 := NewRegistry()
	r3.SetBuckets("lat", []float64{5})
	r3.SetBuckets("lat", nil)
	if got := r3.Histogram("lat", []float64{0.5}).bounds; len(got) != 1 || got[0] != 0.5 {
		t.Fatalf("nil did not clear override: bounds = %v", got)
	}
}
