package obs

import (
	"testing"
	"time"
)

// tAt returns a deterministic timestamp ms milliseconds into a fixed
// epoch, so phase math in tests is exact.
func tAt(ms int) time.Time {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return base.Add(time.Duration(ms) * time.Millisecond)
}

func TestSpanPhases(t *testing.T) {
	// One complete view change at one process: suspicion at 0ms, first
	// proposal at 10ms, ack at 12ms, flush completing at 40ms having
	// taken 5ms, install at 41ms.
	events := []Event{
		{Type: EvInstall, PID: "a#1", View: "a#1:1", Round: 1, At: tAt(0)}, // bootstrap
		{Type: EvSuspect, PID: "a#1", Peer: "b#1", Note: "suspected", At: tAt(0)},
		{Type: EvPropose, PID: "a#1", View: "a#1:2", Round: 2, N: 1, At: tAt(10)},
		{Type: EvAck, PID: "a#1", View: "a#1:2", Round: 2, At: tAt(12)},
		{Type: EvFlush, PID: "a#1", View: "a#1:1", Round: 2, N: 3, DurMS: 5, At: tAt(40)},
		{Type: EvInstall, PID: "a#1", View: "a#1:2", Round: 2, N: 1, At: tAt(41)},
	}
	set := AssembleSpans(events)
	if got := len(set.Spans); got != 2 {
		t.Fatalf("spans = %d, want 2 (bootstrap + change)", got)
	}
	boot, sp := set.Spans[0], set.Spans[1]
	if !boot.Bootstrap || !boot.Closed {
		t.Errorf("first span: Bootstrap=%v Closed=%v, want true/true", boot.Bootstrap, boot.Closed)
	}
	if sp.Bootstrap {
		t.Errorf("second span marked bootstrap")
	}
	if !sp.Closed || sp.View != "a#1:2" || sp.Round != 2 {
		t.Errorf("span = %+v, want closed view a#1:2 round 2", sp)
	}
	if sp.Detect != 10*time.Millisecond {
		t.Errorf("Detect = %v, want 10ms", sp.Detect)
	}
	// Agree runs from the first proposal (10ms) to the flush start
	// (40ms − 5ms = 35ms).
	if sp.Agree != 25*time.Millisecond {
		t.Errorf("Agree = %v, want 25ms", sp.Agree)
	}
	if sp.Flush != 5*time.Millisecond {
		t.Errorf("Flush = %v, want 5ms", sp.Flush)
	}
	if sp.Install != 1*time.Millisecond {
		t.Errorf("Install = %v, want 1ms", sp.Install)
	}
	if sp.Total() != 41*time.Millisecond {
		t.Errorf("Total = %v, want 41ms", sp.Total())
	}
	if !sp.Coordinator {
		t.Errorf("Coordinator = false, want true (we proposed round 2)")
	}
	if sp.Recovered != 3 || sp.Suspicions != 1 || sp.Proposals != 1 {
		t.Errorf("counts = %+v, want recovered 3, suspicions 1, proposals 1", sp)
	}
	if len(set.Acks) != 1 || set.Acks[0].Round != 2 {
		t.Errorf("acks = %+v, want one sample for round 2", set.Acks)
	}
	if set.Unclosed() != 0 {
		t.Errorf("Unclosed = %d, want 0", set.Unclosed())
	}
}

func TestSpanTruncatedTraceUnclosed(t *testing.T) {
	// The trace ends mid-change: the span must be reported, unclosed.
	events := []Event{
		{Type: EvSuspect, PID: "a#1", Peer: "b#1", Note: "suspected", At: tAt(0)},
		{Type: EvPropose, PID: "a#1", View: "a#1:2", Round: 2, At: tAt(5)},
		// no flush, no install — truncated here
	}
	set := AssembleSpans(events)
	if len(set.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(set.Spans))
	}
	sp := set.Spans[0]
	if sp.Closed {
		t.Errorf("span closed, want unclosed")
	}
	if !sp.End.IsZero() {
		t.Errorf("End = %v, want zero for unclosed span", sp.End)
	}
	if sp.Total() != 0 {
		t.Errorf("Total = %v, want 0 for unclosed span", sp.Total())
	}
	if sp.Suspicions != 1 || sp.Proposals != 1 {
		t.Errorf("counts = %+v, want partial activity preserved", sp)
	}
	if set.Unclosed() != 1 {
		t.Errorf("Unclosed = %d, want 1", set.Unclosed())
	}
}

func TestSpanOverlappingProposals(t *testing.T) {
	// Two overlapping membership rounds inside one span: the first
	// proposal's acks time out, a retry for a later round wins. The
	// span must close once, at the winning install, with the retry
	// counted and the coordinator flag keyed to the installed round.
	events := []Event{
		{Type: EvSuspect, PID: "a#1", Peer: "c#1", Note: "suspected", At: tAt(0)},
		{Type: EvPropose, PID: "a#1", View: "a#1:2", Round: 2, At: tAt(4)},
		{Type: EvAck, PID: "a#1", View: "a#1:2", Round: 2, At: tAt(5)},
		{Type: EvSuspect, PID: "a#1", Peer: "d#1", Note: "suspected", At: tAt(20)},
		{Type: EvPropose, PID: "a#1", View: "a#1:3", Round: 3, Note: "retry", At: tAt(34)},
		{Type: EvAck, PID: "a#1", View: "a#1:3", Round: 3, At: tAt(35)},
		{Type: EvFlush, PID: "a#1", View: "a#1:1", Round: 3, DurMS: 2, At: tAt(50)},
		{Type: EvInstall, PID: "a#1", View: "a#1:3", Round: 3, At: tAt(51)},
	}
	set := AssembleSpans(events)
	if len(set.Spans) != 1 {
		t.Fatalf("spans = %d, want 1 (overlapping rounds are one span)", len(set.Spans))
	}
	sp := set.Spans[0]
	if !sp.Closed || sp.Round != 3 {
		t.Errorf("span = %+v, want closed at round 3", sp)
	}
	if sp.Proposals != 2 || sp.Retries != 1 || sp.Suspicions != 2 {
		t.Errorf("proposals=%d retries=%d suspicions=%d, want 2/1/2",
			sp.Proposals, sp.Retries, sp.Suspicions)
	}
	if !sp.Coordinator {
		t.Errorf("Coordinator = false, want true (we proposed the installed round 3)")
	}
	// Detect anchors at the FIRST suspicion and first agreement
	// activity: 0ms → 4ms.
	if sp.Detect != 4*time.Millisecond {
		t.Errorf("Detect = %v, want 4ms", sp.Detect)
	}
	// Agree spans both rounds: 4ms → flush start 48ms.
	if sp.Agree != 44*time.Millisecond {
		t.Errorf("Agree = %v, want 44ms", sp.Agree)
	}
	if len(set.Acks) != 2 {
		t.Errorf("acks = %d, want 2 (one per round)", len(set.Acks))
	}
}

func TestSpanRunBoundaryNoCrossCorrelation(t *testing.T) {
	// An EvRun boundary restarts the identifier space: the open span in
	// generation 0 must be truncated (unclosed), the install re-using
	// the same PID and round in generation 1 must NOT close it, and a
	// send in generation 0 must not pair with a deliver of the same
	// message id in generation 1.
	events := []Event{
		{Type: EvSend, PID: "a#1", Msg: "a#1:1|7", At: tAt(0)},
		{Type: EvSuspect, PID: "a#1", Peer: "b#1", Note: "suspected", At: tAt(1)},
		{Type: EvPropose, PID: "a#1", View: "a#1:2", Round: 2, At: tAt(5)},
		{Type: EvRun, Note: "next-scenario", At: tAt(10)},
		{Type: EvDeliver, PID: "b#1", Msg: "a#1:1|7", At: tAt(11)},
		{Type: EvInstall, PID: "a#1", View: "a#1:2", Round: 2, At: tAt(12)},
	}
	set := AssembleSpans(events)
	if len(set.Latencies) != 0 {
		t.Errorf("latencies = %+v, want none (send and deliver in different generations)", set.Latencies)
	}
	if len(set.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (truncated gen-0 span + gen-1 bootstrap)", len(set.Spans))
	}
	var unclosed, boot *ViewSpan
	for i := range set.Spans {
		if set.Spans[i].Closed {
			boot = &set.Spans[i]
		} else {
			unclosed = &set.Spans[i]
		}
	}
	if unclosed == nil || boot == nil {
		t.Fatalf("spans = %+v, want one unclosed and one closed", set.Spans)
	}
	if unclosed.Gen != 0 || unclosed.Proposals != 1 {
		t.Errorf("unclosed span = %+v, want gen 0 with the pre-boundary proposal", unclosed)
	}
	if boot.Gen != 1 || !boot.Bootstrap {
		t.Errorf("gen-1 install = %+v, want bootstrap in gen 1 (no correlation across EvRun)", boot)
	}
	if set.Unclosed() != 1 {
		t.Errorf("Unclosed = %d, want 1", set.Unclosed())
	}
}

func TestSpanFalseSuspicionDiscarded(t *testing.T) {
	// A suspicion fully revoked before any round starts is not a view
	// change: no span, and the next real change anchors at ITS first
	// event, not at the stale suspicion.
	events := []Event{
		{Type: EvSuspect, PID: "a#1", Peer: "b#1", Note: "suspected", At: tAt(0)},
		{Type: EvSuspect, PID: "a#1", Peer: "b#1", Note: "false-suspicion", At: tAt(3)},
		{Type: EvSuspect, PID: "a#1", Peer: "c#1", Note: "suspected", At: tAt(100)},
		{Type: EvPropose, PID: "a#1", View: "a#1:2", Round: 2, At: tAt(110)},
		{Type: EvFlush, PID: "a#1", View: "a#1:1", Round: 2, DurMS: 1, At: tAt(115)},
		{Type: EvInstall, PID: "a#1", View: "a#1:2", Round: 2, At: tAt(116)},
	}
	set := AssembleSpans(events)
	if len(set.Spans) != 1 {
		t.Fatalf("spans = %+v, want 1 (revoked suspicion discarded)", set.Spans)
	}
	sp := set.Spans[0]
	if !sp.Start.Equal(tAt(100)) {
		t.Errorf("Start = %v, want anchored at the second suspicion (100ms)", sp.Start)
	}
	if sp.Detect != 10*time.Millisecond {
		t.Errorf("Detect = %v, want 10ms", sp.Detect)
	}
}

func TestSpanMessageLatencyKinds(t *testing.T) {
	events := []Event{
		{Type: EvSend, PID: "a#1", Msg: "a#1:1|1", At: tAt(0)},
		{Type: EvDeliver, PID: "b#1", Msg: "a#1:1|1", At: tAt(2)},                 // normal multicast
		{Type: EvDeliver, PID: "c#1", Msg: "a#1:1|1", Kind: "flush", At: tAt(30)}, // recovered in flush
		{Type: EvDeliver, PID: "d#1", Msg: "x#1:9|9", At: tAt(5)},                 // never sent: ignored
	}
	set := AssembleSpans(events)
	if len(set.Latencies) != 2 {
		t.Fatalf("latencies = %+v, want 2", set.Latencies)
	}
	if set.Latencies[0].Kind != "multicast" || set.Latencies[0].Latency != 2*time.Millisecond {
		t.Errorf("first sample = %+v, want multicast 2ms", set.Latencies[0])
	}
	if set.Latencies[1].Kind != "flush" || set.Latencies[1].Latency != 30*time.Millisecond {
		t.Errorf("second sample = %+v, want flush 30ms (latency from the original send)", set.Latencies[1])
	}
}

func TestSpanAssemblerLiveCollector(t *testing.T) {
	// The assembler attached as a tracer sink sees the same stream the
	// JSONL sink would; feed a realistic sequence through a Tracer to
	// exercise the Sink path including repropose events.
	asm := NewSpanAssembler()
	tr := NewTracer(64, asm)
	tr.Append(Event{Type: EvRepropose, PID: "a#1", Peer: "b#1", View: "a#1:2", Note: "b#1:3", At: tAt(0)})
	tr.Append(Event{Type: EvPropose, PID: "a#1", View: "a#1:3", Round: 3, At: tAt(1)})
	tr.Append(Event{Type: EvFlush, PID: "a#1", View: "a#1:2", Round: 3, DurMS: 1, At: tAt(8)})
	tr.Append(Event{Type: EvInstall, PID: "a#1", View: "a#1:3", Round: 3, At: tAt(9)})
	set := asm.Finish()
	if len(set.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(set.Spans))
	}
	sp := set.Spans[0]
	if sp.Reproposals != 1 {
		t.Errorf("Reproposals = %d, want 1", sp.Reproposals)
	}
	if !sp.Closed || !sp.Coordinator {
		t.Errorf("span = %+v, want closed coordinator span", sp)
	}
	// A divergence re-proposal has no suspicion: the whole pre-flush
	// time is Detect(0) + Agree.
	if sp.Detect != 1*time.Millisecond {
		t.Errorf("Detect = %v, want 1ms (repropose → propose)", sp.Detect)
	}
}

func TestSpanReconcileIsNotASpan(t *testing.T) {
	// A reconcile heals a divergence without a membership round: the
	// assembler must count it but must NOT open a span for it (an
	// opened span would never close — no install follows at the
	// reconciler — and would fail the profiler's unclosed check).
	events := []Event{
		{Type: EvInstall, PID: "a#1", View: "a#1:1", Round: 1, At: tAt(0)},
		{Type: EvReconcile, PID: "a#1", Peer: "c#1", View: "a#1:1", N: 1, At: tAt(5)},
		{Type: EvReconcile, PID: "a#1", Peer: "c#1", View: "a#1:1", N: 2, At: tAt(15)},
	}
	set := AssembleSpans(events)
	if set.Reconciles != 2 {
		t.Errorf("Reconciles = %d, want 2", set.Reconciles)
	}
	if got := len(set.Spans); got != 1 {
		t.Fatalf("spans = %d, want 1 (the bootstrap install only)", got)
	}
	if set.Unclosed() != 0 {
		t.Errorf("Unclosed = %d, want 0: reconciles must not open spans", set.Unclosed())
	}
}
