package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. All methods are safe
// for concurrent use and lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use and lock-free.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. An observation lands in the
// first bucket whose upper bound is >= the value; values above the last
// bound land in the implicit +Inf overflow bucket. Observations are
// lock-free (atomic adds plus a CAS loop for the running sum).
type Histogram struct {
	bounds []float64       // sorted upper bounds; immutable after creation
	counts []atomic.Uint64 // len(bounds)+1, last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Default bucket bounds, in seconds.
var (
	// LatencyBuckets covers view-change and e-change latencies at
	// simulation timescales: 100µs to 2.5s.
	LatencyBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
	}
	// DurationBuckets covers short on-loop work (ticks, flushes):
	// 1µs to 10ms.
	DurationBuckets = []float64{
		0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	}
	// GapBuckets covers heartbeat gaps: 1ms to 1s.
	GapBuckets = []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
	}
)

// LogLinearBuckets returns histogram bucket bounds spaced evenly in log
// space: perDecade bounds per factor of ten, from min up to the first
// bound >= max (inclusive), so the range is always covered. Use it when
// a simulation outgrows the compile-time defaults above instead of
// recompiling the bounds:
//
//	reg.SetBuckets(obs.MetricViewChangeLatency, obs.LogLinearBuckets(0.001, 60, 4))
//
// min must be positive, max greater than min, perDecade at least 1;
// LogLinearBuckets panics otherwise (the arguments are programmer
// constants, not runtime data).
func LogLinearBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade < 1 {
		panic(fmt.Sprintf("obs: LogLinearBuckets(%v, %v, %d): need 0 < min < max and perDecade >= 1",
			min, max, perDecade))
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for v := min; ; v *= ratio {
		out = append(out, v)
		if v >= max {
			return out
		}
	}
}

// Registry is a named collection of metrics. Registration (the first
// lookup of a name) takes a write lock; subsequent lookups take a read
// lock, and all metric updates are lock-free on the returned handles —
// instrument hot paths by caching the handle, not the name.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// bucketOverride maps a histogram name to the bucket bounds to use
	// instead of whatever the first Histogram call passes. See SetBuckets.
	bucketOverride map[string][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:       make(map[string]*Counter),
		gauges:         make(map[string]*Gauge),
		histograms:     make(map[string]*Histogram),
		bucketOverride: make(map[string][]float64),
	}
}

// SetBuckets overrides the bucket bounds the named histogram will be
// created with, taking precedence over the bounds passed to Histogram.
// It lets a harness retune instrumented code (the Collector registers
// its histograms with the compile-time defaults) without recompiling:
// call it before the histogram's first registration — typically right
// after NewRegistry, before the registry is handed to NewCollector. A
// call after the histogram exists is a no-op (the histogram's buckets
// are immutable); overriding with nil removes the override.
func (r *Registry) SetBuckets(name string, bounds []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if bounds == nil {
		delete(r.bucketOverride, name)
		return
	}
	r.bucketOverride[name] = append([]float64(nil), bounds...)
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use. Later calls ignore bounds
// (the first registration wins), and a SetBuckets override for the name
// takes precedence over bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; !ok {
		if override, ok := r.bucketOverride[name]; ok {
			bounds = override
		}
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the serializable state of one histogram. Counts
// has one entry per bound plus the trailing +Inf overflow bucket.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Snapshot is a point-in-time copy of a registry's metrics, shaped for
// JSON serialization (vsbench -metrics writes one).
type Snapshot struct {
	TakenAt    time.Time                    `json:"taken_at"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. Counters touched while the
// snapshot is being taken may or may not be included; each individual
// value is read atomically.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		TakenAt:    time.Now(),
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes an indented JSON snapshot of the registry to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
