package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/evs"
)

// EventType discriminates trace events.
type EventType string

// The trace event types. One line of a JSONL trace carries exactly one.
const (
	// EvSend: the process multicast (or unicast) an application message.
	EvSend EventType = "send"
	// EvDeliver: the process delivered an application message.
	EvDeliver EventType = "deliver"
	// EvSuspect: the failure detector flipped its opinion of a peer
	// (Note is "suspected" or "cleared").
	EvSuspect EventType = "suspect"
	// EvPropose: the process started coordinating a membership round.
	EvPropose EventType = "propose"
	// EvRepropose: the process is about to start a membership round
	// solely because a co-member advertises a different view id with an
	// unchanged composition (install-propagation divergence) — churn
	// that no failure-detector tuning removes. Peer is the diverging
	// member, View our view, Note the peer's. The matching EvPropose
	// follows immediately.
	EvRepropose EventType = "repropose"
	// EvReconcile: the process re-sent its cached install to a co-member
	// advertising an older view id with an unchanged composition — the
	// reconciliation fast path healing an install-propagation divergence
	// without a membership round. Peer is the lagging member, View the
	// re-sent view, N the re-send attempt count for that peer (1-based).
	// No EvPropose or EvInstall follows at the reconciler.
	EvReconcile EventType = "reconcile"
	// EvAck: the process acked a proposal and blocked (flush discipline).
	EvAck EventType = "ack"
	// EvInstall: the process installed a view.
	EvInstall EventType = "install"
	// EvFlush: the flush phase of an install completed.
	EvFlush EventType = "flush"
	// EvEChange: the process applied an e-view change.
	EvEChange EventType = "echange"
	// EvMode: the Figure-1 mode machine took a transition.
	EvMode EventType = "mode"
	// EvRun: a run boundary. Harnesses that funnel several independent
	// simulations through one tracer (vsbench running an experiment's
	// sub-scenarios over fresh fabrics) append one of these between
	// them; process and view identifiers restart across the boundary,
	// so trace analysis must not correlate events across it. Emitted by
	// Tracer.MarkRun, never by the Collector.
	EvRun EventType = "run"
)

// Event is one structured trace event. Seq is a per-tracer monotonic
// sequence number assigned at append time; At is the wall-clock time of
// the event. The remaining fields are type-dependent and omitted when
// empty — the README "Observability" section documents which fields
// each type carries.
type Event struct {
	Seq  uint64    `json:"seq"`
	At   time.Time `json:"at"`
	PID  string    `json:"pid"`
	Type EventType `json:"type"`
	// View is the view id the event concerns (installed view, proposal,
	// message origin view).
	View string `json:"view,omitempty"`
	// Msg is the message id for send/deliver events.
	Msg string `json:"msg,omitempty"`
	// Peer is the other process for suspect events.
	Peer string `json:"peer,omitempty"`
	// Kind labels the event's flavor: e-change kind, mode transition
	// label, or delivery flavor ("flush", "unicast").
	Kind string `json:"kind,omitempty"`
	// N is a type-dependent count (view size, recovered messages,
	// e-change sequence number).
	N int `json:"n,omitempty"`
	// Round is the membership-round identifier — the epoch of the
	// proposal the event belongs to — carried by propose, ack, and
	// install events. Epochs strictly increase along a process history,
	// so Round pairs each Ack with the Install that resolves it even
	// when proposals overlap (the View string alone cannot order them
	// numerically).
	Round uint64 `json:"round,omitempty"`
	// Struct is the canonical subview/sv-set grouping summary for
	// install and echange events (see StructureSummary): sv-sets joined
	// by "|", subviews within an sv-set by "+", members within a
	// subview by ",", everything sorted. It carries the grouping only —
	// exactly what P6.3 preserves — not the view-scoped identifiers.
	Struct string `json:"struct,omitempty"`
	// DurMS is a type-dependent duration in milliseconds (flush
	// duration, mode dwell).
	DurMS float64 `json:"dur_ms,omitempty"`
	// Note carries anything else ("retry", "suspected", "N->S").
	Note string `json:"note,omitempty"`
}

// StructureSummary renders the subview/sv-set grouping of an enriched
// view structure canonically for Event.Struct: sv-sets joined by "|",
// subviews within an sv-set joined by "+", member PIDs within a subview
// joined by "," — all in sorted order, e.g. "a#1,b#1+c#1|d#1" for
// {{a,b},{c}} in one sv-set and {{d}} in another. The encoding is
// deliberately free of the view-scoped subview/sv-set identifiers:
// P6.3 preserves the grouping across views, never the identifiers, and
// the grouping is also what survives a seed change (trace diffing
// compares Struct directly). The rendering lives on evs.Structure
// (Summary) so the live status endpoint shares it; this wrapper remains
// the trace-facing name.
func StructureSummary(s evs.Structure) string { return s.Summary() }

// Sink receives every event appended to a Tracer, synchronously and in
// order (the tracer serializes emission under its lock). Sinks must not
// call back into the tracer.
type Sink interface {
	Emit(Event)
}

// Tracer is a bounded in-memory ring of events with optional sinks.
// Safe for concurrent use; events from all processes sharing the tracer
// are interleaved in one global sequence.
type Tracer struct {
	mu    sync.Mutex
	seq   uint64
	ring  []Event
	next  int
	full  bool
	sinks []Sink
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// NewTracer creates a tracer whose ring holds the last capacity events
// (DefaultTraceCapacity if capacity <= 0). Sinks additionally receive
// every event as it is appended, so a JSONL sink sees the complete
// stream even after the ring wraps.
func NewTracer(capacity int, sinks ...Sink) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Event, capacity), sinks: sinks}
}

// Append assigns the event its sequence number (and timestamp, when
// At is zero), stores it in the ring, and emits it to every sink.
func (t *Tracer) Append(ev Event) {
	t.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	for _, s := range t.sinks {
		s.Emit(ev)
	}
	t.mu.Unlock()
}

// MarkRun appends an EvRun boundary marker with the given label. Call
// it between independent simulations sharing this tracer so that trace
// analysis (internal/tracecheck) treats the identifier spaces on either
// side as unrelated.
func (t *Tracer) MarkRun(label string) {
	t.Append(Event{Type: EvRun, Note: label})
}

// Len returns the number of events currently held in the ring.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}

// Total returns the number of events ever appended (the ring holds the
// last min(Total, capacity) of them).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Events returns the ring contents, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// JSONLSink writes each event as one JSON object per line. It does not
// buffer; wrap the writer in a bufio.Writer (and flush it) for files.
type JSONLSink struct {
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// TextSink writes each event as one human-readable line.
type TextSink struct{ w io.Writer }

// NewTextSink returns a sink writing aligned text lines to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit implements Sink.
func (s *TextSink) Emit(ev Event) {
	line := fmt.Sprintf("%8d %s %-8s %-14s", ev.Seq, ev.At.Format("15:04:05.000000"), ev.Type, ev.PID)
	if ev.View != "" {
		line += " view=" + ev.View
	}
	if ev.Msg != "" {
		line += " msg=" + ev.Msg
	}
	if ev.Peer != "" {
		line += " peer=" + ev.Peer
	}
	if ev.Kind != "" {
		line += " kind=" + ev.Kind
	}
	if ev.N != 0 {
		line += fmt.Sprintf(" n=%d", ev.N)
	}
	if ev.Round != 0 {
		line += fmt.Sprintf(" round=%d", ev.Round)
	}
	if ev.Struct != "" {
		line += " struct=" + ev.Struct
	}
	if ev.DurMS != 0 {
		line += fmt.Sprintf(" dur=%.3fms", ev.DurMS)
	}
	if ev.Note != "" {
		line += " " + ev.Note
	}
	fmt.Fprintln(s.w, line)
}

// MemorySink collects every event in memory; tests use it to assert on
// the full stream independent of the ring capacity.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit implements Sink.
func (s *MemorySink) Emit(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Events returns a copy of everything collected.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}
