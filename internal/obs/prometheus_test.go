package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden locks the exposition format down against a
// registry with one of each metric family: counters and gauges as
// single samples, histograms as cumulative le-buckets plus
// _sum/_count, names sanitized to the Prometheus charset, sections
// ordered counters → gauges → histograms with names sorted within
// each.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("view.installs").Add(3)
	r.Gauge("group.size").Set(5)
	h := r.Histogram("tick.duration_s", []float64{0.001, 0.01})
	h.Observe(0.0005) // bucket le=0.001
	h.Observe(0.002)  // bucket le=0.01
	h.Observe(99)     // overflow → only +Inf

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE view_installs counter
view_installs 3
# TYPE group_size gauge
group_size 5
# TYPE tick_duration_s histogram
tick_duration_s_bucket{le="0.001"} 1
tick_duration_s_bucket{le="0.01"} 2
tick_duration_s_bucket{le="+Inf"} 3
tick_duration_s_sum 99.0025
tick_duration_s_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusConsistency: the exposition is rendered from one
// Snapshot, so a histogram's _count equals its +Inf bucket and the
// per-kind counter families show up with sanitized dotted names.
func TestWritePrometheusConsistency(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkts.sent.hb").Add(7)
	r.Counter("pkts.sent.data").Add(2)
	h := r.Histogram("view.change_latency_s", LatencyBuckets)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) * 0.01)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"pkts_sent_hb 7",
		"pkts_sent_data 2",
		`view_change_latency_s_bucket{le="+Inf"} 10`,
		"view_change_latency_s_count 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// No dots may survive sanitization outside label values.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := strings.FieldsFunc(line, func(r rune) bool { return r == '{' || r == ' ' })[0]
		if strings.Contains(name, ".") {
			t.Errorf("unsanitized metric name %q", name)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"view.installs":     "view_installs",
		"mode.dwell_s.N":    "mode_dwell_s_N",
		"9lives":            "_9lives",
		"ok_name:total":     "ok_name:total",
		"weird-chars here!": "weird_chars_here_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
