package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestTracerSeqAndStamp(t *testing.T) {
	tr := NewTracer(8)
	tr.Append(Event{Type: EvSend, PID: "a#1"})
	tr.Append(Event{Type: EvDeliver, PID: "b#1"})
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("seqs = %d, %d, want 1, 2", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].At.IsZero() {
		t.Fatal("At not stamped")
	}
	fixed := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tr.Append(Event{Type: EvInstall, At: fixed})
	if got := tr.Events()[2].At; !got.Equal(fixed) {
		t.Fatalf("caller-provided At overwritten: %v", got)
	}
}

// TestTracerWraparound fills a small ring past capacity and checks the
// ring keeps exactly the last capacity events, oldest first, while
// Total and the sinks see the whole stream.
func TestTracerWraparound(t *testing.T) {
	const capacity = 4
	mem := NewMemorySink()
	tr := NewTracer(capacity, mem)
	const total = 11
	for i := 0; i < total; i++ {
		tr.Append(Event{Type: EvSend, Note: fmt.Sprintf("e%d", i)})
	}
	if got := tr.Total(); got != total {
		t.Fatalf("Total = %d, want %d", got, total)
	}
	if got := tr.Len(); got != capacity {
		t.Fatalf("Len = %d, want %d", got, capacity)
	}
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("Events len = %d, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		wantSeq := uint64(total - capacity + 1 + i)
		wantNote := fmt.Sprintf("e%d", total-capacity+i)
		if ev.Seq != wantSeq || ev.Note != wantNote {
			t.Fatalf("ring[%d] = seq %d note %q, want seq %d note %q",
				i, ev.Seq, ev.Note, wantSeq, wantNote)
		}
	}
	if got := len(mem.Events()); got != total {
		t.Fatalf("sink saw %d events, want the full stream of %d", got, total)
	}
}

// TestTracerPartialRing: before wrapping, Events returns only what was
// appended.
func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(16)
	tr.Append(Event{Type: EvSend})
	tr.Append(Event{Type: EvDeliver})
	if got := tr.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if evs := tr.Events(); len(evs) != 2 || evs[0].Seq != 1 {
		t.Fatalf("Events = %+v", evs)
	}
}

func TestTracerConcurrentAppend(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	const goroutines, perG = 8, 500
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				tr.Append(Event{Type: EvSend})
			}
		}()
	}
	wg.Wait()
	if got := tr.Total(); got != goroutines*perG {
		t.Fatalf("Total = %d, want %d", got, goroutines*perG)
	}
	// Seqs in the ring must be the last 64, strictly increasing.
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("ring seqs not contiguous: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestJSONLGolden serializes a fixed sequence of events (deterministic
// timestamps) and compares byte-for-byte with the checked-in golden
// file. Run with -update to regenerate it.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(16, sink)

	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	events := []Event{
		{At: at(0), PID: "a#1", Type: EvSend, Msg: "m1@a#1", View: "v1@a#1"},
		{At: at(1), PID: "b#1", Type: EvDeliver, Msg: "m1@a#1", View: "v1@a#1"},
		{At: at(5), PID: "a#1", Type: EvSuspect, Peer: "c#1", Note: "suspected"},
		{At: at(7), PID: "a#1", Type: EvPropose, View: "v2@a#1", N: 2, Round: 2, Note: "retry"},
		{At: at(8), PID: "b#1", Type: EvAck, View: "v2@a#1", Round: 2},
		{At: at(12), PID: "a#1", Type: EvFlush, View: "v1@a#1", N: 1, DurMS: 0.25},
		{At: at(13), PID: "a#1", Type: EvInstall, View: "v2@a#1", N: 2, Round: 2, Struct: "a#1|b#1"},
		{At: at(20), PID: "a#1", Type: EvEChange, View: "v2@a#1", Kind: "SVSetMerge", N: 1, Note: "ss3/v2@a#1", Struct: "a#1+b#1"},
		{At: at(25), PID: "a#1", Type: EvMode, Kind: "Reconcile", DurMS: 12.5, Note: "S->N"},
		{At: at(30), Type: EvRun, Note: "second scenario"},
	}
	for _, ev := range events {
		tr.Append(ev)
	}
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	golden := filepath.Join("testdata", "trace.jsonl")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("JSONL output differs from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// And every line must round-trip as JSON.
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(4, NewTextSink(&buf))
	tr.Append(Event{PID: "a#1", Type: EvInstall, View: "v2@a#1", N: 3})
	line := buf.String()
	for _, want := range []string{"install", "a#1", "view=v2@a#1", "n=3"} {
		if !bytes.Contains([]byte(line), []byte(want)) {
			t.Fatalf("text line %q missing %q", line, want)
		}
	}
}
