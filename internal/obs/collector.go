package obs

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/modes"
)

// Metric names the Collector registers. Per-packet-kind counters are
// the listed prefixes plus the fabric kind label ("data", "hb",
// "propose", "ack", "install", "echange", "mergereq", "other").
const (
	// Counters.
	MetricViewInstalls  = "view.installs"
	MetricViewProposals = "view.proposals"
	MetricViewRetries   = "view.proposal_retries"
	MetricViewBlocks    = "view.blocks"
	MetricSuspicions    = "fd.suspicions"
	// MetricFalseSuspicions counts suspicions later revoked by a fresh
	// liveness indication from the same incarnation — i.e. the peer was
	// alive the whole time (a crashed site returns as a new PID, so its
	// suspicion is never cleared). Forced suspicions that get cleared
	// count too: they are false by construction.
	MetricFalseSuspicions = "fd.false_suspicion_total"
	// MetricReproposals counts membership rounds started solely because
	// a co-member advertised a different view id with an unchanged
	// composition (peerView divergence after install propagation or an
	// asymmetric partition). These rounds are the churn the E7 10 ms
	// anomaly exposed: no detector tuning removes them, so the span
	// profiler attributes agreement latency to them separately.
	MetricReproposals = "core.reproposal_total"
	// MetricReconciles counts install re-sends by the reconciliation fast
	// path: the coordinator re-delivered its cached Install to a member
	// advertising an older view id with an unchanged composition, healing
	// the divergence without a membership round. Every reconcile is a
	// re-proposal (and its ~ProposeTimeout agree-phase outlier) avoided.
	MetricReconciles      = "core.reconcile_total"
	MetricEChangeApplied  = "echange.applied"
	MetricEChangeRequests = "echange.requests"
	MetricFlushRecovered  = "flush.recovered_msgs"
	MetricMulticasts      = "msgs.multicast"
	MetricDelivered       = "msgs.delivered"
	MetricFlushDelivered  = "msgs.flush_delivered"

	// Gauges.
	MetricGroupSize = "group.size"
	// MetricEventQueueDepth is the application event-queue depth
	// sampled at each housekeeping tick (see
	// core.ExtendedObserver.OnLoopHealth). With several processes
	// sharing one collector the gauge holds the most recent sample from
	// any of them; per-process depth lives in core.Status.
	MetricEventQueueDepth = "eventq.depth"

	// Histograms (values in seconds).
	MetricViewChangeLatency = "view.change_latency_s"
	MetricEChangeLatency    = "echange.latency_s"
	MetricFlushDuration     = "flush.duration_s"
	MetricTickDuration      = "tick.duration_s"
	// MetricTickLag records how much later than the configured period
	// each housekeeping tick fired — the event-loop overload signal
	// (OnLoopHealth), as opposed to MetricTickDuration which times the
	// tick's own work.
	MetricTickLag      = "loop.tick_lag_s"
	MetricHeartbeatGap = "fd.heartbeat_gap_s"
	// MetricFDEffectiveTimeout records every adaptive-timeout update
	// (one observation per heartbeat-gap sample on processes running
	// with Options.AdaptiveFD).
	MetricFDEffectiveTimeout = "fd.effective_timeout_s"

	// Per-kind counter prefixes.
	MetricPktSentPrefix   = "pkts.sent."
	MetricPktRecvPrefix   = "pkts.recv."
	MetricBytesSentPrefix = "bytes.sent."
	MetricBytesRecvPrefix = "bytes.recv."

	// Mode metric prefixes: dwell histograms per mode being left
	// ("mode.dwell_s.N") and transition counters per Figure-1 label
	// ("mode.transitions.Failure").
	MetricModeDwellPrefix      = "mode.dwell_s."
	MetricModeTransitionPrefix = "mode.transitions."
)

// Collector implements core.ExtendedObserver, folding every run-time
// instrumentation hook into a metrics Registry and (optionally) a
// Tracer. One Collector serves any number of processes: events carry
// the process id, and per-process latency anchors (first suspicion to
// install, merge request to e-change) are tracked internally.
//
// Callbacks arrive on each process's protocol goroutine; the hot paths
// (packets, deliveries, ticks) touch only lock-free metric handles or a
// short-lived read lock on the per-kind counter cache.
type Collector struct {
	reg *Registry
	tr  *Tracer

	viewInstalls   *Counter
	viewProposals  *Counter
	viewRetries    *Counter
	viewBlocks     *Counter
	suspicions     *Counter
	falseSusp      *Counter
	reproposals    *Counter
	reconciles     *Counter
	echApplied     *Counter
	echRequests    *Counter
	flushRecovered *Counter
	multicasts     *Counter
	delivered      *Counter
	flushDelivered *Counter
	groupSize      *Gauge
	eventqDepth    *Gauge
	viewLatency    *Histogram
	echLatency     *Histogram
	flushDuration  *Histogram
	tickDuration   *Histogram
	tickLag        *Histogram
	heartbeatGap   *Histogram
	effTimeout     *Histogram

	kindMu sync.RWMutex
	sent   map[string]*kindCounters
	recv   map[string]*kindCounters

	mu    sync.Mutex
	procs map[ids.PID]*procObs
	// susp is the last suspicion state seen per (observer, peer) pair,
	// used to tell a revoked (false) suspicion from a first-contact
	// clear.
	susp map[pidPair]bool
}

// pidPair keys per-(observer, peer) state.
type pidPair struct{ self, peer ids.PID }

// kindCounters are the msg/byte counter pair for one packet kind and
// direction.
type kindCounters struct {
	msgs  *Counter
	bytes *Counter
}

// procObs is the per-process latency-anchor state.
type procObs struct {
	// changeStart is when the current view change began at this process
	// (first suspicion, proposal, or block since the last install).
	changeStart time.Time
	// mergeStart is when the process last submitted a merge request.
	mergeStart time.Time
}

// NewCollector creates a collector writing metrics to reg and, when tr
// is non-nil, trace events to tr. A nil reg gets a private registry
// (useful when only the trace is wanted).
func NewCollector(reg *Registry, tr *Tracer) *Collector {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Collector{
		reg:            reg,
		tr:             tr,
		viewInstalls:   reg.Counter(MetricViewInstalls),
		viewProposals:  reg.Counter(MetricViewProposals),
		viewRetries:    reg.Counter(MetricViewRetries),
		viewBlocks:     reg.Counter(MetricViewBlocks),
		suspicions:     reg.Counter(MetricSuspicions),
		falseSusp:      reg.Counter(MetricFalseSuspicions),
		reproposals:    reg.Counter(MetricReproposals),
		reconciles:     reg.Counter(MetricReconciles),
		echApplied:     reg.Counter(MetricEChangeApplied),
		echRequests:    reg.Counter(MetricEChangeRequests),
		flushRecovered: reg.Counter(MetricFlushRecovered),
		multicasts:     reg.Counter(MetricMulticasts),
		delivered:      reg.Counter(MetricDelivered),
		flushDelivered: reg.Counter(MetricFlushDelivered),
		groupSize:      reg.Gauge(MetricGroupSize),
		eventqDepth:    reg.Gauge(MetricEventQueueDepth),
		viewLatency:    reg.Histogram(MetricViewChangeLatency, LatencyBuckets),
		echLatency:     reg.Histogram(MetricEChangeLatency, LatencyBuckets),
		flushDuration:  reg.Histogram(MetricFlushDuration, DurationBuckets),
		tickDuration:   reg.Histogram(MetricTickDuration, DurationBuckets),
		tickLag:        reg.Histogram(MetricTickLag, DurationBuckets),
		heartbeatGap:   reg.Histogram(MetricHeartbeatGap, GapBuckets),
		effTimeout:     reg.Histogram(MetricFDEffectiveTimeout, GapBuckets),
		sent:           make(map[string]*kindCounters),
		recv:           make(map[string]*kindCounters),
		procs:          make(map[ids.PID]*procObs),
		susp:           make(map[pidPair]bool),
	}
}

var _ core.ExtendedObserver = (*Collector)(nil)

// Registry returns the registry the collector writes to.
func (c *Collector) Registry() *Registry { return c.reg }

// Tracer returns the tracer, or nil when tracing is off.
func (c *Collector) Tracer() *Tracer { return c.tr }

// MarkRun forwards a run-boundary marker to the tracer (a no-op when
// tracing is off). Harnesses call it between independent simulations
// sharing one collector; see Tracer.MarkRun.
func (c *Collector) MarkRun(label string) {
	if c.tr != nil {
		c.tr.MarkRun(label)
	}
}

func (c *Collector) emit(ev Event) {
	if c.tr != nil {
		c.tr.Append(ev)
	}
}

func (c *Collector) proc(pid ids.PID) *procObs {
	p, ok := c.procs[pid]
	if !ok {
		p = &procObs{}
		c.procs[pid] = p
	}
	return p
}

// markChange anchors the start of a view change at self, if not already
// anchored since the last install.
func (c *Collector) markChange(self ids.PID) {
	c.mu.Lock()
	p := c.proc(self)
	if p.changeStart.IsZero() {
		p.changeStart = time.Now()
	}
	c.mu.Unlock()
}

// ---- core.Observer ----

// OnSend implements core.Observer.
func (c *Collector) OnSend(self ids.PID, id ids.MsgID, view ids.ViewID) {
	c.multicasts.Inc()
	c.emit(Event{PID: self.String(), Type: EvSend, Msg: id.String(), View: view.String()})
}

// OnDeliver implements core.Observer.
func (c *Collector) OnDeliver(self ids.PID, ev core.MsgEvent) {
	c.delivered.Inc()
	kind := ""
	if ev.Flushed {
		c.flushDelivered.Inc()
		kind = "flush"
	} else if ev.Unicast {
		kind = "unicast"
	}
	c.emit(Event{PID: self.String(), Type: EvDeliver, Msg: ev.ID.String(), View: ev.View.String(), Kind: kind})
}

// OnView implements core.Observer: closes the view-change latency
// window opened by the first suspicion/proposal/block since the last
// install.
func (c *Collector) OnView(self ids.PID, ev core.ViewEvent) {
	c.viewInstalls.Inc()
	c.groupSize.Set(int64(ev.EView.Size()))
	c.mu.Lock()
	p := c.proc(self)
	if !p.changeStart.IsZero() {
		c.viewLatency.ObserveDuration(time.Since(p.changeStart))
		p.changeStart = time.Time{}
	}
	c.mu.Unlock()
	c.emit(Event{PID: self.String(), Type: EvInstall, View: ev.EView.ID.String(),
		N: ev.EView.Size(), Round: ev.EView.ID.Epoch, Struct: StructureSummary(ev.EView.Structure)})
}

// OnEChange implements core.Observer: closes the e-change latency
// window opened by this process's merge request, when there is one.
func (c *Collector) OnEChange(self ids.PID, ev core.EChangeEvent) {
	c.echApplied.Inc()
	c.mu.Lock()
	p := c.proc(self)
	if !p.mergeStart.IsZero() {
		c.echLatency.ObserveDuration(time.Since(p.mergeStart))
		p.mergeStart = time.Time{}
	}
	c.mu.Unlock()
	// Note carries the identifier the merge created — together with the
	// Seq it lets the P6.1 checker compare the e-change *content*, not
	// just its position, across processes.
	note := ""
	switch ev.Kind {
	case core.EChangeSubviewMerge:
		note = ev.NewSubview.String()
	case core.EChangeSVSetMerge:
		note = ev.NewSVSet.String()
	}
	c.emit(Event{PID: self.String(), Type: EvEChange, View: ev.EView.ID.String(),
		Kind: ev.Kind.String(), N: int(ev.Seq), Note: note,
		Struct: StructureSummary(ev.EView.Structure)})
}

// ---- core.ExtendedObserver ----

// OnSuspectChange implements core.ExtendedObserver. A clear that revokes
// a standing suspicion of the same incarnation means the peer was alive
// all along — a false suspicion (see MetricFalseSuspicions).
func (c *Collector) OnSuspectChange(self, peer ids.PID, suspected bool) {
	key := pidPair{self, peer}
	c.mu.Lock()
	wasSuspected := c.susp[key]
	c.susp[key] = suspected
	c.mu.Unlock()
	note := "cleared"
	if suspected {
		note = "suspected"
		c.suspicions.Inc()
		c.markChange(self)
	} else if wasSuspected {
		note = "false-suspicion"
		c.falseSusp.Inc()
	}
	c.emit(Event{PID: self.String(), Type: EvSuspect, Peer: peer.String(), Note: note})
}

// OnHeartbeatGap implements core.ExtendedObserver.
func (c *Collector) OnHeartbeatGap(_, _ ids.PID, gap time.Duration) {
	c.heartbeatGap.ObserveDuration(gap)
}

// OnEffectiveTimeout implements core.ExtendedObserver.
func (c *Collector) OnEffectiveTimeout(_, _ ids.PID, timeout time.Duration) {
	c.effTimeout.ObserveDuration(timeout)
}

// OnPropose implements core.ExtendedObserver.
func (c *Collector) OnPropose(self ids.PID, proposal ids.ViewID, members int, retry bool) {
	c.viewProposals.Inc()
	note := ""
	if retry {
		c.viewRetries.Inc()
		note = "retry"
	}
	c.markChange(self)
	c.emit(Event{PID: self.String(), Type: EvPropose, View: proposal.String(),
		N: members, Round: proposal.Epoch, Note: note})
}

// OnBlock implements core.ExtendedObserver.
func (c *Collector) OnBlock(self ids.PID, proposal ids.ViewID) {
	c.viewBlocks.Inc()
	c.markChange(self)
	c.emit(Event{PID: self.String(), Type: EvAck, View: proposal.String(), Round: proposal.Epoch})
}

// OnFlush implements core.ExtendedObserver. View is the predecessor
// view being flushed; Round is the epoch of the proposal about to be
// installed, pinning the flush to its membership round for the span
// profiler even when proposals overlap.
func (c *Collector) OnFlush(self ids.PID, pred, proposal ids.ViewID, recovered int, d time.Duration) {
	c.flushDuration.ObserveDuration(d)
	c.flushRecovered.Add(uint64(recovered))
	c.emit(Event{PID: self.String(), Type: EvFlush, View: pred.String(), Round: proposal.Epoch,
		N: recovered, DurMS: float64(d) / float64(time.Millisecond)})
}

// OnReproposal implements core.ExtendedObserver: a membership round is
// starting only to reunify diverged view ids (see MetricReproposals).
func (c *Collector) OnReproposal(self, peer ids.PID, ours, theirs ids.ViewID) {
	c.reproposals.Inc()
	c.markChange(self)
	c.emit(Event{PID: self.String(), Type: EvRepropose, Peer: peer.String(),
		View: ours.String(), Note: theirs.String()})
}

// OnReconcile implements core.ExtendedObserver: the coordinator is
// re-sending its cached install to a lagging co-member instead of
// starting a round (see MetricReconciles). Deliberately does NOT anchor
// a view-change window (markChange): no install follows at the
// reconciler, so anchoring would leave the window open and misattribute
// the next genuine change's latency.
func (c *Collector) OnReconcile(self, peer ids.PID, view ids.ViewID, attempt int) {
	c.reconciles.Inc()
	c.emit(Event{PID: self.String(), Type: EvReconcile, Peer: peer.String(),
		View: view.String(), N: attempt})
}

// OnPacket implements core.ExtendedObserver. Not traced (one multicast
// generates O(n) packets); per-kind counters only.
func (c *Collector) OnPacket(_ ids.PID, kind string, size int, sent bool) {
	kc := c.kind(kind, sent)
	kc.msgs.Inc()
	kc.bytes.Add(uint64(size))
}

// OnTick implements core.ExtendedObserver.
func (c *Collector) OnTick(_ ids.PID, d time.Duration) {
	c.tickDuration.ObserveDuration(d)
}

// OnLoopHealth implements core.ExtendedObserver: the event-queue depth
// gauge and the tick-lag histogram. Not traced — it fires every tick.
func (c *Collector) OnLoopHealth(_ ids.PID, queued int, lag time.Duration) {
	c.eventqDepth.Set(int64(queued))
	c.tickLag.ObserveDuration(lag)
}

// OnMergeRequest implements core.ExtendedObserver: opens the e-change
// latency window closed by OnEChange.
func (c *Collector) OnMergeRequest(self ids.PID, _ core.EChangeKind) {
	c.echRequests.Inc()
	c.mu.Lock()
	c.proc(self).mergeStart = time.Now()
	c.mu.Unlock()
}

// kind returns the counter pair for a packet kind and direction,
// creating and caching it on first use.
func (c *Collector) kind(kind string, sent bool) *kindCounters {
	m := c.recv
	if sent {
		m = c.sent
	}
	c.kindMu.RLock()
	kc, ok := m[kind]
	c.kindMu.RUnlock()
	if ok {
		return kc
	}
	c.kindMu.Lock()
	defer c.kindMu.Unlock()
	if kc, ok = m[kind]; ok {
		return kc
	}
	if sent {
		kc = &kindCounters{
			msgs:  c.reg.Counter(MetricPktSentPrefix + kind),
			bytes: c.reg.Counter(MetricBytesSentPrefix + kind),
		}
	} else {
		kc = &kindCounters{
			msgs:  c.reg.Counter(MetricPktRecvPrefix + kind),
			bytes: c.reg.Counter(MetricBytesRecvPrefix + kind),
		}
	}
	m[kind] = kc
	return kc
}

// ---- mode machine ----

// OnModeStep records a Figure-1 mode transition: a dwell-time
// observation for the mode being left, a transition counter, and a
// trace event. Wire it to a mode machine via gobject.Config.ModeObserver
// or machine.Observe:
//
//	machine.Observe(func(st modes.Step, dwell time.Duration) {
//		coll.OnModeStep(pid, st, dwell)
//	})
func (c *Collector) OnModeStep(self ids.PID, st modes.Step, dwell time.Duration) {
	c.reg.Histogram(MetricModeDwellPrefix+st.From.String(), GapBuckets).ObserveDuration(dwell)
	c.reg.Counter(MetricModeTransitionPrefix + st.Label.String()).Inc()
	c.emit(Event{PID: self.String(), Type: EvMode, View: st.View.String(),
		Kind: st.Label.String(), DurMS: float64(dwell) / float64(time.Millisecond),
		Note: st.From.String() + "->" + st.To.String()})
}

// ---- composition ----

// Tee composes observers into one: every core.Observer callback fans
// out to all of them, and every core.ExtendedObserver hook fans out to
// those that implement the extension. Nil arguments are skipped; Tee
// returns nil when none remain (leaving the run-time on its no-op fast
// path), and the observer itself when only one remains. It lets the
// property checker's Recorder and a Collector watch the same process
// without rewiring:
//
//	opts.Observer = obs.Tee(check.NewRecorder(), obs.NewCollector(reg, tr))
func Tee(observers ...core.Observer) core.Observer {
	list := make([]core.Observer, 0, len(observers))
	for _, o := range observers {
		if o != nil {
			list = append(list, o)
		}
	}
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	}
	t := tee(list)
	var ext []core.ExtendedObserver
	for _, o := range list {
		if e, ok := o.(core.ExtendedObserver); ok {
			ext = append(ext, e)
		}
	}
	if len(ext) == 0 {
		return t
	}
	return &teeExt{tee: t, ext: ext}
}

// tee fans the plain Observer callbacks out to every member.
type tee []core.Observer

func (t tee) OnSend(self ids.PID, id ids.MsgID, view ids.ViewID) {
	for _, o := range t {
		o.OnSend(self, id, view)
	}
}

func (t tee) OnDeliver(self ids.PID, ev core.MsgEvent) {
	for _, o := range t {
		o.OnDeliver(self, ev)
	}
}

func (t tee) OnView(self ids.PID, ev core.ViewEvent) {
	for _, o := range t {
		o.OnView(self, ev)
	}
}

func (t tee) OnEChange(self ids.PID, ev core.EChangeEvent) {
	for _, o := range t {
		o.OnEChange(self, ev)
	}
}

// teeExt additionally fans the extended hooks out to the members that
// implement them.
type teeExt struct {
	tee
	ext []core.ExtendedObserver
}

func (t *teeExt) OnSuspectChange(self, peer ids.PID, suspected bool) {
	for _, o := range t.ext {
		o.OnSuspectChange(self, peer, suspected)
	}
}

func (t *teeExt) OnHeartbeatGap(self, peer ids.PID, gap time.Duration) {
	for _, o := range t.ext {
		o.OnHeartbeatGap(self, peer, gap)
	}
}

func (t *teeExt) OnEffectiveTimeout(self, peer ids.PID, timeout time.Duration) {
	for _, o := range t.ext {
		o.OnEffectiveTimeout(self, peer, timeout)
	}
}

func (t *teeExt) OnPropose(self ids.PID, proposal ids.ViewID, members int, retry bool) {
	for _, o := range t.ext {
		o.OnPropose(self, proposal, members, retry)
	}
}

func (t *teeExt) OnBlock(self ids.PID, proposal ids.ViewID) {
	for _, o := range t.ext {
		o.OnBlock(self, proposal)
	}
}

func (t *teeExt) OnFlush(self ids.PID, pred, proposal ids.ViewID, recovered int, d time.Duration) {
	for _, o := range t.ext {
		o.OnFlush(self, pred, proposal, recovered, d)
	}
}

func (t *teeExt) OnReproposal(self, peer ids.PID, ours, theirs ids.ViewID) {
	for _, o := range t.ext {
		o.OnReproposal(self, peer, ours, theirs)
	}
}

func (t *teeExt) OnReconcile(self, peer ids.PID, view ids.ViewID, attempt int) {
	for _, o := range t.ext {
		o.OnReconcile(self, peer, view, attempt)
	}
}

func (t *teeExt) OnPacket(self ids.PID, kind string, size int, sent bool) {
	for _, o := range t.ext {
		o.OnPacket(self, kind, size, sent)
	}
}

func (t *teeExt) OnTick(self ids.PID, d time.Duration) {
	for _, o := range t.ext {
		o.OnTick(self, d)
	}
}

func (t *teeExt) OnLoopHealth(self ids.PID, queued int, lag time.Duration) {
	for _, o := range t.ext {
		o.OnLoopHealth(self, queued, lag)
	}
}

func (t *teeExt) OnMergeRequest(self ids.PID, kind core.EChangeKind) {
	for _, o := range t.ext {
		o.OnMergeRequest(self, kind)
	}
}
