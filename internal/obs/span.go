package obs

import (
	"sync"
	"time"
)

// This file assembles the flat trace stream into latency spans: the
// per-process view-change span (first suspicion → install, split into
// the detect / agree / flush / install phases of the membership
// protocol) and send→deliver message-latency samples. The assembly is
// purely event-driven — it works identically on a live stream (attach
// the assembler as a tracer Sink) and on a JSONL trace read back from
// disk (AssembleSpans) — and never correlates across EvRun boundaries:
// identifiers restart there, so every span and sample carries the
// generation it belongs to.
//
// internal/profile consumes the assembled SpanSet to compute phase
// percentiles, per-kind delivery latencies, and the critical-path
// member of each install.

// ViewSpan is one process's passage through one view change: from the
// moment the change became locally visible (a suspicion, a divergence
// re-proposal, a proposal, or an ack — whichever came first since the
// previous install) to the install that resolved it.
//
// The phase boundaries follow the membership protocol:
//
//	Detect  — first suspicion → first proposal/ack (failure detection
//	          and the mismatch dwell; zero for join-driven changes that
//	          start directly at a proposal or ack)
//	Agree   — first proposal/ack → flush start (proposal rounds,
//	          including retries and overlapping competing proposals,
//	          until the winning install arrives)
//	Flush   — delivering the messages co-survivors delivered (P2.1)
//	Install — flush end → the install callback (view bookkeeping)
type ViewSpan struct {
	PID string
	// Gen is the run generation (count of EvRun markers before the
	// span); spans never cross a generation boundary.
	Gen int
	// View and Round identify the installed view; empty/zero while the
	// span is unclosed.
	View  string
	Round uint64
	// Start anchors the span; End is the install time (zero when
	// unclosed).
	Start, End time.Time
	// The phase durations. All zero for Bootstrap spans.
	Detect, Agree, Flush, Install time.Duration
	// Suspicions counts "suspected" transitions observed within the
	// span; Proposals/Retries the membership rounds this process
	// coordinated; Reproposals the peerView-divergence rounds among
	// them (see EvRepropose); Recovered the messages the flush
	// re-delivered.
	Suspicions  int
	Proposals   int
	Retries     int
	Reproposals int
	Recovered   int
	// Coordinator reports that this process proposed the round it
	// installed.
	Coordinator bool
	// Bootstrap marks an install with no preceding protocol activity:
	// the singleton view a process installs at Start (or the head of a
	// truncated trace). Bootstrap spans carry no phases.
	Bootstrap bool
	// Closed is false for spans still open when their generation (or
	// the stream) ended — a view change that never completed, either
	// because the trace was truncated or because the run ended
	// mid-change.
	Closed bool
}

// Total returns the whole span duration (zero when unclosed).
func (s ViewSpan) Total() time.Duration {
	if !s.Closed {
		return 0
	}
	return s.End.Sub(s.Start)
}

// AckSample is one process's ack (block) for one membership round.
// The profiler derives the critical-path member of each install from
// these: the coordinator cannot install until the last ack arrives, so
// the member with the latest ack gated the view.
type AckSample struct {
	PID   string
	Gen   int
	View  string
	Round uint64
	At    time.Time
}

// MsgLatency is one send→deliver pair: the delivery latency of one
// message at one receiver, labeled with the delivery kind ("multicast",
// "flush", "unicast"). Flush deliveries measure from the original send,
// so they expose how long Agreement held a message back.
type MsgLatency struct {
	Kind    string
	Gen     int
	Msg     string
	To      string
	Latency time.Duration
}

// SpanSet is everything assembled from one trace.
type SpanSet struct {
	Spans     []ViewSpan
	Acks      []AckSample
	Latencies []MsgLatency
	// Reconciles counts EvReconcile events seen across the trace.
	// A reconciled divergence is deliberately NOT a span: the lagging
	// peer installs the re-sent view, but the reconciler itself runs no
	// detect/agree/flush sequence — opening a span for it would leave it
	// unclosed and fail the profiler's sanity checks.
	Reconciles int
}

// Unclosed counts the spans that never saw their install.
func (s SpanSet) Unclosed() int {
	n := 0
	for _, sp := range s.Spans {
		if !sp.Closed {
			n++
		}
	}
	return n
}

// spanState is the per-process open-span accumulator.
type spanState struct {
	start      time.Time
	firstAgree time.Time
	// openSuspects is the net count of standing suspicions within the
	// span; when it returns to zero before any agreement activity the
	// span is discarded (all suspicions were revoked, no round started,
	// no view change is coming).
	openSuspects int
	sawSuspect   bool
	flushEnd     time.Time
	flushDur     time.Duration
	flushSeen    bool
	recovered    int
	suspicions   int
	proposals    int
	retries      int
	reproposals  int
	proposed     map[uint64]struct{}
}

// SpanAssembler incrementally folds trace events into a SpanSet. It
// implements Sink, so it can watch a live tracer; Feed accepts replayed
// events. Safe for concurrent use.
type SpanAssembler struct {
	mu    sync.Mutex
	gen   int
	procs map[string]*spanState
	sends map[string]time.Time
	set   SpanSet
}

// NewSpanAssembler returns an empty assembler.
func NewSpanAssembler() *SpanAssembler {
	return &SpanAssembler{
		procs: make(map[string]*spanState),
		sends: make(map[string]time.Time),
	}
}

// AssembleSpans folds a complete event stream (a MemorySink's contents
// or a trace file read back) into a SpanSet.
func AssembleSpans(events []Event) SpanSet {
	a := NewSpanAssembler()
	for _, ev := range events {
		a.Feed(ev)
	}
	return a.Finish()
}

// Emit implements Sink.
func (a *SpanAssembler) Emit(ev Event) { a.Feed(ev) }

// Feed folds one event into the assembly.
func (a *SpanAssembler) Feed(ev Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ev.Type == EvRun {
		// Identifier spaces restart: close out the generation. Open
		// spans can never complete — record them as unclosed.
		a.flushOpen()
		a.gen++
		return
	}
	if ev.PID == "" {
		return
	}
	switch ev.Type {
	case EvSend:
		a.sends[ev.Msg] = ev.At
	case EvDeliver:
		if sentAt, ok := a.sends[ev.Msg]; ok {
			kind := ev.Kind
			if kind == "" {
				kind = "multicast"
			}
			lat := ev.At.Sub(sentAt)
			if lat < 0 {
				lat = 0
			}
			a.set.Latencies = append(a.set.Latencies, MsgLatency{
				Kind: kind, Gen: a.gen, Msg: ev.Msg, To: ev.PID, Latency: lat,
			})
		}
	case EvSuspect:
		switch ev.Note {
		case "suspected":
			st := a.open(ev.PID, ev.At)
			st.sawSuspect = true
			st.suspicions++
			st.openSuspects++
		case "cleared", "false-suspicion":
			st, ok := a.procs[ev.PID]
			if !ok {
				return
			}
			if st.openSuspects > 0 {
				st.openSuspects--
			}
			// Every suspicion revoked before any round started: the
			// detector walked it back, no view change is coming.
			if st.openSuspects == 0 && st.firstAgree.IsZero() && st.reproposals == 0 {
				delete(a.procs, ev.PID)
			}
		}
	case EvRepropose:
		st := a.open(ev.PID, ev.At)
		st.reproposals++
	case EvReconcile:
		// Counted, not opened: a reconcile heals the divergence without
		// a membership round, so there is no span to attribute it to
		// (see SpanSet.Reconciles).
		a.set.Reconciles++
	case EvPropose:
		st := a.open(ev.PID, ev.At)
		if st.firstAgree.IsZero() {
			st.firstAgree = ev.At
		}
		st.proposals++
		if ev.Note == "retry" {
			st.retries++
		}
		if st.proposed == nil {
			st.proposed = make(map[uint64]struct{})
		}
		st.proposed[ev.Round] = struct{}{}
	case EvAck:
		st := a.open(ev.PID, ev.At)
		if st.firstAgree.IsZero() {
			st.firstAgree = ev.At
		}
		a.set.Acks = append(a.set.Acks, AckSample{
			PID: ev.PID, Gen: a.gen, View: ev.View, Round: ev.Round, At: ev.At,
		})
	case EvFlush:
		st := a.open(ev.PID, ev.At)
		st.flushSeen = true
		st.flushEnd = ev.At
		st.flushDur = time.Duration(ev.DurMS * float64(time.Millisecond))
		st.recovered += ev.N
	case EvInstall:
		a.close(ev)
	}
}

// Finish records every still-open span as unclosed and returns the
// assembled set. The assembler remains usable (further events start
// fresh spans in the same generation).
func (a *SpanAssembler) Finish() SpanSet {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.flushOpen()
	return a.set
}

// open returns the process's open span, anchoring a new one at t.
func (a *SpanAssembler) open(pid string, t time.Time) *spanState {
	st, ok := a.procs[pid]
	if !ok {
		st = &spanState{start: t}
		a.procs[pid] = st
	}
	return st
}

// close resolves a process's open span with its install event.
func (a *SpanAssembler) close(ev Event) {
	sp := ViewSpan{
		PID: ev.PID, Gen: a.gen, View: ev.View, Round: ev.Round,
		End: ev.At, Closed: true,
	}
	st, ok := a.procs[ev.PID]
	if !ok {
		// No protocol activity preceded this install: the bootstrap
		// singleton (or the head of a truncated trace).
		sp.Start = ev.At
		sp.Bootstrap = true
		a.set.Spans = append(a.set.Spans, sp)
		return
	}
	delete(a.procs, ev.PID)
	sp.Start = st.start
	sp.Suspicions = st.suspicions
	sp.Proposals = st.proposals
	sp.Retries = st.retries
	sp.Reproposals = st.reproposals
	sp.Recovered = st.recovered
	if st.proposed != nil {
		_, sp.Coordinator = st.proposed[ev.Round]
	}

	// Phase boundaries. The flush start is reconstructed from the flush
	// event's own duration (the event is appended when the flush
	// completes); each boundary is clamped so clock granularity can
	// never produce a negative phase.
	agreeAt := st.firstAgree
	if agreeAt.IsZero() {
		agreeAt = sp.Start
	}
	sp.Detect = clampDur(agreeAt.Sub(sp.Start))
	if st.flushSeen {
		flushStart := st.flushEnd.Add(-st.flushDur)
		sp.Agree = clampDur(flushStart.Sub(agreeAt))
		sp.Flush = clampDur(st.flushDur)
		sp.Install = clampDur(ev.At.Sub(st.flushEnd))
	} else {
		sp.Agree = clampDur(ev.At.Sub(agreeAt))
	}
	a.set.Spans = append(a.set.Spans, sp)
}

// flushOpen converts every open span into an unclosed record. Called
// at generation boundaries and at Finish, under the lock.
func (a *SpanAssembler) flushOpen() {
	for pid, st := range a.procs {
		a.set.Spans = append(a.set.Spans, ViewSpan{
			PID: pid, Gen: a.gen, Start: st.start,
			Suspicions: st.suspicions, Proposals: st.proposals,
			Retries: st.retries, Reproposals: st.reproposals,
			Recovered: st.recovered,
		})
	}
	a.procs = make(map[string]*spanState)
	a.sends = make(map[string]time.Time)
}

func clampDur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}
