// Package obs is the observability layer of the reproduction: a
// lock-cheap metrics registry (counters, gauges, fixed-bucket
// histograms) and a per-process structured trace facility (a bounded
// ring of typed events with pluggable sinks), plus a Collector that
// implements core.ExtendedObserver and turns the run-time's
// instrumentation hooks into both.
//
// The paper's headline costs — how many view changes a merge takes
// (§5), how cheaply enriched views classify the shared-state problem
// (§6.2) — are latencies and message counts. This package measures them
// live instead of reconstructing them post-hoc from checker traces:
//
//	reg := obs.NewRegistry()
//	tr := obs.NewTracer(4096, obs.NewJSONLSink(w))
//	coll := obs.NewCollector(reg, tr)
//	opts.Observer = obs.Tee(coll, recorder) // compose with the checker
//
// Everything is opt-in: a process started without an Observer keeps the
// run-time's no-op fast path (no timing calls, no allocations on the
// send/deliver path); see BenchmarkMulticastObserverOverhead at the
// repository root for the measured delta.
//
// Metric names are dotted strings (see the Metric* constants in
// collector.go); the README "Observability" section documents the full
// schema.
package obs
