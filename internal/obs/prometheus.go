package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric followed by its
// samples, names sorted, histograms rendered with cumulative `le`
// buckets plus the `_sum` and `_count` series. The whole exposition is
// rendered from one Snapshot, so every line of one scrape is mutually
// consistent the way Snapshot guarantees.
//
// Metric names in this repo are dotted ("view.change_latency_s");
// Prometheus names admit only [a-zA-Z0-9_:], so dots and any other
// illegal runes become underscores ("view_change_latency_s"). The
// mapping is not injective in general; the Collector's name constants
// never collide under it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, r.Snapshot())
}

// WritePrometheus renders an already-taken snapshot; Registry.
// WritePrometheus is the common entry point.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, s)
}

func writePrometheus(w io.Writer, s Snapshot) error {
	// One sorted pass per metric family keeps the exposition stable
	// across scrapes — parsers don't require it, but diffing does.
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writePromHistogram(w, promName(name), s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, pn string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	// Bucket counts are stored per bucket; the exposition wants them
	// cumulative, ending at the mandatory le="+Inf" == _count.
	cum := uint64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum); err != nil {
			return err
		}
	}
	if len(h.Counts) > 0 {
		cum += h.Counts[len(h.Counts)-1]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count)
	return err
}

// promName maps a registry metric name onto the Prometheus name charset
// [a-zA-Z0-9_:], replacing every other rune with '_' and prefixing a
// leading digit.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects: shortest exact
// decimal, with the IEEE specials spelled +Inf/-Inf/NaN.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
