package obs_test

import (
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/vstest"
)

// TestCollectorLiveGroup runs a real group — formation, traffic, a
// crash-driven view change — with a Collector teed behind the property
// checker's Recorder, and asserts that both compose: the recorder still
// verifies all six properties and the collector's metrics and trace
// reflect what happened. Under -race this also exercises the
// instrumented hot paths from every protocol goroutine at once.
func TestCollectorLiveGroup(t *testing.T) {
	net := vstest.NewNet(t, 7)
	reg := obs.NewRegistry()
	mem := obs.NewMemorySink()
	coll := obs.NewCollector(reg, obs.NewTracer(0, mem))
	rec := check.NewRecorder()

	opts := vstest.FastOptions()
	opts.Observer = obs.Tee(rec, coll)

	procs := net.StartN(3, opts)
	vstest.WaitConverged(t, procs, 15*time.Second)

	for i := 0; i < 5; i++ {
		if err := procs[i%3].Multicast([]byte("m")); err != nil {
			t.Fatalf("multicast: %v", err)
		}
	}
	vstest.Eventually(t, 5*time.Second, "deliveries", func() bool {
		return reg.Counter(obs.MetricDelivered).Value() >= 15 // 5 msgs x 3 members
	})

	// Crash one member: suspicion -> proposal -> new view, all of which
	// the collector must see.
	procs[2].Crash()
	vstest.WaitConverged(t, procs[:2], 15*time.Second)

	for _, p := range procs[:2] {
		p.Crash()
	}

	if errs := rec.Verify(); len(errs) != 0 {
		t.Fatalf("teed recorder reports violations: %v", errs)
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		obs.MetricViewInstalls,
		obs.MetricViewProposals,
		obs.MetricSuspicions,
		obs.MetricMulticasts,
		obs.MetricDelivered,
		obs.MetricPktSentPrefix + "hb",
		obs.MetricPktRecvPrefix + "hb",
		obs.MetricPktSentPrefix + "propose",
		obs.MetricBytesSentPrefix + "data",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q = 0 after a full group run", name)
		}
	}
	if h := snap.Histograms[obs.MetricViewChangeLatency]; h.Count == 0 {
		t.Error("view-change latency histogram empty after a crash-driven view change")
	}
	if h := snap.Histograms[obs.MetricTickDuration]; h.Count == 0 {
		t.Error("tick duration histogram empty")
	}
	if h := snap.Histograms[obs.MetricHeartbeatGap]; h.Count == 0 {
		t.Error("heartbeat gap histogram empty")
	}
	if g := snap.Gauges[obs.MetricGroupSize]; g != 2 {
		t.Errorf("group.size gauge = %d, want 2 (after the crash)", g)
	}

	// The trace must contain the protocol arc: sends, deliveries, a
	// suspicion, a proposal and an install.
	seen := map[obs.EventType]bool{}
	for _, ev := range mem.Events() {
		seen[ev.Type] = true
		if ev.Seq == 0 || ev.PID == "" || ev.At.IsZero() {
			t.Fatalf("malformed trace event: %+v", ev)
		}
	}
	for _, typ := range []obs.EventType{
		obs.EvSend, obs.EvDeliver, obs.EvSuspect, obs.EvPropose, obs.EvInstall,
	} {
		if !seen[typ] {
			t.Errorf("trace missing %q events; saw %v", typ, seen)
		}
	}
}

// TestTeeComposition pins Tee's shape rules: nils are dropped, a single
// observer is returned unwrapped, and extended hooks reach exactly the
// members that implement them.
func TestTeeComposition(t *testing.T) {
	if got := obs.Tee(); got != nil {
		t.Fatalf("Tee() = %v, want nil", got)
	}
	if got := obs.Tee(nil, nil); got != nil {
		t.Fatalf("Tee(nil, nil) = %v, want nil", got)
	}
	rec := check.NewRecorder()
	if got := obs.Tee(nil, rec); got != core.Observer(rec) {
		t.Fatalf("Tee(nil, rec) should return rec unwrapped")
	}

	// Recorder (plain) + Collector (extended): the tee must advertise the
	// extended interface so core wires the fine-grained hooks.
	coll := obs.NewCollector(obs.NewRegistry(), nil)
	teed := obs.Tee(rec, coll)
	ext, ok := teed.(core.ExtendedObserver)
	if !ok {
		t.Fatal("Tee(plain, extended) does not implement ExtendedObserver")
	}
	// Extended hook reaches the collector only; plain callback reaches both.
	ext.OnTick(ids.PID{}, 5*time.Millisecond)
	if got := coll.Registry().Histogram(obs.MetricTickDuration, nil).Count(); got != 1 {
		t.Fatalf("extended hook did not reach the collector: count=%d", got)
	}

	// Two plain observers: no extended interface.
	if _, ok := obs.Tee(check.NewRecorder(), check.NewRecorder()).(core.ExtendedObserver); ok {
		t.Fatal("Tee(plain, plain) should not advertise ExtendedObserver")
	}
}
