package tracecheck

import (
	"fmt"

	"repro/internal/obs"
)

// FlushDiscipline checks the flush protocol's blocking rule: after a
// process acks a proposal (EvAck) it is blocked and must not multicast
// until it installs the resulting view — application sends in between
// must queue. An EvSend between a process's EvAck and its next
// EvInstall is therefore a violation. The Round field pairs acks with
// installs under overlapping proposals: a re-proposal may re-ack with
// a higher round while still blocked, but an install for a round below
// the last acked one would resolve a proposal the process has already
// abandoned.
type FlushDiscipline struct{}

// Name implements Checker.
func (FlushDiscipline) Name() string { return "flush" }

// Check implements Checker.
func (FlushDiscipline) Check(tl *Timeline) []Violation {
	var out []Violation
	for _, pid := range tl.pids() {
		for _, seg := range tl.Procs[pid].Segments {
			blocked := false
			var ackRound uint64
			for _, ev := range seg.Events {
				switch ev.Type {
				case obs.EvAck:
					blocked = true
					if ev.Round > ackRound {
						ackRound = ev.Round
					}
				case obs.EvSend:
					if blocked {
						out = append(out, Violation{
							Checker: "flush", PID: pid, Seq: ev.Seq,
							Msg: fmt.Sprintf("sent %s while blocked for round %d (acked, not yet installed)",
								ev.Msg, ackRound),
						})
					}
				case obs.EvInstall:
					if blocked && ev.Round != 0 && ackRound != 0 && ev.Round < ackRound {
						out = append(out, Violation{
							Checker: "flush", PID: pid, View: ev.View, Seq: ev.Seq,
							Msg: fmt.Sprintf("installed round %d while blocked for round %d (stale proposal)",
								ev.Round, ackRound),
						})
						continue // still blocked for the newer round
					}
					blocked, ackRound = false, 0
				}
			}
		}
	}
	return out
}
