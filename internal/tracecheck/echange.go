package tracecheck

import (
	"fmt"

	"repro/internal/obs"
)

// EChangeOrder checks P6.1: within one view, the e-view changes every
// process applies form a prefix of a single totally ordered sequence.
// Per process that means contiguous sequence numbers 1, 2, ... per
// view; across processes the change at each position must have the
// same kind, created identifier, and resulting structure.
type EChangeOrder struct{}

// Name implements Checker.
func (EChangeOrder) Name() string { return "echange" }

// echRec is one applied e-change as the trace witnesses it.
type echRec struct {
	pid  string
	seq  uint64 // trace seq
	n    int    // per-view e-change sequence number
	kind string
	note string // created subview/sv-set identifier
	strc string // resulting structure summary
}

func (e echRec) content() string {
	return fmt.Sprintf("%s %s -> %s", e.kind, e.note, e.strc)
}

// Check implements Checker.
func (EChangeOrder) Check(tl *Timeline) []Violation {
	perView := make(map[genView]map[string][]echRec)
	var views []genView
	var out []Violation
	for _, pid := range tl.pids() {
		for _, seg := range tl.Procs[pid].Segments {
			for _, ev := range seg.Events {
				if ev.Type != obs.EvEChange {
					continue
				}
				gv := genView{seg.Gen, ev.View}
				if perView[gv] == nil {
					perView[gv] = make(map[string][]echRec)
					views = append(views, gv)
				}
				seq := perView[gv][pid]
				rec := echRec{pid: pid, seq: ev.Seq, n: ev.N, kind: ev.Kind, note: ev.Note, strc: ev.Struct}
				if rec.n != len(seq)+1 {
					out = append(out, Violation{
						Checker: "echange", PID: pid, View: ev.View, Seq: ev.Seq,
						Msg: fmt.Sprintf("e-change seq %d applied at position %d (must be contiguous from 1)",
							rec.n, len(seq)+1),
					})
				}
				perView[gv][pid] = append(seq, rec)
			}
		}
	}
	// Cross-process: every process's sequence is a prefix of the
	// longest one, position by position.
	for _, gv := range views {
		byProc := perView[gv]
		var longest []echRec
		for _, pid := range tl.pids() {
			if seq := byProc[pid]; len(seq) > len(longest) {
				longest = seq
			}
		}
		for _, pid := range tl.pids() {
			for i, rec := range byProc[pid] {
				if i < len(longest) && rec.content() != longest[i].content() {
					out = append(out, Violation{
						Checker: "echange", PID: pid, View: gv.view, Seq: rec.seq,
						Msg: fmt.Sprintf("e-change %d diverges: %s applied %q, %s applied %q",
							i+1, pid, rec.content(), longest[i].pid, longest[i].content()),
					})
				}
			}
		}
	}
	return out
}
