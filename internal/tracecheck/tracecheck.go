// Package tracecheck analyzes structured JSONL traces produced by
// internal/obs: it reconstructs per-process, per-view timelines and
// runs a pluggable suite of checkers validating the paper's guarantees
// offline — view-synchrony agreement (P2.1), e-change total order
// within a view (P6.1), subview-structure survival across views
// (P6.3), Figure-1 mode-machine legality, and the flush discipline
// (no sends while blocked). It also diffs two traces of the same
// scenario run under different seeds, reporting the first divergence.
//
// The package consumes only obs.Event values, so it works equally on a
// trace file read back with ReadFile and on the in-memory stream of an
// obs.MemorySink — harness tests call Check directly after a run,
// making every simulation a conformance test:
//
//	events, malformed, err := tracecheck.ReadFile(path)
//	rep := tracecheck.Check(events)
//	if !rep.OK() { ... }
//
// Traces that funnel several independent simulations through one
// tracer must separate them with Tracer.MarkRun; see Timeline for how
// run boundaries and identifier aliasing are handled.
package tracecheck

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// Violation is one checker finding. Seq is the trace sequence number
// of the offending event when the violation is tied to one (0
// otherwise); View and PID narrow it down when known.
type Violation struct {
	Checker string `json:"checker"`
	PID     string `json:"pid,omitempty"`
	View    string `json:"view,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Msg     string `json:"msg"`
}

func (v Violation) String() string {
	s := "[" + v.Checker + "]"
	if v.PID != "" {
		s += " " + v.PID
	}
	if v.View != "" {
		s += " view=" + v.View
	}
	if v.Seq != 0 {
		s += fmt.Sprintf(" seq=%d", v.Seq)
	}
	return s + ": " + v.Msg
}

// Checker inspects a reconstructed timeline and reports violations.
type Checker interface {
	Name() string
	Check(tl *Timeline) []Violation
}

// DefaultCheckers returns the full built-in suite, one checker per
// paper guarantee the trace can witness.
func DefaultCheckers() []Checker {
	return []Checker{
		Agreement{},
		EChangeOrder{},
		Structure{},
		ModeMachine{},
		FlushDiscipline{},
	}
}

// Summary describes the shape of an analyzed trace.
type Summary struct {
	// Events is the number of trace events analyzed; Malformed is the
	// number of unparseable lines skipped by the reader (filled in by
	// the caller when the events came from ReadFile, zero otherwise).
	Events    int
	Malformed int
	// Runs is the number of independent runs in the trace (EvRun
	// boundary markers plus one).
	Runs int
	// Procs is the number of distinct processes, and Views the number
	// of distinct installed views (counted per run: the same view
	// string in two runs is two views).
	Procs int
	Views int
	// Counts is the number of events per type.
	Counts map[obs.EventType]int
}

// Write renders the summary as two human-readable lines.
func (s Summary) Write(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events, %d run(s), %d process(es), %d view install(s)",
		s.Events, s.Runs, s.Procs, s.Views)
	if s.Malformed > 0 {
		fmt.Fprintf(w, " (%d malformed line(s) skipped)", s.Malformed)
	}
	fmt.Fprintln(w)
	types := make([]string, 0, len(s.Counts))
	for t := range s.Counts {
		types = append(types, string(t))
	}
	sort.Strings(types)
	fmt.Fprint(w, "  ")
	for i, t := range types {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprintf(w, "%s=%d", t, s.Counts[obs.EventType(t)])
	}
	fmt.Fprintln(w)
}

// Report is the outcome of analyzing one trace.
type Report struct {
	Summary    Summary
	Violations []Violation
}

// OK reports whether every checker passed.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Check analyzes events with the default checker suite.
func Check(events []obs.Event) Report { return CheckWith(events, DefaultCheckers()...) }

// CheckWith analyzes events with an explicit checker suite. Violations
// are sorted deterministically (checker, pid, seq, message).
func CheckWith(events []obs.Event, checkers ...Checker) Report {
	tl := Build(events)
	rep := Report{Summary: tl.summary()}
	for _, c := range checkers {
		rep.Violations = append(rep.Violations, c.Check(tl)...)
	}
	sort.Slice(rep.Violations, func(i, j int) bool {
		a, b := rep.Violations[i], rep.Violations[j]
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Msg < b.Msg
	})
	return rep
}
