package tracecheck

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestReadRoundTrip: events written through a JSONL sink come back
// field-for-field equal.
func TestReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	tr := obs.NewTracer(16, sink)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	want := []obs.Event{
		{At: base, PID: "a#1", Type: obs.EvSend, Msg: "m1@a#1", View: "v1@a#1"},
		{At: base.Add(time.Millisecond), PID: "b#1", Type: obs.EvDeliver, Msg: "m1@a#1", View: "v1@a#1", Kind: "flush"},
		{At: base.Add(2 * time.Millisecond), PID: "a#1", Type: obs.EvPropose, View: "v2@a#1", N: 2, Round: 2, Note: "retry"},
		{At: base.Add(3 * time.Millisecond), PID: "a#1", Type: obs.EvInstall, View: "v2@a#1", N: 2, Round: 2, Struct: "a#1,b#1"},
		{At: base.Add(4 * time.Millisecond), PID: "a#1", Type: obs.EvFlush, View: "v1@a#1", DurMS: 0.25},
		{At: base.Add(5 * time.Millisecond), Type: obs.EvRun, Note: "next"},
	}
	for _, ev := range want {
		tr.Append(ev)
	}
	if err := sink.Err(); err != nil {
		t.Fatalf("sink: %v", err)
	}

	got, malformed, err := Read(&buf)
	if err != nil || malformed != 0 {
		t.Fatalf("Read: err=%v malformed=%d", err, malformed)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		w.Seq = uint64(i + 1) // assigned by the tracer
		g := got[i]
		if !g.At.Equal(w.At) {
			t.Fatalf("event %d At = %v, want %v", i, g.At, w.At)
		}
		g.At, w.At = time.Time{}, time.Time{}
		if g != w {
			t.Fatalf("event %d round-trip mismatch:\ngot  %+v\nwant %+v", i, g, w)
		}
	}
}

// TestReadMalformed: junk lines, JSON without an event type, and a
// truncated tail are skipped and counted, not fatal.
func TestReadMalformed(t *testing.T) {
	events, malformed, err := ReadFile("testdata/malformed.jsonl")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("parsed %d events, want 2: %+v", len(events), events)
	}
	if malformed != 3 {
		t.Fatalf("malformed = %d, want 3", malformed)
	}
	if events[0].Type != obs.EvInstall || events[1].Type != obs.EvSend {
		t.Fatalf("wrong events survived: %+v", events)
	}
}

// TestReadTruncatedTail: a writer killed mid-line loses only that line.
func TestReadTruncatedTail(t *testing.T) {
	full := `{"seq":1,"pid":"a#1","type":"install","view":"v1@a#1"}` + "\n" +
		`{"seq":2,"pid":"a#1","type":"send","msg":"m1@a#1","view":"v1@a#1"}` + "\n"
	cut := full + `{"seq":3,"pid":"a#1","type":"del`
	events, malformed, err := Read(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(events) != 2 || malformed != 1 {
		t.Fatalf("events=%d malformed=%d, want 2 and 1", len(events), malformed)
	}
}

// TestReadOverlongLine: a corrupt line longer than the scanner budget
// ends the read gracefully instead of erroring out.
func TestReadOverlongLine(t *testing.T) {
	good := `{"seq":1,"pid":"a#1","type":"install","view":"v1@a#1"}` + "\n"
	evil := good + strings.Repeat("x", maxLineBytes+1)
	events, malformed, err := Read(strings.NewReader(evil))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(events) != 1 || malformed != 1 {
		t.Fatalf("events=%d malformed=%d, want 1 and 1", len(events), malformed)
	}
}
