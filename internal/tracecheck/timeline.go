package tracecheck

import (
	"sort"

	"repro/internal/obs"
)

// Timeline is a trace reorganized for checking: the raw event stream
// plus per-process timelines, each split into segments inside which
// process and view identifiers are coherent.
//
// Two mechanisms delimit segments. First, EvRun boundary markers
// (Tracer.MarkRun): harnesses running several independent simulations
// through one tracer restart the identifier spaces at each boundary,
// so every event carries a generation — the count of markers before
// it — and cross-process checks only ever correlate events of the
// same generation. Second, as a backstop for traces concatenated
// without markers, a process's timeline is split whenever its
// membership round regresses below the round it last installed:
// installed epochs strictly increase along any real process history,
// so a Round lower than an already-installed one can only mean an
// unrelated run reusing the same PID string. (Acked-but-uninstalled
// rounds don't arm the backstop — an install may legally resolve a
// round the process has since re-acked past, and flagging that is the
// flush checker's job, not a seam.)
type Timeline struct {
	// Events is the analyzed stream in input order.
	Events []obs.Event
	// Runs is the number of generations (EvRun markers + 1).
	Runs int
	// Procs maps a PID string to its reconstructed timeline.
	Procs map[string]*Proc
}

// Proc is one process's event history, in trace order, split into
// identifier-coherent segments.
type Proc struct {
	PID      string
	Segments []*Segment
}

// Segment is a maximal stretch of one process's history within a
// single generation and with non-decreasing installed rounds.
type Segment struct {
	// Gen is the generation (run index) the segment belongs to.
	Gen int
	// Events are the process's events, in trace order.
	Events []obs.Event

	installRound    uint64
	lastInstallView string
}

// Build reconstructs a Timeline from a raw event stream. Events with
// no PID (run markers, foreign junk) contribute to generations and the
// summary but to no process timeline.
func Build(events []obs.Event) *Timeline {
	tl := &Timeline{Events: events, Runs: 1, Procs: make(map[string]*Proc)}
	gen := 0
	for _, ev := range events {
		if ev.Type == obs.EvRun {
			gen++
			tl.Runs = gen + 1
			continue
		}
		if ev.PID == "" {
			continue
		}
		p, ok := tl.Procs[ev.PID]
		if !ok {
			p = &Proc{PID: ev.PID}
			tl.Procs[ev.PID] = p
		}
		var seg *Segment
		if n := len(p.Segments); n > 0 {
			seg = p.Segments[n-1]
		}
		if seg == nil || seg.Gen != gen || (ev.Round > 0 && ev.Round < seg.installRound) {
			seg = &Segment{Gen: gen}
			p.Segments = append(p.Segments, seg)
		}
		if ev.Type == obs.EvInstall {
			// A re-installed view id (the reconciliation fast path
			// re-delivers Install packets, and a re-send can race the
			// original) is idempotent at the process: drop the duplicate
			// from the segment so per-segment invariants see each
			// installed view once. It stays in tl.Events — the summary
			// still counts it, and Views dedups by id anyway.
			if ev.Round > 0 && ev.Round == seg.installRound && seg.lastInstallView == ev.View {
				continue
			}
			if ev.Round > seg.installRound {
				seg.installRound = ev.Round
			}
			seg.lastInstallView = ev.View
		}
		seg.Events = append(seg.Events, ev)
	}
	return tl
}

// pids returns the process ids in sorted order, for deterministic
// iteration.
func (tl *Timeline) pids() []string {
	out := make([]string, 0, len(tl.Procs))
	for pid := range tl.Procs {
		out = append(out, pid)
	}
	sort.Strings(out)
	return out
}

// genView keys cross-process state by (generation, view id): the same
// view string in two generations is two unrelated views.
type genView struct {
	gen  int
	view string
}

func (tl *Timeline) summary() Summary {
	s := Summary{
		Events: len(tl.Events),
		Runs:   tl.Runs,
		Procs:  len(tl.Procs),
		Counts: make(map[obs.EventType]int),
	}
	views := make(map[genView]struct{})
	gen := 0
	for _, ev := range tl.Events {
		s.Counts[ev.Type]++
		switch ev.Type {
		case obs.EvRun:
			gen++
		case obs.EvInstall:
			views[genView{gen, ev.View}] = struct{}{}
		}
	}
	s.Views = len(views)
	return s
}
