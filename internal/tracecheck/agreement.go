package tracecheck

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Agreement checks view-synchrony agreement (P2.1) at trace level: any
// two processes that install the same view from the same predecessor
// must have delivered the same set of multicast messages in the
// predecessor. Unicast deliveries are addressed traffic outside the
// property; flush deliveries count — they happen before the install
// fires, which is exactly what the flush protocol is for.
type Agreement struct{}

// Name implements Checker.
func (Agreement) Name() string { return "agreement" }

// viewEdge keys transitions by generation and (from, to) view pair.
type viewEdge struct {
	gen      int
	from, to string
}

// transition is one process's passage between two consecutively
// installed views with the messages it delivered in the first.
type transition struct {
	pid       string
	seq       uint64 // trace seq of the install completing the transition
	delivered map[string]struct{}
}

// Check implements Checker.
func (Agreement) Check(tl *Timeline) []Violation {
	byEdge := make(map[viewEdge][]transition)
	var edges []viewEdge
	for _, pid := range tl.pids() {
		for _, seg := range tl.Procs[pid].Segments {
			cur := ""
			delivered := make(map[string]struct{})
			for _, ev := range seg.Events {
				switch ev.Type {
				case obs.EvDeliver:
					if ev.Kind == "unicast" {
						continue
					}
					delivered[ev.Msg] = struct{}{}
				case obs.EvInstall:
					if cur != "" {
						edge := viewEdge{seg.Gen, cur, ev.View}
						if len(byEdge[edge]) == 0 {
							edges = append(edges, edge)
						}
						byEdge[edge] = append(byEdge[edge], transition{pid, ev.Seq, delivered})
					}
					cur = ev.View
					delivered = make(map[string]struct{})
				}
			}
		}
	}
	var out []Violation
	for _, edge := range edges {
		trs := byEdge[edge]
		ref := trs[0]
		for _, tr := range trs[1:] {
			if only := diffSets(ref.delivered, tr.delivered); len(only) > 0 {
				out = append(out, Violation{
					Checker: "agreement", PID: tr.pid, View: edge.from, Seq: tr.seq,
					Msg: fmt.Sprintf("transition %s->%s: delivered %d msg(s), %s delivered %d; differing: %v",
						edge.from, edge.to, len(tr.delivered), ref.pid, len(ref.delivered), only),
				})
			}
		}
	}
	return out
}

// diffSets returns up to three elements of the symmetric difference of
// a and b (empty when the sets are equal), sorted.
func diffSets(a, b map[string]struct{}) []string {
	var only []string
	for m := range a {
		if _, ok := b[m]; !ok {
			only = append(only, m)
		}
	}
	for m := range b {
		if _, ok := a[m]; !ok {
			only = append(only, m)
		}
	}
	sort.Strings(only)
	if len(only) > 3 {
		only = append(only[:3], "...")
	}
	return only
}
