package tracecheck

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// maxLineBytes bounds a single JSONL line. Trace events are a few
// hundred bytes; a megabyte leaves room for pathological Struct
// summaries without letting a corrupt file exhaust memory.
const maxLineBytes = 1 << 20

// Read parses a JSONL trace stream. Lines that fail to parse — a tail
// truncated by a crashed writer, an interleaved log line, junk — are
// skipped and counted in malformed rather than aborting the whole
// read: a partial trace is still worth analyzing. The returned error
// is reserved for I/O failures on r itself.
func Read(r io.Reader) (events []obs.Event, malformed int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev obs.Event
		if json.Unmarshal(line, &ev) != nil || ev.Type == "" {
			malformed++
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			// An over-long line is data corruption, not an I/O failure;
			// everything before it was parsed, count it and stop there.
			return events, malformed + 1, nil
		}
		return events, malformed, fmt.Errorf("tracecheck: read trace: %w", err)
	}
	return events, malformed, nil
}

// ReadFile reads a JSONL trace file with Read's tolerance for
// malformed and truncated lines.
func ReadFile(path string) (events []obs.Event, malformed int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("tracecheck: %w", err)
	}
	defer f.Close()
	return Read(f)
}
