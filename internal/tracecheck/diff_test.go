package tracecheck

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestDiffEqualTraces: a trace diffed against itself is equivalent.
func TestDiffEqualTraces(t *testing.T) {
	events := load(t, "clean.jsonl")
	if d := Diff(events, events); d != nil {
		t.Fatalf("self-diff diverged: %v", d)
	}
}

// TestDiffSeesThroughSeedNoise: the same scenario under two seeds has
// different epochs and coordinators but identical normalized streams —
// no divergence.
func TestDiffSeesThroughSeedNoise(t *testing.T) {
	mkRun := func(e1, e2 uint64, coord string) []obs.Event {
		v1 := viewStr(e1, coord)
		v2 := viewStr(e2, coord)
		return []obs.Event{
			{PID: "a#1", Type: obs.EvInstall, View: v1, N: 2, Round: e1, Struct: "a#1,b#1"},
			{PID: "b#1", Type: obs.EvInstall, View: v1, N: 2, Round: e1, Struct: "a#1,b#1"},
			{PID: "a#1", Type: obs.EvSend, Msg: "m1@a#1", View: v1},
			{PID: "a#1", Type: obs.EvDeliver, Msg: "m1@a#1", View: v1},
			{PID: "b#1", Type: obs.EvDeliver, Msg: "m1@a#1", View: v1},
			{PID: "a#1", Type: obs.EvInstall, View: v2, N: 2, Round: e2, Struct: "a#1,b#1"},
			{PID: "b#1", Type: obs.EvInstall, View: v2, N: 2, Round: e2, Struct: "a#1,b#1"},
		}
	}
	a := mkRun(2, 5, "a#1")
	b := mkRun(3, 9, "b#1") // different epochs, different coordinator
	if d := Diff(a, b); d != nil {
		t.Fatalf("seed noise reported as divergence: %v", d)
	}
}

// TestDiffFindsFirstDivergence: traces that really differ report the
// earliest per-process mismatch with both renderings.
func TestDiffFindsFirstDivergence(t *testing.T) {
	base := func() []obs.Event {
		return []obs.Event{
			{PID: "a#1", Type: obs.EvInstall, View: "v1@a#1", N: 2, Round: 1},
			{PID: "b#1", Type: obs.EvInstall, View: "v1@a#1", N: 2, Round: 1},
			{PID: "a#1", Type: obs.EvSend, Msg: "m1@a#1", View: "v1@a#1"},
			{PID: "b#1", Type: obs.EvDeliver, Msg: "m1@a#1", View: "v1@a#1"},
		}
	}
	a, b := base(), base()
	// In trace b, process b#1 delivers a different message.
	b[3].Msg = "m2@a#1"
	d := Diff(a, b)
	if d == nil {
		t.Fatal("no divergence found")
	}
	if d.PID != "b#1" || d.Index != 1 {
		t.Fatalf("divergence at %s event %d, want b#1 event 1: %v", d.PID, d.Index, d)
	}
	if !strings.Contains(d.A, "m1@a#1") || !strings.Contains(d.B, "m2@a#1") {
		t.Fatalf("renderings don't show the differing messages: %v", d)
	}
	if d.AView != "v1@a#1" || d.BView != "v1@a#1" {
		t.Fatalf("views = %q / %q", d.AView, d.BView)
	}
}

// TestDiffMissingProcess: a process absent from one trace is an
// immediate divergence.
func TestDiffMissingProcess(t *testing.T) {
	a := []obs.Event{
		{PID: "a#1", Type: obs.EvInstall, View: "v1@a#1", Round: 1},
		{PID: "c#1", Type: obs.EvInstall, View: "v1@a#1", Round: 1},
	}
	b := []obs.Event{
		{PID: "a#1", Type: obs.EvInstall, View: "v1@a#1", Round: 1},
	}
	d := Diff(a, b)
	if d == nil || d.PID != "c#1" || d.Index != 0 || d.B != "<absent>" {
		t.Fatalf("divergence = %v, want c#1 absent from b", d)
	}
}

func viewStr(epoch uint64, coord string) string {
	return "v" + strconv.FormatUint(epoch, 10) + "@" + coord
}
