package tracecheck

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func load(t *testing.T, name string) []obs.Event {
	t.Helper()
	events, malformed, err := ReadFile("testdata/" + name)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", name, err)
	}
	if malformed != 0 {
		t.Fatalf("fixture %s has %d malformed lines", name, malformed)
	}
	return events
}

// TestCleanFixture: a well-behaved two-process trace passes every
// checker and summarizes correctly.
func TestCleanFixture(t *testing.T) {
	rep := Check(load(t, "clean.jsonl"))
	if !rep.OK() {
		t.Fatalf("clean trace reported violations: %v", rep.Violations)
	}
	s := rep.Summary
	if s.Procs != 2 || s.Views != 2 || s.Runs != 1 {
		t.Fatalf("summary = %+v, want 2 procs, 2 views, 1 run", s)
	}
	if s.Counts[obs.EvInstall] != 4 || s.Counts[obs.EvMode] != 3 {
		t.Fatalf("counts = %v", s.Counts)
	}
}

// TestViolationFixtures: each hand-built fixture trips exactly the
// checker it was built to trip.
func TestViolationFixtures(t *testing.T) {
	cases := []struct {
		fixture string
		checker string
		substr  string
	}{
		{"agreement_violation.jsonl", "agreement", "delivered"},
		{"echange_violation.jsonl", "echange", "contiguous"},
		{"structure_violation.jsonl", "structure", "split"},
		{"mode_violation.jsonl", "mode", "Figure-1"},
		{"flush_violation.jsonl", "flush", "blocked"},
	}
	for _, tc := range cases {
		t.Run(tc.checker, func(t *testing.T) {
			rep := Check(load(t, tc.fixture))
			if rep.OK() {
				t.Fatalf("fixture %s reported no violations", tc.fixture)
			}
			matched := false
			for _, v := range rep.Violations {
				if v.Checker != tc.checker {
					t.Fatalf("fixture %s tripped foreign checker: %v", tc.fixture, v)
				}
				if strings.Contains(v.Msg, tc.substr) {
					matched = true
				}
			}
			if !matched {
				t.Fatalf("no violation mentions %q: %v", tc.substr, rep.Violations)
			}
		})
	}
}

// installs returns a minimal install event.
func install(pid, view string, round uint64, strc string) obs.Event {
	return obs.Event{PID: pid, Type: obs.EvInstall, View: view, Round: round, Struct: strc}
}

// TestRunBoundaryIsolation: the same PID and view strings on both
// sides of an EvRun marker belong to unrelated simulations; events
// must not be correlated across the boundary even when doing so would
// flag a violation.
func TestRunBoundaryIsolation(t *testing.T) {
	events := []obs.Event{
		install("a#1", "v1@a#1", 1, "a#1,b#1"),
		install("b#1", "v1@a#1", 1, "a#1,b#1"),
		{PID: "a#1", Type: obs.EvDeliver, Msg: "m1@a#1", View: "v1@a#1"},
		{PID: "b#1", Type: obs.EvDeliver, Msg: "m1@a#1", View: "v1@a#1"},
		install("a#1", "v2@a#1", 2, "a#1,b#1"),
		install("b#1", "v2@a#1", 2, "a#1,b#1"),
		{Type: obs.EvRun, Note: "second scenario"},
		// Same identifiers, different structure and no deliveries: only
		// legal because it is a fresh run.
		install("a#1", "v1@a#1", 1, "a#1|b#1"),
		install("b#1", "v1@a#1", 1, "a#1|b#1"),
		install("a#1", "v2@a#1", 2, "a#1|b#1"),
		install("b#1", "v2@a#1", 2, "a#1|b#1"),
	}
	rep := Check(events)
	if !rep.OK() {
		t.Fatalf("run boundary not respected: %v", rep.Violations)
	}
	if rep.Summary.Runs != 2 || rep.Summary.Views != 4 {
		t.Fatalf("summary = %+v, want 2 runs and 4 views", rep.Summary)
	}
}

// TestRoundRegressionSplitsSegments: concatenated runs without an
// EvRun marker are caught by the round-regression backstop — a
// process's proposal epochs never decrease within one run.
func TestRoundRegressionSplitsSegments(t *testing.T) {
	events := []obs.Event{
		install("a#1", "v1@a#1", 1, "a#1,b#1"),
		install("a#1", "v5@a#1", 5, "a#1,b#1"),
		// Round drops from 5 back to 2: a new run reusing the PID. The
		// structure changes across the seam, which would be a survival
		// violation if the two histories were one.
		install("a#1", "v2@a#1", 2, "a#1|b#1"),
		install("a#1", "v6@a#1", 6, "a#1|b#1"),
	}
	rep := Check(events)
	if !rep.OK() {
		t.Fatalf("round regression not treated as a run seam: %v", rep.Violations)
	}
	if segs := len(Build(events).Procs["a#1"].Segments); segs != 2 {
		t.Fatalf("segments = %d, want 2", segs)
	}
}

// TestStaleInstallRound: an install resolving an older round than the
// last acked proposal is flagged.
func TestStaleInstallRound(t *testing.T) {
	events := []obs.Event{
		{PID: "a#1", Type: obs.EvAck, View: "v3@a#1", Round: 3},
		{PID: "a#1", Type: obs.EvAck, View: "v4@a#1", Round: 4},
		install("a#1", "v3@a#1", 3, ""),
	}
	rep := Check(events)
	if rep.OK() {
		t.Fatal("stale-round install not flagged")
	}
	v := rep.Violations[0]
	if v.Checker != "flush" || !strings.Contains(v.Msg, "stale") {
		t.Fatalf("unexpected violation: %v", v)
	}
}

// TestSummaryWrite smoke-tests the human rendering.
func TestSummaryWrite(t *testing.T) {
	rep := Check(load(t, "clean.jsonl"))
	var sb strings.Builder
	rep.Summary.Write(&sb)
	out := sb.String()
	for _, want := range []string{"2 process(es)", "2 view install(s)", "install=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q missing %q", out, want)
		}
	}
}

// TestDuplicateInstallTolerated: a reconcile re-send can race the
// original install, so the same (view, round) appearing twice in a row
// at one process must not trip any per-segment invariant — the
// duplicate is idempotent at the run-time and dropped from the segment.
func TestDuplicateInstallTolerated(t *testing.T) {
	events := load(t, "clean.jsonl")
	// Re-append each process's last install verbatim, as a re-delivered
	// Install packet would.
	var dups []obs.Event
	last := make(map[string]obs.Event)
	for _, ev := range events {
		if ev.Type == obs.EvInstall {
			last[ev.PID] = ev
		}
	}
	for _, ev := range last {
		dups = append(dups, ev)
	}
	rep := Check(append(events, dups...))
	if !rep.OK() {
		t.Fatalf("duplicate installs flagged: %v", rep.Violations)
	}
	// The duplicates stay visible in the summary's raw counts but add
	// no views (same ids).
	if rep.Summary.Views != 2 {
		t.Fatalf("summary views = %d, want 2", rep.Summary.Views)
	}
	if got := rep.Summary.Counts[obs.EvInstall]; got != 4+len(dups) {
		t.Fatalf("install count = %d, want %d", got, 4+len(dups))
	}
}
