package tracecheck

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// ModeMachine checks that every recorded mode step is one of Figure
// 1's edges and that each process's steps chain (the mode a step
// leaves is the mode the previous step entered):
//
//	N --Failure--> R        N --Reconfigure--> S
//	R --Repair---> S        S --Reconfigure--> S
//	S --Failure--> R        S --Reconcile----> N
//
// In particular N is reachable only through Reconcile — the
// application, not the membership layer, decides when full service
// resumes.
type ModeMachine struct{}

// Name implements Checker.
func (ModeMachine) Name() string { return "mode" }

// legalModeEdges is the Figure-1 edge set as "from-label-to".
var legalModeEdges = map[string]bool{
	"N-Failure-R":     true,
	"N-Reconfigure-S": true,
	"R-Repair-S":      true,
	"S-Reconfigure-S": true,
	"S-Failure-R":     true,
	"S-Reconcile-N":   true,
}

// Check implements Checker.
func (ModeMachine) Check(tl *Timeline) []Violation {
	var out []Violation
	for _, pid := range tl.pids() {
		for _, seg := range tl.Procs[pid].Segments {
			prevTo := ""
			for _, ev := range seg.Events {
				if ev.Type != obs.EvMode {
					continue
				}
				from, to, ok := strings.Cut(ev.Note, "->")
				if !ok {
					out = append(out, Violation{
						Checker: "mode", PID: pid, View: ev.View, Seq: ev.Seq,
						Msg: fmt.Sprintf("mode step %q lacks a from->to note", ev.Note),
					})
					continue
				}
				if edge := from + "-" + ev.Kind + "-" + to; !legalModeEdges[edge] {
					out = append(out, Violation{
						Checker: "mode", PID: pid, View: ev.View, Seq: ev.Seq,
						Msg: fmt.Sprintf("illegal mode transition %s --%s--> %s (not a Figure-1 edge)",
							from, ev.Kind, to),
					})
				}
				// Continuity from the second step on: the first step of a
				// (possibly truncated) trace has no known prior mode.
				if prevTo != "" && from != prevTo {
					out = append(out, Violation{
						Checker: "mode", PID: pid, View: ev.View, Seq: ev.Seq,
						Msg: fmt.Sprintf("mode step leaves %s but the previous step entered %s", from, prevTo),
					})
				}
				prevTo = to
			}
		}
	}
	return out
}
