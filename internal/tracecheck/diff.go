package tracecheck

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Divergence is the first point where two traces of the same scenario
// stop matching, located per process: the index into that process's
// normalized event stream and a rendering of both sides ("<end of
// trace>" when one side ran out, "<absent>" when the process never
// appears).
type Divergence struct {
	PID   string
	Index int
	// A and B render the differing events; AView and BView are the raw
	// view identifiers at the divergence in each trace (empty when the
	// event carries no view).
	A, B         string
	AView, BView string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("first divergence at %s event %d:\n  a: %s\n  b: %s", d.PID, d.Index, d.A, d.B)
}

// Diff aligns two traces by view lineage and event type and returns
// the earliest divergence, or nil when the traces are equivalent.
//
// Raw traces of the same scenario under different seeds never match
// byte-for-byte: timestamps, proposal epochs, and coordinator
// identities all depend on the schedule. Diff therefore compares a
// normalized stream per process — event type, the per-process ordinal
// of the view involved (its position in that process's view lineage,
// not its schedule-dependent identifier), and the schedule-independent
// payload fields (message id, peer, kind, count, note, structure).
// The earliest divergence across processes (smallest per-process
// index, ties broken by PID) is returned.
func Diff(a, b []obs.Event) *Divergence {
	na, nb := normalize(a), normalize(b)
	pids := make(map[string]struct{}, len(na))
	for pid := range na {
		pids[pid] = struct{}{}
	}
	for pid := range nb {
		pids[pid] = struct{}{}
	}
	sorted := make([]string, 0, len(pids))
	for pid := range pids {
		sorted = append(sorted, pid)
	}
	sort.Strings(sorted)

	var best *Divergence
	for _, pid := range sorted {
		d := divergePID(pid, na[pid], nb[pid])
		if d != nil && (best == nil || d.Index < best.Index) {
			best = d
		}
	}
	return best
}

// normEv is one event reduced to its schedule-independent identity.
type normEv struct {
	gen     int
	typ     obs.EventType
	viewOrd int // 1-based ordinal in the process's view lineage; 0 = none
	msg     string
	peer    string
	kind    string
	n       int
	note    string
	strc    string
	rawView string
}

func (e normEv) key() string {
	return fmt.Sprintf("%d/%s/V%d/%s/%s/%s/%d/%s/%s",
		e.gen, e.typ, e.viewOrd, e.msg, e.peer, e.kind, e.n, e.note, e.strc)
}

func (e normEv) String() string {
	s := string(e.typ)
	if e.gen > 0 {
		s = fmt.Sprintf("run%d %s", e.gen, s)
	}
	if e.viewOrd > 0 {
		s += fmt.Sprintf(" view=V%d(%s)", e.viewOrd, e.rawView)
	}
	if e.msg != "" {
		s += " msg=" + e.msg
	}
	if e.peer != "" {
		s += " peer=" + e.peer
	}
	if e.kind != "" {
		s += " kind=" + e.kind
	}
	if e.n != 0 {
		s += fmt.Sprintf(" n=%d", e.n)
	}
	if e.strc != "" {
		s += " struct=" + e.strc
	}
	if e.note != "" {
		s += " " + e.note
	}
	return s
}

// normalize reduces a trace to per-process normalized streams. View
// ordinals are assigned per process in order of first appearance
// within a generation, so two runs of the same scenario line up even
// though epochs and coordinators differ.
func normalize(events []obs.Event) map[string][]normEv {
	out := make(map[string][]normEv)
	ord := make(map[string]map[genView]int)
	tl := Build(events)
	for pid, proc := range tl.Procs {
		for _, seg := range proc.Segments {
			for _, ev := range seg.Events {
				ne := normEv{
					gen: seg.Gen, typ: ev.Type,
					msg: ev.Msg, peer: ev.Peer, kind: ev.Kind,
					n: ev.N, note: ev.Note, strc: ev.Struct, rawView: ev.View,
				}
				if ev.View != "" {
					if ord[pid] == nil {
						ord[pid] = make(map[genView]int)
					}
					gv := genView{seg.Gen, ev.View}
					o, ok := ord[pid][gv]
					if !ok {
						o = len(ord[pid]) + 1
						ord[pid][gv] = o
					}
					ne.viewOrd = o
				}
				out[pid] = append(out[pid], ne)
			}
		}
	}
	return out
}

// divergePID finds the first mismatch between one process's streams.
func divergePID(pid string, a, b []normEv) *Divergence {
	for i := 0; i < len(a) || i < len(b); i++ {
		switch {
		case i >= len(a):
			return &Divergence{PID: pid, Index: i, A: endOf(a), B: b[i].String(), BView: b[i].rawView}
		case i >= len(b):
			return &Divergence{PID: pid, Index: i, A: a[i].String(), B: endOf(b), AView: a[i].rawView}
		case a[i].key() != b[i].key():
			return &Divergence{PID: pid, Index: i,
				A: a[i].String(), B: b[i].String(),
				AView: a[i].rawView, BView: b[i].rawView}
		}
	}
	return nil
}

// endOf labels a stream that ran out: a process absent from one trace
// entirely, or present with fewer events.
func endOf(stream []normEv) string {
	if len(stream) == 0 {
		return "<absent>"
	}
	return "<end of trace>"
}
