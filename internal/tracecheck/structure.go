package tracecheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Structure checks the structural half of enriched view synchrony at
// trace level:
//
//   - install agreement: every process installing the same view
//     reports the same subview/sv-set grouping (the Struct summary);
//   - survival (P6.3): across one process's transition v -> v', two
//     processes that shared a subview (sv-set) in the final structure
//     of v and both survive into v' still share one in v'. A survivor
//     that reached v' through a different predecessor view — or whose
//     path the trace does not determine unambiguously — is exempt, as
//     its grouping legitimately shrank along its own path.
//
// The final structure of v is its install-time grouping updated by
// every e-change applied in v (each EvEChange carries the resulting
// summary).
type Structure struct{}

// Name implements Checker.
func (Structure) Name() string { return "structure" }

// grouping is a parsed Struct summary: which subview and sv-set index
// each member belongs to. Indexes are positional within the summary —
// the view-scoped identifiers are deliberately absent from traces.
type grouping struct {
	subviewOf map[string]int
	svsetOf   map[string]int
}

func parseGrouping(s string) grouping {
	g := grouping{subviewOf: make(map[string]int), svsetOf: make(map[string]int)}
	if s == "" {
		return g
	}
	sv := 0
	for ssi, ss := range strings.Split(s, "|") {
		for _, subview := range strings.Split(ss, "+") {
			for _, m := range strings.Split(subview, ",") {
				if m == "" {
					continue
				}
				g.subviewOf[m] = sv
				g.svsetOf[m] = ssi
			}
			sv++
		}
	}
	return g
}

// procView keys per-process, per-view state within a generation.
type procView struct {
	gen  int
	pid  string
	view string
}

// Check implements Checker.
func (Structure) Check(tl *Timeline) []Violation {
	var out []Violation

	// Install agreement on the grouping summary.
	type installRec struct {
		pid  string
		seq  uint64
		strc string
	}
	installs := make(map[genView][]installRec)
	var views []genView
	// predOf records every predecessor view observed for a (pid, view)
	// install; more than one means the trace is ambiguous about the
	// path (aliasing without run markers) and survival skips the pid.
	predOf := make(map[procView]map[string]struct{})
	for _, pid := range tl.pids() {
		for _, seg := range tl.Procs[pid].Segments {
			cur := ""
			for _, ev := range seg.Events {
				if ev.Type != obs.EvInstall {
					continue
				}
				gv := genView{seg.Gen, ev.View}
				if len(installs[gv]) == 0 {
					views = append(views, gv)
				}
				installs[gv] = append(installs[gv], installRec{pid, ev.Seq, ev.Struct})
				if cur != "" {
					key := procView{seg.Gen, pid, ev.View}
					if predOf[key] == nil {
						predOf[key] = make(map[string]struct{})
					}
					predOf[key][cur] = struct{}{}
				}
				cur = ev.View
			}
		}
	}
	for _, gv := range views {
		recs := installs[gv]
		ref := recs[0]
		for _, rec := range recs[1:] {
			if rec.strc != ref.strc {
				out = append(out, Violation{
					Checker: "structure", PID: rec.pid, View: gv.view, Seq: rec.seq,
					Msg: fmt.Sprintf("installed structure %q but %s installed %q", rec.strc, ref.pid, ref.strc),
				})
			}
		}
	}

	// samePath: did y reach next from old, as far as the trace shows?
	samePath := func(gen int, y, old, next string) bool {
		preds, ok := predOf[procView{gen, y, next}]
		if !ok {
			return true // no recorded transition: stay conservative
		}
		if len(preds) != 1 {
			return false // ambiguous path: exempt
		}
		_, same := preds[old]
		return same
	}

	// Survival across each process's own transitions.
	for _, pid := range tl.pids() {
		for _, seg := range tl.Procs[pid].Segments {
			cur, curStruct := "", ""
			for _, ev := range seg.Events {
				switch ev.Type {
				case obs.EvEChange:
					if ev.View == cur && ev.Struct != "" {
						curStruct = ev.Struct
					}
				case obs.EvInstall:
					if cur != "" {
						out = append(out, checkSurvival(seg.Gen, pid, cur, ev, curStruct, samePath)...)
					}
					cur, curStruct = ev.View, ev.Struct
				}
			}
		}
	}
	return out
}

// checkSurvival compares the final grouping of view from with the
// install grouping of the view in ev, over members present in both.
func checkSurvival(gen int, pid, from string, ev obs.Event, fromStruct string,
	samePath func(gen int, y, old, next string) bool) []Violation {
	old, next := parseGrouping(fromStruct), parseGrouping(ev.Struct)
	var survivors []string
	for m := range old.subviewOf {
		if _, ok := next.subviewOf[m]; ok {
			survivors = append(survivors, m)
		}
	}
	sort.Strings(survivors)
	var out []Violation
	for i := 0; i < len(survivors); i++ {
		for j := i + 1; j < len(survivors); j++ {
			x, y := survivors[i], survivors[j]
			if !samePath(gen, x, from, ev.View) || !samePath(gen, y, from, ev.View) {
				continue
			}
			if old.subviewOf[x] == old.subviewOf[y] && next.subviewOf[x] != next.subviewOf[y] {
				out = append(out, Violation{
					Checker: "structure", PID: pid, View: from, Seq: ev.Seq,
					Msg: fmt.Sprintf("%s and %s shared a subview in %s but are split in %s",
						x, y, from, ev.View),
				})
			}
			if old.svsetOf[x] == old.svsetOf[y] && next.svsetOf[x] != next.svsetOf[y] {
				out = append(out, Violation{
					Checker: "structure", PID: pid, View: from, Seq: ev.Seq,
					Msg: fmt.Sprintf("%s and %s shared an sv-set in %s but are split in %s",
						x, y, from, ev.View),
				})
			}
		}
	}
	return out
}
