package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/eventq"
	"repro/internal/evs"
	"repro/internal/fd"
	"repro/internal/ids"
	"repro/internal/stable"
	"repro/internal/transport"
)

// Errors returned by the Process API.
var (
	// ErrStopped is returned once the process has left or crashed.
	ErrStopped = errors.New("core: process stopped")
	// ErrBlocked is returned for operations that cannot proceed while a
	// view change is in progress (e.g. merge requests); retry after the
	// next view event.
	ErrBlocked = errors.New("core: view change in progress")
)

// Stats are per-process counters, readable at any time.
type Stats struct {
	ViewsInstalled  uint64
	MsgsSent        uint64
	MsgsDelivered   uint64
	FlushDeliveries uint64
	EChangesApplied uint64
	ProposalsSent   uint64
	// ProposalRetries counts proposal rounds restarted after an ack
	// timeout (a subset of ProposalsSent).
	ProposalRetries uint64
	// Reproposals counts membership rounds this process started solely
	// to reunify diverged view ids (a subset of ProposalsSent); with the
	// reconciliation fast path enabled, only divergences reconciliation
	// could not heal reach it.
	Reproposals uint64
	// Reconciles counts install re-sends this process performed to heal
	// a same-composition view-id divergence without a proposal round.
	Reconciles uint64
	// InstallsDeduped counts install packets dropped because the view
	// was already installed here (a reconcile re-send raced the original
	// install, or arrived after another heal); the duplicate is
	// idempotent by construction.
	InstallsDeduped uint64
	// StableMsgsPruned counts buffered messages discarded by stability
	// tracking (delivered by every member, so no flush can need them).
	StableMsgsPruned uint64
}

// Process is one group member: the application's handle on the (enriched)
// view synchrony run-time. All methods are safe for concurrent use.
type Process struct {
	pid   ids.PID
	opts  Options
	ep    transport.Endpoint
	store *stable.Store
	obs   Observer
	// tobs is opts.Observer when it implements ExtendedObserver, else
	// nil; every extended hook (and its timing) is gated on it.
	tobs ExtendedObserver

	events *eventq.Queue[Event]
	evch   chan Event
	reqs   chan request
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once

	mu    sync.Mutex
	cur   EView
	stats Stats
	// status is the loop's most recently published introspection
	// snapshot (see StatusSnapshot); refreshed every tick.
	status Status

	m machine // protocol state; loop-goroutine confined after Start
}

type reqKind int

const (
	reqMulticast reqKind = iota + 1
	reqUnicast
	reqMergeSubviews
	reqMergeSVSets
	reqForceSuspect
	reqUnforceSuspect
)

type request struct {
	kind     reqKind
	payload  []byte
	to       ids.PID
	subviews []ids.SubviewID
	svsets   []ids.SVSetID
	reply    chan error
}

// Stable-storage keys used by the run-time.
const (
	keyInc   = "core/inc"
	keyEpoch = "core/epoch"
)

// Start boots a new incarnation of the given site, attaches it to the
// transport (the simulated fabric or a real-socket backend), installs
// its bootstrap singleton view, and starts the protocol. The first event
// on Events is always the ViewEvent for the singleton view (the paper: a
// history begins with the view change that joins the group); larger
// views follow as the membership protocol merges it with whatever it can
// reach.
func Start(tr transport.Transport, reg *stable.Registry, site string, opts Options) (*Process, error) {
	opts = opts.withDefaults()
	store := reg.Open(site)

	inc := uint32(1)
	if raw, ok := store.Get(keyInc); ok && len(raw) == 4 {
		inc = binary.BigEndian.Uint32(raw) + 1
	}
	var incBuf [4]byte
	binary.BigEndian.PutUint32(incBuf[:], inc)
	store.Put(keyInc, incBuf[:])

	pid := ids.PID{Site: site, Inc: inc}
	ep, err := tr.Attach(pid)
	if err != nil {
		return nil, fmt.Errorf("core: attach %v: %w", pid, err)
	}

	p := &Process{
		pid:    pid,
		opts:   opts,
		ep:     ep,
		store:  store,
		obs:    opts.Observer,
		events: eventq.New[Event](),
		evch:   make(chan Event, 128),
		reqs:   make(chan request, 64),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	p.tobs, _ = opts.Observer.(ExtendedObserver)
	p.m.init(p)

	// Bootstrap: install the singleton view synchronously so the first
	// delivered event is the join view change.
	epoch := p.m.loadEpoch() + 1
	bootID := ids.ViewID{Epoch: epoch, Coord: pid}
	p.m.storeEpoch(epoch)
	boot := EView{
		ID:        bootID,
		Members:   []ids.PID{pid},
		Structure: evs.NewSingleton(bootID, pid),
	}
	if !opts.Enriched {
		boot.Structure = evs.Flat(bootID, ids.NewPIDSet(pid))
	}
	p.m.installBootstrap(boot)

	go p.run()
	go p.pumpEvents()
	return p, nil
}

// PID returns the process identifier of this incarnation.
func (p *Process) PID() ids.PID { return p.pid }

// Site returns the stable site name.
func (p *Process) Site() string { return p.pid.Site }

// Group returns the group name.
func (p *Process) Group() string { return p.opts.Group }

// Events returns the stream of views, e-view changes, and message
// deliveries. The channel closes after Leave or Crash once all pending
// events are consumed. There must be exactly one consumer.
func (p *Process) Events() <-chan Event { return p.evch }

// CurrentView returns a snapshot of the most recently installed enriched
// view (including applied e-view changes).
func (p *Process) CurrentView() EView {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

// Stats returns a snapshot of the process counters.
func (p *Process) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Multicast sends payload to the members of the current view with the
// view-synchronous guarantees. If a view change is in progress the
// message is queued and multicast in the next installed view (a message
// is always delivered in the view it was sent in — P2.2).
func (p *Process) Multicast(payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	return p.submit(request{kind: reqMulticast, payload: cp})
}

// Unicast sends payload to a single member of the current view. Like a
// multicast it is delivered only in the view it was sent in (P2.2) and at
// most once (P2.3), but it is not subject to Agreement: if the view
// changes first it is silently dropped and the caller must retry in the
// new view. Returns ErrBlocked while a view change is in progress.
func (p *Process) Unicast(to ids.PID, payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	return p.submit(request{kind: reqUnicast, to: to, payload: cp})
}

// SubviewMerge asks the view sequencer to merge the given subviews into
// one, per §6.1. The operation is asynchronous: success is observed as an
// EChangeEvent. Per the paper, a merge across different sv-sets has no
// effect (no event will arrive). Returns ErrBlocked during view changes.
func (p *Process) SubviewMerge(svs ...ids.SubviewID) error {
	if len(svs) < 2 {
		return fmt.Errorf("core: SubviewMerge needs >= 2 subviews")
	}
	return p.submit(request{kind: reqMergeSubviews, subviews: svs})
}

// SVSetMerge asks the view sequencer to merge the given sv-sets into one,
// per §6.1. Asynchronous, like SubviewMerge.
func (p *Process) SVSetMerge(sss ...ids.SVSetID) error {
	if len(sss) < 2 {
		return fmt.Errorf("core: SVSetMerge needs >= 2 sv-sets")
	}
	return p.submit(request{kind: reqMergeSVSets, svsets: sss})
}

// ForceSuspect injects a false suspicion of q into this process's
// failure detector: q is treated as failed regardless of its heartbeats
// until Unforce. The membership protocol reacts exactly as it would to a
// real failure — the paper's point that a process cannot tell the
// difference ("failures, whether real or due to false suspicions").
// Fault-injection experiments and tests use this.
func (p *Process) ForceSuspect(q ids.PID) error {
	return p.submit(request{kind: reqForceSuspect, to: q})
}

// Unforce removes an injected suspicion of q.
func (p *Process) Unforce(q ids.PID) error {
	return p.submit(request{kind: reqUnforceSuspect, to: q})
}

// Leave gracefully terminates participation: peers are told immediately
// (no suspicion timeout) and the process stops. The events channel closes
// after the remaining events drain.
func (p *Process) Leave() { p.shutdown(true) }

// Crash kills the process without any farewell, modeling a real crash:
// peers find out through the failure detector.
func (p *Process) Crash() { p.shutdown(false) }

// Done is closed when the protocol loop has exited.
func (p *Process) Done() <-chan struct{} { return p.done }

func (p *Process) shutdown(farewell bool) {
	p.once.Do(func() {
		if farewell {
			// Farewell is sent from here (not the loop) so that Leave
			// works even if the loop is wedged; the packet is idempotent.
			p.ep.Broadcast(pktHeartbeat{Group: p.opts.Group, From: p.pid, Left: true})
		}
		close(p.stop)
	})
	<-p.done
}

func (p *Process) submit(r request) error {
	r.reply = make(chan error, 1)
	select {
	case p.reqs <- r:
	case <-p.done:
		return ErrStopped
	}
	select {
	case err := <-r.reply:
		return err
	case <-p.done:
		return ErrStopped
	}
}

func (p *Process) pumpEvents() {
	for {
		ev, ok := p.events.Pop()
		if !ok {
			close(p.evch)
			return
		}
		p.evch <- ev
	}
}

// setCur publishes a snapshot of the current view.
func (p *Process) setCur(v EView) {
	p.mu.Lock()
	p.cur = v
	p.mu.Unlock()
}

func (p *Process) bumpStat(f func(*Stats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// run is the protocol event loop; all of p.m is confined to it.
func (p *Process) run() {
	defer func() {
		p.ep.Detach()
		p.events.Close()
		close(p.done)
	}()
	hb := time.NewTicker(p.opts.HeartbeatEvery)
	defer hb.Stop()
	tick := time.NewTicker(p.opts.Tick)
	defer tick.Stop()

	// lastTick drives the tick-lag health gauge: how much later than
	// the configured period each housekeeping tick actually fired.
	var lastTick time.Time

	p.m.sendHeartbeat()
	for {
		select {
		case <-p.stop:
			return
		case <-hb.C:
			p.m.sendHeartbeat()
		case <-tick.C:
			start := time.Now()
			var lag time.Duration
			if !lastTick.IsZero() {
				if lag = start.Sub(lastTick) - p.opts.Tick; lag < 0 {
					lag = 0
				}
			}
			lastTick = start
			p.m.onTick(start)
			if now := time.Now(); now.Sub(p.m.lastPublish) >= statusEvery {
				p.m.publishStatus(now, lag)
			}
			if p.tobs != nil {
				p.tobs.OnTick(p.pid, time.Since(start))
				p.tobs.OnLoopHealth(p.pid, p.events.Len(), lag)
			}
		case <-p.ep.Wait():
			for {
				msg, ok := p.ep.TryRecv()
				if !ok {
					break
				}
				if p.tobs != nil {
					p.tobs.OnPacket(p.pid, msg.Kind, msg.Size, false)
				}
				now := time.Now()
				p.m.onPacket(msg, now)
				// Payloads the transport coalesced onto this packet (e.g.
				// heartbeats riding on data) are processed after it.
				for _, pb := range msg.Piggyback {
					if p.tobs != nil {
						p.tobs.OnPacket(p.pid, pb.Kind, pb.Size, false)
					}
					p.m.onPacket(pb, now)
				}
			}
			if p.ep.Closed() {
				return
			}
		case r := <-p.reqs:
			p.m.onRequest(r)
		}
	}
}

// machine holds all protocol state. Only the run goroutine touches it
// after Start.
type machine struct {
	p   *Process
	det *fd.Detector

	view EView
	comp ids.PIDSet
	// delivered holds the *bodies* of messages delivered in the current
	// view, for flush retransmission; stability pruning shrinks it.
	delivered map[ids.MsgID]pktData
	// deliveredIDs remembers every message delivered in the current
	// view, surviving stability pruning, so a flush from a peer that
	// pruned later never re-delivers (P2.3).
	deliveredIDs map[ids.MsgID]struct{}
	seen         map[ids.MsgID]struct{}
	causal       *clock.CausalBuffer[causalPkt]
	vc           clock.Vector
	echApplied   uint32
	nextSeq      uint64

	blocked bool
	// blockedSince anchors the in-flight proposal age Status reports:
	// set when blocked flips true, zeroed at install.
	blockedSince time.Time
	ackedProp    ids.ViewID
	outbox       [][]byte
	future       map[ids.ViewID][]causalPkt

	maxEpoch      uint64
	peerView      map[ids.PID]ids.ViewID
	peerVC        map[ids.PID]clock.Vector
	tombstones    map[ids.PID]time.Time
	mismatch      int
	pendingMerges []pktMergeReq

	// lastInstall is the install packet that created the current view,
	// kept (with its flush retransmission bodies) so the coordinator can
	// re-send it to a member that missed it; haveInstall is false for
	// bootstrap singleton views, which no packet created (a singleton
	// has no peer to diverge anyway). reconAttempts counts install
	// re-sends per diverging peer since the last install; reconHold is
	// the tick countdown between reconcile actions (Options.
	// ReconcileDwell).
	lastInstall   pktInstall
	haveInstall   bool
	reconAttempts map[ids.PID]int
	reconHold     int

	// lastPublish throttles tick-path status publication (building a
	// Status formats the whole view, a real cost at millisecond
	// ticks); installs and the initial bootstrap publish immediately.
	// Loop-goroutine only.
	lastPublish time.Time

	coord *coordState
}

type coordState struct {
	prop     ids.ViewID
	comp     ids.PIDSet
	acks     map[ids.PID]pktAck
	deadline time.Time
	// since is when this round opened; Status reports its age at a
	// coordinator that is not itself blocked.
	since time.Time
}

func (m *machine) init(p *Process) {
	m.p = p
	if p.opts.AdaptiveFD {
		m.det = fd.NewAdaptive(p.opts.SuspectAfter, fd.AdaptiveConfig{
			K:      p.opts.FDDevK,
			Floor:  p.opts.FDFloor,
			Ceil:   p.opts.FDCeil,
			Warmup: p.opts.FDWarmup,
		})
	} else {
		m.det = fd.New(p.opts.SuspectAfter)
	}
	if tobs := p.tobs; tobs != nil {
		self := p.pid
		m.det.SetHooks(fd.Hooks{
			HeartbeatGap: func(q ids.PID, gap time.Duration) {
				tobs.OnHeartbeatGap(self, q, gap)
			},
			SuspectChange: func(q ids.PID, suspected bool) {
				tobs.OnSuspectChange(self, q, suspected)
			},
			EffectiveTimeout: func(q ids.PID, timeout time.Duration) {
				tobs.OnEffectiveTimeout(self, q, timeout)
			},
		})
	}
	m.delivered = make(map[ids.MsgID]pktData)
	m.deliveredIDs = make(map[ids.MsgID]struct{})
	m.seen = make(map[ids.MsgID]struct{})
	m.causal = clock.NewCausalBuffer[causalPkt]()
	m.vc = clock.NewVector()
	m.future = make(map[ids.ViewID][]causalPkt)
	m.peerView = make(map[ids.PID]ids.ViewID)
	m.peerVC = make(map[ids.PID]clock.Vector)
	m.tombstones = make(map[ids.PID]time.Time)
	m.reconAttempts = make(map[ids.PID]int)
}

func (m *machine) loadEpoch() uint64 {
	if raw, ok := m.p.store.Get(keyEpoch); ok && len(raw) == 8 {
		return binary.BigEndian.Uint64(raw)
	}
	return 0
}

func (m *machine) storeEpoch(e uint64) {
	if e <= m.maxEpoch {
		return
	}
	m.maxEpoch = e
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], e)
	m.p.store.Put(keyEpoch, buf[:])
}

// installBootstrap installs the singleton view during Start (before the
// loop goroutine exists).
func (m *machine) installBootstrap(v EView) {
	m.view = v
	m.comp = v.Comp()
	m.persistView(v)
	m.p.setCur(v)
	m.p.bumpStat(func(s *Stats) { s.ViewsInstalled++ })
	ev := ViewEvent{EView: v}
	m.p.obs.OnView(m.p.pid, ev)
	m.p.events.Push(ev)
	// Publish an initial status so StatusSnapshot answers before the
	// first housekeeping tick.
	m.publishStatus(time.Now(), 0)
}

func (m *machine) persistView(v EView) {
	if !m.p.opts.LogViews {
		return
	}
	m.p.store.AppendView(stable.ViewRecord{
		View:      v.ID,
		Members:   v.Members,
		Installer: m.p.pid,
	})
}
