package core_test

// This file lives in an external test package: internal/obs (which the
// trace checkers build on) imports core, so the in-package tests cannot
// reach it without a cycle.

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tracecheck"
	"repro/internal/vstest"
)

// TestTracecheckMultiPartitionMerge runs a full three-way partition and
// merge under an obs tracer and asserts the offline trace checkers
// (view-synchrony agreement, e-change total order, structure survival,
// mode legality, flush discipline) find nothing to complain about in a
// real execution.
func TestTracecheckMultiPartitionMerge(t *testing.T) {
	net := vstest.NewNet(t, 713)
	mem := obs.NewMemorySink()
	coll := obs.NewCollector(nil, obs.NewTracer(0, mem))

	opts := vstest.FastOptions()
	opts.Observer = coll

	const n = 6
	procs := net.StartN(n, opts)
	vstest.WaitConverged(t, procs, 15*time.Second)

	if err := procs[0].Multicast([]byte("before the storm")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}

	net.Fabric.SetPartitions(
		[]string{"a", "b"}, []string{"c", "d"}, []string{"e", "f"})
	for i := 0; i < n; i += 2 {
		vstest.WaitConverged(t, procs[i:i+2], 15*time.Second)
	}
	// Traffic inside a minority partition still has to satisfy the
	// per-view agreement property.
	if err := procs[2].Multicast([]byte("partitioned")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}

	net.Fabric.Heal()
	vstest.WaitConverged(t, procs, 30*time.Second)

	// Fuse the merged structure back into one subview so the checkers
	// see e-changes on top of the view changes.
	driver := procs[0]
	lastReq := time.Time{}
	vstest.Eventually(t, 15*time.Second, "structure merged", func() bool {
		v := driver.CurrentView()
		if v.Structure.NumSVSets() == 1 && v.Structure.NumSubviews() == 1 {
			return true
		}
		if time.Since(lastReq) > 200*time.Millisecond {
			lastReq = time.Now()
			if sss := v.Structure.SVSets(); len(sss) >= 2 {
				_ = driver.SVSetMerge(sss...)
			} else if svs := v.Structure.Subviews(); len(svs) >= 2 {
				_ = driver.SubviewMerge(svs...)
			}
		}
		return false
	})

	if err := procs[0].Multicast([]byte("after the merge")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	for _, p := range procs {
		p.Leave()
	}
	for _, p := range procs {
		<-p.Done()
	}

	rep := tracecheck.Check(mem.Events())
	if len(mem.Events()) == 0 {
		t.Fatal("tracer captured no events")
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			t.Errorf("trace violation: %v", v)
		}
	}
	if rep.Summary.Views < 3 {
		t.Fatalf("expected at least 3 view installs across partition+merge, got %d", rep.Summary.Views)
	}
}
