package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/stable"
)

// testOpts returns the shared simulation-speed profile. The numbers are
// the Sim* constants that experiments.FastTiming (the profile's
// harness-facing source) is built from; core's tests cannot import that
// package without an import cycle.
func testOpts() Options {
	return Options{
		Group:          "g",
		HeartbeatEvery: SimHeartbeatEvery,
		SuspectAfter:   SimSuspectAfter,
		Tick:           SimTick,
		ProposeTimeout: SimProposeTimeout,
		Enriched:       true,
		LogViews:       true,
	}
}

// net is a test network: fabric + stable storage + started processes.
type net struct {
	t      *testing.T
	fabric *simnet.Fabric
	reg    *stable.Registry
	mu     sync.Mutex
	procs  map[string]*Process // by site (latest incarnation)
	sinks  map[ids.PID]*sink
}

// sink drains a process's event stream and keeps it for assertions.
type sink struct {
	mu     sync.Mutex
	events []Event
}

func (s *sink) run(ch <-chan Event) {
	for ev := range ch {
		s.mu.Lock()
		s.events = append(s.events, ev)
		s.mu.Unlock()
	}
}

func (s *sink) snapshot() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// views returns the installed views, in order.
func (s *sink) views() []EView {
	var out []EView
	for _, ev := range s.snapshot() {
		if v, ok := ev.(ViewEvent); ok {
			out = append(out, v.EView)
		}
	}
	return out
}

// msgs returns delivered messages grouped by the view they were
// delivered in.
func (s *sink) msgs() map[ids.ViewID][]MsgEvent {
	out := make(map[ids.ViewID][]MsgEvent)
	for _, ev := range s.snapshot() {
		if m, ok := ev.(MsgEvent); ok {
			out[m.View] = append(out[m.View], m)
		}
	}
	return out
}

// echanges returns applied e-view changes, in order.
func (s *sink) echanges() []EChangeEvent {
	var out []EChangeEvent
	for _, ev := range s.snapshot() {
		if e, ok := ev.(EChangeEvent); ok {
			out = append(out, e)
		}
	}
	return out
}

func newNet(t *testing.T, seed int64) *net {
	t.Helper()
	f := simnet.New(simnet.Config{
		Delay: simnet.NewUniformDelay(50*time.Microsecond, 400*time.Microsecond, seed+1),
		Seed:  seed,
	})
	n := &net{
		t:      t,
		fabric: f,
		reg:    stable.NewRegistry(),
		procs:  make(map[string]*Process),
		sinks:  make(map[ids.PID]*sink),
	}
	t.Cleanup(f.Close)
	return n
}

// start boots a process at the given site with per-test options.
func (n *net) start(site string, opts Options) *Process {
	n.t.Helper()
	p, err := Start(n.fabric, n.reg, site, opts)
	if err != nil {
		n.t.Fatalf("Start(%s): %v", site, err)
	}
	sk := &sink{}
	go sk.run(p.Events())
	n.mu.Lock()
	n.procs[site] = p
	n.sinks[p.PID()] = sk
	n.mu.Unlock()
	return p
}

// startN boots sites s1..sN (named a, b, c, ...) with the same options.
func (n *net) startN(count int, opts Options) []*Process {
	n.t.Helper()
	out := make([]*Process, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, n.start(siteName(i), opts))
	}
	return out
}

func siteName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return fmt.Sprintf("s%d", i)
}

func (n *net) sink(p *Process) *sink {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sinks[p.PID()]
}

// waitView polls until pred holds for p's current view.
func waitView(t *testing.T, p *Process, timeout time.Duration, what string, pred func(EView) bool) EView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := p.CurrentView()
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("%v: timeout waiting for %s; current view %v %v (structure %v)",
				p.PID(), what, v.ID, v.Members, v.Structure)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitConverged waits until all given processes have installed the same
// view with exactly their compositions.
func waitConverged(t *testing.T, procs []*Process, timeout time.Duration) EView {
	t.Helper()
	want := make(ids.PIDSet, len(procs))
	for _, p := range procs {
		want.Add(p.PID())
	}
	deadline := time.Now().Add(timeout)
	for {
		v0 := procs[0].CurrentView()
		ok := v0.Comp().Equal(want)
		if ok {
			for _, p := range procs[1:] {
				v := p.CurrentView()
				if v.ID != v0.ID || !v.Comp().Equal(want) {
					ok = false
					break
				}
			}
		}
		if ok {
			return v0
		}
		if time.Now().After(deadline) {
			var state string
			for _, p := range procs {
				v := p.CurrentView()
				state += fmt.Sprintf("\n  %v: %v %v", p.PID(), v.ID, v.Members)
			}
			t.Fatalf("convergence timeout; want %v, state:%s", want, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// eventually polls a condition.
func eventually(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
