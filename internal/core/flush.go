package core

import "sort"

// causalTopoOrder orders flush messages so that delivery extends
// causality: a message is emitted only after every message that causally
// precedes it. Vector stamps give the partial order; ties (concurrent
// messages) break deterministically by message id. Kahn's algorithm over
// the (small) flush set; O(n²) comparisons are fine at flush sizes.
func causalTopoOrder(msgs []pktData) []pktData {
	if len(msgs) <= 1 {
		return msgs
	}
	remaining := make([]pktData, len(msgs))
	copy(remaining, msgs)
	out := make([]pktData, 0, len(msgs))
	for len(remaining) > 0 {
		// Collect minimal elements: no other remaining message strictly
		// precedes them.
		minimal := remaining[:0:0]
		var rest []pktData
		for i, cand := range remaining {
			isMin := true
			for j, other := range remaining {
				if i == j {
					continue
				}
				if other.Stamp.Less(cand.Stamp) {
					isMin = false
					break
				}
			}
			if isMin {
				minimal = append(minimal, cand)
			} else {
				rest = append(rest, cand)
			}
		}
		if len(minimal) == 0 {
			// A cycle is impossible for honest vector stamps; break
			// defensively by id order so delivery always terminates.
			minimal = remaining
			rest = nil
		}
		sort.Slice(minimal, func(i, j int) bool { return lessMsgID(minimal[i].ID, minimal[j].ID) })
		out = append(out, minimal...)
		remaining = rest
	}
	return out
}
