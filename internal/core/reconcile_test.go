package core_test

// Tests for the install-reconciliation fast path. External package: the
// integration test gates on internal/obs + internal/tracecheck, which
// import core.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/stable"
	"repro/internal/tracecheck"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/vstest"
)

// reconNet boots n processes over a DropFilter-wrapped simnet fabric so
// tests can lose individual packets (a fault the partition oracle
// cannot express).
func reconNet(t *testing.T, seed int64, n int, opts core.Options) (*transport.DropFilter, []*core.Process) {
	t.Helper()
	fabric := simnet.New(simnet.Config{
		Delay: simnet.NewUniformDelay(50*time.Microsecond, 400*time.Microsecond, seed+1),
		Seed:  seed,
	})
	t.Cleanup(fabric.Close)
	filt := transport.NewDropFilter(fabric)
	reg := stable.NewRegistry()
	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := core.Start(filt, reg, vstest.SiteName(i), opts)
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		go func() {
			for range p.Events() {
			}
		}()
		procs = append(procs, p)
	}
	return filt, procs
}

// dropInstallPred matches Install packets from one PID to another.
func dropInstallPred(from, to ids.PID) func(f, t ids.PID, payload any) bool {
	return func(f, t ids.PID, payload any) bool {
		if f != from || t != to {
			return false
		}
		_, ok := payload.(wire.Install)
		return ok
	}
}

// forceDivergence runs one install-mismatch cycle: victim is suspected
// out of the group, the filter is armed to eat the next Install from
// the coordinator to lag, and the victim is readmitted — leaving lag
// blocked in the predecessor view while everyone else has installed.
func forceDivergence(t *testing.T, filt *transport.DropFilter, procs []*core.Process, coord, lag, victim *core.Process, budget int) {
	t.Helper()
	others := make([]*core.Process, 0, len(procs)-1)
	for _, p := range procs {
		if p != victim {
			others = append(others, p)
		}
	}
	for _, p := range others {
		_ = p.ForceSuspect(victim.PID())
	}
	vstest.WaitConverged(t, others, 15*time.Second)
	filt.ArmN(dropInstallPred(coord.PID(), lag.PID()), budget)
	for _, p := range others {
		_ = p.Unforce(victim.PID())
	}
}

// TestReconcileHealsDivergenceWithoutProposal is the tracecheck-gated
// integration test: a forced peerView divergence (lost Install) must
// heal through the reconciliation fast path — no re-proposal round —
// and the resulting trace must satisfy every offline invariant.
func TestReconcileHealsDivergenceWithoutProposal(t *testing.T) {
	mem := obs.NewMemorySink()
	coll := obs.NewCollector(nil, obs.NewTracer(0, mem))
	opts := vstest.FastOptions()
	opts.Observer = coll

	filt, procs := reconNet(t, 808, 5, opts)
	vstest.WaitConverged(t, procs, 15*time.Second)

	coord, lag, victim := procs[0], procs[2], procs[4]
	forceDivergence(t, filt, procs, coord, lag, victim, 1)
	vstest.WaitConverged(t, procs, 15*time.Second)

	if got := filt.Dropped(); got != 1 {
		t.Fatalf("filter dropped %d installs, want 1", got)
	}
	st := coord.Stats()
	if st.Reconciles == 0 {
		t.Errorf("coordinator performed no reconciles; stats %+v", st)
	}
	if st.Reproposals != 0 {
		t.Errorf("coordinator escalated to %d reproposals, want 0", st.Reproposals)
	}

	// Crash (not Leave) so the trace ends with no view change half-open.
	for _, p := range procs {
		p.Crash()
	}
	for _, p := range procs {
		<-p.Done()
	}

	events := mem.Events()
	reconciles, reproposals := 0, 0
	for _, ev := range events {
		switch ev.Type {
		case obs.EvReconcile:
			reconciles++
		case obs.EvRepropose:
			reproposals++
		}
	}
	if reconciles == 0 {
		t.Error("trace has no reconcile events")
	}
	if reproposals != 0 {
		t.Errorf("trace has %d repropose events, want 0", reproposals)
	}
	rep := tracecheck.Check(events)
	if !rep.OK() {
		for _, v := range rep.Violations {
			t.Errorf("trace violation: %v", v)
		}
	}
}

// TestDuplicateInstallIdempotent injects a verbatim re-send of the
// currently installed view and asserts the receiver drops it without
// re-running the install (no extra ViewEvent, bookkeeping intact).
func TestDuplicateInstallIdempotent(t *testing.T) {
	fabric := simnet.New(simnet.Config{
		Delay: simnet.NewUniformDelay(50*time.Microsecond, 400*time.Microsecond, 31),
		Seed:  30,
	})
	t.Cleanup(fabric.Close)
	reg := stable.NewRegistry()
	opts := vstest.FastOptions()
	procs := make([]*core.Process, 0, 3)
	for i := 0; i < 3; i++ {
		p, err := core.Start(fabric, reg, vstest.SiteName(i), opts)
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		go func() {
			for range p.Events() {
			}
		}()
		procs = append(procs, p)
	}
	v := vstest.WaitConverged(t, procs, 15*time.Second)

	// A raw endpoint plays the coordinator re-sending the current view.
	ep, err := fabric.Attach(ids.PID{Site: "z", Inc: 1})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	target := procs[1]
	installs := target.Stats().ViewsInstalled
	ep.Send(target.PID(), wire.Install{
		Group:     opts.Group,
		Proposal:  v.ID,
		Comp:      v.Members,
		Structure: v.Structure,
		Resend:    true,
	})

	vstest.Eventually(t, 5*time.Second, "duplicate install deduped", func() bool {
		return target.Stats().InstallsDeduped >= 1
	})
	st := target.Stats()
	if st.ViewsInstalled != installs {
		t.Errorf("duplicate install re-installed: %d views, want %d", st.ViewsInstalled, installs)
	}
	if cur := target.CurrentView(); cur.ID != v.ID {
		t.Errorf("current view changed to %v after duplicate install of %v", cur.ID, v.ID)
	}
	for _, p := range procs {
		p.Leave()
	}
}

// TestReconcileEscalatesToReproposal exhausts the re-send budget (the
// filter keeps eating reconcile re-sends too) and asserts the
// coordinator then falls back to a full re-proposal round — and that
// the round still heals the group.
func TestReconcileEscalatesToReproposal(t *testing.T) {
	opts := vstest.FastOptions()
	opts.ReconcileAttempts = 2
	filt, procs := reconNet(t, 909, 5, opts)
	vstest.WaitConverged(t, procs, 15*time.Second)

	coord, lag, victim := procs[0], procs[2], procs[4]
	// Budget covers the original install AND every reconcile re-send;
	// only the escalation round's install gets through.
	forceDivergence(t, filt, procs, coord, lag, victim, 1+opts.ReconcileAttempts)
	vstest.WaitConverged(t, procs, 15*time.Second)

	st := coord.Stats()
	// At least the full budget was spent before escalating; a stale
	// heartbeat arriving after the escalation round's install may
	// legitimately trigger one more (harmless, deduped) re-send, since
	// the install reset the per-peer attempt counts.
	if st.Reconciles < uint64(opts.ReconcileAttempts) {
		t.Errorf("coordinator reconciled %d times, want >= %d", st.Reconciles, opts.ReconcileAttempts)
	}
	if st.Reproposals == 0 {
		t.Error("reconcile budget exhausted but no reproposal followed")
	}
	if got := filt.Dropped(); got != uint64(1+opts.ReconcileAttempts) {
		t.Errorf("filter dropped %d installs, want %d", got, 1+opts.ReconcileAttempts)
	}
	for _, p := range procs {
		p.Leave()
	}
}
