package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
)

const convergeBudget = 5 * time.Second

func TestBootstrapSingletonViewIsFirstEvent(t *testing.T) {
	n := newNet(t, 1)
	p := n.start("a", testOpts())
	eventually(t, time.Second, "bootstrap event", func() bool {
		return len(n.sink(p).views()) >= 1
	})
	views := n.sink(p).views()
	v := views[0]
	if len(v.Members) != 1 || v.Members[0] != p.PID() {
		t.Fatalf("bootstrap view members = %v", v.Members)
	}
	if v.Structure.NumSubviews() != 1 || v.Structure.NumSVSets() != 1 {
		t.Fatalf("bootstrap structure not singleton: %v", v.Structure)
	}
	if err := v.Structure.Validate(v.Comp()); err != nil {
		t.Fatalf("bootstrap structure invalid: %v", err)
	}
	p.Leave()
}

func TestTwoProcessesConverge(t *testing.T) {
	n := newNet(t, 2)
	procs := n.startN(2, testOpts())
	v := waitConverged(t, procs, convergeBudget)
	if v.Size() != 2 {
		t.Fatalf("converged view size = %d", v.Size())
	}
	// Enriched: two singleton subviews (joiners are never auto-merged).
	if v.Structure.NumSubviews() != 2 {
		t.Fatalf("expected 2 singleton subviews, got %v", v.Structure)
	}
}

func TestFiveProcessesConverge(t *testing.T) {
	n := newNet(t, 3)
	procs := n.startN(5, testOpts())
	v := waitConverged(t, procs, convergeBudget)
	if err := v.Structure.Validate(v.Comp()); err != nil {
		t.Fatalf("structure invalid: %v", err)
	}
	// All processes installed the same view id.
	for _, p := range procs {
		if got := p.CurrentView().ID; got != v.ID {
			t.Fatalf("%v installed %v, want %v", p.PID(), got, v.ID)
		}
	}
}

func TestFlatModeStructureIsDegenerate(t *testing.T) {
	opts := testOpts()
	opts.Enriched = false
	n := newNet(t, 4)
	procs := n.startN(3, opts)
	v := waitConverged(t, procs, convergeBudget)
	if v.Structure.NumSubviews() != 1 || v.Structure.NumSVSets() != 1 {
		t.Fatalf("flat mode structure = %v", v.Structure)
	}
	if err := v.Structure.Validate(v.Comp()); err != nil {
		t.Fatalf("structure invalid: %v", err)
	}
}

func TestMulticastDeliveredByAll(t *testing.T) {
	n := newNet(t, 5)
	procs := n.startN(3, testOpts())
	v := waitConverged(t, procs, convergeBudget)

	if err := procs[1].Multicast([]byte("hello")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	for _, p := range procs {
		p := p
		eventually(t, 2*time.Second, fmt.Sprintf("delivery at %v", p.PID()), func() bool {
			for _, ms := range n.sink(p).msgs() {
				for _, m := range ms {
					if bytes.Equal(m.Payload, []byte("hello")) {
						if m.View != v.ID {
							t.Errorf("delivered in view %v, sent in %v", m.View, v.ID)
						}
						if m.From != procs[1].PID() {
							t.Errorf("From = %v", m.From)
						}
						return true
					}
				}
			}
			return false
		})
	}
}

func TestMulticastDuringViewChangeIsDeferred(t *testing.T) {
	// A multicast submitted while the sender is blocked must come out in
	// the next view (P2.2: sent and delivered in the same view).
	n := newNet(t, 6)
	procs := n.startN(3, testOpts())
	waitConverged(t, procs, convergeBudget)

	// Crash one member; while the remaining two agree on the new view,
	// multicast from a survivor. Timing is racy by design — whichever
	// view the message lands in, the tag must match at all survivors.
	procs[2].Crash()
	_ = procs[0].Multicast([]byte("mid-change"))
	waitConverged(t, procs[:2], convergeBudget)

	var viewAt0 ids.ViewID
	eventually(t, 2*time.Second, "delivery at sender", func() bool {
		for vid, ms := range n.sink(procs[0]).msgs() {
			for _, m := range ms {
				if bytes.Equal(m.Payload, []byte("mid-change")) {
					viewAt0 = vid
					return true
				}
			}
		}
		return false
	})
	eventually(t, 2*time.Second, "delivery at peer in same view", func() bool {
		for vid, ms := range n.sink(procs[1]).msgs() {
			for _, m := range ms {
				if bytes.Equal(m.Payload, []byte("mid-change")) {
					if vid != viewAt0 {
						t.Fatalf("P2.2 violation: delivered in %v at peer, %v at sender", vid, viewAt0)
					}
					return true
				}
			}
		}
		return false
	})
}

func TestLeaveShrinksView(t *testing.T) {
	n := newNet(t, 7)
	procs := n.startN(3, testOpts())
	waitConverged(t, procs, convergeBudget)
	procs[2].Leave()
	v := waitConverged(t, procs[:2], convergeBudget)
	if v.Comp().Has(procs[2].PID()) {
		t.Fatal("leaver still in view")
	}
}

func TestCrashShrinksView(t *testing.T) {
	n := newNet(t, 8)
	procs := n.startN(3, testOpts())
	waitConverged(t, procs, convergeBudget)
	procs[0].Crash() // crash the coordinator (smallest pid), worst case
	v := waitConverged(t, procs[1:], convergeBudget)
	if v.Comp().Has(procs[0].PID()) {
		t.Fatal("crashed process still in view")
	}
}

func TestPartitionProducesConcurrentViews(t *testing.T) {
	n := newNet(t, 9)
	procs := n.startN(4, testOpts())
	waitConverged(t, procs, convergeBudget)

	n.fabric.SetPartitions([]string{"a", "b"}, []string{"c", "d"})
	left := waitConverged(t, procs[:2], convergeBudget)
	right := waitConverged(t, procs[2:], convergeBudget)
	if left.ID == right.ID {
		t.Fatal("concurrent partitions share a view id")
	}
	if left.Comp().Intersect(right.Comp()).Equal(left.Comp()) {
		t.Fatal("partitions overlap")
	}
}

func TestMergeAfterHealPreservesClusters(t *testing.T) {
	// The heart of Figure 2 / Property 6.3: after partitions heal, the
	// merged view contains each side as a distinct cluster — for the
	// members that transitioned together. (A member that reached the
	// merged view through an intermediate view — asymmetric partition
	// detection or staggered healing — legitimately arrives separated:
	// grouping only shrinks along such paths and may not regrow without
	// an application merge.)
	n := newNet(t, 10)
	procs := n.startN(4, testOpts())
	waitConverged(t, procs, convergeBudget)

	// Make {a,b} one subview and {c,d} another via explicit merges.
	pairMerge(t, procs[0], procs[0], procs[1])
	pairMerge(t, procs[0], procs[2], procs[3])

	n.fabric.SetPartitions([]string{"a", "b"}, []string{"c", "d"})
	waitConverged(t, procs[:2], convergeBudget)
	waitConverged(t, procs[2:], convergeBudget)
	// Each side re-merges its subviews after settling.
	remergeSide(t, procs[0], procs[:2])
	remergeSide(t, procs[2], procs[2:])

	n.fabric.Heal()
	merged := waitConverged(t, procs, convergeBudget)
	if err := merged.Structure.Validate(merged.Comp()); err != nil {
		t.Fatalf("merged structure invalid: %v", err)
	}

	// Never guaranteed to merge without an app request: the two sides.
	gotA, _ := merged.Structure.SubviewOf(procs[0].PID())
	gotC, _ := merged.Structure.SubviewOf(procs[2].PID())
	if gotA == gotC {
		t.Error("clusters collapsed: a and c share a subview without any app merge")
	}
	// The model guarantee (P6.3): co-subview pairs that transitioned the
	// same edge into the merged view stay co-subview.
	checkPairPreserved(t, n, merged, procs[0], procs[1])
	checkPairPreserved(t, n, merged, procs[2], procs[3])
}

// pairMerge drives x and y into one subview, retrying through transient
// view changes.
func pairMerge(t *testing.T, seqr, x, y *Process) {
	t.Helper()
	deadline := time.Now().Add(convergeBudget)
	var lastReq time.Time
	for {
		v := seqr.CurrentView()
		svX, okX := v.Structure.SubviewOf(x.PID())
		svY, okY := v.Structure.SubviewOf(y.PID())
		if okX && okY && svX == svY {
			// wait until both members observe it too
			if vx, vy := x.CurrentView(), y.CurrentView(); sameSubview(vx, x.PID(), y.PID()) && sameSubview(vy, x.PID(), y.PID()) {
				return
			}
		}
		if okX && okY && time.Since(lastReq) > 200*time.Millisecond {
			lastReq = time.Now()
			ssX, _ := v.Structure.SVSetOf(svX)
			ssY, _ := v.Structure.SVSetOf(svY)
			if ssX != ssY {
				_ = seqr.SVSetMerge(ssX, ssY)
			} else if svX != svY {
				_ = seqr.SubviewMerge(svX, svY)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("pair %v,%v never merged; structure %v", x.PID(), y.PID(), seqr.CurrentView().Structure)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func sameSubview(v EView, x, y ids.PID) bool {
	svX, okX := v.Structure.SubviewOf(x)
	svY, okY := v.Structure.SubviewOf(y)
	return okX && okY && svX == svY
}

// checkPairPreserved asserts P6.3 for one pair: if both processes
// entered the merged view from the same predecessor view in which they
// shared a subview, they must share one in the merged view.
func checkPairPreserved(t *testing.T, n *net, merged EView, x, y *Process) {
	t.Helper()
	predX, finalX, okX := finalBefore(n.sink(x), merged.ID)
	predY, _, okY := finalBefore(n.sink(y), merged.ID)
	if !okX || !okY || predX != predY {
		t.Logf("pair %v,%v entered %v from different views (%v vs %v): exempt from P6.3",
			x.PID(), y.PID(), merged.ID, predX, predY)
		return
	}
	if !sameSubview(finalX, x.PID(), y.PID()) {
		return // they were already separated before the merge
	}
	if !sameSubview(merged, x.PID(), y.PID()) {
		t.Errorf("P6.3 violation: %v and %v shared a subview in %v and both transitioned to %v but are split",
			x.PID(), y.PID(), predX, merged.ID)
	}
}

// finalBefore returns the id of the view a process left when installing
// target, plus the final enriched view (including applied e-changes) it
// observed there.
func finalBefore(sk *sink, target ids.ViewID) (ids.ViewID, EView, bool) {
	var last EView
	seen := false
	for _, ev := range sk.snapshot() {
		switch e := ev.(type) {
		case ViewEvent:
			if e.EView.ID == target {
				if !seen {
					return ids.ViewID{}, EView{}, false
				}
				return last.ID, last, true
			}
			last = e.EView
			seen = true
		case EChangeEvent:
			if seen && e.EView.ID == last.ID {
				last = e.EView
			}
		}
	}
	return ids.ViewID{}, EView{}, false
}

// remergeSide drives one partition side back into a single subview,
// retrying through transient view changes.
func remergeSide(t *testing.T, seqr *Process, side []*Process) {
	t.Helper()
	deadline := time.Now().Add(convergeBudget)
	var lastReq time.Time
	for {
		done := true
		for _, p := range side {
			if p.CurrentView().Structure.NumSubviews() != 1 {
				done = false
				break
			}
		}
		if done {
			return
		}
		if time.Since(lastReq) > 200*time.Millisecond {
			lastReq = time.Now()
			v := seqr.CurrentView()
			if sss := v.Structure.SVSets(); len(sss) >= 2 {
				_ = seqr.SVSetMerge(sss...)
			} else if svs := v.Structure.Subviews(); len(svs) >= 2 {
				_ = seqr.SubviewMerge(svs...)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("side never re-merged; structure %v", seqr.CurrentView().Structure)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestConcurrentMergeRequestsConverge(t *testing.T) {
	// Two members request sv-set merges concurrently; the sequencer
	// totally orders them (P6.1 — verified in depth by the randomized
	// checker tests), so all members converge to identical structures.
	n := newNet(t, 11)
	procs := n.startN(4, testOpts())
	waitConverged(t, procs, convergeBudget)

	deadline := time.Now().Add(convergeBudget)
	var lastReq time.Time
	for {
		v := procs[0].CurrentView()
		if v.Structure.NumSVSets() <= 2 {
			break
		}
		if time.Since(lastReq) > 200*time.Millisecond {
			lastReq = time.Now()
			if sss := v.Structure.SVSets(); len(sss) >= 4 {
				// concurrent requests from two different members
				_ = procs[1].SVSetMerge(sss[0], sss[1])
				_ = procs[3].SVSetMerge(sss[2], sss[3])
			} else if len(sss) >= 2 {
				_ = procs[1].SVSetMerge(sss...)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("merges never applied; structure %v", v.Structure)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// All members converge to the same structure.
	eventually(t, convergeBudget, "identical structures", func() bool {
		ref := procs[0].CurrentView()
		for _, p := range procs[1:] {
			v := p.CurrentView()
			if v.ID != ref.ID || !v.Structure.Equal(ref.Structure) {
				return false
			}
		}
		return true
	})
	// The recorded e-change events at every member form consistent
	// (prefix-ordered) sequences per view.
	perView := make(map[ids.ViewID][][]EChangeEvent)
	for _, p := range procs {
		byView := make(map[ids.ViewID][]EChangeEvent)
		for _, e := range n.sink(p).echanges() {
			byView[e.EView.ID] = append(byView[e.EView.ID], e)
		}
		for vid, seq := range byView {
			perView[vid] = append(perView[vid], seq)
		}
	}
	for vid, seqs := range perView {
		var longest []EChangeEvent
		for _, s := range seqs {
			if len(s) > len(longest) {
				longest = s
			}
		}
		for _, s := range seqs {
			for i, e := range s {
				ref := longest[i]
				if e.Seq != ref.Seq || e.Kind != ref.Kind || e.NewSVSet != ref.NewSVSet || e.NewSubview != ref.NewSubview {
					t.Fatalf("view %v: e-change %d diverges: %+v vs %+v", vid, i, e, ref)
				}
			}
		}
	}
}

func TestSubviewMergeAcrossSVSetsIsSilentlyIgnored(t *testing.T) {
	n := newNet(t, 12)
	procs := n.startN(2, testOpts())
	v := waitConverged(t, procs, convergeBudget)
	svs := v.Structure.Subviews()
	if err := procs[0].SubviewMerge(svs[0], svs[1]); err != nil {
		t.Fatalf("SubviewMerge: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	if got := procs[0].CurrentView().Changes; got != 0 {
		t.Fatalf("no-effect merge produced %d e-changes", got)
	}
}

func TestRecoveryGetsNewIncarnation(t *testing.T) {
	n := newNet(t, 13)
	procs := n.startN(3, testOpts())
	waitConverged(t, procs, convergeBudget)
	procs[2].Crash()
	waitConverged(t, procs[:2], convergeBudget)

	// Recover site c: new incarnation joins the group again.
	p2 := n.start("c", testOpts())
	if p2.PID().Inc != 2 {
		t.Fatalf("recovered incarnation = %d, want 2", p2.PID().Inc)
	}
	all := []*Process{procs[0], procs[1], p2}
	v := waitConverged(t, all, convergeBudget)
	if !v.Comp().Has(p2.PID()) {
		t.Fatal("recovered process not in view")
	}
	// Recovered process arrives as a singleton subview (a fresh process
	// cannot appear inside an existing subview — §6.1).
	sv, _ := v.Structure.SubviewOf(p2.PID())
	if got := v.Structure.SubviewMembers(sv); len(got) != 1 {
		t.Fatalf("recovered process subview = %v, want singleton", got)
	}
}

func TestViewLogPersisted(t *testing.T) {
	n := newNet(t, 14)
	procs := n.startN(2, testOpts())
	waitConverged(t, procs, convergeBudget)
	st := n.reg.Open("a")
	log := st.ViewLog()
	if len(log) < 2 {
		t.Fatalf("view log has %d entries, want >= 2 (bootstrap + merged)", len(log))
	}
	last, _ := st.LastView()
	if last.View != procs[0].CurrentView().ID {
		t.Fatalf("last logged view %v != current %v", last.View, procs[0].CurrentView().ID)
	}
}

func TestStoppedProcessAPIErrors(t *testing.T) {
	n := newNet(t, 15)
	p := n.start("a", testOpts())
	p.Leave()
	if err := p.Multicast([]byte("x")); err != ErrStopped {
		t.Fatalf("Multicast after Leave: %v, want ErrStopped", err)
	}
	<-p.Done()
	// Events channel must close.
	eventually(t, time.Second, "events drained", func() bool {
		_, open := <-p.Events()
		return !open
	})
}

func TestAgreementUnderMessageStorm(t *testing.T) {
	// Multicast a burst while a member crashes; all survivors of each
	// view transition must deliver identical per-view message sets.
	n := newNet(t, 16)
	procs := n.startN(4, testOpts())
	waitConverged(t, procs, convergeBudget)

	stop := make(chan struct{})
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = procs[0].Multicast([]byte(fmt.Sprintf("a-%d", i)))
			_ = procs[1].Multicast([]byte(fmt.Sprintf("b-%d", i)))
			i++
			time.Sleep(500 * time.Microsecond)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	procs[3].Crash()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	waitConverged(t, procs[:3], convergeBudget)
	time.Sleep(100 * time.Millisecond) // drain in-flight deliveries

	// For every view two survivors share, delivered sets must be equal.
	// (procs[0..2] traverse the same view sequence.)
	sets := make([]map[ids.ViewID]map[ids.MsgID]bool, 3)
	for i, p := range procs[:3] {
		sets[i] = make(map[ids.ViewID]map[ids.MsgID]bool)
		for vid, ms := range n.sink(p).msgs() {
			set := make(map[ids.MsgID]bool, len(ms))
			for _, m := range ms {
				set[m.ID] = true
			}
			sets[i][vid] = set
		}
	}
	cur := procs[0].CurrentView().ID
	for vid := range sets[0] {
		if vid == cur {
			continue // current view still open; sets may legitimately trail
		}
		for i := 1; i < 3; i++ {
			other, ok := sets[i][vid]
			if !ok {
				continue // that process never traversed vid (different path)
			}
			if len(other) != len(sets[0][vid]) {
				t.Fatalf("P2.1 violation in view %v: |%v|=%d vs |%v|=%d",
					vid, procs[0].PID(), len(sets[0][vid]), procs[i].PID(), len(other))
			}
			for id := range sets[0][vid] {
				if !other[id] {
					t.Fatalf("P2.1 violation in view %v: %v missing %v", vid, procs[i].PID(), id)
				}
			}
		}
	}
}

func TestStatsCounters(t *testing.T) {
	n := newNet(t, 17)
	procs := n.startN(2, testOpts())
	waitConverged(t, procs, convergeBudget)
	_ = procs[0].Multicast([]byte("x"))
	eventually(t, time.Second, "stats", func() bool {
		s := procs[0].Stats()
		return s.MsgsSent >= 1 && s.MsgsDelivered >= 1 && s.ViewsInstalled >= 2
	})
}
