package core

import (
	"time"
)

// Status is a live introspection snapshot of one process: the paper's
// externally meaningful state (current view id, composition, e-view
// structure) plus the run-time health an operator watches while the
// group runs — per-peer failure-detector state, the age of any
// in-flight proposal, event-loop health, and the process counters.
//
// The protocol loop publishes a fresh Status on every housekeeping tick
// (and at every install), so a Status is at most one tick stale; AsOf
// carries the publication time so a consumer can detect a wedged loop
// (AsOf stops advancing) rather than mistake its last words for the
// present. All fields are plain data: a Status is safe to retain,
// compare, and marshal.
type Status struct {
	// PID is the process identity (site#incarnation); Site and Group
	// repeat its components for consumers that key on site names.
	PID   string `json:"pid"`
	Site  string `json:"site"`
	Group string `json:"group"`

	// ViewID, Epoch, and Members describe the current view; Structure
	// is the canonical subview/sv-set grouping summary (sv-sets joined
	// by "|", subviews by "+", members by ","), with Subviews/SVSets
	// its sizes and EChanges the e-view changes applied in this view.
	ViewID    string   `json:"view_id"`
	Epoch     uint64   `json:"epoch"`
	Members   []string `json:"members"`
	Size      int      `json:"size"`
	Structure string   `json:"structure"`
	Subviews  int      `json:"subviews"`
	SVSets    int      `json:"svsets"`
	EChanges  uint32   `json:"echanges"`

	// Blocked reports the flush discipline in force: the process acked
	// AckedProposal and multicasting is suspended until the install.
	// ProposalAge is how long the process has been blocked (or, at a
	// coordinator that is not itself blocked, how long its round has
	// been open) — the "in-flight proposal age" a watcher thresholds to
	// flag a stuck membership round.
	Blocked       bool          `json:"blocked"`
	AckedProposal string        `json:"acked_proposal,omitempty"`
	ProposalAge   time.Duration `json:"proposal_age_ns,omitempty"`

	// Coordinating reports an open coordinator round at this process:
	// CoordProposal the proposed view id, CoordAcks how many of
	// CoordSize members have acked so far.
	Coordinating  bool   `json:"coordinating,omitempty"`
	CoordProposal string `json:"coord_proposal,omitempty"`
	CoordAcks     int    `json:"coord_acks,omitempty"`
	CoordSize     int    `json:"coord_size,omitempty"`

	// Peers holds the failure-detector and divergence state for every
	// other member of the current view, sorted by PID.
	Peers []PeerStatus `json:"peers,omitempty"`

	// EventQueueLen is the application event-queue depth at AsOf;
	// TickLag how much later than Options.Tick the publishing tick
	// fired. These are the health gauges the loop feeds (see
	// ExtendedObserver.OnLoopHealth).
	EventQueueLen int           `json:"eventq_len"`
	TickLag       time.Duration `json:"tick_lag_ns"`

	// Stats are the process counters at AsOf.
	Stats Stats `json:"stats"`

	// AsOf is when the loop published this snapshot.
	AsOf time.Time `json:"as_of"`
}

// PeerStatus is one co-member's state as seen from this process.
type PeerStatus struct {
	PID string `json:"pid"`
	// View is the view id the peer last advertised via heartbeat
	// (empty before its first heartbeat in this composition). A peer
	// persistently advertising a different view id than ours is the
	// divergence the reconciliation fast path heals.
	View string `json:"view,omitempty"`
	// Diverged flags View != our ViewID (with a non-empty View).
	Diverged bool `json:"diverged,omitempty"`
	// Suspected is the failure detector's current opinion; Timeout the
	// peer's effective suspicion timeout (adapted per peer when
	// Options.AdaptiveFD is on); SilentFor how long since the last
	// liveness indication (zero if never heard).
	Suspected bool          `json:"suspected,omitempty"`
	Timeout   time.Duration `json:"timeout_ns"`
	SilentFor time.Duration `json:"silent_for_ns"`
}

// StatusSnapshot returns the most recently published Status. It reads a
// loop-independent copy under the process mutex — never the protocol
// loop's own state and never through the request channel — so it is
// safe to call from any goroutine at any rate, and it keeps answering
// (with a stale AsOf) even if the protocol loop has wedged. The admin
// endpoint serves it; see internal/admin.
func (p *Process) StatusSnapshot() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.status
}

// statusEvery is the publication floor on the tick path: at
// millisecond ticks, formatting the full view into a Status every
// single tick is measurable protocol-loop jitter, and no monitor polls
// that fast. Installs (and the bootstrap publish) bypass the floor so
// a view change is visible immediately.
const statusEvery = 25 * time.Millisecond

// publishStatus builds a Status from the machine state and stores it
// for StatusSnapshot. Runs on the protocol goroutine (tick and install
// paths); everything it publishes is freshly allocated, so later
// publications never mutate an already-returned snapshot.
func (m *machine) publishStatus(now time.Time, lag time.Duration) {
	st := Status{
		PID:       m.p.pid.String(),
		Site:      m.p.pid.Site,
		Group:     m.p.opts.Group,
		ViewID:    m.view.ID.String(),
		Epoch:     m.view.ID.Epoch,
		Size:      len(m.view.Members),
		Structure: m.view.Structure.Summary(),
		Subviews:  m.view.Structure.NumSubviews(),
		SVSets:    m.view.Structure.NumSVSets(),
		EChanges:  m.view.Changes,
		Blocked:   m.blocked,

		EventQueueLen: m.p.events.Len(),
		TickLag:       lag,
		AsOf:          now,
	}
	st.Members = make([]string, len(m.view.Members))
	for i, q := range m.view.Members {
		st.Members[i] = q.String()
	}
	if m.blocked {
		st.AckedProposal = m.ackedProp.String()
		if !m.blockedSince.IsZero() {
			st.ProposalAge = now.Sub(m.blockedSince)
		}
	}
	if m.coord != nil {
		st.Coordinating = true
		st.CoordProposal = m.coord.prop.String()
		st.CoordAcks = len(m.coord.acks)
		st.CoordSize = len(m.coord.comp)
		if !m.blocked && !m.coord.since.IsZero() {
			st.ProposalAge = now.Sub(m.coord.since)
		}
	}
	if n := len(m.view.Members); n > 1 {
		st.Peers = make([]PeerStatus, 0, n-1)
		for _, q := range m.view.Members { // already sorted
			if q == m.p.pid {
				continue
			}
			ps := PeerStatus{
				PID:       q.String(),
				Suspected: m.det.Suspects(q, now),
				Timeout:   m.det.TimeoutFor(q),
			}
			if v, ok := m.peerView[q]; ok {
				ps.View = v.String()
				ps.Diverged = v != m.view.ID
			}
			if d, ok := m.det.SilentFor(q, now); ok {
				ps.SilentFor = d
			}
			st.Peers = append(st.Peers, ps)
		}
	}
	m.p.mu.Lock()
	st.Stats = m.p.stats
	m.p.status = st
	m.p.mu.Unlock()
	m.lastPublish = now
}
