package core

import (
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/ids"
)

func mkData(sender ids.PID, seq uint64, stamp clock.Vector) pktData {
	return pktData{ID: ids.MsgID{Sender: sender, Seq: seq}, Stamp: stamp}
}

func TestCausalTopoOrderRespectsStamps(t *testing.T) {
	a := ids.PID{Site: "a", Inc: 1}
	b := ids.PID{Site: "b", Inc: 1}
	m1 := mkData(a, 1, clock.Vector{a: 1})
	m2 := mkData(b, 1, clock.Vector{a: 1, b: 1}) // depends on m1
	m3 := mkData(a, 2, clock.Vector{a: 2, b: 1}) // depends on both

	for trial := 0; trial < 10; trial++ {
		in := []pktData{m3, m2, m1}
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(in), func(i, j int) { in[i], in[j] = in[j], in[i] })
		out := causalTopoOrder(in)
		pos := make(map[ids.MsgID]int, len(out))
		for i, d := range out {
			pos[d.ID] = i
		}
		if !(pos[m1.ID] < pos[m2.ID] && pos[m2.ID] < pos[m3.ID]) {
			t.Fatalf("order violates causality: %v", out)
		}
	}
}

func TestCausalTopoOrderConcurrentDeterministic(t *testing.T) {
	a := ids.PID{Site: "a", Inc: 1}
	b := ids.PID{Site: "b", Inc: 1}
	ma := mkData(a, 1, clock.Vector{a: 1})
	mb := mkData(b, 1, clock.Vector{b: 1})
	out1 := causalTopoOrder([]pktData{ma, mb})
	out2 := causalTopoOrder([]pktData{mb, ma})
	if out1[0].ID != out2[0].ID || out1[1].ID != out2[1].ID {
		t.Fatal("tie-break not deterministic")
	}
	if out1[0].ID != ma.ID {
		t.Fatalf("tie-break should pick smaller id first, got %v", out1[0].ID)
	}
}

func TestCausalTopoOrderEmptyAndSingle(t *testing.T) {
	if got := causalTopoOrder(nil); len(got) != 0 {
		t.Fatal("nil input")
	}
	a := ids.PID{Site: "a", Inc: 1}
	one := []pktData{mkData(a, 1, clock.Vector{a: 1})}
	if got := causalTopoOrder(one); len(got) != 1 {
		t.Fatal("single input")
	}
}

func TestCausalTopoOrderRandomHistories(t *testing.T) {
	// Property: for randomly generated causal histories, the output
	// always lists causal predecessors first and preserves all messages.
	r := rand.New(rand.NewSource(21))
	peers := []ids.PID{
		{Site: "a", Inc: 1}, {Site: "b", Inc: 1}, {Site: "c", Inc: 1},
	}
	for trial := 0; trial < 100; trial++ {
		clocks := map[ids.PID]clock.Vector{}
		seqs := map[ids.PID]uint64{}
		for _, p := range peers {
			clocks[p] = clock.NewVector()
		}
		var history []pktData
		for i := 0; i < 12; i++ {
			p := peers[r.Intn(len(peers))]
			for _, h := range history {
				if r.Intn(3) == 0 {
					clocks[p].Merge(h.Stamp)
				}
			}
			clocks[p].Tick(p)
			seqs[p]++
			history = append(history, mkData(p, seqs[p], clocks[p].Clone()))
		}
		shuffled := make([]pktData, len(history))
		copy(shuffled, history)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		out := causalTopoOrder(shuffled)
		if len(out) != len(history) {
			t.Fatalf("trial %d: lost messages: %d vs %d", trial, len(out), len(history))
		}
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				if out[j].Stamp.Less(out[i].Stamp) {
					t.Fatalf("trial %d: %v precedes %v but delivered later", trial, out[j].ID, out[i].ID)
				}
			}
		}
	}
}

func TestClampSingleJoinUnit(t *testing.T) {
	a := ids.PID{Site: "a", Inc: 1}
	b := ids.PID{Site: "b", Inc: 1}
	c := ids.PID{Site: "c", Inc: 1}
	d := ids.PID{Site: "d", Inc: 1}

	m := &machine{
		p:    &Process{pid: a, opts: Options{SingleJoin: true}.withDefaults()},
		comp: ids.NewPIDSet(a, b),
	}
	m.p.opts.SingleJoin = true

	// Two newcomers: only the smallest is admitted.
	got := m.clampSingleJoin(ids.NewPIDSet(a, b, c, d))
	if !got.Equal(ids.NewPIDSet(a, b, c)) {
		t.Fatalf("clamped = %v, want {a,b,c}", got)
	}
	// One newcomer passes through.
	got = m.clampSingleJoin(ids.NewPIDSet(a, b, d))
	if !got.Equal(ids.NewPIDSet(a, b, d)) {
		t.Fatalf("clamped = %v, want {a,b,d}", got)
	}
	// Shrinking is never clamped.
	got = m.clampSingleJoin(ids.NewPIDSet(a))
	if !got.Equal(ids.NewPIDSet(a)) {
		t.Fatalf("clamped = %v, want {a}", got)
	}
	// Disabled: pass-through.
	m.p.opts.SingleJoin = false
	got = m.clampSingleJoin(ids.NewPIDSet(a, b, c, d))
	if !got.Equal(ids.NewPIDSet(a, b, c, d)) {
		t.Fatalf("unclamped = %v", got)
	}
}

func TestLessMsgID(t *testing.T) {
	a := ids.PID{Site: "a", Inc: 1}
	b := ids.PID{Site: "b", Inc: 1}
	if !lessMsgID(ids.MsgID{Sender: a, Seq: 9}, ids.MsgID{Sender: b, Seq: 1}) {
		t.Error("sender should dominate")
	}
	if !lessMsgID(ids.MsgID{Sender: a, Seq: 1}, ids.MsgID{Sender: a, Seq: 2}) {
		t.Error("seq should break ties")
	}
	if lessMsgID(ids.MsgID{Sender: a, Seq: 1}, ids.MsgID{Sender: a, Seq: 1}) {
		t.Error("irreflexive")
	}
}
