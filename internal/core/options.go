package core

import "time"

// Options configures a Process. The zero value is completed with the
// defaults below, chosen for simulation speed (millisecond scale) while
// preserving the required asymmetry: suspicion timeout well above the
// fabric's delay bound estimate, proposal timeout above a round trip.
type Options struct {
	// Group names the process group to join.
	Group string

	// HeartbeatEvery is the heartbeat broadcast period.
	HeartbeatEvery time.Duration
	// SuspectAfter is the failure-detector suspicion timeout.
	SuspectAfter time.Duration
	// Tick is the protocol housekeeping period (suspicion polling,
	// proposal retry checks).
	Tick time.Duration
	// ProposeTimeout bounds how long a coordinator waits for acks before
	// re-proposing with a shrunken composition.
	ProposeTimeout time.Duration
	// MismatchDwell is how many consecutive ticks a view-id mismatch or
	// composition drift must persist before triggering a proposal;
	// filters transient disagreement during install propagation.
	MismatchDwell int

	// Enriched enables the subview / sv-set machinery. When false the
	// process delivers flat views (single subview, single sv-set) — the
	// traditional view-synchrony baseline.
	Enriched bool

	// SingleJoin restricts proposals to grow by at most one process
	// beyond the proposer's current view, reproducing Isis's rule that
	// two consecutive views expand by at most one member (the E1
	// baseline). Shrinking is unrestricted, as in Isis.
	SingleJoin bool

	// Observer, when non-nil, receives synchronous event callbacks for
	// trace checking.
	Observer Observer

	// LogViews persists every installed view to the site's stable store
	// (required for last-process-to-fail determination).
	LogViews bool
}

// Default protocol timing. Exported for tests and benchmarks that need to
// compute stabilization budgets from them.
const (
	DefaultHeartbeatEvery = 5 * time.Millisecond
	DefaultSuspectAfter   = 25 * time.Millisecond
	DefaultTick           = 2 * time.Millisecond
	DefaultProposeTimeout = 40 * time.Millisecond
	DefaultMismatchDwell  = 3
)

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Group == "" {
		o.Group = "group"
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = DefaultSuspectAfter
	}
	if o.Tick <= 0 {
		o.Tick = DefaultTick
	}
	if o.ProposeTimeout <= 0 {
		o.ProposeTimeout = DefaultProposeTimeout
	}
	if o.MismatchDwell <= 0 {
		o.MismatchDwell = DefaultMismatchDwell
	}
	if o.Observer == nil {
		o.Observer = nopObserver{}
	}
	return o
}
