package core

import (
	"time"

	"repro/internal/fd"
)

// Options configures a Process. The zero value is completed with the
// defaults below, chosen for simulation speed (millisecond scale) while
// preserving the required asymmetry: suspicion timeout well above the
// fabric's delay bound estimate, proposal timeout above a round trip.
type Options struct {
	// Group names the process group to join.
	Group string

	// HeartbeatEvery is the heartbeat broadcast period.
	HeartbeatEvery time.Duration
	// SuspectAfter is the failure-detector suspicion timeout.
	SuspectAfter time.Duration
	// Tick is the protocol housekeeping period (suspicion polling,
	// proposal retry checks).
	Tick time.Duration
	// ProposeTimeout bounds how long a coordinator waits for acks before
	// re-proposing with a shrunken composition.
	ProposeTimeout time.Duration
	// MismatchDwell is how many consecutive ticks a view-id mismatch or
	// composition drift must persist before triggering a proposal;
	// filters transient disagreement during install propagation.
	MismatchDwell int

	// ReconcileDwell is how many ticks the coordinator waits after
	// re-sending its cached install to a diverging peer before acting on
	// the divergence again (another re-send, or the re-proposal
	// escalation). Defaults to MismatchDwell.
	ReconcileDwell int
	// ReconcileAttempts bounds how many install re-sends a diverging
	// peer gets before the coordinator gives up on reconciliation and
	// escalates to a full re-proposal round (default 3).
	ReconcileAttempts int
	// NoReconcile disables the install-reconciliation fast path: every
	// same-composition view-id divergence escalates straight to a
	// re-proposal round, as the run-time behaved before the fast path
	// existed. Ablation experiments use it.
	NoReconcile bool

	// TombstoneTTL is how long a departed process's tombstone blocks its
	// liveness indications (stale packets of a dead incarnation must not
	// resurrect it). Defaults to 20*SuspectAfter, scaling with the
	// timing profile instead of a wall-clock constant.
	TombstoneTTL time.Duration

	// AdaptiveFD enables per-peer adaptive suspicion timeouts: a
	// Jacobson-style smoothed mean + FDDevK·deviation over the observed
	// heartbeat gaps, clamped to [FDFloor, FDCeil]. Until FDWarmup gaps
	// have been observed from a peer, the static SuspectAfter applies to
	// it (and SuspectAfter remains the fallback for first contact).
	AdaptiveFD bool
	// FDDevK is the adaptive deviation multiplier (default 4, per
	// Jacobson's RTO).
	FDDevK float64
	// FDFloor and FDCeil clamp the adaptive timeout. Defaults:
	// 2*HeartbeatEvery and 4*SuspectAfter — a floor above one heartbeat
	// period so scheduling noise alone cannot suspect, a ceiling that
	// bounds detection latency (and the detector's GC horizon) however
	// jittery the fabric gets.
	FDFloor time.Duration
	FDCeil  time.Duration
	// FDWarmup is the per-peer gap-sample count before the adaptive
	// timeout takes effect (default 8).
	FDWarmup int

	// Enriched enables the subview / sv-set machinery. When false the
	// process delivers flat views (single subview, single sv-set) — the
	// traditional view-synchrony baseline.
	Enriched bool

	// SingleJoin restricts proposals to grow by at most one process
	// beyond the proposer's current view, reproducing Isis's rule that
	// two consecutive views expand by at most one member (the E1
	// baseline). Shrinking is unrestricted, as in Isis.
	SingleJoin bool

	// Observer, when non-nil, receives synchronous event callbacks for
	// trace checking.
	Observer Observer

	// LogViews persists every installed view to the site's stable store
	// (required for last-process-to-fail determination).
	LogViews bool
}

// Default protocol timing. Exported for tests and benchmarks that need to
// compute stabilization budgets from them.
const (
	DefaultHeartbeatEvery = 5 * time.Millisecond
	DefaultSuspectAfter   = 25 * time.Millisecond
	DefaultTick           = 2 * time.Millisecond
	DefaultProposeTimeout = 40 * time.Millisecond
	DefaultMismatchDwell  = 3
	// DefaultReconcileAttempts is the install re-send budget per
	// diverging peer (see Options.ReconcileAttempts).
	DefaultReconcileAttempts = 3

	// Adaptive failure-detector defaults (see Options.AdaptiveFD).
	DefaultFDDevK   = fd.DefaultDevK
	DefaultFDWarmup = fd.DefaultWarmup
)

// Simulation-speed timing profile shared by every fast harness in the
// tree. experiments.FastTiming() is the harness-facing source of this
// profile; the constants live here only so that core's own tests — which
// cannot import experiments without an import cycle — use the exact same
// numbers instead of re-declaring drifting literals.
const (
	SimHeartbeatEvery = 3 * time.Millisecond
	SimSuspectAfter   = 18 * time.Millisecond
	SimTick           = 2 * time.Millisecond
	SimProposeTimeout = 30 * time.Millisecond
)

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Group == "" {
		o.Group = "group"
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = DefaultSuspectAfter
	}
	if o.Tick <= 0 {
		o.Tick = DefaultTick
	}
	if o.ProposeTimeout <= 0 {
		o.ProposeTimeout = DefaultProposeTimeout
	}
	if o.MismatchDwell <= 0 {
		o.MismatchDwell = DefaultMismatchDwell
	}
	if o.ReconcileDwell <= 0 {
		o.ReconcileDwell = o.MismatchDwell
	}
	if o.ReconcileAttempts <= 0 {
		o.ReconcileAttempts = DefaultReconcileAttempts
	}
	if o.TombstoneTTL <= 0 {
		o.TombstoneTTL = 20 * o.SuspectAfter
	}
	// The adaptive knobs are validated unconditionally so that reading
	// them back is meaningful whether or not AdaptiveFD is set; they are
	// inert on a static detector.
	if o.FDDevK <= 0 {
		o.FDDevK = DefaultFDDevK
	}
	if o.FDFloor <= 0 {
		o.FDFloor = 2 * o.HeartbeatEvery
	}
	if o.FDCeil <= 0 {
		o.FDCeil = 4 * o.SuspectAfter
	}
	if o.FDCeil < o.FDFloor {
		o.FDCeil = o.FDFloor
	}
	if o.FDWarmup <= 0 {
		o.FDWarmup = DefaultFDWarmup
	}
	if o.Observer == nil {
		o.Observer = nopObserver{}
	}
	return o
}
