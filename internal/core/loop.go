package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/evs"
	"repro/internal/ids"
	"repro/internal/transport"
)

// send unicasts a protocol packet, reporting it to the extended observer
// first. All loop-originated sends go through here (or bcast) so that
// per-kind packet accounting sees every packet.
func (m *machine) send(to ids.PID, payload any) {
	if m.p.tobs != nil {
		kind, size := transport.Describe(payload)
		m.p.tobs.OnPacket(m.p.pid, kind, size, true)
	}
	m.p.ep.Send(to, payload)
}

// bcast broadcasts a protocol packet; see send.
func (m *machine) bcast(payload any) {
	if m.p.tobs != nil {
		kind, size := transport.Describe(payload)
		m.p.tobs.OnPacket(m.p.pid, kind, size, true)
	}
	m.p.ep.Broadcast(payload)
}

// sendHeartbeat broadcasts the periodic liveness/discovery packet.
func (m *machine) sendHeartbeat() {
	m.bcast(pktHeartbeat{
		Group:    m.p.opts.Group,
		From:     m.p.pid,
		View:     m.view.ID,
		MaxEpoch: m.maxEpoch,
		VC:       m.vc.Restrict(m.comp),
	})
}

func (m *machine) onPacket(msg transport.Message, now time.Time) {
	switch pkt := msg.Payload.(type) {
	case pktHeartbeat:
		if pkt.Group != m.p.opts.Group {
			return
		}
		m.onHeartbeat(pkt, now)
	case pktData:
		if pkt.Group != m.p.opts.Group {
			return
		}
		m.noteAlive(pkt.ID.Sender, now)
		if pkt.Unicast {
			m.onUnicast(pkt)
		} else {
			m.onCausal(pkt)
		}
	case pktEChange:
		if pkt.Group != m.p.opts.Group {
			return
		}
		m.noteAlive(pkt.ID.Sender, now)
		m.onCausal(pkt)
	case pktMergeReq:
		if pkt.Group != m.p.opts.Group {
			return
		}
		m.noteAlive(pkt.From, now)
		m.onMergeReq(pkt)
	case pktPropose:
		if pkt.Group != m.p.opts.Group {
			return
		}
		m.noteAlive(pkt.Proposal.Coord, now)
		m.onPropose(pkt)
	case pktAck:
		if pkt.Group != m.p.opts.Group {
			return
		}
		m.noteAlive(pkt.From, now)
		m.onAck(pkt)
	case pktInstall:
		if pkt.Group != m.p.opts.Group {
			return
		}
		m.noteAlive(pkt.Proposal.Coord, now)
		m.onInstall(pkt)
	}
}

// noteAlive feeds the failure detector, ignoring tombstoned (departed)
// processes and our own packets.
func (m *machine) noteAlive(from ids.PID, now time.Time) {
	if from == m.p.pid {
		return
	}
	if _, left := m.tombstones[from]; left {
		return
	}
	m.det.Heard(from, now)
}

func (m *machine) onHeartbeat(hb pktHeartbeat, now time.Time) {
	if hb.From == m.p.pid {
		return
	}
	if hb.Left {
		m.tombstones[hb.From] = now
		m.det.Forget(hb.From)
		delete(m.peerView, hb.From)
		return
	}
	m.noteAlive(hb.From, now)
	if _, left := m.tombstones[hb.From]; left {
		return
	}
	m.storeEpoch(hb.MaxEpoch)
	m.peerView[hb.From] = hb.View
	if hb.View == m.view.ID && m.comp.Has(hb.From) {
		m.peerVC[hb.From] = hb.VC
	}
}

// pruneStable discards messages that every member of the current view
// has delivered: once the component-wise minimum of all members'
// delivery vectors reaches a message's own component at its sender, no
// flush can ever need to retransmit it (Agreement is already satisfied
// for it at everyone). This bounds the per-view retransmission buffer
// and the size of flush acks in long-lived views.
func (m *machine) pruneStable() {
	if m.blocked || len(m.delivered) == 0 || len(m.comp) < 2 {
		return
	}
	// Need a report from every other member for this view.
	for q := range m.comp {
		if q == m.p.pid {
			continue
		}
		if _, ok := m.peerVC[q]; !ok {
			return
		}
	}
	pruned := uint64(0)
	for id, d := range m.delivered {
		threshold := d.Stamp.Get(id.Sender)
		stable := m.vc.Get(id.Sender) >= threshold
		for q := range m.comp {
			if q == m.p.pid {
				continue
			}
			if m.peerVC[q].Get(id.Sender) < threshold {
				stable = false
				break
			}
		}
		if stable {
			delete(m.delivered, id) // body only; deliveredIDs keeps the fact
			pruned++
		}
	}
	if pruned > 0 {
		m.p.bumpStat(func(s *Stats) { s.StableMsgsPruned += pruned })
	}
}

// ---- data / e-change path ----

// onCausal routes a causally-stamped packet by view.
func (m *machine) onCausal(pk causalPkt) {
	v := pk.PktView()
	switch {
	case v == m.view.ID:
		if m.blocked {
			// Flush discipline: once we have acked a proposal our
			// reported delivered-set is frozen; late current-view traffic
			// reaches us through the coordinator's flush if any survivor
			// delivered it.
			return
		}
		if _, dup := m.seen[pk.PktID()]; dup {
			return
		}
		m.seen[pk.PktID()] = struct{}{}
		for _, d := range m.causal.Offer(pk) {
			m.deliverCausal(d, false)
		}
	case m.view.ID.Less(v):
		// Data for a view we have not installed yet; hold it.
		m.future[v] = append(m.future[v], pk)
	default:
		// Stale view: P2.2 forbids delivery outside the origin view.
	}
}

// deliverCausal finalizes delivery of a causally-ready packet.
func (m *machine) deliverCausal(pk causalPkt, flushed bool) {
	switch d := pk.(type) {
	case pktData:
		m.delivered[d.ID] = d
		m.deliveredIDs[d.ID] = struct{}{}
		m.vc.Merge(d.Stamp)
		ev := MsgEvent{
			ID:      d.ID,
			From:    d.ID.Sender,
			View:    d.View,
			Payload: d.Payload,
			Stamp:   d.Stamp,
			Flushed: flushed,
		}
		m.p.obs.OnDeliver(m.p.pid, ev)
		m.p.events.Push(ev)
		m.p.bumpStat(func(s *Stats) {
			s.MsgsDelivered++
			if flushed {
				s.FlushDeliveries++
			}
		})
	case pktEChange:
		m.applyEChange(d)
	}
}

// applyEChange applies an e-view change in sequence order (P6.1: all
// members receive them from the single sequencer via a FIFO causal
// channel, hence in identical order).
func (m *machine) applyEChange(d pktEChange) {
	if d.Seq != m.echApplied+1 {
		// Either a duplicate (Seq <= applied) or a protocol bug; a gap is
		// impossible under per-sender FIFO from the single sequencer.
		return
	}
	var (
		next  evs.Structure
		ev    EChangeEvent
		err   error
		newSv ids.SubviewID
		newSs ids.SVSetID
	)
	switch d.Kind {
	case EChangeSubviewMerge:
		next, newSv, err = m.view.Structure.MergeSubviews(d.Subviews)
	case EChangeSVSetMerge:
		next, newSs, err = m.view.Structure.MergeSVSets(d.SVSets)
	default:
		return
	}
	if err != nil {
		// The sequencer validated before multicasting, and every member
		// applies the same prefix to the same structure, so failure here
		// is deterministic across members — drop uniformly, advancing the
		// applied counter so the chain stays aligned.
		m.echApplied = d.Seq
		return
	}
	m.echApplied = d.Seq
	m.vc.Merge(d.Stamp)
	m.view.Structure = next
	m.view.Changes = d.Seq
	m.p.setCur(m.view)
	ev = EChangeEvent{
		EView:      m.view,
		Kind:       d.Kind,
		Seq:        d.Seq,
		NewSubview: newSv,
		NewSVSet:   newSs,
		Stamp:      d.Stamp,
	}
	m.p.obs.OnEChange(m.p.pid, ev)
	m.p.events.Push(ev)
	m.p.bumpStat(func(s *Stats) { s.EChangesApplied++ })
}

// ---- application requests ----

// onUnicast delivers an addressed point-to-point message: current view
// only, deduplicated, outside the causal/flush machinery.
func (m *machine) onUnicast(d pktData) {
	if d.View != m.view.ID || m.blocked {
		return // stale or mid-change; the sender retries at app level
	}
	if _, dup := m.seen[d.ID]; dup {
		return
	}
	m.seen[d.ID] = struct{}{}
	ev := MsgEvent{
		ID:      d.ID,
		From:    d.ID.Sender,
		View:    d.View,
		Payload: d.Payload,
		Unicast: true,
	}
	m.p.obs.OnDeliver(m.p.pid, ev)
	m.p.events.Push(ev)
	m.p.bumpStat(func(s *Stats) { s.MsgsDelivered++ })
}

func (m *machine) doUnicast(to ids.PID, payload []byte) {
	m.nextSeq++
	pkt := pktData{
		Group:   m.p.opts.Group,
		ID:      ids.MsgID{Sender: m.p.pid, Seq: m.nextSeq},
		View:    m.view.ID,
		Payload: payload,
		Unicast: true,
	}
	m.p.obs.OnSend(m.p.pid, pkt.ID, pkt.View)
	m.p.bumpStat(func(s *Stats) { s.MsgsSent++ })
	if to == m.p.pid {
		m.onUnicast(pkt)
		return
	}
	m.send(to, pkt)
}

func (m *machine) onRequest(r request) {
	switch r.kind {
	case reqMulticast:
		if m.blocked {
			m.outbox = append(m.outbox, r.payload)
			r.reply <- nil
			return
		}
		m.doMulticast(r.payload)
		r.reply <- nil
	case reqUnicast:
		if m.blocked {
			r.reply <- ErrBlocked
			return
		}
		if !m.comp.Has(r.to) {
			r.reply <- fmt.Errorf("core: unicast target %v not in current view", r.to)
			return
		}
		m.doUnicast(r.to, r.payload)
		r.reply <- nil
	case reqForceSuspect:
		m.det.ForceSuspect(r.to)
		r.reply <- nil
	case reqUnforceSuspect:
		m.det.Unforce(r.to)
		r.reply <- nil
	case reqMergeSubviews, reqMergeSVSets:
		if m.blocked {
			r.reply <- ErrBlocked
			return
		}
		if m.p.tobs != nil {
			kind := EChangeSubviewMerge
			if r.kind == reqMergeSVSets {
				kind = EChangeSVSetMerge
			}
			m.p.tobs.OnMergeRequest(m.p.pid, kind)
		}
		req := pktMergeReq{
			Group:    m.p.opts.Group,
			From:     m.p.pid,
			View:     m.view.ID,
			Subviews: r.subviews,
			SVSets:   r.svsets,
		}
		if r.kind == reqMergeSubviews {
			req.Kind = EChangeSubviewMerge
		} else {
			req.Kind = EChangeSVSetMerge
		}
		seqr := m.sequencer()
		if seqr == m.p.pid {
			m.onMergeReq(req)
		} else {
			m.send(seqr, req)
		}
		r.reply <- nil
	}
}

// sequencer returns the process ordering e-view changes in the current
// view: the smallest member.
func (m *machine) sequencer() ids.PID {
	min, _ := m.comp.Min()
	return min
}

func (m *machine) doMulticast(payload []byte) {
	m.nextSeq++
	m.vc.Tick(m.p.pid)
	pkt := pktData{
		Group:   m.p.opts.Group,
		ID:      ids.MsgID{Sender: m.p.pid, Seq: m.nextSeq},
		View:    m.view.ID,
		Stamp:   m.vc.Restrict(m.comp),
		Payload: payload,
	}
	m.p.obs.OnSend(m.p.pid, pkt.ID, pkt.View)
	m.p.bumpStat(func(s *Stats) { s.MsgsSent++ })
	// Self-delivery first: the sender's own multicast is always in its
	// delivered set, so a surviving sender's messages reach all
	// co-survivors through the flush.
	m.seen[pkt.ID] = struct{}{}
	m.causal.RecordLocal(pkt.Stamp)
	m.deliverCausal(pkt, false)
	for _, q := range m.view.Members {
		if q != m.p.pid {
			m.send(q, pkt)
		}
	}
}

// onMergeReq is executed by the sequencer: validate against the current
// structure and, if effective, multicast the e-view change. The request
// does not need to name the sequencer's exact current view: subview and
// sv-set identifiers persist across view changes (P6.3), so a request
// whose identifiers still resolve is still meaningful; one whose
// identifiers died with a view change fails validation and is dropped.
// Requests arriving during a view change are parked and replayed after
// the install.
func (m *machine) onMergeReq(req pktMergeReq) {
	if m.sequencer() != m.p.pid {
		return
	}
	if m.blocked {
		if len(m.pendingMerges) < 64 {
			m.pendingMerges = append(m.pendingMerges, req)
		}
		return
	}
	// Validate now so no-effect calls (per §6.1) are dropped silently
	// without consuming a sequence number.
	var err error
	switch req.Kind {
	case EChangeSubviewMerge:
		_, _, err = m.view.Structure.MergeSubviews(req.Subviews)
	case EChangeSVSetMerge:
		_, _, err = m.view.Structure.MergeSVSets(req.SVSets)
	default:
		return
	}
	if err != nil {
		return
	}
	m.nextSeq++
	m.vc.Tick(m.p.pid)
	pkt := pktEChange{
		Group:    m.p.opts.Group,
		ID:       ids.MsgID{Sender: m.p.pid, Seq: m.nextSeq},
		View:     m.view.ID,
		Stamp:    m.vc.Restrict(m.comp),
		Seq:      m.echApplied + 1,
		Kind:     req.Kind,
		Subviews: req.Subviews,
		SVSets:   req.SVSets,
	}
	m.seen[pkt.ID] = struct{}{}
	m.causal.RecordLocal(pkt.Stamp)
	m.deliverCausal(pkt, false)
	for _, q := range m.view.Members {
		if q != m.p.pid {
			m.send(q, pkt)
		}
	}
}

// ---- membership: tick, propose, ack, install ----

func (m *machine) onTick(now time.Time) {
	// The GC horizon is derived from the largest timeout the detector
	// can report (the adaptive ceiling, when enabled), so a peer whose
	// adapted timeout grew under jitter is never dropped while its
	// effective timeout could still clear it.
	m.det.GC(now, 10*m.det.MaxTimeout()+time.Second)
	for pid, t := range m.tombstones {
		if now.Sub(t) > m.p.opts.TombstoneTTL {
			delete(m.tombstones, pid)
		}
	}
	m.pruneStable()

	alive := m.det.Alive(now)
	desired := alive.Clone()
	desired.Add(m.p.pid)

	need := !desired.Equal(m.comp)
	// divFound records a view-id divergence with an unchanged
	// composition (divPeer/divView the diverging member and its view);
	// such a divergence is healed by the reconciliation fast path below
	// when possible, and otherwise launches a re-proposal (reported via
	// OnReproposal at launch). An explicit flag, not a zero-PID
	// sentinel: a zero ids.PID comparing equal to divPeer must not
	// silently skip the hooks.
	var (
		divFound bool
		divPeer  ids.PID
		divView  ids.ViewID
	)
	if !need {
		// Same composition but a member advertises a different view: the
		// histories diverged (it missed our install, or an asymmetric
		// partition let it move on while we never suspected it).
		// Transient mismatch during install propagation is absorbed by
		// the dwell. The scan picks the smallest diverging PID so which
		// peer gets reported (and reconciled first) is deterministic
		// across runs — map iteration order must not leak into traces.
		for q, v := range m.peerView {
			if m.comp.Has(q) && alive.Has(q) && v != m.view.ID {
				if !divFound || q.Less(divPeer) {
					divPeer, divView = q, v
				}
				divFound = true
			}
		}
		need = divFound
	}
	if need {
		m.mismatch++
	} else {
		m.mismatch = 0
	}
	if !divFound {
		// No live divergence: any reconcile bookkeeping is stale (the
		// peer healed, left, or the composition changed — which resets
		// everything at the next install anyway).
		m.reconHold = 0
		if len(m.reconAttempts) > 0 {
			clear(m.reconAttempts)
		}
	}

	if m.coord != nil {
		if now.After(m.coord.deadline) {
			// Shrink to whoever answered (plus self) and retry.
			next := make(ids.PIDSet)
			next.Add(m.p.pid)
			for q := range m.coord.acks {
				if alive.Has(q) || q == m.p.pid {
					next.Add(q)
				}
			}
			// Anything newly alive and desired can come along too.
			for q := range desired.Intersect(m.coord.comp) {
				if alive.Has(q) {
					next.Add(q)
				}
			}
			m.startProposal(next, now, true)
		}
		return
	}

	if m.mismatch < m.p.opts.MismatchDwell {
		return
	}
	if min, ok := desired.Min(); !ok || min != m.p.pid {
		return // someone smaller is responsible for coordinating
	}
	if divFound {
		if m.reconHold > 0 {
			// A reconcile re-send is still in flight; give the peer time
			// to apply it before acting on the divergence again.
			m.reconHold--
			return
		}
		// Reconciliation fast path: the diverging peer sits in our
		// composition, so it acked the proposal our view came from (the
		// coordinator installed only after every member acked) and merely
		// missed the install packet. Re-delivering the cached install
		// heals it without a new agreement round — but only when the peer
		// is *behind* us; if its view is newer we are the laggard and
		// only a fresh proposal reunifies the histories.
		if !m.p.opts.NoReconcile && m.haveInstall && divView.Less(m.view.ID) &&
			m.reconAttempts[divPeer] < m.p.opts.ReconcileAttempts {
			m.reconAttempts[divPeer]++
			m.p.bumpStat(func(s *Stats) { s.Reconciles++ })
			if m.p.tobs != nil {
				m.p.tobs.OnReconcile(m.p.pid, divPeer, m.view.ID, m.reconAttempts[divPeer])
			}
			inst := m.lastInstall
			inst.Resend = true
			m.send(divPeer, inst)
			m.reconHold = m.p.opts.ReconcileDwell
			return
		}
		// Reconcile exhausted or impossible: escalate to a re-proposal.
		m.p.bumpStat(func(s *Stats) { s.Reproposals++ })
		if m.p.tobs != nil {
			m.p.tobs.OnReproposal(m.p.pid, divPeer, m.view.ID, divView)
		}
	}
	m.startProposal(m.clampSingleJoin(desired), now, false)
}

// clampSingleJoin applies the Isis-style grow-by-one rule when enabled.
func (m *machine) clampSingleJoin(desired ids.PIDSet) ids.PIDSet {
	if !m.p.opts.SingleJoin {
		return desired
	}
	newbies := desired.Diff(m.comp)
	if len(newbies) <= 1 {
		return desired
	}
	first, _ := newbies.Min()
	clamped := desired.Intersect(m.comp)
	clamped.Add(m.p.pid)
	clamped.Add(first)
	return clamped
}

func (m *machine) startProposal(comp ids.PIDSet, now time.Time, retry bool) {
	epoch := m.maxEpoch + 1
	m.storeEpoch(epoch)
	prop := ids.ViewID{Epoch: epoch, Coord: m.p.pid}
	m.coord = &coordState{
		prop:     prop,
		comp:     comp.Clone(),
		acks:     make(map[ids.PID]pktAck, len(comp)),
		deadline: now.Add(m.p.opts.ProposeTimeout),
		since:    now,
	}
	m.p.bumpStat(func(s *Stats) {
		s.ProposalsSent++
		if retry {
			s.ProposalRetries++
		}
	})
	if m.p.tobs != nil {
		m.p.tobs.OnPropose(m.p.pid, prop, len(comp), retry)
	}
	pkt := pktPropose{Group: m.p.opts.Group, Proposal: prop, Comp: comp.Sorted()}
	for q := range comp {
		if q != m.p.pid {
			m.send(q, pkt)
		}
	}
	m.onPropose(pkt) // self-participation
}

func (m *machine) onPropose(pr pktPropose) {
	m.storeEpoch(pr.Proposal.Epoch)
	inComp := false
	for _, q := range pr.Comp {
		if q == m.p.pid {
			inComp = true
			break
		}
	}
	if !inComp {
		return
	}
	if !m.view.ID.Less(pr.Proposal) {
		return // not newer than what we already installed
	}
	if !m.ackedProp.IsZero() && pr.Proposal.Less(m.ackedProp) {
		return // committed to a higher proposal already
	}
	// Abandon our own competing lower proposal.
	if m.coord != nil && m.coord.prop.Less(pr.Proposal) {
		m.coord = nil
	}
	m.ackedProp = pr.Proposal
	if !m.blocked {
		m.blockedSince = time.Now()
	}
	m.blocked = true
	if m.p.tobs != nil {
		m.p.tobs.OnBlock(m.p.pid, pr.Proposal)
	}
	ack := pktAck{
		Group:      m.p.opts.Group,
		Proposal:   pr.Proposal,
		From:       m.p.pid,
		PredView:   m.view.ID,
		Delivered:  m.deliveredCopy(),
		EChangeSeq: m.echApplied,
		Structure:  m.view.Structure,
	}
	if pr.Proposal.Coord == m.p.pid {
		m.onAck(ack)
	} else {
		m.send(pr.Proposal.Coord, ack)
	}
}

func (m *machine) deliveredCopy() map[ids.MsgID]pktData {
	cp := make(map[ids.MsgID]pktData, len(m.delivered))
	for id, d := range m.delivered {
		cp[id] = d
	}
	return cp
}

func (m *machine) onAck(a pktAck) {
	if m.coord == nil || a.Proposal != m.coord.prop || !m.coord.comp.Has(a.From) {
		return
	}
	m.coord.acks[a.From] = a
	if len(m.coord.acks) < len(m.coord.comp) {
		return
	}
	m.finishProposal()
}

// finishProposal runs at the coordinator once every member of the
// proposed composition has acked: compute per-predecessor flush sets,
// compose the enriched structure, and install.
func (m *machine) finishProposal() {
	c := m.coord
	m.coord = nil

	// Group acks by predecessor view.
	type predGroup struct {
		survivors ids.PIDSet
		flush     map[ids.MsgID]pktData
		structure evs.Structure
		maxECh    uint32
	}
	preds := make(map[ids.ViewID]*predGroup)
	for _, a := range c.acks {
		g, ok := preds[a.PredView]
		if !ok {
			g = &predGroup{survivors: make(ids.PIDSet), flush: make(map[ids.MsgID]pktData)}
			preds[a.PredView] = g
		}
		g.survivors.Add(a.From)
		for id, d := range a.Delivered {
			g.flush[id] = d
		}
		// E-view changes are totally ordered per view, so structures of
		// co-view members form a chain; the longest prefix wins.
		if a.EChangeSeq >= g.maxECh {
			if a.EChangeSeq > g.maxECh || g.structure.View.IsZero() {
				g.structure = a.Structure
				g.maxECh = a.EChangeSeq
			}
		}
	}

	comp := c.comp.Sorted()
	flush := make(map[ids.ViewID][]pktData, len(preds))
	var predList []evs.Predecessor
	// Deterministic predecessor ordering (sorted by view id) so composed
	// singleton ids do not depend on map iteration.
	predIDs := make([]ids.ViewID, 0, len(preds))
	for v := range preds {
		predIDs = append(predIDs, v)
	}
	sort.Slice(predIDs, func(i, j int) bool { return predIDs[i].Less(predIDs[j]) })
	for _, v := range predIDs {
		g := preds[v]
		msgs := make([]pktData, 0, len(g.flush))
		for _, d := range g.flush {
			msgs = append(msgs, d)
		}
		sort.Slice(msgs, func(i, j int) bool { return lessMsgID(msgs[i].ID, msgs[j].ID) })
		flush[v] = msgs
		predList = append(predList, evs.Predecessor{Structure: g.structure, Survivors: g.survivors})
	}

	var structure evs.Structure
	if m.p.opts.Enriched {
		structure = evs.Compose(c.prop, c.comp, predList)
	} else {
		structure = evs.Flat(c.prop, c.comp)
	}

	inst := pktInstall{
		Group:     m.p.opts.Group,
		Proposal:  c.prop,
		Comp:      comp,
		Flush:     flush,
		Structure: structure,
	}
	for _, q := range comp {
		if q != m.p.pid {
			m.send(q, inst)
		}
	}
	m.onInstall(inst)
}

func lessMsgID(a, b ids.MsgID) bool {
	if a.Sender != b.Sender {
		return a.Sender.Less(b.Sender)
	}
	return a.Seq < b.Seq
}

func (m *machine) onInstall(inst pktInstall) {
	if inst.Proposal == m.view.ID {
		// Already installed: a reconcile re-send (or a duplicated packet)
		// of the view we live in. Installing is idempotent per view id,
		// so drop it — re-running the state reset would wipe delivery
		// bookkeeping mid-view.
		m.p.bumpStat(func(s *Stats) { s.InstallsDeduped++ })
		return
	}
	if inst.Proposal != m.ackedProp {
		return // we did not ack this proposal; P2.1 forbids joining it
	}
	// Deliver the messages our co-survivors delivered and we missed
	// (P2.1), in an order extending causality.
	var flushStart time.Time
	if m.p.tobs != nil {
		flushStart = time.Now()
	}
	var missing []pktData
	for _, d := range inst.Flush[m.view.ID] {
		if _, have := m.deliveredIDs[d.ID]; !have {
			missing = append(missing, d)
		}
	}
	for _, d := range causalTopoOrder(missing) {
		m.deliverCausal(d, true)
	}
	if m.p.tobs != nil {
		m.p.tobs.OnFlush(m.p.pid, m.view.ID, inst.Proposal, len(missing), time.Since(flushStart))
	}

	newView := EView{
		ID:        inst.Proposal,
		Members:   inst.Comp,
		Structure: inst.Structure,
	}
	m.view = newView
	m.comp = newView.Comp()
	m.delivered = make(map[ids.MsgID]pktData)
	m.deliveredIDs = make(map[ids.MsgID]struct{})
	m.seen = make(map[ids.MsgID]struct{})
	m.causal = clock.NewCausalBuffer[causalPkt]()
	m.vc = clock.NewVector()
	m.peerVC = make(map[ids.PID]clock.Vector)
	m.echApplied = 0
	m.blocked = false
	m.blockedSince = time.Time{}
	m.ackedProp = ids.ViewID{}
	m.mismatch = 0
	// Cache the install (with its flush retransmission bodies) so the
	// reconciliation fast path can re-deliver it to a member that misses
	// the packet; fresh install means any reconcile bookkeeping is stale.
	inst.Resend = false
	m.lastInstall = inst
	m.haveInstall = true
	m.reconHold = 0
	if len(m.reconAttempts) > 0 {
		clear(m.reconAttempts)
	}
	m.storeEpoch(inst.Proposal.Epoch)
	m.persistView(newView)
	m.p.setCur(newView)
	m.p.bumpStat(func(s *Stats) { s.ViewsInstalled++ })
	ev := ViewEvent{EView: newView}
	m.p.obs.OnView(m.p.pid, ev)
	m.p.events.Push(ev)

	// Optimistically assume co-members are installing the same view, so
	// the stale-member trigger does not fire during install propagation.
	for _, q := range newView.Members {
		if q != m.p.pid {
			m.peerView[q] = newView.ID
		}
	}

	// Traffic that raced ahead of this install.
	if held, ok := m.future[newView.ID]; ok {
		delete(m.future, newView.ID)
		for _, pk := range held {
			m.onCausal(pk)
		}
	}
	for v := range m.future {
		if !m.view.ID.Less(v) {
			delete(m.future, v)
		}
	}

	// Multicasts queued while blocked go out in (and tagged with) the new
	// view.
	pendingOut := m.outbox
	m.outbox = nil
	for _, payload := range pendingOut {
		m.doMulticast(payload)
	}

	// Merge requests parked during the change are replayed; those whose
	// subviews/sv-sets did not survive fail validation and vanish.
	parked := m.pendingMerges
	m.pendingMerges = nil
	for _, req := range parked {
		m.onMergeReq(req)
	}
}
