// Package core implements the run-time of (enriched) view synchrony: a
// partitionable group membership service integrated with reliable
// multicast, satisfying the paper's Section-2 properties —
//
//	P2.1 Agreement:  processes that survive from one view to the same
//	                 next view deliver the same set of messages;
//	P2.2 Uniqueness: a message is delivered in at most one view (the view
//	                 it was multicast in);
//	P2.3 Integrity:  a message is delivered at most once per process and
//	                 only if some process multicast it;
//
// — extended with the Section-6 enriched-view service: views carry a
// subview / sv-set structure that shrinks on failures and grows only via
// application-requested merges, with e-view changes totally ordered
// within a view (P6.1), forming consistent cuts (P6.2), and preserved
// across view changes (P6.3).
//
// Each process runs a single event-loop goroutine owning all protocol
// state; the application talks to it through Process's methods and
// consumes events from Process.Events.
package core

import (
	"time"

	"repro/internal/clock"
	"repro/internal/evs"
	"repro/internal/ids"
	"repro/internal/transport/wire"
)

// EView is an enriched view as delivered to the application: the agreed
// composition plus the subview / sv-set structure. For a process running
// with Options.Enriched == false the structure is the degenerate single
// subview in a single sv-set (the traditional, "flat" view abstraction).
type EView struct {
	// ID identifies the view; totally ordered along any process history.
	ID ids.ViewID
	// Members is the agreed composition, sorted.
	Members []ids.PID
	// Structure is the subview / sv-set decomposition, including the
	// effect of every e-view change applied so far in this view.
	Structure evs.Structure
	// Changes counts the e-view changes applied within this view (zero
	// right after installation).
	Changes uint32
}

// Comp returns the composition as a fresh PIDSet.
func (v EView) Comp() ids.PIDSet { return ids.NewPIDSet(v.Members...) }

// Size returns the number of members.
func (v EView) Size() int { return len(v.Members) }

// HasMember reports whether p is in the view.
func (v EView) HasMember(p ids.PID) bool {
	for _, m := range v.Members {
		if m == p {
			return true
		}
	}
	return false
}

// Cluster returns the members of p's subview — the processes whose
// structure proves they have been together since their last application
// merge. The §6.2 methodology runs external operations within this set.
func (v EView) Cluster(p ids.PID) ids.PIDSet {
	sv, ok := v.Structure.SubviewOf(p)
	if !ok {
		return nil
	}
	return v.Structure.SubviewMembers(sv)
}

// CoSubview reports whether p and q currently share a subview.
func (v EView) CoSubview(p, q ids.PID) bool {
	sp, okP := v.Structure.SubviewOf(p)
	sq, okQ := v.Structure.SubviewOf(q)
	return okP && okQ && sp == sq
}

// Event is what the run-time delivers to the application. The concrete
// types are MsgEvent, ViewEvent, and EChangeEvent.
type Event interface{ isEvent() }

// MsgEvent is the delivery of an application multicast.
type MsgEvent struct {
	// ID is the message identifier (sender + per-sender sequence).
	ID ids.MsgID
	// From is the multicasting process.
	From ids.PID
	// View is the view the message was multicast — and is delivered — in.
	View ids.ViewID
	// Payload is the application payload. Do not mutate.
	Payload []byte
	// Stamp is the sender's vector timestamp for the multicast; the
	// delivery order respects causality within the view.
	Stamp clock.Vector
	// Flushed reports that the delivery happened during the flush phase
	// of a view change (the message was delivered by a peer surviving
	// with us, so Agreement forces it into our history too).
	Flushed bool
	// Unicast reports that the message was addressed to this process
	// alone (Process.Unicast). Unicasts keep Uniqueness and Integrity
	// but are outside the Agreement property.
	Unicast bool
}

func (MsgEvent) isEvent() {}

// ViewEvent is the installation of a new view (a view change).
type ViewEvent struct {
	EView EView
}

func (ViewEvent) isEvent() {}

// EChangeKind says which merge operation caused an e-view change. The
// concrete type lives in internal/transport/wire (it appears in wire
// packets); core re-exports it.
type EChangeKind = wire.EChangeKind

// E-view change kinds.
const (
	EChangeSubviewMerge = wire.EChangeSubviewMerge
	EChangeSVSetMerge   = wire.EChangeSVSetMerge
)

// EChangeEvent is an e-view change within the current view: the view
// composition is unchanged but the subview / sv-set structure evolved by
// an application-requested merge.
type EChangeEvent struct {
	// EView is the enriched view after applying the change.
	EView EView
	// Kind is the merge operation applied.
	Kind EChangeKind
	// Seq is the change's sequence number within the view (1-based);
	// all members apply e-view changes in identical Seq order (P6.1).
	Seq uint32
	// NewSubview is set for SubviewMerge: the merged subview.
	NewSubview ids.SubviewID
	// NewSVSet is set for SVSetMerge: the merged sv-set.
	NewSVSet ids.SVSetID
	// Stamp is the sequencer's vector timestamp for the change; e-view
	// changes are delivered causally, making each a consistent cut
	// (P6.2).
	Stamp clock.Vector
}

func (EChangeEvent) isEvent() {}

// Observer receives a synchronous callback for every externally
// meaningful event at a process. The trace checker implements it; the
// no-op zero Observer is used when tracing is off. Callbacks run on the
// protocol goroutine: implementations must be fast and must not call back
// into the Process.
type Observer interface {
	// OnSend fires when the process multicasts a message in a view.
	OnSend(self ids.PID, id ids.MsgID, view ids.ViewID)
	// OnDeliver fires when the process delivers a message.
	OnDeliver(self ids.PID, ev MsgEvent)
	// OnView fires when the process installs a view.
	OnView(self ids.PID, ev ViewEvent)
	// OnEChange fires when the process applies an e-view change.
	OnEChange(self ids.PID, ev EChangeEvent)
}

// ExtendedObserver is an optional extension of Observer providing the
// protocol-internal instrumentation hooks the observability layer
// (internal/obs) consumes: failure-detector transitions, membership
// rounds, flush and tick timing, and per-kind packet accounting. The
// run-time detects the extension by type assertion on Options.Observer
// at Start; when the observer does not implement it (or there is no
// observer at all) none of the extra hooks — including their time
// measurements — are evaluated, preserving the nopObserver fast path.
// Like Observer callbacks, all hooks run on the protocol goroutine and
// must be fast and non-reentrant.
type ExtendedObserver interface {
	Observer
	// OnSuspectChange fires when this process's failure detector flips
	// its opinion of peer. The first suspicion after an install marks
	// the start of view-change latency.
	OnSuspectChange(self, peer ids.PID, suspected bool)
	// OnHeartbeatGap fires on each liveness indication from peer with
	// the time elapsed since the previous one.
	OnHeartbeatGap(self, peer ids.PID, gap time.Duration)
	// OnEffectiveTimeout fires after each heartbeat-gap observation on a
	// process running an adaptive failure detector (Options.AdaptiveFD)
	// with peer's updated effective suspicion timeout. Never fired with
	// a static detector.
	OnEffectiveTimeout(self, peer ids.PID, timeout time.Duration)
	// OnPropose fires when self starts coordinating a membership round
	// for the given proposal and composition size; retry is set when the
	// round replaces one whose acks timed out.
	OnPropose(self ids.PID, proposal ids.ViewID, members int, retry bool)
	// OnBlock fires when self acks a proposal and blocks multicasting
	// (the flush discipline). For join-driven changes with no suspicion
	// this marks the start of view-change latency.
	OnBlock(self ids.PID, proposal ids.ViewID)
	// OnFlush fires after the flush phase of an install: recovered is
	// the number of missed messages delivered from co-survivors, d the
	// time spent delivering them. pred is the predecessor view being
	// left, proposal the view about to be installed — carrying both lets
	// a span profiler pin the flush to the membership round it completes
	// even when proposals overlap.
	OnFlush(self ids.PID, pred, proposal ids.ViewID, recovered int, d time.Duration)
	// OnReproposal fires when self starts a proposal solely because a
	// co-member advertises a different view id (install-propagation
	// mismatch or an asymmetric partition), not because the composition
	// changed: ours/theirs are the diverging view ids and peer the
	// smallest diverging member observed. With the reconciliation fast
	// path enabled this fires only after reconcile attempts were
	// exhausted (or were impossible: the peer is ahead of us, or we hold
	// no install to re-send); the matching OnPropose fires immediately
	// after.
	OnReproposal(self, peer ids.PID, ours, theirs ids.ViewID)
	// OnReconcile fires when self re-sends its cached install of view to
	// a co-member that advertises an older view id with an unchanged
	// composition, instead of starting a re-proposal round: the peer
	// acked the proposal (the coordinator installed only after every
	// member acked) and merely missed the install packet, so
	// re-delivering it heals the divergence without a new agreement.
	// attempt counts the re-sends to this peer since the last install
	// (1-based).
	OnReconcile(self, peer ids.PID, view ids.ViewID, attempt int)
	// OnPacket fires for every protocol packet sent (sent=true) or
	// received by this process, with the fabric kind label and nominal
	// size in bytes.
	OnPacket(self ids.PID, kind string, size int, sent bool)
	// OnTick reports the duration of one protocol housekeeping tick.
	OnTick(self ids.PID, d time.Duration)
	// OnLoopHealth reports per-tick event-loop health: queued is the
	// application event-queue depth at the tick (events pushed but not
	// yet consumed from Process.Events), lag how much later than the
	// configured Tick period the tick fired (zero when on schedule). A
	// growing queue means the application is not draining its events; a
	// persistent lag means the loop (or the host) is overloaded —
	// exactly the two ways a live process degrades without any protocol
	// counter moving.
	OnLoopHealth(self ids.PID, queued int, lag time.Duration)
	// OnMergeRequest fires when the application submits a subview or
	// sv-set merge; the matching OnEChange marks its completion.
	OnMergeRequest(self ids.PID, kind EChangeKind)
}

// nopObserver is the default Observer.
type nopObserver struct{}

func (nopObserver) OnSend(ids.PID, ids.MsgID, ids.ViewID) {}
func (nopObserver) OnDeliver(ids.PID, MsgEvent)           {}
func (nopObserver) OnView(ids.PID, ViewEvent)             {}
func (nopObserver) OnEChange(ids.PID, EChangeEvent)       {}
