package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
)

func TestStabilityPrunesDeliveredBuffers(t *testing.T) {
	n := newNet(t, 30)
	procs := n.startN(3, testOpts())
	waitConverged(t, procs, convergeBudget)

	// A steady multicast stream in a stable view: stability tracking
	// must prune the flush buffers as the heartbeat-gossiped delivery
	// vectors advance.
	for i := 0; i < 200; i++ {
		_ = procs[i%3].Multicast([]byte(fmt.Sprintf("m%d", i)))
	}
	eventually(t, 5*time.Second, "stable messages pruned", func() bool {
		for _, p := range procs {
			if p.Stats().StableMsgsPruned == 0 {
				return false
			}
		}
		return true
	})
	// And everything was still delivered exactly once everywhere.
	for _, p := range procs {
		p := p
		eventually(t, 5*time.Second, "all deliveries", func() bool {
			return p.Stats().MsgsDelivered >= 200
		})
	}
}

func TestStabilityDoesNotBreakFlush(t *testing.T) {
	// Prune aggressively (steady traffic), then force a view change and
	// verify the survivors still agree per view (P2.1 would fail if a
	// needed message had been wrongly pruned, P2.3 if one were
	// re-delivered).
	n := newNet(t, 31)
	procs := n.startN(4, testOpts())
	waitConverged(t, procs, convergeBudget)
	for i := 0; i < 100; i++ {
		_ = procs[i%4].Multicast([]byte(fmt.Sprintf("pre%d", i)))
	}
	time.Sleep(50 * time.Millisecond) // let stability kick in
	procs[3].Crash()
	waitConverged(t, procs[:3], convergeBudget)
	time.Sleep(100 * time.Millisecond)

	// Integrity: no duplicates at any survivor.
	for _, p := range procs[:3] {
		seen := make(map[ids.MsgID]int)
		for _, ms := range n.sink(p).msgs() {
			for _, m := range ms {
				seen[m.ID]++
				if seen[m.ID] > 1 {
					t.Fatalf("%v delivered %v twice", p.PID(), m.ID)
				}
			}
		}
	}
}

func TestUnicastDeliveredOnlyToTarget(t *testing.T) {
	n := newNet(t, 32)
	procs := n.startN(3, testOpts())
	waitConverged(t, procs, convergeBudget)

	if err := procs[0].Unicast(procs[2].PID(), []byte("direct")); err != nil {
		t.Fatalf("Unicast: %v", err)
	}
	eventually(t, 2*time.Second, "unicast delivery", func() bool {
		for _, ms := range n.sink(procs[2]).msgs() {
			for _, m := range ms {
				if m.Unicast && bytes.Equal(m.Payload, []byte("direct")) {
					return true
				}
			}
		}
		return false
	})
	// The other member must never see it.
	time.Sleep(50 * time.Millisecond)
	for _, ms := range n.sink(procs[1]).msgs() {
		for _, m := range ms {
			if bytes.Equal(m.Payload, []byte("direct")) {
				t.Fatal("unicast leaked to a third process")
			}
		}
	}
}

func TestUnicastToSelf(t *testing.T) {
	n := newNet(t, 33)
	p := n.start("a", testOpts())
	eventually(t, 2*time.Second, "bootstrap", func() bool { return p.CurrentView().Size() == 1 })
	if err := p.Unicast(p.PID(), []byte("me")); err != nil {
		t.Fatalf("Unicast(self): %v", err)
	}
	eventually(t, 2*time.Second, "self delivery", func() bool {
		for _, ms := range n.sink(p).msgs() {
			for _, m := range ms {
				if m.Unicast && string(m.Payload) == "me" {
					return true
				}
			}
		}
		return false
	})
}

func TestUnicastToNonMemberFails(t *testing.T) {
	n := newNet(t, 34)
	p := n.start("a", testOpts())
	eventually(t, 2*time.Second, "bootstrap", func() bool { return p.CurrentView().Size() == 1 })
	ghost := ids.PID{Site: "ghost", Inc: 1}
	if err := p.Unicast(ghost, []byte("x")); err == nil {
		t.Fatal("Unicast to non-member succeeded")
	}
}

func TestSingleJoinAbsorbsOneAtATime(t *testing.T) {
	opts := testOpts()
	opts.SingleJoin = true
	n := newNet(t, 35)
	anchor := n.start("a", opts) // smallest name: the anchor coordinates
	eventually(t, 2*time.Second, "bootstrap", func() bool { return anchor.CurrentView().Size() == 1 })

	before := anchor.Stats().ViewsInstalled
	const m = 4
	procs := []*Process{anchor}
	for i := 0; i < m; i++ {
		procs = append(procs, n.start(siteName(i+1), opts))
	}
	waitConverged(t, procs, convergeBudget)
	views := anchor.Stats().ViewsInstalled - before
	if views < m {
		t.Fatalf("anchor installed %d views; grow-by-one requires >= %d", views, m)
	}
	// Every installed view grew by at most one member.
	sizes := []int{}
	for _, v := range n.sink(anchor).views() {
		sizes = append(sizes, v.Size())
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1]+1 {
			t.Fatalf("view grew by %d members under SingleJoin: %v", sizes[i]-sizes[i-1], sizes)
		}
	}
}

func TestTwoGroupsShareOneFabricInIsolation(t *testing.T) {
	n := newNet(t, 36)
	optsA := testOpts()
	optsA.Group = "alpha"
	optsB := testOpts()
	optsB.Group = "beta"

	a1 := n.start("a1", optsA)
	a2 := n.start("a2", optsA)
	b1 := n.start("b1", optsB)
	b2 := n.start("b2", optsB)

	waitConverged(t, []*Process{a1, a2}, convergeBudget)
	waitConverged(t, []*Process{b1, b2}, convergeBudget)

	// Views never mix groups.
	if a1.CurrentView().Comp().Has(b1.PID()) || b1.CurrentView().Comp().Has(a1.PID()) {
		t.Fatal("groups mixed in views")
	}
	// Multicasts never cross groups.
	_ = a1.Multicast([]byte("alpha-only"))
	eventually(t, 2*time.Second, "alpha delivery", func() bool {
		for _, ms := range n.sink(a2).msgs() {
			for _, m := range ms {
				if bytes.Equal(m.Payload, []byte("alpha-only")) {
					return true
				}
			}
		}
		return false
	})
	time.Sleep(50 * time.Millisecond)
	for _, sk := range []*sink{n.sink(b1), n.sink(b2)} {
		for _, ms := range sk.msgs() {
			for _, m := range ms {
				if bytes.Equal(m.Payload, []byte("alpha-only")) {
					t.Fatal("message crossed groups")
				}
			}
		}
	}
}

func TestFalseSuspicionCausesViewChangeAndHeals(t *testing.T) {
	// §2: the inability to communicate cannot be attributed to its real
	// cause — a falsely suspected (alive!) process is excluded exactly
	// like a crashed one; once the suspicion lifts it merges back.
	n := newNet(t, 39)
	procs := n.startN(3, testOpts())
	waitConverged(t, procs, convergeBudget)

	victim := procs[2]
	// Both survivors must suspect the victim, or the coordinator will
	// keep proposing the full composition.
	if err := procs[0].ForceSuspect(victim.PID()); err != nil {
		t.Fatal(err)
	}
	if err := procs[1].ForceSuspect(victim.PID()); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, procs[:2], convergeBudget)
	if procs[0].CurrentView().Comp().Has(victim.PID()) {
		t.Fatal("falsely suspected process still in view")
	}
	// The victim, cut off from its peers' acks, ends up alone or stuck
	// in its old view; either way it is live.
	eventually(t, convergeBudget, "victim diverged", func() bool {
		return victim.CurrentView().ID != procs[0].CurrentView().ID
	})

	// The suspicion lifts: heartbeats were flowing all along, so the
	// membership re-merges without any fabric change.
	if err := procs[0].Unforce(victim.PID()); err != nil {
		t.Fatal(err)
	}
	if err := procs[1].Unforce(victim.PID()); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, procs, convergeBudget)
}

func TestSmallAccessorsAndStrings(t *testing.T) {
	n := newNet(t, 40)
	opts := testOpts()
	p := n.start("a", opts)
	if p.Site() != "a" || p.Group() != opts.Group {
		t.Fatalf("Site/Group = %q/%q", p.Site(), p.Group())
	}
	if EChangeSubviewMerge.String() != "SubviewMerge" ||
		EChangeSVSetMerge.String() != "SVSetMerge" ||
		EChangeKind(9).String() == "" {
		t.Fatal("EChangeKind strings")
	}
	// The default no-op observer is exercised by this process already;
	// make its presence explicit.
	var obs Observer = nopObserver{}
	obs.OnSend(p.PID(), ids.MsgID{}, ids.ViewID{})
	obs.OnDeliver(p.PID(), MsgEvent{})
	obs.OnView(p.PID(), ViewEvent{})
	obs.OnEChange(p.PID(), EChangeEvent{})
	p.Leave()
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Group == "" || o.HeartbeatEvery <= 0 || o.SuspectAfter <= 0 ||
		o.Tick <= 0 || o.ProposeTimeout <= 0 || o.MismatchDwell <= 0 || o.Observer == nil {
		t.Fatalf("defaults incomplete: %+v", o)
	}
	if o.FDDevK != DefaultFDDevK || o.FDWarmup != DefaultFDWarmup ||
		o.FDFloor != 2*o.HeartbeatEvery || o.FDCeil != 4*o.SuspectAfter {
		t.Fatalf("adaptive-FD defaults wrong: %+v", o)
	}
	set := Options{
		Group:          "g",
		HeartbeatEvery: time.Second,
		SuspectAfter:   2 * time.Second,
		Tick:           time.Millisecond,
		ProposeTimeout: time.Second,
		MismatchDwell:  7,
		FDDevK:         6,
		FDFloor:        time.Second,
		FDCeil:         time.Minute,
		FDWarmup:       3,
	}.withDefaults()
	if set.HeartbeatEvery != time.Second || set.MismatchDwell != 7 ||
		set.FDDevK != 6 || set.FDFloor != time.Second ||
		set.FDCeil != time.Minute || set.FDWarmup != 3 {
		t.Fatal("withDefaults clobbered explicit values")
	}
	// An inverted clamp window is repaired, not honoured.
	inv := Options{FDFloor: time.Minute, FDCeil: time.Second}.withDefaults()
	if inv.FDCeil < inv.FDFloor {
		t.Fatalf("inverted clamp window survived: floor %v ceil %v", inv.FDFloor, inv.FDCeil)
	}
}

// TestAdaptiveFDConvergence runs the full stack with AdaptiveFD on: a
// group forms, survives a crash (the adaptive timeout must still detect
// real failures), and re-admits a recovered incarnation. Under -race
// this also exercises the estimator on the live protocol loop.
func TestAdaptiveFDConvergence(t *testing.T) {
	n := newNet(t, 91)
	opts := testOpts()
	opts.AdaptiveFD = true
	procs := n.startN(3, opts)
	waitConverged(t, procs, convergeBudget)

	procs[2].Crash()
	waitConverged(t, procs[:2], convergeBudget)

	p2b := n.start(siteName(2), opts)
	waitConverged(t, []*Process{procs[0], procs[1], p2b}, convergeBudget)
	for _, p := range []*Process{procs[0], procs[1], p2b} {
		p.Leave()
	}
}

func TestLeaveIsPromptlyObserved(t *testing.T) {
	// A farewell heartbeat removes the leaver faster than the suspicion
	// timeout would.
	n := newNet(t, 37)
	procs := n.startN(3, testOpts())
	waitConverged(t, procs, convergeBudget)
	start := time.Now()
	procs[2].Leave()
	waitConverged(t, procs[:2], convergeBudget)
	elapsed := time.Since(start)
	// Generous bound: it must certainly beat several suspicion rounds.
	if elapsed > 3*testOpts().SuspectAfter+500*time.Millisecond {
		t.Fatalf("leave took %v, farewell seems ignored", elapsed)
	}
}

func TestEViewHelpers(t *testing.T) {
	n := newNet(t, 38)
	procs := n.startN(2, testOpts())
	v := waitConverged(t, procs, convergeBudget)
	if !v.HasMember(procs[0].PID()) || v.HasMember(ids.PID{Site: "x", Inc: 1}) {
		t.Fatal("HasMember wrong")
	}
	if v.Size() != 2 || !v.Comp().Equal(ids.NewPIDSet(procs[0].PID(), procs[1].PID())) {
		t.Fatal("Size/Comp wrong")
	}
	// Fresh joiners: singleton clusters, not co-subview.
	p0, p1 := procs[0].PID(), procs[1].PID()
	if v.CoSubview(p0, p1) {
		t.Fatal("joiners must not share a subview")
	}
	if got := v.Cluster(p0); !got.Equal(ids.NewPIDSet(p0)) {
		t.Fatalf("Cluster(%v) = %v", p0, got)
	}
	if v.Cluster(ids.PID{Site: "ghost", Inc: 1}) != nil {
		t.Fatal("Cluster of non-member must be nil")
	}
	// After an app merge, they share one.
	pairMerge(t, procs[0], procs[0], procs[1])
	merged := procs[0].CurrentView()
	if !merged.CoSubview(p0, p1) {
		t.Fatal("CoSubview false after merge")
	}
	if got := merged.Cluster(p0); !got.Equal(ids.NewPIDSet(p0, p1)) {
		t.Fatalf("merged Cluster = %v", got)
	}
}
