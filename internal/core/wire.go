package core

import (
	"repro/internal/clock"
	"repro/internal/ids"
	"repro/internal/transport/wire"
)

// Wire packets. The concrete types live in internal/transport/wire so
// that socket backends can encode them; core keeps its historical pkt*
// names as aliases. All packets carry the group name; processes
// silently drop packets for other groups. Packets are passed by value
// through the transport; every mutable field is treated as immutable
// once sent.
type (
	pktHeartbeat = wire.Heartbeat
	pktData      = wire.Data
	pktEChange   = wire.EChange
	pktMergeReq  = wire.MergeReq
	pktPropose   = wire.Propose
	pktAck       = wire.Ack
	pktInstall   = wire.Install
)

// causalPkt is the union of packet types that flow through the causal
// delivery buffer.
type causalPkt interface {
	clock.CausalMsg
	PktID() ids.MsgID
	PktView() ids.ViewID
}

// Compile-time interface checks.
var (
	_ causalPkt = pktData{}
	_ causalPkt = pktEChange{}
)
