package core

import (
	"repro/internal/clock"
	"repro/internal/evs"
	"repro/internal/ids"
)

// Wire packets. All packets carry the group name; processes silently drop
// packets for other groups. Packets are passed by value through the
// in-memory fabric; every mutable field is treated as immutable once sent.

// pktHeartbeat is the periodic liveness-and-discovery broadcast. Hearing
// a heartbeat from a process outside the current view (or advertising a
// different view) is the merge/join trigger.
type pktHeartbeat struct {
	Group string
	From  ids.PID
	// View is the sender's current view id; lets receivers detect
	// foreign views and stale members.
	View ids.ViewID
	// MaxEpoch is the highest proposal/view epoch the sender has seen;
	// gossiping it keeps coordinators' proposal epochs ahead of every
	// commitment in the partition.
	MaxEpoch uint64
	// VC is the sender's per-view delivery vector (its vector clock
	// restricted to the view composition). Receivers in the same view
	// compute the component-wise minimum across members: messages at or
	// below it are *stable* — delivered by everybody — and can be pruned
	// from the flush buffers.
	VC clock.Vector
	// Left is set on the farewell heartbeat of a leaving process.
	Left bool
}

func (pktHeartbeat) FabricKind() string { return "hb" }
func (p pktHeartbeat) FabricSize() int  { return 40 + 8*len(p.VC) }

// pktData is an application multicast — or, when Unicast is set, an
// addressed point-to-point message within the view (used e.g. by the
// state-transfer tool). Unicasts are delivered only in the view they
// were sent in, but are excluded from the flush (Agreement applies to
// multicasts; an addressed message concerns one recipient only).
type pktData struct {
	Group   string
	ID      ids.MsgID
	View    ids.ViewID
	Stamp   clock.Vector
	Payload []byte
	Unicast bool
}

func (pktData) FabricKind() string { return "data" }
func (p pktData) FabricSize() int  { return 48 + len(p.Payload) + 8*len(p.Stamp) }

// CausalSender implements clock.CausalMsg.
func (p pktData) CausalSender() ids.PID { return p.ID.Sender }

// CausalStamp implements clock.CausalMsg.
func (p pktData) CausalStamp() clock.Vector { return p.Stamp }

// pktEChange is an e-view change multicast by the view's sequencer. It
// travels through the same causal channel as data so that Property 6.2
// (consistent cuts) holds.
type pktEChange struct {
	Group string
	ID    ids.MsgID
	View  ids.ViewID
	Stamp clock.Vector
	// Seq is the per-view e-view change sequence number (1-based).
	Seq  uint32
	Kind EChangeKind
	// Subviews is the argument of a SubviewMerge.
	Subviews []ids.SubviewID
	// SVSets is the argument of an SVSetMerge.
	SVSets []ids.SVSetID
}

func (pktEChange) FabricKind() string { return "echange" }
func (p pktEChange) FabricSize() int {
	return 64 + 24*len(p.Subviews) + 24*len(p.SVSets) + 8*len(p.Stamp)
}

// CausalSender implements clock.CausalMsg.
func (p pktEChange) CausalSender() ids.PID { return p.ID.Sender }

// CausalStamp implements clock.CausalMsg.
func (p pktEChange) CausalStamp() clock.Vector { return p.Stamp }

// causalPkt is the union of packet types that flow through the causal
// delivery buffer.
type causalPkt interface {
	clock.CausalMsg
	pktID() ids.MsgID
	pktView() ids.ViewID
}

func (p pktData) pktID() ids.MsgID       { return p.ID }
func (p pktData) pktView() ids.ViewID    { return p.View }
func (p pktEChange) pktID() ids.MsgID    { return p.ID }
func (p pktEChange) pktView() ids.ViewID { return p.View }

// pktMergeReq asks the view's sequencer to perform a merge. Fire-and-
// forget: if the sequencer or the view dies first, the application will
// observe the absence of the corresponding EChangeEvent and may retry.
type pktMergeReq struct {
	Group string
	From  ids.PID
	View  ids.ViewID
	Kind  EChangeKind
	// Subviews / SVSets are the merge arguments.
	Subviews []ids.SubviewID
	SVSets   []ids.SVSetID
}

func (pktMergeReq) FabricKind() string { return "mergereq" }
func (p pktMergeReq) FabricSize() int  { return 48 + 24*len(p.Subviews) + 24*len(p.SVSets) }

// pktPropose starts (or retries) a view agreement round.
type pktPropose struct {
	Group string
	// Proposal is the id the new view will have if installed.
	Proposal ids.ViewID
	// Comp is the proposed composition.
	Comp []ids.PID
}

func (pktPropose) FabricKind() string { return "propose" }
func (p pktPropose) FabricSize() int  { return 32 + 16*len(p.Comp) }

// pktAck is a member's answer to a proposal. It reports everything the
// coordinator needs for the flush and for composing the new enriched
// view: the member's predecessor view, the application messages it has
// delivered in that view (with bodies, so the coordinator can
// retransmit), the e-view change prefix it has applied, and its current
// structure.
type pktAck struct {
	Group    string
	Proposal ids.ViewID
	From     ids.PID
	// PredView is the view the member is leaving.
	PredView ids.ViewID
	// Delivered are the data packets the member has delivered in
	// PredView, keyed by message id.
	Delivered map[ids.MsgID]pktData
	// EChangeSeq is the highest e-view change applied in PredView.
	EChangeSeq uint32
	// Structure is the member's current enriched structure (reflecting
	// EChangeSeq changes).
	Structure evs.Structure
}

func (pktAck) FabricKind() string { return "ack" }
func (p pktAck) FabricSize() int {
	n := 64
	for _, d := range p.Delivered {
		n += d.FabricSize()
	}
	return n
}

// pktInstall finalizes a view agreement round.
type pktInstall struct {
	Group    string
	Proposal ids.ViewID
	Comp     []ids.PID
	// Flush maps each predecessor view to the union of data packets
	// delivered in it by the members joining from it. A member delivers
	// the ones it misses before installing (P2.1).
	Flush map[ids.ViewID][]pktData
	// Structure is the composed enriched structure of the new view.
	Structure evs.Structure
}

func (pktInstall) FabricKind() string { return "install" }
func (p pktInstall) FabricSize() int {
	n := 48 + 16*len(p.Comp)
	for _, msgs := range p.Flush {
		for _, d := range msgs {
			n += d.FabricSize()
		}
	}
	return n
}

// Compile-time interface checks.
var (
	_ causalPkt = pktData{}
	_ causalPkt = pktEChange{}
)
