package fd

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ids"
)

// feed delivers count heartbeats from p spaced by gap, starting at t0,
// and returns the time of the last one.
func feed(d *Detector, p ids.PID, t0 time.Time, gap time.Duration, count int) time.Time {
	t := t0
	for i := 0; i < count; i++ {
		d.Heard(p, t)
		t = t.Add(gap)
	}
	return t.Add(-gap)
}

func TestAdaptiveFallbackBeforeWarmup(t *testing.T) {
	static := 100 * time.Millisecond
	d := NewAdaptive(static, AdaptiveConfig{Warmup: 5})
	if got := d.TimeoutFor(pa); got != static {
		t.Fatalf("timeout before any sample = %v, want static %v", got, static)
	}
	// 5 heartbeats = 4 gap samples: still below warmup.
	feed(d, pa, time.Unix(0, 0), 3*time.Millisecond, 5)
	if got := d.TimeoutFor(pa); got != static {
		t.Fatalf("timeout below warmup = %v, want static %v", got, static)
	}
	// One more sample reaches warmup; the adapted timeout takes over.
	feed(d, pa, time.Unix(1, 0), 3*time.Millisecond, 2)
	if got := d.TimeoutFor(pa); got == static {
		t.Fatalf("timeout after warmup still static (%v)", got)
	}
}

func TestAdaptiveConvergesOnSteadyGaps(t *testing.T) {
	static := 100 * time.Millisecond
	floor := 4 * time.Millisecond
	d := NewAdaptive(static, AdaptiveConfig{Floor: floor, Ceil: static})
	// Steady 3 ms gaps: the deviation decays, so the timeout should sink
	// to the floor — far below the static fallback. The peak-hold
	// deviation bleeds off slowly on purpose (see observe), hence the
	// long feed.
	feed(d, pa, time.Unix(0, 0), 3*time.Millisecond, 800)
	got := d.TimeoutFor(pa)
	if got != floor {
		t.Fatalf("steady-gap timeout = %v, want floor %v", got, floor)
	}
}

func TestAdaptiveJitterWidensTimeout(t *testing.T) {
	d := NewAdaptive(18*time.Millisecond, AdaptiveConfig{Floor: time.Millisecond, Ceil: time.Second})
	// Alternating 1 ms / 12 ms gaps: mean ~6.5 ms, deviation ~5.5 ms, so
	// mean + 4*dev must clear the largest observed gap with margin.
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		gap := time.Millisecond
		if i%2 == 1 {
			gap = 12 * time.Millisecond
		}
		now = now.Add(gap)
		d.Heard(pa, now)
	}
	if got := d.TimeoutFor(pa); got <= 12*time.Millisecond {
		t.Fatalf("jittery timeout = %v, want > largest gap (12ms)", got)
	}
	// And the peer must not be suspected right after a worst-case gap.
	if d.Suspects(pa, now.Add(12*time.Millisecond)) {
		t.Fatal("peer suspected within adapted timeout after worst-case gap")
	}
}

func TestAdaptiveClamping(t *testing.T) {
	static := 50 * time.Millisecond
	floor := 10 * time.Millisecond
	ceil := 80 * time.Millisecond
	d := NewAdaptive(static, AdaptiveConfig{Floor: floor, Ceil: ceil, Warmup: 2})
	// Tiny steady gaps: clamped up to the floor.
	feed(d, pa, time.Unix(0, 0), 100*time.Microsecond, 50)
	if got := d.TimeoutFor(pa); got != floor {
		t.Fatalf("tiny-gap timeout = %v, want floor %v", got, floor)
	}
	// Huge steady gaps: clamped down to the ceiling.
	feed(d, pb, time.Unix(10, 0), time.Second, 50)
	if got := d.TimeoutFor(pb); got != ceil {
		t.Fatalf("huge-gap timeout = %v, want ceil %v", got, ceil)
	}
	if got := d.MaxTimeout(); got != ceil {
		t.Fatalf("MaxTimeout = %v, want ceil %v", got, ceil)
	}
}

func TestAdaptiveForgetResetsPeerState(t *testing.T) {
	static := 100 * time.Millisecond
	d := NewAdaptive(static, AdaptiveConfig{Floor: 2 * time.Millisecond})
	feed(d, pa, time.Unix(0, 0), 3*time.Millisecond, 50)
	if d.TimeoutFor(pa) == static {
		t.Fatal("estimator did not take over before Forget")
	}
	d.Forget(pa)
	if got := d.TimeoutFor(pa); got != static {
		t.Fatalf("timeout after Forget = %v, want static %v", got, static)
	}
	if len(d.est) != 0 {
		t.Fatalf("Forget left estimator state: %v", d.est)
	}
	// Warmup restarts from scratch.
	feed(d, pa, time.Unix(5, 0), 3*time.Millisecond, 3)
	if got := d.TimeoutFor(pa); got != static {
		t.Fatalf("timeout right after Forget+few samples = %v, want static", got)
	}
}

func TestAdaptiveConfigDefaults(t *testing.T) {
	static := 40 * time.Millisecond
	cfg := AdaptiveConfig{}.withDefaults(static)
	if cfg.K != DefaultDevK || cfg.Gain != DefaultGain || cfg.DevGain != DefaultDevGain || cfg.Warmup != DefaultWarmup {
		t.Fatalf("zero config defaults wrong: %+v", cfg)
	}
	if cfg.Floor != static/4 || cfg.Ceil != 4*static {
		t.Fatalf("clamp defaults wrong: %+v", cfg)
	}
	// An inverted clamp is repaired, not accepted.
	inv := AdaptiveConfig{Floor: time.Second, Ceil: time.Millisecond}.withDefaults(static)
	if inv.Ceil < inv.Floor {
		t.Fatalf("inverted clamp survived: %+v", inv)
	}
}

func TestEffectiveTimeoutHook(t *testing.T) {
	d := NewAdaptive(100*time.Millisecond, AdaptiveConfig{Warmup: 2, Floor: time.Millisecond, Ceil: time.Second})
	var got []time.Duration
	d.SetHooks(Hooks{EffectiveTimeout: func(p ids.PID, timeout time.Duration) {
		if p != pa {
			t.Fatalf("hook for %v, want %v", p, pa)
		}
		got = append(got, timeout)
	}})
	feed(d, pa, time.Unix(0, 0), 5*time.Millisecond, 4) // 3 gap samples
	if len(got) != 3 {
		t.Fatalf("hook fired %d times, want 3", len(got))
	}
	// First sample is below warmup: the hook reports the static fallback.
	if got[0] != 100*time.Millisecond {
		t.Fatalf("pre-warmup hook value = %v, want static", got[0])
	}
	// Post-warmup values are adapted.
	if got[2] == 100*time.Millisecond {
		t.Fatalf("post-warmup hook value still static")
	}
	// A static detector never fires the hook.
	s := New(100 * time.Millisecond)
	s.SetHooks(Hooks{EffectiveTimeout: func(ids.PID, time.Duration) {
		t.Fatal("EffectiveTimeout fired on static detector")
	}})
	feed(s, pa, time.Unix(0, 0), 5*time.Millisecond, 4)
}

// TestInterleavings drives a seeded random schedule of every detector
// operation over both detector flavors and checks structural invariants
// after each step. Run under -race via `make check` (the detector is
// goroutine-confined; this guards the single-threaded state machine).
func TestInterleavings(t *testing.T) {
	peers := []ids.PID{pa, pb, {Site: "c", Inc: 1}, {Site: "d", Inc: 2}}
	for name, mk := range map[string]func() *Detector{
		"static":   func() *Detector { return New(10 * time.Millisecond) },
		"adaptive": func() *Detector { return NewAdaptive(10*time.Millisecond, AdaptiveConfig{Warmup: 3}) },
	} {
		t.Run(name, func(t *testing.T) {
			d := mk()
			d.SetHooks(Hooks{
				HeartbeatGap:     func(ids.PID, time.Duration) {},
				SuspectChange:    func(ids.PID, bool) {},
				EffectiveTimeout: func(ids.PID, time.Duration) {},
			})
			r := rand.New(rand.NewSource(7))
			now := time.Unix(0, 0)
			for step := 0; step < 5000; step++ {
				p := peers[r.Intn(len(peers))]
				switch r.Intn(10) {
				case 0, 1, 2, 3:
					// Mix fresh and stale (backdated) indications.
					d.Heard(p, now.Add(time.Duration(r.Intn(7)-3)*time.Millisecond))
				case 4, 5:
					d.Alive(now)
				case 6:
					d.ForceSuspect(p)
				case 7:
					d.Unforce(p)
				case 8:
					d.Forget(p)
				case 9:
					d.GC(now, 25*time.Millisecond)
				}
				now = now.Add(time.Duration(r.Intn(4)) * time.Millisecond)

				// Invariants: forced peers are suspected; effective
				// timeouts stay within [min(static,floor), max].
				for _, q := range peers {
					if _, forced := d.forced[q]; forced && !d.Suspects(q, now) {
						t.Fatalf("step %d: forced %v not suspected", step, q)
					}
					to := d.TimeoutFor(q)
					if to <= 0 || to > d.MaxTimeout() {
						t.Fatalf("step %d: TimeoutFor(%v) = %v out of range", step, q, to)
					}
				}
			}
			// After a final GC that ages everyone out, every map must be
			// empty — the leak regression (GC must bound all maps).
			d.GC(now.Add(time.Hour), time.Minute)
			if len(d.lastHeard) != 0 || len(d.forced) != 0 || len(d.suspState) != 0 || len(d.est) != 0 {
				t.Fatalf("GC left state: lastHeard=%d forced=%d suspState=%d est=%d",
					len(d.lastHeard), len(d.forced), len(d.suspState), len(d.est))
			}
		})
	}
}
