package fd

import (
	"testing"
	"time"

	"repro/internal/ids"
)

var (
	pa = ids.PID{Site: "a", Inc: 1}
	pb = ids.PID{Site: "b", Inc: 1}
)

func TestNeverHeardIsSuspected(t *testing.T) {
	d := New(100 * time.Millisecond)
	if !d.Suspects(pa, time.Now()) {
		t.Error("unknown peer must be suspected")
	}
}

func TestHeartbeatClearsSuspicion(t *testing.T) {
	d := New(100 * time.Millisecond)
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0)
	if d.Suspects(pa, t0.Add(50*time.Millisecond)) {
		t.Error("recently heard peer suspected")
	}
	if !d.Suspects(pa, t0.Add(150*time.Millisecond)) {
		t.Error("silent peer not suspected after timeout")
	}
	// a new heartbeat revises the suspicion
	d.Heard(pa, t0.Add(200*time.Millisecond))
	if d.Suspects(pa, t0.Add(250*time.Millisecond)) {
		t.Error("suspicion not revised by later heartbeat")
	}
}

func TestHeardIgnoresStaleTimestamps(t *testing.T) {
	d := New(100 * time.Millisecond)
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0.Add(time.Second))
	d.Heard(pa, t0) // stale, must not roll lastHeard back
	if d.Suspects(pa, t0.Add(time.Second+50*time.Millisecond)) {
		t.Error("stale Heard rolled back liveness")
	}
}

func TestForceSuspect(t *testing.T) {
	d := New(time.Hour)
	now := time.Unix(0, 0)
	d.Heard(pa, now)
	d.ForceSuspect(pa)
	if !d.Suspects(pa, now) {
		t.Error("forced suspicion ignored")
	}
	if d.Alive(now).Has(pa) {
		t.Error("forced-suspected peer in Alive")
	}
	d.Unforce(pa)
	if d.Suspects(pa, now) {
		t.Error("Unforce did not clear suspicion")
	}
}

func TestAliveAndKnown(t *testing.T) {
	d := New(100 * time.Millisecond)
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0)
	d.Heard(pb, t0.Add(-200*time.Millisecond)) // already timed out at t0
	known := d.Known()
	if !known.Has(pa) || !known.Has(pb) {
		t.Fatalf("Known = %v", known)
	}
	alive := d.Alive(t0.Add(10 * time.Millisecond))
	if !alive.Has(pa) || alive.Has(pb) {
		t.Fatalf("Alive = %v", alive)
	}
}

func TestForget(t *testing.T) {
	d := New(time.Hour)
	now := time.Unix(0, 0)
	d.Heard(pa, now)
	d.ForceSuspect(pa)
	d.Forget(pa)
	if d.Known().Has(pa) {
		t.Error("Forget left peer in Known")
	}
	// forced flag must be cleared too: after hearing again, not suspected
	d.Heard(pa, now)
	if d.Suspects(pa, now) {
		t.Error("Forget did not clear forced suspicion")
	}
}

func TestGC(t *testing.T) {
	d := New(10 * time.Millisecond)
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0)
	d.Heard(pb, t0.Add(5*time.Second))
	d.GC(t0.Add(6*time.Second), time.Second)
	if d.Known().Has(pa) || !d.Known().Has(pb) {
		t.Fatalf("GC kept wrong peers: %v", d.Known())
	}
}
