package fd

import (
	"testing"
	"time"

	"repro/internal/ids"
)

var (
	pa = ids.PID{Site: "a", Inc: 1}
	pb = ids.PID{Site: "b", Inc: 1}
)

func TestNeverHeardIsSuspected(t *testing.T) {
	d := New(100 * time.Millisecond)
	if !d.Suspects(pa, time.Now()) {
		t.Error("unknown peer must be suspected")
	}
}

func TestHeartbeatClearsSuspicion(t *testing.T) {
	d := New(100 * time.Millisecond)
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0)
	if d.Suspects(pa, t0.Add(50*time.Millisecond)) {
		t.Error("recently heard peer suspected")
	}
	if !d.Suspects(pa, t0.Add(150*time.Millisecond)) {
		t.Error("silent peer not suspected after timeout")
	}
	// a new heartbeat revises the suspicion
	d.Heard(pa, t0.Add(200*time.Millisecond))
	if d.Suspects(pa, t0.Add(250*time.Millisecond)) {
		t.Error("suspicion not revised by later heartbeat")
	}
}

func TestHeardIgnoresStaleTimestamps(t *testing.T) {
	d := New(100 * time.Millisecond)
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0.Add(time.Second))
	d.Heard(pa, t0) // stale, must not roll lastHeard back
	if d.Suspects(pa, t0.Add(time.Second+50*time.Millisecond)) {
		t.Error("stale Heard rolled back liveness")
	}
}

func TestForceSuspect(t *testing.T) {
	d := New(time.Hour)
	now := time.Unix(0, 0)
	d.Heard(pa, now)
	d.ForceSuspect(pa)
	if !d.Suspects(pa, now) {
		t.Error("forced suspicion ignored")
	}
	if d.Alive(now).Has(pa) {
		t.Error("forced-suspected peer in Alive")
	}
	d.Unforce(pa)
	if d.Suspects(pa, now) {
		t.Error("Unforce did not clear suspicion")
	}
}

func TestAliveAndKnown(t *testing.T) {
	d := New(100 * time.Millisecond)
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0)
	d.Heard(pb, t0.Add(-200*time.Millisecond)) // already timed out at t0
	known := d.Known()
	if !known.Has(pa) || !known.Has(pb) {
		t.Fatalf("Known = %v", known)
	}
	alive := d.Alive(t0.Add(10 * time.Millisecond))
	if !alive.Has(pa) || alive.Has(pb) {
		t.Fatalf("Alive = %v", alive)
	}
}

func TestForget(t *testing.T) {
	d := New(time.Hour)
	now := time.Unix(0, 0)
	d.Heard(pa, now)
	d.ForceSuspect(pa)
	d.Forget(pa)
	if d.Known().Has(pa) {
		t.Error("Forget left peer in Known")
	}
	// forced flag must be cleared too: after hearing again, not suspected
	d.Heard(pa, now)
	if d.Suspects(pa, now) {
		t.Error("Forget did not clear forced suspicion")
	}
}

func TestGC(t *testing.T) {
	d := New(10 * time.Millisecond)
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0)
	d.Heard(pb, t0.Add(5*time.Second))
	d.GC(t0.Add(6*time.Second), time.Second)
	if d.Known().Has(pa) || !d.Known().Has(pb) {
		t.Fatalf("GC kept wrong peers: %v", d.Known())
	}
}

func TestHooksHeartbeatGap(t *testing.T) {
	d := New(10 * time.Millisecond)
	var gaps []time.Duration
	d.SetHooks(Hooks{HeartbeatGap: func(p ids.PID, gap time.Duration) {
		if p != pa {
			t.Fatalf("gap for %v, want %v", p, pa)
		}
		gaps = append(gaps, gap)
	}})
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0) // first contact: no previous timestamp, no gap
	d.Heard(pa, t0.Add(3*time.Millisecond))
	d.Heard(pa, t0.Add(3*time.Millisecond)) // stale (not after): no gap
	d.Heard(pa, t0.Add(10*time.Millisecond))
	if len(gaps) != 2 || gaps[0] != 3*time.Millisecond || gaps[1] != 7*time.Millisecond {
		t.Fatalf("gaps = %v", gaps)
	}
}

func TestHooksSuspectChangeDedupes(t *testing.T) {
	d := New(10 * time.Millisecond)
	type flip struct {
		p         ids.PID
		suspected bool
	}
	var flips []flip
	d.SetHooks(Hooks{SuspectChange: func(p ids.PID, s bool) { flips = append(flips, flip{p, s}) }})
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0)                      // first contact -> cleared
	d.Heard(pa, t0.Add(time.Millisecond)) // still clear -> deduped
	d.Alive(t0.Add(2 * time.Millisecond)) // still clear -> deduped
	d.Alive(t0.Add(20 * time.Millisecond)) // timeout crossed -> suspected
	d.Alive(t0.Add(21 * time.Millisecond)) // still suspected -> deduped
	d.Heard(pa, t0.Add(25*time.Millisecond)) // heartbeat clears it
	want := []flip{{pa, false}, {pa, true}, {pa, false}}
	if len(flips) != len(want) {
		t.Fatalf("flips = %v, want %v", flips, want)
	}
	for i := range want {
		if flips[i] != want[i] {
			t.Fatalf("flips[%d] = %v, want %v", i, flips[i], want[i])
		}
	}
}

func TestHooksForceSuspect(t *testing.T) {
	d := New(time.Hour)
	var flips []bool
	d.SetHooks(Hooks{SuspectChange: func(p ids.PID, s bool) { flips = append(flips, s) }})
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0) // cleared
	d.ForceSuspect(pa)
	d.Heard(pa, t0.Add(time.Millisecond)) // forced: heartbeat must NOT clear
	d.Unforce(pa)
	d.Heard(pa, t0.Add(2*time.Millisecond)) // now it clears
	want := []bool{false, true, false}
	if len(flips) != len(want) {
		t.Fatalf("flips = %v, want %v", flips, want)
	}
	for i := range want {
		if flips[i] != want[i] {
			t.Fatalf("flips[%d] = %v, want %v", i, flips[i], want[i])
		}
	}
}

func TestStaleHeardDoesNotClearSuspicion(t *testing.T) {
	// Regression: a stale liveness indication (timestamp not after the
	// freshest one recorded) used to clear the reported suspicion even
	// though the peer had legitimately timed out since.
	d := New(10 * time.Millisecond)
	var flips []bool
	d.SetHooks(Hooks{SuspectChange: func(p ids.PID, s bool) { flips = append(flips, s) }})
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0)                        // first contact -> cleared
	d.Alive(t0.Add(20 * time.Millisecond)) // timed out -> suspected
	d.Heard(pa, t0)                        // stale: must NOT clear
	want := []bool{false, true}
	if len(flips) != len(want) || flips[0] != want[0] || flips[1] != want[1] {
		t.Fatalf("flips = %v, want %v (stale Heard cleared a suspicion)", flips, want)
	}
	if !d.Suspects(pa, t0.Add(20*time.Millisecond)) {
		t.Fatal("peer unsuspected by a stale indication")
	}
	// A genuinely fresh indication still clears it.
	d.Heard(pa, t0.Add(25*time.Millisecond))
	if len(flips) != 3 || flips[2] != false {
		t.Fatalf("fresh Heard did not clear: flips = %v", flips)
	}
}

func TestGCBoundsAllMaps(t *testing.T) {
	// Regression: a peer that was ForceSuspect'ed but never heard from
	// had no lastHeard entry, so GC never dropped its forced/suspState
	// entries.
	d := New(10 * time.Millisecond)
	d.SetHooks(Hooks{SuspectChange: func(ids.PID, bool) {}})
	t0 := time.Unix(0, 0)
	d.Heard(pa, t0)
	d.ForceSuspect(pb) // never heard from
	if len(d.forced) != 1 || len(d.suspState) != 2 {
		t.Fatalf("setup: forced=%d suspState=%d", len(d.forced), len(d.suspState))
	}
	// A GC that keeps pa must still drop the never-heard pb entries.
	d.GC(t0.Add(time.Millisecond), time.Second)
	if _, ok := d.forced[pb]; ok {
		t.Fatal("GC left forced entry for never-heard peer")
	}
	if _, ok := d.suspState[pb]; ok {
		t.Fatal("GC left suspState entry for never-heard peer")
	}
	if !d.Known().Has(pa) {
		t.Fatal("GC dropped a live peer")
	}
	// Aging pa out empties everything.
	d.GC(t0.Add(time.Hour), time.Second)
	if len(d.lastHeard)+len(d.forced)+len(d.suspState) != 0 {
		t.Fatalf("GC left state: %v %v %v", d.lastHeard, d.forced, d.suspState)
	}
}

func TestNoHooksNoTracking(t *testing.T) {
	// Without hooks the detector must not accumulate suspState entries.
	d := New(time.Hour)
	d.Heard(pa, time.Unix(0, 0))
	d.Alive(time.Unix(1, 0))
	if len(d.suspState) != 0 {
		t.Fatalf("suspState grew without hooks: %v", d.suspState)
	}
}
