package fd

import "time"

// Adaptive suspicion timeouts. A fixed timeout bakes one delay
// distribution into the detector: too short and jitter produces false
// suspicions (each one a needless Figure-1 Failure transition and view
// change), too long and real failures go unnoticed. The estimator below
// tracks, per peer, a Jacobson/TCP-RTO-style smoothed mean and mean
// deviation of the observed heartbeat gaps and derives the timeout as
//
//	timeout = srtt + K*rttvar, clamped to [Floor, Ceil]
//
// falling back to the static timeout until Warmup samples have arrived.
// The deviation is peak-hold rather than plain EWMA (see observe): it
// must cover the longest silence, not the average gap. Within a stable
// partition gaps concentrate around the heartbeat period, so the timeout
// tightens and failures are detected faster; when the fabric turns
// jittery the deviation term widens the timeout and false suspicions
// subside — the "eventually accurate within a stable partition" behavior
// the application model leans on.

// Default adaptive-estimator parameters (Jacobson's RTO gains).
const (
	// DefaultDevK is the deviation multiplier K.
	DefaultDevK = 4.0
	// DefaultGain is the smoothed-mean EWMA gain (1/8).
	DefaultGain = 0.125
	// DefaultDevGain is the mean-deviation EWMA gain (1/4).
	DefaultDevGain = 0.25
	// DefaultWarmup is the per-peer gap-sample count before the adaptive
	// timeout replaces the static one.
	DefaultWarmup = 8
)

// AdaptiveConfig parametrizes an adaptive detector. The zero value of
// any field is replaced by a validated default at construction.
type AdaptiveConfig struct {
	// K is the deviation multiplier: timeout = mean + K*dev.
	K float64
	// Floor and Ceil clamp the adaptive timeout. Defaults: static/4 and
	// 4*static, where static is the detector's fallback timeout. The
	// ceiling also bounds the detector's GC horizon (MaxTimeout).
	Floor time.Duration
	Ceil  time.Duration
	// Warmup is the number of gap samples required from a peer before
	// its adaptive timeout takes effect; until then the static timeout
	// applies.
	Warmup int
	// Gain is the EWMA gain for the mean. DevGain scales the deviation
	// decay (a spike lifts the deviation immediately; calm samples bleed
	// it off at DevGain/32 — see observe).
	Gain    float64
	DevGain float64
}

// withDefaults validates the config against the static timeout.
func (c AdaptiveConfig) withDefaults(static time.Duration) AdaptiveConfig {
	if c.K <= 0 {
		c.K = DefaultDevK
	}
	if c.Gain <= 0 || c.Gain > 1 {
		c.Gain = DefaultGain
	}
	if c.DevGain <= 0 || c.DevGain > 1 {
		c.DevGain = DefaultDevGain
	}
	if c.Floor <= 0 {
		c.Floor = static / 4
	}
	if c.Ceil <= 0 {
		c.Ceil = 4 * static
	}
	if c.Ceil < c.Floor {
		c.Ceil = c.Floor
	}
	if c.Warmup <= 0 {
		c.Warmup = DefaultWarmup
	}
	return c
}

// gapEstimator is the per-peer Jacobson state, in seconds.
type gapEstimator struct {
	srtt   float64
	rttvar float64
	n      int
}

// observe folds one heartbeat gap into the estimate. The mean is plain
// Jacobson EWMA; the deviation is peak-hold: a sample deviating beyond
// the current estimate lifts it immediately, calm samples bleed it off
// at DevGain. Plain EWMA deviation fails here: when delay jitter exceeds
// the heartbeat period the arrival stream reorders, the many small
// inter-arrival gaps wash the rare large ones out of a mean deviation,
// and the timeout settles far below the silence tail — an "adaptive"
// detector more trigger-happy than the static one it replaces. The
// deviation must track the tail, not the average, because suspicion
// compares the timeout against the longest silence, not the typical gap.
func (e *gapEstimator) observe(gap time.Duration, cfg AdaptiveConfig) {
	g := gap.Seconds()
	if e.n == 0 {
		e.srtt = g
		e.rttvar = g / 2
	} else {
		dev := g - e.srtt
		if dev < 0 {
			dev = -dev
		}
		if dev > e.rttvar {
			e.rttvar = dev
		} else {
			// Decay far slower than the spike rate: heartbeat gaps
			// arrive hundreds of times per second, and the widened
			// timeout must survive the calm stretch between two delay
			// spikes or every spike pair costs a false suspicion.
			e.rttvar += cfg.DevGain / 32 * (dev - e.rttvar)
		}
		e.srtt += cfg.Gain * (g - e.srtt)
	}
	e.n++
}

// timeout derives the clamped suspicion timeout, or static before
// warmup.
func (e *gapEstimator) timeout(cfg AdaptiveConfig, static time.Duration) time.Duration {
	if e == nil || e.n < cfg.Warmup {
		return static
	}
	t := time.Duration((e.srtt + cfg.K*e.rttvar) * float64(time.Second))
	if t < cfg.Floor {
		return cfg.Floor
	}
	if t > cfg.Ceil {
		return cfg.Ceil
	}
	return t
}
