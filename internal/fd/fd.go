// Package fd implements an unreliable failure detector of the kind the
// paper's system model requires: in an asynchronous system a process
// cannot distinguish a crashed peer from a slow one, so the detector only
// *suspects*. Suspicions may be wrong (false suspicions) and are revised
// when a heartbeat arrives; within a stable partition the detector is
// eventually accurate, which is what lets the membership protocol
// converge.
//
// The detector is passive: the protocol event loop feeds it heartbeats and
// polls it on its own ticks, so all detector state stays confined to that
// loop (no internal goroutine, no locks). The suspicion timeout is either
// static (New) or adapted per peer from the observed heartbeat gaps
// (NewAdaptive; see estimator.go).
package fd

import (
	"time"

	"repro/internal/ids"
)

// Hooks are optional instrumentation callbacks. They fire synchronously
// on the goroutine driving the detector, so implementations must be
// fast and must not call back into the detector.
type Hooks struct {
	// HeartbeatGap fires on every liveness indication from a peer that
	// has been heard before, with the time since the previous one.
	HeartbeatGap func(p ids.PID, gap time.Duration)
	// SuspectChange fires when the detector's opinion of p flips:
	// suspected=true when p crosses the timeout (observed at the next
	// poll) or is force-suspected, false when a liveness indication
	// clears the suspicion (including first contact).
	SuspectChange func(p ids.PID, suspected bool)
	// EffectiveTimeout fires after each gap observation on an adaptive
	// detector with p's updated effective suspicion timeout (the static
	// timeout while p is still warming up). Never fired by a static
	// detector.
	EffectiveTimeout func(p ids.PID, timeout time.Duration)
}

// Detector tracks the set of peers a process has heard from recently.
// Not safe for concurrent use; confine to one goroutine.
type Detector struct {
	timeout  time.Duration
	adaptive bool
	acfg     AdaptiveConfig
	// est holds per-peer gap estimators; non-nil only when adaptive.
	est       map[ids.PID]*gapEstimator
	lastHeard map[ids.PID]time.Time
	forced    map[ids.PID]struct{}
	hooks     Hooks
	// suspState is the last suspicion state reported through hooks,
	// maintained only while a SuspectChange hook is installed.
	suspState map[ids.PID]bool
}

// New returns a detector that suspects any peer silent for longer than
// timeout.
func New(timeout time.Duration) *Detector {
	return &Detector{
		timeout:   timeout,
		lastHeard: make(map[ids.PID]time.Time),
		forced:    make(map[ids.PID]struct{}),
		suspState: make(map[ids.PID]bool),
	}
}

// NewAdaptive returns a detector whose suspicion timeout adapts per peer
// to the observed heartbeat gaps (mean + K*deviation, clamped), using
// static as the fallback until a peer's estimator warms up. cfg fields
// left zero get validated defaults derived from static.
func NewAdaptive(static time.Duration, cfg AdaptiveConfig) *Detector {
	d := New(static)
	d.adaptive = true
	d.acfg = cfg.withDefaults(static)
	d.est = make(map[ids.PID]*gapEstimator)
	return d
}

// SetHooks installs instrumentation callbacks. Pass the zero Hooks to
// disable. With no hooks installed the detector's behavior and cost are
// unchanged.
func (d *Detector) SetHooks(h Hooks) { d.hooks = h }

// noteSusp records and reports a suspicion-state transition for p.
func (d *Detector) noteSusp(p ids.PID, suspected bool) {
	if d.hooks.SuspectChange == nil {
		return
	}
	if prev, ok := d.suspState[p]; ok && prev == suspected {
		return
	}
	d.suspState[p] = suspected
	d.hooks.SuspectChange(p, suspected)
}

// Timeout returns the static suspicion timeout (the adaptive fallback).
func (d *Detector) Timeout() time.Duration { return d.timeout }

// TimeoutFor returns the effective suspicion timeout for p: the static
// timeout on a static detector or while p's estimator is warming up,
// otherwise p's adapted timeout.
func (d *Detector) TimeoutFor(p ids.PID) time.Duration {
	if !d.adaptive {
		return d.timeout
	}
	return d.est[p].timeout(d.acfg, d.timeout)
}

// MaxTimeout bounds the effective timeout the detector can report for
// any peer: the static timeout, or the adaptive ceiling if larger.
// Callers derive GC horizons from it.
func (d *Detector) MaxTimeout() time.Duration {
	if d.adaptive && d.acfg.Ceil > d.timeout {
		return d.acfg.Ceil
	}
	return d.timeout
}

// Heard records a liveness indication (heartbeat or any message) from p
// at the given time. Stale indications — not after the freshest one
// already recorded, e.g. a reordered heartbeat — are ignored entirely:
// they must neither roll liveness back nor clear a suspicion that the
// fresher state justifies.
func (d *Detector) Heard(p ids.PID, now time.Time) {
	t, ok := d.lastHeard[p]
	if ok && !now.After(t) {
		return
	}
	if ok {
		gap := now.Sub(t)
		if d.hooks.HeartbeatGap != nil {
			d.hooks.HeartbeatGap(p, gap)
		}
		if d.adaptive {
			e := d.est[p]
			if e == nil {
				e = &gapEstimator{}
				d.est[p] = e
			}
			e.observe(gap, d.acfg)
			if d.hooks.EffectiveTimeout != nil {
				d.hooks.EffectiveTimeout(p, e.timeout(d.acfg, d.timeout))
			}
		}
	}
	d.lastHeard[p] = now
	if _, forced := d.forced[p]; !forced {
		d.noteSusp(p, false)
	}
}

// Forget drops all state about p (e.g. after p leaves the group or its
// site reappears with a newer incarnation).
func (d *Detector) Forget(p ids.PID) {
	delete(d.lastHeard, p)
	delete(d.forced, p)
	delete(d.suspState, p)
	delete(d.est, p)
}

// ForceSuspect injects a false suspicion of p: Suspects(p) reports true
// regardless of heartbeats until Unforce is called. Tests and experiments
// use this to exercise the paper's "false suspicion" failure transitions.
func (d *Detector) ForceSuspect(p ids.PID) {
	d.forced[p] = struct{}{}
	d.noteSusp(p, true)
}

// Unforce removes an injected suspicion.
func (d *Detector) Unforce(p ids.PID) { delete(d.forced, p) }

// Suspects reports whether p is currently suspected at time now. A peer
// never heard from is suspected.
func (d *Detector) Suspects(p ids.PID, now time.Time) bool {
	if _, ok := d.forced[p]; ok {
		return true
	}
	t, ok := d.lastHeard[p]
	if !ok {
		return true
	}
	return now.Sub(t) > d.TimeoutFor(p)
}

// SilentFor returns how long p has been silent at time now — the gap
// since its last liveness indication — and whether p has been heard
// from at all. Live introspection (core.StatusSnapshot) reports it
// alongside the effective timeout so an operator sees how close each
// peer is to suspicion, not just the boolean verdict.
func (d *Detector) SilentFor(p ids.PID, now time.Time) (time.Duration, bool) {
	t, ok := d.lastHeard[p]
	if !ok {
		return 0, false
	}
	return now.Sub(t), true
}

// Known returns every peer the detector has ever heard from and not
// forgotten, regardless of suspicion.
func (d *Detector) Known() ids.PIDSet {
	s := make(ids.PIDSet, len(d.lastHeard))
	for p := range d.lastHeard {
		s.Add(p)
	}
	return s
}

// Alive returns the set of known peers not suspected at time now. When a
// SuspectChange hook is installed, the poll also reports any timeout-
// driven suspicion transitions observed since the previous call.
func (d *Detector) Alive(now time.Time) ids.PIDSet {
	s := make(ids.PIDSet)
	for p := range d.lastHeard {
		suspected := d.Suspects(p, now)
		if !suspected {
			s.Add(p)
		}
		d.noteSusp(p, suspected)
	}
	return s
}

// GC drops peers silent for longer than keep, bounding detector state in
// long executions with many incarnations. All maps are bounded: entries
// in the auxiliary maps (forced flags, hook state, estimators) whose
// peer has no lastHeard timestamp — a ForceSuspect of a peer never heard
// from — have no silence to age out and are dropped immediately; such a
// peer is suspected regardless (unknown peers always are), so only a
// redundant flag is lost.
func (d *Detector) GC(now time.Time, keep time.Duration) {
	for p, t := range d.lastHeard {
		if now.Sub(t) > keep {
			d.Forget(p)
		}
	}
	for p := range d.forced {
		if _, ok := d.lastHeard[p]; !ok {
			delete(d.forced, p)
		}
	}
	for p := range d.suspState {
		if _, ok := d.lastHeard[p]; !ok {
			delete(d.suspState, p)
		}
	}
	for p := range d.est {
		if _, ok := d.lastHeard[p]; !ok {
			delete(d.est, p)
		}
	}
}
