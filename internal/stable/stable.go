// Package stable simulates crash-surviving storage. The paper's
// application model lets part of a process's local state be permanent so
// that applications can recover after failures; determining the last
// process to fail (needed for state creation after total failures) also
// requires a persisted log of installed views.
//
// Storage is keyed by *site* name, not process id: a recovered process has
// a fresh identifier (new incarnation) but reopens its site's store.
package stable

import (
	"sync"

	"repro/internal/ids"
)

// ViewRecord is one entry of the persisted view log: a view the process
// installed, with its composition.
type ViewRecord struct {
	View    ids.ViewID
	Members []ids.PID
	// Installer is the incarnation that installed the view.
	Installer ids.PID
}

// Store is one site's permanent storage: a small key/value area for
// application state plus the view log. Safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	site string
	kv   map[string][]byte
	log  []ViewRecord
}

// Site returns the site this store belongs to.
func (s *Store) Site() string { return s.site }

// Put stores value under key (value is copied).
func (s *Store) Put(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(value))
	copy(cp, value)
	s.kv[key] = cp
}

// Get returns a copy of the value under key, or nil and false.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.kv[key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true
}

// Delete removes key.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.kv, key)
}

// Keys returns all stored keys (unordered).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.kv))
	for k := range s.kv {
		out = append(out, k)
	}
	return out
}

// AppendView persists an installed view to the view log.
func (s *Store) AppendView(rec ViewRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	members := make([]ids.PID, len(rec.Members))
	copy(members, rec.Members)
	rec.Members = members
	s.log = append(s.log, rec)
}

// ViewLog returns a copy of the persisted view log, oldest first.
func (s *Store) ViewLog() []ViewRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ViewRecord, len(s.log))
	copy(out, s.log)
	return out
}

// LastView returns the most recently persisted view record, if any.
func (s *Store) LastView() (ViewRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.log) == 0 {
		return ViewRecord{}, false
	}
	return s.log[len(s.log)-1], true
}

// Registry hands out per-site stores, simulating each site's disk. Safe
// for concurrent use.
type Registry struct {
	mu     sync.Mutex
	stores map[string]*Store
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{stores: make(map[string]*Store)}
}

// Open returns site's store, creating an empty one on first open. A
// process that crashes and recovers reopens the same store.
func (r *Registry) Open(site string) *Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.stores[site]
	if !ok {
		st = &Store{site: site, kv: make(map[string][]byte)}
		r.stores[site] = st
	}
	return st
}

// Wipe destroys site's storage (models disk loss).
func (r *Registry) Wipe(site string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.stores, site)
}

// Sites returns the sites with existing stores.
func (r *Registry) Sites() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.stores))
	for s := range r.stores {
		out = append(out, s)
	}
	return out
}
