package stable

import (
	"testing"

	"repro/internal/ids"
)

func TestOpenReturnsSameStore(t *testing.T) {
	r := NewRegistry()
	s1 := r.Open("a")
	s1.Put("k", []byte("v"))
	s2 := r.Open("a")
	if s1 != s2 {
		t.Fatal("Open returned a different store for the same site")
	}
	if v, ok := s2.Get("k"); !ok || string(v) != "v" {
		t.Fatal("state did not survive reopen")
	}
	if s2.Site() != "a" {
		t.Fatalf("Site = %q", s2.Site())
	}
}

func TestPutGetCopies(t *testing.T) {
	s := NewRegistry().Open("a")
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X' // caller mutation must not leak in
	v, ok := s.Get("k")
	if !ok || string(v) != "abc" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	v[0] = 'Y' // returned copy mutation must not leak back
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatal("Get returned shared storage")
	}
}

func TestDeleteAndKeys(t *testing.T) {
	s := NewRegistry().Open("a")
	s.Put("x", nil)
	s.Put("y", []byte("1"))
	s.Delete("x")
	if _, ok := s.Get("x"); ok {
		t.Fatal("Delete did not remove key")
	}
	keys := s.Keys()
	if len(keys) != 1 || keys[0] != "y" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestViewLog(t *testing.T) {
	s := NewRegistry().Open("a")
	if _, ok := s.LastView(); ok {
		t.Fatal("LastView on empty log returned ok")
	}
	p1 := ids.PID{Site: "a", Inc: 1}
	v1 := ids.ViewID{Epoch: 1, Coord: p1}
	v2 := ids.ViewID{Epoch: 2, Coord: p1}
	members := []ids.PID{p1}
	s.AppendView(ViewRecord{View: v1, Members: members, Installer: p1})
	members[0] = ids.PID{Site: "evil", Inc: 9} // must not corrupt the log
	s.AppendView(ViewRecord{View: v2, Members: []ids.PID{p1}, Installer: p1})

	log := s.ViewLog()
	if len(log) != 2 || log[0].View != v1 || log[1].View != v2 {
		t.Fatalf("ViewLog = %v", log)
	}
	if log[0].Members[0] != p1 {
		t.Fatal("AppendView shared caller slice")
	}
	last, ok := s.LastView()
	if !ok || last.View != v2 {
		t.Fatalf("LastView = %v, %v", last, ok)
	}
}

func TestWipe(t *testing.T) {
	r := NewRegistry()
	r.Open("a").Put("k", []byte("v"))
	r.Wipe("a")
	if _, ok := r.Open("a").Get("k"); ok {
		t.Fatal("Wipe did not destroy storage")
	}
}

func TestSites(t *testing.T) {
	r := NewRegistry()
	r.Open("a")
	r.Open("b")
	sites := r.Sites()
	if len(sites) != 2 {
		t.Fatalf("Sites = %v", sites)
	}
}

func TestCrashRecoveryScenario(t *testing.T) {
	// Simulates: incarnation 1 persists state and views, "crashes";
	// incarnation 2 reopens the store and sees everything.
	r := NewRegistry()
	inc1 := ids.PID{Site: "n1", Inc: 1}
	st := r.Open("n1")
	st.Put("file", []byte("content-v3"))
	st.AppendView(ViewRecord{View: ids.ViewID{Epoch: 5, Coord: inc1}, Members: []ids.PID{inc1}, Installer: inc1})

	// recovery: new incarnation, same site
	st2 := r.Open("n1")
	if v, ok := st2.Get("file"); !ok || string(v) != "content-v3" {
		t.Fatal("permanent state lost across incarnations")
	}
	last, ok := st2.LastView()
	if !ok || last.Installer != inc1 {
		t.Fatal("view log lost across incarnations")
	}
}
