package ids

import "testing"

// FuzzParsePID checks that the parser never panics and that every
// accepted input round-trips.
func FuzzParsePID(f *testing.F) {
	f.Add("a#1")
	f.Add("host#weird#42")
	f.Add("#")
	f.Add("x#0")
	f.Add("x#99999999999999999999")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePID(s)
		if err != nil {
			return
		}
		if p.IsZero() {
			t.Fatalf("ParsePID(%q) accepted a zero PID", s)
		}
		back, err := ParsePID(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip of %q: %v, %v", s, back, err)
		}
	})
}
