// Package ids defines the identifier types shared by every layer of the
// stack: process identifiers with incarnation numbers, view identifiers,
// message identifiers, and the subview / sv-set identifiers introduced by
// enriched view synchrony.
//
// The paper models recovery by assigning a recovered process a new
// identifier drawn from an infinite name space. We realize that as a
// (site, incarnation) pair: the site name is stable across crashes (it is
// the key under which permanent state is stored), while every recovery
// bumps the incarnation, yielding a fresh process identifier.
package ids

import (
	"fmt"
	"strconv"
	"strings"
)

// PID identifies a single incarnation of a process. The zero value is not
// a valid PID; valid PIDs have a non-empty Site and Inc >= 1.
type PID struct {
	// Site is the stable name of the host/process slot. Permanent state
	// survives under this key across incarnations.
	Site string
	// Inc is the incarnation number, starting at 1. A recovered process
	// reappears with the same Site and a larger Inc.
	Inc uint32
}

// IsZero reports whether p is the zero (invalid) PID.
func (p PID) IsZero() bool { return p.Site == "" && p.Inc == 0 }

// Less orders PIDs lexicographically by (Site, Inc). The membership layer
// uses this order to pick coordinators deterministically.
func (p PID) Less(q PID) bool {
	if p.Site != q.Site {
		return p.Site < q.Site
	}
	return p.Inc < q.Inc
}

// SameSite reports whether p and q are incarnations of the same site.
func (p PID) SameSite(q PID) bool { return p.Site == q.Site }

// String renders the PID as "site#inc".
func (p PID) String() string {
	if p.IsZero() {
		return "<nil-pid>"
	}
	return p.Site + "#" + strconv.FormatUint(uint64(p.Inc), 10)
}

// ParsePID parses the "site#inc" form produced by PID.String.
func ParsePID(s string) (PID, error) {
	i := strings.LastIndexByte(s, '#')
	if i <= 0 || i == len(s)-1 {
		return PID{}, fmt.Errorf("ids: malformed pid %q", s)
	}
	inc, err := strconv.ParseUint(s[i+1:], 10, 32)
	if err != nil {
		return PID{}, fmt.Errorf("ids: malformed pid incarnation in %q: %w", s, err)
	}
	if inc == 0 {
		return PID{}, fmt.Errorf("ids: pid %q has zero incarnation", s)
	}
	return PID{Site: s[:i], Inc: uint32(inc)}, nil
}

// ViewID identifies an installed view. View identifiers are totally
// ordered by (Epoch, Coord); the epoch is chosen by the proposing
// coordinator to exceed every epoch it has observed, so identifiers of
// successive views at any process strictly increase, while concurrent
// partitions may install views with incomparable memberships but still
// distinctly identified.
type ViewID struct {
	// Epoch is the proposal epoch, strictly increasing along every
	// process's history.
	Epoch uint64
	// Coord is the coordinator that proposed the view.
	Coord PID
}

// IsZero reports whether v is the zero ViewID (no view installed yet).
func (v ViewID) IsZero() bool { return v.Epoch == 0 && v.Coord.IsZero() }

// Less orders view identifiers by (Epoch, Coord).
func (v ViewID) Less(w ViewID) bool {
	if v.Epoch != w.Epoch {
		return v.Epoch < w.Epoch
	}
	return v.Coord.Less(w.Coord)
}

// String renders the ViewID as "v<epoch>@<coord>".
func (v ViewID) String() string {
	if v.IsZero() {
		return "<nil-view>"
	}
	return "v" + strconv.FormatUint(v.Epoch, 10) + "@" + v.Coord.String()
}

// MsgID identifies a multicast message: the sender plus a per-sender
// sequence number. Uniqueness of MsgIDs underpins the Integrity property
// (at-most-once delivery, only-if-sent).
type MsgID struct {
	Sender PID
	Seq    uint64
}

// IsZero reports whether m is the zero MsgID.
func (m MsgID) IsZero() bool { return m.Sender.IsZero() && m.Seq == 0 }

// String renders the MsgID as "m<seq>@<sender>".
func (m MsgID) String() string {
	return "m" + strconv.FormatUint(m.Seq, 10) + "@" + m.Sender.String()
}

// SubviewID identifies a subview. Subview identifiers are globally unique:
// they embed the view in which the subview was created plus a per-view
// sequence number. Identifiers are scoped to their view: when a view
// change installs a successor, surviving subviews keep their *grouping*
// (Property 6.3) but receive fresh identifiers — two concurrent views may
// each hold a piece of a split subview, and those pieces must stay
// distinguishable after a merge.
type SubviewID struct {
	Origin ViewID
	Seq    uint32
}

// IsZero reports whether s is the zero SubviewID.
func (s SubviewID) IsZero() bool { return s.Origin.IsZero() && s.Seq == 0 }

// Less orders subview identifiers by (Origin, Seq).
func (s SubviewID) Less(t SubviewID) bool {
	if s.Origin != t.Origin {
		return s.Origin.Less(t.Origin)
	}
	return s.Seq < t.Seq
}

// String renders the SubviewID as "sv<seq>/<origin>".
func (s SubviewID) String() string {
	return "sv" + strconv.FormatUint(uint64(s.Seq), 10) + "/" + s.Origin.String()
}

// SVSetID identifies a subview set (sv-set). Like subview identifiers,
// sv-set identifiers are globally unique and survive view changes.
type SVSetID struct {
	Origin ViewID
	Seq    uint32
}

// IsZero reports whether s is the zero SVSetID.
func (s SVSetID) IsZero() bool { return s.Origin.IsZero() && s.Seq == 0 }

// Less orders sv-set identifiers by (Origin, Seq).
func (s SVSetID) Less(t SVSetID) bool {
	if s.Origin != t.Origin {
		return s.Origin.Less(t.Origin)
	}
	return s.Seq < t.Seq
}

// String renders the SVSetID as "ss<seq>/<origin>".
func (s SVSetID) String() string {
	return "ss" + strconv.FormatUint(uint64(s.Seq), 10) + "/" + s.Origin.String()
}
