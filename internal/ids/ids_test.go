package ids

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPIDString(t *testing.T) {
	tests := []struct {
		name string
		pid  PID
		want string
	}{
		{"simple", PID{Site: "a", Inc: 1}, "a#1"},
		{"multi-incarnation", PID{Site: "node-3", Inc: 42}, "node-3#42"},
		{"zero", PID{}, "<nil-pid>"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.pid.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParsePIDRoundTrip(t *testing.T) {
	tests := []PID{
		{Site: "a", Inc: 1},
		{Site: "host#weird", Inc: 7}, // '#' in site: LastIndexByte must split at the final '#'
		{Site: "x", Inc: 4294967295},
	}
	for _, want := range tests {
		got, err := ParsePID(want.String())
		if err != nil {
			t.Fatalf("ParsePID(%q): %v", want.String(), err)
		}
		if got != want {
			t.Errorf("ParsePID(%q) = %v, want %v", want.String(), got, want)
		}
	}
}

func TestParsePIDErrors(t *testing.T) {
	for _, s := range []string{"", "a", "#1", "a#", "a#x", "a#0", "a#99999999999999999999"} {
		if _, err := ParsePID(s); err == nil {
			t.Errorf("ParsePID(%q) succeeded, want error", s)
		}
	}
}

func TestPIDLessIsStrictTotalOrder(t *testing.T) {
	// Property: Less is irreflexive, asymmetric, transitive, and total.
	f := func(a, b, c PID) bool {
		if a.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		// totality: exactly one of <, >, == holds
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestViewIDOrdering(t *testing.T) {
	a := PID{Site: "a", Inc: 1}
	b := PID{Site: "b", Inc: 1}
	tests := []struct {
		name string
		v, w ViewID
		want bool
	}{
		{"epoch dominates", ViewID{Epoch: 1, Coord: b}, ViewID{Epoch: 2, Coord: a}, true},
		{"coord breaks ties", ViewID{Epoch: 3, Coord: a}, ViewID{Epoch: 3, Coord: b}, true},
		{"equal not less", ViewID{Epoch: 3, Coord: a}, ViewID{Epoch: 3, Coord: a}, false},
		{"reverse", ViewID{Epoch: 2, Coord: a}, ViewID{Epoch: 1, Coord: b}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Less(tt.w); got != tt.want {
				t.Errorf("%v.Less(%v) = %v, want %v", tt.v, tt.w, got, tt.want)
			}
		})
	}
}

func TestSubviewAndSVSetIDOrdering(t *testing.T) {
	v1 := ViewID{Epoch: 1, Coord: PID{Site: "a", Inc: 1}}
	v2 := ViewID{Epoch: 2, Coord: PID{Site: "a", Inc: 1}}
	if !(SubviewID{Origin: v1, Seq: 9}).Less(SubviewID{Origin: v2, Seq: 1}) {
		t.Error("subview origin should dominate seq")
	}
	if !(SubviewID{Origin: v1, Seq: 1}).Less(SubviewID{Origin: v1, Seq: 2}) {
		t.Error("subview seq should break ties")
	}
	if !(SVSetID{Origin: v1, Seq: 9}).Less(SVSetID{Origin: v2, Seq: 1}) {
		t.Error("sv-set origin should dominate seq")
	}
	if (SVSetID{Origin: v1, Seq: 1}).Less(SVSetID{Origin: v1, Seq: 1}) {
		t.Error("sv-set Less must be irreflexive")
	}
}

func TestZeroChecks(t *testing.T) {
	if !(PID{}).IsZero() || !(ViewID{}).IsZero() || !(MsgID{}).IsZero() ||
		!(SubviewID{}).IsZero() || !(SVSetID{}).IsZero() {
		t.Error("zero values must report IsZero")
	}
	p := PID{Site: "a", Inc: 1}
	if p.IsZero() || (ViewID{Epoch: 1, Coord: p}).IsZero() || (MsgID{Sender: p, Seq: 1}).IsZero() {
		t.Error("non-zero values must not report IsZero")
	}
}

func TestPIDSetBasics(t *testing.T) {
	a := PID{Site: "a", Inc: 1}
	b := PID{Site: "b", Inc: 1}
	c := PID{Site: "c", Inc: 1}

	s := NewPIDSet(a, b)
	if !s.Has(a) || !s.Has(b) || s.Has(c) {
		t.Fatal("membership wrong after NewPIDSet")
	}
	s.Add(c)
	if !s.Has(c) {
		t.Fatal("Add failed")
	}
	s.Remove(b)
	if s.Has(b) {
		t.Fatal("Remove failed")
	}
	if got := s.String(); got != "{a#1, c#1}" {
		t.Errorf("String() = %q", got)
	}
}

func TestPIDSetAlgebra(t *testing.T) {
	a := PID{Site: "a", Inc: 1}
	b := PID{Site: "b", Inc: 1}
	c := PID{Site: "c", Inc: 1}
	s := NewPIDSet(a, b)
	u := NewPIDSet(b, c)

	if got := s.Union(u); !got.Equal(NewPIDSet(a, b, c)) {
		t.Errorf("Union = %v", got)
	}
	if got := s.Intersect(u); !got.Equal(NewPIDSet(b)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := s.Diff(u); !got.Equal(NewPIDSet(a)) {
		t.Errorf("Diff = %v", got)
	}
	if !NewPIDSet(a).Subset(s) || s.Subset(NewPIDSet(a)) {
		t.Error("Subset wrong")
	}
	if s.Equal(u) || !s.Equal(NewPIDSet(b, a)) {
		t.Error("Equal wrong")
	}
}

func TestPIDSetCloneIsIndependent(t *testing.T) {
	a := PID{Site: "a", Inc: 1}
	b := PID{Site: "b", Inc: 1}
	s := NewPIDSet(a)
	c := s.Clone()
	c.Add(b)
	if s.Has(b) {
		t.Error("Clone shares storage with original")
	}
}

func TestPIDSetMin(t *testing.T) {
	if _, ok := NewPIDSet().Min(); ok {
		t.Error("Min of empty set should report !ok")
	}
	a1 := PID{Site: "a", Inc: 1}
	a2 := PID{Site: "a", Inc: 2}
	b := PID{Site: "b", Inc: 1}
	got, ok := NewPIDSet(b, a2, a1).Min()
	if !ok || got != a1 {
		t.Errorf("Min = %v, %v; want %v, true", got, ok, a1)
	}
}

func TestPIDSetSortedMatchesSort(t *testing.T) {
	// Property: Sorted returns all members, in Less order, no duplicates.
	f := func(raw []PID) bool {
		s := NewPIDSet(raw...)
		sorted := s.Sorted()
		if len(sorted) != len(s) {
			return false
		}
		if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) }) {
			return false
		}
		for _, p := range sorted {
			if !s.Has(p) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPIDSetUnionProperties(t *testing.T) {
	// Property: union is commutative, idempotent, and contains both operands.
	f := func(x, y []PID) bool {
		s, u := NewPIDSet(x...), NewPIDSet(y...)
		su := s.Union(u)
		return su.Equal(u.Union(s)) && s.Subset(su) && u.Subset(su) && su.Union(su).Equal(su)
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(2)), MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
