package ids

import (
	"sort"
	"strings"
)

// PIDSet is an immutable-by-convention set of process identifiers. The
// membership and enriched-view layers pass compositions around as PIDSets;
// callers must not mutate a set they did not create (copy first).
type PIDSet map[PID]struct{}

// NewPIDSet builds a set from the given members.
func NewPIDSet(members ...PID) PIDSet {
	s := make(PIDSet, len(members))
	for _, p := range members {
		s[p] = struct{}{}
	}
	return s
}

// Has reports whether p is a member of s.
func (s PIDSet) Has(p PID) bool {
	_, ok := s[p]
	return ok
}

// Add inserts p into s.
func (s PIDSet) Add(p PID) { s[p] = struct{}{} }

// Remove deletes p from s.
func (s PIDSet) Remove(p PID) { delete(s, p) }

// Clone returns an independent copy of s.
func (s PIDSet) Clone() PIDSet {
	c := make(PIDSet, len(s))
	for p := range s {
		c[p] = struct{}{}
	}
	return c
}

// Union returns a new set holding every member of s or t.
func (s PIDSet) Union(t PIDSet) PIDSet {
	u := s.Clone()
	for p := range t {
		u[p] = struct{}{}
	}
	return u
}

// Intersect returns a new set holding every member of both s and t.
func (s PIDSet) Intersect(t PIDSet) PIDSet {
	u := make(PIDSet)
	for p := range s {
		if t.Has(p) {
			u[p] = struct{}{}
		}
	}
	return u
}

// Diff returns a new set holding members of s that are not in t.
func (s PIDSet) Diff(t PIDSet) PIDSet {
	u := make(PIDSet)
	for p := range s {
		if !t.Has(p) {
			u[p] = struct{}{}
		}
	}
	return u
}

// Equal reports whether s and t have the same members.
func (s PIDSet) Equal(t PIDSet) bool {
	if len(s) != len(t) {
		return false
	}
	for p := range s {
		if !t.Has(p) {
			return false
		}
	}
	return true
}

// Subset reports whether every member of s is in t.
func (s PIDSet) Subset(t PIDSet) bool {
	for p := range s {
		if !t.Has(p) {
			return false
		}
	}
	return true
}

// Sorted returns the members in (Site, Inc) order.
func (s PIDSet) Sorted() []PID {
	out := make([]PID, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Min returns the smallest member and true, or the zero PID and false if
// the set is empty. The membership layer elects the Min as coordinator.
func (s PIDSet) Min() (PID, bool) {
	var best PID
	found := false
	for p := range s {
		if !found || p.Less(best) {
			best, found = p, true
		}
	}
	return best, found
}

// String renders the set as "{a#1, b#1}" in sorted order.
func (s PIDSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}
