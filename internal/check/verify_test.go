package check

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/evs"
	"repro/internal/ids"
)

var (
	pa = ids.PID{Site: "a", Inc: 1}
	pb = ids.PID{Site: "b", Inc: 1}
	pc = ids.PID{Site: "c", Inc: 1}
)

func vid(e uint64, c ids.PID) ids.ViewID { return ids.ViewID{Epoch: e, Coord: c} }

func eview(id ids.ViewID, members ...ids.PID) core.EView {
	comp := ids.NewPIDSet(members...)
	return core.EView{ID: id, Members: comp.Sorted(), Structure: evs.Flat(id, comp)}
}

func msg(sender ids.PID, seq uint64, view ids.ViewID) core.MsgEvent {
	return core.MsgEvent{
		ID:    ids.MsgID{Sender: sender, Seq: seq},
		From:  sender,
		View:  view,
		Stamp: clock.Vector{sender: seq},
	}
}

// sendAndDeliver records a send plus delivery at each given process.
func sendAndDeliver(r *Recorder, m core.MsgEvent, at ...ids.PID) {
	r.OnSend(m.From, m.ID, m.View)
	for _, p := range at {
		r.OnDeliver(p, m)
	}
}

func errorsContaining(errs []error, substr string) int {
	n := 0
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			n++
		}
	}
	return n
}

func TestVerifyCleanTrace(t *testing.T) {
	r := NewRecorder()
	v1 := vid(1, pa)
	v2 := vid(2, pa)
	r.OnView(pa, core.ViewEvent{EView: eview(v1, pa)})
	r.OnView(pb, core.ViewEvent{EView: eview(vid(1, pb), pb)})
	// both install v2 = {a,b}
	r.OnView(pa, core.ViewEvent{EView: eview(v2, pa, pb)})
	r.OnView(pb, core.ViewEvent{EView: eview(v2, pa, pb)})
	m := msg(pa, 1, v2)
	sendAndDeliver(r, m, pa, pb)
	if errs := r.Verify(); len(errs) != 0 {
		t.Fatalf("clean trace produced errors: %v", errs)
	}
	s := r.Summary()
	if s.Processes != 2 || s.Sends != 1 || s.Deliveries != 2 || s.Views != 4 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestIntegrityCatchesDuplicateAndGhost(t *testing.T) {
	r := NewRecorder()
	v1 := vid(1, pa)
	r.OnView(pa, core.ViewEvent{EView: eview(v1, pa)})
	m := msg(pa, 1, v1)
	r.OnSend(pa, m.ID, v1)
	r.OnDeliver(pa, m)
	r.OnDeliver(pa, m) // duplicate
	ghost := msg(pb, 9, v1)
	r.OnDeliver(pa, ghost) // never sent
	errs := r.Verify()
	if errorsContaining(errs, "twice") != 1 {
		t.Errorf("duplicate not caught: %v", errs)
	}
	if errorsContaining(errs, "nobody sent") != 1 {
		t.Errorf("ghost not caught: %v", errs)
	}
}

func TestUniquenessCatchesCrossViewDelivery(t *testing.T) {
	r := NewRecorder()
	v1, v2 := vid(1, pa), vid(2, pa)
	r.OnView(pa, core.ViewEvent{EView: eview(v1, pa, pb)})
	r.OnView(pb, core.ViewEvent{EView: eview(v1, pa, pb)})
	m := msg(pa, 1, v1)
	r.OnSend(pa, m.ID, v1)
	r.OnDeliver(pa, m)
	wrong := m
	wrong.View = v2
	r.OnDeliver(pb, wrong)
	errs := r.Verify()
	if errorsContaining(errs, "uniqueness") == 0 {
		t.Errorf("cross-view delivery not caught: %v", errs)
	}
}

func TestAgreementCatchesDivergentDelivery(t *testing.T) {
	r := NewRecorder()
	v1, v2 := vid(1, pa), vid(2, pa)
	for _, p := range []ids.PID{pa, pb} {
		r.OnView(p, core.ViewEvent{EView: eview(v1, pa, pb)})
	}
	m := msg(pa, 1, v1)
	r.OnSend(pa, m.ID, v1)
	r.OnDeliver(pa, m) // only a delivers m
	for _, p := range []ids.PID{pa, pb} {
		r.OnView(p, core.ViewEvent{EView: eview(v2, pa, pb)})
	}
	errs := r.Verify()
	if errorsContaining(errs, "agreement") == 0 {
		t.Errorf("divergent delivery across shared transition not caught: %v", errs)
	}
}

func TestAgreementIgnoresDifferentNextViews(t *testing.T) {
	// a goes v1->v2, b goes v1->v3 (concurrent partitions): no agreement
	// constraint applies.
	r := NewRecorder()
	v1, v2, v3 := vid(1, pa), vid(2, pa), vid(2, pb)
	for _, p := range []ids.PID{pa, pb} {
		r.OnView(p, core.ViewEvent{EView: eview(v1, pa, pb)})
	}
	m := msg(pa, 1, v1)
	r.OnSend(pa, m.ID, v1)
	r.OnDeliver(pa, m)
	r.OnView(pa, core.ViewEvent{EView: eview(v2, pa)})
	r.OnView(pb, core.ViewEvent{EView: eview(v3, pb)})
	if errs := r.Verify(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
}

func TestViewOrderCatchesRegression(t *testing.T) {
	r := NewRecorder()
	r.OnView(pa, core.ViewEvent{EView: eview(vid(2, pa), pa)})
	r.OnView(pa, core.ViewEvent{EView: eview(vid(1, pa), pa)})
	errs := r.Verify()
	if errorsContaining(errs, "view order") == 0 {
		t.Errorf("view regression not caught: %v", errs)
	}
}

func TestViewOrderCatchesNonMembership(t *testing.T) {
	r := NewRecorder()
	r.OnView(pa, core.ViewEvent{EView: eview(vid(1, pb), pb)}) // a installs a view without a
	errs := r.Verify()
	if errorsContaining(errs, "without being a member") == 0 {
		t.Errorf("non-membership not caught: %v", errs)
	}
}

func TestEChangeTotalOrderCatchesDivergence(t *testing.T) {
	r := NewRecorder()
	v1 := vid(1, pa)
	ev := eview(v1, pa, pb)
	for _, p := range []ids.PID{pa, pb} {
		r.OnView(p, core.ViewEvent{EView: ev})
	}
	svX := ids.SubviewID{Origin: v1, Seq: 7}
	svY := ids.SubviewID{Origin: v1, Seq: 8}
	r.OnEChange(pa, core.EChangeEvent{EView: ev, Kind: core.EChangeSubviewMerge, Seq: 1, NewSubview: svX})
	r.OnEChange(pb, core.EChangeEvent{EView: ev, Kind: core.EChangeSubviewMerge, Seq: 1, NewSubview: svY})
	errs := r.Verify()
	if errorsContaining(errs, "e-change order") == 0 {
		t.Errorf("diverging e-change not caught: %v", errs)
	}
}

func TestEChangeTotalOrderAllowsPrefixes(t *testing.T) {
	r := NewRecorder()
	v1 := vid(1, pa)
	ev := eview(v1, pa, pb)
	for _, p := range []ids.PID{pa, pb} {
		r.OnView(p, core.ViewEvent{EView: ev})
	}
	sv := ids.SubviewID{Origin: v1, Seq: 7}
	ss := ids.SVSetID{Origin: v1, Seq: 7}
	r.OnEChange(pa, core.EChangeEvent{EView: ev, Kind: core.EChangeSVSetMerge, Seq: 1, NewSVSet: ss})
	r.OnEChange(pb, core.EChangeEvent{EView: ev, Kind: core.EChangeSVSetMerge, Seq: 1, NewSVSet: ss})
	r.OnEChange(pa, core.EChangeEvent{EView: ev, Kind: core.EChangeSubviewMerge, Seq: 2, NewSubview: sv})
	// pb applies only the first change (it partitioned away): legal prefix.
	if errs := r.Verify(); errorsContaining(errs, "e-change order") != 0 {
		t.Fatalf("prefix wrongly flagged: %v", errs)
	}
}

func TestEChangeCutCatchesInconsistency(t *testing.T) {
	r := NewRecorder()
	v1 := vid(1, pa)
	ev := eview(v1, pa, pb)
	for _, p := range []ids.PID{pa, pb} {
		r.OnView(p, core.ViewEvent{EView: ev})
	}
	// b delivered a's message m1 before applying change 1; a applies
	// change 1 before having sent m1 per its own vector. Reconstructed
	// cut: a's vector {a:0...}, b's vector {a:1} -> inconsistent.
	m1 := msg(pa, 1, v1)
	r.OnSend(pa, m1.ID, v1)
	r.OnDeliver(pb, m1)
	chStamp := clock.Vector{pb: 1}
	r.OnEChange(pa, core.EChangeEvent{EView: ev, Kind: core.EChangeSVSetMerge, Seq: 1, Stamp: chStamp})
	bStamp := clock.Vector{pb: 1} // b's own view of the change
	ech := core.EChangeEvent{EView: ev, Kind: core.EChangeSVSetMerge, Seq: 1, Stamp: bStamp}
	r.OnEChange(pb, ech)
	errs := r.Verify()
	if errorsContaining(errs, "consistent cut") == 0 {
		t.Errorf("inconsistent cut not caught: %v", errs)
	}
}

func TestStructurePreservationCatchesSplit(t *testing.T) {
	r := NewRecorder()
	v1, v2 := vid(1, pa), vid(2, pa)
	comp := ids.NewPIDSet(pa, pb)
	// v1: a,b share a subview (Flat).
	old := core.EView{ID: v1, Members: comp.Sorted(), Structure: evs.Flat(v1, comp)}
	// v2: a,b in separate subviews (Compose with no predecessors).
	split := core.EView{ID: v2, Members: comp.Sorted(), Structure: evs.Compose(v2, comp, nil)}
	r.OnView(pa, core.ViewEvent{EView: old})
	r.OnView(pa, core.ViewEvent{EView: split})
	errs := r.Verify()
	if errorsContaining(errs, "preservation") == 0 {
		t.Errorf("structure split not caught: %v", errs)
	}
}

func TestStructurePreservationExemptsDifferentPaths(t *testing.T) {
	// a transitions v1 -> v3 directly; b goes v1 -> v2(singleton) -> v3.
	// b's grouping legitimately shrank through its singleton view, so a
	// seeing b in a different subview in v3 is NOT a violation.
	r := NewRecorder()
	v1, v2, v3 := vid(1, pa), vid(2, pb), vid(3, pa)
	comp13 := ids.NewPIDSet(pa, pb)
	shared := core.EView{ID: v1, Members: comp13.Sorted(), Structure: evs.Flat(v1, comp13)}
	split := core.EView{ID: v3, Members: comp13.Sorted(), Structure: evs.Compose(v3, comp13, nil)}

	r.OnView(pa, core.ViewEvent{EView: shared})
	r.OnView(pa, core.ViewEvent{EView: split})

	r.OnView(pb, core.ViewEvent{EView: shared})
	r.OnView(pb, core.ViewEvent{EView: eview(v2, pb)}) // b alone in between
	r.OnView(pb, core.ViewEvent{EView: split})

	errs := r.Verify()
	if n := errorsContaining(errs, "preservation"); n != 0 {
		t.Errorf("different-path split wrongly flagged: %v", errs)
	}
}

func TestStructurePreservationStillCatchesSamePathSplit(t *testing.T) {
	// Both a and b transition v1 -> v3 directly; splitting them is a
	// real P6.3 violation.
	r := NewRecorder()
	v1, v3 := vid(1, pa), vid(3, pa)
	comp := ids.NewPIDSet(pa, pb)
	shared := core.EView{ID: v1, Members: comp.Sorted(), Structure: evs.Flat(v1, comp)}
	split := core.EView{ID: v3, Members: comp.Sorted(), Structure: evs.Compose(v3, comp, nil)}
	for _, p := range []ids.PID{pa, pb} {
		r.OnView(p, core.ViewEvent{EView: shared})
		r.OnView(p, core.ViewEvent{EView: split})
	}
	errs := r.Verify()
	if errorsContaining(errs, "preservation") == 0 {
		t.Errorf("same-path split not caught: %v", errs)
	}
}

func TestStructureValidationCatchesCorruptEView(t *testing.T) {
	r := NewRecorder()
	v1 := vid(1, pa)
	bad := core.EView{
		ID:        v1,
		Members:   []ids.PID{pa, pb},
		Structure: evs.Flat(v1, ids.NewPIDSet(pa)), // misses pb
	}
	r.OnView(pa, core.ViewEvent{EView: bad})
	errs := r.Verify()
	if errorsContaining(errs, "structure") == 0 {
		t.Errorf("invalid structure not caught: %v", errs)
	}
}

func TestSortErrors(t *testing.T) {
	r := NewRecorder()
	r.OnView(pa, core.ViewEvent{EView: eview(vid(2, pa), pa)})
	r.OnView(pa, core.ViewEvent{EView: eview(vid(1, pa), pa)})
	r.OnView(pb, core.ViewEvent{EView: eview(vid(2, pb), pb)})
	r.OnView(pb, core.ViewEvent{EView: eview(vid(1, pb), pb)})
	errs := r.Verify()
	SortErrors(errs)
	for i := 1; i < len(errs); i++ {
		if errs[i-1].Error() > errs[i].Error() {
			t.Fatal("SortErrors did not sort")
		}
	}
}
