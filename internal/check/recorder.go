// Package check records per-process event traces and verifies the
// view-synchrony and enriched-view-synchrony properties over them:
//
//	P2.1 Agreement, P2.2 Uniqueness, P2.3 Integrity (Section 2)
//	P6.1 Total order, P6.2 Causal cuts, P6.3 Structure (Section 6)
//
// A Recorder implements core.Observer; attach one to every process in a
// test or experiment (Options.Observer), run any fault schedule, then
// call Verify. Violations come back as errors, one per finding.
package check

import (
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
)

// entryKind discriminates trace entries.
type entryKind int

const (
	entryDeliver entryKind = iota + 1
	entryView
	entryEChange
)

// entry is one recorded event at one process, in local order.
type entry struct {
	kind entryKind
	msg  core.MsgEvent
	view core.ViewEvent
	ech  core.EChangeEvent
}

// sendRec is one recorded multicast.
type sendRec struct {
	id   ids.MsgID
	view ids.ViewID
}

// procTrace is the ordered history of one process.
type procTrace struct {
	pid     ids.PID
	entries []entry
	sends   []sendRec
}

// Recorder collects traces from any number of processes. Safe for
// concurrent use (observer callbacks arrive from every process's
// protocol goroutine).
type Recorder struct {
	mu     sync.Mutex
	traces map[ids.PID]*procTrace
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{traces: make(map[ids.PID]*procTrace)}
}

var _ core.Observer = (*Recorder)(nil)

func (r *Recorder) trace(pid ids.PID) *procTrace {
	t, ok := r.traces[pid]
	if !ok {
		t = &procTrace{pid: pid}
		r.traces[pid] = t
	}
	return t
}

// OnSend implements core.Observer.
func (r *Recorder) OnSend(self ids.PID, id ids.MsgID, view ids.ViewID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.trace(self)
	t.sends = append(t.sends, sendRec{id: id, view: view})
}

// OnDeliver implements core.Observer.
func (r *Recorder) OnDeliver(self ids.PID, ev core.MsgEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.trace(self)
	t.entries = append(t.entries, entry{kind: entryDeliver, msg: ev})
}

// OnView implements core.Observer.
func (r *Recorder) OnView(self ids.PID, ev core.ViewEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.trace(self)
	t.entries = append(t.entries, entry{kind: entryView, view: ev})
}

// OnEChange implements core.Observer.
func (r *Recorder) OnEChange(self ids.PID, ev core.EChangeEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.trace(self)
	t.entries = append(t.entries, entry{kind: entryEChange, ech: ev})
}

// Summary aggregates trace sizes, useful in experiment reports.
type Summary struct {
	Processes  int
	Sends      int
	Deliveries int
	Views      int
	EChanges   int
}

// Summary returns aggregate counts over all traces.
func (r *Recorder) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Summary
	s.Processes = len(r.traces)
	for _, t := range r.traces {
		s.Sends += len(t.sends)
		for _, e := range t.entries {
			switch e.kind {
			case entryDeliver:
				s.Deliveries++
			case entryView:
				s.Views++
			case entryEChange:
				s.EChanges++
			}
		}
	}
	return s
}

// snapshot returns a deep-enough copy of the traces for verification
// outside the lock.
func (r *Recorder) snapshot() map[ids.PID]*procTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[ids.PID]*procTrace, len(r.traces))
	for pid, t := range r.traces {
		cp := &procTrace{pid: pid}
		cp.entries = append(cp.entries, t.entries...)
		cp.sends = append(cp.sends, t.sends...)
		out[pid] = cp
	}
	return out
}
