package check_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/vstest"
)

// TestRandomizedFaultSchedules runs seeded random fault-injection
// schedules against a live group and then verifies every paper property
// (P2.1–P2.3, P6.1–P6.3) over the recorded traces. This is the central
// correctness test of the whole stack.
func TestRandomizedFaultSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized schedules are slow")
	}
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runRandomSchedule(t, seed)
		})
	}
}

func runRandomSchedule(t *testing.T, seed int64) {
	const nProcs = 5
	r := rand.New(rand.NewSource(seed))
	rec := check.NewRecorder()
	n := vstest.NewNet(t, seed)
	opts := vstest.FastOptions()
	opts.Observer = rec

	procs := n.StartN(nProcs, opts)
	sites := make([]string, nProcs)
	for i := range procs {
		sites[i] = vstest.SiteName(i)
	}
	vstest.WaitConverged(t, procs, 5*time.Second)

	live := make(map[string]*core.Process, nProcs)
	for i, p := range procs {
		live[sites[i]] = p
	}
	partitioned := false

	randLive := func() *core.Process {
		keys := make([]string, 0, len(live))
		for s := range live {
			keys = append(keys, s)
		}
		if len(keys) == 0 {
			return nil
		}
		// map order is random but not seeded; sort for determinism
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		return live[keys[r.Intn(len(keys))]]
	}

	for step := 0; step < 30; step++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3: // multicast burst from a random live process
			if p := randLive(); p != nil {
				for i := 0; i < 1+r.Intn(5); i++ {
					_ = p.Multicast([]byte(fmt.Sprintf("s%d-%d-%d", seed, step, i)))
				}
			}
		case 4: // crash one process (keep at least two live)
			if len(live) > 2 {
				p := randLive()
				delete(live, p.Site())
				p.Crash()
			}
		case 5: // recover a crashed site
			for _, s := range sites {
				if _, ok := live[s]; !ok {
					live[s] = n.Start(s, opts)
					break
				}
			}
		case 6: // partition into two random halves
			if !partitioned {
				cut := 1 + r.Intn(len(sites)-1)
				n.Fabric.SetPartitions(sites[:cut], sites[cut:])
				partitioned = true
			}
		case 7: // heal
			if partitioned {
				n.Fabric.Heal()
				partitioned = false
			}
		case 8: // request a random sv-set merge
			if p := randLive(); p != nil {
				st := p.CurrentView().Structure
				sss := st.SVSets()
				if len(sss) >= 2 {
					i, j := r.Intn(len(sss)), r.Intn(len(sss))
					if i != j {
						_ = p.SVSetMerge(sss[i], sss[j])
					}
				}
			}
		case 9: // request a random subview merge (may be a legal no-op)
			if p := randLive(); p != nil {
				st := p.CurrentView().Structure
				svs := st.Subviews()
				if len(svs) >= 2 {
					i, j := r.Intn(len(svs)), r.Intn(len(svs))
					if i != j {
						_ = p.SubviewMerge(svs[i], svs[j])
					}
				}
			}
		}
		time.Sleep(time.Duration(r.Intn(30)) * time.Millisecond)
	}

	// Stabilize: heal everything and let the survivors converge.
	n.Fabric.Heal()
	var rest []*core.Process
	for _, p := range live {
		rest = append(rest, p)
	}
	vstest.WaitConverged(t, rest, 10*time.Second)
	time.Sleep(150 * time.Millisecond) // drain in-flight deliveries

	errs := rec.Verify()
	check.SortErrors(errs)
	for _, err := range errs {
		t.Error(err)
	}
	if len(errs) == 0 {
		s := rec.Summary()
		t.Logf("clean: %d processes, %d sends, %d deliveries, %d views, %d e-changes",
			s.Processes, s.Sends, s.Deliveries, s.Views, s.EChanges)
	}
}

// TestRandomizedFlatMode runs a random schedule with the enriched
// machinery off: the §2 properties must hold for the traditional view
// abstraction too (the structure checks degenerate to the flat single
// subview, which trivially satisfies P6.x).
func TestRandomizedFlatMode(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized schedules are slow")
	}
	rec := check.NewRecorder()
	n := vstest.NewNet(t, 55)
	opts := vstest.FastOptions()
	opts.Enriched = false
	opts.Observer = rec
	procs := n.StartN(4, opts)
	vstest.WaitConverged(t, procs, 5*time.Second)

	n.Fabric.SetPartitions([]string{"a", "b"}, []string{"c", "d"})
	for i := 0; i < 20; i++ {
		_ = procs[i%4].Multicast([]byte(fmt.Sprintf("f%d", i)))
		time.Sleep(2 * time.Millisecond)
	}
	vstest.WaitConverged(t, procs[:2], 10*time.Second)
	vstest.WaitConverged(t, procs[2:], 10*time.Second)
	n.Fabric.Heal()
	vstest.WaitConverged(t, procs, 10*time.Second)
	time.Sleep(100 * time.Millisecond)

	if errs := rec.Verify(); len(errs) != 0 {
		for _, err := range errs {
			t.Error(err)
		}
	}
	// Flat structure throughout.
	for _, p := range procs {
		if p.CurrentView().Structure.NumSubviews() != 1 {
			t.Fatalf("flat mode produced %d subviews", p.CurrentView().Structure.NumSubviews())
		}
	}
}

// TestRandomizedWithMessageLoss injects 2% random message loss on top of
// a fault schedule. Lost data messages stall causal delivery until the
// next view change's flush repairs the gap — the properties must still
// hold at view boundaries.
func TestRandomizedWithMessageLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized schedules are slow")
	}
	rec := check.NewRecorder()
	n := vstest.NewNetLossy(t, 77, 0.02)
	opts := vstest.FastOptions()
	opts.Observer = rec
	procs := n.StartN(4, opts)
	vstest.WaitConverged(t, procs, 15*time.Second)

	for round := 0; round < 3; round++ {
		for i := 0; i < 15; i++ {
			_ = procs[i%4].Multicast([]byte(fmt.Sprintf("l%d-%d", round, i)))
		}
		// A crash + recovery forces a flush that repairs loss-induced
		// delivery gaps.
		victim := procs[3]
		victim.Crash()
		vstest.WaitConverged(t, procs[:3], 20*time.Second)
		procs[3] = n.Start(victim.Site(), opts)
		vstest.WaitConverged(t, procs, 20*time.Second)
	}
	time.Sleep(150 * time.Millisecond)

	errs := rec.Verify()
	check.SortErrors(errs)
	for _, err := range errs {
		t.Error(err)
	}
}

// TestHealthyRunIsClean is the no-fault baseline: plain multicasting in a
// stable group must verify trivially.
func TestHealthyRunIsClean(t *testing.T) {
	rec := check.NewRecorder()
	n := vstest.NewNet(t, 99)
	opts := vstest.FastOptions()
	opts.Observer = rec
	procs := n.StartN(3, opts)
	vstest.WaitConverged(t, procs, 5*time.Second)
	for i := 0; i < 20; i++ {
		_ = procs[i%3].Multicast([]byte(fmt.Sprintf("m%d", i)))
	}
	time.Sleep(100 * time.Millisecond)
	if errs := rec.Verify(); len(errs) != 0 {
		for _, err := range errs {
			t.Error(err)
		}
	}
}
