package check

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ids"
)

// Verify runs every property check over the recorded traces and returns
// all violations found (nil means every property held).
func (r *Recorder) Verify() []error {
	traces := r.snapshot()
	var errs []error
	errs = append(errs, checkIntegrity(traces)...)
	errs = append(errs, checkUniqueness(traces)...)
	errs = append(errs, checkAgreement(traces)...)
	errs = append(errs, checkViewOrder(traces)...)
	errs = append(errs, checkStructures(traces)...)
	errs = append(errs, checkEChangeTotalOrder(traces)...)
	errs = append(errs, checkEChangeCuts(traces)...)
	errs = append(errs, checkStructurePreservation(traces)...)
	return errs
}

// checkIntegrity verifies P2.3: a message is delivered at most once per
// process, and only if some process multicast it.
func checkIntegrity(traces map[ids.PID]*procTrace) []error {
	var errs []error
	sent := make(map[ids.MsgID]ids.ViewID)
	for _, t := range traces {
		for _, s := range t.sends {
			sent[s.id] = s.view
		}
	}
	for pid, t := range traces {
		seen := make(map[ids.MsgID]struct{})
		for _, e := range t.entries {
			if e.kind != entryDeliver {
				continue
			}
			id := e.msg.ID
			if _, dup := seen[id]; dup {
				errs = append(errs, fmt.Errorf("integrity: %v delivered %v twice", pid, id))
			}
			seen[id] = struct{}{}
			if _, ok := sent[id]; !ok {
				errs = append(errs, fmt.Errorf("integrity: %v delivered %v which nobody sent", pid, id))
			}
		}
	}
	return errs
}

// checkUniqueness verifies P2.2: each message is delivered in at most one
// view (and exactly the view it was multicast in).
func checkUniqueness(traces map[ids.PID]*procTrace) []error {
	var errs []error
	sent := make(map[ids.MsgID]ids.ViewID)
	for _, t := range traces {
		for _, s := range t.sends {
			sent[s.id] = s.view
		}
	}
	deliveredIn := make(map[ids.MsgID]ids.ViewID)
	for pid, t := range traces {
		for _, e := range t.entries {
			if e.kind != entryDeliver {
				continue
			}
			id, view := e.msg.ID, e.msg.View
			if prev, ok := deliveredIn[id]; ok && prev != view {
				errs = append(errs, fmt.Errorf("uniqueness: %v delivered in views %v and %v", id, prev, view))
			}
			deliveredIn[id] = view
			if origin, ok := sent[id]; ok && origin != view {
				errs = append(errs, fmt.Errorf("uniqueness: %v sent in %v but delivered in %v at %v", id, origin, view, pid))
			}
		}
	}
	return errs
}

// transition is one process's passage from view From to view To, with the
// set of messages it delivered in From.
type transition struct {
	pid       ids.PID
	from, to  ids.ViewID
	delivered map[ids.MsgID]struct{}
}

// transitions extracts every completed view transition from a trace.
func transitions(t *procTrace) []transition {
	var out []transition
	var cur ids.ViewID
	delivered := make(map[ids.MsgID]struct{})
	started := false
	for _, e := range t.entries {
		switch e.kind {
		case entryDeliver:
			if e.msg.Unicast {
				continue // addressed traffic is outside Agreement
			}
			delivered[e.msg.ID] = struct{}{}
		case entryView:
			next := e.view.EView.ID
			if started {
				out = append(out, transition{pid: t.pid, from: cur, to: next, delivered: delivered})
			}
			cur = next
			started = true
			delivered = make(map[ids.MsgID]struct{})
		}
	}
	return out
}

// checkAgreement verifies P2.1: any two processes that survive from the
// same view to the same next view delivered the same message set in the
// old view.
func checkAgreement(traces map[ids.PID]*procTrace) []error {
	var errs []error
	byEdge := make(map[[2]ids.ViewID][]transition)
	for _, t := range traces {
		for _, tr := range transitions(t) {
			key := [2]ids.ViewID{tr.from, tr.to}
			byEdge[key] = append(byEdge[key], tr)
		}
	}
	for edge, trs := range byEdge {
		if len(trs) < 2 {
			continue
		}
		ref := trs[0]
		for _, tr := range trs[1:] {
			if len(tr.delivered) != len(ref.delivered) {
				errs = append(errs, fmt.Errorf(
					"agreement: %v->%v: %v delivered %d msgs, %v delivered %d",
					edge[0], edge[1], ref.pid, len(ref.delivered), tr.pid, len(tr.delivered)))
				continue
			}
			for id := range ref.delivered {
				if _, ok := tr.delivered[id]; !ok {
					errs = append(errs, fmt.Errorf(
						"agreement: %v->%v: %v delivered %v, %v did not",
						edge[0], edge[1], ref.pid, id, tr.pid))
				}
			}
		}
	}
	return errs
}

// checkViewOrder verifies that each process installs strictly increasing
// view ids and is always a member of the views it installs.
func checkViewOrder(traces map[ids.PID]*procTrace) []error {
	var errs []error
	for pid, t := range traces {
		var prev ids.ViewID
		started := false
		for _, e := range t.entries {
			if e.kind != entryView {
				continue
			}
			v := e.view.EView
			if started && !prev.Less(v.ID) {
				errs = append(errs, fmt.Errorf("view order: %v installed %v after %v", pid, v.ID, prev))
			}
			prev = v.ID
			started = true
			if !v.HasMember(pid) {
				errs = append(errs, fmt.Errorf("view order: %v installed %v without being a member", pid, v.ID))
			}
		}
	}
	return errs
}

// checkStructures verifies that every delivered structure satisfies the
// §6.1 invariants against its view composition.
func checkStructures(traces map[ids.PID]*procTrace) []error {
	var errs []error
	for pid, t := range traces {
		for _, e := range t.entries {
			var v core.EView
			switch e.kind {
			case entryView:
				v = e.view.EView
			case entryEChange:
				v = e.ech.EView
			default:
				continue
			}
			if err := v.Structure.Validate(v.Comp()); err != nil {
				errs = append(errs, fmt.Errorf("structure: %v in view %v: %w", pid, v.ID, err))
			}
		}
	}
	return errs
}

// echKey summarizes one e-view change for cross-process comparison.
type echKey struct {
	seq  uint32
	kind core.EChangeKind
	sv   ids.SubviewID
	ss   ids.SVSetID
}

// checkEChangeTotalOrder verifies P6.1: within each view, every process
// applies a prefix of one common, totally ordered sequence of e-view
// changes.
func checkEChangeTotalOrder(traces map[ids.PID]*procTrace) []error {
	var errs []error
	perView := make(map[ids.ViewID]map[ids.PID][]echKey)
	for pid, t := range traces {
		for _, e := range t.entries {
			if e.kind != entryEChange {
				continue
			}
			v := e.ech.EView.ID
			if perView[v] == nil {
				perView[v] = make(map[ids.PID][]echKey)
			}
			perView[v][pid] = append(perView[v][pid], echKey{
				seq:  e.ech.Seq,
				kind: e.ech.Kind,
				sv:   e.ech.NewSubview,
				ss:   e.ech.NewSVSet,
			})
		}
	}
	for view, byProc := range perView {
		// Find the longest sequence; all others must be a prefix of it.
		var longest []echKey
		for _, seq := range byProc {
			if len(seq) > len(longest) {
				longest = seq
			}
		}
		for pid, seq := range byProc {
			for i, k := range seq {
				if uint32(i+1) != k.seq {
					errs = append(errs, fmt.Errorf(
						"e-change order: %v in %v applied seq %d at position %d", pid, view, k.seq, i+1))
					continue
				}
				if longest[i] != k {
					errs = append(errs, fmt.Errorf(
						"e-change order: %v in %v diverges at seq %d: %+v vs %+v",
						pid, view, i+1, k, longest[i]))
				}
			}
		}
	}
	return errs
}

// checkEChangeCuts verifies P6.2: each e-view change defines a consistent
// cut. For every process, the vector clock at the instant it applies
// change s is reconstructed from its delivery history; the resulting
// per-process vectors must form a consistent cut.
func checkEChangeCuts(traces map[ids.PID]*procTrace) []error {
	var errs []error
	// cut[(view, seq)][pid] = vector at apply instant
	type cutKey struct {
		view ids.ViewID
		seq  uint32
	}
	cuts := make(map[cutKey]map[ids.PID]clock.Vector)
	for pid, t := range traces {
		var curView ids.ViewID
		vc := clock.NewVector()
		for _, e := range t.entries {
			switch e.kind {
			case entryView:
				curView = e.view.EView.ID
				vc = clock.NewVector()
			case entryDeliver:
				if e.msg.View == curView {
					vc.Merge(e.msg.Stamp)
				}
			case entryEChange:
				vc.Merge(e.ech.Stamp)
				key := cutKey{view: e.ech.EView.ID, seq: e.ech.Seq}
				if cuts[key] == nil {
					cuts[key] = make(map[ids.PID]clock.Vector)
				}
				cuts[key][pid] = vc.Clone()
			}
		}
	}
	for key, cut := range cuts {
		if !clock.ConsistentCut(cut) {
			errs = append(errs, fmt.Errorf(
				"e-change cut: view %v change %d is not a consistent cut", key.view, key.seq))
		}
	}
	return errs
}

// checkStructurePreservation verifies P6.3: for each process's view
// transition v -> v', processes that shared a subview (sv-set) in the
// final structure of v and made the *same* transition still share one
// in v'. A peer that reached v' through a different intermediate view
// (e.g. a transient singleton during asymmetric partition detection) is
// exempt: its grouping legitimately shrank along its own path, and
// re-admitting it into the subview would require an application merge.
func checkStructurePreservation(traces map[ids.PID]*procTrace) []error {
	var errs []error
	// predOf[(pid, view)] = the view pid transitioned from when
	// installing view.
	type key struct {
		pid  ids.PID
		view ids.ViewID
	}
	predOf := make(map[key]ids.ViewID)
	for pid, t := range traces {
		var cur ids.ViewID
		started := false
		for _, e := range t.entries {
			if e.kind != entryView {
				continue
			}
			v := e.view.EView.ID
			if started {
				predOf[key{pid, v}] = cur
			}
			cur = v
			started = true
		}
	}
	samePath := func(y ids.PID, old, next ids.ViewID) bool {
		if pred, ok := predOf[key{y, next}]; ok {
			return pred == old
		}
		// No recorded transition for y (e.g. no trace): assume the same
		// path, which keeps the check conservative for partial traces.
		return true
	}
	for pid, t := range traces {
		var prev *core.EView // final enriched view before transition
		for _, e := range t.entries {
			switch e.kind {
			case entryEChange:
				v := e.ech.EView
				prev = &v
			case entryView:
				v := e.view.EView
				if prev != nil {
					errs = append(errs, comparePreservation(pid, *prev, v, samePath)...)
				}
				prev = &v
			}
		}
	}
	return errs
}

func comparePreservation(pid ids.PID, old, next core.EView, samePath func(ids.PID, ids.ViewID, ids.ViewID) bool) []error {
	var errs []error
	survivors := old.Comp().Intersect(next.Comp()).Sorted()
	for i := 0; i < len(survivors); i++ {
		for j := i + 1; j < len(survivors); j++ {
			x, y := survivors[i], survivors[j]
			if !samePath(x, old.ID, next.ID) || !samePath(y, old.ID, next.ID) {
				continue
			}
			oldX, okX := old.Structure.SubviewOf(x)
			oldY, okY := old.Structure.SubviewOf(y)
			if !okX || !okY {
				continue
			}
			newX, _ := next.Structure.SubviewOf(x)
			newY, _ := next.Structure.SubviewOf(y)
			if oldX == oldY && newX != newY {
				errs = append(errs, fmt.Errorf(
					"preservation: %v: %v and %v shared subview %v in %v but are split in %v",
					pid, x, y, oldX, old.ID, next.ID))
			}
			oldSSX, _ := old.Structure.SVSetOf(oldX)
			oldSSY, _ := old.Structure.SVSetOf(oldY)
			newSSX, _ := next.Structure.SVSetOf(newX)
			newSSY, _ := next.Structure.SVSetOf(newY)
			if oldSSX == oldSSY && newSSX != newSSY {
				errs = append(errs, fmt.Errorf(
					"preservation: %v: %v and %v shared sv-set %v in %v but are split in %v",
					pid, x, y, oldSSX, old.ID, next.ID))
			}
		}
	}
	return errs
}

// SortErrors orders verification errors deterministically by message
// (handy for stable test output).
func SortErrors(errs []error) {
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
}
