// Scrape-perturbation benchmark: the acceptance bar for the admin
// endpoint is that polling /metrics at 10 Hz perturbs E1-style
// view-change agree p95 by under 5%. Run both and compare:
//
//	go test ./internal/admin -bench AgreeP95 -benchtime 30x
//
// Each iteration is one forced suspect/recover view-change cycle on a
// 5-member simnet group; the benchmark reports the agree-phase p95
// across all cycles as agree-p95-ms. The scraping variant hammers
// /metrics and /status at 10 Hz for the whole run.
package admin_test

import (
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/simnet"
	"repro/internal/stable"
	"repro/internal/vstest"
)

func benchAgreeP95(b *testing.B, scrapeEvery time.Duration) {
	const n = 5
	fabric := simnet.New(simnet.Config{Seed: 42})
	defer fabric.Close()
	reg := stable.NewRegistry()

	metrics := obs.NewRegistry()
	sink := obs.NewMemorySink()
	tracer := obs.NewTracer(0, sink)
	opts := vstest.FastOptions()
	opts.Observer = obs.NewCollector(metrics, tracer)

	srv, err := admin.New("127.0.0.1:0", metrics, tracer)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := core.Start(fabric, reg, vstest.SiteName(i), opts)
		if err != nil {
			b.Fatalf("Start: %v", err)
		}
		defer p.Crash()
		go func(p *core.Process) {
			for range p.Events() {
			}
		}(p)
		srv.Register(p.PID().String(), admin.Member{Status: p.StatusSnapshot})
		procs = append(procs, p)
	}
	vstest.WaitConverged(b, procs, 30*time.Second)

	// The scraper plays the role of a Prometheus server plus a vsmon
	// instance pointed at this process.
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	if scrapeEvery > 0 {
		go func() {
			defer close(scrapeDone)
			client := &http.Client{Timeout: time.Second}
			tick := time.NewTicker(scrapeEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopScrape:
					return
				case <-tick.C:
					for _, path := range []string{"/metrics", "/status"} {
						resp, err := client.Get("http://" + srv.Addr() + path)
						if err != nil {
							continue
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	} else {
		close(scrapeDone)
	}

	victim := procs[n-1]
	others := procs[:n-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range others {
			_ = p.ForceSuspect(victim.PID())
		}
		vstest.WaitConverged(b, others, 30*time.Second)
		for _, p := range others {
			_ = p.Unforce(victim.PID())
		}
		vstest.WaitConverged(b, procs, 30*time.Second)
	}
	b.StopTimer()
	close(stopScrape)
	<-scrapeDone

	prof := profile.FromEvents(sink.Events())
	b.ReportMetric(float64(prof.Phases.Agree.P95)/float64(time.Millisecond), "agree-p95-ms")
	b.ReportMetric(float64(prof.Phases.Total.P95)/float64(time.Millisecond), "total-p95-ms")
}

func BenchmarkAgreeP95Baseline(b *testing.B)   { benchAgreeP95(b, 0) }
func BenchmarkAgreeP95Scrape10Hz(b *testing.B) { benchAgreeP95(b, 100*time.Millisecond) }
