package admin

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

func report(pid, view string, asOf time.Time) MemberReport {
	return MemberReport{
		Endpoint: "ep-" + pid,
		Status: MemberStatus{Status: core.Status{
			PID: pid, ViewID: view, Size: 3, AsOf: asOf,
		}},
	}
}

func findMember(t *testing.T, a Assessment, pid string) Health {
	t.Helper()
	for _, h := range a.Members {
		if h.PID == pid {
			return h
		}
	}
	t.Fatalf("no member %s in %+v", pid, a.Members)
	return Health{}
}

// TestMonitorDivergenceGrace: view-id disagreement is only flagged
// once it outlasts the grace window, and heals (and resets the window)
// when the member rejoins the majority.
func TestMonitorDivergenceGrace(t *testing.T) {
	m := &Monitor{Grace: time.Second, StaleAfter: -1}
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	round := func(now time.Time, cView string) Assessment {
		return m.Assess(now, []MemberReport{
			report("a#1", "v1", now),
			report("b#1", "v1", now),
			report("c#1", cView, now),
		})
	}

	// First observation of disagreement: within grace, not flagged,
	// but the duration is already reported.
	a := round(t0, "v0")
	if a.Majority != "v1" {
		t.Fatalf("majority = %q, want v1", a.Majority)
	}
	h := findMember(t, a, "c#1")
	if h.Divergent || h.DivergentFor != 0 {
		t.Errorf("first round: %+v, want not yet divergent", h)
	}
	if !a.Healthy {
		t.Errorf("first round should still be healthy: %+v", a)
	}

	// Still disagreeing short of the window: not flagged.
	h = findMember(t, round(t0.Add(900*time.Millisecond), "v0"), "c#1")
	if h.Divergent {
		t.Errorf("within grace: %+v", h)
	}
	if h.DivergentFor != 900*time.Millisecond {
		t.Errorf("DivergentFor = %v, want 900ms", h.DivergentFor)
	}

	// Past the window: flagged, group unhealthy.
	a = round(t0.Add(1100*time.Millisecond), "v0")
	h = findMember(t, a, "c#1")
	if !h.Divergent || a.Healthy {
		t.Errorf("past grace: %+v healthy=%v", h, a.Healthy)
	}

	// Healed: flag clears and the anchor resets — a fresh disagreement
	// starts a fresh window.
	a = round(t0.Add(2*time.Second), "v1")
	if h := findMember(t, a, "c#1"); h.Divergent || !a.Healthy {
		t.Errorf("healed: %+v healthy=%v", h, a.Healthy)
	}
	h = findMember(t, round(t0.Add(3*time.Second), "v2"), "c#1")
	if h.Divergent || h.DivergentFor != 0 {
		t.Errorf("fresh disagreement reuses old anchor: %+v", h)
	}
}

// TestMonitorStuckProposal: a blocked member (or a coordinator with an
// open round) whose proposal age crosses the threshold is flagged.
func TestMonitorStuckProposal(t *testing.T) {
	m := &Monitor{Stuck: time.Second, StaleAfter: -1}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	blocked := report("a#1", "v1", now)
	blocked.Status.Blocked = true
	blocked.Status.AckedProposal = "v2"
	blocked.Status.ProposalAge = 2 * time.Second

	coord := report("b#1", "v1", now)
	coord.Status.Coordinating = true
	coord.Status.CoordProposal = "v2"
	coord.Status.ProposalAge = 1500 * time.Millisecond

	fresh := report("c#1", "v1", now)
	fresh.Status.Blocked = true
	fresh.Status.AckedProposal = "v2"
	fresh.Status.ProposalAge = 200 * time.Millisecond

	a := m.Assess(now, []MemberReport{blocked, coord, fresh})
	if h := findMember(t, a, "a#1"); !h.Stuck {
		t.Errorf("blocked member not flagged: %+v", h)
	}
	if h := findMember(t, a, "b#1"); !h.Stuck {
		t.Errorf("coordinator not flagged: %+v", h)
	}
	if h := findMember(t, a, "c#1"); h.Stuck {
		t.Errorf("fresh proposal flagged: %+v", h)
	}
	if a.Healthy {
		t.Error("assessment healthy despite stuck members")
	}
}

// TestMonitorUnreachableAndStale: fetch errors and stopped-publishing
// members are flagged; a negative StaleAfter disables the staleness
// check for replayed reports.
func TestMonitorUnreachableAndStale(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	m := &Monitor{StaleAfter: time.Second}
	stale := report("a#1", "v1", now.Add(-5*time.Second))
	down := MemberReport{Endpoint: "ep-x", Err: errors.New("connection refused")}
	a := m.Assess(now, []MemberReport{stale, down, report("b#1", "v1", now)})
	if h := findMember(t, a, "a#1"); !h.Stale {
		t.Errorf("stale member not flagged: %+v", h)
	}
	var unreachable *Health
	for i := range a.Members {
		if a.Members[i].Unreachable {
			unreachable = &a.Members[i]
		}
	}
	if unreachable == nil || unreachable.Endpoint != "ep-x" {
		t.Errorf("no unreachable row for ep-x: %+v", a.Members)
	}
	if a.Healthy {
		t.Error("assessment healthy despite stale + unreachable")
	}

	off := &Monitor{StaleAfter: -1}
	a = off.Assess(now, []MemberReport{stale, report("b#1", "v1", now)})
	if h := findMember(t, a, "a#1"); h.Stale {
		t.Errorf("StaleAfter<0 still flagged: %+v", h)
	}
}

// TestMonitorMajorityTieBreak: equal view-id camps resolve to the
// lexically smallest id, deterministically.
func TestMonitorMajorityTieBreak(t *testing.T) {
	m := &Monitor{StaleAfter: -1}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	a := m.Assess(now, []MemberReport{
		report("a#1", "vB", now),
		report("b#1", "vA", now),
	})
	if a.Majority != "vA" {
		t.Errorf("majority = %q, want vA (lexical tie-break)", a.Majority)
	}
}
