// Integration tests for the admin endpoint against live groups: a
// gobject cluster whose Figure-1 mode flip (N → R) is observed through
// real HTTP scrapes of /status mid-partition, and a UDP group whose
// injected install-propagation mismatch (the e8m recipe: a DropFilter
// eats the coordinator's Install to one member) is flagged as
// divergence by the vsmon Monitor before the reconciliation fast path
// heals it.
//
// These live in package admin_test: they pull in the whole stack
// (core, gobject, transports) that package admin itself must not
// depend on.
package admin_test

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/gobject"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/quorum"
	"repro/internal/stable"
	"repro/internal/transport"
	"repro/internal/transport/udp"
	"repro/internal/transport/wire"
	"repro/internal/vstest"
)

// nullObject is the smallest gobject.Object that still has a real mode
// function: majority-quorum over the member sites, no state, no
// transfer. It exists so the test exercises the Host's mode machine —
// which the admin endpoint reports — without dragging in an
// application.
type nullObject struct {
	rw quorum.RW
}

func (o *nullObject) ModeFunc(self ids.PID) modes.Func {
	return modes.QuorumEnriched(self, o.rw)
}
func (o *nullObject) WasNormal(cluster ids.PIDSet) bool { return o.rw.CanWrite(cluster) }
func (o *nullObject) Snapshot() ([]byte, error)         { return []byte("{}"), nil }
func (o *nullObject) MergeSnapshot(ids.PID, []byte) error {
	return nil
}
func (o *nullObject) NeedPull(core.EView, map[ids.PID][]byte) (ids.PID, bool) {
	return ids.PID{}, false
}
func (o *nullObject) Apply(core.MsgEvent)              {}
func (o *nullObject) MarshalCritical() ([]byte, error) { return nil, nil }
func (o *nullObject) MarshalBulk() ([]byte, error)     { return nil, nil }
func (o *nullObject) ApplyCritical([]byte) error       { return nil }
func (o *nullObject) ApplyBulk([]byte) error           { return nil }

// scrapeStatus GETs /status from a live admin server and returns the
// member documents keyed by PID.
func scrapeStatus(t *testing.T, addr string) map[string]admin.MemberStatus {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /status: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status = %d: %s", resp.StatusCode, body)
	}
	var members []admin.MemberStatus
	if err := json.Unmarshal(body, &members); err != nil {
		t.Fatalf("decode /status: %v\n%s", err, body)
	}
	out := make(map[string]admin.MemberStatus, len(members))
	for _, m := range members {
		out[m.PID] = m
	}
	return out
}

// TestStatusModeFlipDuringPartition boots a 3-member gobject cluster
// with a majority-quorum mode function, partitions one member off, and
// watches — through real HTTP scrapes of a live admin server, exactly
// as an operator would — the minority's mode document flip N → R while
// the majority stays N, then return to N after the heal.
func TestStatusModeFlipDuringPartition(t *testing.T) {
	net := vstest.NewNet(t, 900)
	sites := []string{"a", "b", "c"}
	rw := quorum.MajorityRW(quorum.Uniform(sites...))

	srv, err := admin.New("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hosts := make(map[string]*gobject.Host, len(sites))
	for _, s := range sites {
		obj := &nullObject{rw: rw}
		h, err := gobject.Open(net.Fabric, net.Reg, s, vstest.FastOptions(), gobject.Config{Enriched: true}, obj)
		if err != nil {
			t.Fatalf("Open(%s): %v", s, err)
		}
		t.Cleanup(h.Close)
		hosts[s] = h
		srv.Register(h.Process().PID().String(), admin.Member{
			Status: h.Process().StatusSnapshot,
			Mode:   func() string { return h.Mode().String() },
		})
	}
	pidOf := func(site string) string { return hosts[site].Process().PID().String() }

	// Everyone reaches N-mode in the full view, as seen over HTTP.
	vstest.Eventually(t, 15*time.Second, "all members N over /status", func() bool {
		docs := scrapeStatus(t, srv.Addr())
		for _, s := range sites {
			d, ok := docs[pidOf(s)]
			if !ok || d.Mode != "N" || d.Size != 3 {
				return false
			}
		}
		return true
	})

	// Partition c off: its scrape document must flip to R while the
	// majority's stays N — and the documents must disagree on view id,
	// which is exactly what vsmon's divergence detector keys on.
	net.Fabric.SetPartitions([]string{"a", "b"}, []string{"c"})
	vstest.Eventually(t, 15*time.Second, "minority R over /status", func() bool {
		docs := scrapeStatus(t, srv.Addr())
		c, okC := docs[pidOf("c")]
		a, okA := docs[pidOf("a")]
		return okC && okA && c.Mode == "R" && c.Size == 1 && a.Mode == "N" && a.ViewID != c.ViewID
	})

	// The monitor over the same documents calls the group unhealthy.
	mon := &admin.Monitor{Grace: 10 * time.Millisecond, StaleAfter: -1}
	var assessed admin.Assessment
	vstest.Eventually(t, 10*time.Second, "monitor flags the partition", func() bool {
		docs := scrapeStatus(t, srv.Addr())
		reports := make([]admin.MemberReport, 0, len(docs))
		for _, d := range docs {
			reports = append(reports, admin.MemberReport{Endpoint: srv.Addr(), Status: d})
		}
		assessed = mon.Assess(time.Now(), reports)
		return !assessed.Healthy
	})
	divergent := false
	for _, h := range assessed.Members {
		if h.PID == pidOf("c") && h.Divergent {
			divergent = true
		}
	}
	if !divergent {
		t.Errorf("partitioned member not flagged divergent: %+v", assessed.Members)
	}

	// Heal: every document returns to N in one 3-member view.
	net.Fabric.Heal()
	vstest.Eventually(t, 25*time.Second, "post-heal N over /status", func() bool {
		docs := scrapeStatus(t, srv.Addr())
		var view string
		for _, s := range sites {
			d, ok := docs[pidOf(s)]
			if !ok || d.Mode != "N" || d.Size != 3 {
				return false
			}
			if view == "" {
				view = d.ViewID
			}
			if d.ViewID != view {
				return false
			}
		}
		return true
	})
}

// TestMonitorFlagsInjectedDivergenceUDP reproduces the e8m
// install-propagation mismatch on the real-socket UDP backend and
// watches it through the admin stack end to end: a DropFilter eats the
// coordinator's Install to one member, leaving that member acked and
// blocked in a stale view; PollStatus + Monitor must flag it as
// divergent before the reconciliation fast path re-sends the install,
// and must call the group healthy again after the heal.
func TestMonitorFlagsInjectedDivergenceUDP(t *testing.T) {
	const n = 5
	fabric := udp.New(udp.Config{})
	filt := transport.NewDropFilter(fabric)
	defer filt.Close()
	reg := stable.NewRegistry()

	// Deliberately relaxed timing: real sockets on a machine that may
	// be running the whole race-instrumented test tree in parallel, so
	// the failure detector must tolerate scheduling hiccups (a tight
	// sim-profile SuspectAfter causes spurious suspicions under load,
	// and the resulting churn would heal the injected divergence
	// through an unrelated round). The divergence window itself is
	// stretched the same way as in E8M ablations: a large mismatch
	// dwell delays the reconcile re-send and a long propose timeout
	// keeps the blocked member from healing itself via a re-proposal
	// round, so HTTP polls can observe the stale view id.
	opts := vstest.FastOptions()
	opts.HeartbeatEvery = 10 * time.Millisecond
	opts.SuspectAfter = 120 * time.Millisecond
	opts.Tick = 5 * time.Millisecond
	opts.MismatchDwell = 120 // ×5ms tick ≈ 600ms of observable divergence
	opts.ProposeTimeout = 500 * time.Millisecond

	srv, err := admin.New("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := core.Start(filt, reg, vstest.SiteName(i), opts)
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		t.Cleanup(p.Crash)
		go func(p *core.Process) {
			for range p.Events() {
			}
		}(p)
		srv.Register(p.PID().String(), admin.Member{Status: p.StatusSnapshot})
		procs = append(procs, p)
	}
	vstest.WaitConverged(t, procs, 30*time.Second)

	// The e8m recipe: the smallest member coordinates re-formation, so
	// its Install to the lagging member is the packet to lose; the
	// forced-out victim must not be the coordinator or the laggard.
	coord, lag, victim := procs[0], procs[2], procs[n-1]
	dropInstall := func(from, to ids.PID, payload any) bool {
		if from != coord.PID() || to != lag.PID() {
			return false
		}
		_, ok := payload.(wire.Install)
		return ok
	}
	others := make([]*core.Process, 0, n-1)
	for _, p := range procs {
		if p != victim {
			others = append(others, p)
		}
	}
	for _, p := range others {
		if err := p.ForceSuspect(victim.PID()); err != nil {
			t.Fatalf("ForceSuspect: %v", err)
		}
	}
	vstest.WaitConverged(t, others, 30*time.Second)

	// Lose exactly the next Install to the laggard and bring the
	// victim back: the re-formed 5-member view reaches everyone but
	// the laggard, which acked and blocked on its stale view.
	filt.ArmN(dropInstall, 1)
	for _, p := range others {
		if err := p.Unforce(victim.PID()); err != nil {
			t.Fatalf("Unforce: %v", err)
		}
	}

	// Poll like vsmon does — PollStatus over HTTP plus a stateful
	// Monitor — until the laggard is flagged divergent from the
	// majority view. The grace window spans a couple of polls so a
	// transient disagreement would not count.
	client := &http.Client{Timeout: 2 * time.Second}
	mon := &admin.Monitor{Grace: 10 * time.Millisecond, StaleAfter: -1}
	lagPID := lag.PID().String()
	deadline := time.Now().Add(10 * time.Second)
	flagged := false
	for time.Now().Before(deadline) {
		a := mon.Assess(time.Now(), admin.PollStatus(client, srv.Addr()))
		for _, h := range a.Members {
			if h.PID == lagPID && h.Divergent {
				if h.ViewID == a.Majority {
					t.Errorf("flagged member agrees with majority: %+v", h)
				}
				flagged = true
			}
		}
		if flagged {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !flagged {
		t.Fatal("monitor never flagged the lagging member as divergent")
	}
	if got := filt.Dropped(); got != 1 {
		t.Errorf("DropFilter ate %d installs, want 1", got)
	}

	// The reconciliation fast path re-sends the cached install; once
	// the group converges the same polling loop must report healthy.
	vstest.WaitConverged(t, procs, 30*time.Second)
	vstest.Eventually(t, 10*time.Second, "monitor reports healed group", func() bool {
		a := mon.Assess(time.Now(), admin.PollStatus(client, srv.Addr()))
		return a.Healthy && len(a.Views) == 1
	})
}
