package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func testStatus(pid, view string) core.Status {
	return core.Status{
		PID: pid, Site: strings.Split(pid, "#")[0], Group: "g",
		ViewID: view, Members: []string{"a#1", "b#1"}, Size: 2,
		Structure: "a#1,b#1", Subviews: 1, SVSets: 1,
		AsOf: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
	}
}

func newTestServer(t *testing.T) (*Server, *obs.Tracer, *httptest.Server) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("view.installs").Add(2)
	reg.Histogram("tick.duration_s", []float64{0.001}).Observe(0.0004)
	tr := obs.NewTracer(16)
	s := NewHandler(reg, tr)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, tr, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"# TYPE view_installs counter",
		"view_installs 2",
		`tick_duration_s_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Every sample line must be "name value" with a float value.
	for i, ln := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		fields := strings.Fields(ln)
		if len(fields) != 2 {
			t.Fatalf("line %d not 'name value': %q", i+1, ln)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("line %d bad value: %q", i+1, ln)
		}
	}
}

func TestMetricsJSONEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Counters["view.installs"] != 2 {
		t.Errorf("counters = %+v", snap.Counters)
	}
}

func TestStatusEndpoint(t *testing.T) {
	s, _, ts := newTestServer(t)

	// Empty set: an empty JSON array, not null.
	code, body := get(t, ts.URL+"/status")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if strings.TrimSpace(body) != "[]" {
		t.Errorf("empty /status = %q, want []", body)
	}

	s.Register("b#1", Member{
		Status: func() core.Status { return testStatus("b#1", "a#1:1") },
	})
	s.Register("a#1", Member{
		Status: func() core.Status { return testStatus("a#1", "a#1:1") },
		Mode:   func() string { return "Normal" },
	})
	_, body = get(t, ts.URL+"/status")
	var members []MemberStatus
	if err := json.Unmarshal([]byte(body), &members); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if len(members) != 2 {
		t.Fatalf("members = %d, want 2", len(members))
	}
	// Sorted by registration name.
	if members[0].PID != "a#1" || members[1].PID != "b#1" {
		t.Errorf("order = %s, %s; want a#1, b#1", members[0].PID, members[1].PID)
	}
	if members[0].Mode != "Normal" || members[1].Mode != "" {
		t.Errorf("modes = %q, %q; want Normal, \"\"", members[0].Mode, members[1].Mode)
	}
	if members[0].ViewID != "a#1:1" || members[0].Structure != "a#1,b#1" {
		t.Errorf("status fields not carried: %+v", members[0])
	}
	// The mode key must be present even when empty (acceptance: the
	// document always includes mode).
	if !strings.Contains(body, `"mode"`) {
		t.Errorf("/status JSON missing mode key:\n%s", body)
	}

	s.Unregister("a#1")
	_, body = get(t, ts.URL+"/status")
	members = nil
	if err := json.Unmarshal([]byte(body), &members); err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0].PID != "b#1" {
		t.Errorf("after Unregister: %+v", members)
	}
}

func TestTraceEndpointBounds(t *testing.T) {
	_, tr, ts := newTestServer(t)
	for i := 0; i < 10; i++ {
		tr.Append(obs.Event{Type: obs.EvInstall, PID: fmt.Sprintf("p%d", i)})
	}

	decode := func(body string) []obs.Event {
		t.Helper()
		var evs []obs.Event
		if err := json.Unmarshal([]byte(body), &evs); err != nil {
			t.Fatalf("decode: %v\n%s", err, body)
		}
		return evs
	}

	// Default tail: all 10 (fewer than DefaultTraceTail).
	code, body := get(t, ts.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if evs := decode(body); len(evs) != 10 {
		t.Errorf("default tail = %d events, want 10", len(evs))
	}
	// Explicit n: the MOST RECENT n, oldest first.
	_, body = get(t, ts.URL+"/trace?n=3")
	evs := decode(body)
	if len(evs) != 3 || evs[0].PID != "p7" || evs[2].PID != "p9" {
		t.Errorf("n=3 tail = %+v, want p7..p9", evs)
	}
	// n larger than the ring: everything, no error.
	_, body = get(t, ts.URL+"/trace?n=1000")
	if evs := decode(body); len(evs) != 10 {
		t.Errorf("n=1000 tail = %d events, want 10", len(evs))
	}
	// n=0: empty list.
	_, body = get(t, ts.URL+"/trace?n=0")
	if evs := decode(body); len(evs) != 0 {
		t.Errorf("n=0 tail = %d events, want 0", len(evs))
	}
	// Bad n: 400.
	for _, q := range []string{"n=-1", "n=abc"} {
		if code, _ := get(t, ts.URL+"/trace?"+q); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, code)
		}
	}
}

func TestTraceEndpointNilTracer(t *testing.T) {
	s := NewHandler(obs.NewRegistry(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, body := get(t, ts.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var evs []obs.Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(evs) != 0 {
		t.Errorf("nil tracer served %d events", len(evs))
	}
}

func TestPprofEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d", code)
	}
}

func TestNewBindsAndCloses(t *testing.T) {
	s, err := New(":0", obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	if code, _ := get(t, "http://"+addr+"/status"); code != http.StatusOK {
		t.Fatalf("live server /status = %d", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/status"); err == nil {
		t.Error("server still serving after Close")
	}
}

func TestPollStatus(t *testing.T) {
	s, _, ts := newTestServer(t)
	client := &http.Client{Timeout: time.Second}

	// No members: an explicit error report, not an empty slice.
	reports := PollStatus(client, ts.URL)
	if len(reports) != 1 || reports[0].Err == nil {
		t.Fatalf("no-members poll = %+v", reports)
	}

	s.Register("a#1", Member{Status: func() core.Status { return testStatus("a#1", "v") }})
	reports = PollStatus(client, ts.URL)
	if len(reports) != 1 || reports[0].Err != nil || reports[0].Status.PID != "a#1" {
		t.Fatalf("poll = %+v", reports)
	}

	// Unreachable endpoint: one error report.
	reports = PollStatus(client, "127.0.0.1:1")
	if len(reports) != 1 || reports[0].Err == nil {
		t.Fatalf("unreachable poll = %+v", reports)
	}
}
