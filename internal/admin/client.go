package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// PollStatus scrapes one admin endpoint's /status and returns a report
// per member it hosts. endpoint may be "host:port" or a full URL; a
// failed poll yields a single report carrying the error, so callers
// always get at least one report per endpoint and the monitor can
// render the endpoint as unreachable. client controls timeouts.
func PollStatus(client *http.Client, endpoint string) []MemberReport {
	url := endpoint
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/") + "/status"

	fail := func(err error) []MemberReport {
		return []MemberReport{{Endpoint: endpoint, Err: err}}
	}
	resp, err := client.Get(url)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(fmt.Errorf("status %s", resp.Status))
	}
	var members []MemberStatus
	if err := json.NewDecoder(resp.Body).Decode(&members); err != nil {
		return fail(fmt.Errorf("decode: %w", err))
	}
	if len(members) == 0 {
		return fail(fmt.Errorf("no members registered"))
	}
	out := make([]MemberReport, 0, len(members))
	for _, m := range members {
		out = append(out, MemberReport{Endpoint: endpoint, Status: m})
	}
	return out
}
