package admin

import (
	"fmt"
	"sort"
	"time"
)

// Default monitor thresholds. A view change legitimately leaves the
// members' view ids disagreeing for a detection + agreement + flush
// round, so the divergence grace window must comfortably exceed one;
// the stuck threshold bounds how long an in-flight proposal may age
// before the watcher calls it wedged.
const (
	DefaultGrace      = 3 * time.Second
	DefaultStuck      = 5 * time.Second
	DefaultStaleAfter = 2 * time.Second
)

// MemberReport is one polled member: its /status document plus how the
// poll went. Endpoint identifies where it was scraped from (one
// endpoint can yield several reports — vsbench groups). A non-nil Err
// marks the whole report unreachable; Status is then meaningless.
type MemberReport struct {
	Endpoint string
	Status   MemberStatus
	Err      error
}

// Health is the monitor's verdict on one member.
type Health struct {
	PID      string
	Endpoint string
	Mode     string
	ViewID   string
	Size     int
	Blocked  bool

	// Unreachable: the poll failed (Err on the report).
	Unreachable bool
	// Stale: the member answered but its Status.AsOf is older than the
	// staleness bound — its protocol loop has stopped publishing.
	Stale bool
	// Divergent: the member has disagreed with the group's majority
	// view id for longer than the grace window. Brief disagreement
	// during a view change is normal and not flagged.
	Divergent bool
	// DivergentFor is how long the disagreement has lasted (set as soon
	// as disagreement is observed, before the grace window elapses).
	DivergentFor time.Duration
	// Stuck: the member has had a proposal in flight (blocked on an
	// acked proposal, or coordinating an open round) for longer than
	// the stuck threshold.
	Stuck bool
	// Detail is a short human-readable reason string for any flag set,
	// empty when healthy.
	Detail string
}

// Flagged reports whether any problem flag is set.
func (h Health) Flagged() bool {
	return h.Unreachable || h.Stale || h.Divergent || h.Stuck
}

// Assessment is one round's verdict over the whole group.
type Assessment struct {
	At      time.Time
	Members []Health
	// Views counts reachable members per advertised view id. One key =
	// the group agrees; more = a view change in progress or a genuine
	// divergence (see per-member Divergent for which).
	Views map[string]int
	// Majority is the most-subscribed view id (ties broken by lexical
	// order, for determinism).
	Majority string
	// Healthy: every member reachable, fresh, agreed, and unstuck.
	Healthy bool
}

// Monitor turns successive polling rounds into health verdicts. It is
// stateful: divergence is only flagged once it has outlasted Grace, so
// the monitor remembers when each member started disagreeing. Not safe
// for concurrent use; drive it from one polling loop.
type Monitor struct {
	// Grace is how long a member may disagree with the majority view id
	// before being flagged divergent (0 = DefaultGrace).
	Grace time.Duration
	// Stuck is the in-flight proposal age beyond which a member is
	// flagged stuck (0 = DefaultStuck).
	Stuck time.Duration
	// StaleAfter is how old a Status.AsOf may be before the member is
	// flagged stale (0 = DefaultStaleAfter; negative disables — useful
	// in tests that replay canned reports with old timestamps).
	StaleAfter time.Duration

	divergedSince map[string]time.Time
}

func (m *Monitor) grace() time.Duration {
	if m.Grace > 0 {
		return m.Grace
	}
	return DefaultGrace
}

func (m *Monitor) stuck() time.Duration {
	if m.Stuck > 0 {
		return m.Stuck
	}
	return DefaultStuck
}

func (m *Monitor) staleAfter() time.Duration {
	if m.StaleAfter != 0 {
		return m.StaleAfter
	}
	return DefaultStaleAfter
}

// Assess folds one polling round into a verdict. now is the poll time
// (pass time.Now() in production; tests pass fixed times).
func (m *Monitor) Assess(now time.Time, reports []MemberReport) Assessment {
	if m.divergedSince == nil {
		m.divergedSince = make(map[string]time.Time)
	}
	a := Assessment{At: now, Views: make(map[string]int), Healthy: true}

	// First pass: tally view ids among reachable members to find the
	// majority opinion the divergence check compares against.
	for _, r := range reports {
		if r.Err == nil {
			a.Views[r.Status.ViewID]++
		}
	}
	for id, n := range a.Views {
		if n > a.Views[a.Majority] || (n == a.Views[a.Majority] && (a.Majority == "" || id < a.Majority)) {
			a.Majority = id
		}
	}

	seen := make(map[string]bool, len(reports))
	for _, r := range reports {
		h := Health{Endpoint: r.Endpoint}
		if r.Err != nil {
			h.Unreachable = true
			h.Detail = fmt.Sprintf("unreachable: %v", r.Err)
			a.Members = append(a.Members, h)
			a.Healthy = false
			continue
		}
		st := r.Status
		h.PID = st.PID
		h.Mode = st.Mode
		h.ViewID = st.ViewID
		h.Size = st.Size
		h.Blocked = st.Blocked
		seen[st.PID] = true

		if sa := m.staleAfter(); sa > 0 && !st.AsOf.IsZero() && now.Sub(st.AsOf) > sa {
			h.Stale = true
			h.Detail = joinDetail(h.Detail, fmt.Sprintf("stale: last published %s ago", now.Sub(st.AsOf).Round(time.Millisecond)))
		}

		if st.ViewID != a.Majority {
			since, ok := m.divergedSince[st.PID]
			if !ok {
				since = now
				m.divergedSince[st.PID] = since
			}
			h.DivergentFor = now.Sub(since)
			if h.DivergentFor >= m.grace() {
				h.Divergent = true
				h.Detail = joinDetail(h.Detail, fmt.Sprintf("diverged: view %s vs majority %s for %s",
					st.ViewID, a.Majority, h.DivergentFor.Round(time.Millisecond)))
			}
		} else {
			delete(m.divergedSince, st.PID)
		}

		if st.ProposalAge > m.stuck() && (st.Blocked || st.Coordinating) {
			h.Stuck = true
			h.Detail = joinDetail(h.Detail, fmt.Sprintf("stuck: proposal %s in flight for %s",
				stuckProposal(st), st.ProposalAge.Round(time.Millisecond)))
		}

		if h.Flagged() {
			a.Healthy = false
		}
		a.Members = append(a.Members, h)
	}

	// Forget divergence anchors for members that vanished, so a PID
	// that later reappears starts a fresh grace window.
	for pid := range m.divergedSince {
		if !seen[pid] {
			delete(m.divergedSince, pid)
		}
	}

	sort.Slice(a.Members, func(i, j int) bool {
		if a.Members[i].PID != a.Members[j].PID {
			return a.Members[i].PID < a.Members[j].PID
		}
		return a.Members[i].Endpoint < a.Members[j].Endpoint
	})
	return a
}

func stuckProposal(st MemberStatus) string {
	if st.AckedProposal != "" {
		return st.AckedProposal
	}
	if st.CoordProposal != "" {
		return st.CoordProposal
	}
	return "?"
}

func joinDetail(a, b string) string {
	if a == "" {
		return b
	}
	return a + "; " + b
}
