// Package admin exposes a running group member's live state over HTTP:
// Prometheus metrics, a JSON status document per member, the recent
// trace-event ring, and the standard pprof endpoints. It is the
// machine-readable face of the repo's observability layer — the same
// Registry/Tracer/StatusSnapshot data the CLIs print after a run, but
// served while the run is still going, so an operator (or cmd/vsmon)
// can watch a view change happen instead of reading about it later.
//
// One Server carries any number of members because the experiment
// drivers (vsbench, vstrace) run whole groups inside a single OS
// process. A real deployment with one member per process registers
// exactly one. /status therefore always returns a JSON *array* of
// member documents; consumers that poll many endpoints (vsmon) just
// flatten the arrays.
//
// Routes:
//
//	/metrics       Prometheus text exposition of the shared Registry
//	/metrics.json  the same snapshot as JSON (obs.Snapshot)
//	/status        []MemberStatus for every registered member
//	/trace?n=N     the last N trace events from the ring (JSON)
//	/debug/pprof/  net/http/pprof
//
// Everything served is a point-in-time copy taken outside the protocol
// loops (Registry snapshots are atomic reads; StatusSnapshot is a
// mutex-guarded copy), so scraping at any rate cannot block or corrupt
// a run — the perturbation benchmark in this package quantifies the
// residual cost.
package admin

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultTraceTail is how many trace events /trace returns when the
// request does not say (?n=).
const DefaultTraceTail = 100

// Member is one group member's introspection hooks. Status must be
// safe to call from any goroutine (core.Process.StatusSnapshot is);
// Mode, when non-nil, supplies the Figure-1 operating-mode label
// (gobject.Host.Mode().String()) — raw core processes have no mode
// automaton, so their mode renders as "".
type Member struct {
	Status func() core.Status
	Mode   func() string
}

// MemberStatus is the /status document for one member: the process
// Status plus the Figure-1 mode label ("Normal", "Reduced", ...; empty
// when the member runs without the gobject mode automaton).
type MemberStatus struct {
	core.Status
	Mode string `json:"mode"`
}

// Server serves the admin endpoints for a set of registered members.
// Create with New (which binds the listener) or use Handler with a
// test server. All methods are safe for concurrent use.
type Server struct {
	reg *obs.Registry
	tr  *obs.Tracer

	mu      sync.Mutex
	members map[string]Member

	ln  net.Listener
	srv *http.Server
}

// New binds addr (e.g. ":9090", or ":0" for an ephemeral port) and
// starts serving the admin endpoints for reg and tr; tr may be nil, in
// which case /trace serves an empty list. Register members as they
// start. Close releases the port.
func New(addr string, reg *obs.Registry, tr *obs.Tracer) (*Server, error) {
	s := newServer(reg, tr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close.
	return s, nil
}

// newServer builds a Server without a listener (Handler-only use).
func newServer(reg *obs.Registry, tr *obs.Tracer) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{reg: reg, tr: tr, members: make(map[string]Member)}
}

// NewHandler returns a Server that only serves through Handler — no
// listener is bound. Tests mount it on httptest.Server.
func NewHandler(reg *obs.Registry, tr *obs.Tracer) *Server {
	return newServer(reg, tr)
}

// Addr returns the bound listen address ("" when created by
// NewHandler). With ":0" this is how callers learn the real port.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Register adds (or replaces) a member under name. Members may come
// and go while the server runs; /status reflects the current set,
// sorted by name for stable output.
func (s *Server) Register(name string, m Member) {
	s.mu.Lock()
	s.members[name] = m
	s.mu.Unlock()
}

// Unregister removes a member (e.g. after Process.Leave).
func (s *Server) Unregister(name string) {
	s.mu.Lock()
	delete(s.members, name)
	s.mu.Unlock()
}

// Close shuts the HTTP server down and releases the port. No-op for
// Handler-only servers.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// Handler returns the admin route mux, for mounting under a test
// server or an existing http.Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // client write errors only
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w) //nolint:errcheck
}

// Statuses returns the current MemberStatus documents, sorted by
// registration name — the same list /status serves.
func (s *Server) Statuses() []MemberStatus {
	s.mu.Lock()
	names := make([]string, 0, len(s.members))
	for n := range s.members {
		names = append(names, n)
	}
	sort.Strings(names)
	members := make([]Member, len(names))
	for i, n := range names {
		members[i] = s.members[n]
	}
	s.mu.Unlock()

	// Call the hooks outside the server lock: StatusSnapshot takes the
	// process mutex, and a member's hook must not be able to wedge
	// Register/Unregister.
	out := make([]MemberStatus, 0, len(members))
	for _, m := range members {
		ms := MemberStatus{}
		if m.Status != nil {
			ms.Status = m.Status()
		}
		if m.Mode != nil {
			ms.Mode = m.Mode()
		}
		out = append(out, ms)
	}
	return out
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Statuses()) //nolint:errcheck
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := DefaultTraceTail
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "trace: n must be a non-negative integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	var evs []obs.Event
	if s.tr != nil {
		evs = s.tr.Events()
	}
	if n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(evs) //nolint:errcheck
}
