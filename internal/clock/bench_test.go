package clock

import (
	"fmt"
	"testing"

	"repro/internal/ids"
)

func benchPIDs(n int) []ids.PID {
	out := make([]ids.PID, n)
	for i := range out {
		out[i] = ids.PID{Site: fmt.Sprintf("s%03d", i), Inc: 1}
	}
	return out
}

// BenchmarkVectorMerge measures the per-delivery cost of merging a
// message stamp into the local clock.
func BenchmarkVectorMerge(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pids := benchPIDs(n)
			v, w := NewVector(), NewVector()
			for i, p := range pids {
				v[p] = uint64(i)
				w[p] = uint64(n - i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Merge(w)
			}
		})
	}
}

// BenchmarkCausalBufferInOrder measures the happy path: messages arrive
// already deliverable.
func BenchmarkCausalBufferInOrder(b *testing.B) {
	p := ids.PID{Site: "a", Inc: 1}
	msgs := make([]testMsg, 1024)
	for i := range msgs {
		msgs[i] = testMsg{sender: p, stamp: Vector{p: uint64(i + 1)}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := NewCausalBuffer[testMsg]()
		for _, m := range msgs {
			if got := buf.Offer(m); len(got) != 1 {
				b.Fatal("not delivered")
			}
		}
	}
}

// BenchmarkCausalBufferReordered measures a worst-ish case: per-sender
// streams offered fully reversed.
func BenchmarkCausalBufferReordered(b *testing.B) {
	p := ids.PID{Site: "a", Inc: 1}
	const n = 128
	msgs := make([]testMsg, n)
	for i := range msgs {
		msgs[i] = testMsg{sender: p, stamp: Vector{p: uint64(n - i)}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := NewCausalBuffer[testMsg]()
		total := 0
		for _, m := range msgs {
			total += len(buf.Offer(m))
		}
		if total != n {
			b.Fatalf("delivered %d of %d", total, n)
		}
	}
}

// BenchmarkConsistentCut measures the checker's cut validation.
func BenchmarkConsistentCut(b *testing.B) {
	pids := benchPIDs(16)
	cut := make(map[ids.PID]Vector, len(pids))
	for _, p := range pids {
		v := NewVector()
		for _, q := range pids {
			v[q] = 5
		}
		v[p] = 7
		cut[p] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ConsistentCut(cut) {
			b.Fatal("cut should be consistent")
		}
	}
}
