// Package clock implements logical time: Lamport clocks and vector clocks,
// plus a causal-delivery buffer used by the causal multicast layer.
//
// Enriched view synchrony needs causality twice. Property 6.2 requires
// e-view change events to define consistent cuts of the computation, which
// the run-time achieves by delivering e-view changes through causal order;
// and the trace checker re-verifies the cut property offline from recorded
// vector timestamps.
package clock

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/ids"
)

// Lamport is a Lamport scalar clock. The zero value is ready to use.
// Lamport is not safe for concurrent use; confine it to one goroutine.
type Lamport struct {
	t uint64
}

// Now returns the current clock value without advancing it.
func (l *Lamport) Now() uint64 { return l.t }

// Tick advances the clock for a local event and returns the new value.
func (l *Lamport) Tick() uint64 {
	l.t++
	return l.t
}

// Observe merges a remote timestamp and advances past it, returning the
// new value. Use on message receipt.
func (l *Lamport) Observe(remote uint64) uint64 {
	if remote > l.t {
		l.t = remote
	}
	l.t++
	return l.t
}

// Vector is a vector clock mapping process ids to event counts. Vectors
// are sparse: absent entries are zero. The nil map is a valid (all-zero)
// read-only vector; use NewVector or Clone before writing.
type Vector map[ids.PID]uint64

// NewVector returns an empty vector clock.
func NewVector() Vector { return make(Vector) }

// Get returns the component for p (zero if absent).
func (v Vector) Get(p ids.PID) uint64 { return v[p] }

// Tick increments p's component and returns the new vector (receiver
// mutated). Call on a local event at process p.
func (v Vector) Tick(p ids.PID) Vector {
	v[p]++
	return v
}

// Merge sets each component of v to the max of v and w, mutating v.
func (v Vector) Merge(w Vector) Vector {
	for p, t := range w {
		if t > v[p] {
			v[p] = t
		}
	}
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for p, t := range v {
		c[p] = t
	}
	return c
}

// LE reports whether v happens-before-or-equals w (every component of v is
// <= the corresponding component of w).
func (v Vector) LE(w Vector) bool {
	for p, t := range v {
		if t > w[p] {
			return false
		}
	}
	return true
}

// Less reports v < w: v happened strictly before w.
func (v Vector) Less(w Vector) bool { return v.LE(w) && !w.LE(v) }

// Concurrent reports whether v and w are causally unrelated.
func (v Vector) Concurrent(w Vector) bool { return !v.LE(w) && !w.LE(v) }

// Equal reports component-wise equality (treating absent as zero).
func (v Vector) Equal(w Vector) bool { return v.LE(w) && w.LE(v) }

// Restrict returns a copy of v with only the components for members,
// dropping everything else. The causal layer restricts vectors to the
// current view composition at view changes.
func (v Vector) Restrict(members ids.PIDSet) Vector {
	c := make(Vector, len(members))
	for p, t := range v {
		if members.Has(p) {
			c[p] = t
		}
	}
	return c
}

// String renders the vector deterministically as "[a#1:3 b#1:1]".
func (v Vector) String() string {
	pids := make([]ids.PID, 0, len(v))
	for p := range v {
		pids = append(pids, p)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i].Less(pids[j]) })
	var b strings.Builder
	b.WriteByte('[')
	for i, p := range pids {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.String())
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(v[p], 10))
	}
	b.WriteByte(']')
	return b.String()
}
