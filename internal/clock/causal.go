package clock

import (
	"repro/internal/ids"
)

// CausalMsg is the interface the causal buffer needs from a message: who
// multicast it and with what vector timestamp.
type CausalMsg interface {
	CausalSender() ids.PID
	CausalStamp() Vector
}

// CausalBuffer implements causal-order delivery within a fixed membership
// (one view), using the Birman–Schiper–Stephenson condition: a message m
// multicast by p with stamp V is deliverable at q once q has delivered
// every message that causally precedes m, i.e. V[p] == seen[p]+1 and
// V[r] <= seen[r] for all r != p.
//
// The buffer is not safe for concurrent use; the protocol engine confines
// it to its event loop. A fresh buffer is created at every view install
// (causal order, like the other delivery guarantees, is per-view).
type CausalBuffer[M CausalMsg] struct {
	seen    Vector
	pending []M
}

// NewCausalBuffer returns a buffer with an all-zero delivered vector.
func NewCausalBuffer[M CausalMsg]() *CausalBuffer[M] {
	return &CausalBuffer[M]{seen: NewVector()}
}

// Seen returns the vector of messages delivered so far (do not mutate).
func (b *CausalBuffer[M]) Seen() Vector { return b.seen }

// Pending returns the number of buffered undeliverable messages.
func (b *CausalBuffer[M]) Pending() int { return len(b.pending) }

// Offer submits a received message and returns the (possibly empty) batch
// of messages that became deliverable, in causal order. The caller must
// deliver them in the returned order.
func (b *CausalBuffer[M]) Offer(m M) []M {
	b.pending = append(b.pending, m)
	var out []M
	for {
		progressed := false
		for i := 0; i < len(b.pending); i++ {
			if b.deliverable(b.pending[i]) {
				msg := b.pending[i]
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				b.seen.Merge(msg.CausalStamp())
				out = append(out, msg)
				progressed = true
				i--
			}
		}
		if !progressed {
			return out
		}
	}
}

// RecordLocal notes a locally multicast (self-delivered) message's stamp so
// that subsequent remote messages depending on it become deliverable.
func (b *CausalBuffer[M]) RecordLocal(stamp Vector) {
	b.seen.Merge(stamp)
}

// Drain returns and removes every still-undeliverable message. Called at
// view changes; the flush protocol decides their fate.
func (b *CausalBuffer[M]) Drain() []M {
	out := b.pending
	b.pending = nil
	return out
}

func (b *CausalBuffer[M]) deliverable(m M) bool {
	sender := m.CausalSender()
	stamp := m.CausalStamp()
	for p, t := range stamp {
		if p == sender {
			if t != b.seen[p]+1 {
				return false
			}
			continue
		}
		if t > b.seen[p] {
			return false
		}
	}
	return true
}

// ConsistentCut reports whether the given per-process vector timestamps
// form a consistent cut: no process's cut state reflects an event that
// another process's cut state has not yet sent. Formally, for processes
// p and q with cut vectors Vp and Vq, we need Vq[p] <= Vp[p]: q must not
// have seen more of p's events than p itself had at the cut.
//
// The trace checker uses this to verify Property 6.2 (e-view changes
// define consistent cuts) from recorded stamps.
func ConsistentCut(cut map[ids.PID]Vector) bool {
	for p, vp := range cut {
		own := vp.Get(p)
		for _, vq := range cut {
			if vq.Get(p) > own {
				return false
			}
		}
	}
	return true
}
