package clock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

var (
	pa = ids.PID{Site: "a", Inc: 1}
	pb = ids.PID{Site: "b", Inc: 1}
	pc = ids.PID{Site: "c", Inc: 1}
)

func TestLamportTickObserve(t *testing.T) {
	var l Lamport
	if l.Now() != 0 {
		t.Fatal("fresh Lamport clock not zero")
	}
	if l.Tick() != 1 || l.Tick() != 2 {
		t.Fatal("Tick must increment by one")
	}
	if got := l.Observe(10); got != 11 {
		t.Fatalf("Observe(10) = %d, want 11", got)
	}
	if got := l.Observe(3); got != 12 {
		t.Fatalf("Observe(3) = %d, want 12 (must not go backward)", got)
	}
}

func TestVectorBasics(t *testing.T) {
	v := NewVector()
	v.Tick(pa)
	v.Tick(pa)
	v.Tick(pb)
	if v.Get(pa) != 2 || v.Get(pb) != 1 || v.Get(pc) != 0 {
		t.Fatalf("components wrong: %v", v)
	}
	if got := v.String(); got != "[a#1:2 b#1:1]" {
		t.Errorf("String = %q", got)
	}
}

func TestVectorMergeAndOrder(t *testing.T) {
	v := Vector{pa: 2, pb: 1}
	w := Vector{pa: 1, pb: 3}
	if !v.Concurrent(w) {
		t.Error("v and w should be concurrent")
	}
	m := v.Clone().Merge(w)
	if m.Get(pa) != 2 || m.Get(pb) != 3 {
		t.Errorf("Merge = %v", m)
	}
	if !v.LE(m) || !w.LE(m) {
		t.Error("operands must be <= merge")
	}
	if !v.Less(m) {
		t.Error("v < merge expected (merge differs from v)")
	}
	if m.Less(m) {
		t.Error("Less must be irreflexive")
	}
	if !m.Equal(m.Clone()) {
		t.Error("clone must be Equal")
	}
}

func TestVectorEqualTreatsAbsentAsZero(t *testing.T) {
	v := Vector{pa: 1, pb: 0}
	w := Vector{pa: 1}
	if !v.Equal(w) || !w.Equal(v) {
		t.Error("explicit zero and absent component must compare equal")
	}
}

func TestVectorRestrict(t *testing.T) {
	v := Vector{pa: 1, pb: 2, pc: 3}
	r := v.Restrict(ids.NewPIDSet(pa, pc))
	if r.Get(pa) != 1 || r.Get(pb) != 0 || r.Get(pc) != 3 {
		t.Errorf("Restrict = %v", r)
	}
	if v.Get(pb) != 2 {
		t.Error("Restrict must not mutate the receiver")
	}
}

func TestVectorPartialOrderProperties(t *testing.T) {
	gen := func(r *rand.Rand) Vector {
		v := NewVector()
		for _, p := range []ids.PID{pa, pb, pc} {
			if r.Intn(2) == 1 {
				v[p] = uint64(r.Intn(5))
			}
		}
		return v
	}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		v, w, x := gen(r), gen(r), gen(r)
		if v.LE(w) && w.LE(x) && !v.LE(x) {
			t.Fatalf("LE not transitive: %v %v %v", v, w, x)
		}
		if v.LE(w) && w.LE(v) && !v.Equal(w) {
			t.Fatalf("LE antisymmetry violated: %v %v", v, w)
		}
		if v.Concurrent(w) != (!v.LE(w) && !w.LE(v)) {
			t.Fatalf("Concurrent inconsistent with LE: %v %v", v, w)
		}
	}
}

func TestVectorMergeIsLUB(t *testing.T) {
	// Property: merge(v,w) is the least upper bound.
	f := func(av, aw, bv, bw, cv, cw uint16) bool {
		v := Vector{pa: uint64(av), pb: uint64(bv), pc: uint64(cv)}
		w := Vector{pa: uint64(aw), pb: uint64(bw), pc: uint64(cw)}
		m := v.Clone().Merge(w)
		if !v.LE(m) || !w.LE(m) {
			return false
		}
		// any upper bound u of v,w satisfies m <= u
		u := v.Clone().Merge(w).Tick(pa)
		return m.LE(u)
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(5)), MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// testMsg implements CausalMsg for buffer tests.
type testMsg struct {
	sender ids.PID
	stamp  Vector
	tag    string
}

func (m testMsg) CausalSender() ids.PID { return m.sender }
func (m testMsg) CausalStamp() Vector   { return m.stamp }

func TestCausalBufferInOrder(t *testing.T) {
	b := NewCausalBuffer[testMsg]()
	m1 := testMsg{pa, Vector{pa: 1}, "m1"}
	m2 := testMsg{pa, Vector{pa: 2}, "m2"}
	if got := b.Offer(m1); len(got) != 1 || got[0].tag != "m1" {
		t.Fatalf("m1 should deliver immediately, got %v", got)
	}
	if got := b.Offer(m2); len(got) != 1 || got[0].tag != "m2" {
		t.Fatalf("m2 should deliver, got %v", got)
	}
}

func TestCausalBufferReordersSenderGap(t *testing.T) {
	b := NewCausalBuffer[testMsg]()
	m1 := testMsg{pa, Vector{pa: 1}, "m1"}
	m2 := testMsg{pa, Vector{pa: 2}, "m2"}
	if got := b.Offer(m2); len(got) != 0 {
		t.Fatalf("m2 must be buffered until m1 arrives, got %v", got)
	}
	got := b.Offer(m1)
	if len(got) != 2 || got[0].tag != "m1" || got[1].tag != "m2" {
		t.Fatalf("want [m1 m2], got %v", got)
	}
	if b.Pending() != 0 {
		t.Fatal("pending not drained")
	}
}

func TestCausalBufferCrossSenderDependency(t *testing.T) {
	// b multicasts m2 after delivering a's m1: m2 carries {a:1, b:1}.
	// A receiver that gets m2 first must hold it until m1 arrives.
	buf := NewCausalBuffer[testMsg]()
	m1 := testMsg{pa, Vector{pa: 1}, "m1"}
	m2 := testMsg{pb, Vector{pa: 1, pb: 1}, "m2"}
	if got := buf.Offer(m2); len(got) != 0 {
		t.Fatalf("m2 depends on m1, must buffer; got %v", got)
	}
	got := buf.Offer(m1)
	if len(got) != 2 || got[0].tag != "m1" || got[1].tag != "m2" {
		t.Fatalf("want [m1 m2], got %v", got)
	}
}

func TestCausalBufferRecordLocal(t *testing.T) {
	// The local process is pa and multicast m1 itself (self-delivered).
	buf := NewCausalBuffer[testMsg]()
	buf.RecordLocal(Vector{pa: 1})
	m2 := testMsg{pb, Vector{pa: 1, pb: 1}, "m2"}
	if got := buf.Offer(m2); len(got) != 1 || got[0].tag != "m2" {
		t.Fatalf("m2 should deliver after local record, got %v", got)
	}
}

func TestCausalBufferConcurrentMessagesDeliverAnyOrder(t *testing.T) {
	buf := NewCausalBuffer[testMsg]()
	ma := testMsg{pa, Vector{pa: 1}, "ma"}
	mb := testMsg{pb, Vector{pb: 1}, "mb"}
	if got := buf.Offer(mb); len(got) != 1 {
		t.Fatalf("concurrent mb should deliver, got %v", got)
	}
	if got := buf.Offer(ma); len(got) != 1 {
		t.Fatalf("concurrent ma should deliver, got %v", got)
	}
}

func TestCausalBufferDrain(t *testing.T) {
	buf := NewCausalBuffer[testMsg]()
	m3 := testMsg{pa, Vector{pa: 3}, "m3"}
	buf.Offer(m3)
	got := buf.Drain()
	if len(got) != 1 || got[0].tag != "m3" || buf.Pending() != 0 {
		t.Fatalf("Drain = %v, pending %d", got, buf.Pending())
	}
}

func TestCausalDeliveryRandomPermutations(t *testing.T) {
	// Build a causal history of 3 senders, 5 messages each, where each
	// message depends on everything its sender delivered so far; then
	// offer them in random order and require delivery in causal order.
	r := rand.New(rand.NewSource(6))
	senders := []ids.PID{pa, pb, pc}
	type rec struct {
		msg testMsg
	}
	var history []rec
	clocks := map[ids.PID]Vector{pa: NewVector(), pb: NewVector(), pc: NewVector()}
	for i := 0; i < 15; i++ {
		s := senders[r.Intn(len(senders))]
		// sender observes a random subset of previously sent messages
		for _, h := range history {
			if r.Intn(2) == 0 {
				clocks[s].Merge(h.msg.stamp)
			}
		}
		clocks[s].Tick(s)
		history = append(history, rec{testMsg{s, clocks[s].Clone(), ""}})
	}
	for trial := 0; trial < 50; trial++ {
		perm := r.Perm(len(history))
		buf := NewCausalBuffer[testMsg]()
		var delivered []testMsg
		for _, i := range perm {
			delivered = append(delivered, buf.Offer(history[i].msg)...)
		}
		if len(delivered) != len(history) {
			t.Fatalf("trial %d: delivered %d of %d", trial, len(delivered), len(history))
		}
		// check causal order: if stamp(i) < stamp(j) then i delivered first
		for i := range delivered {
			for j := range delivered {
				if delivered[j].stamp.Less(delivered[i].stamp) && j > i {
					t.Fatalf("trial %d: causal violation at %d,%d", trial, i, j)
				}
			}
		}
	}
}

func TestConsistentCut(t *testing.T) {
	tests := []struct {
		name string
		cut  map[ids.PID]Vector
		want bool
	}{
		{"empty", map[ids.PID]Vector{}, true},
		{"aligned", map[ids.PID]Vector{
			pa: {pa: 2, pb: 1},
			pb: {pa: 1, pb: 1},
		}, true},
		{"orphan receive", map[ids.PID]Vector{
			pa: {pa: 1},
			pb: {pa: 2, pb: 1}, // b saw a's event 2, a hasn't produced it in this cut
		}, false},
		{"symmetric exchange", map[ids.PID]Vector{
			pa: {pa: 3, pb: 2},
			pb: {pa: 3, pb: 2},
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ConsistentCut(tt.cut); got != tt.want {
				t.Errorf("ConsistentCut = %v, want %v", got, tt.want)
			}
		})
	}
}
