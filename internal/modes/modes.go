// Package modes implements the paper's application model (Section 3): a
// group-object process is at any time in one of three execution modes —
//
//	NORMAL   (N): all external operations are served;
//	REDUCED  (R): only a subset of external operations is served;
//	SETTLING (S): only internal operations run, reconstructing the
//	              shared global state.
//
// Transitions follow Figure 1 exactly:
//
//	N --Failure--> R        N --Reconfigure--> S
//	R --Repair---> S        S --Reconfigure--> S
//	S --Failure--> R        S --Reconcile----> N
//
// Every transition except Reconcile is driven by a view change (an event
// asynchronous to the computation); Reconcile alone is synchronous with
// the computation — the application invokes it after successfully
// solving the shared state problem. The machine enforces that N is
// reachable only through Reconcile.
package modes

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
)

// Mode is a group-object execution mode.
type Mode int

// The three modes of Figure 1.
const (
	Normal Mode = iota + 1
	Reduced
	Settling
)

// String renders the mode as in the paper (N / R / S).
func (m Mode) String() string {
	switch m {
	case Normal:
		return "N"
	case Reduced:
		return "R"
	case Settling:
		return "S"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Transition labels the Figure-1 edges.
type Transition int

// The four transition causes of Figure 1.
const (
	Failure Transition = iota + 1
	Repair
	Reconfigure
	Reconcile
)

// String renders the transition label.
func (t Transition) String() string {
	switch t {
	case Failure:
		return "Failure"
	case Repair:
		return "Repair"
	case Reconfigure:
		return "Reconfigure"
	case Reconcile:
		return "Reconcile"
	default:
		return fmt.Sprintf("Transition(%d)", int(t))
	}
}

// Func is a mode function: given the previous and the newly installed
// enriched view it returns the target capability of the process. Per the
// paper's simplifying assumption the function depends only on the
// current view (and, for flat-view baselines that cannot read structure,
// the immediately preceding one); all processes of a group object share
// the same Func.
type Func func(prev, cur core.EView) Mode

// Step records one transition taken by the machine.
type Step struct {
	From, To Mode
	Label    Transition
	// View is the view whose installation caused the step (the current
	// view for Reconcile steps).
	View ids.ViewID
	At   time.Time
}

// Machine is the per-process Figure-1 mode machine. Not safe for
// concurrent use: drive it from the goroutine consuming the process's
// events.
type Machine struct {
	fn   Func
	mode Mode
	prev core.EView
	// target is the capability computed at the last view change; Reconcile
	// is legal only while it is not Reduced.
	target Mode

	now     func() time.Time
	since   time.Time
	history []Step
	counts  map[Transition]int
	resided map[Mode]time.Duration
	onStep  func(Step, time.Duration)
}

// NewMachine creates a machine for the first installed view. The initial
// mode follows the rule that N is only entered via Reconcile: a capability
// of N or S starts in S (state must be created/validated first); R starts
// in R.
func NewMachine(fn Func, first core.EView) *Machine {
	return newMachineAt(fn, first, time.Now)
}

// newMachineAt injects a clock (tests).
func newMachineAt(fn Func, first core.EView, now func() time.Time) *Machine {
	m := &Machine{
		fn:      fn,
		now:     now,
		counts:  make(map[Transition]int),
		resided: make(map[Mode]time.Duration),
	}
	m.prev = first
	m.target = fn(core.EView{}, first)
	if m.target == Reduced {
		m.mode = Reduced
	} else {
		m.mode = Settling
	}
	m.since = m.now()
	return m
}

// Observe registers fn to be called synchronously after every step with
// the step taken and the dwell time — how long the machine resided in
// the mode being left. At most one observer; nil disables. Observability
// layers use this for mode-dwell histograms and transition traces.
func (m *Machine) Observe(fn func(st Step, dwell time.Duration)) { m.onStep = fn }

// Mode returns the current mode.
func (m *Machine) Mode() Mode { return m.mode }

// Target returns the capability computed at the last view change.
func (m *Machine) Target() Mode { return m.target }

// View returns the view the machine last evaluated.
func (m *Machine) View() core.EView { return m.prev }

// OnView feeds a newly installed view (or an e-view change, whose
// structure may affect the mode function) into the machine. It returns
// the step taken, or ok=false when the view causes no transition.
func (m *Machine) OnView(v core.EView) (Step, bool) {
	target := m.fn(m.prev, v)
	m.prev = v
	m.target = target

	from := m.mode
	var (
		to    Mode
		label Transition
	)
	switch from {
	case Normal:
		switch target {
		case Normal:
			return Step{}, false // undisturbed (§6.2)
		case Reduced:
			to, label = Reduced, Failure
		case Settling:
			to, label = Settling, Reconfigure
		}
	case Reduced:
		switch target {
		case Reduced:
			return Step{}, false
		case Normal, Settling:
			// Conditions for (eventually) full service are back; state
			// reconstruction must run before re-entering N.
			to, label = Settling, Repair
		}
	case Settling:
		switch target {
		case Reduced:
			to, label = Reduced, Failure
		case Normal, Settling:
			// Overlapping reconstruction instances: S -> S Reconfigure.
			to, label = Settling, Reconfigure
		}
	}
	return m.step(from, to, label, v.ID), true
}

// ErrCannotReconcile is returned by Reconcile outside S-mode or while the
// current capability does not allow external operations.
var ErrCannotReconcile = errors.New("modes: reconcile not permitted")

// Reconcile is invoked by the application after it has successfully
// solved the shared state problem; it is the only entry into N-mode and
// the only transition synchronous with the computation.
func (m *Machine) Reconcile() (Step, error) {
	if m.mode != Settling {
		return Step{}, fmt.Errorf("%w: mode is %v, not S", ErrCannotReconcile, m.mode)
	}
	if m.target == Reduced {
		return Step{}, fmt.Errorf("%w: current view capability is R", ErrCannotReconcile)
	}
	return m.step(Settling, Normal, Reconcile, m.prev.ID), nil
}

func (m *Machine) step(from, to Mode, label Transition, view ids.ViewID) Step {
	now := m.now()
	dwell := now.Sub(m.since)
	m.resided[from] += dwell
	m.since = now
	m.mode = to
	st := Step{From: from, To: to, Label: label, View: view, At: now}
	m.history = append(m.history, st)
	m.counts[label]++
	if m.onStep != nil {
		m.onStep(st, dwell)
	}
	return st
}

// History returns all steps taken, oldest first.
func (m *Machine) History() []Step {
	out := make([]Step, len(m.history))
	copy(out, m.history)
	return out
}

// Counts returns the number of steps per transition label.
func (m *Machine) Counts() map[Transition]int {
	out := make(map[Transition]int, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	return out
}

// Residency returns the cumulative time spent in each mode, including
// the still-open stay in the current mode.
func (m *Machine) Residency() map[Mode]time.Duration {
	out := make(map[Mode]time.Duration, len(m.resided)+1)
	for k, v := range m.resided {
		out[k] = v
	}
	out[m.mode] += m.now().Sub(m.since)
	return out
}
