package modes

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/evs"
	"repro/internal/ids"
	"repro/internal/quorum"
)

var (
	pa = ids.PID{Site: "a", Inc: 1}
	pb = ids.PID{Site: "b", Inc: 1}
	pc = ids.PID{Site: "c", Inc: 1}
	pd = ids.PID{Site: "d", Inc: 1}
	pe = ids.PID{Site: "e", Inc: 1}
)

func flatView(epoch uint64, members ...ids.PID) core.EView {
	id := ids.ViewID{Epoch: epoch, Coord: members[0]}
	comp := ids.NewPIDSet(members...)
	return core.EView{ID: id, Members: comp.Sorted(), Structure: evs.Flat(id, comp)}
}

// fixedClock is an advanceable test clock.
type fixedClock struct{ t time.Time }

func (c *fixedClock) now() time.Time          { return c.t }
func (c *fixedClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFixedClock() *fixedClock              { return &fixedClock{t: time.Unix(1000, 0)} }
func constFunc(m Mode) Func                   { return func(_, _ core.EView) Mode { return m } }
func targetByEpoch(targets map[uint64]Mode) Func {
	return func(_, cur core.EView) Mode { return targets[cur.ID.Epoch] }
}

func TestInitialModeRules(t *testing.T) {
	v := flatView(1, pa)
	tests := []struct {
		name string
		fn   Func
		want Mode
	}{
		{"capability N starts settling", constFunc(Normal), Settling},
		{"capability S starts settling", constFunc(Settling), Settling},
		{"capability R starts reduced", constFunc(Reduced), Reduced},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := NewMachine(tt.fn, v)
			if m.Mode() != tt.want {
				t.Errorf("initial mode = %v, want %v", m.Mode(), tt.want)
			}
		})
	}
}

func TestFigure1TransitionTable(t *testing.T) {
	// Every legal (from, target) pair and its expected Figure-1 edge.
	tests := []struct {
		name      string
		from      Mode
		target    Mode
		wantMove  bool
		wantTo    Mode
		wantLabel Transition
	}{
		{"N stays N", Normal, Normal, false, 0, 0},
		{"N fails to R", Normal, Reduced, true, Reduced, Failure},
		{"N reconfigures to S", Normal, Settling, true, Settling, Reconfigure},
		{"R stays R", Reduced, Reduced, false, 0, 0},
		{"R repairs toward N via S", Reduced, Normal, true, Settling, Repair},
		{"R repairs to S", Reduced, Settling, true, Settling, Repair},
		{"S fails to R", Settling, Reduced, true, Reduced, Failure},
		{"S reconfigures on S", Settling, Settling, true, Settling, Reconfigure},
		{"S reconfigures on N target", Settling, Normal, true, Settling, Reconfigure},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m2 := machineInMode(t, tt.from)
			m2.fn = constFunc(tt.target)
			step, moved := m2.OnView(flatView(60, pa, pb))
			if moved != tt.wantMove {
				t.Fatalf("moved = %v, want %v", moved, tt.wantMove)
			}
			if !moved {
				if m2.Mode() != tt.from {
					t.Fatalf("mode changed without a step: %v", m2.Mode())
				}
				return
			}
			if step.From != tt.from || step.To != tt.wantTo || step.Label != tt.wantLabel {
				t.Fatalf("step = %+v, want %v-%v->%v", step, tt.from, tt.wantLabel, tt.wantTo)
			}
			if m2.Mode() != tt.wantTo {
				t.Fatalf("mode = %v, want %v", m2.Mode(), tt.wantTo)
			}
		})
	}
}

// machineInMode builds a machine currently in the given mode.
func machineInMode(t *testing.T, m Mode) *Machine {
	t.Helper()
	switch m {
	case Settling:
		return NewMachine(constFunc(Settling), flatView(1, pa))
	case Reduced:
		return NewMachine(constFunc(Reduced), flatView(1, pa))
	case Normal:
		mach := NewMachine(constFunc(Normal), flatView(1, pa))
		if _, err := mach.Reconcile(); err != nil {
			t.Fatalf("setup reconcile: %v", err)
		}
		return mach
	default:
		t.Fatalf("bad mode %v", m)
		return nil
	}
}

func TestReconcileIsOnlyEntryToNormal(t *testing.T) {
	m := NewMachine(constFunc(Normal), flatView(1, pa))
	if m.Mode() != Settling {
		t.Fatal("setup")
	}
	step, err := m.Reconcile()
	if err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if step.From != Settling || step.To != Normal || step.Label != Reconcile {
		t.Fatalf("step = %+v", step)
	}
	if m.Mode() != Normal {
		t.Fatalf("mode = %v", m.Mode())
	}
	// Reconcile outside S fails.
	if _, err := m.Reconcile(); !errors.Is(err, ErrCannotReconcile) {
		t.Fatalf("second Reconcile: %v", err)
	}
}

func TestReconcileRejectedWhileReduced(t *testing.T) {
	// In S with capability R... cannot happen (S,R -> R), so test the
	// guard directly: machine in S whose latest target is R after a
	// failure is in R; Reconcile must fail there.
	m := NewMachine(constFunc(Reduced), flatView(1, pa))
	if _, err := m.Reconcile(); !errors.Is(err, ErrCannotReconcile) {
		t.Fatalf("Reconcile in R: %v", err)
	}
}

func TestQuorumLifecycleScenario(t *testing.T) {
	// A five-replica file object: majority view -> settle -> reconcile
	// -> N; partition to minority -> R (Failure); repair -> S (Repair);
	// reconcile -> N.
	rw := quorum.MajorityRW(quorum.Uniform("a", "b", "c", "d", "e"))
	fn := QuorumFlat(rw)
	v5 := flatView(1, pa, pb, pc, pd, pe)
	m := NewMachine(fn, v5)
	if m.Mode() != Settling {
		t.Fatalf("initial = %v", m.Mode())
	}
	if _, err := m.Reconcile(); err != nil {
		t.Fatal(err)
	}

	// Partition: minority side {a,b}.
	step, moved := m.OnView(flatView(2, pa, pb))
	if !moved || step.Label != Failure || m.Mode() != Reduced {
		t.Fatalf("minority: %+v, mode %v", step, m.Mode())
	}
	// Repair: back to majority.
	step, moved = m.OnView(flatView(3, pa, pb, pc, pd))
	if !moved || step.Label != Repair || m.Mode() != Settling {
		t.Fatalf("repair: %+v, mode %v", step, m.Mode())
	}
	if _, err := m.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if m.Mode() != Normal {
		t.Fatal("not back to N")
	}
	counts := m.Counts()
	if counts[Failure] != 1 || counts[Repair] != 1 || counts[Reconcile] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestResidencyAccounting(t *testing.T) {
	clk := newFixedClock()
	m := newMachineAt(constFunc(Settling), flatView(1, pa), clk.now)
	clk.advance(10 * time.Second) // 10s in S
	m.fn = constFunc(Reduced)
	if _, ok := m.OnView(flatView(2, pa)); !ok {
		t.Fatal("no step")
	}
	clk.advance(5 * time.Second) // 5s in R
	res := m.Residency()
	if res[Settling] != 10*time.Second {
		t.Errorf("S residency = %v", res[Settling])
	}
	if res[Reduced] != 5*time.Second {
		t.Errorf("R residency = %v (open stay must count)", res[Reduced])
	}
}

func TestHistoryOrder(t *testing.T) {
	m := NewMachine(targetByEpoch(map[uint64]Mode{1: Settling, 2: Reduced, 3: Normal}), flatView(1, pa))
	m.OnView(flatView(2, pa))
	m.OnView(flatView(3, pa))
	if _, err := m.Reconcile(); err != nil {
		t.Fatal(err)
	}
	h := m.History()
	want := []Transition{Failure, Repair, Reconcile}
	if len(h) != len(want) {
		t.Fatalf("history = %+v", h)
	}
	for i, tr := range want {
		if h[i].Label != tr {
			t.Fatalf("history[%d] = %v, want %v", i, h[i].Label, tr)
		}
	}
}

func TestQuorumEnrichedModeFunc(t *testing.T) {
	rw := quorum.MajorityRW(quorum.Uniform("a", "b", "c", "d", "e"))
	fn := QuorumEnriched(pa, rw)

	// Minority view: R regardless of structure.
	if got := fn(core.EView{}, flatView(1, pa, pb)); got != Reduced {
		t.Errorf("minority = %v, want R", got)
	}
	// Majority view, single subview containing self and a quorum: N.
	if got := fn(core.EView{}, flatView(2, pa, pb, pc)); got != Normal {
		t.Errorf("majority subview with self = %v, want N", got)
	}
	// Majority view but fragmented structure (fresh singletons): S.
	id := ids.ViewID{Epoch: 3, Coord: pa}
	comp := ids.NewPIDSet(pa, pb, pc)
	frag := core.EView{ID: id, Members: comp.Sorted(), Structure: evs.Compose(id, comp, nil)}
	if got := fn(core.EView{}, frag); got != Settling {
		t.Errorf("fragmented majority = %v, want S", got)
	}
	// Majority view, quorum subview exists but self outside it: S.
	id4 := ids.ViewID{Epoch: 4, Coord: pa}
	comp4 := ids.NewPIDSet(pa, pb, pc, pd)
	pred := evs.Flat(ids.ViewID{Epoch: 3, Coord: pb}, ids.NewPIDSet(pb, pc, pd))
	st := evs.Compose(id4, comp4, []evs.Predecessor{{Structure: pred, Survivors: ids.NewPIDSet(pb, pc, pd)}})
	joined := core.EView{ID: id4, Members: comp4.Sorted(), Structure: st}
	if got := fn(core.EView{}, joined); got != Settling {
		t.Errorf("self outside quorum subview = %v, want S", got)
	}
	// Same view from pb's perspective: N.
	fnB := QuorumEnriched(pb, rw)
	if got := fnB(core.EView{}, joined); got != Normal {
		t.Errorf("member of quorum subview = %v, want N", got)
	}
}

func TestAlwaysSettle(t *testing.T) {
	fn := AlwaysSettle()
	if fn(core.EView{}, flatView(1, pa)) != Settling {
		t.Error("AlwaysSettle must return S")
	}
}

// TestMachinePropertyRandomDrives is a property test: under arbitrary
// sequences of view events (random targets) interleaved with reconcile
// attempts, the machine (a) takes only the six legal Figure-1 edges,
// (b) enters N only through Reconcile, and (c) never reconciles while
// the capability is R.
func TestMachinePropertyRandomDrives(t *testing.T) {
	r := rand.New(rand.NewSource(66))
	legal := map[[2]Mode]map[Transition]bool{
		{Normal, Reduced}:    {Failure: true},
		{Normal, Settling}:   {Reconfigure: true},
		{Reduced, Settling}:  {Repair: true},
		{Settling, Reduced}:  {Failure: true},
		{Settling, Settling}: {Reconfigure: true},
		{Settling, Normal}:   {Reconcile: true},
	}
	targets := []Mode{Normal, Reduced, Settling}
	for trial := 0; trial < 200; trial++ {
		next := targets[r.Intn(3)]
		fn := func(_, _ core.EView) Mode { return next }
		m := newMachineAt(fn, flatView(1, pa), newFixedClock().now)
		for step := 0; step < 50; step++ {
			if r.Intn(3) == 0 {
				st, err := m.Reconcile()
				if err == nil {
					if st.From != Settling || st.To != Normal || st.Label != Reconcile {
						t.Fatalf("trial %d: bad reconcile step %+v", trial, st)
					}
					if m.Target() == Reduced {
						t.Fatalf("trial %d: reconciled while capability R", trial)
					}
				}
				continue
			}
			next = targets[r.Intn(3)]
			st, moved := m.OnView(flatView(uint64(step+2), pa))
			if moved {
				if !legal[[2]Mode{st.From, st.To}][st.Label] {
					t.Fatalf("trial %d: illegal edge %v -%v-> %v", trial, st.From, st.Label, st.To)
				}
				if st.To == Normal && st.Label != Reconcile {
					t.Fatalf("trial %d: entered N without Reconcile", trial)
				}
			}
		}
		// The recorded history is internally consistent: each step
		// starts where the previous ended.
		h := m.History()
		for i := 1; i < len(h); i++ {
			if h[i].From != h[i-1].To {
				t.Fatalf("trial %d: history discontinuity at %d: %+v -> %+v", trial, i, h[i-1], h[i])
			}
		}
	}
}

func TestModeAndTransitionStrings(t *testing.T) {
	if Normal.String() != "N" || Reduced.String() != "R" || Settling.String() != "S" {
		t.Error("mode strings")
	}
	if Failure.String() != "Failure" || Repair.String() != "Repair" ||
		Reconfigure.String() != "Reconfigure" || Reconcile.String() != "Reconcile" {
		t.Error("transition strings")
	}
	if Mode(9).String() == "" || Transition(9).String() == "" {
		t.Error("unknown values must render")
	}
}

func TestObserveReportsStepsAndDwell(t *testing.T) {
	clk := newFixedClock()
	m := newMachineAt(targetByEpoch(map[uint64]Mode{1: Settling, 2: Reduced, 3: Settling}), flatView(1, pa, pb), clk.now)

	type obsStep struct {
		st    Step
		dwell time.Duration
	}
	var got []obsStep
	m.Observe(func(st Step, dwell time.Duration) { got = append(got, obsStep{st, dwell}) })

	clk.advance(5 * time.Millisecond)
	m.OnView(flatView(2, pa)) // S -Failure-> R after 5ms in S
	clk.advance(7 * time.Millisecond)
	m.OnView(flatView(3, pa, pb)) // R -Repair-> S after 7ms in R
	clk.advance(11 * time.Millisecond)
	if _, err := m.Reconcile(); err != nil { // S -Reconcile-> N after 11ms in S
		t.Fatalf("Reconcile: %v", err)
	}

	want := []struct {
		from, to Mode
		label    Transition
		dwell    time.Duration
	}{
		{Settling, Reduced, Failure, 5 * time.Millisecond},
		{Reduced, Settling, Repair, 7 * time.Millisecond},
		{Settling, Normal, Reconcile, 11 * time.Millisecond},
	}
	if len(got) != len(want) {
		t.Fatalf("observed %d steps, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		g := got[i]
		if g.st.From != w.from || g.st.To != w.to || g.st.Label != w.label || g.dwell != w.dwell {
			t.Fatalf("step %d = %+v dwell %v, want %v -%v-> %v dwell %v",
				i, g.st, g.dwell, w.from, w.label, w.to, w.dwell)
		}
	}

	// The observer must see exactly what History records.
	h := m.History()
	if len(h) != len(got) {
		t.Fatalf("history has %d steps, observer saw %d", len(h), len(got))
	}
	for i := range h {
		if h[i] != got[i].st {
			t.Fatalf("history[%d] = %+v, observer saw %+v", i, h[i], got[i].st)
		}
	}

}

func TestObserveSkipsNonTransitions(t *testing.T) {
	clk := newFixedClock()
	m := newMachineAt(constFunc(Reduced), flatView(1, pa), clk.now)
	fired := 0
	m.Observe(func(Step, time.Duration) { fired++ })
	clk.advance(time.Millisecond)
	if _, moved := m.OnView(flatView(2, pa)); moved {
		t.Fatal("R -> R should not be a transition")
	}
	if fired != 0 {
		t.Fatalf("observer fired %d times on a non-transition", fired)
	}
}
