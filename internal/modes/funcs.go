package modes

import (
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/quorum"
)

// AlwaysSettle returns the mode function of the paper's replicated
// look-up database example: every external operation can run in any view
// (R-mode does not exist), but any view change requires redefining the
// division of responsibility, so every view change targets S.
func AlwaysSettle() Func {
	return func(_, _ core.EView) Mode { return Settling }
}

// QuorumEnriched returns the mode function of the replicated-file example
// for a process running on enriched views, using §6.2's local reasoning:
//
//   - a view without a write quorum supports reads only: capability R;
//   - a view with a quorum-holding *subview* containing self: the
//     process's shared state is up to date, capability N;
//   - a view with a quorum but no quorum-holding subview (or self
//     outside it): state transfer / creation / merging is needed first,
//     capability S.
func QuorumEnriched(self ids.PID, rw quorum.RW) Func {
	return func(_, cur core.EView) Mode {
		comp := cur.Comp()
		if !rw.CanWrite(comp) {
			return Reduced
		}
		for _, sv := range cur.Structure.Subviews() {
			members := cur.Structure.SubviewMembers(sv)
			if rw.CanWrite(members) {
				if members.Has(self) {
					return Normal
				}
				return Settling
			}
		}
		return Settling
	}
}

// QuorumFlat returns the replicated-file mode function for traditional
// (flat) views. Without structure the process cannot tell locally whether
// an up-to-date majority survived — the paper's central observation — so
// any quorum view conservatively targets S and the application must run a
// classification protocol before reconciling.
func QuorumFlat(rw quorum.RW) Func {
	return func(_, cur core.EView) Mode {
		if !rw.CanWrite(cur.Comp()) {
			return Reduced
		}
		return Settling
	}
}
