package eventq

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPushPopFIFO(t *testing.T) {
	q := New[int]()
	for i := 0; i < 10; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) failed on open queue", i)
		}
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v; want %d,true", v, ok, i)
		}
	}
}

func TestTryPopEmpty(t *testing.T) {
	q := New[string]()
	if _, ok := q.TryPop(); ok {
		t.Error("TryPop on empty queue returned ok")
	}
	q.Push("x")
	if v, ok := q.TryPop(); !ok || v != "x" {
		t.Errorf("TryPop = %q,%v", v, ok)
	}
}

func TestPopBlocksUntilPush(t *testing.T) {
	q := New[int]()
	done := make(chan int, 1)
	go func() {
		v, _ := q.Pop()
		done <- v
	}()
	select {
	case v := <-done:
		t.Fatalf("Pop returned %d before any Push", v)
	case <-time.After(20 * time.Millisecond):
	}
	q.Push(7)
	select {
	case v := <-done:
		if v != 7 {
			t.Fatalf("Pop = %d, want 7", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop did not wake after Push")
	}
}

func TestCloseSemantics(t *testing.T) {
	q := New[int]()
	q.Push(1)
	q.Close()
	q.Close() // idempotent
	if q.Push(2) {
		t.Error("Push succeeded on closed queue")
	}
	if !q.Closed() {
		t.Error("Closed() = false after Close")
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Errorf("Pop after close = %d,%v; want 1,true (drain remaining)", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on closed drained queue returned ok")
	}
}

func TestCloseWakesBlockedPop(t *testing.T) {
	q := New[int]()
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Pop returned ok=true from closed empty queue")
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not wake blocked Pop")
	}
}

func TestDrain(t *testing.T) {
	q := New[int]()
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	got := q.Drain()
	if len(got) != 5 || q.Len() != 0 {
		t.Fatalf("Drain returned %v, Len=%d", got, q.Len())
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("Drain[%d] = %d", i, v)
		}
	}
}

func TestWaitSignalsOnPush(t *testing.T) {
	q := New[int]()
	select {
	case <-q.Wait():
		t.Fatal("Wait fired on empty queue")
	default:
	}
	q.Push(1)
	select {
	case <-q.Wait():
	case <-time.After(time.Second):
		t.Fatal("Wait did not fire after Push")
	}
	if v, ok := q.TryPop(); !ok || v != 1 {
		t.Fatalf("TryPop = %d,%v", v, ok)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	const producers, perProducer, consumers = 8, 500, 4
	q := New[int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p*perProducer + i)
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make([]int, 0, producers*perProducer)
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				mu.Lock()
				seen = append(seen, v)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d items, want %d", len(seen), producers*perProducer)
	}
	sort.Ints(seen)
	for i, v := range seen {
		if v != i {
			t.Fatalf("missing or duplicated item: seen[%d]=%d", i, v)
		}
	}
}

func TestFIFOProperty(t *testing.T) {
	// Property: single producer, single consumer -> exact order preserved.
	f := func(vals []int32) bool {
		q := New[int32]()
		for _, v := range vals {
			q.Push(v)
		}
		q.Close()
		for _, want := range vals {
			got, ok := q.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(3)), MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLen(t *testing.T) {
	q := New[int]()
	if q.Len() != 0 {
		t.Fatalf("empty queue Len = %d, want 0", q.Len())
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
		if got := q.Len(); got != i+1 {
			t.Fatalf("after %d pushes: Len = %d", i+1, got)
		}
	}
	for i := 0; i < 40; i++ {
		if _, ok := q.TryPop(); !ok {
			t.Fatalf("TryPop %d failed", i)
		}
	}
	if got := q.Len(); got != 60 {
		t.Fatalf("after 100 pushes and 40 pops: Len = %d, want 60", got)
	}
	q.Close()
	// Close does not drop queued items, so Len is unchanged...
	if got := q.Len(); got != 60 {
		t.Fatalf("after Close: Len = %d, want 60", got)
	}
	// ...and a Push to a closed queue is a no-op for Len too.
	if q.Push(7) {
		t.Fatal("Push succeeded on closed queue")
	}
	if got := q.Len(); got != 60 {
		t.Fatalf("after Push on closed queue: Len = %d, want 60", got)
	}
	q.Drain()
	if got := q.Len(); got != 0 {
		t.Fatalf("after Drain: Len = %d, want 0", got)
	}
}

// BenchmarkLen pins down that Len is O(1) regardless of queue depth:
// it is sampled every protocol tick as the queue-depth health gauge,
// so it must not scan.
func BenchmarkLen(b *testing.B) {
	for _, depth := range []int{0, 1 << 10, 1 << 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			q := New[int]()
			for i := 0; i < depth; i++ {
				q.Push(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if q.Len() != depth {
					b.Fatal("bad length")
				}
			}
		})
	}
}
