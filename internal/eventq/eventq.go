// Package eventq provides an unbounded FIFO queue with channel-based
// notification. The protocol engine uses it to hand events (views, e-view
// changes, message deliveries) to the application without ever blocking the
// protocol goroutine on a slow consumer, and to feed its own event loop.
//
// A plain Go channel cannot serve here: any finite capacity lets a stalled
// application back-pressure the membership protocol, which must keep
// processing failure-detector and network events to stay live.
package eventq

import "sync"

// Queue is an unbounded FIFO of values of type T. The zero value is not
// usable; construct with New. A Queue is safe for concurrent use by
// multiple producers and consumers.
type Queue[T any] struct {
	mu     sync.Mutex
	items  []T
	closed bool
	// notify has capacity 1 and carries "the queue may be non-empty or
	// closed" edge signals to blocked consumers.
	notify chan struct{}
}

// New returns an empty open queue.
func New[T any]() *Queue[T] {
	return &Queue[T]{notify: make(chan struct{}, 1)}
}

// Push appends v to the queue. Pushing to a closed queue is a no-op and
// returns false.
func (q *Queue[T]) Push(v T) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.wake()
	return true
}

// TryPop removes and returns the head of the queue. The second result is
// false if the queue was empty.
func (q *Queue[T]) TryPop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero // release for GC
	q.items = q.items[1:]
	return v, true
}

// Pop blocks until a value is available or the queue is closed and
// drained. The second result is false only in the closed-and-drained case.
func (q *Queue[T]) Pop() (T, bool) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			v := q.items[0]
			var zero T
			q.items[0] = zero
			q.items = q.items[1:]
			more := len(q.items) > 0
			q.mu.Unlock()
			if more {
				// Pass the wakeup along so that a second blocked
				// consumer is not stranded when two pushes collapsed
				// into one notify token.
				q.wake()
			}
			return v, true
		}
		if q.closed {
			q.mu.Unlock()
			q.wake() // propagate close to other blocked consumers
			var zero T
			return zero, false
		}
		q.mu.Unlock()
		<-q.notify
	}
}

// Wait returns a channel that receives a signal when the queue may have
// become non-empty or closed. Consumers that multiplex several queues with
// select use Wait + TryPop. A signal is a hint, not a guarantee: always
// re-check with TryPop.
func (q *Queue[T]) Wait() <-chan struct{} { return q.notify }

// Len returns the number of queued items. It is O(1) — a mutex
// acquisition and a slice length read, never a scan — so the protocol
// loop can sample it on every housekeeping tick as the queue-depth
// health gauge (core.ExtendedObserver.OnLoopHealth) without affecting
// the tick budget.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close marks the queue closed. Queued items remain poppable; Pop returns
// false once the queue is drained. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.wake()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Drain removes and returns all queued items.
func (q *Queue[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.items
	q.items = nil
	return out
}

func (q *Queue[T]) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}
