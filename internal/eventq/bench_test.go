package eventq

import "testing"

// BenchmarkPushPop measures the queue's single-threaded throughput — the
// path every protocol event takes.
func BenchmarkPushPop(b *testing.B) {
	q := New[int]()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if _, ok := q.TryPop(); !ok {
			b.Fatal("empty")
		}
	}
}

// BenchmarkProducerConsumer measures cross-goroutine handoff.
func BenchmarkProducerConsumer(b *testing.B) {
	q := New[int]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := q.Pop(); !ok {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i)
	}
	q.Close()
	<-done
}
