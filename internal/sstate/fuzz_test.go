package sstate

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/modes"
)

// FuzzDecodeInfo checks the announcement decoder never panics and every
// accepted payload re-encodes consistently.
func FuzzDecodeInfo(f *testing.F) {
	good, err := EncodeInfo(Info{
		From: ids.PID{Site: "a", Inc: 1},
		Pred: ids.ViewID{Epoch: 3, Coord: ids.PID{Site: "b", Inc: 2}},
		Mode: modes.Normal,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte("\x01sstate1\x00{}"))
	f.Add([]byte("\x01sstate1\x00not json"))
	f.Add([]byte("unrelated"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		info, err := DecodeInfo(payload)
		if err != nil {
			return
		}
		re, err := EncodeInfo(info)
		if err != nil {
			t.Fatalf("re-encode of accepted info failed: %v", err)
		}
		again, err := DecodeInfo(re)
		if err != nil || again != info {
			t.Fatalf("round trip mismatch: %+v vs %+v (%v)", info, again, err)
		}
	})
}
