package sstate

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/evs"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/quorum"
)

var (
	pa = ids.PID{Site: "a", Inc: 1}
	pb = ids.PID{Site: "b", Inc: 1}
	pc = ids.PID{Site: "c", Inc: 1}
	pd = ids.PID{Site: "d", Inc: 1}
	pe = ids.PID{Site: "e", Inc: 1}
)

func vid(e uint64, c ids.PID) ids.ViewID { return ids.ViewID{Epoch: e, Coord: c} }

// buildEView composes an enriched view from predecessor groups: each
// group of pids becomes one subview (they were together); remaining
// members arrive fresh as singletons.
func buildEView(t *testing.T, epoch uint64, members []ids.PID, groups ...[]ids.PID) core.EView {
	t.Helper()
	id := vid(epoch, members[0])
	comp := ids.NewPIDSet(members...)
	var preds []evs.Predecessor
	for i, g := range groups {
		gset := ids.NewPIDSet(g...)
		pv := vid(epoch-1, g[0])
		pv.Epoch -= uint64(i) // distinct predecessor view ids
		preds = append(preds, evs.Predecessor{
			Structure: evs.Flat(pv, gset),
			Survivors: gset,
		})
	}
	st := evs.Compose(id, comp, preds)
	if err := st.Validate(comp); err != nil {
		t.Fatalf("buildEView: %v", err)
	}
	return core.EView{ID: id, Members: comp.Sorted(), Structure: st}
}

// wasNMajority treats a cluster as formerly-N iff it holds a majority of
// the five test sites.
func wasNMajority(cluster ids.PIDSet) bool {
	rw := quorum.MajorityRW(quorum.Uniform("a", "b", "c", "d", "e"))
	return rw.CanWrite(cluster)
}

func TestClassifyEnrichedTransfer(t *testing.T) {
	// {a,b,c} were an N cluster; d joins fresh: state transfer.
	v := buildEView(t, 10, []ids.PID{pa, pb, pc, pd}, []ids.PID{pa, pb, pc})
	got := ClassifyEnriched(v, wasNMajority)
	if got.Kind != Transfer {
		t.Fatalf("Kind = %v, want transfer (%+v)", got.Kind, got)
	}
	if !got.NSet.Equal(ids.NewPIDSet(pa, pb, pc)) || !got.RSet.Equal(ids.NewPIDSet(pd)) {
		t.Fatalf("sets: N=%v R=%v", got.NSet, got.RSet)
	}
	if len(got.Clusters) != 1 {
		t.Fatalf("clusters = %v", got.Clusters)
	}
}

func TestClassifyEnrichedCreation(t *testing.T) {
	// Total failure: everyone recovered fresh; no N cluster anywhere.
	v := buildEView(t, 10, []ids.PID{pa, pb, pc})
	got := ClassifyEnriched(v, wasNMajority)
	if got.Kind != Creation {
		t.Fatalf("Kind = %v, want creation", got.Kind)
	}
	if len(got.NSet) != 0 || !got.RSet.Equal(ids.NewPIDSet(pa, pb, pc)) {
		t.Fatalf("sets: N=%v R=%v", got.NSet, got.RSet)
	}
}

func TestClassifyEnrichedMerging(t *testing.T) {
	// Two formerly-independent N clusters unite. With majority-based
	// wasN two disjoint majorities cannot exist, so use a weaker notion
	// (the look-up database: every cluster served lookups).
	v := buildEView(t, 10, []ids.PID{pa, pb, pc, pd},
		[]ids.PID{pa, pb}, []ids.PID{pc, pd})
	always := func(ids.PIDSet) bool { return true }
	got := ClassifyEnriched(v, always)
	if got.Kind != Merging {
		t.Fatalf("Kind = %v, want merging", got.Kind)
	}
	if len(got.Clusters) != 2 {
		t.Fatalf("clusters = %v", got.Clusters)
	}
}

func TestClassifyEnrichedTransferMerging(t *testing.T) {
	v := buildEView(t, 10, []ids.PID{pa, pb, pc, pd, pe},
		[]ids.PID{pa, pb}, []ids.PID{pc, pd}) // e is fresh
	always := func(ids.PIDSet) bool { return true }
	got := ClassifyEnriched(v, always)
	// e is a singleton fresh subview; with wasN == always, even e counts
	// as an N cluster -> 3 clusters, merging. Use a size-based judgment
	// so the singleton counts as R.
	sized := func(c ids.PIDSet) bool { return len(c) >= 2 }
	got = ClassifyEnriched(v, sized)
	if got.Kind != TransferMerging {
		t.Fatalf("Kind = %v, want transfer+merging (%+v)", got.Kind, got)
	}
	if !got.RSet.Equal(ids.NewPIDSet(pe)) {
		t.Fatalf("RSet = %v", got.RSet)
	}
}

func TestClassifyEnrichedNone(t *testing.T) {
	// Pure shrink: the surviving majority is one intact cluster, nobody
	// fresh: no shared state problem.
	v := buildEView(t, 10, []ids.PID{pa, pb, pc}, []ids.PID{pa, pb, pc})
	got := ClassifyEnriched(v, wasNMajority)
	if got.Kind != None {
		t.Fatalf("Kind = %v, want none", got.Kind)
	}
}

func TestPrimaryPartitionNeverMerges(t *testing.T) {
	// §4: under the primary-partition paradigm, primary views are totally
	// ordered, so N_v can never hold two clusters. Simulate a chain of
	// primary-view histories and check the classifier never says merging.
	// With majority-based wasN, two disjoint clusters cannot both be
	// majorities — the structural reason merging is impossible.
	members := []ids.PID{pa, pb, pc, pd, pe}
	for mask := 1; mask < 1<<5; mask++ {
		var left, right []ids.PID
		for i, p := range members {
			if mask&(1<<i) != 0 {
				left = append(left, p)
			} else {
				right = append(right, p)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			continue
		}
		v := buildEView(t, 10, members, left, right)
		got := ClassifyEnriched(v, wasNMajority)
		if got.Kind == Merging || got.Kind == TransferMerging {
			t.Fatalf("mask %05b: majority-based classification yielded %v", mask, got.Kind)
		}
	}
}

func TestInfoEncodingRoundTrip(t *testing.T) {
	info := Info{From: pa, Pred: vid(7, pb), Mode: modes.Normal}
	payload, err := EncodeInfo(info)
	if err != nil {
		t.Fatal(err)
	}
	if !IsInfo(payload) {
		t.Fatal("IsInfo = false")
	}
	got, err := DecodeInfo(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Fatalf("round trip: %+v != %+v", got, info)
	}
	if IsInfo([]byte("application data")) {
		t.Fatal("IsInfo true for app data")
	}
	if _, err := DecodeInfo([]byte("junk")); err == nil {
		t.Fatal("DecodeInfo accepted junk")
	}
}

func TestProtocolCollectsAndClassifies(t *testing.T) {
	v := buildEView(t, 10, []ids.PID{pa, pb, pc, pd}, []ids.PID{pa, pb, pc})
	pr := NewProtocol(v)

	mk := func(from ids.PID, pred ids.ViewID, mode modes.Mode) core.MsgEvent {
		payload, err := EncodeInfo(Info{From: from, Pred: pred, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		return core.MsgEvent{From: from, View: v.ID, Payload: payload}
	}
	predN := vid(9, pa)
	if done, err := pr.Offer(mk(pa, predN, modes.Normal)); done || err != nil {
		t.Fatalf("after 1: done=%v err=%v", done, err)
	}
	if _, err := pr.Classify(); err == nil {
		t.Fatal("Classify before completion must error")
	}
	if missing := pr.Missing(); len(missing) != 3 {
		t.Fatalf("Missing = %v", missing)
	}
	// App traffic and foreign views are ignored.
	if done, err := pr.Offer(core.MsgEvent{View: v.ID, Payload: []byte("app")}); done || err != nil {
		t.Fatalf("app msg: %v %v", done, err)
	}
	if done, err := pr.Offer(mk(pb, predN, modes.Normal)); done || err != nil {
		t.Fatalf("after 2: %v %v", done, err)
	}
	if done, err := pr.Offer(mk(pc, predN, modes.Normal)); done || err != nil {
		t.Fatalf("after 3: %v %v", done, err)
	}
	done, err := pr.Offer(mk(pd, vid(8, pd), modes.Reduced))
	if err != nil || !done {
		t.Fatalf("after 4: done=%v err=%v", done, err)
	}
	got, err := pr.Classify()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != Transfer {
		t.Fatalf("Kind = %v, want transfer", got.Kind)
	}
	if !got.NSet.Equal(ids.NewPIDSet(pa, pb, pc)) || !got.RSet.Equal(ids.NewPIDSet(pd)) {
		t.Fatalf("N=%v R=%v", got.NSet, got.RSet)
	}
}

func TestProtocolClustersByPredecessorView(t *testing.T) {
	v := buildEView(t, 10, []ids.PID{pa, pb, pc, pd})
	pr := NewProtocol(v)
	predLeft, predRight := vid(9, pa), vid(9, pc)
	for _, in := range []Info{
		{From: pa, Pred: predLeft, Mode: modes.Normal},
		{From: pb, Pred: predLeft, Mode: modes.Normal},
		{From: pc, Pred: predRight, Mode: modes.Normal},
		{From: pd, Pred: predRight, Mode: modes.Normal},
	} {
		payload, err := EncodeInfo(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pr.Offer(core.MsgEvent{From: in.From, View: v.ID, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := pr.Classify()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != Merging || len(got.Clusters) != 2 {
		t.Fatalf("got %v with %d clusters, want merging with 2", got.Kind, len(got.Clusters))
	}
}

func TestProtocolRejectsNonMember(t *testing.T) {
	v := buildEView(t, 10, []ids.PID{pa, pb})
	pr := NewProtocol(v)
	payload, err := EncodeInfo(Info{From: pe, Pred: vid(9, pe), Mode: modes.Normal})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Offer(core.MsgEvent{From: pe, View: v.ID, Payload: payload}); err == nil {
		t.Fatal("announcement from non-member accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Transfer: "transfer", Creation: "creation",
		Merging: "merging", TransferMerging: "transfer+merging",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind must render")
	}
}

// TestClassificationMatchesNecessaryConditions is a property test: for
// random decompositions into N clusters and an R set, the classifier's
// verdict must equal the §4 necessary-condition table.
func TestClassificationMatchesNecessaryConditions(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	people := []ids.PID{pa, pb, pc, pd, pe}
	for trial := 0; trial < 500; trial++ {
		// Random assignment: group 0..2 = cluster id, 3 = R set, 4 = absent.
		clusters := map[int]ids.PIDSet{}
		rset := make(ids.PIDSet)
		groups := make([][]ids.PID, 0)
		present := make([]ids.PID, 0)
		for _, p := range people {
			switch g := r.Intn(5); {
			case g < 3:
				if clusters[g] == nil {
					clusters[g] = make(ids.PIDSet)
				}
				clusters[g].Add(p)
				present = append(present, p)
			case g == 3:
				rset.Add(p)
				present = append(present, p)
			}
		}
		if len(present) == 0 {
			continue
		}
		for _, c := range clusters {
			groups = append(groups, c.Sorted())
		}
		v := buildEView(t, 10, present, groups...)
		// wasN: exactly the chosen clusters (by membership).
		wasN := func(c ids.PIDSet) bool {
			for _, cl := range clusters {
				if c.Equal(cl) {
					return true
				}
			}
			return false
		}
		got := ClassifyEnriched(v, wasN)
		nClusters := len(clusters)
		var want Kind
		switch {
		case nClusters == 0 && len(rset) > 0:
			want = Creation
		case nClusters >= 2 && len(rset) > 0:
			want = TransferMerging
		case nClusters >= 2:
			want = Merging
		case nClusters == 1 && len(rset) > 0:
			want = Transfer
		default:
			want = None
		}
		if got.Kind != want {
			t.Fatalf("trial %d: %d clusters, |R|=%d: got %v, want %v",
				trial, nClusters, len(rset), got.Kind, want)
		}
		if !got.RSet.Equal(rset) {
			t.Fatalf("trial %d: RSet = %v, want %v", trial, got.RSet, rset)
		}
		if len(got.Clusters) != nClusters {
			t.Fatalf("trial %d: %d clusters reported, want %d", trial, len(got.Clusters), nClusters)
		}
	}
}

func TestClustersSortedDeterministically(t *testing.T) {
	v := buildEView(t, 10, []ids.PID{pa, pb, pc, pd},
		[]ids.PID{pc, pd}, []ids.PID{pa, pb})
	always := func(ids.PIDSet) bool { return true }
	got := ClassifyEnriched(v, always)
	if len(got.Clusters) != 2 {
		t.Fatalf("clusters = %v", got.Clusters)
	}
	first, _ := got.Clusters[0].Min()
	if first != pa {
		t.Fatalf("clusters not sorted by min member: %v", got.Clusters)
	}
}
