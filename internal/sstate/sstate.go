// Package sstate classifies the shared state problem (Section 4 of the
// paper). When a view change switches a process to S-mode, the processes
// of the new view v split into:
//
//	R_v — processes that were in R-mode before the switch, and
//	N_v — processes that were in N-mode, further decomposed into
//	      *clusters*: groups that were in the same view while in N-mode.
//
// The necessary conditions:
//
//	State transfer:  R_v and N_v both non-empty (one N cluster);
//	State creation:  N_v empty, R_v non-empty (e.g. after total failure);
//	State merging:   N_v has >= 2 clusters (concurrent partitions served
//	                 external operations independently);
//	Transfer+merging when both last conditions hold.
//
// Flat views cannot support this classification with local information —
// the paper's central criticism — so the package provides two
// classifiers:
//
//	ClassifyEnriched reads the answer off the subview structure of an
//	enriched view, with zero communication (§6.2);
//
//	Protocol implements what flat views force: a full round in which
//	every member multicasts its predecessor view and mode, costing
//	n multicasts (n² point-to-point messages) and one round-trip of
//	latency before the classification is known.
package sstate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/modes"
)

// Kind is the incarnation of the shared state problem.
type Kind int

// The problem kinds of Section 4.
const (
	// None: a single N cluster and nobody needing a transfer (e.g. the
	// view only shrank); no shared state problem.
	None Kind = iota + 1
	Transfer
	Creation
	Merging
	TransferMerging
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transfer:
		return "transfer"
	case Creation:
		return "creation"
	case Merging:
		return "merging"
	case TransferMerging:
		return "transfer+merging"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Classification is the outcome: the kind plus the sets that induced it.
type Classification struct {
	Kind Kind
	// NSet is the union of all N clusters.
	NSet ids.PIDSet
	// RSet holds the processes that were in R-mode (or are fresh).
	RSet ids.PIDSet
	// Clusters decomposes NSet by pre-change co-location, sorted by
	// smallest member for determinism.
	Clusters []ids.PIDSet
}

// classify applies the Section-4 necessary conditions to the computed
// sets.
func classify(nClusters []ids.PIDSet, rset ids.PIDSet) Classification {
	sort.Slice(nClusters, func(i, j int) bool {
		a, _ := nClusters[i].Min()
		b, _ := nClusters[j].Min()
		return a.Less(b)
	})
	nset := make(ids.PIDSet)
	for _, c := range nClusters {
		for p := range c {
			nset.Add(p)
		}
	}
	out := Classification{NSet: nset, RSet: rset, Clusters: nClusters}
	switch {
	case len(nClusters) == 0 && len(rset) > 0:
		out.Kind = Creation
	case len(nClusters) >= 2 && len(rset) > 0:
		out.Kind = TransferMerging
	case len(nClusters) >= 2:
		out.Kind = Merging
	case len(nClusters) == 1 && len(rset) > 0:
		out.Kind = Transfer
	default:
		out.Kind = None
	}
	return out
}

// WasNormal judges whether a cluster of processes was serving all
// external operations (N-mode) before the change, given only the cluster
// composition. It is application-specific: for a quorum-based object it
// is "the cluster holds a write quorum"; for the look-up database it is
// "always true". All processes of a group share the same judgment, like
// the mode function itself.
type WasNormal func(cluster ids.PIDSet) bool

// ClassifyEnriched classifies the shared state problem locally from an
// enriched view: each subview is a cluster of processes whose structure
// proves they were together before the change (P6.3); wasN decides which
// clusters were serving in N-mode. No communication is needed — the §6.2
// argument.
func ClassifyEnriched(v core.EView, wasN WasNormal) Classification {
	var nClusters []ids.PIDSet
	rset := make(ids.PIDSet)
	for _, sv := range v.Structure.Subviews() {
		members := v.Structure.SubviewMembers(sv)
		if wasN(members) {
			nClusters = append(nClusters, members)
		} else {
			for p := range members {
				rset.Add(p)
			}
		}
	}
	return classify(nClusters, rset)
}

// ---- the flat-view protocol ----

// Info is one member's announcement in the flat classification protocol:
// which view it comes from and which mode it was in.
type Info struct {
	From ids.PID    `json:"from"`
	Pred ids.ViewID `json:"pred"`
	// Mode is the announcing process's mode before the view change.
	Mode modes.Mode `json:"mode"`
}

// infoMagic prefixes protocol payloads so applications can separate them
// from their own traffic.
var infoMagic = []byte("\x01sstate1\x00")

// EncodeInfo serializes an announcement for multicast.
func EncodeInfo(info Info) ([]byte, error) {
	body, err := json.Marshal(info)
	if err != nil {
		return nil, fmt.Errorf("sstate: encode info: %w", err)
	}
	return append(append([]byte{}, infoMagic...), body...), nil
}

// IsInfo reports whether a payload is a classification announcement.
func IsInfo(payload []byte) bool { return bytes.HasPrefix(payload, infoMagic) }

// DecodeInfo parses an announcement.
func DecodeInfo(payload []byte) (Info, error) {
	if !IsInfo(payload) {
		return Info{}, fmt.Errorf("sstate: not an info payload")
	}
	var info Info
	if err := json.Unmarshal(payload[len(infoMagic):], &info); err != nil {
		return Info{}, fmt.Errorf("sstate: decode info: %w", err)
	}
	return info, nil
}

// Protocol collects announcements for one view until every member has
// reported, then classifies. This is the "complex and costly" path flat
// views impose: one multicast per member and a full round of latency.
// Create a fresh Protocol per installed view; abandon it if another view
// change arrives first.
type Protocol struct {
	view core.EView
	want ids.PIDSet
	got  map[ids.PID]Info
}

// NewProtocol starts a collection round for the given view.
func NewProtocol(v core.EView) *Protocol {
	return &Protocol{view: v, want: v.Comp(), got: make(map[ids.PID]Info, v.Size())}
}

// Announcement builds this process's own announcement for the round.
func Announcement(self ids.PID, predView ids.ViewID, mode modes.Mode) ([]byte, error) {
	return EncodeInfo(Info{From: self, Pred: predView, Mode: mode})
}

// Offer feeds a delivered message into the round. It returns true once
// every member of the view has reported. Messages from other views or
// non-protocol payloads are ignored.
func (pr *Protocol) Offer(m core.MsgEvent) (bool, error) {
	if m.View != pr.view.ID || !IsInfo(m.Payload) {
		return pr.complete(), nil
	}
	info, err := DecodeInfo(m.Payload)
	if err != nil {
		return pr.complete(), err
	}
	if !pr.want.Has(info.From) {
		return pr.complete(), fmt.Errorf("sstate: announcement from non-member %v", info.From)
	}
	pr.got[info.From] = info
	return pr.complete(), nil
}

func (pr *Protocol) complete() bool { return len(pr.got) == len(pr.want) }

// Missing returns members that have not announced yet.
func (pr *Protocol) Missing() ids.PIDSet {
	out := make(ids.PIDSet)
	for p := range pr.want {
		if _, ok := pr.got[p]; !ok {
			out.Add(p)
		}
	}
	return out
}

// Classify computes the classification from the collected announcements:
// clusters group the members that were in N-mode by their predecessor
// view. It is an error to classify before the round is complete.
func (pr *Protocol) Classify() (Classification, error) {
	if !pr.complete() {
		return Classification{}, fmt.Errorf("sstate: round incomplete, missing %v", pr.Missing())
	}
	rset := make(ids.PIDSet)
	byPred := make(map[ids.ViewID]ids.PIDSet)
	for p, info := range pr.got {
		if info.Mode == modes.Normal {
			if byPred[info.Pred] == nil {
				byPred[info.Pred] = make(ids.PIDSet)
			}
			byPred[info.Pred].Add(p)
		} else {
			rset.Add(p)
		}
	}
	clusters := make([]ids.PIDSet, 0, len(byPred))
	for _, c := range byPred {
		clusters = append(clusters, c)
	}
	return classify(clusters, rset), nil
}
