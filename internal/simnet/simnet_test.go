package simnet

import (
	"testing"
	"time"

	"repro/internal/ids"
)

var (
	pa = ids.PID{Site: "a", Inc: 1}
	pb = ids.PID{Site: "b", Inc: 1}
	pc = ids.PID{Site: "c", Inc: 1}
)

func fastFabric(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	if cfg.Delay == nil {
		cfg.Delay = NewUniformDelay(0, 100*time.Microsecond, 99)
	}
	f := New(cfg)
	t.Cleanup(f.Close)
	return f
}

func attach(t *testing.T, f *Fabric, pid ids.PID) *Endpoint {
	t.Helper()
	ep, err := f.Attach(pid)
	if err != nil {
		t.Fatalf("Attach(%v): %v", pid, err)
	}
	return ep.(*Endpoint)
}

func recvWithin(t *testing.T, ep *Endpoint, d time.Duration) (Message, bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if m, ok := ep.TryRecv(); ok {
			return m, true
		}
		if time.Now().After(deadline) {
			return Message{}, false
		}
		select {
		case <-ep.Wait():
		case <-time.After(time.Millisecond):
		}
	}
}

func TestUnicastDelivery(t *testing.T) {
	f := fastFabric(t, Config{})
	a := attach(t, f, pa)
	b := attach(t, f, pb)
	a.Send(pb, "hello")
	m, ok := recvWithin(t, b, time.Second)
	if !ok {
		t.Fatal("message not delivered")
	}
	if m.From != pa || m.To != pb || m.Payload != "hello" {
		t.Fatalf("wrong message: %+v", m)
	}
	s := f.Stats()
	if s.Sent != 1 || s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAttachDuplicateFails(t *testing.T) {
	f := fastFabric(t, Config{})
	attach(t, f, pa)
	if _, err := f.Attach(pa); err == nil {
		t.Fatal("duplicate Attach succeeded")
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	f := fastFabric(t, Config{})
	a := attach(t, f, pa)
	b := attach(t, f, pb)
	c := attach(t, f, pc)
	a.Broadcast("hb")
	for _, ep := range []*Endpoint{b, c} {
		if _, ok := recvWithin(t, ep, time.Second); !ok {
			t.Fatalf("broadcast not delivered to %v", ep.PID())
		}
	}
	if m, ok := recvWithin(t, a, 30*time.Millisecond); ok {
		t.Fatalf("sender received own broadcast: %+v", m)
	}
}

func TestPartitionBlocksTraffic(t *testing.T) {
	f := fastFabric(t, Config{})
	a := attach(t, f, pa)
	b := attach(t, f, pb)
	f.SetPartitions([]string{"a"}, []string{"b"})
	if f.Reachable("a", "b") {
		t.Fatal("a and b should be unreachable")
	}
	a.Send(pb, "x")
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("message crossed a partition")
	}
	if s := f.Stats(); s.DroppedPartition != 1 {
		t.Fatalf("DroppedPartition = %d, want 1", s.DroppedPartition)
	}

	f.Heal()
	if !f.Reachable("a", "b") {
		t.Fatal("heal failed")
	}
	a.Send(pb, "y")
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("message not delivered after heal")
	}
}

func TestPartitionByComponentGroups(t *testing.T) {
	f := fastFabric(t, Config{})
	a := attach(t, f, pa)
	attach(t, f, pb)
	c := attach(t, f, pc)
	f.SetPartitions([]string{"a", "b"}, []string{"c"})
	if !f.Reachable("a", "b") || f.Reachable("a", "c") || f.Reachable("b", "c") {
		t.Fatal("component reachability wrong")
	}
	a.Send(pc, "blocked")
	if _, ok := recvWithin(t, c, 50*time.Millisecond); ok {
		t.Fatal("cross-component message delivered")
	}
	// Unmentioned sites share an implicit component: d,e reachable.
	f.SetPartitions([]string{"a"})
	if !f.Reachable("d", "e") || f.Reachable("a", "d") {
		t.Fatal("implicit component wrong")
	}
	_ = a
}

func TestInFlightMessageCutByPartition(t *testing.T) {
	f := fastFabric(t, Config{Delay: NewUniformDelay(80*time.Millisecond, 80*time.Millisecond, 1)})
	a := attach(t, f, pa)
	b := attach(t, f, pb)
	a.Send(pb, "slow")
	f.SetPartitions([]string{"a"}, []string{"b"}) // partition forms mid-flight
	if _, ok := recvWithin(t, b, 200*time.Millisecond); ok {
		t.Fatal("in-flight message survived partition")
	}
}

func TestDetachDropsTraffic(t *testing.T) {
	f := fastFabric(t, Config{})
	a := attach(t, f, pa)
	b := attach(t, f, pb)
	f.Detach(pb)
	if !b.Closed() {
		t.Fatal("detached endpoint not closed")
	}
	a.Send(pb, "x")
	time.Sleep(20 * time.Millisecond)
	if s := f.Stats(); s.DroppedDead != 1 {
		t.Fatalf("DroppedDead = %d, want 1", s.DroppedDead)
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("Recv on detached endpoint returned a message")
	}
}

func TestLossRateDropsSome(t *testing.T) {
	f := fastFabric(t, Config{LossRate: 0.5, Seed: 42})
	a := attach(t, f, pa)
	b := attach(t, f, pb)
	const n = 200
	for i := 0; i < n; i++ {
		a.Send(pb, i)
	}
	time.Sleep(100 * time.Millisecond)
	s := f.Stats()
	if s.DroppedLoss == 0 || s.DroppedLoss == n {
		t.Fatalf("DroppedLoss = %d, want strictly between 0 and %d", s.DroppedLoss, n)
	}
	got := 0
	for {
		if _, ok := b.TryRecv(); !ok {
			break
		}
		got++
	}
	if uint64(got) != s.Delivered {
		t.Fatalf("received %d, stats say %d", got, s.Delivered)
	}
}

type kindedPayload struct{ k string }

func (p kindedPayload) FabricKind() string { return p.k }
func (p kindedPayload) FabricSize() int    { return 64 }

func TestStatsPerKindAndBytes(t *testing.T) {
	f := fastFabric(t, Config{})
	a := attach(t, f, pa)
	attach(t, f, pb)
	a.Send(pb, kindedPayload{k: "data"})
	a.Send(pb, kindedPayload{k: "data"})
	a.Send(pb, kindedPayload{k: "propose"})
	a.Send(pb, "untyped")
	s := f.Stats()
	if s.PerKind["data"] != 2 || s.PerKind["propose"] != 1 || s.PerKind["other"] != 1 {
		t.Fatalf("PerKind = %v", s.PerKind)
	}
	if s.BytesSent != 64*3+1 {
		t.Fatalf("BytesSent = %d", s.BytesSent)
	}
	f.ResetStats()
	if s := f.Stats(); s.Sent != 0 || len(s.PerKind) != 0 {
		t.Fatalf("ResetStats left %+v", s)
	}
}

func TestDelayOrderingRoughlyFIFOForEqualDelay(t *testing.T) {
	// With a constant delay model, two sends to the same destination must
	// arrive in send order (tie-broken by sequence).
	f := fastFabric(t, Config{Delay: NewUniformDelay(time.Millisecond, time.Millisecond, 7)})
	a := attach(t, f, pa)
	b := attach(t, f, pb)
	for i := 0; i < 50; i++ {
		a.Send(pb, i)
	}
	for i := 0; i < 50; i++ {
		m, ok := recvWithin(t, b, time.Second)
		if !ok {
			t.Fatalf("message %d missing", i)
		}
		if m.Payload.(int) != i {
			t.Fatalf("out of order: got %v at position %d", m.Payload, i)
		}
	}
}

func TestCloseStopsEverything(t *testing.T) {
	f := New(Config{Delay: NewUniformDelay(0, 0, 0)})
	a, err := f.Attach(pa)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Attach(pb); err == nil {
		t.Fatal("Attach succeeded on closed fabric")
	}
	if _, ok := a.Recv(); ok {
		t.Fatal("Recv returned message after Close")
	}
	a.Send(pa, "ignored") // must not panic
	f.Close()             // idempotent
}

func TestEndpointsSorted(t *testing.T) {
	f := fastFabric(t, Config{})
	attach(t, f, pc)
	attach(t, f, pa)
	attach(t, f, pb)
	got := f.Endpoints()
	if len(got) != 3 || got[0] != pa || got[1] != pb || got[2] != pc {
		t.Fatalf("Endpoints = %v", got)
	}
}

func TestBandwidthSerializesIngress(t *testing.T) {
	// 1 MB/s: a 100 KB message occupies the receiver link for ~100ms, so
	// two of them back-to-back take ~200ms while a lone small message to
	// another receiver arrives immediately.
	f := fastFabric(t, Config{
		Delay:     NewUniformDelay(0, 0, 1),
		Bandwidth: 1 << 20,
	})
	a := attach(t, f, pa)
	b := attach(t, f, pb)
	c := attach(t, f, pc)

	big := kindedBig{n: 100 << 10}
	start := time.Now()
	a.Send(pb, big)
	a.Send(pb, big)
	a.Send(pc, "small")

	if _, ok := recvWithin(t, c, time.Second); !ok {
		t.Fatal("small message to idle receiver not delivered")
	}
	if d := time.Since(start); d > 60*time.Millisecond {
		t.Fatalf("small message waited %v behind other receiver's traffic", d)
	}
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("first big message missing")
	}
	firstAt := time.Since(start)
	if _, ok := recvWithin(t, b, time.Second); !ok {
		t.Fatal("second big message missing")
	}
	secondAt := time.Since(start)
	if firstAt < 80*time.Millisecond || secondAt < 160*time.Millisecond {
		t.Fatalf("bandwidth not modeled: first %v, second %v", firstAt, secondAt)
	}
}

type kindedBig struct{ n int }

func (k kindedBig) FabricKind() string { return "big" }
func (k kindedBig) FabricSize() int    { return k.n }

func TestUniformDelayBounds(t *testing.T) {
	u := NewUniformDelay(2*time.Millisecond, 5*time.Millisecond, 11)
	for i := 0; i < 1000; i++ {
		d := u.Delay("a", "b")
		if d < 2*time.Millisecond || d > 5*time.Millisecond {
			t.Fatalf("delay %v out of bounds", d)
		}
	}
	if NewUniformDelay(5, 1, 0).Max != 5*time.Nanosecond {
		// max < min clamps to min
		t.Fatal("clamp failed")
	}
}

func TestStatsPerKindBytesAndDelivered(t *testing.T) {
	f := fastFabric(t, Config{})
	a := attach(t, f, pa)
	b := attach(t, f, pb)
	a.Send(pb, kindedPayload{k: "data"})
	a.Send(pb, kindedPayload{k: "propose"})
	for got := 0; got < 2; {
		if _, ok := recvWithin(t, b, time.Second); !ok {
			t.Fatal("delivery timeout")
		} else {
			got++
		}
	}
	s := f.Stats()
	if s.PerKindBytes["data"] != 64 || s.PerKindBytes["propose"] != 64 {
		t.Fatalf("PerKindBytes = %v", s.PerKindBytes)
	}
	if s.PerKindDelivered["data"] != 1 || s.PerKindDelivered["propose"] != 1 {
		t.Fatalf("PerKindDelivered = %v", s.PerKindDelivered)
	}
}

// TestStatsSnapshotIsolation pins the documented snapshot semantics:
// Stats returns a deep copy — mutating it, or traffic after the call,
// must not show through; ResetStats starts a fresh epoch.
func TestStatsSnapshotIsolation(t *testing.T) {
	f := fastFabric(t, Config{})
	a := attach(t, f, pa)
	attach(t, f, pb)
	a.Send(pb, kindedPayload{k: "data"})
	snap := f.Stats()
	if snap.PerKind["data"] != 1 {
		t.Fatalf("PerKind = %v", snap.PerKind)
	}

	// Mutating the snapshot must not corrupt the fabric's live counters.
	snap.PerKind["data"] = 99
	snap.PerKindBytes["data"] = 99
	if live := f.Stats(); live.PerKind["data"] != 1 || live.PerKindBytes["data"] != 64 {
		t.Fatalf("snapshot mutation leaked into fabric: %+v", live)
	}

	// Traffic after the snapshot must not show in it.
	a.Send(pb, kindedPayload{k: "data"})
	if snap.PerKind["data"] != 99 {
		t.Fatal("snapshot changed after later traffic")
	}
	if live := f.Stats(); live.PerKind["data"] != 2 {
		t.Fatalf("PerKind after second send = %v", live.PerKind)
	}

	f.ResetStats()
	s := f.Stats()
	if s.Sent != 0 || s.BytesSent != 0 || len(s.PerKind) != 0 ||
		len(s.PerKindBytes) != 0 || len(s.PerKindDelivered) != 0 {
		t.Fatalf("ResetStats left %+v", s)
	}
	// And the fresh epoch counts normally.
	a.Send(pb, kindedPayload{k: "hb"})
	if s := f.Stats(); s.PerKind["hb"] != 1 {
		t.Fatalf("post-reset PerKind = %v", s.PerKind)
	}
}

func TestDescribe(t *testing.T) {
	if k, n := Describe(kindedPayload{k: "propose"}); k != "propose" || n != 64 {
		t.Fatalf("Describe(kinded) = %q, %d", k, n)
	}
	if k, n := Describe("untyped"); k != "other" || n != 1 {
		t.Fatalf("Describe(string) = %q, %d", k, n)
	}
}
