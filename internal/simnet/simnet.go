// Package simnet simulates the asynchronous, partitionable network the
// paper assumes: processes at remote sites connected by links that may
// delay, drop, and — crucially — partition. There are no bounds the upper
// layers may rely on: delays are drawn from a pluggable model, and a
// partition oracle can split and heal the network at any moment,
// independent of the computation.
//
// The fabric carries opaque payloads between named endpoints and offers a
// broadcast primitive modeling LAN-style heartbeat broadcast, which the
// membership layer uses for discovery after partitions heal.
//
// The fabric is the default implementation of transport.Transport (and
// its Partitioner fault surface); internal/transport/udp is the
// real-socket alternative.
package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/eventq"
	"repro/internal/ids"
	"repro/internal/transport"
)

// Message, Stats, Kinder, and Sizer are the transport-layer types; the
// aliases keep simnet's historical names working.
type (
	Message = transport.Message
	Stats   = transport.Stats
	Kinder  = transport.Kinder
	Sizer   = transport.Sizer
)

// Describe classifies a payload for statistics; see transport.Describe.
func Describe(payload any) (kind string, size int) {
	return transport.Describe(payload)
}

// DelayModel produces per-message latencies.
type DelayModel interface {
	// Delay returns the one-way latency for a message between two sites.
	Delay(from, to string) time.Duration
}

// UniformDelay draws latencies uniformly from [Min, Max]. It is safe for
// concurrent use.
type UniformDelay struct {
	Min, Max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewUniformDelay returns a delay model drawing from [min, max] using the
// given seed.
func NewUniformDelay(min, max time.Duration, seed int64) *UniformDelay {
	if max < min {
		max = min
	}
	return &UniformDelay{Min: min, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay implements DelayModel.
func (u *UniformDelay) Delay(_, _ string) time.Duration {
	if u.Max == u.Min {
		return u.Min
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.Min + time.Duration(u.rng.Int63n(int64(u.Max-u.Min)+1))
}

// Config parametrizes a Fabric.
type Config struct {
	// Delay is the latency model. Nil means a uniform 200µs–1ms model.
	Delay DelayModel
	// LossRate is the probability in [0,1) that any unicast message is
	// silently dropped.
	LossRate float64
	// Bandwidth, when positive, models each receiver's ingress link in
	// bytes per second: messages to one endpoint serialize, each
	// occupying the link for Size/Bandwidth. Zero means infinite
	// bandwidth (latency only).
	Bandwidth int64
	// Seed seeds the loss model's RNG.
	Seed int64
	// NoPiggyback disables heartbeat piggybacking (see broadcast); used
	// by tests that need every heartbeat as its own packet.
	NoPiggyback bool
}

// pendKey identifies the (sender, destination) pair of a queued data
// packet eligible to carry piggybacked heartbeats.
type pendKey struct{ from, to ids.PID }

// Fabric is the simulated network. Create with New, stop with Close.
type Fabric struct {
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[ids.PID]*Endpoint
	// component maps a site name to its partition component. Absent
	// entries are component 0. Partitioning is by site: all incarnations
	// of a site share its connectivity.
	component map[string]int
	stats     Stats
	closed    bool
	nextSeq   uint64
	// busyUntil models per-receiver ingress-link serialization when
	// Bandwidth > 0.
	busyUntil map[ids.PID]time.Time
	// pending tracks, per (sender, destination), the most recently
	// queued data packet, so a heartbeat broadcast to that destination
	// can ride on it instead of becoming a packet of its own. Entries
	// are invalidated when their packet leaves the queue.
	pending map[pendKey]*scheduled

	queue    deliveryQueue
	wakeup   chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Compile-time checks: the fabric is a transport with fault injection.
var (
	_ transport.Transport   = (*Fabric)(nil)
	_ transport.Partitioner = (*Fabric)(nil)
)

// New creates a running fabric.
func New(cfg Config) *Fabric {
	if cfg.Delay == nil {
		cfg.Delay = NewUniformDelay(200*time.Microsecond, time.Millisecond, cfg.Seed+1)
	}
	f := &Fabric{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		endpoints: make(map[ids.PID]*Endpoint),
		component: make(map[string]int),
		busyUntil: make(map[ids.PID]time.Time),
		pending:   make(map[pendKey]*scheduled),
		wakeup:    make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	f.stats = transport.NewStats()
	go f.run()
	return f
}

// Close stops the fabric's delivery goroutine and closes all endpoints.
func (f *Fabric) Close() {
	f.stopOnce.Do(func() {
		f.mu.Lock()
		f.closed = true
		eps := make([]*Endpoint, 0, len(f.endpoints))
		for _, ep := range f.endpoints {
			eps = append(eps, ep)
		}
		f.endpoints = make(map[ids.PID]*Endpoint)
		f.mu.Unlock()
		close(f.done)
		for _, ep := range eps {
			ep.inbox.Close()
		}
	})
}

// ErrClosed is returned for operations on a closed fabric.
var ErrClosed = errors.New("simnet: fabric closed")

// Attach registers a new endpoint for pid. It is an error to attach a pid
// that is already attached.
func (f *Fabric) Attach(pid ids.PID) (transport.Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if _, dup := f.endpoints[pid]; dup {
		return nil, fmt.Errorf("simnet: pid %v already attached", pid)
	}
	ep := &Endpoint{pid: pid, fabric: f, inbox: eventq.New[Message]()}
	f.endpoints[pid] = ep
	return ep, nil
}

// Detach removes pid's endpoint, modeling a crash: in-flight messages to
// it are dropped on delivery and its inbox is closed.
func (f *Fabric) Detach(pid ids.PID) {
	f.mu.Lock()
	ep, ok := f.endpoints[pid]
	if ok {
		delete(f.endpoints, pid)
	}
	f.mu.Unlock()
	if ok {
		ep.inbox.Close()
	}
}

// SetPartitions splits the network into the given components of sites.
// Sites not mentioned form one extra implicit component of their own
// (component -1 semantics: they are all placed together in a fresh
// component). Passing no arguments heals the network.
func (f *Fabric) SetPartitions(components ...[]string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.component = make(map[string]int)
	for i, comp := range components {
		for _, site := range comp {
			f.component[site] = i + 1
		}
	}
}

// Heal removes all partitions.
func (f *Fabric) Heal() { f.SetPartitions() }

// Reachable reports whether sites a and b are currently in the same
// partition component.
func (f *Fabric) Reachable(a, b string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.component[a] == f.component[b]
}

// Stats returns a consistent point-in-time snapshot of the fabric
// counters; the per-kind maps are deep copies owned by the caller. See
// transport.Stats for the full snapshot semantics; in particular a
// broadcast fan-out is applied in one critical section, so a snapshot
// never observes half of one.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats.Clone()
}

// ResetStats zeroes the fabric counters, including the per-kind maps
// (used between benchmark or experiment phases). Snapshots returned by
// earlier Stats calls are unaffected.
func (f *Fabric) ResetStats() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats = transport.NewStats()
}

// Endpoints returns the currently attached pids, in sorted order.
func (f *Fabric) Endpoints() []ids.PID {
	f.mu.Lock()
	set := make(ids.PIDSet, len(f.endpoints))
	for pid := range f.endpoints {
		set.Add(pid)
	}
	f.mu.Unlock()
	return set.Sorted()
}

// kick nudges the delivery goroutine after new traffic was queued.
func (f *Fabric) kick() {
	select {
	case f.wakeup <- struct{}{}:
	default:
	}
}

// send enqueues a unicast message. Loss and partition checks happen at
// send time; partition and liveness are re-checked at delivery time, so a
// partition forming while a message is in flight also cuts it off.
func (f *Fabric) send(from, to ids.PID, payload any) {
	kind, size := transport.Describe(payload)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.sendLocked(from, to, payload, kind, size)
	f.mu.Unlock()
	f.kick()
}

// sendLocked applies the full send path — counters, drop checks, delay
// and bandwidth scheduling — for one message; f.mu must be held. Keeping
// it a single locked step lets broadcast fan out a whole multicast under
// one lock acquisition and makes every send atomic with respect to
// Stats snapshots.
func (f *Fabric) sendLocked(from, to ids.PID, payload any, kind string, size int) {
	f.stats.Sent++
	f.stats.BytesSent += uint64(size)
	f.stats.PerKind[kind]++
	f.stats.PerKindBytes[kind] += uint64(size)
	if f.component[from.Site] != f.component[to.Site] {
		f.stats.DroppedPartition++
		return
	}
	if f.cfg.LossRate > 0 && f.rng.Float64() < f.cfg.LossRate {
		f.stats.DroppedLoss++
		return
	}
	if _, ok := f.endpoints[to]; !ok {
		f.stats.DroppedDead++
		return
	}
	delay := f.cfg.Delay.Delay(from.Site, to.Site)
	due := time.Now().Add(delay)
	if f.cfg.Bandwidth > 0 {
		// Serialize on the receiver's ingress link: the message occupies
		// it for size/bandwidth once the earlier traffic drained.
		if busy := f.busyUntil[to]; busy.After(due) {
			due = busy
		}
		occupancy := time.Duration(float64(size) / float64(f.cfg.Bandwidth) * float64(time.Second))
		due = due.Add(occupancy)
		f.busyUntil[to] = due
	}
	f.nextSeq++
	sc := &scheduled{
		due: due,
		seq: f.nextSeq,
		msg: Message{From: from, To: to, Payload: payload, Kind: kind, Size: size},
	}
	if kind == "data" {
		// Remember the packet as a piggyback carrier for this link until
		// it leaves the queue.
		sc.key = pendKey{from: from, to: to}
		f.pending[sc.key] = sc
	}
	heap.Push(&f.queue, sc)
}

// broadcast sends payload from `from` to every attached endpoint except
// the sender itself, subject to the same loss/partition rules as unicast.
// It models a LAN broadcast: the sender does not need to know who exists.
//
// The whole fan-out runs under one lock acquisition (not one per
// packet), in sorted destination order so equal-due-time tie-breaking
// and loss-RNG consumption are deterministic. Heartbeats additionally
// piggyback: where a data packet from the same sender is already queued
// toward a destination, the heartbeat rides on it — sharing its
// delivery fate — instead of becoming a packet of its own, which is
// what keeps the hb packet count low under data load.
func (f *Fabric) broadcast(from ids.PID, payload any) {
	kind, size := transport.Describe(payload)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	set := make(ids.PIDSet, len(f.endpoints))
	for pid := range f.endpoints {
		set.Add(pid)
	}
	piggyback := kind == "hb" && !f.cfg.NoPiggyback
	for _, to := range set.Sorted() {
		if to == from {
			continue
		}
		if piggyback {
			if sc := f.pending[pendKey{from: from, to: to}]; sc != nil {
				sc.msg.Piggyback = append(sc.msg.Piggyback,
					Message{From: from, To: to, Payload: payload, Kind: kind, Size: size})
				f.stats.Piggybacked++
				f.stats.PerKindPiggyback[kind]++
				f.stats.BytesSent += uint64(size)
				f.stats.PerKindBytes[kind] += uint64(size)
				continue
			}
		}
		f.sendLocked(from, to, payload, kind, size)
	}
	f.mu.Unlock()
	f.kick()
}

func (f *Fabric) run() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		f.mu.Lock()
		var wait time.Duration
		now := time.Now()
		for f.queue.Len() > 0 {
			next := f.queue[0]
			if next.due.After(now) {
				wait = next.due.Sub(now)
				break
			}
			heap.Pop(&f.queue)
			if next.key != (pendKey{}) && f.pending[next.key] == next {
				delete(f.pending, next.key)
			}
			f.deliverLocked(next.msg)
		}
		empty := f.queue.Len() == 0
		f.mu.Unlock()

		if empty {
			wait = time.Hour
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-f.done:
			return
		case <-f.wakeup:
		case <-timer.C:
		}
	}
}

// deliverLocked finalizes delivery of msg; f.mu must be held. Piggybacked
// payloads ride inside msg and share its fate, counted only under the
// piggyback counters (see transport.Stats).
func (f *Fabric) deliverLocked(msg Message) {
	if f.component[msg.From.Site] != f.component[msg.To.Site] {
		f.stats.DroppedPartition++
		return
	}
	ep, ok := f.endpoints[msg.To]
	if !ok {
		f.stats.DroppedDead++
		return
	}
	f.stats.Delivered++
	f.stats.PerKindDelivered[msg.Kind]++
	ep.inbox.Push(msg)
}

// scheduled is one in-flight message.
type scheduled struct {
	due time.Time
	seq uint64 // tie-break so ordering is deterministic for equal due times
	msg Message
	// key is set for data packets while they are piggyback carriers in
	// Fabric.pending (zero otherwise).
	key pendKey
}

type deliveryQueue []*scheduled

func (q deliveryQueue) Len() int { return len(q) }
func (q deliveryQueue) Less(i, j int) bool {
	if !q[i].due.Equal(q[j].due) {
		return q[i].due.Before(q[j].due)
	}
	return q[i].seq < q[j].seq
}
func (q deliveryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *deliveryQueue) Push(x any)   { *q = append(*q, x.(*scheduled)) }
func (q *deliveryQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// Endpoint is one process's attachment to the fabric.
type Endpoint struct {
	pid    ids.PID
	fabric *Fabric
	inbox  *eventq.Queue[Message]
}

var _ transport.Endpoint = (*Endpoint)(nil)

// PID returns the endpoint's process id.
func (e *Endpoint) PID() ids.PID { return e.pid }

// Send unicasts payload to `to`.
func (e *Endpoint) Send(to ids.PID, payload any) {
	e.fabric.send(e.pid, to, payload)
}

// Broadcast sends payload to every attached endpoint (except self).
func (e *Endpoint) Broadcast(payload any) {
	e.fabric.broadcast(e.pid, payload)
}

// Recv blocks for the next message. ok is false once the endpoint is
// detached (crashed) or the fabric closed, and the inbox has drained.
func (e *Endpoint) Recv() (Message, bool) { return e.inbox.Pop() }

// TryRecv returns the next message without blocking.
func (e *Endpoint) TryRecv() (Message, bool) { return e.inbox.TryPop() }

// Wait returns a channel signaled when the inbox may be non-empty; use
// with TryRecv in select loops.
func (e *Endpoint) Wait() <-chan struct{} { return e.inbox.Wait() }

// Closed reports whether the endpoint has been detached.
func (e *Endpoint) Closed() bool { return e.inbox.Closed() }

// Detach removes this endpoint from the fabric (see Fabric.Detach).
func (e *Endpoint) Detach() { e.fabric.Detach(e.pid) }
