package simnet

import (
	"sync"
	"testing"
	"time"
)

// fakeData and fakeHB stand in for protocol packets so the batching
// tests can exercise the "data"-carrier / "hb"-rider pairing without
// depending on the wire package.
type fakeData struct{ n int }

func (fakeData) FabricKind() string { return "data" }
func (fakeData) FabricSize() int    { return 100 }

type fakeHB struct{ n int }

func (fakeHB) FabricKind() string { return "hb" }
func (fakeHB) FabricSize() int    { return 40 }

// slowFabric keeps messages in flight long enough that a heartbeat
// broadcast reliably finds the data packet still queued.
func slowFabric(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	cfg.Delay = NewUniformDelay(80*time.Millisecond, 80*time.Millisecond, 7)
	return fastFabric(t, cfg)
}

func TestHeartbeatPiggybacksOnQueuedData(t *testing.T) {
	f := slowFabric(t, Config{})
	a := attach(t, f, pa)
	b := attach(t, f, pb)
	_ = b

	a.Send(pb, fakeData{1})
	a.Broadcast(fakeHB{1})

	s := f.Stats()
	if s.PerKind["hb"] != 0 {
		t.Fatalf("hb got its own packet: PerKind[hb] = %d", s.PerKind["hb"])
	}
	if s.Piggybacked != 1 || s.PerKindPiggyback["hb"] != 1 {
		t.Fatalf("piggyback counters = %d / %v", s.Piggybacked, s.PerKindPiggyback)
	}
	if s.Sent != 1 {
		t.Fatalf("Sent = %d, want 1 (the data carrier only)", s.Sent)
	}
	// The rider's bytes still count as traffic even though it is not a
	// packet of its own.
	if want := uint64(100 + 40); s.BytesSent != want {
		t.Fatalf("BytesSent = %d, want %d", s.BytesSent, want)
	}
	if s.PerKindBytes["hb"] != 40 {
		t.Fatalf("PerKindBytes[hb] = %d, want 40", s.PerKindBytes["hb"])
	}

	m, ok := recvWithin(t, b, 2*time.Second)
	if !ok {
		t.Fatal("carrier not delivered")
	}
	if m.Kind != "data" || len(m.Piggyback) != 1 || m.Piggyback[0].Kind != "hb" {
		t.Fatalf("delivered message = kind %q with %d riders", m.Kind, len(m.Piggyback))
	}
	if _, ok := m.Piggyback[0].Payload.(fakeHB); !ok {
		t.Fatalf("rider payload = %T", m.Piggyback[0].Payload)
	}
	// Exactly one packet was delivered; the rider shares it.
	if s := f.Stats(); s.Delivered != 1 || s.PerKindDelivered["data"] != 1 {
		t.Fatalf("delivery stats = %+v", s)
	}
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("unexpected second packet")
	}
}

func TestNoPiggybackConfigSendsSeparateHeartbeat(t *testing.T) {
	f := slowFabric(t, Config{NoPiggyback: true})
	a := attach(t, f, pa)
	b := attach(t, f, pb)

	a.Send(pb, fakeData{1})
	a.Broadcast(fakeHB{1})

	s := f.Stats()
	if s.PerKind["hb"] != 1 || s.Piggybacked != 0 {
		t.Fatalf("NoPiggyback stats: PerKind[hb]=%d Piggybacked=%d", s.PerKind["hb"], s.Piggybacked)
	}
	if s.Sent != 2 {
		t.Fatalf("Sent = %d, want 2", s.Sent)
	}
	for i := 0; i < 2; i++ {
		if m, ok := recvWithin(t, b, 2*time.Second); !ok || len(m.Piggyback) != 0 {
			t.Fatalf("packet %d: ok=%v piggyback=%d", i, ok, len(m.Piggyback))
		}
	}
}

// TestPiggybackCutsHeartbeatPacketCount is the ROADMAP batching claim in
// miniature: under identical data load and heartbeat cadence, the
// piggybacking fabric emits strictly fewer hb packets than the
// non-batching one — here, zero, because every destination always has a
// carrier queued.
func TestPiggybackCutsHeartbeatPacketCount(t *testing.T) {
	hbPackets := func(noPiggyback bool) uint64 {
		f := slowFabric(t, Config{NoPiggyback: noPiggyback})
		a := attach(t, f, pa)
		attach(t, f, pb)
		attach(t, f, pc)
		for i := 0; i < 5; i++ {
			a.Send(pb, fakeData{i})
			a.Send(pc, fakeData{i})
			a.Broadcast(fakeHB{i})
		}
		return f.Stats().PerKind["hb"]
	}
	with, without := hbPackets(false), hbPackets(true)
	if without != 10 {
		t.Fatalf("baseline hb packets = %d, want 10", without)
	}
	if with != 0 {
		t.Fatalf("piggybacked hb packets = %d, want 0", with)
	}
}

// TestStatsSnapshotConsistency hammers broadcast from several goroutines
// while concurrently snapshotting Stats, asserting the documented
// contract (transport.Stats): totals equal the sum of their per-kind
// breakdowns in every snapshot, and whole broadcast fan-outs are atomic
// — a snapshot never observes half a fan-out.
func TestStatsSnapshotConsistency(t *testing.T) {
	f := slowFabric(t, Config{})
	a := attach(t, f, pa)
	attach(t, f, pb)
	attach(t, f, pc)

	const rounds = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			a.Broadcast(fakeData{i}) // fan-out of 2, no piggyback (kind "data")
		}
		close(stop)
	}()

	check := func(s Stats) {
		t.Helper()
		var kinds, bytes, delivered uint64
		for _, v := range s.PerKind {
			kinds += v
		}
		for _, v := range s.PerKindBytes {
			bytes += v
		}
		for _, v := range s.PerKindDelivered {
			delivered += v
		}
		if s.Sent != kinds {
			t.Fatalf("Sent %d != sum(PerKind) %d", s.Sent, kinds)
		}
		if s.BytesSent != bytes {
			t.Fatalf("BytesSent %d != sum(PerKindBytes) %d", s.BytesSent, bytes)
		}
		if s.Delivered != delivered {
			t.Fatalf("Delivered %d != sum(PerKindDelivered) %d", s.Delivered, delivered)
		}
		if s.Sent%2 != 0 {
			t.Fatalf("Sent %d is odd: snapshot caught a broadcast fan-out mid-flight", s.Sent)
		}
	}
	for {
		select {
		case <-stop:
			wg.Wait()
			s := f.Stats()
			check(s)
			if s.Sent != 2*rounds {
				t.Fatalf("final Sent = %d, want %d", s.Sent, 2*rounds)
			}
			return
		default:
			check(f.Stats())
		}
	}
}
