package simnet

import (
	"testing"
	"time"

	"repro/internal/ids"
)

// BenchmarkSendPath measures the fabric's enqueue cost (scheduling, loss
// and partition checks) — the floor under every protocol message.
func BenchmarkSendPath(b *testing.B) {
	f := New(Config{Delay: NewUniformDelay(time.Millisecond, time.Millisecond, 1)})
	defer f.Close()
	src, err := f.Attach(ids.PID{Site: "a", Inc: 1})
	if err != nil {
		b.Fatal(err)
	}
	dst := ids.PID{Site: "b", Inc: 1}
	if _, err := f.Attach(dst); err != nil {
		b.Fatal(err)
	}
	payload := kindedPayload{k: "data"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(dst, payload)
	}
}

// BenchmarkDeliveryRoundTrip measures end-to-end fabric latency overhead
// with zero modeled delay: enqueue + scheduler + inbox.
func BenchmarkDeliveryRoundTrip(b *testing.B) {
	f := New(Config{Delay: NewUniformDelay(0, 0, 1)})
	defer f.Close()
	src, err := f.Attach(ids.PID{Site: "a", Inc: 1})
	if err != nil {
		b.Fatal(err)
	}
	dstPID := ids.PID{Site: "b", Inc: 1}
	dst, err := f.Attach(dstPID)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(dstPID, i)
		if _, ok := dst.Recv(); !ok {
			b.Fatal("endpoint closed")
		}
	}
}

// BenchmarkBroadcast measures discovery-style broadcast to many
// endpoints.
func BenchmarkBroadcast(b *testing.B) {
	f := New(Config{Delay: NewUniformDelay(time.Millisecond, time.Millisecond, 1)})
	defer f.Close()
	src, err := f.Attach(ids.PID{Site: "src", Inc: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := f.Attach(ids.PID{Site: string(rune('a' + i)), Inc: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Broadcast("hb")
	}
}
