package profile

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func at(ms int) time.Time {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return base.Add(time.Duration(ms) * time.Millisecond)
}

// changeEvents is a three-member view change: a proposes view a#1:2 at
// round 2 after suspecting d; b and c ack (c last), everyone flushes
// and installs. Bootstrap installs precede it.
func changeEvents() []obs.Event {
	return []obs.Event{
		{Type: obs.EvInstall, PID: "a#1", View: "a#1:1", Round: 1, At: at(0)},
		{Type: obs.EvInstall, PID: "b#1", View: "b#1:1", Round: 1, At: at(0)},
		{Type: obs.EvInstall, PID: "c#1", View: "c#1:1", Round: 1, At: at(0)},

		{Type: obs.EvSend, PID: "a#1", Msg: "a#1:1|1", At: at(1)},
		{Type: obs.EvDeliver, PID: "b#1", Msg: "a#1:1|1", At: at(3)},

		{Type: obs.EvSuspect, PID: "a#1", Peer: "d#1", Note: "suspected", At: at(10)},
		{Type: obs.EvSuspect, PID: "b#1", Peer: "d#1", Note: "suspected", At: at(12)},
		{Type: obs.EvSuspect, PID: "c#1", Peer: "d#1", Note: "suspected", At: at(13)},
		{Type: obs.EvPropose, PID: "a#1", View: "a#1:2", Round: 2, At: at(20)},
		{Type: obs.EvAck, PID: "a#1", View: "a#1:2", Round: 2, At: at(21)},
		{Type: obs.EvAck, PID: "b#1", View: "a#1:2", Round: 2, At: at(23)},
		{Type: obs.EvAck, PID: "c#1", View: "a#1:2", Round: 2, At: at(29)},

		{Type: obs.EvDeliver, PID: "c#1", Msg: "a#1:1|1", Kind: "flush", At: at(31)},
		{Type: obs.EvFlush, PID: "a#1", View: "a#1:1", Round: 2, DurMS: 1, At: at(32)},
		{Type: obs.EvFlush, PID: "b#1", View: "b#1:1", Round: 2, DurMS: 1, At: at(32)},
		{Type: obs.EvFlush, PID: "c#1", View: "c#1:1", Round: 2, N: 1, DurMS: 2, At: at(33)},
		{Type: obs.EvInstall, PID: "a#1", View: "a#1:2", Round: 2, At: at(33)},
		{Type: obs.EvInstall, PID: "b#1", View: "a#1:2", Round: 2, At: at(33)},
		{Type: obs.EvInstall, PID: "c#1", View: "a#1:2", Round: 2, At: at(34)},
	}
}

func TestReportAggregation(t *testing.T) {
	r := FromEvents(changeEvents())
	if r.Spans != 6 {
		t.Fatalf("Spans = %d, want 6 (3 bootstrap + 3 members)", r.Spans)
	}
	if r.Bootstrap != 3 || r.Unclosed != 0 {
		t.Errorf("Bootstrap=%d Unclosed=%d, want 3/0", r.Bootstrap, r.Unclosed)
	}
	// Three bootstrap views (distinct singleton view ids) + the change.
	if len(r.Views) != 4 {
		t.Fatalf("views = %d, want 4", len(r.Views))
	}
	var row *ViewRow
	for i := range r.Views {
		if r.Views[i].View == "a#1:2" {
			row = &r.Views[i]
		} else if !r.Views[i].Bootstrap {
			t.Errorf("view %s not marked bootstrap", r.Views[i].View)
		}
	}
	if row == nil {
		t.Fatalf("no row for a#1:2 in %+v", r.Views)
	}
	if row.Members != 3 || row.Bootstrap {
		t.Errorf("row = %+v, want 3 members, not bootstrap", row)
	}
	if row.Coordinator != "a#1" {
		t.Errorf("Coordinator = %q, want a#1", row.Coordinator)
	}
	// c acked last, 8ms after a.
	if row.CritPID != "c#1" || row.CritSpread != 8*time.Millisecond {
		t.Errorf("crit = %s (+%v), want c#1 (+8ms)", row.CritPID, row.CritSpread)
	}
	// Group-wide total: earliest anchor (a suspects at 10ms) to latest
	// install (c at 34ms).
	if row.Total != 24*time.Millisecond {
		t.Errorf("Total = %v, want 24ms", row.Total)
	}
	// Worst-member flush is c's 2ms.
	if row.Flush != 2*time.Millisecond {
		t.Errorf("Flush = %v, want 2ms", row.Flush)
	}
	if row.Recovered != 1 {
		t.Errorf("Recovered = %d, want 1", row.Recovered)
	}
	// Phase samples: only the 3 non-bootstrap member spans.
	if r.Phases.Total.Count != 3 {
		t.Errorf("phase samples = %d, want 3", r.Phases.Total.Count)
	}
	// Latency kinds sorted: flush before multicast.
	if len(r.Latency) != 2 || r.Latency[0].Kind != "flush" || r.Latency[1].Kind != "multicast" {
		t.Fatalf("latency = %+v, want [flush multicast]", r.Latency)
	}
	if r.Latency[0].Max != 30*time.Millisecond {
		t.Errorf("flush delivery max = %v, want 30ms (held back by the change)", r.Latency[0].Max)
	}
}

func TestFromFileTolerant(t *testing.T) {
	// A trace with a malformed line and a truncated tail (the install
	// missing): profiling must succeed, counting both.
	events := changeEvents()
	events = events[:len(events)-3] // drop all three installs → 3 unclosed spans
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for i, ev := range events {
		if i == 2 {
			f.WriteString("{this is not json\n")
		}
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	r, err := FromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Malformed != 1 {
		t.Errorf("Malformed = %d, want 1", r.Malformed)
	}
	if r.Unclosed != 3 {
		t.Errorf("Unclosed = %d, want 3", r.Unclosed)
	}
}

func TestQuantile(t *testing.T) {
	s := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(s, 0.50); q != 5 {
		t.Errorf("p50 = %v, want 5", q)
	}
	if q := quantile(s, 0.95); q != 10 {
		t.Errorf("p95 = %v, want 10", q)
	}
	if q := quantile(s[:1], 0.95); q != 1 {
		t.Errorf("single-sample p95 = %v, want 1", q)
	}
}

func TestWriteText(t *testing.T) {
	r := FromEvents(changeEvents())
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"per-view phase breakdown",
		"a#1:2",
		"c#1 (+8.00)",
		"phase percentiles over 3 member spans",
		"delivery latency by kind",
		"multicast",
		"flush",
		"bootstrap",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "UNCLOSED") {
		t.Errorf("clean trace reported unclosed spans:\n%s", out)
	}
}

func TestMemberAggregation(t *testing.T) {
	r := FromEvents(changeEvents())
	if r.AckViews != 1 {
		t.Fatalf("AckViews = %d, want 1 (only a#1:2 carries acks)", r.AckViews)
	}
	if len(r.Members) != 3 {
		t.Fatalf("members = %+v, want 3 rows", r.Members)
	}
	// c#1 gated the only acked install, so it sorts first.
	if r.Members[0].PID != "c#1" || r.Members[0].CritViews != 1 {
		t.Errorf("top member = %+v, want c#1 with 1 crit view", r.Members[0])
	}
	byPID := make(map[string]MemberRow)
	for _, m := range r.Members {
		byPID[m.PID] = m
		if m.Spans != 1 {
			t.Errorf("%s: spans = %d, want 1", m.PID, m.Spans)
		}
		if m.Total.Count != 1 {
			t.Errorf("%s: total dist count = %d, want 1", m.PID, m.Total.Count)
		}
	}
	if byPID["a#1"].Coordinated != 1 {
		t.Errorf("a#1 coordinated = %d, want 1", byPID["a#1"].Coordinated)
	}
	if byPID["a#1"].CritViews != 0 || byPID["b#1"].CritViews != 0 {
		t.Errorf("a/b crit views = %d/%d, want 0/0",
			byPID["a#1"].CritViews, byPID["b#1"].CritViews)
	}
	// c's flush phase sample is its own 2ms, not the group worst.
	if byPID["c#1"].Flush.Max != 2*time.Millisecond {
		t.Errorf("c#1 flush max = %v, want 2ms", byPID["c#1"].Flush.Max)
	}
	if byPID["a#1"].Flush.Max != time.Millisecond {
		t.Errorf("a#1 flush max = %v, want 1ms", byPID["a#1"].Flush.Max)
	}

	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	if !strings.Contains(out, "per-member phase profile") {
		t.Errorf("WriteText missing per-member table:\n%s", out)
	}
	if !strings.Contains(out, "1/1 (100%)") {
		t.Errorf("WriteText missing c#1 crit share:\n%s", out)
	}
}
