package profile

import (
	"fmt"
	"io"
	"time"
)

// maxViewRows bounds the per-view table; long churn traces summarize
// the overflow rather than scrolling for pages (the percentile summary
// below the table always covers every span).
const maxViewRows = 64

// WriteText renders the profile as aligned text: a headline, the
// per-view phase table, the phase percentile summary, and the per-kind
// delivery-latency table.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "profile: %d spans across %d views, %d generation(s)",
		r.Spans, len(r.Views), r.Generations)
	sep := " ("
	if r.Bootstrap > 0 {
		fmt.Fprintf(w, "%s%d bootstrap", sep, r.Bootstrap)
		sep = ", "
	}
	if r.Unclosed > 0 {
		fmt.Fprintf(w, "%s%d UNCLOSED", sep, r.Unclosed)
		sep = ", "
	}
	if r.Reproposals > 0 {
		fmt.Fprintf(w, "%s%d reproposals", sep, r.Reproposals)
		sep = ", "
	}
	if r.Reconciles > 0 {
		fmt.Fprintf(w, "%s%d reconciles", sep, r.Reconciles)
		sep = ", "
	}
	if r.Malformed > 0 {
		fmt.Fprintf(w, "%s%d malformed lines", sep, r.Malformed)
		sep = ", "
	}
	if sep == ", " {
		fmt.Fprint(w, ")")
	}
	fmt.Fprintln(w)

	if n := len(r.Views); n > 0 {
		fmt.Fprintln(w, "\nper-view phase breakdown (worst member per phase, ms):")
		fmt.Fprintf(w, "  %3s %-14s %5s %4s %8s %8s %8s %8s %8s  %s\n",
			"gen", "view", "round", "mem", "detect", "agree", "flush", "install", "total", "critical-path")
		shown := 0
		for _, v := range r.Views {
			if shown == maxViewRows {
				fmt.Fprintf(w, "  ... %d more views\n", n-shown)
				break
			}
			shown++
			if v.Bootstrap {
				fmt.Fprintf(w, "  %3d %-14s %5d %4d %8s %8s %8s %8s %8s  bootstrap\n",
					v.Gen, v.View, v.Round, v.Members, "-", "-", "-", "-", "-")
				continue
			}
			crit := "-"
			if v.CritPID != "" {
				crit = fmt.Sprintf("%s (+%s)", v.CritPID, msStr(v.CritSpread))
			}
			notes := ""
			if v.Recovered > 0 {
				notes += fmt.Sprintf(" recovered=%d", v.Recovered)
			}
			if v.Retries > 0 {
				notes += fmt.Sprintf(" retries=%d", v.Retries)
			}
			if v.Reproposals > 0 {
				notes += fmt.Sprintf(" reproposals=%d", v.Reproposals)
			}
			fmt.Fprintf(w, "  %3d %-14s %5d %4d %8s %8s %8s %8s %8s  %s%s\n",
				v.Gen, v.View, v.Round, v.Members,
				msStr(v.Detect), msStr(v.Agree), msStr(v.Flush), msStr(v.Install),
				msStr(v.Total), crit, notes)
		}
	}

	if r.Phases.Total.Count > 0 {
		fmt.Fprintf(w, "\nphase percentiles over %d member spans (ms):\n", r.Phases.Total.Count)
		fmt.Fprintf(w, "  %-8s %8s %8s %8s\n", "phase", "p50", "p95", "max")
		writeDist(w, "detect", r.Phases.Detect)
		writeDist(w, "agree", r.Phases.Agree)
		writeDist(w, "flush", r.Phases.Flush)
		writeDist(w, "install", r.Phases.Install)
		writeDist(w, "total", r.Phases.Total)
	}

	if len(r.Members) > 0 {
		fmt.Fprintln(w, "\nper-member phase profile (p95 ms; crit = views whose install this member's ack gated):")
		fmt.Fprintf(w, "  %-8s %6s %8s %8s %8s %8s %8s %6s %12s\n",
			"member", "spans", "detect", "agree", "flush", "install", "total", "coord", "crit")
		for _, m := range r.Members {
			crit := "-"
			if r.AckViews > 0 {
				crit = fmt.Sprintf("%d/%d (%.0f%%)", m.CritViews, r.AckViews,
					100*float64(m.CritViews)/float64(r.AckViews))
			}
			fmt.Fprintf(w, "  %-8s %6d %8s %8s %8s %8s %8s %6d %12s\n",
				m.PID, m.Spans,
				msStr(m.Detect.P95), msStr(m.Agree.P95), msStr(m.Flush.P95),
				msStr(m.Install.P95), msStr(m.Total.P95), m.Coordinated, crit)
		}
	}

	if len(r.Latency) > 0 {
		fmt.Fprintln(w, "\ndelivery latency by kind (ms):")
		fmt.Fprintf(w, "  %-10s %8s %8s %8s %8s\n", "kind", "count", "p50", "p95", "max")
		for _, k := range r.Latency {
			fmt.Fprintf(w, "  %-10s %8d %8s %8s %8s\n",
				k.Kind, k.Count, msStr(k.P50), msStr(k.P95), msStr(k.Max))
		}
	}
}

func writeDist(w io.Writer, name string, d Dist) {
	fmt.Fprintf(w, "  %-8s %8s %8s %8s\n", name, msStr(d.P50), msStr(d.P95), msStr(d.Max))
}

// msStr renders a duration as milliseconds with enough precision for
// sub-millisecond simnet latencies.
func msStr(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}
