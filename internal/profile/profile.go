// Package profile turns a trace stream into a latency profile of the
// view-synchrony protocol: where the time of each view change went
// (detect / agree / flush / install), how message delivery latency is
// distributed per delivery kind, and which member's ack gated each
// install (the critical path).
//
// It consumes the span assembly from internal/obs (obs.AssembleSpans /
// obs.SpanAssembler) and works identically on live runs and on JSONL
// trace files read back with internal/tracecheck's tolerant reader —
// truncated traces profile fine, with the spans cut off by the
// truncation reported as unclosed. Like tracecheck, it never
// correlates across EvRun generation boundaries.
package profile

import (
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/tracecheck"
)

// ViewRow aggregates the member spans of one installed view: one row
// per (generation, view id). Phase durations are the worst member's —
// the member that gated that phase — so a row reads as "what the
// slowest process spent", matching how the install's end-to-end time
// is felt by the group.
type ViewRow struct {
	Gen   int
	View  string
	Round uint64
	// Members is the number of processes whose span closed at this
	// view.
	Members int
	// Start is the earliest span anchor among members, End the latest
	// install; Total = End − Start, the group-wide wall time of the
	// change.
	Start, End time.Time
	Total      time.Duration
	// Worst-member phase durations.
	Detect, Agree, Flush, Install time.Duration
	// Sums across members.
	Recovered   int
	Retries     int
	Reproposals int
	// Coordinator is the member whose proposal won the round ("" when
	// no member span carries the flag — e.g. the coordinator's span was
	// truncated away).
	Coordinator string
	// CritPID is the member whose ack for this view arrived last — the
	// ack the coordinator waited for. CritSpread is how much later it
	// was than the earliest ack (zero spread: everyone acked at once,
	// no straggler). Empty/zero when the trace carries no acks for the
	// round.
	CritPID    string
	CritSpread time.Duration
	// Bootstrap marks a view whose members all installed it with no
	// preceding protocol activity (process startup).
	Bootstrap bool
}

// MemberRow aggregates one member's passages through the trace's view
// changes: its per-phase latency distributions and how often it was the
// member the rest of the group waited for. A member with a large
// CritViews share and a fat Agree/Flush tail is the group's consistent
// straggler — the ROADMAP's "who gates the install" question answered
// per member instead of per view.
type MemberRow struct {
	PID string
	// Spans is the number of closed, non-bootstrap spans this member
	// contributed (its sample count for the distributions below).
	Spans int
	// Per-phase latency distributions over this member's spans.
	Detect, Agree, Flush, Install, Total Dist
	// CritViews counts the views whose install this member's ack gated
	// (ViewRow.CritPID); AckViews is the number of views that carried
	// ack information at all, so CritViews/AckViews is this member's
	// share of the critical path.
	CritViews int
	// Coordinated counts the views whose winning proposal this member
	// coordinated.
	Coordinated int
}

// Dist is an empirical latency distribution summary.
type Dist struct {
	Count         int
	P50, P95, Max time.Duration
}

// PhaseDist is the per-phase distribution over all closed,
// non-bootstrap member spans (each member's passage through each view
// change contributes one sample per phase).
type PhaseDist struct {
	Detect, Agree, Flush, Install, Total Dist
}

// KindDist is the delivery-latency distribution of one message kind.
type KindDist struct {
	Kind string
	Dist
}

// Report is the assembled latency profile of one trace.
type Report struct {
	// Views has one row per installed view, in (generation, install
	// time) order. Bootstrap views are included (flagged) but
	// contribute nothing to Phases.
	Views []ViewRow
	// Phases aggregates phase durations across member spans.
	Phases PhaseDist
	// Members aggregates the same spans per member, sorted by critical-
	// path share (descending), then PID. AckViews is the number of views
	// with ack information — the denominator of each member's share.
	Members  []MemberRow
	AckViews int
	// Latency is the per-kind delivery-latency distribution, sorted by
	// kind name ("flush", "multicast", "unicast").
	Latency []KindDist
	// Spans is the total number of member spans; Bootstrap and
	// Unclosed count the spans excluded from Phases (startup installs,
	// and spans still open when their generation or the trace ended).
	Spans     int
	Bootstrap int
	Unclosed  int
	// Generations is the number of run generations in the trace (EvRun
	// markers + 1).
	Generations int
	// Reproposals counts peerView-divergence membership rounds across
	// the whole trace — churn attributable to install-propagation
	// mismatch rather than failures or joins.
	Reproposals int
	// Reconciles counts install re-sends by the reconciliation fast
	// path across the whole trace: divergences healed by re-delivering
	// the cached install instead of running one of the rounds counted
	// in Reproposals. Reconciles never appear as spans (no agreement
	// happens), so they are reported alongside, not within, the rows.
	Reconciles int
	// Malformed counts unparseable trace lines (FromFile only).
	Malformed int
}

// FromFile profiles a JSONL trace file, tolerating malformed and
// truncated lines the way tracecheck does.
func FromFile(path string) (*Report, error) {
	events, malformed, err := tracecheck.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := FromEvents(events)
	r.Malformed = malformed
	return r, nil
}

// FromEvents profiles a complete event stream.
func FromEvents(events []obs.Event) *Report {
	return FromSpanSet(obs.AssembleSpans(events))
}

// viewKey identifies one installed view within one generation.
type viewKey struct {
	gen  int
	view string
}

// FromSpanSet aggregates an assembled span set into a Report.
func FromSpanSet(set obs.SpanSet) *Report {
	r := &Report{Spans: len(set.Spans), Reconciles: set.Reconciles}

	// Pass 1: acks per (gen, view) for the critical path.
	type ackAgg struct {
		first, last time.Time
		lastPID     string
	}
	acks := make(map[viewKey]*ackAgg)
	for _, a := range set.Acks {
		k := viewKey{a.Gen, a.View}
		g, ok := acks[k]
		if !ok {
			acks[k] = &ackAgg{first: a.At, last: a.At, lastPID: a.PID}
			continue
		}
		if a.At.Before(g.first) {
			g.first = a.At
		}
		if !a.At.Before(g.last) {
			g.last = a.At
			g.lastPID = a.PID
		}
	}

	// Pass 2: fold member spans into view rows and phase samples.
	rows := make(map[viewKey]*ViewRow)
	var detect, agree, flush, install, total []time.Duration
	type memberAgg struct {
		detect, agree, flush, install, total []time.Duration
		crit, coord                          int
	}
	members := make(map[string]*memberAgg)
	memberOf := func(pid string) *memberAgg {
		ma, ok := members[pid]
		if !ok {
			ma = &memberAgg{}
			members[pid] = ma
		}
		return ma
	}
	maxGen := 0
	for _, sp := range set.Spans {
		if sp.Gen > maxGen {
			maxGen = sp.Gen
		}
		r.Reproposals += sp.Reproposals
		if !sp.Closed {
			r.Unclosed++
			continue
		}
		if sp.Bootstrap {
			r.Bootstrap++
		}
		k := viewKey{sp.Gen, sp.View}
		row, ok := rows[k]
		if !ok {
			row = &ViewRow{Gen: sp.Gen, View: sp.View, Round: sp.Round,
				Start: sp.Start, End: sp.End, Bootstrap: true}
			rows[k] = row
		}
		row.Members++
		if sp.Start.Before(row.Start) {
			row.Start = sp.Start
		}
		if sp.End.After(row.End) {
			row.End = sp.End
		}
		row.Recovered += sp.Recovered
		row.Retries += sp.Retries
		row.Reproposals += sp.Reproposals
		if sp.Coordinator {
			row.Coordinator = sp.PID
			memberOf(sp.PID).coord++
		}
		// A view is a bootstrap view only if EVERY member span is.
		if !sp.Bootstrap {
			row.Bootstrap = false
			row.Detect = maxDur(row.Detect, sp.Detect)
			row.Agree = maxDur(row.Agree, sp.Agree)
			row.Flush = maxDur(row.Flush, sp.Flush)
			row.Install = maxDur(row.Install, sp.Install)
			detect = append(detect, sp.Detect)
			agree = append(agree, sp.Agree)
			flush = append(flush, sp.Flush)
			install = append(install, sp.Install)
			total = append(total, sp.Total())
			ma := memberOf(sp.PID)
			ma.detect = append(ma.detect, sp.Detect)
			ma.agree = append(ma.agree, sp.Agree)
			ma.flush = append(ma.flush, sp.Flush)
			ma.install = append(ma.install, sp.Install)
			ma.total = append(ma.total, sp.Total())
		}
	}
	r.Generations = maxGen + 1

	for k, row := range rows {
		row.Total = row.End.Sub(row.Start)
		if g, ok := acks[k]; ok {
			row.CritPID = g.lastPID
			row.CritSpread = g.last.Sub(g.first)
			r.AckViews++
			memberOf(g.lastPID).crit++
		}
		r.Views = append(r.Views, *row)
	}
	sort.Slice(r.Views, func(i, j int) bool {
		a, b := r.Views[i], r.Views[j]
		if a.Gen != b.Gen {
			return a.Gen < b.Gen
		}
		if !a.End.Equal(b.End) {
			return a.End.Before(b.End)
		}
		return a.View < b.View
	})

	r.Phases = PhaseDist{
		Detect:  distOf(detect),
		Agree:   distOf(agree),
		Flush:   distOf(flush),
		Install: distOf(install),
		Total:   distOf(total),
	}

	for pid, ma := range members {
		r.Members = append(r.Members, MemberRow{
			PID:         pid,
			Spans:       len(ma.total),
			Detect:      distOf(ma.detect),
			Agree:       distOf(ma.agree),
			Flush:       distOf(ma.flush),
			Install:     distOf(ma.install),
			Total:       distOf(ma.total),
			CritViews:   ma.crit,
			Coordinated: ma.coord,
		})
	}
	sort.Slice(r.Members, func(i, j int) bool {
		a, b := r.Members[i], r.Members[j]
		if a.CritViews != b.CritViews {
			return a.CritViews > b.CritViews
		}
		return a.PID < b.PID
	})

	// Pass 3: delivery latency per kind.
	byKind := make(map[string][]time.Duration)
	for _, l := range set.Latencies {
		byKind[l.Kind] = append(byKind[l.Kind], l.Latency)
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		r.Latency = append(r.Latency, KindDist{Kind: k, Dist: distOf(byKind[k])})
	}
	return r
}

// distOf summarizes samples; the zero Dist for an empty slice.
func distOf(samples []time.Duration) Dist {
	if len(samples) == 0 {
		return Dist{}
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return Dist{
		Count: len(s),
		P50:   quantile(s, 0.50),
		P95:   quantile(s, 0.95),
		Max:   s[len(s)-1],
	}
}

// quantile returns the nearest-rank q-quantile of sorted samples.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
