package evs

import (
	"fmt"
	"testing"

	"repro/internal/ids"
)

func benchMembers(n int) []ids.PID {
	out := make([]ids.PID, n)
	for i := range out {
		out[i] = ids.PID{Site: fmt.Sprintf("s%03d", i), Inc: 1}
	}
	return out
}

// BenchmarkCompose measures structure composition at view installs — the
// per-view-change cost the enriched extension adds to the run-time.
func BenchmarkCompose(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			members := benchMembers(n)
			comp := ids.NewPIDSet(members...)
			left := Flat(ids.ViewID{Epoch: 1, Coord: members[0]}, ids.NewPIDSet(members[:n/2]...))
			right := Flat(ids.ViewID{Epoch: 1, Coord: members[n/2]}, ids.NewPIDSet(members[n/2:]...))
			preds := []Predecessor{
				{Structure: left, Survivors: ids.NewPIDSet(members[:n/2]...)},
				{Structure: right, Survivors: ids.NewPIDSet(members[n/2:]...)},
			}
			view := ids.ViewID{Epoch: 2, Coord: members[0]}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := Compose(view, comp, preds)
				if s.NumSubviews() != 2 {
					b.Fatal("wrong composition")
				}
			}
		})
	}
}

// BenchmarkMergeSubviews measures the within-view merge operation.
func BenchmarkMergeSubviews(b *testing.B) {
	members := benchMembers(16)
	comp := ids.NewPIDSet(members...)
	view := ids.ViewID{Epoch: 1, Coord: members[0]}
	base := Compose(view, comp, nil) // 16 singletons
	base, _, err := base.MergeSVSets(base.SVSets())
	if err != nil {
		b.Fatal(err)
	}
	svs := base.Subviews()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := base.MergeSubviews(svs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidate measures the invariant check run by the verifier on
// every delivered structure.
func BenchmarkValidate(b *testing.B) {
	members := benchMembers(64)
	comp := ids.NewPIDSet(members...)
	s := Compose(ids.ViewID{Epoch: 1, Coord: members[0]}, comp, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(comp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubviewOf measures the member-to-subview lookup used by mode
// functions on every view change.
func BenchmarkSubviewOf(b *testing.B) {
	members := benchMembers(64)
	comp := ids.NewPIDSet(members...)
	s := Flat(ids.ViewID{Epoch: 1, Coord: members[0]}, comp)
	target := members[63]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.SubviewOf(target); !ok {
			b.Fatal("missing")
		}
	}
}
