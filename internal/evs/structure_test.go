package evs

import (
	"math/rand"
	"testing"

	"repro/internal/ids"
)

var (
	pa = ids.PID{Site: "a", Inc: 1}
	pb = ids.PID{Site: "b", Inc: 1}
	pc = ids.PID{Site: "c", Inc: 1}
	pd = ids.PID{Site: "d", Inc: 1}
	pe = ids.PID{Site: "e", Inc: 1}
)

func vid(epoch uint64, coord ids.PID) ids.ViewID { return ids.ViewID{Epoch: epoch, Coord: coord} }

func TestNewSingleton(t *testing.T) {
	v := vid(1, pa)
	s := NewSingleton(v, pa)
	if err := s.Validate(ids.NewPIDSet(pa)); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumSubviews() != 1 || s.NumSVSets() != 1 {
		t.Fatalf("singleton has %d subviews, %d sv-sets", s.NumSubviews(), s.NumSVSets())
	}
	sv, ok := s.SubviewOf(pa)
	if !ok {
		t.Fatal("SubviewOf(self) not found")
	}
	if got := s.SubviewMembers(sv); !got.Equal(ids.NewPIDSet(pa)) {
		t.Fatalf("subview members = %v", got)
	}
}

func TestFlatDegeneratesToTraditionalView(t *testing.T) {
	v := vid(1, pa)
	comp := ids.NewPIDSet(pa, pb, pc)
	s := Flat(v, comp)
	if err := s.Validate(comp); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumSubviews() != 1 || s.NumSVSets() != 1 {
		t.Fatal("flat structure must be single subview in single sv-set")
	}
	if !s.Members().Equal(comp) {
		t.Fatalf("Members = %v", s.Members())
	}
}

// threeSingletons builds a view of a, b, c each in its own subview/sv-set,
// as after three concurrent joiners compose.
func threeSingletons(t *testing.T) Structure {
	t.Helper()
	v := vid(2, pa)
	comp := ids.NewPIDSet(pa, pb, pc)
	s := Compose(v, comp, nil)
	if err := s.Validate(comp); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumSubviews() != 3 || s.NumSVSets() != 3 {
		t.Fatalf("want 3 singleton subviews/sv-sets, got %d/%d", s.NumSubviews(), s.NumSVSets())
	}
	return s
}

func TestMergeSVSetsThenSubviews(t *testing.T) {
	// Reproduces Figure 3: SV-SetMerge of three sv-sets, then
	// SubviewMerge of two of the subviews inside the new sv-set.
	s := threeSingletons(t)
	comp := s.Members()

	s2, newSs, err := s.MergeSVSets(s.SVSets())
	if err != nil {
		t.Fatalf("MergeSVSets: %v", err)
	}
	if err := s2.Validate(comp); err != nil {
		t.Fatalf("Validate after SV-SetMerge: %v", err)
	}
	if s2.NumSVSets() != 1 || s2.NumSubviews() != 3 {
		t.Fatalf("after SV-SetMerge: %d sv-sets, %d subviews", s2.NumSVSets(), s2.NumSubviews())
	}
	if got := s2.SVSetMembers(newSs); !got.Equal(comp) {
		t.Fatalf("merged sv-set members = %v", got)
	}

	svA, _ := s2.SubviewOf(pa)
	svB, _ := s2.SubviewOf(pb)
	s3, newSv, err := s2.MergeSubviews([]ids.SubviewID{svA, svB})
	if err != nil {
		t.Fatalf("MergeSubviews: %v", err)
	}
	if err := s3.Validate(comp); err != nil {
		t.Fatalf("Validate after SubviewMerge: %v", err)
	}
	if s3.NumSubviews() != 2 {
		t.Fatalf("after SubviewMerge: %d subviews", s3.NumSubviews())
	}
	if got := s3.SubviewMembers(newSv); !got.Equal(ids.NewPIDSet(pa, pb)) {
		t.Fatalf("merged subview members = %v", got)
	}
	owner, _ := s3.SVSetOf(newSv)
	if owner != newSs {
		t.Fatalf("merged subview in sv-set %v, want %v", owner, newSs)
	}
	// the original structure is unchanged (immutability)
	if s.NumSVSets() != 3 {
		t.Fatal("MergeSVSets mutated its receiver")
	}
}

func TestSubviewMergeAcrossSVSetsHasNoEffect(t *testing.T) {
	// §6.1: "If all the subviews in sv-list do not initially belong to
	// the same sv-set, the call has no effect."
	s := threeSingletons(t)
	svA, _ := s.SubviewOf(pa)
	svB, _ := s.SubviewOf(pb)
	s2, _, err := s.MergeSubviews([]ids.SubviewID{svA, svB})
	if err == nil || !IsNoEffect(err) {
		t.Fatalf("err = %v, want no-effect error", err)
	}
	if !s2.Equal(s) {
		t.Fatal("no-effect merge changed the structure")
	}
}

func TestMergeErrors(t *testing.T) {
	s := threeSingletons(t)
	svA, _ := s.SubviewOf(pa)
	if _, _, err := s.MergeSubviews([]ids.SubviewID{svA}); err == nil {
		t.Error("single-subview merge must error")
	}
	bogusSv := ids.SubviewID{Origin: vid(9, pa), Seq: 7}
	if _, _, err := s.MergeSubviews([]ids.SubviewID{svA, bogusSv}); err == nil || IsNoEffect(err) {
		t.Errorf("unknown subview: err = %v, want hard error", err)
	}
	ssList := s.SVSets()
	if _, _, err := s.MergeSVSets(ssList[:1]); err == nil {
		t.Error("single-sv-set merge must error")
	}
	bogusSs := ids.SVSetID{Origin: vid(9, pa), Seq: 7}
	if _, _, err := s.MergeSVSets([]ids.SVSetID{ssList[0], bogusSs}); err == nil {
		t.Error("unknown sv-set must error")
	}
}

func TestMergeSubviewsDedupsInput(t *testing.T) {
	s := threeSingletons(t)
	all := s.SVSets()
	s2, _, err := s.MergeSVSets(all)
	if err != nil {
		t.Fatal(err)
	}
	svA, _ := s2.SubviewOf(pa)
	svB, _ := s2.SubviewOf(pb)
	s3, newSv, err := s2.MergeSubviews([]ids.SubviewID{svA, svB, svA})
	if err != nil {
		t.Fatalf("MergeSubviews with duplicate input: %v", err)
	}
	if got := s3.SubviewMembers(newSv); !got.Equal(ids.NewPIDSet(pa, pb)) {
		t.Fatalf("members = %v", got)
	}
}

func TestRemoveDeparted(t *testing.T) {
	s := threeSingletons(t)
	s2, _, err := s.MergeSVSets(s.SVSets())
	if err != nil {
		t.Fatal(err)
	}
	svA, _ := s2.SubviewOf(pa)
	svB, _ := s2.SubviewOf(pb)
	s3, mergedSv, err := s2.MergeSubviews([]ids.SubviewID{svA, svB})
	if err != nil {
		t.Fatal(err)
	}
	// b and c fail; a remains in the merged subview (same id), c's
	// subview disappears.
	s4 := s3.RemoveDeparted(ids.NewPIDSet(pa))
	if err := s4.Validate(ids.NewPIDSet(pa)); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s4.NumSubviews() != 1 {
		t.Fatalf("subviews = %d", s4.NumSubviews())
	}
	sv, _ := s4.SubviewOf(pa)
	if sv != mergedSv {
		t.Fatalf("surviving subview id changed: %v -> %v", mergedSv, sv)
	}
}

func TestComposePreservesStructureAcrossViewChange(t *testing.T) {
	// Figure 2 scenario: predecessor view {a,b,c} with a,b co-subview;
	// new view adds d (fresh) and keeps a,b; c departs.
	v1 := vid(2, pa)
	comp1 := ids.NewPIDSet(pa, pb, pc)
	s1 := Compose(v1, comp1, nil)
	s1, _, err := s1.MergeSVSets(s1.SVSets())
	if err != nil {
		t.Fatal(err)
	}
	svA, _ := s1.SubviewOf(pa)
	svB, _ := s1.SubviewOf(pb)
	s1, abSv, err := s1.MergeSubviews([]ids.SubviewID{svA, svB})
	if err != nil {
		t.Fatal(err)
	}

	v2 := vid(3, pa)
	comp2 := ids.NewPIDSet(pa, pb, pd)
	s2 := Compose(v2, comp2, []Predecessor{{Structure: s1, Survivors: ids.NewPIDSet(pa, pb)}})
	if err := s2.Validate(comp2); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	_ = abSv
	// Property 6.3: a and b still share a subview (identifiers are
	// view-scoped, so only the grouping carries over).
	gotA, _ := s2.SubviewOf(pa)
	gotB, _ := s2.SubviewOf(pb)
	if gotA != gotB {
		t.Fatalf("a,b separated after change: %v vs %v", gotA, gotB)
	}
	if gotA.Origin != v2 {
		t.Fatalf("surviving subview id %v not rescoped to new view %v", gotA, v2)
	}
	// d is a singleton in its own new sv-set.
	svD, ok := s2.SubviewOf(pd)
	if !ok {
		t.Fatal("d not placed")
	}
	if got := s2.SubviewMembers(svD); !got.Equal(ids.NewPIDSet(pd)) {
		t.Fatalf("d's subview = %v, want singleton", got)
	}
	ssD, _ := s2.SVSetOf(svD)
	ssAB, _ := s2.SVSetOf(abSv)
	if ssD == ssAB {
		t.Fatal("fresh joiner must be in its own sv-set")
	}
	if svD.Origin != v2 {
		t.Fatalf("fresh subview origin = %v, want %v", svD.Origin, v2)
	}
}

func TestComposeMergesTwoPartitions(t *testing.T) {
	// Two concurrent views (partitions) merge: each side's structure is
	// carried over intact, giving the "clusters" the classifier needs.
	vLeft, vRight := vid(2, pa), vid(2, pc)
	left := Flat(vLeft, ids.NewPIDSet(pa, pb))
	right := Flat(vRight, ids.NewPIDSet(pc, pd))

	v3 := vid(3, pa)
	comp := ids.NewPIDSet(pa, pb, pc, pd, pe) // e is brand new
	s := Compose(v3, comp, []Predecessor{
		{Structure: left, Survivors: ids.NewPIDSet(pa, pb)},
		{Structure: right, Survivors: ids.NewPIDSet(pc, pd)},
	})
	if err := s.Validate(comp); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumSubviews() != 3 || s.NumSVSets() != 3 {
		t.Fatalf("got %d subviews, %d sv-sets; want 3, 3", s.NumSubviews(), s.NumSVSets())
	}
	svA, _ := s.SubviewOf(pa)
	svB, _ := s.SubviewOf(pb)
	svC, _ := s.SubviewOf(pc)
	svE, _ := s.SubviewOf(pe)
	if svA != svB {
		t.Fatal("left partition split across subviews")
	}
	if svA == svC || svC == svE || svA == svE {
		t.Fatal("distinct origins must stay distinct subviews")
	}
}

func TestComposeKeepsSplitSubviewsDistinct(t *testing.T) {
	// Regression: a partition splits one subview; both sides carry a
	// restriction of it (with the same pre-partition identifier). After
	// the merge the two restrictions must remain distinct subviews —
	// only an explicit SubviewMerge may reunite them, because the two
	// sides may have diverged.
	v1 := vid(1, pa)
	orig := Flat(v1, ids.NewPIDSet(pa, pb, pc, pd))
	left := orig.RemoveDeparted(ids.NewPIDSet(pa, pb))
	right := orig.RemoveDeparted(ids.NewPIDSet(pc, pd))

	v3 := vid(3, pa)
	comp := ids.NewPIDSet(pa, pb, pc, pd)
	merged := Compose(v3, comp, []Predecessor{
		{Structure: left, Survivors: ids.NewPIDSet(pa, pb)},
		{Structure: right, Survivors: ids.NewPIDSet(pc, pd)},
	})
	if err := merged.Validate(comp); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if merged.NumSubviews() != 2 || merged.NumSVSets() != 2 {
		t.Fatalf("split subview collapsed: %v", merged)
	}
	svA, _ := merged.SubviewOf(pa)
	svB, _ := merged.SubviewOf(pb)
	svC, _ := merged.SubviewOf(pc)
	if svA != svB {
		t.Error("left pair separated")
	}
	if svA == svC {
		t.Error("split halves reunited without application control")
	}
}

func TestComposePanicsOnOverlappingPredecessors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compose did not panic on overlapping predecessors")
		}
	}()
	v := vid(3, pa)
	comp := ids.NewPIDSet(pa)
	p1 := Flat(vid(2, pa), ids.NewPIDSet(pa))
	p2 := Flat(vid(2, pb), ids.NewPIDSet(pa))
	Compose(v, comp, []Predecessor{
		{Structure: p1, Survivors: ids.NewPIDSet(pa)},
		{Structure: p2, Survivors: ids.NewPIDSet(pa)},
	})
}

func TestValidateCatchesCorruption(t *testing.T) {
	comp := ids.NewPIDSet(pa, pb)
	s := Flat(vid(1, pa), comp)
	if err := s.Validate(ids.NewPIDSet(pa)); err == nil {
		t.Error("subview member outside view not caught")
	}
	if err := s.Validate(ids.NewPIDSet(pa, pb, pc)); err == nil {
		t.Error("uncovered view member not caught")
	}
}

func TestEqual(t *testing.T) {
	comp := ids.NewPIDSet(pa, pb)
	s1 := Flat(vid(1, pa), comp)
	s2 := Flat(vid(1, pa), comp)
	if !s1.Equal(s2) {
		t.Fatal("identical structures not Equal")
	}
	s3 := Flat(vid(2, pa), comp)
	if s1.Equal(s3) {
		t.Fatal("different views Equal")
	}
	s4 := Compose(vid(1, pa), comp, nil)
	if s1.Equal(s4) {
		t.Fatal("different decompositions Equal")
	}
}

func TestStringDeterministic(t *testing.T) {
	s := threeSingletons(t)
	a, b := s.String(), s.String()
	if a != b || a == "" {
		t.Fatalf("String not deterministic: %q vs %q", a, b)
	}
}

// TestComposePropertyRandomPredecessors is a property test over Compose:
// for random decompositions of a member set into predecessor views (each
// with a random internal structure), the composed view (a) validates,
// (b) preserves co-subview and co-sv-set grouping within each
// predecessor, (c) never groups processes from different predecessors,
// and (d) uses only identifiers scoped to the new view.
func TestComposePropertyRandomPredecessors(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	mkPID := func(i int) ids.PID { return ids.PID{Site: string(rune('a' + i)), Inc: 1} }
	for trial := 0; trial < 300; trial++ {
		nMembers := 2 + r.Intn(8)
		members := make([]ids.PID, nMembers)
		for i := range members {
			members[i] = mkPID(i)
		}
		// Assign each member to predecessor group 0..k-1, or -1 = fresh.
		k := 1 + r.Intn(3)
		groups := make([][]ids.PID, k)
		var fresh []ids.PID
		for _, m := range members {
			g := r.Intn(k+1) - 1
			if g < 0 {
				fresh = append(fresh, m)
			} else {
				groups[g] = append(groups[g], m)
			}
		}
		var preds []Predecessor
		origin := make(map[ids.PID]int)
		for gi, g := range groups {
			if len(g) == 0 {
				continue
			}
			gset := ids.NewPIDSet(g...)
			pv := vid(uint64(10+gi), g[0])
			st := Compose(pv, gset, nil) // singletons
			// Randomly merge some structure inside the predecessor.
			for op := 0; op < r.Intn(4); op++ {
				if sss := st.SVSets(); len(sss) >= 2 {
					st, _, _ = st.MergeSVSets(sss[:2])
				}
				if svs := st.Subviews(); len(svs) >= 2 {
					if next, _, err := st.MergeSubviews(svs[:2]); err == nil {
						st = next
					}
				}
			}
			preds = append(preds, Predecessor{Structure: st, Survivors: gset})
			for _, m := range g {
				origin[m] = gi
			}
		}
		for _, m := range fresh {
			origin[m] = -1
		}

		newView := vid(99, members[0])
		comp := ids.NewPIDSet(members...)
		out := Compose(newView, comp, preds)
		if err := out.Validate(comp); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < nMembers; i++ {
			for j := i + 1; j < nMembers; j++ {
				x, y := members[i], members[j]
				svX, _ := out.SubviewOf(x)
				svY, _ := out.SubviewOf(y)
				ssX, _ := out.SVSetOf(svX)
				ssY, _ := out.SVSetOf(svY)
				if origin[x] != origin[y] || origin[x] == -1 {
					// different predecessors or fresh: never grouped
					if svX == svY {
						t.Fatalf("trial %d: %v and %v grouped across predecessors", trial, x, y)
					}
					if ssX == ssY {
						t.Fatalf("trial %d: %v and %v share sv-set across predecessors", trial, x, y)
					}
					continue
				}
				// same predecessor: grouping must match the predecessor's
				pred := preds[indexOfPred(preds, x)]
				pSvX, _ := pred.Structure.SubviewOf(x)
				pSvY, _ := pred.Structure.SubviewOf(y)
				pSsX, _ := pred.Structure.SVSetOf(pSvX)
				pSsY, _ := pred.Structure.SVSetOf(pSvY)
				if (pSvX == pSvY) != (svX == svY) {
					t.Fatalf("trial %d: subview grouping of %v,%v changed across Compose", trial, x, y)
				}
				if (pSsX == pSsY) != (ssX == ssY) {
					t.Fatalf("trial %d: sv-set grouping of %v,%v changed across Compose", trial, x, y)
				}
				if svX.Origin != newView || ssX.Origin != newView {
					t.Fatalf("trial %d: identifiers not rescoped: %v %v", trial, svX, ssX)
				}
			}
		}
	}
}

func indexOfPred(preds []Predecessor, p ids.PID) int {
	for i, pr := range preds {
		if pr.Survivors.Has(p) {
			return i
		}
	}
	return -1
}

// TestRandomOperationSequencesKeepInvariants is a property test: any
// sequence of legal merges and failure shrinks keeps the §6.1 invariants.
func TestRandomOperationSequencesKeepInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	people := []ids.PID{pa, pb, pc, pd, pe}
	for trial := 0; trial < 200; trial++ {
		comp := ids.NewPIDSet(people...)
		s := Compose(vid(1, pa), comp, nil)
		for op := 0; op < 10; op++ {
			switch r.Intn(3) {
			case 0: // merge two random sv-sets
				sss := s.SVSets()
				if len(sss) < 2 {
					continue
				}
				i, j := r.Intn(len(sss)), r.Intn(len(sss))
				if i == j {
					continue
				}
				var err error
				s, _, err = s.MergeSVSets([]ids.SVSetID{sss[i], sss[j]})
				if err != nil {
					t.Fatalf("trial %d: MergeSVSets: %v", trial, err)
				}
			case 1: // merge two random subviews (may be a no-op)
				svs := s.Subviews()
				if len(svs) < 2 {
					continue
				}
				i, j := r.Intn(len(svs)), r.Intn(len(svs))
				if i == j {
					continue
				}
				next, _, err := s.MergeSubviews([]ids.SubviewID{svs[i], svs[j]})
				if err != nil && !IsNoEffect(err) {
					t.Fatalf("trial %d: MergeSubviews: %v", trial, err)
				}
				s = next
			case 2: // a random process departs (but keep at least one)
				members := s.Members().Sorted()
				if len(members) <= 1 {
					continue
				}
				victim := members[r.Intn(len(members))]
				survivors := s.Members()
				survivors.Remove(victim)
				s = s.RemoveDeparted(survivors)
				comp = survivors
			}
			if err := s.Validate(comp); err != nil {
				t.Fatalf("trial %d op %d: invariant violated: %v\n%s", trial, op, err, s)
			}
		}
	}
}
