// Package evs implements the structural algebra of enriched view
// synchrony (Section 6 of the paper): subviews and subview-sets (sv-sets)
// living inside a view.
//
// The invariants, straight from §6.1:
//
//   - subviews partition the view: along any cut, each process belongs to
//     exactly one subview; subviews do not overlap and do not span view
//     boundaries;
//   - each subview belongs to exactly one sv-set;
//   - within a view, subviews and sv-sets never split; they merge only
//     under application control (SubviewMerge, SVSetMerge);
//   - across consecutive views, processes that were in the same subview
//     (sv-set) remain in the same subview (sv-set) — Property 6.3 — while
//     failures may shrink compositions at arbitrary times;
//   - a newly joined or recovered process appears as a singleton subview
//     inside a singleton sv-set; admission into an existing subview
//     happens only when the application asks.
//
// The package is pure data manipulation: no goroutines, no I/O. The
// protocol engine (internal/core) drives it — the coordinator composes
// structures at view installs and sequences merge operations within a
// view.
package evs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ids"
)

// Structure is the subview / sv-set decomposition of one view. The zero
// value is an empty structure for the zero view; build real ones with
// NewSingleton, Compose, and the merge operations. Structures are treated
// as immutable: every operation returns a new Structure.
type Structure struct {
	// View is the view this structure decomposes.
	View ids.ViewID
	// subviews maps each subview to its member set.
	subviews map[ids.SubviewID]ids.PIDSet
	// svsetOf maps each subview to its owning sv-set.
	svsetOf map[ids.SubviewID]ids.SVSetID
	// nextSv and nextSs allocate fresh identifier sequence numbers for
	// subviews/sv-sets created in this view.
	nextSv, nextSs uint32
}

// NewSingleton returns the structure of a freshly bootstrapped singleton
// view: one process, alone in a new subview, alone in a new sv-set.
func NewSingleton(view ids.ViewID, self ids.PID) Structure {
	s := Structure{
		View:     view,
		subviews: make(map[ids.SubviewID]ids.PIDSet, 1),
		svsetOf:  make(map[ids.SubviewID]ids.SVSetID, 1),
		nextSv:   2,
		nextSs:   2,
	}
	sv := ids.SubviewID{Origin: view, Seq: 1}
	ss := ids.SVSetID{Origin: view, Seq: 1}
	s.subviews[sv] = ids.NewPIDSet(self)
	s.svsetOf[sv] = ss
	return s
}

// clone returns a deep copy of s.
func (s Structure) clone() Structure {
	c := Structure{
		View:     s.View,
		subviews: make(map[ids.SubviewID]ids.PIDSet, len(s.subviews)),
		svsetOf:  make(map[ids.SubviewID]ids.SVSetID, len(s.svsetOf)),
		nextSv:   s.nextSv,
		nextSs:   s.nextSs,
	}
	for sv, members := range s.subviews {
		c.subviews[sv] = members.Clone()
	}
	for sv, ss := range s.svsetOf {
		c.svsetOf[sv] = ss
	}
	return c
}

// Members returns the union of all subview members (== the view
// composition when invariants hold).
func (s Structure) Members() ids.PIDSet {
	all := make(ids.PIDSet)
	for _, members := range s.subviews {
		for p := range members {
			all.Add(p)
		}
	}
	return all
}

// Subviews returns the subview identifiers in sorted order.
func (s Structure) Subviews() []ids.SubviewID {
	out := make([]ids.SubviewID, 0, len(s.subviews))
	for sv := range s.subviews {
		out = append(out, sv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// SubviewMembers returns a copy of the member set of sv (nil if unknown).
func (s Structure) SubviewMembers(sv ids.SubviewID) ids.PIDSet {
	m, ok := s.subviews[sv]
	if !ok {
		return nil
	}
	return m.Clone()
}

// SubviewOf returns the subview containing p.
func (s Structure) SubviewOf(p ids.PID) (ids.SubviewID, bool) {
	for sv, members := range s.subviews {
		if members.Has(p) {
			return sv, true
		}
	}
	return ids.SubviewID{}, false
}

// SVSetOf returns the sv-set owning subview sv.
func (s Structure) SVSetOf(sv ids.SubviewID) (ids.SVSetID, bool) {
	ss, ok := s.svsetOf[sv]
	return ss, ok
}

// SVSets returns the sv-set identifiers in sorted order.
func (s Structure) SVSets() []ids.SVSetID {
	seen := make(map[ids.SVSetID]struct{})
	var out []ids.SVSetID
	for _, ss := range s.svsetOf {
		if _, dup := seen[ss]; !dup {
			seen[ss] = struct{}{}
			out = append(out, ss)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// SVSetSubviews returns the subviews belonging to sv-set ss, sorted.
func (s Structure) SVSetSubviews(ss ids.SVSetID) []ids.SubviewID {
	var out []ids.SubviewID
	for sv, owner := range s.svsetOf {
		if owner == ss {
			out = append(out, sv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// SVSetMembers returns the union of members of all subviews in ss.
func (s Structure) SVSetMembers(ss ids.SVSetID) ids.PIDSet {
	all := make(ids.PIDSet)
	for sv, owner := range s.svsetOf {
		if owner == ss {
			for p := range s.subviews[sv] {
				all.Add(p)
			}
		}
	}
	return all
}

// NumSubviews returns the number of subviews.
func (s Structure) NumSubviews() int { return len(s.subviews) }

// NumSVSets returns the number of sv-sets.
func (s Structure) NumSVSets() int { return len(s.SVSets()) }

// Equal reports whether two structures are identical (same view, same
// subviews with same members, same sv-set assignment).
func (s Structure) Equal(t Structure) bool {
	if s.View != t.View || len(s.subviews) != len(t.subviews) {
		return false
	}
	for sv, members := range s.subviews {
		tm, ok := t.subviews[sv]
		if !ok || !members.Equal(tm) {
			return false
		}
		if s.svsetOf[sv] != t.svsetOf[sv] {
			return false
		}
	}
	return true
}

// Validate checks the §6.1 invariants against the given view composition.
// It returns nil if subviews partition comp exactly and every subview has
// an owning sv-set.
func (s Structure) Validate(comp ids.PIDSet) error {
	seen := make(ids.PIDSet)
	for sv, members := range s.subviews {
		if len(members) == 0 {
			return fmt.Errorf("evs: subview %v is empty", sv)
		}
		for p := range members {
			if seen.Has(p) {
				return fmt.Errorf("evs: process %v in more than one subview", p)
			}
			seen.Add(p)
			if !comp.Has(p) {
				return fmt.Errorf("evs: process %v in subview %v but not in view", p, sv)
			}
		}
		if _, ok := s.svsetOf[sv]; !ok {
			return fmt.Errorf("evs: subview %v has no sv-set", sv)
		}
	}
	if !seen.Equal(comp) {
		return fmt.Errorf("evs: subviews cover %v, view is %v", seen, comp)
	}
	return nil
}

// errNoEffect distinguishes the specified no-op case of SubviewMerge.
var errNoEffect = errors.New("evs: merge has no effect")

// IsNoEffect reports whether err is the "call has no effect" condition
// from §6.1 (SubviewMerge across different sv-sets).
func IsNoEffect(err error) bool { return errors.Is(err, errNoEffect) }

// MergeSubviews creates a new subview that is the union of the given
// subviews, as §6.1's SubviewMerge. All inputs must currently belong to
// the same sv-set; otherwise the call has no effect and an error for
// which IsNoEffect holds is returned. The new subview stays in that
// sv-set. Unknown subview ids are an error.
func (s Structure) MergeSubviews(svs []ids.SubviewID) (Structure, ids.SubviewID, error) {
	if len(svs) < 2 {
		return s, ids.SubviewID{}, fmt.Errorf("evs: MergeSubviews needs >= 2 subviews, got %d", len(svs))
	}
	var owner ids.SVSetID
	for i, sv := range svs {
		ss, ok := s.svsetOf[sv]
		if !ok {
			return s, ids.SubviewID{}, fmt.Errorf("evs: unknown subview %v", sv)
		}
		if i == 0 {
			owner = ss
		} else if ss != owner {
			return s, ids.SubviewID{}, fmt.Errorf("%w: subviews %v and %v in different sv-sets", errNoEffect, svs[0], sv)
		}
	}
	c := s.clone()
	union := make(ids.PIDSet)
	for _, sv := range dedupSubviews(svs) {
		for p := range c.subviews[sv] {
			union.Add(p)
		}
		delete(c.subviews, sv)
		delete(c.svsetOf, sv)
	}
	newSv := ids.SubviewID{Origin: c.View, Seq: c.nextSv}
	c.nextSv++
	c.subviews[newSv] = union
	c.svsetOf[newSv] = owner
	return c, newSv, nil
}

// MergeSVSets creates a new sv-set that is the union of the given
// sv-sets, as §6.1's SV-SetMerge. Unknown sv-set ids are an error.
func (s Structure) MergeSVSets(sss []ids.SVSetID) (Structure, ids.SVSetID, error) {
	if len(sss) < 2 {
		return s, ids.SVSetID{}, fmt.Errorf("evs: MergeSVSets needs >= 2 sv-sets, got %d", len(sss))
	}
	existing := make(map[ids.SVSetID]struct{})
	for _, ss := range s.svsetOf {
		existing[ss] = struct{}{}
	}
	for _, ss := range sss {
		if _, ok := existing[ss]; !ok {
			return s, ids.SVSetID{}, fmt.Errorf("evs: unknown sv-set %v", ss)
		}
	}
	merged := make(map[ids.SVSetID]struct{}, len(sss))
	for _, ss := range sss {
		merged[ss] = struct{}{}
	}
	c := s.clone()
	newSs := ids.SVSetID{Origin: c.View, Seq: c.nextSs}
	c.nextSs++
	for sv, owner := range c.svsetOf {
		if _, in := merged[owner]; in {
			c.svsetOf[sv] = newSs
		}
	}
	return c, newSs, nil
}

// RemoveDeparted shrinks the structure to the given survivor set, the
// failure-driven shrinking of §6.1: departed processes leave their
// subviews; emptied subviews (and thereby sv-sets) vanish. Identifiers of
// surviving subviews are preserved.
func (s Structure) RemoveDeparted(survivors ids.PIDSet) Structure {
	c := s.clone()
	for sv, members := range c.subviews {
		kept := members.Intersect(survivors)
		if len(kept) == 0 {
			delete(c.subviews, sv)
			delete(c.svsetOf, sv)
			continue
		}
		c.subviews[sv] = kept
	}
	return c
}

// Predecessor describes one predecessor view's contribution to a newly
// installed view: its structure and the subset of its processes that
// survive into the new view.
type Predecessor struct {
	Structure Structure
	Survivors ids.PIDSet
}

// Compose builds the structure of a newly installed view (Property 6.3):
// each predecessor's structure is restricted to its survivors, keeping
// the *grouping* — co-subview (co-sv-set) survivors of one predecessor
// remain co-subview (co-sv-set); every process of comp not covered by any
// predecessor is a fresh arrival and becomes a singleton subview in a
// singleton sv-set.
//
// Every subview and sv-set receives a fresh identifier in the new view.
// Identifiers cannot be carried over: two concurrent predecessor views
// may each hold a restriction of the same pre-partition subview (the
// partition split it), and those restrictions must remain *distinct*
// subviews after the merge — the structure grows only under application
// control (§6.1), so only an explicit SubviewMerge may reunite them.
//
// Predecessors must be disjoint (they come from distinct concurrent
// views; a process has one predecessor view). Compose panics on overlap,
// which would indicate a protocol bug upstream. The output is
// deterministic in the order of preds; the membership layer sorts them
// by predecessor view id.
func Compose(view ids.ViewID, comp ids.PIDSet, preds []Predecessor) Structure {
	out := Structure{
		View:     view,
		subviews: make(map[ids.SubviewID]ids.PIDSet),
		svsetOf:  make(map[ids.SubviewID]ids.SVSetID),
		nextSv:   1,
		nextSs:   1,
	}
	covered := make(ids.PIDSet)
	for _, pred := range preds {
		keep := pred.Survivors.Intersect(comp)
		restricted := pred.Structure.RemoveDeparted(keep)
		// Fresh sv-set ids, one per surviving sv-set of this predecessor.
		ssMap := make(map[ids.SVSetID]ids.SVSetID)
		for _, sv := range restricted.Subviews() { // sorted: deterministic ids
			members := restricted.subviews[sv]
			for p := range members {
				if covered.Has(p) {
					panic(fmt.Sprintf("evs: predecessors overlap at %v", p))
				}
				covered.Add(p)
			}
			oldSs := restricted.svsetOf[sv]
			newSs, ok := ssMap[oldSs]
			if !ok {
				newSs = ids.SVSetID{Origin: view, Seq: out.nextSs}
				out.nextSs++
				ssMap[oldSs] = newSs
			}
			newSv := ids.SubviewID{Origin: view, Seq: out.nextSv}
			out.nextSv++
			out.subviews[newSv] = members
			out.svsetOf[newSv] = newSs
		}
	}
	for _, p := range comp.Diff(covered).Sorted() {
		sv := ids.SubviewID{Origin: view, Seq: out.nextSv}
		ss := ids.SVSetID{Origin: view, Seq: out.nextSs}
		out.nextSv++
		out.nextSs++
		out.subviews[sv] = ids.NewPIDSet(p)
		out.svsetOf[sv] = ss
	}
	return out
}

// Flat returns the degenerate structure for the given view: a single
// sv-set containing a single subview containing all processes — the case
// that, per §6.1, reduces enriched views to the traditional view
// abstraction. Used by the flat-view baseline.
func Flat(view ids.ViewID, comp ids.PIDSet) Structure {
	s := Structure{
		View:     view,
		subviews: make(map[ids.SubviewID]ids.PIDSet, 1),
		svsetOf:  make(map[ids.SubviewID]ids.SVSetID, 1),
		nextSv:   2,
		nextSs:   2,
	}
	sv := ids.SubviewID{Origin: view, Seq: 1}
	s.subviews[sv] = comp.Clone()
	s.svsetOf[sv] = ids.SVSetID{Origin: view, Seq: 1}
	return s
}

// String renders the structure deterministically, e.g.
// "view v3@a#1: ss1/v1@a#1{sv1/v1@a#1{a#1, b#1}} ss1/v2@c#1{sv1/v2@c#1{c#1}}".
func (s Structure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "view %v:", s.View)
	for _, ss := range s.SVSets() {
		fmt.Fprintf(&b, " %v(", ss)
		for i, sv := range s.SVSetSubviews(ss) {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%v%v", sv, s.subviews[sv])
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Row is one subview's entry in a structure's canonical form: the
// subview, its owning sv-set, and its sorted member list. The wire
// codec (internal/transport/wire) serializes structures through this
// form rather than the internal maps.
type Row struct {
	Subview ids.SubviewID
	SVSet   ids.SVSetID
	Members []ids.PID
}

// Export returns the structure in canonical form: one Row per subview,
// sorted by subview id, plus the identifier allocators needed to keep
// creating fresh subview/sv-set ids after a round trip.
func (s Structure) Export() (rows []Row, nextSv, nextSs uint32) {
	for _, sv := range s.Subviews() {
		rows = append(rows, Row{
			Subview: sv,
			SVSet:   s.svsetOf[sv],
			Members: s.subviews[sv].Sorted(),
		})
	}
	return rows, s.nextSv, s.nextSs
}

// FromRows rebuilds a structure from its canonical form — the inverse
// of Export. Rows are validated just enough to keep the internal
// representation consistent: duplicate subview ids, empty subviews, and
// duplicate members across subviews are errors (a decoded structure
// must satisfy the same partition shape Validate checks against a
// composition).
func FromRows(view ids.ViewID, rows []Row, nextSv, nextSs uint32) (Structure, error) {
	s := Structure{
		View:     view,
		subviews: make(map[ids.SubviewID]ids.PIDSet, len(rows)),
		svsetOf:  make(map[ids.SubviewID]ids.SVSetID, len(rows)),
		nextSv:   nextSv,
		nextSs:   nextSs,
	}
	seen := make(ids.PIDSet)
	for _, row := range rows {
		if _, dup := s.subviews[row.Subview]; dup {
			return Structure{}, fmt.Errorf("evs: duplicate subview %v in rows", row.Subview)
		}
		if len(row.Members) == 0 {
			return Structure{}, fmt.Errorf("evs: subview %v has no members", row.Subview)
		}
		members := make(ids.PIDSet, len(row.Members))
		for _, p := range row.Members {
			if seen.Has(p) {
				return Structure{}, fmt.Errorf("evs: process %v in more than one subview", p)
			}
			seen.Add(p)
			members.Add(p)
		}
		s.subviews[row.Subview] = members
		s.svsetOf[row.Subview] = row.SVSet
	}
	return s, nil
}

func dedupSubviews(svs []ids.SubviewID) []ids.SubviewID {
	seen := make(map[ids.SubviewID]struct{}, len(svs))
	out := svs[:0:0]
	for _, sv := range svs {
		if _, dup := seen[sv]; !dup {
			seen[sv] = struct{}{}
			out = append(out, sv)
		}
	}
	return out
}

// Summary renders the subview/sv-set grouping canonically and
// identifier-free: sv-sets joined by "|", subviews within an sv-set by
// "+", sorted member PIDs within a subview by "," — e.g. "a#1,b#1+c#1|d#1"
// for {{a,b},{c}} in one sv-set and {{d}} in another. This is the
// grouping P6.3 preserves across views (the view-scoped identifiers are
// deliberately absent), shared by the trace encoding (obs.Event.Struct)
// and the live status endpoint (core.Status.Structure) so offline and
// live views of a structure compare byte-for-byte.
func (s Structure) Summary() string {
	var b strings.Builder
	for i, ss := range s.SVSets() {
		if i > 0 {
			b.WriteByte('|')
		}
		for j, sv := range s.SVSetSubviews(ss) {
			if j > 0 {
				b.WriteByte('+')
			}
			for k, p := range s.SubviewMembers(sv).Sorted() {
				if k > 0 {
					b.WriteByte(',')
				}
				b.WriteString(p.String())
			}
		}
	}
	return b.String()
}
