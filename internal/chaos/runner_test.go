package chaos

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunHandcraftedPlan runs a short schedule exercising one fault of
// each structural family — partition, one-way cut, crash+restart — and
// expects a clean verdict: the group must reconverge and the trace must
// satisfy every paper invariant.
func TestRunHandcraftedPlan(t *testing.T) {
	plan := Plan{
		Seed: 11, N: 4, HorizonMS: 500,
		Faults: []Fault{
			{Kind: KindPartition, At: 20, For: 120, Sites: []string{"b"}},
			{Kind: KindOneWay, At: 180, For: 100, A: "a", B: "c"},
			{Kind: KindCrash, At: 300, For: 100, A: "d"},
		},
	}
	reg := obs.NewRegistry()
	res, err := Run(plan, Config{Metrics: reg})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed() {
		t.Fatalf("run failed: violations=%v reconverged=%v detail=%s",
			res.Violations, res.Reconverged, res.OracleDetail)
	}
	if res.FaultCounts[string(KindPartition)] != 1 {
		t.Errorf("partition activations = %d, want 1", res.FaultCounts[string(KindPartition)])
	}
	if res.FaultCounts[string(KindCrash)] != 1 {
		t.Errorf("crash activations = %d, want 1", res.FaultCounts[string(KindCrash)])
	}
	if res.FaultCounts[string(KindOneWay)] == 0 {
		t.Errorf("one-way cut dropped no packets; the cut never bit")
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricFaultPrefix+string(KindCrash)]; got != 1 {
		t.Errorf("chaos.fault_total.crash = %d, want 1", got)
	}
	if res.Events == 0 {
		t.Error("no trace events collected")
	}
}

// TestRunPacketFaults covers the probabilistic packet-level kinds:
// loss, duplication, and delay spikes must inject (counted per packet)
// without breaking any invariant — the protocol's dedup and stale-view
// handling are exactly what they stress.
func TestRunPacketFaults(t *testing.T) {
	plan := Plan{
		Seed: 23, N: 3, HorizonMS: 400,
		Faults: []Fault{
			{Kind: KindLoss, At: 10, For: 150, Prob: 0.3},
			{Kind: KindDup, At: 100, For: 200, Prob: 0.5},
			{Kind: KindDelay, At: 150, For: 200, Prob: 0.5, DelayMS: 10},
		},
	}
	res, err := Run(plan, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed() {
		t.Fatalf("run failed: violations=%v reconverged=%v detail=%s",
			res.Violations, res.Reconverged, res.OracleDetail)
	}
	for _, k := range []FaultKind{KindLoss, KindDup, KindDelay} {
		if res.FaultCounts[string(k)] == 0 {
			t.Errorf("%s injected nothing", k)
		}
	}
}

// TestGenerateDeterministic: the whole point of the seed — the same
// seed yields byte-identical plans, different seeds differ.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, GenConfig{})
	b := Generate(7, GenConfig{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%s\n%s", a, b)
	}
	c := Generate(8, GenConfig{})
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical plans: %s", a)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	if len(a.Faults) < 3 {
		t.Fatalf("generated %d faults, want >= 3", len(a.Faults))
	}
}

// TestGeneratedPlansValidate sweeps seeds through the generator; every
// plan must validate and respect the crash budget.
func TestGeneratedPlansValidate(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed, GenConfig{})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v (%s)", seed, err, p)
		}
		crashes := 0
		for _, f := range p.Faults {
			if f.Kind == KindCrash {
				crashes++
			}
			if end := f.At + f.For; end > p.HorizonMS {
				t.Fatalf("seed %d: fault %s runs past the horizon", seed, f)
			}
		}
		if crashes > 1 {
			t.Fatalf("seed %d: %d crash faults, want <= 1", seed, crashes)
		}
	}
}

// TestPlanRoundTrip: Save/Load is the bug-report format; it must be
// lossless.
func TestPlanRoundTrip(t *testing.T) {
	p := Generate(99, GenConfig{})
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n%s\n%s", p, got)
	}
}

// TestPlanValidateRejects spot-checks the validator's error cases.
func TestPlanValidateRejects(t *testing.T) {
	base := Plan{Seed: 1, N: 3, HorizonMS: 300}
	bad := []Plan{
		{Seed: 1, N: 1, HorizonMS: 300},
		{Seed: 1, N: 3},
		withFault(base, Fault{Kind: "nonsense", At: 0}),
		withFault(base, Fault{Kind: KindOneWay, At: 0, A: "a", B: "a"}),
		withFault(base, Fault{Kind: KindPartition, At: 0, Sites: []string{"a", "b", "c"}}),
		withFault(base, Fault{Kind: KindLoss, At: 0, Prob: 1.5}),
		withFault(base, Fault{Kind: KindCrash, At: 0}),
		withFault(base, Fault{Kind: KindDrop, At: 400, A: "a"}),
		withFault(base, Fault{Kind: KindHBStarve, At: 0, A: "z"}),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			b, _ := json.Marshal(p)
			t.Errorf("case %d: Validate accepted %s", i, b)
		}
	}
}

func withFault(p Plan, f Fault) Plan {
	p.Faults = append([]Fault(nil), f)
	return p
}

// TestMergeGroups covers the partition-component union logic.
func TestMergeGroups(t *testing.T) {
	got := mergeGroups([][]string{{"a", "b"}, {"c"}, {"b", "d"}})
	want := [][]string{{"a", "b", "d"}, {"c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeGroups = %v, want %v", got, want)
	}
}

// TestFaultWindow checks the For==0 horizon convention.
func TestFaultWindow(t *testing.T) {
	at, dur := Fault{At: 100}.Window(500)
	if at != 100*time.Millisecond || dur != 400*time.Millisecond {
		t.Fatalf("Window = (%v, %v), want (100ms, 400ms)", at, dur)
	}
	at, dur = Fault{At: 100, For: 1000}.Window(500)
	if at != 100*time.Millisecond || dur != 400*time.Millisecond {
		t.Fatalf("clamped Window = (%v, %v), want (100ms, 400ms)", at, dur)
	}
}
