package chaos

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/stable"
	"repro/internal/tracecheck"
	"repro/internal/transfer"
	"repro/internal/transport"
	"repro/internal/transport/udp"
	"repro/internal/transport/wire"
)

// blobApp is the simplest transfer.App: one byte blob of shared state.
type blobApp struct {
	mu   sync.Mutex
	data []byte
}

func (a *blobApp) get() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte(nil), a.data...)
}

func (a *blobApp) MarshalCritical() ([]byte, error) { return nil, nil }
func (a *blobApp) MarshalBulk() ([]byte, error)     { return a.get(), nil }
func (a *blobApp) ApplyCritical(b []byte) error     { return nil }
func (a *blobApp) ApplyBulk(b []byte) error {
	a.mu.Lock()
	a.data = append([]byte(nil), b...)
	a.mu.Unlock()
	return nil
}

// member is one process plus its transfer tool and event pump.
type member struct {
	p    *core.Process
	app  *blobApp
	tool *transfer.Tool
	done chan struct{} // closed when a received transfer completes
}

// startMember boots a process and pumps its events through the transfer
// tool, signaling done when a reception finishes.
func startMember(t *testing.T, tr transport.Transport, reg *stable.Registry, site string, opts core.Options) *member {
	t.Helper()
	p, err := core.Start(tr, reg, site, opts)
	if err != nil {
		t.Fatalf("start %s: %v", site, err)
	}
	m := &member{p: p, app: &blobApp{}, done: make(chan struct{})}
	m.tool = transfer.New(p, m.app, transfer.Options{})
	go func() {
		closed := false
		for ev := range p.Events() {
			me, ok := ev.(core.MsgEvent)
			if !ok {
				continue
			}
			prog, handled, err := m.tool.HandleMessage(me)
			if err != nil || !handled {
				continue
			}
			if prog.Done && !closed {
				closed = true
				close(m.done)
			}
		}
	}()
	return m
}

// TestCoordinatorCrashMidProposal is the Process.Crash mid-proposal
// scenario over both backends: the coordinator crashes after gathering
// acks but before its Install lands (a fault filter guarantees no
// Install from it ever does), the blocked survivors re-form on their
// own, and the crashed site restarts as a new incarnation that rejoins
// and pulls the shared state back via internal/transfer. The whole
// trace is gated through the tracecheck suite.
func TestCoordinatorCrashMidProposal(t *testing.T) {
	t.Run("sim", func(t *testing.T) {
		sim := simnet.New(simnet.Config{Seed: 3})
		defer sim.Close()
		runCoordinatorCrashMidProposal(t, sim)
	})
	t.Run("udp", func(t *testing.T) {
		u := udp.New(udp.Config{})
		defer u.Close()
		runCoordinatorCrashMidProposal(t, u)
	})
}

func runCoordinatorCrashMidProposal(t *testing.T, fabric transport.Transport) {
	filt := transport.NewFaultFilter(fabric)
	mem := obs.NewMemorySink()
	opts := core.Options{
		Group:          "crashmid",
		HeartbeatEvery: core.SimHeartbeatEvery,
		SuspectAfter:   core.SimSuspectAfter,
		Tick:           core.SimTick,
		ProposeTimeout: core.SimProposeTimeout,
		Enriched:       true,
		LogViews:       true,
		Observer:       obs.NewCollector(nil, obs.NewTracer(0, mem)),
	}
	stores := stable.NewRegistry()

	sites := []string{"a", "b", "c", "d"}
	ms := make(map[string]*member, len(sites))
	for _, s := range sites {
		ms[s] = startMember(t, filt, stores, s, opts)
	}
	procs := func(names ...string) []*core.Process {
		out := make([]*core.Process, len(names))
		for i, n := range names {
			out[i] = ms[n].p
		}
		return out
	}
	if err := waitConverged(procs("a", "b", "c", "d"), 30*time.Second); err != nil {
		t.Fatalf("formation: %v", err)
	}

	// The shared state lives at the survivors; b will be the donor.
	ms["b"].app.ApplyBulk([]byte("the shared state"))

	// No Install from coordinator a may ever land: whenever a finishes
	// its round, the result is exactly "crashed between ack and
	// install" from the group's point of view.
	aPID := ms["a"].p.PID()
	filt.Arm(func(from, to ids.PID, payload any) transport.Verdict {
		if from == aPID {
			if _, ok := payload.(wire.Install); ok {
				return transport.Drop()
			}
		}
		return transport.Pass()
	})

	// Crash d: the smallest member a coordinates the removal round;
	// b and c ack it and block.
	ms["d"].p.Crash()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := ms["b"].p.StatusSnapshot()
		if st.Blocked && st.AckedProposal != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("b never blocked on a's proposal; status %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// The coordinator crashes holding the acks. Survivors b and c are
	// blocked on a round that will never install.
	ms["a"].p.Crash()
	filt.Disarm()

	// The protocol's way out: b and c suspect a, the new smallest (b)
	// proposes a higher round, and the survivors re-form alone.
	if err := waitConverged(procs("b", "c"), 30*time.Second); err != nil {
		t.Fatalf("survivors never re-formed: %v", err)
	}

	// The crashed site restarts as a new incarnation and rejoins via
	// heartbeat discovery.
	ms["a2"] = startMember(t, filt, stores, "a", opts)
	if got := ms["a2"].p.PID(); got.Inc <= aPID.Inc {
		t.Fatalf("restart did not bump the incarnation: %v -> %v", aPID, got)
	}
	if err := waitConverged(procs("a2", "b", "c"), 30*time.Second); err != nil {
		t.Fatalf("rejoin: %v", err)
	}

	// State transfer: the rejoined incarnation pulls the shared state
	// from donor b.
	if err := ms["a2"].tool.Request(ms["b"].p.PID()); err != nil {
		t.Fatalf("transfer request: %v", err)
	}
	select {
	case <-ms["a2"].done:
	case <-time.After(10 * time.Second):
		t.Fatal("state transfer never completed")
	}
	if got := ms["a2"].app.get(); !bytes.Equal(got, []byte("the shared state")) {
		t.Fatalf("transferred state = %q, want %q", got, "the shared state")
	}

	// Let trailing installs settle, then gate the whole scenario
	// through the offline invariant suite.
	time.Sleep(2 * core.SimSuspectAfter)
	for _, m := range ms {
		m.p.Crash()
	}
	report := tracecheck.Check(mem.Events())
	if !report.OK() {
		for _, v := range report.Violations {
			t.Errorf("tracecheck: %s", v)
		}
	}
}
