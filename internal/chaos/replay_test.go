package chaos

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/tracecheck"
)

// e8mPlan is the E8M install-propagation-mismatch fault expressed as a
// chaos plan: starve the group of e's heartbeats long enough that e is
// suspected out and a 4-member view forms, then — as the starvation
// lifts and the coordinator a re-forms the full view — eat exactly one
// Install from a to c. c has acked and blocked, advertising the stale
// view; the reconciliation fast path must re-send the cached install
// and heal without a re-proposal round.
func e8mPlan(seed int64) Plan {
	return Plan{
		Seed: seed, N: 5, HorizonMS: 400,
		Faults: []Fault{
			{Kind: KindHBStarve, At: 30, For: 90, A: "e"},
			{Kind: KindDrop, At: 120, A: "a", B: "c", Pkt: "install", Count: 1},
		},
	}
}

// TestE8MismatchPlanReplay is the acceptance scenario: the E8M fault as
// a chaos plan must reproduce (the install is dropped, the reconcile
// fast path fires) and heal identically under replay from the same
// seed — same deterministic fault counts, reconvergence, and a clean
// tracecheck verdict, twice.
func TestE8MismatchPlanReplay(t *testing.T) {
	plan := e8mPlan(424242)
	type outcome struct {
		dropped, starved uint64
		reconciles       uint64
		violations       int
		reconverged      bool
	}
	runOnce := func() outcome {
		t.Helper()
		reg := obs.NewRegistry()
		res, err := Run(plan, Config{Metrics: reg})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		snap := reg.Snapshot()
		return outcome{
			dropped:     res.FaultCounts[string(KindDrop)],
			starved:     res.FaultCounts[string(KindHBStarve)],
			reconciles:  snap.Counters[obs.MetricReconciles],
			violations:  len(res.Violations),
			reconverged: res.Reconverged,
		}
	}

	first := runOnce()
	second := runOnce()

	for i, o := range []outcome{first, second} {
		if !o.reconverged {
			t.Fatalf("replay %d: group never reconverged", i)
		}
		if o.violations != 0 {
			t.Fatalf("replay %d: %d tracecheck violations", i, o.violations)
		}
		if o.dropped != 1 {
			t.Errorf("replay %d: install drops = %d, want exactly 1", i, o.dropped)
		}
		if o.starved != 1 {
			t.Errorf("replay %d: hb-starve activations = %d, want 1", i, o.starved)
		}
		// The heal must be the reconcile fast path re-sending the cached
		// install — the whole point of the E8M scenario.
		if o.reconciles == 0 {
			t.Errorf("replay %d: reconcile fast path never fired after the install drop", i)
		}
	}
	if first.dropped != second.dropped || first.starved != second.starved {
		t.Errorf("replays diverged on deterministic fault counts: %+v vs %+v", first, second)
	}
}

// alwaysFail is the artificially broken oracle: every trace "violates".
type alwaysFail struct{}

func (alwaysFail) Name() string { return "always-fail" }
func (alwaysFail) Check(*tracecheck.Timeline) []tracecheck.Violation {
	return []tracecheck.Violation{{Checker: "always-fail", Msg: "injected failure"}}
}

// TestShrinkerOnBrokenOracle is the second acceptance scenario: run a
// multi-fault plan against an artificially broken oracle and watch the
// shrinker emit a strictly smaller failing plan.
func TestShrinkerOnBrokenOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking re-runs live groups; skipped in -short")
	}
	plan := Plan{
		Seed: 77, N: 3, HorizonMS: 300,
		Faults: []Fault{
			{Kind: KindLoss, At: 10, For: 100, Prob: 0.3},
			{Kind: KindDup, At: 50, For: 100, Prob: 0.5},
			{Kind: KindOneWay, At: 120, For: 80, A: "a", B: "b"},
		},
	}
	cfg := Config{Checkers: []tracecheck.Checker{alwaysFail{}}}
	res, err := Run(plan, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Failed() {
		t.Fatal("broken oracle did not fail the run")
	}

	runs := 0
	shrunk, st, err := Shrink(plan, func(cand Plan) (Result, error) {
		runs++
		return Run(cand, cfg)
	}, 12)
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if st.Runs != runs {
		t.Errorf("ShrinkStats.Runs = %d, but RunFunc ran %d times", st.Runs, runs)
	}
	// Every fault is removable under an always-failing oracle: the
	// shrunk plan must be strictly smaller, and with budget to spare it
	// reaches the empty schedule.
	if len(shrunk.Faults) >= len(plan.Faults) {
		t.Fatalf("shrinker did not shrink: %d faults -> %d", len(plan.Faults), len(shrunk.Faults))
	}
	if len(shrunk.Faults) != 0 {
		t.Errorf("with an always-failing oracle the minimal plan is empty; got %d faults: %s",
			len(shrunk.Faults), shrunk)
	}
}

// TestShrinkGreedy exercises the shrinker against a fake runner with a
// known minimal core: the failure needs the drop-install fault AND a
// one-way window of at least 80ms; everything else is noise.
func TestShrinkGreedy(t *testing.T) {
	plan := Plan{
		Seed: 5, N: 5, HorizonMS: 1000,
		Faults: []Fault{
			{Kind: KindLoss, At: 0, For: 200, Prob: 0.5},
			{Kind: KindDrop, At: 100, For: 300, A: "a", B: "c", Pkt: "install", Count: 1},
			{Kind: KindDup, At: 200, For: 200, Prob: 0.5},
			{Kind: KindOneWay, At: 300, For: 640, A: "b", B: "d"},
			{Kind: KindDelay, At: 400, For: 200, Prob: 0.5, DelayMS: 10},
		},
	}
	fails := func(p Plan) bool {
		hasDrop, hasCut := false, false
		for _, f := range p.Faults {
			if f.Kind == KindDrop && f.Pkt == "install" {
				hasDrop = true
			}
			if f.Kind == KindOneWay && f.For >= 80 {
				hasCut = true
			}
		}
		return hasDrop && hasCut
	}
	shrunk, st, err := Shrink(plan, func(p Plan) (Result, error) {
		r := Result{Plan: p, Reconverged: true}
		if fails(p) {
			r.Reconverged = false
		}
		return r, nil
	}, 100)
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if len(shrunk.Faults) != 2 {
		t.Fatalf("shrunk to %d faults, want the 2-fault core: %s", len(shrunk.Faults), shrunk)
	}
	if shrunk.Faults[0].Kind != KindDrop || shrunk.Faults[1].Kind != KindOneWay {
		t.Fatalf("wrong core: %s", shrunk)
	}
	// The one-way window must have been halved down to the last size
	// that still fails (>= 80ms, < 160ms).
	if w := shrunk.Faults[1].For; w < 80 || w >= 160 {
		t.Errorf("one-way window = %dms, want halved into [80, 160)", w)
	}
	if st.Removed != 3 {
		t.Errorf("removed %d faults, want 3", st.Removed)
	}
	if st.Shortened == 0 {
		t.Error("no windows were halved")
	}
	if !fails(shrunk) {
		t.Error("shrunk plan no longer fails")
	}
}

// TestShrinkKeepsOriginalWhenNotReproducible: if no candidate fails,
// the original plan comes back unchanged.
func TestShrinkKeepsOriginalWhenNotReproducible(t *testing.T) {
	plan := Plan{Seed: 1, N: 3, HorizonMS: 200, Faults: []Fault{
		{Kind: KindLoss, At: 0, For: 100, Prob: 0.5},
	}}
	shrunk, st, err := Shrink(plan, func(p Plan) (Result, error) {
		return Result{Plan: p, Reconverged: true}, nil
	}, 10)
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if len(shrunk.Faults) != 1 || st.Removed != 0 {
		t.Fatalf("shrinker changed a non-reproducible plan: %s", shrunk)
	}
}
