// Package chaos is the deterministic fault-schedule engine: it draws a
// timed fault plan — partition cuts, kind-targeted loss bursts,
// targeted packet drops, heartbeat starvation, duplicate storms, delay
// spikes, process crash + restart — from a seeded PRNG, runs the plan
// against a live group over either network backend through a
// transport.FaultFilter, and gates the run through the offline
// tracecheck suite plus a liveness oracle (the group must reconverge to
// one full view within a bound after faults cease, judged via
// admin.Monitor). A failing plan is serializable JSON, replayable from
// its seed or its file, and greedily shrinkable to a minimal failing
// schedule (see Shrink). cmd/vschaos is the CLI; experiments.RunE11 the
// soak harness.
//
// Determinism is at the plan level: the same seed always yields the
// same fault schedule (same faults, windows, targets, and per-packet
// probability draws in the same packet order), so a violation found at
// a seed is reproduced by re-running that seed. Wall-clock scheduling
// of goroutines underneath is not replayed — the plan is the
// deterministic artifact, matching how the repo's experiments treat
// seeds.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// FaultKind names one fault family in a plan.
type FaultKind string

// The fault kinds a plan may schedule.
const (
	// KindPartition isolates Sites from the rest of the group (a
	// symmetric cut through the transport's Partitioner) for the window.
	KindPartition FaultKind = "partition"
	// KindOneWay drops every packet from site A to site B for the
	// window; the reverse direction is untouched (an asymmetric link).
	KindOneWay FaultKind = "oneway"
	// KindLoss drops packets of kind Pkt (empty = all kinds) with
	// probability Prob for the window, group-wide or from A when set.
	KindLoss FaultKind = "loss"
	// KindDrop drops the next Count packets of kind Pkt from site A to
	// site B inside the window (0 = unlimited within the window) — the
	// targeted install/ack drop of the reconcile experiments.
	KindDrop FaultKind = "drop"
	// KindHBStarve drops every heartbeat from site A for the window,
	// starving the rest of the group's failure detectors of its
	// liveness indications without touching its data traffic.
	KindHBStarve FaultKind = "hb-starve"
	// KindCrash crashes site A's process at At and restarts it (a new
	// incarnation that rejoins via discovery) after the window.
	KindCrash FaultKind = "crash"
	// KindDelay holds packets of kind Pkt (empty = all) for DelayMS
	// with probability Prob, inducing reordering.
	KindDelay FaultKind = "delay"
	// KindDup duplicates packets of kind Pkt (empty = all) with
	// probability Prob.
	KindDup FaultKind = "dup"
)

// Fault is one scheduled fault. Times are plan-relative milliseconds
// (the plan clock starts when the formed group enters the fault phase);
// sites are the single-letter site names chaos groups use (see
// SiteName).
type Fault struct {
	Kind FaultKind `json:"kind"`
	// At is the activation time, in ms from the start of the fault
	// phase.
	At int `json:"at_ms"`
	// For is the window length in ms; 0 means the fault stays active
	// until the plan horizon (for KindCrash: the process restarts at
	// the horizon).
	For int `json:"for_ms,omitempty"`
	// A and B are the source and destination sites for directed faults;
	// A alone targets a site-scoped fault (crash, hb-starve, loss).
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// Sites is the isolated component of a partition cut.
	Sites []string `json:"sites,omitempty"`
	// Pkt restricts packet-level faults to one fabric kind ("hb",
	// "data", "propose", "ack", "install", "echange", "mergereq");
	// empty matches every kind.
	Pkt string `json:"pkt,omitempty"`
	// Prob is the per-packet probability for loss/delay/dup faults.
	Prob float64 `json:"prob,omitempty"`
	// Count bounds how many packets a KindDrop fault eats (0 =
	// unlimited within the window).
	Count int `json:"count,omitempty"`
	// DelayMS is the hold duration for KindDelay.
	DelayMS int `json:"delay_ms,omitempty"`
}

// Window returns the fault's activation time and duration, resolving
// the For==0 convention against the plan horizon.
func (f Fault) Window(horizonMS int) (at, dur time.Duration) {
	at = time.Duration(f.At) * time.Millisecond
	end := f.At + f.For
	if f.For == 0 || end > horizonMS {
		end = horizonMS
	}
	if end < f.At {
		end = f.At
	}
	return at, time.Duration(end-f.At) * time.Millisecond
}

// String renders one fault compactly for reports.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%dms", f.Kind, f.At)
	if f.For > 0 {
		fmt.Fprintf(&b, "+%dms", f.For)
	}
	switch {
	case len(f.Sites) > 0:
		fmt.Fprintf(&b, " {%s}", strings.Join(f.Sites, ","))
	case f.B != "":
		fmt.Fprintf(&b, " %s->%s", f.A, f.B)
	case f.A != "":
		fmt.Fprintf(&b, " %s", f.A)
	}
	if f.Pkt != "" {
		fmt.Fprintf(&b, " pkt=%s", f.Pkt)
	}
	if f.Prob > 0 {
		fmt.Fprintf(&b, " p=%.2f", f.Prob)
	}
	if f.Count > 0 {
		fmt.Fprintf(&b, " n=%d", f.Count)
	}
	if f.DelayMS > 0 {
		fmt.Fprintf(&b, " d=%dms", f.DelayMS)
	}
	return b.String()
}

// Plan is one complete fault schedule: the group size, the horizon
// after which all faults cease, and the faults. A plan is the
// serializable, replayable bug-report artifact of the harness.
type Plan struct {
	// Seed is the PRNG seed the plan was generated from; it also seeds
	// the per-packet probability draws at run time, so replaying a plan
	// replays its probabilistic faults' decision stream.
	Seed int64 `json:"seed"`
	// N is the group size (sites a, b, c, ...).
	N int `json:"n"`
	// HorizonMS is when all faults cease, in ms from the start of the
	// fault phase; the liveness oracle runs after it.
	HorizonMS int `json:"horizon_ms"`
	// Faults is the schedule, in activation order.
	Faults []Fault `json:"faults"`
}

// Horizon returns the plan horizon as a duration.
func (p Plan) Horizon() time.Duration { return time.Duration(p.HorizonMS) * time.Millisecond }

// String renders the plan on one line for logs.
func (p Plan) String() string {
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return fmt.Sprintf("seed=%d n=%d horizon=%dms [%s]", p.Seed, p.N, p.HorizonMS, strings.Join(parts, "; "))
}

// Validate checks the plan is runnable: positive group size and
// horizon, known fault kinds, sites within the group, sane windows.
func (p Plan) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("chaos: plan needs n >= 2, got %d", p.N)
	}
	if p.HorizonMS <= 0 {
		return fmt.Errorf("chaos: plan needs a positive horizon, got %dms", p.HorizonMS)
	}
	sites := make(map[string]bool, p.N)
	for i := 0; i < p.N; i++ {
		sites[SiteName(i)] = true
	}
	okSite := func(s string) bool { return s == "" || sites[s] }
	for i, f := range p.Faults {
		if f.At < 0 || f.At > p.HorizonMS {
			return fmt.Errorf("chaos: fault %d (%s): at %dms outside [0, %dms]", i, f.Kind, f.At, p.HorizonMS)
		}
		if f.For < 0 {
			return fmt.Errorf("chaos: fault %d (%s): negative window", i, f.Kind)
		}
		if !okSite(f.A) || !okSite(f.B) {
			return fmt.Errorf("chaos: fault %d (%s): site %q/%q outside the %d-site group", i, f.Kind, f.A, f.B, p.N)
		}
		for _, s := range f.Sites {
			if !sites[s] {
				return fmt.Errorf("chaos: fault %d (%s): site %q outside the group", i, f.Kind, s)
			}
		}
		switch f.Kind {
		case KindPartition:
			if len(f.Sites) == 0 || len(f.Sites) >= p.N {
				return fmt.Errorf("chaos: fault %d: partition component must isolate 1..%d sites, got %d", i, p.N-1, len(f.Sites))
			}
		case KindOneWay:
			if f.A == "" || f.B == "" || f.A == f.B {
				return fmt.Errorf("chaos: fault %d: oneway needs distinct a and b", i)
			}
		case KindLoss, KindDelay, KindDup:
			if f.Prob <= 0 || f.Prob > 1 {
				return fmt.Errorf("chaos: fault %d (%s): prob %v outside (0, 1]", i, f.Kind, f.Prob)
			}
			if f.Kind == KindDelay && f.DelayMS <= 0 {
				return fmt.Errorf("chaos: fault %d: delay needs delay_ms > 0", i)
			}
		case KindDrop:
			if f.A == "" {
				return fmt.Errorf("chaos: fault %d: drop needs a source site", i)
			}
		case KindHBStarve, KindCrash:
			if f.A == "" {
				return fmt.Errorf("chaos: fault %d (%s): needs a target site", i, f.Kind)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// normalized returns a copy with faults sorted by activation time
// (stable, so equal-time faults keep plan order — verdict precedence
// follows schedule order).
func (p Plan) normalized() Plan {
	out := p
	out.Faults = append([]Fault(nil), p.Faults...)
	sort.SliceStable(out.Faults, func(i, j int) bool { return out.Faults[i].At < out.Faults[j].At })
	return out
}

// Save writes the plan as indented JSON to path.
func (p Plan) Save(path string) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("chaos: marshal plan: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a plan from a JSON file and validates it.
func Load(path string) (Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("chaos: read plan: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return Plan{}, fmt.Errorf("chaos: parse plan %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, fmt.Errorf("chaos: plan %s: %w", path, err)
	}
	return p, nil
}

// SiteName maps a member index to its site name, mirroring the naming
// every harness in the repo uses (a..z, then s26, s27, ...).
func SiteName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return fmt.Sprintf("s%d", i)
}
