package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/stable"
	"repro/internal/tracecheck"
	"repro/internal/transport"
	"repro/internal/transport/udp"
)

// MetricFaultPrefix prefixes the per-kind fault-injection counters the
// runner maintains in its registry: chaos.fault_total.<kind>. Packet-
// level faults count injected packets; partition, hb-starve window,
// oneway window, and crash faults count activations.
const MetricFaultPrefix = "chaos.fault_total."

// Config configures one plan run. The zero value runs on the simulator
// with the repo's simulation-speed timing (core.Sim*).
type Config struct {
	// Transport selects the backend: "sim" (default) or "udp".
	Transport string
	// FabricSeed seeds the simulator fabric (delay/loss models);
	// defaults to the plan seed so a replay rebuilds the same fabric.
	FabricSeed int64

	// Protocol timing; defaults are the core.Sim* profile.
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	Tick           time.Duration
	ProposeTimeout time.Duration

	// FormTimeout bounds the fault-free initial formation (default 30s).
	FormTimeout time.Duration
	// SettleTimeout is the liveness bound: after faults cease the group
	// must reconverge to one full view within it (default 15s).
	SettleTimeout time.Duration
	// PollEvery is the liveness oracle's polling period (default 5ms).
	PollEvery time.Duration

	// Metrics, when non-nil, receives the chaos.fault_total.* counters
	// and the run's protocol metrics (an obs.Collector is attached to
	// every process); nil uses a private registry.
	Metrics *obs.Registry
	// TraceSinks receive every trace event live, in addition to the
	// in-memory sink the tracecheck gate reads (vschaos wires a
	// JSONLSink here).
	TraceSinks []obs.Sink
	// Checkers overrides the tracecheck suite the run is gated through;
	// nil means tracecheck.DefaultCheckers. Oracle-validation tests
	// inject an always-failing checker here.
	Checkers []tracecheck.Checker
	// Observer, when non-nil, is teed into every process's observer
	// chain (E11 passes the vsbench collector through).
	Observer core.Observer
	// OnStart, when non-nil, fires for every process the run starts —
	// including restarts after a crash fault.
	OnStart func(p *core.Process)
}

func (c Config) withDefaults() Config {
	if c.Transport == "" {
		c.Transport = "sim"
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = core.SimHeartbeatEvery
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = core.SimSuspectAfter
	}
	if c.Tick <= 0 {
		c.Tick = core.SimTick
	}
	if c.ProposeTimeout <= 0 {
		c.ProposeTimeout = core.SimProposeTimeout
	}
	if c.FormTimeout <= 0 {
		c.FormTimeout = 30 * time.Second
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 15 * time.Second
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 5 * time.Millisecond
	}
	return c
}

// Result is one plan run's verdict.
type Result struct {
	Plan      Plan
	Transport string

	// Violations is what the tracecheck suite found in the run's trace.
	Violations []tracecheck.Violation
	// Reconverged reports the liveness oracle: after faults ceased, the
	// group reformed one view containing every live member within
	// Config.SettleTimeout. ReconvergeIn is how long that took.
	Reconverged  bool
	ReconvergeIn time.Duration
	// OracleDetail carries the last admin.Monitor assessment's flags
	// when the oracle timed out (empty on success).
	OracleDetail string

	// FaultCounts is how many injections each fault kind performed.
	FaultCounts map[string]uint64
	// Events is the trace length the checkers ran over.
	Events int
}

// Failed reports whether the run violated an oracle: any tracecheck
// violation, or a reconvergence timeout.
func (r Result) Failed() bool { return len(r.Violations) > 0 || !r.Reconverged }

// Summary renders the verdict on one line.
func (r Result) Summary() string {
	verdict := "ok"
	if len(r.Violations) > 0 {
		verdict = fmt.Sprintf("VIOLATIONS=%d", len(r.Violations))
	} else if !r.Reconverged {
		verdict = "NO-RECONVERGE"
	}
	total := uint64(0)
	for _, n := range r.FaultCounts {
		total += n
	}
	return fmt.Sprintf("seed=%-6d %-4s faults=%d injected=%d reconverge=%v %s",
		r.Plan.Seed, r.Transport, len(r.Plan.Faults), total, r.ReconvergeIn.Round(time.Millisecond), verdict)
}

// activeFault is one fault inside its window, with its mutable budget.
type activeFault struct {
	Fault
	idx       int // plan index, the deactivation key
	remaining int // KindDrop budget left (-1 = unlimited)
}

// engine is the run-time state behind the FaultFilter predicate.
type engine struct {
	mu     sync.Mutex
	active []*activeFault
	rng    *rand.Rand
	counts map[string]uint64
	reg    *obs.Registry
}

func (e *engine) count(kind FaultKind) {
	// Callers hold e.mu.
	e.counts[string(kind)]++
	e.reg.Counter(MetricFaultPrefix + string(kind)).Inc()
}

// verdict is the FaultFilter predicate: the first matching active fault
// (in schedule order) decides. It runs under the filter lock, so the
// seeded RNG's draw sequence follows the packet order deterministically
// for a given interleaving.
func (e *engine) verdict(from, to ids.PID, payload any) transport.Verdict {
	kind, _ := transport.Describe(payload)
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, af := range e.active {
		switch af.Kind {
		case KindOneWay:
			if from.Site == af.A && to.Site == af.B {
				e.count(KindOneWay)
				return transport.Drop()
			}
		case KindHBStarve:
			if kind == "hb" && from.Site == af.A {
				return transport.Drop()
			}
		case KindLoss:
			if matchPkt(af.Pkt, kind) && (af.A == "" || from.Site == af.A) && e.rng.Float64() < af.Prob {
				e.count(KindLoss)
				return transport.Drop()
			}
		case KindDrop:
			if matchPkt(af.Pkt, kind) && from.Site == af.A && (af.B == "" || to.Site == af.B) && af.remaining != 0 {
				if af.remaining > 0 {
					af.remaining--
				}
				e.count(KindDrop)
				return transport.Drop()
			}
		case KindDelay:
			if matchPkt(af.Pkt, kind) && e.rng.Float64() < af.Prob {
				e.count(KindDelay)
				return transport.Delay(time.Duration(af.DelayMS) * time.Millisecond)
			}
		case KindDup:
			if matchPkt(af.Pkt, kind) && e.rng.Float64() < af.Prob {
				e.count(KindDup)
				return transport.Duplicate()
			}
		}
	}
	return transport.Pass()
}

func matchPkt(want, got string) bool { return want == "" || want == got }

// timelineEvent is one scheduled state change: a fault (by plan
// index; -1 is the horizon marker) entering or leaving its window.
type timelineEvent struct {
	at       time.Duration
	idx      int
	activate bool
}

// Run executes one plan: form the group fault-free, run the schedule,
// cease all faults, then judge reconvergence (liveness) and the trace
// (safety). Infrastructure failures — the group never forming, a
// process failing to start — return an error; oracle verdicts live in
// the Result.
func Run(plan Plan, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Plan: plan, Transport: cfg.Transport}
	if err := plan.Validate(); err != nil {
		return res, err
	}
	plan = plan.normalized()

	fabricSeed := cfg.FabricSeed
	if fabricSeed == 0 {
		fabricSeed = plan.Seed
	}
	var fabric interface {
		transport.Transport
		transport.Partitioner
	}
	if cfg.Transport == "udp" {
		fabric = udp.New(udp.Config{})
	} else {
		fabric = simnet.New(simnet.Config{
			Delay: simnet.NewUniformDelay(50*time.Microsecond, 400*time.Microsecond, fabricSeed+1),
			Seed:  fabricSeed,
		})
	}
	defer fabric.Close()
	filt := transport.NewFaultFilter(fabric)

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	mem := obs.NewMemorySink()
	tracer := obs.NewTracer(0, append([]obs.Sink{mem}, cfg.TraceSinks...)...)
	var observer core.Observer = obs.NewCollector(reg, tracer)
	if cfg.Observer != nil {
		observer = obs.Tee(cfg.Observer, observer)
	}

	opts := core.Options{
		Group:          "chaos",
		HeartbeatEvery: cfg.HeartbeatEvery,
		SuspectAfter:   cfg.SuspectAfter,
		Tick:           cfg.Tick,
		ProposeTimeout: cfg.ProposeTimeout,
		Enriched:       true,
		LogViews:       true,
		Observer:       observer,
	}

	stores := stable.NewRegistry()
	start := func(site string) (*core.Process, error) {
		p, err := core.Start(filt, stores, site, opts)
		if err != nil {
			return nil, err
		}
		go func() {
			for range p.Events() {
			}
		}()
		if cfg.OnStart != nil {
			cfg.OnStart(p)
		}
		return p, nil
	}

	live := make(map[string]*core.Process, plan.N)
	for i := 0; i < plan.N; i++ {
		p, err := start(SiteName(i))
		if err != nil {
			return res, fmt.Errorf("chaos: start %s: %w", SiteName(i), err)
		}
		live[p.Site()] = p
	}
	if err := waitConverged(procsOf(live), cfg.FormTimeout); err != nil {
		return res, fmt.Errorf("chaos: formation: %w", err)
	}

	// Fault phase. The plan seed (offset so the generator and the
	// engine never share a draw stream) drives the per-packet
	// probability faults.
	eng := &engine{
		rng:    rand.New(rand.NewSource(plan.Seed ^ 0x5DEECE66D)),
		counts: make(map[string]uint64),
		reg:    reg,
	}
	filt.Arm(eng.verdict)

	var timeline []timelineEvent
	for i, f := range plan.Faults {
		at, dur := f.Window(plan.HorizonMS)
		timeline = append(timeline, timelineEvent{at: at, idx: i, activate: true})
		timeline = append(timeline, timelineEvent{at: at + dur, idx: i})
	}
	timeline = append(timeline, timelineEvent{at: plan.Horizon(), idx: -1}) // horizon marker
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].at < timeline[j].at })

	t0 := time.Now()
	for _, ev := range timeline {
		if d := ev.at - time.Since(t0); d > 0 {
			time.Sleep(d)
		}
		if ev.idx < 0 {
			continue // horizon marker: the sleep was the point
		}
		f := plan.Faults[ev.idx]
		switch f.Kind {
		case KindCrash:
			if ev.activate {
				if p := live[f.A]; p != nil {
					eng.mu.Lock()
					eng.count(KindCrash)
					eng.mu.Unlock()
					p.Crash()
					delete(live, f.A)
				}
			} else if _, up := live[f.A]; !up {
				p, err := start(f.A)
				if err != nil {
					return res, fmt.Errorf("chaos: restart %s: %w", f.A, err)
				}
				live[f.A] = p
			}
		case KindPartition:
			eng.setActive(ev.idx, f, ev.activate)
			applyPartitions(filt, eng)
		default:
			eng.setActive(ev.idx, f, ev.activate)
		}
	}

	// Faults cease: disarm everything, heal all cuts, then hold the
	// group to the liveness oracle.
	filt.Disarm()
	filt.Heal()
	eng.mu.Lock()
	eng.active = nil
	res.FaultCounts = eng.counts
	eng.mu.Unlock()

	res.Reconverged, res.ReconvergeIn, res.OracleDetail = awaitReconvergence(live, cfg)

	// Let trailing installs propagate so the last spans close, then
	// crash (not Leave) so teardown adds no half-finished view changes
	// to the trace.
	time.Sleep(2 * cfg.SuspectAfter)
	for _, p := range live {
		p.Crash()
	}

	events := mem.Events()
	res.Events = len(events)
	checkers := cfg.Checkers
	if checkers == nil {
		checkers = tracecheck.DefaultCheckers()
	}
	res.Violations = tracecheck.CheckWith(events, checkers...).Violations
	return res, nil
}

// setActive adds or removes a fault from the live set, keeping plan
// order so verdict precedence is deterministic.
func (e *engine) setActive(idx int, f Fault, on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if on {
		af := &activeFault{Fault: f, idx: idx, remaining: -1}
		if f.Kind == KindDrop && f.Count > 0 {
			af.remaining = f.Count
		}
		switch f.Kind {
		case KindPartition, KindHBStarve:
			// Window faults count once per activation; packet-level
			// faults count per packet in verdict.
			e.count(f.Kind)
		}
		e.active = append(e.active, af)
		sort.SliceStable(e.active, func(i, j int) bool { return e.active[i].idx < e.active[j].idx })
		return
	}
	for i, af := range e.active {
		if af.idx == idx {
			e.active = append(e.active[:i], e.active[i+1:]...)
			return
		}
	}
}

// applyPartitions recomputes the transport's partition components from
// the active partition cuts. Overlapping cuts merge into one component;
// sites in no cut form the implicit remainder.
func applyPartitions(part transport.Partitioner, e *engine) {
	e.mu.Lock()
	var groups [][]string
	for _, af := range e.active {
		if af.Kind == KindPartition {
			groups = append(groups, af.Sites)
		}
	}
	e.mu.Unlock()
	if len(groups) == 0 {
		part.Heal()
		return
	}
	merged := mergeGroups(groups)
	part.SetPartitions(merged...)
}

// mergeGroups unions overlapping site groups so SetPartitions receives
// disjoint components.
func mergeGroups(groups [][]string) [][]string {
	comp := make(map[string]int)
	next := 0
	for _, g := range groups {
		// Find an existing component this group touches.
		id := -1
		for _, s := range g {
			if c, ok := comp[s]; ok {
				id = c
				break
			}
		}
		if id == -1 {
			id = next
			next++
		}
		for _, s := range g {
			if c, ok := comp[s]; ok && c != id {
				for t, tc := range comp {
					if tc == c {
						comp[t] = id
					}
				}
			}
			comp[s] = id
		}
	}
	byID := make(map[int][]string)
	for s, c := range comp {
		byID[c] = append(byID[c], s)
	}
	keys := make([]int, 0, len(byID))
	for c := range byID {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	out := make([][]string, 0, len(byID))
	for _, c := range keys {
		sort.Strings(byID[c])
		out = append(out, byID[c])
	}
	return out
}

// awaitReconvergence is the liveness oracle: after faults cease, every
// live process must publish one agreed view containing exactly the live
// members within the settle bound. Health is judged through
// admin.Monitor — the same verdicts vsmon applies to a production group
// — so a wedged loop (stale status) or stuck proposal fails the oracle
// even if view ids happen to agree.
func awaitReconvergence(live map[string]*core.Process, cfg Config) (bool, time.Duration, string) {
	mon := &admin.Monitor{
		Grace: cfg.SettleTimeout, // divergence is judged by the full-view check below
		Stuck: cfg.SettleTimeout / 2,
	}
	start := time.Now()
	deadline := start.Add(cfg.SettleTimeout)
	var last admin.Assessment
	for {
		now := time.Now()
		want := make(map[string]bool, len(live))
		for _, p := range live {
			want[p.PID().String()] = true
		}
		reports := make([]admin.MemberReport, 0, len(live))
		for site, p := range live {
			reports = append(reports, admin.MemberReport{
				Endpoint: site,
				Status:   admin.MemberStatus{Status: p.StatusSnapshot()},
			})
		}
		last = mon.Assess(now, reports)
		if len(last.Views) == 1 && last.Healthy && allFullViews(reports, want) {
			return true, time.Since(start), ""
		}
		if now.After(deadline) {
			return false, time.Since(start), describeAssessment(last, reports, want)
		}
		time.Sleep(cfg.PollEvery)
	}
}

// allFullViews reports whether every member's view is exactly the live
// set.
func allFullViews(reports []admin.MemberReport, want map[string]bool) bool {
	for _, r := range reports {
		if r.Status.Size != len(want) {
			return false
		}
		for _, m := range r.Status.Members {
			if !want[m] {
				return false
			}
		}
	}
	return true
}

// describeAssessment renders the oracle's last look at the group for
// the timeout report.
func describeAssessment(a admin.Assessment, reports []admin.MemberReport, want map[string]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "views=%v majority=%q", a.Views, a.Majority)
	for _, h := range a.Members {
		if h.Flagged() {
			fmt.Fprintf(&b, "; %s: %s", h.PID, h.Detail)
		}
	}
	for _, r := range reports {
		if r.Status.Size != len(want) {
			fmt.Fprintf(&b, "; %s: view %s has %d members, want %d",
				r.Status.PID, r.Status.ViewID, r.Status.Size, len(want))
		}
	}
	return b.String()
}

// procsOf lists the live processes in site order.
func procsOf(live map[string]*core.Process) []*core.Process {
	sites := make([]string, 0, len(live))
	for s := range live {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	out := make([]*core.Process, 0, len(live))
	for _, s := range sites {
		out = append(out, live[s])
	}
	return out
}

// waitConverged blocks until all processes share one view containing
// exactly them, or the timeout elapses (mirrors experiments; chaos
// cannot import that package — experiments imports chaos for E11).
func waitConverged(procs []*core.Process, timeout time.Duration) error {
	want := make(ids.PIDSet, len(procs))
	for _, p := range procs {
		want.Add(p.PID())
	}
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		v0 := procs[0].CurrentView()
		if !v0.Comp().Equal(want) {
			ok = false
		}
		if ok {
			for _, p := range procs[1:] {
				v := p.CurrentView()
				if v.ID != v0.ID || !v.Comp().Equal(want) {
					ok = false
					break
				}
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			var state string
			for _, p := range procs {
				v := p.CurrentView()
				state += fmt.Sprintf(" %v:%v%v", p.PID(), v.ID, v.Members)
			}
			return fmt.Errorf("convergence timeout; want %v, state:%s", want, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
