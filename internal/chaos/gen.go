package chaos

import (
	"math/rand"
	"time"

	"repro/internal/core"
)

// GenConfig bounds the plan generator. The zero value is completed with
// defaults sized for the repo's simulation-speed timing profile
// (core.Sim*): fault windows comfortably exceed the 18 ms suspicion
// timeout so cuts actually provoke view changes, and the horizon leaves
// room for several overlapping faults.
type GenConfig struct {
	// N is the group size (default 5).
	N int
	// MinFaults and MaxFaults bound how many faults a plan schedules
	// (defaults 3 and 6).
	MinFaults, MaxFaults int
	// Horizon is the fault-phase length (default 1.2 s).
	Horizon time.Duration
	// MaxCrashes bounds KindCrash faults per plan (default 1): every
	// crash forces a detection + re-formation + rejoin cycle, and one
	// per plan keeps short soak runs from spending their whole horizon
	// rejoining.
	MaxCrashes int
}

func (g GenConfig) withDefaults() GenConfig {
	if g.N <= 0 {
		g.N = 5
	}
	if g.MinFaults <= 0 {
		g.MinFaults = 3
	}
	if g.MaxFaults < g.MinFaults {
		g.MaxFaults = g.MinFaults + 3
	}
	if g.Horizon <= 0 {
		g.Horizon = 1200 * time.Millisecond
	}
	if g.MaxCrashes < 0 {
		g.MaxCrashes = 0
	} else if g.MaxCrashes == 0 {
		g.MaxCrashes = 1
	}
	return g
}

// genKinds is the generator's draw table. Packet-level faults dominate;
// structural faults (partition, crash) appear often enough that most
// plans reshape the membership at least once.
var genKinds = []FaultKind{
	KindPartition, KindPartition,
	KindOneWay, KindOneWay,
	KindLoss, KindLoss,
	KindDrop, KindDrop,
	KindHBStarve,
	KindCrash,
	KindDelay, KindDelay,
	KindDup,
}

// genPkts are the kinds packet-targeted faults draw from. The empty
// kind (match everything) is weighted in; install and ack drops are the
// reconcile-path faults the ISSUE singles out.
var genPkts = []string{"", "", "data", "install", "ack", "propose"}

// Generate draws a fault plan from the seed. The same (seed, config)
// always yields the same plan; Validate always passes on the result.
func Generate(seed int64, gc GenConfig) Plan {
	gc = gc.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	horizonMS := int(gc.Horizon / time.Millisecond)

	// Window bounds, derived from the suspicion timeout: long enough to
	// provoke suspicion (≥ 2×), short enough that several faults fit.
	suspectMS := int(core.SimSuspectAfter / time.Millisecond)
	minWin, maxWin := 2*suspectMS, horizonMS/3
	if maxWin <= minWin {
		maxWin = minWin + 1
	}

	n := gc.MinFaults + rng.Intn(gc.MaxFaults-gc.MinFaults+1)
	plan := Plan{Seed: seed, N: gc.N, HorizonMS: horizonMS}
	crashes := 0
	crashed := make(map[string]bool)
	for len(plan.Faults) < n {
		kind := genKinds[rng.Intn(len(genKinds))]
		win := minWin + rng.Intn(maxWin-minWin)
		// Leave the window inside the horizon: every fault has ceased by
		// the time the liveness oracle starts.
		at := rng.Intn(horizonMS - win)
		f := Fault{Kind: kind, At: at, For: win}
		switch kind {
		case KindPartition:
			k := 1 + rng.Intn(gc.N-1)
			f.Sites = pickSites(rng, gc.N, k)
		case KindOneWay:
			pair := pickSites(rng, gc.N, 2)
			f.A, f.B = pair[0], pair[1]
		case KindLoss:
			f.Pkt = genPkts[rng.Intn(len(genPkts))]
			f.Prob = 0.2 + 0.6*rng.Float64()
			if rng.Intn(2) == 0 {
				f.A = SiteName(rng.Intn(gc.N))
			}
		case KindDrop:
			pair := pickSites(rng, gc.N, 2)
			f.A, f.B = pair[0], pair[1]
			f.Pkt = []string{"install", "ack"}[rng.Intn(2)]
			f.Count = 1 + rng.Intn(3)
		case KindHBStarve:
			f.A = SiteName(rng.Intn(gc.N))
		case KindCrash:
			site := SiteName(rng.Intn(gc.N))
			if crashes >= gc.MaxCrashes || crashed[site] {
				continue
			}
			crashes++
			crashed[site] = true
			f.A = site
		case KindDelay:
			f.Pkt = genPkts[rng.Intn(len(genPkts))]
			f.Prob = 0.3 + 0.6*rng.Float64()
			f.DelayMS = 5 + rng.Intn(35)
		case KindDup:
			f.Pkt = genPkts[rng.Intn(len(genPkts))]
			f.Prob = 0.3 + 0.6*rng.Float64()
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan.normalized()
}

// pickSites draws k distinct site names from an n-site group.
func pickSites(rng *rand.Rand, n, k int) []string {
	perm := rng.Perm(n)[:k]
	out := make([]string, k)
	for i, idx := range perm {
		out[i] = SiteName(idx)
	}
	return out
}
