package chaos

import "fmt"

// MinShrinkWindowMS is the floor window halving stops at: below ~2
// suspicion timeouts a fault window rarely provokes anything, so
// shrinking past it only burns runs.
const MinShrinkWindowMS = 40

// RunFunc re-runs a candidate plan and reports its verdict. Shrink
// re-runs through it so callers choose the transport/config (and tests
// substitute fakes).
type RunFunc func(Plan) (Result, error)

// ShrinkStats reports what the shrinker did.
type ShrinkStats struct {
	// Runs is how many candidate re-runs were spent.
	Runs int
	// Removed is how many faults were dropped from the plan.
	Removed int
	// Shortened is how many window-halving steps stuck.
	Shortened int
}

// Shrink greedily minimizes a failing plan: repeatedly try dropping one
// fault, then halving one fault's window, keeping every candidate that
// still fails, until no single change helps or the run budget is
// spent. The result is 1-minimal with respect to those two moves (when
// the budget sufficed): removing any single remaining fault, or
// halving any remaining window, makes the failure disappear. The
// original failing plan is returned unchanged if no candidate fails —
// e.g. when the failure was not reproducible at all.
//
// A candidate whose run returns an infrastructure error (as opposed to
// an oracle verdict) is skipped, not treated as failing: a plan that
// breaks the harness is not a smaller bug report.
func Shrink(failing Plan, run RunFunc, budget int) (Plan, ShrinkStats, error) {
	if budget <= 0 {
		budget = 32
	}
	cur := failing
	var st ShrinkStats
	try := func(cand Plan) (bool, error) {
		if st.Runs >= budget {
			return false, nil
		}
		st.Runs++
		res, err := run(cand)
		if err != nil {
			return false, nil // harness error: skip this candidate
		}
		return res.Failed(), err
	}

	for pass := 0; ; pass++ {
		improved := false

		// Move 1: drop one fault at a time.
		for i := 0; i < len(cur.Faults) && st.Runs < budget; i++ {
			cand := cur
			cand.Faults = append(append([]Fault(nil), cur.Faults[:i]...), cur.Faults[i+1:]...)
			fails, err := try(cand)
			if err != nil {
				return cur, st, err
			}
			if fails {
				cur = cand
				st.Removed++
				improved = true
				i-- // the slot now holds the next fault
			}
		}

		// Move 2: halve one window at a time.
		for i := 0; i < len(cur.Faults) && st.Runs < budget; i++ {
			f := cur.Faults[i]
			if f.For/2 < MinShrinkWindowMS {
				continue
			}
			cand := cur
			cand.Faults = append([]Fault(nil), cur.Faults...)
			cand.Faults[i].For = f.For / 2
			fails, err := try(cand)
			if err != nil {
				return cur, st, err
			}
			if fails {
				cur = cand
				st.Shortened++
				improved = true
				i-- // try halving the same window again
			}
		}

		if !improved || st.Runs >= budget {
			return cur, st, nil
		}
	}
}

// ShrinkReport renders the before/after for the bug report.
func ShrinkReport(before, after Plan, st ShrinkStats) string {
	return fmt.Sprintf("shrink: %d faults -> %d (%d removed, %d windows halved, %d runs)\n  before: %s\n  after:  %s",
		len(before.Faults), len(after.Faults), st.Removed, st.Shortened, st.Runs, before, after)
}
