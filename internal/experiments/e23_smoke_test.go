package experiments

import (
	"testing"

	"repro/internal/transfer"
)

func TestE2Smoke(t *testing.T) {
	row, err := RunE2(5, FastTiming(), 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s\n%s", E2Header, row)
	if !row.Agreement {
		t.Error("classifiers disagree")
	}
}

func TestE3Smoke(t *testing.T) {
	for _, strat := range []transfer.Strategy{transfer.Blocking, transfer.Split} {
		row, err := RunE3(1<<20, strat, FastTiming(), 42)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s\n%s", E3Header, row)
	}
}
