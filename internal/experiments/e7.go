package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/simnet"
	"repro/internal/stable"
)

// E7Row is one cell of the static-vs-adaptive failure-detector ablation.
// The paper's detectors are only required to be eventually accurate
// within a stable partition (§2); every false suspicion is
// indistinguishable from a failure and costs a view change. A static
// suspicion timeout must be provisioned for the worst network jitter or
// it manufactures exactly those false suspicions; the adaptive estimator
// (Jacobson mean + k·dev over observed heartbeat gaps) tracks the jitter
// instead. Each cell forms a five-member group over a fabric with the
// given delay jitter, watches a quiet window in which nothing fails, then
// crashes one member and times real detection.
type E7Row struct {
	// Jitter is the upper bound of the fabric's uniform delay.
	Jitter time.Duration
	// Adaptive selects the estimator; false runs the static SuspectAfter.
	Adaptive bool
	// FalseSuspicions counts suspicions revoked by fresh liveness during
	// the quiet window, summed over all members.
	FalseSuspicions int
	// ExtraViews counts view installations during the quiet window —
	// every one is churn manufactured by the detector.
	ExtraViews int
	// MeanTimeout is the mean effective suspicion timeout in force
	// (static: SuspectAfter; adaptive: mean of fd.effective_timeout_s).
	MeanTimeout time.Duration
	// Detect is how long the survivors took to install the 4-member view
	// after the crash.
	Detect time.Duration
	// AgreeP50/AgreeP95 summarize the end-to-end view-agreement latency
	// of every view change in the cell (member spans assembled from the
	// cell's own trace — see internal/profile): false-suspicion churn
	// does not just add view changes, it makes each one slower when
	// concurrent suspicions force proposal retries.
	AgreeP50, AgreeP95 time.Duration
	// Reproposals counts membership rounds started only because a
	// co-member advertised a different view id (install-propagation
	// divergence) — residual churn no detector tuning removes. With the
	// reconciliation fast path most of these become Reconciles instead.
	Reproposals int
	// Reconciles counts install re-sends by the reconciliation fast
	// path: divergences healed without the membership round a
	// reproposal would have cost.
	Reconciles int
}

// RunE7 measures one (jitter, adaptive) cell: quiet window churn, then
// crash-detection latency.
func RunE7(jitter, window time.Duration, adaptive bool, timing Timing, seed int64) (E7Row, error) {
	row := E7Row{Jitter: jitter, Adaptive: adaptive}
	fabric := simnet.New(simnet.Config{
		Delay: simnet.NewUniformDelay(50*time.Microsecond, jitter, seed+1),
		Seed:  seed,
	})
	defer fabric.Close()
	reg := stable.NewRegistry()

	// Cell-local metrics and trace so deltas and spans are not polluted
	// by other cells; the harness-wide observer (vsbench -metrics) still
	// sees everything.
	cell := obs.NewRegistry()
	cellTrace := obs.NewMemorySink()
	var observer core.Observer = obs.NewCollector(cell, obs.NewTracer(0, cellTrace))
	if timing.Observer != nil {
		observer = obs.Tee(timing.Observer, observer)
	}
	timing.AdaptiveFD = adaptive
	opts := timing.Options("e7", true)
	opts.Observer = observer

	const n = 5
	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := timing.Start(fabric, reg, siteName(i), opts)
		if err != nil {
			return row, err
		}
		drain(p)
		procs = append(procs, p)
	}
	if err := waitConverged(procs, 30*time.Second); err != nil {
		return row, fmt.Errorf("formation: %w", err)
	}
	// Give the adaptive estimators their warmup samples before judging.
	time.Sleep(2 * timing.SuspectAfter)

	base := cell.Snapshot()
	time.Sleep(window)
	quiet := cell.Snapshot()
	row.FalseSuspicions = int(quiet.Counters[obs.MetricFalseSuspicions] - base.Counters[obs.MetricFalseSuspicions])
	row.ExtraViews = int(quiet.Counters[obs.MetricViewInstalls] - base.Counters[obs.MetricViewInstalls])

	// Real failure: the detector must still catch it, and quickly.
	start := time.Now()
	procs[n-1].Crash()
	if err := waitConverged(procs[:n-1], 30*time.Second); err != nil {
		return row, fmt.Errorf("crash detection: %w", err)
	}
	row.Detect = time.Since(start)

	row.MeanTimeout = timing.SuspectAfter
	if h, ok := cell.Snapshot().Histograms[obs.MetricFDEffectiveTimeout]; ok && h.Count > 0 {
		row.MeanTimeout = time.Duration(h.Sum / float64(h.Count) * float64(time.Second))
	}
	// Span-profile the cell's trace before the teardown Leaves add
	// their own (uninteresting) view changes.
	prof := profile.FromEvents(cellTrace.Events())
	row.AgreeP50 = prof.Phases.Total.P50
	row.AgreeP95 = prof.Phases.Total.P95
	row.Reproposals = prof.Reproposals
	row.Reconciles = prof.Reconciles
	for _, p := range procs[:n-1] {
		p.Leave()
	}
	return row, nil
}

// E7Header is the column header line for E7 tables.
const E7Header = "jitter | detector | false susp | extra views | mean timeout | detect | agree p50 | agree p95 | reprop | reconc"

// String renders the row under E7Header.
func (r E7Row) String() string {
	det := "static"
	if r.Adaptive {
		det = "adaptive"
	}
	return fmt.Sprintf("%6v | %8s | %10d | %11d | %12v | %6v | %9v | %9v | %6d | %6d",
		r.Jitter, det, r.FalseSuspicions, r.ExtraViews,
		r.MeanTimeout.Round(100*time.Microsecond), r.Detect.Round(time.Millisecond),
		r.AgreeP50.Round(100*time.Microsecond), r.AgreeP95.Round(100*time.Microsecond),
		r.Reproposals, r.Reconciles)
}
