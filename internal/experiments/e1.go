package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// E1Row is one row of experiment E1 (Section 5's view-change-count
// argument): absorbing m new members — or merging two m-member
// partitions — costs a single view change under the partitionable model,
// but Θ(m) view changes under Isis's views-grow-by-one rule.
type E1Row struct {
	M int
	// JoinStormPartitionable counts the views the oldest member installs
	// while m simultaneous joiners are absorbed, partitionable model.
	JoinStormPartitionable int
	// JoinStormSingleJoin is the same count under the grow-by-one rule.
	JoinStormSingleJoin int
	// PartitionMergePartitionable counts the views a member of one side
	// installs when two m-member partitions merge (the paper's exact
	// scenario; the paper argues "a single view change is all that is
	// really required").
	PartitionMergePartitionable int
	// Wall-clock to convergence for the two join-storm runs.
	WallPartitionable time.Duration
	WallSingleJoin    time.Duration
}

// RunE1 measures the row for a given m.
func RunE1(m int, timing Timing, seed int64) (E1Row, error) {
	row := E1Row{M: m}

	storm := func(singleJoin bool) (int, time.Duration, error) {
		timing.MarkRun(fmt.Sprintf("e1 join-storm m=%d single-join=%v", m, singleJoin))
		e := timing.newEnv(seed)
		defer e.close()
		opts := timing.Options("e1", true)
		opts.SingleJoin = singleJoin

		anchor, err := timing.Start(e.fabric, e.reg, "anchor", opts)
		if err != nil {
			return 0, 0, err
		}
		drain(anchor)
		if err := eventually(5*time.Second, "anchor bootstrap", func() bool {
			return anchor.CurrentView().Size() == 1
		}); err != nil {
			return 0, 0, err
		}
		before := anchor.Stats().ViewsInstalled

		procs := []*core.Process{anchor}
		start := time.Now()
		for i := 0; i < m; i++ {
			p, err := timing.Start(e.fabric, e.reg, siteName(i), opts)
			if err != nil {
				return 0, 0, err
			}
			drain(p)
			procs = append(procs, p)
		}
		budget := 10*time.Second + time.Duration(m)*timing.ProposeTimeout*4
		if err := waitConverged(procs, budget); err != nil {
			return 0, 0, err
		}
		elapsed := time.Since(start)
		views := int(anchor.Stats().ViewsInstalled - before)
		for _, p := range procs {
			p.Leave()
		}
		return views, elapsed, nil
	}

	var err error
	if row.JoinStormPartitionable, row.WallPartitionable, err = storm(false); err != nil {
		return row, fmt.Errorf("join storm partitionable: %w", err)
	}
	if row.JoinStormSingleJoin, row.WallSingleJoin, err = storm(true); err != nil {
		return row, fmt.Errorf("join storm single-join: %w", err)
	}

	// Partition-merge scenario (partitionable model): form 2m members,
	// split them into two halves, let both sides stabilize, heal, and
	// count the views one member installs from the heal to convergence.
	timing.MarkRun(fmt.Sprintf("e1 partition-merge m=%d", m))
	e := timing.newEnv(seed + 1)
	defer e.close()
	opts := timing.Options("e1m", true)
	var procs []*core.Process
	var leftSites, rightSites []string
	for i := 0; i < 2*m; i++ {
		p, err := timing.Start(e.fabric, e.reg, siteName(i), opts)
		if err != nil {
			return row, err
		}
		drain(p)
		procs = append(procs, p)
		if i < m {
			leftSites = append(leftSites, siteName(i))
		} else {
			rightSites = append(rightSites, siteName(i))
		}
	}
	budget := 10*time.Second + time.Duration(2*m)*timing.ProposeTimeout*4
	if err := waitConverged(procs, budget); err != nil {
		return row, fmt.Errorf("partition-merge formation: %w", err)
	}
	e.fabric.SetPartitions(leftSites, rightSites)
	if err := waitConverged(procs[:m], budget); err != nil {
		return row, fmt.Errorf("left partition: %w", err)
	}
	if err := waitConverged(procs[m:], budget); err != nil {
		return row, fmt.Errorf("right partition: %w", err)
	}
	before := procs[0].Stats().ViewsInstalled
	e.fabric.Heal()
	if err := waitConverged(procs, budget); err != nil {
		return row, fmt.Errorf("merge: %w", err)
	}
	row.PartitionMergePartitionable = int(procs[0].Stats().ViewsInstalled - before)
	for _, p := range procs {
		p.Leave()
	}
	return row, nil
}

// E1Header is the column header line for E1 tables.
const E1Header = "m | storm-views(part) | storm-views(1-join) | merge-views(part) | wall(part) | wall(1-join)"

// String renders the row under E1Header.
func (r E1Row) String() string {
	return fmt.Sprintf("%2d | %18d | %19d | %17d | %10v | %11v",
		r.M, r.JoinStormPartitionable, r.JoinStormSingleJoin,
		r.PartitionMergePartitionable,
		r.WallPartitionable.Round(time.Millisecond),
		r.WallSingleJoin.Round(time.Millisecond))
}
