package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
)

// E8Row is one cell of the view-agreement-latency-under-churn sweep.
// Section 4's membership protocol resolves each change with a
// coordinator round (propose → ack/block → flush → install); under
// churn, changes overlap — a new suspicion lands while a proposal is
// in flight — forcing retries and stretching the agree phase while
// the group sits blocked (the flush discipline stops multicasting
// between ack and install). This experiment injects false suspicions
// at a swept rate and attributes where the view-change time goes,
// phase by phase, using the span profiler over the cell's own trace.
type E8Row struct {
	// MeanBetween is the mean time between injected false suspicions.
	MeanBetween time.Duration
	// Injections actually performed during the window.
	Injections int
	// Spans is the number of member view-change spans profiled
	// (closed, non-bootstrap); Unclosed counts changes still
	// unresolved when the window ended.
	Spans    int
	Unclosed int
	// Worst-tail phase latencies across member spans.
	DetectP95, AgreeP95, FlushP95 time.Duration
	// End-to-end view-agreement latency distribution.
	TotalP50, TotalP95, TotalMax time.Duration
	// Reproposals counts peerView-divergence rounds — churn the
	// injected suspicions cause only indirectly, via install
	// propagation races. With the reconciliation fast path most such
	// divergences are healed by an install re-send (Reconciles) before
	// any round starts.
	Reproposals int
	// Reconciles counts install re-sends by the reconciliation fast
	// path during the window.
	Reconciles int
}

// RunE8 measures one churn-rate cell over the given window.
func RunE8(meanBetween, window time.Duration, timing Timing, seed int64) (E8Row, error) {
	row := E8Row{MeanBetween: meanBetween}
	e := timing.newEnv(seed)
	defer e.close()

	// Cell-local trace: the spans profiled are exactly this cell's.
	cellTrace := obs.NewMemorySink()
	var observer core.Observer = obs.NewCollector(nil, obs.NewTracer(0, cellTrace))
	if timing.Observer != nil {
		observer = obs.Tee(timing.Observer, observer)
	}
	opts := timing.Options("e8", true)
	opts.Observer = observer

	const n = 5
	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := timing.Start(e.fabric, e.reg, siteName(i), opts)
		if err != nil {
			return row, err
		}
		drain(p)
		procs = append(procs, p)
	}
	if err := waitConverged(procs, 30*time.Second); err != nil {
		return row, fmt.Errorf("formation: %w", err)
	}

	r := rand.New(rand.NewSource(seed))
	deadline := time.Now().Add(window)
	hold := 3 * timing.SuspectAfter
	for time.Now().Before(deadline) {
		gap := time.Duration(float64(meanBetween) * (0.5 + r.Float64()))
		time.Sleep(gap)
		if !time.Now().Before(deadline) {
			break
		}
		victim := procs[r.Intn(n)]
		for _, p := range procs {
			if p != victim {
				_ = p.ForceSuspect(victim.PID())
			}
		}
		row.Injections++
		time.Sleep(hold)
		for _, p := range procs {
			if p != victim {
				_ = p.Unforce(victim.PID())
			}
		}
	}
	// Let the last change resolve so its spans close.
	if err := waitConverged(procs, 30*time.Second); err != nil {
		return row, fmt.Errorf("stabilization: %w", err)
	}
	time.Sleep(2 * timing.SuspectAfter)

	prof := profile.FromEvents(cellTrace.Events())
	row.Spans = prof.Phases.Total.Count
	row.Unclosed = prof.Unclosed
	row.DetectP95 = prof.Phases.Detect.P95
	row.AgreeP95 = prof.Phases.Agree.P95
	row.FlushP95 = prof.Phases.Flush.P95
	row.TotalP50 = prof.Phases.Total.P50
	row.TotalP95 = prof.Phases.Total.P95
	row.TotalMax = prof.Phases.Total.Max
	row.Reproposals = prof.Reproposals
	row.Reconciles = prof.Reconciles
	for _, p := range procs {
		p.Leave()
	}
	return row, nil
}

// E8Header is the column header line for E8 tables.
const E8Header = "mean gap | inject | spans | detect p95 | agree p95 | flush p95 | total p50 | total p95 | total max | reprop | reconc | unclosed"

// String renders the row under E8Header.
func (r E8Row) String() string {
	ms := func(d time.Duration) time.Duration { return d.Round(100 * time.Microsecond) }
	return fmt.Sprintf("%8v | %6d | %5d | %10v | %9v | %9v | %9v | %9v | %9v | %6d | %6d | %8d",
		r.MeanBetween, r.Injections, r.Spans,
		ms(r.DetectP95), ms(r.AgreeP95), ms(r.FlushP95),
		ms(r.TotalP50), ms(r.TotalP95), ms(r.TotalMax),
		r.Reproposals, r.Reconciles, r.Unclosed)
}
