package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// E5Row is one row of experiment E5: the run-time overhead of enriched
// views over flat views — the paper claims the extension "requires minor
// modifications to the view synchrony run-time support and can be
// implemented efficiently".
type E5Row struct {
	N        int
	Enriched bool
	// Msgs is the number of application multicasts measured.
	Msgs int
	// Throughput is delivered application messages per second at one
	// member.
	Throughput float64
	// DeliveryLatency is the mean multicast-to-last-delivery latency.
	DeliveryLatency time.Duration
	// JoinLatency is the time for a fresh member to be absorbed into
	// the group (view installation at the anchor).
	JoinLatency time.Duration
	// BytesPerMsg is mean fabric bytes sent per application multicast
	// during the measurement window (includes heartbeats).
	BytesPerMsg float64
}

// RunE5 measures one (n, enriched) cell.
func RunE5(n int, enriched bool, timing Timing, seed int64) (E5Row, error) {
	const msgs = 500
	row := E5Row{N: n, Enriched: enriched, Msgs: msgs}
	e := timing.newEnv(seed)
	defer e.close()
	opts := timing.Options("e5", enriched)

	procs := make([]*core.Process, 0, n)
	var delivered int64
	for i := 0; i < n; i++ {
		p, err := timing.Start(e.fabric, e.reg, siteName(i), opts)
		if err != nil {
			return row, err
		}
		procs = append(procs, p)
		go func(p *core.Process) {
			for ev := range p.Events() {
				if _, ok := ev.(core.MsgEvent); ok {
					atomic.AddInt64(&delivered, 1)
				}
			}
		}(p)
	}
	if err := waitConverged(procs, 15*time.Second); err != nil {
		return row, err
	}

	// Throughput: multicast a burst round-robin, wait for every member
	// to deliver everything. A spurious view change can split delivery
	// paths so that a straggler legitimately misses part of the burst
	// (Agreement binds only co-transitioning members); measure what was
	// actually delivered once progress stops.
	e.fabric.ResetStats()
	atomic.StoreInt64(&delivered, 0)
	payload := make([]byte, 128)
	start := time.Now()
	for i := 0; i < msgs; i++ {
		if err := procs[i%n].Multicast(payload); err != nil {
			return row, fmt.Errorf("multicast %d: %w", i, err)
		}
	}
	want := int64(msgs * n)
	last := int64(0)
	lastProgress := time.Now()
	elapsed := time.Duration(0)
	for {
		got := atomic.LoadInt64(&delivered)
		if got >= want {
			elapsed = time.Since(start)
			break
		}
		if got > last {
			last, lastProgress = got, time.Now()
		}
		if time.Since(lastProgress) > 2*time.Second {
			elapsed = lastProgress.Sub(start) // exclude the stagnation wait
			break
		}
		if time.Since(start) > 30*time.Second {
			return row, fmt.Errorf("burst delivery stalled at %d/%d", got, want)
		}
		time.Sleep(time.Millisecond)
	}
	deliveredMsgs := float64(atomic.LoadInt64(&delivered)) / float64(n)
	row.Throughput = deliveredMsgs / elapsed.Seconds()
	row.DeliveryLatency = time.Duration(float64(elapsed) / deliveredMsgs)
	fs := e.fabric.Stats()
	row.BytesPerMsg = float64(fs.BytesSent) / float64(msgs)

	// Join latency: one fresh member.
	joinStart := time.Now()
	j, err := timing.Start(e.fabric, e.reg, "late", opts)
	if err != nil {
		return row, err
	}
	drain(j)
	all := append(append([]*core.Process{}, procs...), j)
	if err := waitConverged(all, 15*time.Second); err != nil {
		return row, err
	}
	row.JoinLatency = time.Since(joinStart)
	for _, p := range all {
		p.Leave()
	}
	return row, nil
}

// E5Header is the column header line for E5 tables.
const E5Header = "n | enriched | msgs/s | mean delivery | join latency | fabric bytes/msg"

// String renders the row under E5Header.
func (r E5Row) String() string {
	return fmt.Sprintf("%2d | %8v | %6.0f | %13v | %12v | %16.0f",
		r.N, r.Enriched, r.Throughput,
		r.DeliveryLatency.Round(time.Microsecond),
		r.JoinLatency.Round(time.Millisecond), r.BytesPerMsg)
}
