package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/transfer"
)

// E3Row is one row of experiment E3 (Section 5's discussion of state
// transfer for large states): under the Blocking strategy the joiner
// resumes external operations only after the whole state arrived, so
// resume time grows with state size; under Split a small critical piece
// arrives first and the bulk streams concurrently, keeping resume time
// flat.
type E3Row struct {
	// StateBytes is the bulk state size.
	StateBytes int
	Strategy   transfer.Strategy
	// TimeToResume is when the joiner could resume externals: full
	// completion for Blocking, critical-piece application for Split.
	TimeToResume time.Duration
	// TimeToFull is when the complete state was applied.
	TimeToFull time.Duration
	// Chunks is the number of bulk chunks shipped.
	Chunks int
}

// e3App is the donor/joiner state: a blob plus a tiny header.
type e3App struct {
	mu       sync.Mutex
	critical []byte
	bulk     []byte
}

func (a *e3App) MarshalCritical() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte{}, a.critical...), nil
}

func (a *e3App) MarshalBulk() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte{}, a.bulk...), nil
}

func (a *e3App) ApplyCritical(b []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.critical = append([]byte{}, b...)
	return nil
}

func (a *e3App) ApplyBulk(b []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bulk = append([]byte{}, b...)
	return nil
}

// E3Bandwidth is the modeled receiver-link bandwidth for E3 (bytes/sec):
// large enough that protocol chatter is free, small enough that bulk
// state has a visible cost.
const E3Bandwidth = 16 << 20 // 16 MB/s

// RunE3 measures one (size, strategy) cell.
func RunE3(stateBytes int, strategy transfer.Strategy, timing Timing, seed int64) (E3Row, error) {
	const chunkSize = 4096
	row := E3Row{StateBytes: stateBytes, Strategy: strategy}
	e := newEnvBW(seed, E3Bandwidth)
	defer e.close()
	// Bulk chunks serialize ahead of heartbeats on the joiner's ingress
	// link; scale the suspicion timeout past the worst-case transfer time
	// or the failure detector would misread a busy link as a crash (the
	// very confusion the paper's system model describes).
	stateTime := time.Duration(float64(stateBytes) / float64(E3Bandwidth) * float64(time.Second))
	if floor := 2*stateTime + 100*time.Millisecond; timing.SuspectAfter < floor {
		timing.SuspectAfter = floor
		timing.ProposeTimeout = floor
	}
	opts := timing.Options("e3", true)

	donor, err := timing.Start(e.fabric, e.reg, "donor", opts)
	if err != nil {
		return row, err
	}
	joiner, err := timing.Start(e.fabric, e.reg, "joiner", opts)
	if err != nil {
		return row, err
	}
	if err := waitConverged([]*core.Process{donor, joiner}, 15*time.Second); err != nil {
		return row, err
	}

	donorApp := &e3App{critical: []byte("header"), bulk: bytes.Repeat([]byte{0xAB}, stateBytes)}
	joinerApp := &e3App{}
	toolOpts := transfer.Options{Strategy: strategy, ChunkSize: chunkSize}
	donorTool := transfer.New(donor, donorApp, toolOpts)
	joinerTool := transfer.New(joiner, joinerApp, toolOpts)

	// Donor side serves requests from its event stream.
	go func() {
		for ev := range donor.Events() {
			if m, ok := ev.(core.MsgEvent); ok {
				_, _, _ = donorTool.HandleMessage(m)
			}
		}
	}()

	type timings struct {
		resume, full time.Duration
		chunks       int
	}
	result := make(chan timings, 1)
	fail := make(chan error, 1)
	var startAt atomic.Int64 // UnixNano of the (latest) request
	startAt.Store(time.Now().UnixNano())
	since := func() time.Duration {
		return time.Duration(time.Now().UnixNano() - startAt.Load())
	}
	go func() {
		var resume time.Duration
		for ev := range joiner.Events() {
			m, ok := ev.(core.MsgEvent)
			if !ok {
				continue
			}
			pr, handled, err := joinerTool.HandleMessage(m)
			if err != nil {
				fail <- err
				return
			}
			if !handled {
				continue
			}
			if strategy == transfer.Split && pr.CriticalDone && resume == 0 {
				resume = since()
			}
			if pr.Done {
				full := since()
				if resume == 0 {
					resume = full // Blocking: resume == full arrival
				}
				result <- timings{resume: resume, full: full, chunks: pr.Total}
				return
			}
		}
		fail <- fmt.Errorf("joiner events closed before completion")
	}()

	if err := joinerTool.Request(donor.PID()); err != nil {
		return row, err
	}
	// A view change (e.g. a scheduler stall under load tripping the
	// failure detector) aborts an in-flight transfer; the application
	// contract is to re-request, so the experiment does the same.
	retryEvery := 3*stateTime + 500*time.Millisecond
	retry := time.NewTicker(retryEvery)
	defer retry.Stop()
	deadline := time.After(60 * time.Second)
	for {
		select {
		case tm := <-result:
			row.TimeToResume = tm.resume
			row.TimeToFull = tm.full
			row.Chunks = tm.chunks
			donor.Leave()
			joiner.Leave()
			return row, nil
		case err := <-fail:
			return row, err
		case <-retry.C:
			startAt.Store(time.Now().UnixNano()) // measure the clean retry
			if err := joinerTool.Request(donor.PID()); err != nil {
				return row, fmt.Errorf("re-request: %w", err)
			}
		case <-deadline:
			return row, fmt.Errorf("transfer timed out (%d bytes, %v)", stateBytes, strategy)
		}
	}
}

// E3Header is the column header line for E3 tables.
const E3Header = "state bytes | strategy | time-to-resume | time-to-full | chunks"

// String renders the row under E3Header.
func (r E3Row) String() string {
	return fmt.Sprintf("%11d | %8v | %14v | %12v | %6d",
		r.StateBytes, r.Strategy,
		r.TimeToResume.Round(10*time.Microsecond),
		r.TimeToFull.Round(10*time.Microsecond), r.Chunks)
}
