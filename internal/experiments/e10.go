package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
)

// E10Row is one backend cell of the transport comparison. The same
// scenario — a three-member group forms, carries multicast traffic,
// survives a partition/heal cycle, and merges its structure back with
// totally ordered e-changes — runs once over the deterministic
// simulator and once over real loopback UDP sockets
// (internal/transport/udp), and the cell's own trace is span-profiled
// (internal/profile) into view-agreement and delivery-latency
// percentiles. The paper's run-time assumes only an asynchronous
// partitionable network; identical protocol outcomes over both
// backends, with only the latency constants shifting, is the evidence
// the stack really is transport-oblivious.
type E10Row struct {
	// Backend is "sim" or "udp".
	Backend string
	// Views counts view installations across the cell (bootstrap
	// singletons, the partition split, and the merges back).
	Views int
	// AgreeP50/AgreeP95 summarize end-to-end view-agreement latency
	// across every view change in the cell.
	AgreeP50, AgreeP95 time.Duration
	// McastP50/McastP95 summarize multicast delivery latency
	// (send-to-deliver, cross-process).
	McastP50, McastP95 time.Duration
	// EChanges counts e-view changes applied while merging the
	// structure back after the heal.
	EChanges int
	// Sent/Delivered/Dropped are the transport's packet counters for
	// the whole cell.
	Sent, Delivered, Dropped uint64
}

// RunE10 runs the scenario over one backend ("sim" or "udp"). msgs is
// the number of multicasts each member sends in the traffic phase.
func RunE10(backend string, msgs int, timing Timing, seed int64) (E10Row, error) {
	row := E10Row{Backend: backend}
	timing.Transport = backend
	e := timing.newEnv(seed)
	defer e.close()

	// Cell-local metrics and trace so spans and percentiles cover only
	// this backend's run; the harness-wide observer still sees all.
	cell := obs.NewRegistry()
	cellTrace := obs.NewMemorySink()
	var observer core.Observer = obs.NewCollector(cell, obs.NewTracer(0, cellTrace))
	if timing.Observer != nil {
		observer = obs.Tee(timing.Observer, observer)
	}
	opts := timing.Options("e10", true)
	opts.Observer = observer

	const n = 3
	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := timing.Start(e.fabric, e.reg, siteName(i), opts)
		if err != nil {
			return row, err
		}
		drain(p)
		procs = append(procs, p)
	}
	if err := waitConverged(procs, 30*time.Second); err != nil {
		return row, fmt.Errorf("e10 %s formation: %w", backend, err)
	}

	// Traffic phase: every member multicasts, everyone must deliver all
	// of it (n*msgs deliveries each, own messages included). Rounds are
	// paced: an unthrottled burst starves heartbeats at the receivers,
	// and the resulting false-suspicion view changes would discard
	// old-view messages for the temporarily excluded member — view
	// synchrony never re-sends across views. The cell measures delivery
	// latency under load, not heartbeat starvation, and pacing keeps
	// both backends on the same schedule.
	payload := make([]byte, 64)
	for i := 0; i < msgs; i++ {
		for _, p := range procs {
			if err := p.Multicast(payload); err != nil {
				return row, fmt.Errorf("e10 %s multicast: %w", backend, err)
			}
		}
		time.Sleep(500 * time.Microsecond)
	}
	want := uint64(n * msgs)
	err := eventually(30*time.Second, "traffic delivery", func() bool {
		for _, p := range procs {
			if p.Stats().MsgsDelivered < want {
				return false
			}
		}
		return true
	})
	if err != nil {
		return row, fmt.Errorf("e10 %s: %w", backend, err)
	}

	// Partition/heal cycle: isolate the first site, let both sides
	// install their reduced views, then heal and re-converge.
	e.fabric.SetPartitions([]string{siteName(0)}, []string{siteName(1), siteName(2)})
	err = eventually(30*time.Second, "partition views", func() bool {
		if procs[0].CurrentView().Size() != 1 {
			return false
		}
		v1, v2 := procs[1].CurrentView(), procs[2].CurrentView()
		return v1.Size() == 2 && v1.ID == v2.ID
	})
	if err != nil {
		return row, fmt.Errorf("e10 %s: %w", backend, err)
	}
	e.fabric.Heal()
	if err := waitConverged(procs, 30*time.Second); err != nil {
		return row, fmt.Errorf("e10 %s re-merge: %w", backend, err)
	}

	// Totally ordered e-changes: merge the partition-scarred structure
	// back into one subview (SVSetMerge + SubviewMerge rounds).
	before := procs[0].Stats().EChangesApplied
	if err := mergeAll(procs[0], procs, 30*time.Second); err != nil {
		return row, fmt.Errorf("e10 %s: %w", backend, err)
	}
	row.EChanges = int(procs[0].Stats().EChangesApplied - before)

	st := e.fabric.Stats()
	row.Sent, row.Delivered, row.Dropped = st.Sent, st.Delivered, st.Dropped()

	prof := profile.FromEvents(cellTrace.Events())
	row.Views = len(prof.Views)
	row.AgreeP50 = prof.Phases.Total.P50
	row.AgreeP95 = prof.Phases.Total.P95
	for _, kd := range prof.Latency {
		if kd.Kind == "multicast" {
			row.McastP50, row.McastP95 = kd.P50, kd.P95
		}
	}
	for _, p := range procs {
		p.Leave()
	}
	return row, nil
}

// E10Header is the column header line for E10 tables.
const E10Header = "backend | views | agree p50 | agree p95 | mcast p50 | mcast p95 | ech | sent | delivered | dropped"

// String renders the row under E10Header.
func (r E10Row) String() string {
	return fmt.Sprintf("%7s | %5d | %9v | %9v | %9v | %9v | %3d | %6d | %9d | %7d",
		r.Backend, r.Views,
		r.AgreeP50.Round(100*time.Microsecond), r.AgreeP95.Round(100*time.Microsecond),
		r.McastP50.Round(10*time.Microsecond), r.McastP95.Round(10*time.Microsecond),
		r.EChanges, r.Sent, r.Delivered, r.Dropped)
}
