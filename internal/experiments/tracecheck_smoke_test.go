package experiments

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/tracecheck"
)

// TestE1TraceClean runs E1 (join storms plus a partition merge) under
// the vsbench-style collector and feeds the captured trace through the
// offline checkers — the same pipeline `make check` exercises via
// vsbench -trace-out | vstrace -analyze, but in-process.
func TestE1TraceClean(t *testing.T) {
	mem := obs.NewMemorySink()
	timing := FastTiming()
	timing.Observer = obs.NewCollector(nil, obs.NewTracer(0, mem))

	row, err := RunE1(2, timing, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s\n%s", E1Header, row)

	events := mem.Events()
	if len(events) == 0 {
		t.Fatal("collector captured no trace events")
	}
	rep := tracecheck.Check(events)
	for _, v := range rep.Violations {
		t.Errorf("trace violation: %v", v)
	}
	if rep.Summary.Runs < 3 {
		t.Fatalf("expected a run marker per E1 sub-scenario, got %d", rep.Summary.Runs)
	}
}
