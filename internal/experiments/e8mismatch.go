package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// E8MismatchRow is one mode of the install-propagation-mismatch
// ablation. The scenario manufactures the exact divergence the
// ROADMAP's residual-churn item describes: a member acks a proposal
// but its Install packet is lost, so it sits blocked advertising a
// stale view id while everyone else has moved on. Before the
// reconciliation fast path the coordinator could only heal this with a
// full re-proposal round (core.reproposal_total); with it, the cached
// Install is simply re-sent. Running the same packet-loss schedule
// with the fast path on and off (Options.NoReconcile) isolates what
// the fast path buys.
type E8MismatchRow struct {
	// Reconcile reports whether the fast path was enabled; false is the
	// NoReconcile ablation (the pre-fast-path behaviour).
	Reconcile bool
	// Cycles is how many suspect/recover/drop cycles ran.
	Cycles int
	// Dropped is how many Install packets the fault filter ate (one per
	// cycle when the schedule lands).
	Dropped uint64
	// Reconciles / Reproposals are the cell's core.reconcile_total and
	// core.reproposal_total deltas. The fast path's whole claim is
	// Reconciles ≈ Dropped and Reproposals = 0; the ablation inverts it.
	Reconciles  int
	Reproposals int
	// Heal latencies: per cycle, recovery of the suspected member until
	// every member (including the one whose install was dropped) sits in
	// the same view.
	HealP50, HealP95, HealMax time.Duration
	// AgreeP95 is the agree-phase p95 across the cell's member spans —
	// the phase re-proposal rounds stretch.
	AgreeP95 time.Duration
	// Unclosed counts view-change spans that never resolved (must be 0).
	Unclosed int
}

// RunE8Mismatch runs the install-mismatch scenario for one mode. Five
// processes a..e; per cycle, e is force-suspected out (a 4-member view
// forms), then a packet filter is armed to eat exactly the next
// Install from the coordinator a to member c, and e is un-suspected:
// the re-formed 5-member view reaches everyone but c, which acked and
// blocked. The run then waits for full convergence — via an install
// re-send (fast path) or a re-proposal round (ablation) — and times it.
func RunE8Mismatch(cycles int, reconcile bool, timing Timing, seed int64) (E8MismatchRow, error) {
	row := E8MismatchRow{Reconcile: reconcile, Cycles: cycles}
	// Fresh environment ⇒ fresh identifier space: mark a run boundary so
	// offline trace analysis never correlates the two modes' views.
	timing.MarkRun(fmt.Sprintf("e8m reconcile=%v cycles=%d", reconcile, cycles))
	e := timing.newEnv(seed)
	defer e.close()
	filt := transport.NewDropFilter(e.fabric)

	cell := obs.NewRegistry()
	cellTrace := obs.NewMemorySink()
	var observer core.Observer = obs.NewCollector(cell, obs.NewTracer(0, cellTrace))
	if timing.Observer != nil {
		observer = obs.Tee(timing.Observer, observer)
	}
	opts := timing.Options("e8m", true)
	opts.Observer = observer
	opts.NoReconcile = !reconcile

	const n = 5
	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := timing.Start(filt, e.reg, siteName(i), opts)
		if err != nil {
			return row, err
		}
		drain(p)
		procs = append(procs, p)
	}
	if err := waitConverged(procs, 30*time.Second); err != nil {
		return row, fmt.Errorf("formation: %w", err)
	}

	// The smallest member coordinates every re-formation round, so its
	// Install to the lagging member is the packet to lose. The victim
	// of the forced suspicion must NOT be the smallest member: a
	// smallest member seeing only newer peer views is the one case the
	// fast path cannot serve (it is the laggard) and would re-propose.
	coord, lag, victim := procs[0], procs[2], procs[n-1]
	dropInstall := func(from, to ids.PID, payload any) bool {
		if from != coord.PID() || to != lag.PID() {
			return false
		}
		_, ok := payload.(wire.Install)
		return ok
	}
	others := make([]*core.Process, 0, n-1)
	for _, p := range procs {
		if p != victim {
			others = append(others, p)
		}
	}

	var heals []time.Duration
	for c := 0; c < cycles; c++ {
		for _, p := range others {
			_ = p.ForceSuspect(victim.PID())
		}
		if err := waitConverged(others, 30*time.Second); err != nil {
			return row, fmt.Errorf("cycle %d shrink: %w", c, err)
		}
		// Budget 1: exactly the original Install is lost; whatever
		// heals the divergence afterwards (re-send or re-proposal
		// install) passes.
		filt.ArmN(dropInstall, 1)
		start := time.Now()
		for _, p := range others {
			_ = p.Unforce(victim.PID())
		}
		if err := waitConverged(procs, 30*time.Second); err != nil {
			return row, fmt.Errorf("cycle %d heal: %w", c, err)
		}
		heals = append(heals, time.Since(start))
		filt.Disarm()
	}
	// Let trailing installs propagate so the trace's last spans close.
	time.Sleep(2 * timing.SuspectAfter)

	snap := cell.Snapshot()
	row.Reconciles = int(snap.Counters[obs.MetricReconciles])
	row.Reproposals = int(snap.Counters[obs.MetricReproposals])
	row.Dropped = filt.Dropped()
	prof := profile.FromEvents(cellTrace.Events())
	row.AgreeP95 = prof.Phases.Agree.P95
	row.Unclosed = prof.Unclosed

	sort.Slice(heals, func(i, j int) bool { return heals[i] < heals[j] })
	if len(heals) > 0 {
		row.HealP50 = heals[len(heals)/2]
		row.HealP95 = heals[(len(heals)*95)/100]
		row.HealMax = heals[len(heals)-1]
	}
	// Crash (not Leave) so teardown adds no half-finished view changes
	// to the shared trace: a profiler pass over the whole file must not
	// see spans this experiment opened and abandoned.
	for _, p := range procs {
		p.Crash()
	}
	return row, nil
}

// E8MismatchHeader is the column header line for E8M tables.
const E8MismatchHeader = "mode         | cycles | dropped | reconc | reprop | heal p50 | heal p95 | heal max | agree p95 | unclosed"

// String renders the row under E8MismatchHeader.
func (r E8MismatchRow) String() string {
	mode := "no-reconcile"
	if r.Reconcile {
		mode = "reconcile"
	}
	ms := func(d time.Duration) time.Duration { return d.Round(100 * time.Microsecond) }
	return fmt.Sprintf("%-12s | %6d | %7d | %6d | %6d | %8v | %8v | %8v | %9v | %8d",
		mode, r.Cycles, r.Dropped, r.Reconciles, r.Reproposals,
		ms(r.HealP50), ms(r.HealP95), ms(r.HealMax), ms(r.AgreeP95), r.Unclosed)
}
