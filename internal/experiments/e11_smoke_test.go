package experiments

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// TestE11Smoke runs a tiny soak cell and checks the oracle verdicts,
// the per-kind aggregation, and that the fault counters reached the
// observer's registry (the vsbench -metrics path).
func TestE11Smoke(t *testing.T) {
	reg := obs.NewRegistry()
	timing := FastTiming()
	timing.Observer = obs.NewCollector(reg, nil)

	row, err := RunE11(2, timing, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s\n%s", E11Header, row)
	if row.Failed > 0 {
		t.Fatalf("%d/%d soak runs failed (seeds %v)", row.Failed, row.Runs, row.FailedSeeds)
	}
	total := uint64(0)
	for _, n := range row.FaultCounts {
		total += n
	}
	if total == 0 {
		t.Fatal("soak injected no faults")
	}
	snap := reg.Snapshot()
	regTotal := uint64(0)
	for name, n := range snap.Counters {
		if len(name) > len(chaos.MetricFaultPrefix) && name[:len(chaos.MetricFaultPrefix)] == chaos.MetricFaultPrefix {
			regTotal += n
		}
	}
	if regTotal != total {
		t.Errorf("registry chaos.fault_total.* = %d, row aggregate = %d", regTotal, total)
	}
}
