package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/quorum"
	"repro/internal/sstate"
)

// E4Row is one row of experiment E4: a scenario engineered to produce
// one specific incarnation of the shared state problem (Section 4's
// necessary conditions), with the classifier's verdict, the observed
// R_v / N_v sizes and cluster count.
type E4Row struct {
	Scenario string
	Expected sstate.Kind
	Detected sstate.Kind
	NSize    int
	RSize    int
	Clusters int
}

// RunE4 runs the four scenarios plus the primary-partition exhaustive
// check and returns one row per scenario.
func RunE4(timing Timing, seed int64) ([]E4Row, error) {
	var rows []E4Row

	transferRow, err := e4Transfer(timing, seed)
	if err != nil {
		return rows, fmt.Errorf("transfer scenario: %w", err)
	}
	rows = append(rows, transferRow)

	creationRow, err := e4Creation(timing, seed+100)
	if err != nil {
		return rows, fmt.Errorf("creation scenario: %w", err)
	}
	rows = append(rows, creationRow)

	mergingRow, err := e4Merging(timing, seed+200, false)
	if err != nil {
		return rows, fmt.Errorf("merging scenario: %w", err)
	}
	rows = append(rows, mergingRow)

	bothRow, err := e4Merging(timing, seed+300, true)
	if err != nil {
		return rows, fmt.Errorf("transfer+merging scenario: %w", err)
	}
	rows = append(rows, bothRow)

	primary := e4PrimaryPartition()
	rows = append(rows, primary)
	return rows, nil
}

func fill(row *E4Row, c sstate.Classification) {
	row.Detected = c.Kind
	row.NSize = len(c.NSet)
	row.RSize = len(c.RSet)
	row.Clusters = len(c.Clusters)
}

// e4Transfer: a merged majority cluster plus one repaired member.
func e4Transfer(timing Timing, seed int64) (E4Row, error) {
	row := E4Row{Scenario: "partition repair (quorum object)", Expected: sstate.Transfer}
	e := timing.newEnv(seed)
	defer e.close()
	opts := timing.Options("e4t", true)
	const n = 4
	rw := quorum.MajorityRW(quorum.Uniform("a", "b", "c", "d"))

	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := timing.Start(e.fabric, e.reg, siteName(i), opts)
		if err != nil {
			return row, err
		}
		drain(p)
		procs = append(procs, p)
	}
	if err := waitConverged(procs, 15*time.Second); err != nil {
		return row, err
	}
	if err := mergeAll(procs[0], procs, 10*time.Second); err != nil {
		return row, err
	}
	e.fabric.SetPartitions([]string{"a", "b", "c"}, []string{"d"})
	if err := waitConverged(procs[:3], 15*time.Second); err != nil {
		return row, err
	}
	if err := waitConverged(procs[3:], 15*time.Second); err != nil {
		return row, err
	}
	// The majority re-merges its subviews after settling, in case an
	// asymmetric partition detection fragmented it transiently.
	if err := mergeAll(procs[0], procs[:3], 10*time.Second); err != nil {
		return row, err
	}
	e.fabric.Heal()
	if err := waitConverged(procs, 15*time.Second); err != nil {
		return row, err
	}
	class := sstate.ClassifyEnriched(procs[0].CurrentView(), func(c ids.PIDSet) bool {
		return rw.CanWrite(c)
	})
	fill(&row, class)
	return row, nil
}

// e4Creation: total failure, everyone recovers fresh.
func e4Creation(timing Timing, seed int64) (E4Row, error) {
	row := E4Row{Scenario: "total failure recovery", Expected: sstate.Creation}
	e := timing.newEnv(seed)
	defer e.close()
	opts := timing.Options("e4c", true)
	const n = 3
	rw := quorum.MajorityRW(quorum.Uniform("a", "b", "c"))

	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := timing.Start(e.fabric, e.reg, siteName(i), opts)
		if err != nil {
			return row, err
		}
		drain(p)
		procs = append(procs, p)
	}
	if err := waitConverged(procs, 15*time.Second); err != nil {
		return row, err
	}
	for _, p := range procs {
		p.Crash()
	}
	time.Sleep(50 * time.Millisecond)
	recovered := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := timing.Start(e.fabric, e.reg, siteName(i), opts)
		if err != nil {
			return row, err
		}
		drain(p)
		recovered = append(recovered, p)
	}
	if err := waitConverged(recovered, 15*time.Second); err != nil {
		return row, err
	}
	class := sstate.ClassifyEnriched(recovered[0].CurrentView(), func(c ids.PIDSet) bool {
		return rw.CanWrite(c)
	})
	fill(&row, class)
	return row, nil
}

// e4Merging: two clusters that both served (look-up-database judgment),
// optionally plus one fresh joiner for the transfer+merging variant.
func e4Merging(timing Timing, seed int64, withJoiner bool) (E4Row, error) {
	row := E4Row{Scenario: "partition union (lookup object)", Expected: sstate.Merging}
	if withJoiner {
		row.Scenario = "partition union + fresh joiner"
		row.Expected = sstate.TransferMerging
	}
	e := timing.newEnv(seed)
	defer e.close()
	opts := timing.Options("e4m", true)
	const n = 4

	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := timing.Start(e.fabric, e.reg, siteName(i), opts)
		if err != nil {
			return row, err
		}
		drain(p)
		procs = append(procs, p)
	}
	if err := waitConverged(procs, 15*time.Second); err != nil {
		return row, err
	}
	if err := mergeAll(procs[0], procs, 10*time.Second); err != nil {
		return row, err
	}
	all := procs
	if withJoiner {
		j, err := timing.Start(e.fabric, e.reg, "joiner", opts)
		if err != nil {
			return row, err
		}
		drain(j)
		all = append(append([]*core.Process{}, procs...), j)
	}
	// A staggered heal can absorb one side through intermediate views,
	// presenting it as singletons (a legal path that classifies as
	// transfer/creation instead); retry the cycle until the merge is
	// clean enough to exhibit the merging incarnation.
	for attempt := 0; attempt < 4; attempt++ {
		e.fabric.SetPartitions([]string{"a", "b"}, []string{"c", "d", "joiner"})
		if err := waitConverged(procs[:2], 15*time.Second); err != nil {
			return row, err
		}
		rightSide := all[2:]
		if err := waitConverged(rightSide, 15*time.Second); err != nil {
			return row, err
		}
		// Each side reconciles and re-merges its subviews (what the
		// look-up object does after settling) — except a fresh joiner,
		// which stays an unmerged singleton for the transfer+merging
		// variant.
		if err := mergePair(procs[0], procs[0], procs[1], 10*time.Second); err != nil {
			return row, err
		}
		if err := mergePair(procs[2], procs[2], procs[3], 10*time.Second); err != nil {
			return row, err
		}
		e.fabric.Heal()
		if err := waitConverged(all, 20*time.Second); err != nil {
			return row, err
		}
		// The look-up database's judgment: a cluster of two or more
		// members kept serving; a fresh singleton did not.
		class := sstate.ClassifyEnriched(all[0].CurrentView(), func(c ids.PIDSet) bool {
			return len(c) >= 2
		})
		fill(&row, class)
		if row.Detected == row.Expected {
			break
		}
	}
	for _, p := range all {
		p.Leave()
	}
	return row, nil
}

// e4PrimaryPartition exhaustively checks §4's observation that under a
// majority-based (primary-partition-like) judgment no two-way split of
// the group can ever classify as merging: two disjoint majorities cannot
// exist. Pure computation, no protocol run.
func e4PrimaryPartition() E4Row {
	row := E4Row{
		Scenario: "primary partition (exhaustive 2^5 splits)",
		Expected: sstate.None, // merging must never appear
		Detected: sstate.None,
	}
	sites := []string{"a", "b", "c", "d", "e"}
	rw := quorum.MajorityRW(quorum.Uniform(sites...))
	members := make([]ids.PID, len(sites))
	for i, s := range sites {
		members[i] = ids.PID{Site: s, Inc: 1}
	}
	for mask := 1; mask < 1<<len(sites)-1; mask++ {
		var left, right []ids.PID
		for i, m := range members {
			if mask&(1<<i) != 0 {
				left = append(left, m)
			} else {
				right = append(right, m)
			}
		}
		leftMaj := rw.CanWrite(ids.NewPIDSet(left...))
		rightMaj := rw.CanWrite(ids.NewPIDSet(right...))
		if leftMaj && rightMaj {
			row.Detected = sstate.Merging // impossible; flags a bug
			return row
		}
	}
	return row
}

// E4Header is the column header line for E4 tables.
const E4Header = "scenario | expected | detected | |N_v| | |R_v| | clusters"

// String renders the row under E4Header.
func (r E4Row) String() string {
	return fmt.Sprintf("%-42s | %-16v | %-16v | %5d | %5d | %8d",
		r.Scenario, r.Expected, r.Detected, r.NSize, r.RSize, r.Clusters)
}
