package experiments

import (
	"testing"
	"time"
)

// TestE8Smoke runs one churn cell and checks the span profile is
// actually populated: injected suspicions must produce profiled view
// changes, every change must resolve (no unclosed spans after
// stabilization), and the end-to-end latency must be non-trivial.
func TestE8Smoke(t *testing.T) {
	row, err := RunE8(200*time.Millisecond, 1500*time.Millisecond, FastTiming(), 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s\n%s", E8Header, row)
	if row.Injections == 0 {
		t.Error("no churn injected")
	}
	if row.Spans == 0 {
		t.Error("no view-change spans profiled")
	}
	if row.Unclosed != 0 {
		t.Errorf("unclosed spans after stabilization: %d", row.Unclosed)
	}
	if row.TotalP95 == 0 {
		t.Error("zero p95 agreement latency: span phase math broken")
	}
}

// TestE9Smoke runs one partition-churn cell and checks R-mode
// residency is measured: each cut puts the two minority replicas into
// R, so entries must track partitions and the dwell must cover a
// meaningful fraction of the hold time.
func TestE9Smoke(t *testing.T) {
	row, err := RunE9(100*time.Millisecond, 1200*time.Millisecond, true, FastTiming(), 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s\n%s", E9Header, row)
	if row.Partitions == 0 {
		t.Error("no partitions cut")
	}
	if row.REntries < row.Partitions {
		t.Errorf("R entries (%d) below partition count (%d): minority replicas not entering R",
			row.REntries, row.Partitions)
	}
	if row.TimeInR == 0 {
		t.Error("zero time in R despite partitions")
	}
}
