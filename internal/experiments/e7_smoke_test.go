package experiments

import (
	"testing"
	"time"
)

// TestE7Smoke runs the high-jitter cell of the static-vs-adaptive
// ablation and checks the regression signals with wide margins (the
// strict static-vs-adaptive comparison lives in vsbench/EXPERIMENTS.md;
// single-count differences here are wall-clock noise under test load):
// the adaptive timeout must have widened past the static one — under
// 25 ms jitter the silence tail is well above 18 ms — and false
// suspicions must stay an order of magnitude below the plain-EWMA
// failure mode (~100+/s, mean timeout ~12 ms; see estimator.go).
func TestE7Smoke(t *testing.T) {
	jitter := 25 * time.Millisecond
	window := time.Second
	static, err := RunE7(jitter, window, false, FastTiming(), 42)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := RunE7(jitter, window, true, FastTiming(), 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s\n%s\n%s", E7Header, static, adaptive)
	if adaptive.MeanTimeout <= static.MeanTimeout {
		t.Errorf("adaptive mean timeout (%v) did not widen past static (%v) under %v jitter",
			adaptive.MeanTimeout, static.MeanTimeout, jitter)
	}
	if adaptive.FalseSuspicions > 10 {
		t.Errorf("adaptive false suspicions (%d) under %v jitter: estimator under-covering the silence tail",
			adaptive.FalseSuspicions, jitter)
	}
}
