// Package experiments implements the reproduction harness: one function
// per figure/claim of the paper (see DESIGN.md §3 for the index). Each
// experiment returns structured rows so that both cmd/vsbench (formatted
// tables) and the root benchmarks (testing.B) can drive it.
//
// The experiments run real protocol stacks over the simulated fabric;
// they are measurements of this implementation, not of the authors' 1996
// testbeds — EXPERIMENTS.md records how the shapes compare.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/stable"
	"repro/internal/transport"
	"repro/internal/transport/udp"
)

// Timing is the protocol timing profile experiments run with.
type Timing struct {
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	Tick           time.Duration
	ProposeTimeout time.Duration
	// AdaptiveFD switches the started processes to the adaptive
	// failure-detector timeout (core.Options.AdaptiveFD); SuspectAfter
	// then only serves as the pre-warmup fallback.
	AdaptiveFD bool
	// Observer, when non-nil, is attached to every process the
	// experiment starts (vsbench -metrics wires an obs.Collector here).
	// Experiments that install their own observer compose with it via
	// obs.Tee rather than replacing it.
	Observer core.Observer
	// Transport selects the network backend: "sim" (default, the
	// deterministic simulator) or "udp" (real loopback sockets).
	// Experiments built on simulator-only models keep using sim
	// regardless: E3 (receiver bandwidth) and E7 (delay jitter).
	Transport string
	// OnStart, when non-nil, fires for every process an experiment
	// starts, immediately after core.Start succeeds. The admin endpoint
	// registers members here (vsbench/vstrace -admin) so live /status
	// covers the whole group without each experiment knowing about it.
	// Processes are not unregistered on crash/leave: a dead member's
	// stale snapshot is itself a signal (vsmon flags it stale).
	OnStart func(p *core.Process)
}

// FastTiming is the default simulation-speed profile. It is the single
// source of the fast-harness numbers: vstest.FastOptions, cmd/vstrace,
// and the facade test all derive from it (via the core.Sim* constants it
// is built from), so the profile cannot drift per harness again.
func FastTiming() Timing {
	return Timing{
		HeartbeatEvery: core.SimHeartbeatEvery,
		SuspectAfter:   core.SimSuspectAfter,
		Tick:           core.SimTick,
		ProposeTimeout: core.SimProposeTimeout,
	}
}

// MarkRun records a run boundary in the observer's trace when the
// observer carries one (obs.Collector does). Experiments call it each
// time they build a fresh environment: process and view identifiers
// restart there, and trace analysis (internal/tracecheck) must not
// correlate events across the boundary.
func (t Timing) MarkRun(label string) {
	if m, ok := t.Observer.(interface{ MarkRun(label string) }); ok {
		m.MarkRun(label)
	}
}

// Options materializes the profile as the core options every harness
// boots processes with (views logged, observer attached).
func (t Timing) Options(group string, enriched bool) core.Options {
	return core.Options{
		Group:          group,
		HeartbeatEvery: t.HeartbeatEvery,
		SuspectAfter:   t.SuspectAfter,
		Tick:           t.Tick,
		ProposeTimeout: t.ProposeTimeout,
		AdaptiveFD:     t.AdaptiveFD,
		Enriched:       enriched,
		LogViews:       true,
		Observer:       t.Observer,
	}
}

// Start boots one process through core.Start and reports it to the
// OnStart hook. Experiments start every member through it (rather
// than calling core.Start directly) so that an installed hook sees
// the whole group.
func (t Timing) Start(tr transport.Transport, reg *stable.Registry, site string, opts core.Options) (*core.Process, error) {
	p, err := core.Start(tr, reg, site, opts)
	if err == nil && t.OnStart != nil {
		t.OnStart(p)
	}
	return p, err
}

// NetFabric is what experiments need from a network backend: the
// transport surface plus partition fault injection. Both simnet.Fabric
// and udp.Transport satisfy it.
type NetFabric interface {
	transport.Transport
	transport.Partitioner
}

// env is one experiment's world: fabric + storage.
type env struct {
	fabric NetFabric
	reg    *stable.Registry
}

// newEnv builds the experiment environment over the profile's selected
// transport (Timing.Transport).
func (t Timing) newEnv(seed int64) *env {
	if t.Transport == "udp" {
		return &env{fabric: udp.New(udp.Config{}), reg: stable.NewRegistry()}
	}
	return newEnvBW(seed, 0)
}

// newEnvBW builds a simulator environment whose fabric models
// receiver-link bandwidth (bytes/sec; 0 = infinite). E3 uses it so that
// state size has a cost; it is simulator-only by construction.
func newEnvBW(seed, bandwidth int64) *env {
	return &env{
		fabric: simnet.New(simnet.Config{
			Delay:     simnet.NewUniformDelay(50*time.Microsecond, 400*time.Microsecond, seed+1),
			Seed:      seed,
			Bandwidth: bandwidth,
		}),
		reg: stable.NewRegistry(),
	}
}

func (e *env) close() { e.fabric.Close() }

// siteName mirrors vstest.SiteName without importing the test package.
func siteName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return fmt.Sprintf("s%d", i)
}

// waitConverged blocks until all processes share one view containing
// exactly them, or the timeout elapses.
func waitConverged(procs []*core.Process, timeout time.Duration) error {
	want := make(ids.PIDSet, len(procs))
	for _, p := range procs {
		want.Add(p.PID())
	}
	deadline := time.Now().Add(timeout)
	for {
		v0 := procs[0].CurrentView()
		ok := v0.Comp().Equal(want)
		if ok {
			for _, p := range procs[1:] {
				v := p.CurrentView()
				if v.ID != v0.ID || !v.Comp().Equal(want) {
					ok = false
					break
				}
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			var state string
			for _, p := range procs {
				v := p.CurrentView()
				state += fmt.Sprintf(" %v:%v%v", p.PID(), v.ID, v.Members)
			}
			return fmt.Errorf("experiments: convergence timeout; want %v, state:%s", want, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// eventually polls cond until true or timeout.
func eventually(timeout time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("experiments: timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// drain discards a process's events (for experiments that only watch
// CurrentView).
func drain(p *core.Process) {
	go func() {
		for range p.Events() {
		}
	}()
}
