package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps/repfile"
	"repro/internal/modes"
	"repro/internal/quorum"
)

// E6Row is one row of the churn-availability ablation: the paper's
// system model makes false suspicions indistinguishable from failures
// (§2), so every one costs a view change and a reconciliation round.
// This experiment injects false suspicions at a given rate into a
// five-replica quorum file and measures how much N-mode time (write
// availability) survives.
type E6Row struct {
	// MeanBetween is the mean time between injected false suspicions.
	MeanBetween time.Duration
	Enriched    bool
	// Injections actually performed during the window.
	Injections int
	// AvailabilityPct is the mean fraction of the window the replicas
	// spent in N-mode.
	AvailabilityPct float64
	// Reconciles across all replicas during the window.
	Reconciles int
}

// RunE6 measures one (rate, enriched) cell over the given window.
func RunE6(meanBetween, window time.Duration, enriched bool, timing Timing, seed int64) (E6Row, error) {
	row := E6Row{MeanBetween: meanBetween, Enriched: enriched}
	e := timing.newEnv(seed)
	defer e.close()
	const n = 5
	sites := make([]string, n)
	for i := range sites {
		sites[i] = siteName(i)
	}
	rw := quorum.MajorityRW(quorum.Uniform(sites...))
	cfg := repfile.Config{RW: rw, Enriched: enriched}

	files := make([]*repfile.File, 0, n)
	for _, s := range sites {
		f, err := repfile.Open(e.fabric, e.reg, s, timing.Options("e6", enriched), cfg)
		if err != nil {
			return row, err
		}
		defer f.Close()
		files = append(files, f)
	}
	if err := eventually(20*time.Second, "formation", func() bool {
		for _, f := range files {
			if f.Mode() != modes.Normal {
				return false
			}
		}
		return true
	}); err != nil {
		return row, err
	}

	// Baseline residency and reconcile counters.
	baseRes := make([]map[modes.Mode]time.Duration, n)
	baseRec := make([]int, n)
	for i, f := range files {
		baseRes[i] = f.ModeMachine().Residency()
		baseRec[i] = f.Stats().Reconciles
	}

	r := rand.New(rand.NewSource(seed))
	deadline := time.Now().Add(window)
	hold := 3 * timing.SuspectAfter
	for time.Now().Before(deadline) {
		// Exponential-ish spacing around the mean.
		gap := time.Duration(float64(meanBetween) * (0.5 + r.Float64()))
		time.Sleep(gap)
		if !time.Now().Before(deadline) {
			break
		}
		victim := files[r.Intn(n)]
		for _, f := range files {
			if f != victim {
				_ = f.Process().ForceSuspect(victim.Process().PID())
			}
		}
		row.Injections++
		time.Sleep(hold)
		for _, f := range files {
			if f != victim {
				_ = f.Process().Unforce(victim.Process().PID())
			}
		}
	}
	// Let the last churn settle before sampling.
	_ = eventually(20*time.Second, "stabilize", func() bool {
		for _, f := range files {
			if f.Mode() != modes.Normal {
				return false
			}
		}
		return true
	})

	var availability float64
	for i, f := range files {
		res := f.ModeMachine().Residency()
		dN := res[modes.Normal] - baseRes[i][modes.Normal]
		dR := res[modes.Reduced] - baseRes[i][modes.Reduced]
		dS := res[modes.Settling] - baseRes[i][modes.Settling]
		total := dN + dR + dS
		if total > 0 {
			availability += 100 * float64(dN) / float64(total)
		}
		row.Reconciles += f.Stats().Reconciles - baseRec[i]
	}
	row.AvailabilityPct = availability / float64(n)
	return row, nil
}

// E6Header is the column header line for E6 tables.
const E6Header = "mean gap | enriched | injections | availability %N | reconciles"

// String renders the row under E6Header.
func (r E6Row) String() string {
	return fmt.Sprintf("%8v | %8v | %10d | %15.1f | %10d",
		r.MeanBetween, r.Enriched, r.Injections, r.AvailabilityPct, r.Reconciles)
}
