package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/quorum"
	"repro/internal/sstate"
)

// E2Row is one row of experiment E2: the cost of classifying the shared
// state problem after a repair, flat views (announcement protocol, §4:
// "only through complex and costly protocols") versus enriched views
// (§6.2 local reasoning, zero messages).
type E2Row struct {
	N int
	// FlatMsgs is the number of point-to-point messages the flat
	// announcement round costs (n multicasts of n-1 packets each).
	FlatMsgs int
	// FlatLatency is the wall time from view installation until the
	// observing member's round completed.
	FlatLatency time.Duration
	// EnrichedMsgs is always zero (local reasoning).
	EnrichedMsgs int
	// EnrichedLatency is the pure computation time of the local
	// classification on the delivered enriched view.
	EnrichedLatency time.Duration
	// Agreement reports whether both classifiers returned the same kind.
	Agreement bool
	// Kind is the classified problem (a state transfer in this
	// scenario).
	Kind sstate.Kind
}

// RunE2 builds an n-member group, partitions one member away, heals, and
// classifies the resulting shared-state problem both ways at one of the
// up-to-date members.
func RunE2(n int, timing Timing, seed int64) (E2Row, error) {
	row := E2Row{N: n}
	if n < 3 {
		return row, fmt.Errorf("e2: need n >= 3, got %d", n)
	}
	e := timing.newEnv(seed)
	defer e.close()
	opts := timing.Options("e2", true)

	sites := make([]string, n)
	rwSites := make([]string, n)
	for i := range sites {
		sites[i] = siteName(i)
		rwSites[i] = sites[i]
	}
	rw := quorum.MajorityRW(quorum.Uniform(rwSites...))

	// The observer consumes its own event stream; the peers just run.
	type viewRec struct {
		view core.EView
		at   time.Time
	}
	var (
		mu      sync.Mutex
		views   []viewRec
		infos   []core.MsgEvent
		procs   []*core.Process
		mergedC = make(chan struct{}, 16)
	)
	observer, err := timing.Start(e.fabric, e.reg, sites[0], opts)
	if err != nil {
		return row, err
	}
	go func() {
		for ev := range observer.Events() {
			switch ee := ev.(type) {
			case core.ViewEvent:
				mu.Lock()
				views = append(views, viewRec{view: ee.EView, at: time.Now()})
				mu.Unlock()
				mergedC <- struct{}{}
			case core.MsgEvent:
				if sstate.IsInfo(ee.Payload) {
					mu.Lock()
					infos = append(infos, ee)
					mu.Unlock()
				}
			}
		}
	}()
	procs = append(procs, observer)
	// Peers: every peer answers classification rounds by announcing its
	// predecessor info at each view change (the flat protocol).
	for i := 1; i < n; i++ {
		p, err := timing.Start(e.fabric, e.reg, sites[i], opts)
		if err != nil {
			return row, err
		}
		procs = append(procs, p)
		go announceLoop(p, rw)
	}
	if err := waitConverged(procs, 15*time.Second); err != nil {
		return row, fmt.Errorf("formation: %w", err)
	}

	// Merge all subviews so the pre-partition group is one cluster.
	if err := mergeAll(observer, procs, 10*time.Second); err != nil {
		return row, err
	}

	// Partition the last member away and let both sides settle.
	victim := sites[n-1]
	rest := sites[:n-1]
	e.fabric.SetPartitions(rest, []string{victim})
	if err := waitConverged(procs[:n-1], 15*time.Second); err != nil {
		return row, fmt.Errorf("majority side: %w", err)
	}
	if err := waitConverged(procs[n-1:], 15*time.Second); err != nil {
		return row, fmt.Errorf("minority side: %w", err)
	}
	// Keep the majority one merged cluster even if an asymmetric
	// partition detection fragmented it transiently.
	if err := mergeAll(observer, procs[:n-1], 10*time.Second); err != nil {
		return row, err
	}

	// Heal; the merged view carries the transfer problem.
	e.fabric.Heal()
	if err := waitConverged(procs, 15*time.Second); err != nil {
		return row, fmt.Errorf("heal: %w", err)
	}
	mu.Lock()
	merged := views[len(views)-1]
	mu.Unlock()

	// Enriched classification: local, zero messages.
	wasN := func(cluster ids.PIDSet) bool { return rw.CanWrite(cluster) }
	startLocal := time.Now()
	enriched := sstate.ClassifyEnriched(merged.view, wasN)
	row.EnrichedLatency = time.Since(startLocal)
	row.EnrichedMsgs = 0
	row.Kind = enriched.Kind

	// Flat classification: the observer announces too (with its true
	// predecessor view, like the peers), then waits for the full round.
	proto := sstate.NewProtocol(merged.view)
	mu.Lock()
	var observerPred ids.ViewID
	if len(views) >= 2 {
		observerPred = views[len(views)-2].view.ID
	}
	mu.Unlock()
	payload, err := sstate.Announcement(observer.PID(), observerPred, modes.Normal)
	if err != nil {
		return row, err
	}
	if err := observer.Multicast(payload); err != nil {
		return row, fmt.Errorf("announce: %w", err)
	}
	var flat sstate.Classification
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		pending := infos
		infos = nil
		mu.Unlock()
		done := false
		for _, m := range pending {
			d, err := proto.Offer(m)
			if err != nil {
				return row, err
			}
			done = d
		}
		if done {
			flat, err = proto.Classify()
			if err != nil {
				return row, err
			}
			break
		}
		if time.Now().After(deadline) {
			return row, fmt.Errorf("flat round incomplete, missing %v", proto.Missing())
		}
		time.Sleep(time.Millisecond)
	}
	row.FlatLatency = time.Since(merged.at)
	row.FlatMsgs = n * (n - 1)
	row.Agreement = sameKind(flat, enriched)
	for _, p := range procs {
		p.Leave()
	}
	return row, nil
}

// sameKind compares classifier verdicts. The flat protocol reports the
// announced mode of the *current incarnations*; the enriched one reads
// structure. Both must name the same problem kind.
func sameKind(a, b sstate.Classification) bool { return a.Kind == b.Kind }

// announceLoop makes a peer answer every view change with its flat-
// protocol announcement. Peers that were in the quorum cluster announce
// Normal mode (they kept serving); for this experiment's scenario that
// is every member of the pre-partition group except a freshly isolated
// one, which is judged by its predecessor view size.
func announceLoop(p *core.Process, rw quorum.RW) {
	var prev core.EView
	for ev := range p.Events() {
		v, ok := ev.(core.ViewEvent)
		if !ok {
			continue
		}
		mode := modes.Reduced
		if prev.ID.IsZero() || rw.CanWrite(prev.Comp()) {
			mode = modes.Normal
		}
		if payload, err := sstate.Announcement(p.PID(), prev.ID, mode); err == nil {
			_ = p.Multicast(payload)
		}
		prev = v.EView
	}
}

// mergePair drives two specific members into one subview (leaving the
// rest of the structure untouched), retrying through view changes.
func mergePair(seqr, x, y *core.Process, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastReq time.Time
	for {
		v := seqr.CurrentView()
		svX, okX := v.Structure.SubviewOf(x.PID())
		svY, okY := v.Structure.SubviewOf(y.PID())
		if okX && okY && svX == svY {
			return nil
		}
		if okX && okY && time.Since(lastReq) > 200*time.Millisecond {
			lastReq = time.Now()
			ssX, _ := v.Structure.SVSetOf(svX)
			ssY, _ := v.Structure.SVSetOf(svY)
			if ssX != ssY {
				_ = seqr.SVSetMerge(ssX, ssY)
			} else {
				_ = seqr.SubviewMerge(svX, svY)
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mergePair: timeout (structure %v)", seqr.CurrentView().Structure)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// mergeAll drives the group's structure into a single subview.
func mergeAll(seqr *core.Process, procs []*core.Process, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		v := seqr.CurrentView()
		if v.Structure.NumSVSets() > 1 {
			_ = seqr.SVSetMerge(v.Structure.SVSets()...)
		} else if v.Structure.NumSubviews() > 1 {
			_ = seqr.SubviewMerge(v.Structure.Subviews()...)
		} else {
			allMerged := true
			for _, p := range procs {
				pv := p.CurrentView()
				if pv.Structure.NumSubviews() != 1 {
					allMerged = false
					break
				}
			}
			if allMerged {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("mergeAll: timeout (structure %v)", seqr.CurrentView().Structure)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// E2Header is the column header line for E2 tables.
const E2Header = "n | flat msgs | flat latency | enriched msgs | enriched latency | kinds agree | kind"

// String renders the row under E2Header.
func (r E2Row) String() string {
	return fmt.Sprintf("%2d | %9d | %12v | %13d | %16v | %11v | %v",
		r.N, r.FlatMsgs, r.FlatLatency.Round(100*time.Microsecond),
		r.EnrichedMsgs, r.EnrichedLatency.Round(100*time.Nanosecond),
		r.Agreement, r.Kind)
}
