package experiments

import (
	"testing"
	"time"
)

func TestE4Smoke(t *testing.T) {
	rows, err := RunE4(FastTiming(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s", r)
		if r.Detected != r.Expected {
			t.Errorf("%s: detected %v, expected %v", r.Scenario, r.Detected, r.Expected)
		}
	}
}

func TestE5Smoke(t *testing.T) {
	for _, enr := range []bool{false, true} {
		row, err := RunE5(4, enr, FastTiming(), 42)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s\n%s", E5Header, row)
	}
}

func TestF1Smoke(t *testing.T) {
	rows, err := RunF1(FastTiming(), 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(F1Header)
	for _, r := range rows {
		t.Logf("%s", r)
		if r.IllegalSteps != 0 {
			t.Errorf("site %s took %d illegal steps", r.Site, r.IllegalSteps)
		}
	}
}

func TestF2Smoke(t *testing.T) {
	rows, violations, err := RunF2(FastTiming(), 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(F2Header)
	for _, r := range rows {
		t.Logf("%s", r)
	}
	if violations != 0 {
		t.Errorf("%d property violations", violations)
	}
}

func TestF3Smoke(t *testing.T) {
	row, err := RunF3(5, FastTiming(), 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s\n%s", F3Header, row)
	if row.Violations != 0 {
		t.Errorf("%d property violations", row.Violations)
	}
}

func TestE6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("churn window is slow")
	}
	for _, gap := range []int{200, 600} {
		row, err := RunE6(time.Duration(gap)*time.Millisecond, 2*time.Second, true, FastTiming(), 42)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s\n%s", E6Header, row)
		if row.Injections == 0 {
			t.Error("no injections performed")
		}
	}
}
