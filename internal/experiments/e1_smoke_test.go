package experiments

import "testing"

func TestE1Smoke(t *testing.T) {
	row, err := RunE1(4, FastTiming(), 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s\n%s", E1Header, row)
}
