package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// E11Row summarizes one chaos soak cell: a batch of seeded fault plans
// (internal/chaos) run against live groups, every run gated through the
// tracecheck invariant suite and the reconvergence oracle. The paper's
// robustness claim is qualitative — view synchrony masks partitions,
// losses, and crashes behind view changes — so the cell's product is a
// count of oracle verdicts, not a latency curve: any violation or
// reconvergence timeout is a bug, and the failing seed reproduces it
// (`go run ./cmd/vschaos -seed <seed>`).
type E11Row struct {
	// Backend is the transport the cell ran over ("sim" or "udp").
	Backend string
	// Runs is how many generated plans ran; Failed is how many violated
	// an oracle (must be 0), and FailedSeeds lists their seeds.
	Runs        int
	Failed      int
	FailedSeeds []int64
	// Violations is the total tracecheck violation count across runs.
	Violations int
	// FaultCounts aggregates injections per fault kind across the cell
	// (the same numbers the chaos.fault_total.* counters carry).
	FaultCounts map[string]uint64
	// Post-fault reconvergence percentiles across runs: how long after
	// the last fault ceased until one full view contained every live
	// member.
	ReconvP50, ReconvP95, ReconvMax time.Duration
}

// RunE11 runs one soak cell: `runs` plans generated from consecutive
// seeds starting at `seed`, each against a fresh group on the profile's
// transport. The profile's observer is teed into every process (so
// vsbench -metrics / -trace-out see the runs) and its fault counters
// land in the observer's registry when it carries one.
func RunE11(runs int, timing Timing, seed int64) (E11Row, error) {
	row := E11Row{
		Backend:     transportOf(timing),
		Runs:        runs,
		FaultCounts: map[string]uint64{},
	}
	cfg := chaos.Config{
		Transport:      row.Backend,
		HeartbeatEvery: timing.HeartbeatEvery,
		SuspectAfter:   timing.SuspectAfter,
		Tick:           timing.Tick,
		ProposeTimeout: timing.ProposeTimeout,
		Observer:       timing.Observer,
		OnStart:        timing.OnStart,
	}
	// Fault counters (chaos.fault_total.*) go to the vsbench metrics
	// snapshot when the profile's observer is an obs.Collector over a
	// shared registry.
	if c, ok := timing.Observer.(interface{ Registry() *obs.Registry }); ok {
		cfg.Metrics = c.Registry()
	}

	var reconv []time.Duration
	for i := 0; i < runs; i++ {
		plan := chaos.Generate(seed+int64(i), chaos.GenConfig{})
		// Fresh environment per plan ⇒ fresh identifier space for trace
		// analysis.
		timing.MarkRun(fmt.Sprintf("e11-%s-seed%d", row.Backend, plan.Seed))
		res, err := chaos.Run(plan, cfg)
		if err != nil {
			return row, fmt.Errorf("e11: seed %d: %w", plan.Seed, err)
		}
		for k, n := range res.FaultCounts {
			row.FaultCounts[k] += n
		}
		if res.Failed() {
			row.Failed++
			row.FailedSeeds = append(row.FailedSeeds, plan.Seed)
			row.Violations += len(res.Violations)
			continue
		}
		reconv = append(reconv, res.ReconvergeIn)
	}
	sort.Slice(reconv, func(i, j int) bool { return reconv[i] < reconv[j] })
	if len(reconv) > 0 {
		row.ReconvP50 = reconv[len(reconv)/2]
		row.ReconvP95 = reconv[(len(reconv)*95)/100]
		row.ReconvMax = reconv[len(reconv)-1]
	}
	return row, nil
}

func transportOf(t Timing) string {
	if t.Transport == "" {
		return "sim"
	}
	return t.Transport
}

// E11Header is the column header line for E11 tables.
const E11Header = "backend | runs | failed | violations | injected | reconv p50 | reconv p95 | reconv max | faults by kind"

// String renders the row under E11Header.
func (r E11Row) String() string {
	total := uint64(0)
	kinds := make([]string, 0, len(r.FaultCounts))
	for k, n := range r.FaultCounts {
		total += n
		kinds = append(kinds, fmt.Sprintf("%s=%d", k, n))
	}
	sort.Strings(kinds)
	return fmt.Sprintf("%7s | %4d | %6d | %10d | %8d | %10v | %10v | %10v | %s",
		r.Backend, r.Runs, r.Failed, r.Violations, total,
		r.ReconvP50.Round(time.Millisecond), r.ReconvP95.Round(time.Millisecond),
		r.ReconvMax.Round(time.Millisecond), strings.Join(kinds, " "))
}
