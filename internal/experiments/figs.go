package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps/repfile"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/modes"
	"repro/internal/obs"
	"repro/internal/quorum"
)

// F1Row reports the Figure-1 reproduction: a quorum file object driven
// through a failure / repair / crash / recovery schedule, with the mode
// transitions taken and the time spent per mode at the most-affected
// replica.
type F1Row struct {
	Site        string
	Transitions map[modes.Transition]int
	Residency   map[modes.Mode]time.Duration
	// IllegalSteps counts observed steps outside the six Figure-1 edges
	// (must be zero; the machine enforces it, the experiment re-checks).
	IllegalSteps int
}

// RunF1 executes the schedule and returns one row per replica.
func RunF1(timing Timing, seed int64) ([]F1Row, error) {
	e := timing.newEnv(seed)
	defer e.close()
	const n = 5
	sites := make([]string, n)
	for i := range sites {
		sites[i] = siteName(i)
	}
	rw := quorum.MajorityRW(quorum.Uniform(sites...))
	cfg := repfile.Config{RW: rw, Enriched: true}

	files := make([]*repfile.File, 0, n)
	for _, s := range sites {
		f, err := repfile.Open(e.fabric, e.reg, s, timing.Options("f1", true), cfg)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	waitMode := func(fs []*repfile.File, want modes.Mode) error {
		return eventually(20*time.Second, fmt.Sprintf("mode %v", want), func() bool {
			for _, f := range fs {
				if f.Mode() != want {
					return false
				}
			}
			return true
		})
	}
	if err := waitMode(files, modes.Normal); err != nil {
		return nil, fmt.Errorf("formation: %w", err)
	}

	// Failure: partition the last two replicas into a minority.
	e.fabric.SetPartitions(sites[:3], sites[3:])
	if err := waitMode(files[3:], modes.Reduced); err != nil {
		return nil, fmt.Errorf("failure: %w", err)
	}
	// Repair: heal; the minority settles and reconciles.
	e.fabric.Heal()
	if err := waitMode(files, modes.Normal); err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	// Reconfigure: a crash + recovery expands the view with a fresh
	// incarnation that must settle (transfer) before N.
	files[2].Process().Crash()
	if err := waitMode(append(append([]*repfile.File{}, files[:2]...), files[3:]...), modes.Normal); err != nil {
		return nil, fmt.Errorf("crash absorb: %w", err)
	}
	rec, err := repfile.Open(e.fabric, e.reg, sites[2], timing.Options("f1", true), cfg)
	if err != nil {
		return nil, err
	}
	files[2] = rec
	if err := waitMode(files, modes.Normal); err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}

	legal := map[[2]modes.Mode]map[modes.Transition]bool{
		{modes.Normal, modes.Reduced}:    {modes.Failure: true},
		{modes.Normal, modes.Settling}:   {modes.Reconfigure: true},
		{modes.Reduced, modes.Settling}:  {modes.Repair: true},
		{modes.Settling, modes.Reduced}:  {modes.Failure: true},
		{modes.Settling, modes.Settling}: {modes.Reconfigure: true},
		{modes.Settling, modes.Normal}:   {modes.Reconcile: true},
	}
	rows := make([]F1Row, 0, n)
	for _, f := range files {
		m := f.ModeMachine()
		row := F1Row{
			Site:        f.Process().Site(),
			Transitions: m.Counts(),
			Residency:   m.Residency(),
		}
		for _, st := range m.History() {
			if !legal[[2]modes.Mode{st.From, st.To}][st.Label] {
				row.IllegalSteps++
			}
		}
		rows = append(rows, row)
		f.Close()
	}
	return rows, nil
}

// F1Header is the column header line for F1 tables.
const F1Header = "site | failure | repair | reconfigure | reconcile | illegal | %N | %R | %S"

// String renders the row under F1Header.
func (r F1Row) String() string {
	total := r.Residency[modes.Normal] + r.Residency[modes.Reduced] + r.Residency[modes.Settling]
	pct := func(m modes.Mode) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(r.Residency[m]) / float64(total)
	}
	return fmt.Sprintf("%-4s | %7d | %6d | %11d | %9d | %7d | %4.1f | %4.1f | %4.1f",
		r.Site,
		r.Transitions[modes.Failure], r.Transitions[modes.Repair],
		r.Transitions[modes.Reconfigure], r.Transitions[modes.Reconcile],
		r.IllegalSteps, pct(modes.Normal), pct(modes.Reduced), pct(modes.Settling))
}

// F2Row reports the Figure-2 reproduction: views, subviews and sv-sets
// across a partition and a merge, with the property checker's verdict.
type F2Row struct {
	Stage    string
	Members  int
	Subviews int
	SVSets   int
}

// RunF2 replays Figure 2's scenario (a partition splits a structured
// view; the merge preserves each side's grouping) and verifies P6.3 and
// every other property over the trace. It returns the stage rows and
// the number of checker violations (must be zero).
func RunF2(timing Timing, seed int64) ([]F2Row, int, error) {
	e := timing.newEnv(seed)
	defer e.close()
	rec := check.NewRecorder()
	opts := timing.Options("f2", true)
	opts.Observer = obs.Tee(opts.Observer, rec)

	const n = 6
	sites := make([]string, n)
	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		sites[i] = siteName(i)
		p, err := timing.Start(e.fabric, e.reg, sites[i], opts)
		if err != nil {
			return nil, 0, err
		}
		drain(p)
		procs = append(procs, p)
	}
	if err := waitConverged(procs, 15*time.Second); err != nil {
		return nil, 0, err
	}
	if err := mergeAll(procs[0], procs, 10*time.Second); err != nil {
		return nil, 0, err
	}
	var rows []F2Row
	snap := func(stage string, p *core.Process) {
		v := p.CurrentView()
		rows = append(rows, F2Row{
			Stage:    stage,
			Members:  v.Size(),
			Subviews: v.Structure.NumSubviews(),
			SVSets:   v.Structure.NumSVSets(),
		})
	}
	snap("formed+merged", procs[0])

	e.fabric.SetPartitions(sites[:4], sites[4:])
	if err := waitConverged(procs[:4], 15*time.Second); err != nil {
		return nil, 0, err
	}
	if err := waitConverged(procs[4:], 15*time.Second); err != nil {
		return nil, 0, err
	}
	// Each side re-merges after settling (asymmetric partition detection
	// may have fragmented it through transient singleton views).
	if err := mergeAll(procs[0], procs[:4], 10*time.Second); err != nil {
		return nil, 0, err
	}
	if err := mergeAll(procs[4], procs[4:], 10*time.Second); err != nil {
		return nil, 0, err
	}
	snap("left partition", procs[0])
	snap("right partition", procs[4])

	e.fabric.Heal()
	if err := waitConverged(procs, 15*time.Second); err != nil {
		return nil, 0, err
	}
	snap("merged", procs[0])
	for _, p := range procs {
		p.Leave()
	}
	time.Sleep(50 * time.Millisecond)
	violations := len(rec.Verify())
	return rows, violations, nil
}

// F2Header is the column header line for F2 tables.
const F2Header = "stage | members | subviews | sv-sets"

// String renders the row under F2Header.
func (r F2Row) String() string {
	return fmt.Sprintf("%-15s | %7d | %8d | %7d", r.Stage, r.Members, r.Subviews, r.SVSets)
}

// F3Row reports the Figure-3 reproduction: e-view changes within one
// view — an SV-SetMerge then a SubviewMerge — with the latency until all
// members applied each, and the checker's total-order verdict.
type F3Row struct {
	N int
	// SVSetMergeLatency / SubviewMergeLatency: request to group-wide
	// application.
	SVSetMergeLatency   time.Duration
	SubviewMergeLatency time.Duration
	// Violations counts property-checker findings (0 = P6.1/P6.2 held).
	Violations int
}

// RunF3 measures the row for group size n.
func RunF3(n int, timing Timing, seed int64) (F3Row, error) {
	row := F3Row{N: n}
	e := timing.newEnv(seed)
	defer e.close()
	rec := check.NewRecorder()
	opts := timing.Options("f3", true)
	opts.Observer = obs.Tee(opts.Observer, rec)

	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := timing.Start(e.fabric, e.reg, siteName(i), opts)
		if err != nil {
			return row, err
		}
		drain(p)
		procs = append(procs, p)
	}
	if err := waitConverged(procs, 15*time.Second); err != nil {
		return row, err
	}

	// mergeUntil issues the merge from the last member and waits until
	// every member's structure reflects it, re-requesting through
	// transient view changes (identifiers are view-scoped, so each retry
	// re-resolves them). Completion is judged structurally rather than by
	// the per-view change counter, which a spurious view change would
	// reset while preserving the merged grouping (P6.3).
	mergeUntil := func(svsets bool, what string, pred func(core.EView) bool) error {
		deadline := time.Now().Add(15 * time.Second)
		var lastReq time.Time
		for {
			done := true
			for _, p := range procs {
				if !pred(p.CurrentView()) {
					done = false
					break
				}
			}
			if done {
				return nil
			}
			if time.Since(lastReq) > 300*time.Millisecond {
				lastReq = time.Now()
				v := procs[n-1].CurrentView()
				if svsets {
					if sss := v.Structure.SVSets(); len(sss) >= 2 {
						_ = procs[n-1].SVSetMerge(sss...)
					}
				} else {
					if svs := v.Structure.Subviews(); len(svs) >= 2 {
						_ = procs[n-1].SubviewMerge(svs...)
					}
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("experiments: %s: timeout", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	start := time.Now()
	if err := mergeUntil(true, "sv-set merge", func(v core.EView) bool {
		return v.Structure.NumSVSets() == 1
	}); err != nil {
		return row, err
	}
	row.SVSetMergeLatency = time.Since(start)

	start = time.Now()
	if err := mergeUntil(false, "subview merge", func(v core.EView) bool {
		return v.Structure.NumSubviews() == 1
	}); err != nil {
		return row, err
	}
	row.SubviewMergeLatency = time.Since(start)

	for _, p := range procs {
		p.Leave()
	}
	time.Sleep(50 * time.Millisecond)
	row.Violations = len(rec.Verify())
	return row, nil
}

// F3Header is the column header line for F3 tables.
const F3Header = "n | sv-set merge latency | subview merge latency | checker violations"

// String renders the row under F3Header.
func (r F3Row) String() string {
	return fmt.Sprintf("%2d | %20v | %21v | %18d",
		r.N, r.SVSetMergeLatency.Round(100*time.Microsecond),
		r.SubviewMergeLatency.Round(100*time.Microsecond), r.Violations)
}
