package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gobject"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/obs"
	"repro/internal/quorum"
)

// E9Row is one cell of the mode-residency-under-churn sweep. The
// Figure-1 mode machine's R (reduced) mode is where a quorum object
// lands when its view loses the write quorum: reads still work,
// writes do not. How much wall time replicas actually spend reduced
// is the user-visible cost of partitions — this experiment cuts a
// two-member minority off a five-replica quorum object at a swept
// cadence and measures time-in-R from the mode.dwell_s.* histograms
// the hosts feed through gobject.Config.ModeObserver.
type E9Row struct {
	// MeanBetween is the pause between healing one partition and
	// cutting the next.
	MeanBetween time.Duration
	Enriched    bool
	// Partitions is the number of cut/heal cycles performed.
	Partitions int
	// REntries counts completed R-mode residencies across all replicas
	// (each minority replica that entered and left R once).
	REntries int
	// TimeInR is the total dwell across those residencies, MeanRDwell
	// the per-residency mean.
	TimeInR    time.Duration
	MeanRDwell time.Duration
	// ReducedPct is the mean percentage of the churn window a replica
	// spent in R (group-wide: total R dwell / (replicas × window)).
	ReducedPct float64
}

// e9Object is a minimal stateless quorum object: it exists to give the
// mode machine the replicated-file mode function (§5/§6.2) without any
// application state to reconcile, so mode residency is purely a
// function of membership and quorum.
type e9Object struct {
	rw       quorum.RW
	enriched bool
}

var errE9NoBulk = errors.New("e9: no bulk state")

func (o *e9Object) ModeFunc(self ids.PID) modes.Func {
	if o.enriched {
		return modes.QuorumEnriched(self, o.rw)
	}
	return modes.QuorumFlat(o.rw)
}
func (o *e9Object) WasNormal(cluster ids.PIDSet) bool   { return o.rw.CanWrite(cluster) }
func (o *e9Object) Snapshot() ([]byte, error)           { return []byte("{}"), nil }
func (o *e9Object) MergeSnapshot(ids.PID, []byte) error { return nil }
func (o *e9Object) Apply(core.MsgEvent)                 {}
func (o *e9Object) MarshalCritical() ([]byte, error)    { return nil, errE9NoBulk }
func (o *e9Object) MarshalBulk() ([]byte, error)        { return nil, errE9NoBulk }
func (o *e9Object) ApplyCritical([]byte) error          { return errE9NoBulk }
func (o *e9Object) ApplyBulk([]byte) error              { return errE9NoBulk }
func (o *e9Object) NeedPull(core.EView, map[ids.PID][]byte) (ids.PID, bool) {
	return ids.PID{}, false
}

// RunE9 measures one (cadence, enriched) cell over the given window.
func RunE9(meanBetween, window time.Duration, enriched bool, timing Timing, seed int64) (E9Row, error) {
	row := E9Row{MeanBetween: meanBetween, Enriched: enriched}
	e := timing.newEnv(seed)
	defer e.close()

	const n = 5
	sites := make([]string, n)
	for i := range sites {
		sites[i] = siteName(i)
	}
	rw := quorum.MajorityRW(quorum.Uniform(sites...))

	// All hosts share one cell registry; every mode transition lands in
	// the same mode.dwell_s.* histograms via the collector hook.
	cell := obs.NewRegistry()
	coll := obs.NewCollector(cell, nil)
	cfg := gobject.Config{
		Enriched:     enriched,
		ModeObserver: coll.OnModeStep,
		Metrics:      cell,
	}
	obj := func() *e9Object { return &e9Object{rw: rw, enriched: enriched} }

	hosts := make([]*gobject.Host, 0, n)
	for _, s := range sites {
		h, err := gobject.Open(e.fabric, e.reg, s, timing.Options("e9", enriched), cfg, obj())
		if err != nil {
			return row, err
		}
		defer h.Close()
		hosts = append(hosts, h)
	}
	allNormal := func() bool {
		for _, h := range hosts {
			if h.Mode() != modes.Normal {
				return false
			}
		}
		return true
	}
	if err := eventually(20*time.Second, "formation", allNormal); err != nil {
		return row, err
	}

	dwellR := obs.MetricModeDwellPrefix + modes.Reduced.String()
	base := cell.Snapshot().Histograms[dwellR]

	// Churn loop: cut a fixed two-member minority (loses the write
	// quorum → R), hold long enough for both sides to install their
	// partition views and dwell, heal, wait for the group to serve
	// again, pause for the swept cadence.
	hold := 4 * timing.SuspectAfter
	start := time.Now()
	deadline := start.Add(window)
	for time.Now().Before(deadline) {
		e.fabric.SetPartitions(sites[:2], sites[2:])
		row.Partitions++
		time.Sleep(hold)
		e.fabric.Heal()
		if err := eventually(20*time.Second, "re-formation", allNormal); err != nil {
			return row, err
		}
		time.Sleep(meanBetween)
	}
	elapsed := time.Since(start)

	// Dwell is recorded when a mode is LEFT; after re-formation every
	// R residency has closed, so the histogram delta is complete.
	cur := cell.Snapshot().Histograms[dwellR]
	row.REntries = int(cur.Count - base.Count)
	row.TimeInR = time.Duration((cur.Sum - base.Sum) * float64(time.Second))
	if row.REntries > 0 {
		row.MeanRDwell = row.TimeInR / time.Duration(row.REntries)
	}
	row.ReducedPct = 100 * float64(row.TimeInR) / (float64(n) * float64(elapsed))
	return row, nil
}

// E9Header is the column header line for E9 tables.
const E9Header = "cadence | enriched | partitions | R entries | time in R | mean R dwell | %replica-time in R"

// String renders the row under E9Header.
func (r E9Row) String() string {
	return fmt.Sprintf("%7v | %8v | %10d | %9d | %9v | %12v | %18.1f",
		r.MeanBetween, r.Enriched, r.Partitions, r.REntries,
		r.TimeInR.Round(time.Millisecond), r.MeanRDwell.Round(time.Millisecond),
		r.ReducedPct)
}
