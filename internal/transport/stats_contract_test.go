// Contract tests for the Stats snapshot-consistency semantics the
// transport seam documents (see stats.go): every backend must hand out
// point-in-time snapshots in which the totals equal the per-kind sums
// even while senders race, and a broadcast fan-out must be applied
// under one critical section so a snapshot never observes half of it.
// Both backends are exercised through the same harness: the
// deterministic simulator and the real-socket UDP transport.
package transport_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/transport/udp"
	"repro/internal/transport/wire"
)

// backends returns the transports under contract test, freshly built.
func backends(t *testing.T) map[string]transport.Transport {
	t.Helper()
	sim := simnet.New(simnet.Config{Seed: 7})
	u := udp.New(udp.Config{})
	t.Cleanup(sim.Close)
	t.Cleanup(u.Close)
	return map[string]transport.Transport{"simnet": sim, "udp": u}
}

func pid(i int) ids.PID { return ids.PID{Site: fmt.Sprintf("s%d", i), Inc: 1} }

func hbFrom(p ids.PID) wire.Heartbeat {
	return wire.Heartbeat{Group: "g", From: p, View: ids.ViewID{Epoch: 1, Coord: p}}
}

func dataFrom(p ids.PID, seq uint64) wire.Data {
	return wire.Data{
		Group: "g", ID: ids.MsgID{Sender: p, Seq: seq},
		View: ids.ViewID{Epoch: 1, Coord: p}, Payload: []byte("payload"),
	}
}

// sumKinds totals a per-kind map.
func sumKinds(m map[string]uint64) uint64 {
	var s uint64
	for _, v := range m {
		s += v
	}
	return s
}

// checkConsistent asserts the intra-snapshot invariants of the Stats
// contract on one snapshot.
func checkConsistent(t *testing.T, s transport.Stats, ctx string) {
	t.Helper()
	if got := sumKinds(s.PerKind); got != s.Sent {
		t.Errorf("%s: Sent = %d but Σ PerKind = %d", ctx, s.Sent, got)
	}
	if got := sumKinds(s.PerKindBytes); got != s.BytesSent {
		t.Errorf("%s: BytesSent = %d but Σ PerKindBytes = %d", ctx, s.BytesSent, got)
	}
	if got := sumKinds(s.PerKindDelivered); got != s.Delivered {
		t.Errorf("%s: Delivered = %d but Σ PerKindDelivered = %d", ctx, s.Delivered, got)
	}
	if got := sumKinds(s.PerKindPiggyback); got != s.Piggybacked {
		t.Errorf("%s: Piggybacked = %d but Σ PerKindPiggyback = %d", ctx, s.Piggybacked, got)
	}
	if s.Delivered+s.Dropped() > s.Sent {
		t.Errorf("%s: Delivered (%d) + Dropped (%d) > Sent (%d)",
			ctx, s.Delivered, s.Dropped(), s.Sent)
	}
}

// drainAll keeps endpoints' inboxes empty so delivery counters advance
// (the UDP backend drops into bounded queues). Returns a stop func.
func drainAll(eps []transport.Endpoint) func() {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep transport.Endpoint) {
			defer wg.Done()
			for {
				for {
					if _, ok := ep.TryRecv(); !ok {
						break
					}
				}
				select {
				case <-stop:
					return
				case <-ep.Wait():
				case <-time.After(time.Millisecond):
				}
			}
		}(ep)
	}
	return func() { close(stop); wg.Wait() }
}

// TestStatsSnapshotConsistency hammers each backend with concurrent
// unicast + broadcast traffic of two kinds while a racing reader takes
// snapshots; every snapshot must satisfy totals == per-kind sums.
func TestStatsSnapshotConsistency(t *testing.T) {
	const (
		nProcs = 4
		rounds = 200
	)
	for name, tr := range backends(t) {
		t.Run(name, func(t *testing.T) {
			eps := make([]transport.Endpoint, nProcs)
			for i := range eps {
				ep, err := tr.Attach(pid(i))
				if err != nil {
					t.Fatalf("Attach: %v", err)
				}
				eps[i] = ep
			}
			stopDrain := drainAll(eps)
			defer stopDrain()

			// Racing snapshot reader.
			stopRead := make(chan struct{})
			var readerWG sync.WaitGroup
			readerWG.Add(1)
			snapshots := 0
			go func() {
				defer readerWG.Done()
				for {
					select {
					case <-stopRead:
						return
					default:
					}
					checkConsistent(t, tr.Stats(), "mid-traffic snapshot")
					snapshots++
					// Yield between snapshots: the point is racing
					// reads, not a spin-loop starving the senders
					// (and, under -race, the rest of the test tree).
					time.Sleep(50 * time.Microsecond)
				}
			}()

			var wg sync.WaitGroup
			for i, ep := range eps {
				wg.Add(1)
				go func(i int, ep transport.Endpoint) {
					defer wg.Done()
					self := pid(i)
					for r := 0; r < rounds; r++ {
						ep.Broadcast(hbFrom(self))
						ep.Send(pid((i+1)%nProcs), dataFrom(self, uint64(r+1)))
					}
				}(i, ep)
			}
			wg.Wait()
			close(stopRead)
			readerWG.Wait()
			if snapshots == 0 {
				t.Error("snapshot reader never ran")
			}

			// Final snapshot: everything sent is accounted for, and the
			// sent side is exact — per sender: rounds broadcasts of
			// fan-out (n-1) plus rounds unicasts. A payload the backend
			// coalesced onto another packet counts in Piggybacked rather
			// than Sent (see the Stats contract), so the exact counts
			// hold for the sum of the two.
			final := tr.Stats()
			checkConsistent(t, final, "final snapshot")
			wantSent := uint64(nProcs * rounds * ((nProcs - 1) + 1))
			if got := final.Sent + final.Piggybacked; got != wantSent {
				t.Errorf("final Sent+Piggybacked = %d, want %d", got, wantSent)
			}
			wantHB := uint64(nProcs * rounds * (nProcs - 1))
			if got := final.PerKind["hb"] + final.PerKindPiggyback["hb"]; got != wantHB {
				t.Errorf("PerKind[hb]+PerKindPiggyback[hb] = %d, want %d", got, wantHB)
			}
			if got := final.PerKind["data"] + final.PerKindPiggyback["data"]; got != uint64(nProcs*rounds) {
				t.Errorf("PerKind[data]+PerKindPiggyback[data] = %d, want %d", got, nProcs*rounds)
			}
		})
	}
}

// TestStatsBroadcastAtomicFanOut sends only broadcasts, so in every
// snapshot the sent counter must be a multiple of the fan-out degree —
// a snapshot taken inside a fan-out's critical section would break the
// divisibility.
func TestStatsBroadcastAtomicFanOut(t *testing.T) {
	const (
		nProcs = 4
		rounds = 300
		fanOut = nProcs - 1
	)
	for name, tr := range backends(t) {
		t.Run(name, func(t *testing.T) {
			eps := make([]transport.Endpoint, nProcs)
			for i := range eps {
				ep, err := tr.Attach(pid(i))
				if err != nil {
					t.Fatalf("Attach: %v", err)
				}
				eps[i] = ep
			}
			stopDrain := drainAll(eps)
			defer stopDrain()

			stopRead := make(chan struct{})
			var readerWG sync.WaitGroup
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				for {
					select {
					case <-stopRead:
						return
					default:
					}
					s := tr.Stats()
					if (s.Sent+s.Piggybacked)%fanOut != 0 {
						t.Errorf("snapshot observed a partial fan-out: Sent+Piggybacked = %d not divisible by %d",
							s.Sent+s.Piggybacked, fanOut)
						return
					}
					time.Sleep(50 * time.Microsecond)
				}
			}()

			var wg sync.WaitGroup
			for i, ep := range eps {
				wg.Add(1)
				go func(i int, ep transport.Endpoint) {
					defer wg.Done()
					self := pid(i)
					for r := 0; r < rounds; r++ {
						ep.Broadcast(hbFrom(self))
					}
				}(i, ep)
			}
			wg.Wait()
			close(stopRead)
			readerWG.Wait()

			final := tr.Stats()
			if want := uint64(nProcs * rounds * fanOut); final.Sent+final.Piggybacked != want {
				t.Errorf("final Sent+Piggybacked = %d, want %d", final.Sent+final.Piggybacked, want)
			}
		})
	}
}

// TestStatsSnapshotOwnership verifies the deep-copy half of the
// contract: mutating a returned snapshot must not affect the
// transport, and later traffic must not affect the snapshot. Also
// covers ResetStats zeroing the per-kind maps without touching earlier
// snapshots.
func TestStatsSnapshotOwnership(t *testing.T) {
	for name, tr := range backends(t) {
		t.Run(name, func(t *testing.T) {
			a, err := tr.Attach(pid(0))
			if err != nil {
				t.Fatalf("Attach: %v", err)
			}
			if _, err := tr.Attach(pid(1)); err != nil {
				t.Fatalf("Attach: %v", err)
			}
			a.Broadcast(hbFrom(pid(0)))

			snap := tr.Stats()
			if snap.Sent != 1 || snap.PerKind["hb"] != 1 {
				t.Fatalf("snapshot after one broadcast = %+v", snap)
			}
			// Mutating the snapshot's maps must not leak into the
			// transport.
			snap.PerKind["hb"] = 99
			snap.PerKindBytes["hb"] = 99
			if s := tr.Stats(); s.PerKind["hb"] != 1 {
				t.Errorf("snapshot mutation leaked into transport: %+v", s)
			}
			// Later traffic must not show up in the old snapshot.
			a.Broadcast(hbFrom(pid(0)))
			if snap.Sent != 1 {
				t.Errorf("old snapshot changed by later traffic: %+v", snap)
			}

			before := tr.Stats()
			tr.ResetStats()
			zero := tr.Stats()
			if zero.Sent != 0 || zero.BytesSent != 0 || len(zero.PerKind) != 0 && sumKinds(zero.PerKind) != 0 {
				t.Errorf("after ResetStats: %+v", zero)
			}
			if before.Sent != 2 {
				t.Errorf("pre-reset snapshot affected by reset: %+v", before)
			}
		})
	}
}
