package transport

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
)

// Action is what a FaultFilter verdict tells the filter to do with one
// packet.
type Action int

// The verdict actions.
const (
	// ActPass lets the packet through untouched.
	ActPass Action = iota
	// ActDrop loses the packet: it never enters the inner transport,
	// exactly as if the asynchronous network had eaten it.
	ActDrop
	// ActDuplicate sends the packet twice back to back, modeling the
	// duplicate delivery an unreliable datagram network may produce.
	ActDuplicate
	// ActDelay holds the packet for the verdict's duration before
	// sending it, inducing reordering against packets that pass
	// straight through.
	ActDelay
)

// Verdict is a FaultPredicate's decision for one packet: the action
// plus, for ActDelay, how long to hold it. Build verdicts with Pass,
// Drop, Duplicate, and Delay; the zero Verdict passes.
type Verdict struct {
	Act  Action
	Hold time.Duration
}

// Pass returns the pass-through verdict (also the zero Verdict).
func Pass() Verdict { return Verdict{} }

// Drop returns the drop verdict.
func Drop() Verdict { return Verdict{Act: ActDrop} }

// Duplicate returns the duplicate verdict.
func Duplicate() Verdict { return Verdict{Act: ActDuplicate} }

// Delay returns a delay verdict holding the packet for d. A
// non-positive d passes.
func Delay(d time.Duration) Verdict {
	if d <= 0 {
		return Verdict{}
	}
	return Verdict{Act: ActDelay, Hold: d}
}

// FaultPredicate decides one packet's fate. Broadcasts are expanded to
// per-destination decisions (see FaultFilter.Broadcast), so `to` is
// always a concrete destination while the filter is armed.
type FaultPredicate func(from, to ids.PID, payload any) Verdict

// FaultFilter generalizes DropFilter: a send-time fault predicate whose
// verdict is pass, drop, duplicate, or delay(d), working identically
// over the simulator and real UDP. It is the injection surface of the
// chaos harness (internal/chaos): one armed predicate composes an
// entire fault schedule — partitions expressed as directional drops,
// kind-targeted loss bursts, duplicate storms, reorder-inducing delay
// spikes.
//
// Unlike DropFilter, an armed FaultFilter expands every Broadcast into
// per-destination unicast sends over the endpoints attached through the
// filter (in sorted PID order, for determinism), so the predicate sees
// a concrete destination for every packet and one-way cuts apply to
// heartbeat broadcasts too. The expansion bypasses the inner
// transport's broadcast path (and therefore simnet's heartbeat
// piggybacking) while armed; disarmed, broadcasts pass straight
// through. Chaos runs attach every process through the filter, so the
// expansion reaches exactly the group.
//
// Delayed and duplicated sends go to the inner transport asynchronously
// (time.AfterFunc); both backends tolerate sends after endpoint detach
// or transport close as silent drops, so a delayed packet outliving its
// sender is safe — and realistic.
//
// The zero predicate (no Arm call) passes everything through.
type FaultFilter struct {
	inner Transport

	mu   sync.Mutex
	pred FaultPredicate
	eps  map[ids.PID]Endpoint // attached through this filter, for broadcast expansion

	dropped    atomic.Uint64
	duplicated atomic.Uint64
	delayed    atomic.Uint64
}

// NewFaultFilter wraps inner. The returned filter also implements
// Partitioner when inner does, forwarding the calls.
func NewFaultFilter(inner Transport) *FaultFilter {
	return &FaultFilter{inner: inner, eps: make(map[ids.PID]Endpoint)}
}

// Arm installs the fault predicate; nil disarms. Re-arming replaces the
// predicate atomically with respect to in-flight sends; the cumulative
// counters are never reset.
func (f *FaultFilter) Arm(pred FaultPredicate) {
	f.mu.Lock()
	f.pred = pred
	f.mu.Unlock()
}

// Disarm removes the predicate; subsequent sends pass through.
func (f *FaultFilter) Disarm() { f.Arm(nil) }

// Dropped returns how many packets the filter has dropped since
// creation (never reset).
func (f *FaultFilter) Dropped() uint64 { return f.dropped.Load() }

// Duplicated returns how many packets the filter has duplicated.
func (f *FaultFilter) Duplicated() uint64 { return f.duplicated.Load() }

// Delayed returns how many packets the filter has delayed.
func (f *FaultFilter) Delayed() uint64 { return f.delayed.Load() }

// verdict evaluates the predicate for one packet under the filter lock,
// so predicates may keep unguarded state (the chaos engine's seeded
// RNG relies on this serialization).
func (f *FaultFilter) verdict(from, to ids.PID, payload any) Verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pred == nil {
		return Verdict{}
	}
	return f.pred(from, to, payload)
}

// apply executes a verdict for one packet using send to reach the inner
// transport.
func (f *FaultFilter) apply(v Verdict, send func()) {
	switch v.Act {
	case ActDrop:
		f.dropped.Add(1)
	case ActDuplicate:
		f.duplicated.Add(1)
		send()
		send()
	case ActDelay:
		f.delayed.Add(1)
		time.AfterFunc(v.Hold, send)
	default:
		send()
	}
}

// Attach implements Transport, recording the endpoint for broadcast
// expansion.
func (f *FaultFilter) Attach(pid ids.PID) (Endpoint, error) {
	ep, err := f.inner.Attach(pid)
	if err != nil {
		return nil, err
	}
	fe := &faultEndpoint{Endpoint: ep, f: f}
	f.mu.Lock()
	f.eps[pid] = ep
	f.mu.Unlock()
	return fe, nil
}

// forget drops a detached endpoint from the broadcast-expansion set.
func (f *FaultFilter) forget(pid ids.PID) {
	f.mu.Lock()
	delete(f.eps, pid)
	f.mu.Unlock()
}

// peersOf snapshots the expansion destinations for a broadcast from
// `from`, sorted for determinism.
func (f *FaultFilter) peersOf(from ids.PID) []ids.PID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ids.PID, 0, len(f.eps))
	for pid := range f.eps {
		if pid != from {
			out = append(out, pid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// armed reports whether a predicate is installed.
func (f *FaultFilter) armed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pred != nil
}

// Close implements Transport.
func (f *FaultFilter) Close() { f.inner.Close() }

// Stats implements Transport. Filter faults are not folded into the
// inner transport's counters; use Dropped/Duplicated/Delayed for the
// filter's own counts.
func (f *FaultFilter) Stats() Stats { return f.inner.Stats() }

// ResetStats implements Transport.
func (f *FaultFilter) ResetStats() { f.inner.ResetStats() }

// SetPartitions implements Partitioner when the inner transport does;
// it is a no-op otherwise.
func (f *FaultFilter) SetPartitions(components ...[]string) {
	if p, ok := f.inner.(Partitioner); ok {
		p.SetPartitions(components...)
	}
}

// Heal implements Partitioner when the inner transport does.
func (f *FaultFilter) Heal() {
	if p, ok := f.inner.(Partitioner); ok {
		p.Heal()
	}
}

// Reachable implements Partitioner; without an inner Partitioner every
// pair is reachable.
func (f *FaultFilter) Reachable(a, b string) bool {
	if p, ok := f.inner.(Partitioner); ok {
		return p.Reachable(a, b)
	}
	return true
}

// faultEndpoint intercepts sends; everything else passes through.
type faultEndpoint struct {
	Endpoint
	f *FaultFilter
}

func (e *faultEndpoint) Send(to ids.PID, payload any) {
	v := e.f.verdict(e.PID(), to, payload)
	e.f.apply(v, func() { e.Endpoint.Send(to, payload) })
}

// Broadcast expands to per-destination sends while the filter is armed
// (see FaultFilter); disarmed, it passes through the inner broadcast
// path untouched.
func (e *faultEndpoint) Broadcast(payload any) {
	if !e.f.armed() {
		e.Endpoint.Broadcast(payload)
		return
	}
	from := e.PID()
	for _, to := range e.f.peersOf(from) {
		to := to
		v := e.f.verdict(from, to, payload)
		e.f.apply(v, func() { e.Endpoint.Send(to, payload) })
	}
}

func (e *faultEndpoint) Detach() {
	e.f.forget(e.PID())
	e.Endpoint.Detach()
}
