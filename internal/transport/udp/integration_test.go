package udp_test

// End-to-end proof that the view-synchrony stack is transport-oblivious:
// the full protocol — bootstrap, multicast traffic, a partition/heal
// cycle, and totally ordered e-view changes merging the structure back —
// runs over real loopback UDP sockets, and the recorded trace passes the
// same offline invariant suite (internal/tracecheck) the simulator runs
// are held to.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/stable"
	"repro/internal/tracecheck"
	"repro/internal/transport/udp"
)

func simOptions(group string, observer core.Observer) core.Options {
	return core.Options{
		Group:          group,
		HeartbeatEvery: core.SimHeartbeatEvery,
		SuspectAfter:   core.SimSuspectAfter,
		Tick:           core.SimTick,
		ProposeTimeout: core.SimProposeTimeout,
		Enriched:       true,
		LogViews:       true,
		Observer:       observer,
	}
}

func converged(procs []*core.Process) bool {
	want := make(ids.PIDSet, len(procs))
	for _, p := range procs {
		want.Add(p.PID())
	}
	v0 := procs[0].CurrentView()
	if !v0.Comp().Equal(want) {
		return false
	}
	for _, p := range procs[1:] {
		v := p.CurrentView()
		if v.ID != v0.ID || !v.Comp().Equal(want) {
			return false
		}
	}
	return true
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestThreeProcessViewChangesOverUDP(t *testing.T) {
	tr := udp.New(udp.Config{})
	defer tr.Close()
	reg := stable.NewRegistry()
	mem := obs.NewMemorySink()
	opts := simOptions("udpe2e", obs.NewCollector(obs.NewRegistry(), obs.NewTracer(0, mem)))

	const n = 3
	procs := make([]*core.Process, 0, n)
	for i := 0; i < n; i++ {
		p, err := core.Start(tr, reg, string(rune('a'+i)), opts)
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		go func() {
			for range p.Events() {
			}
		}()
		procs = append(procs, p)
	}

	// Bootstrap: the three singletons must agree on one 3-member view
	// purely over sockets.
	waitFor(t, 30*time.Second, "bootstrap convergence", func() bool { return converged(procs) })

	// Traffic: every member multicasts; everyone delivers everything.
	const msgs = 20
	for i := 0; i < msgs; i++ {
		for _, p := range procs {
			if err := p.Multicast([]byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Fatalf("Multicast: %v", err)
			}
		}
	}
	waitFor(t, 30*time.Second, "traffic delivery", func() bool {
		for _, p := range procs {
			if p.Stats().MsgsDelivered < uint64(n*msgs) {
				return false
			}
		}
		return true
	})

	// Partition/heal: isolate site a; both sides must install reduced
	// views, then merge back after the heal.
	tr.SetPartitions([]string{"a"}, []string{"b", "c"})
	waitFor(t, 30*time.Second, "partition views", func() bool {
		if procs[0].CurrentView().Size() != 1 {
			return false
		}
		v1, v2 := procs[1].CurrentView(), procs[2].CurrentView()
		return v1.Size() == 2 && v1.ID == v2.ID
	})
	tr.Heal()
	waitFor(t, 30*time.Second, "post-heal convergence", func() bool { return converged(procs) })

	// Totally ordered e-changes: drive the partition-scarred structure
	// back into a single subview via SVSet and subview merges.
	before := procs[0].Stats().EChangesApplied
	seqr := procs[0]
	waitFor(t, 30*time.Second, "structure merge", func() bool {
		v := seqr.CurrentView()
		if v.Structure.NumSVSets() > 1 {
			_ = seqr.SVSetMerge(v.Structure.SVSets()...)
			return false
		}
		if v.Structure.NumSubviews() > 1 {
			_ = seqr.SubviewMerge(v.Structure.Subviews()...)
			return false
		}
		for _, p := range procs {
			if p.CurrentView().Structure.NumSubviews() != 1 {
				return false
			}
		}
		return true
	})
	if procs[0].Stats().EChangesApplied == before {
		t.Fatal("merge completed without applying any e-changes")
	}

	for _, p := range procs {
		p.Leave()
	}
	for _, p := range procs {
		<-p.Done()
	}

	// The socket run must satisfy the same offline invariants as the
	// simulator runs: view agreement, e-change total order, structure
	// survival, mode legality, flush discipline.
	rep := tracecheck.Check(mem.Events())
	if !rep.OK() {
		t.Fatalf("tracecheck violations over UDP:\n%v", rep)
	}
	if st := tr.Stats(); st.Sent == 0 || st.Delivered == 0 {
		t.Fatalf("suspicious transport stats: %+v", st)
	}
}
