package udp

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

var (
	pa = ids.PID{Site: "a", Inc: 1}
	pb = ids.PID{Site: "b", Inc: 1}
	pc = ids.PID{Site: "c", Inc: 1}
)

func newTransport(t *testing.T, cfg Config) *Transport {
	t.Helper()
	tr := New(cfg)
	t.Cleanup(tr.Close)
	return tr
}

func attach(t *testing.T, tr *Transport, pid ids.PID) transport.Endpoint {
	t.Helper()
	ep, err := tr.Attach(pid)
	if err != nil {
		t.Fatalf("Attach(%v): %v", pid, err)
	}
	return ep
}

func recvWithin(t *testing.T, ep transport.Endpoint, d time.Duration) (transport.Message, bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if m, ok := ep.TryRecv(); ok {
			return m, true
		}
		if time.Now().After(deadline) {
			return transport.Message{}, false
		}
		select {
		case <-ep.Wait():
		case <-time.After(time.Millisecond):
		}
	}
}

func hb(from ids.PID) wire.Heartbeat {
	return wire.Heartbeat{Group: "g", From: from, View: ids.ViewID{Epoch: 1, Coord: from}}
}

func data(from ids.PID, seq uint64, payload []byte) wire.Data {
	return wire.Data{
		Group: "g", ID: ids.MsgID{Sender: from, Seq: seq},
		View: ids.ViewID{Epoch: 1, Coord: from}, Payload: payload,
	}
}

func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUnicastRoundTrip(t *testing.T) {
	tr := newTransport(t, Config{})
	a := attach(t, tr, pa)
	b := attach(t, tr, pb)

	want := data(pa, 7, []byte("over the wire"))
	a.Send(pb, want)
	m, ok := recvWithin(t, b, 2*time.Second)
	if !ok {
		t.Fatal("datagram not delivered")
	}
	if m.From != pa || m.To != pb || m.Kind != "data" {
		t.Fatalf("envelope = %+v", m)
	}
	got, ok := m.Payload.(wire.Data)
	if !ok || got.ID != want.ID || string(got.Payload) != string(want.Payload) {
		t.Fatalf("payload = %#v", m.Payload)
	}
	s := tr.Stats()
	if s.Sent != 1 || s.Delivered != 1 || s.PerKind["data"] != 1 || s.PerKindDelivered["data"] != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	tr := newTransport(t, Config{})
	a := attach(t, tr, pa)
	b := attach(t, tr, pb)
	c := attach(t, tr, pc)

	a.Broadcast(hb(pa))
	for _, ep := range []transport.Endpoint{b, c} {
		m, ok := recvWithin(t, ep, 2*time.Second)
		if !ok {
			t.Fatalf("%v: broadcast not delivered", ep.PID())
		}
		if m.Kind != "hb" || m.From != pa {
			t.Fatalf("%v: got %+v", ep.PID(), m)
		}
	}
	if _, ok := a.TryRecv(); ok {
		t.Fatal("sender received its own broadcast")
	}
	if s := tr.Stats(); s.Sent != 2 {
		t.Fatalf("Sent = %d, want 2 (fan-out of 2)", s.Sent)
	}
}

func TestOversizeDropped(t *testing.T) {
	reg := obs.NewRegistry()
	tr := newTransport(t, Config{Metrics: reg})
	a := attach(t, tr, pa)
	b := attach(t, tr, pb)

	a.Send(pb, data(pa, 1, make([]byte, wire.MaxFrame+1)))
	eventually(t, 2*time.Second, "oversize drop", func() bool {
		return tr.Stats().DroppedOversize == 1
	})
	if got := reg.Counter(MetricDropOversize).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricDropOversize, got)
	}
	// The fat packet must not arrive; a normal one after it must.
	a.Send(pb, data(pa, 2, []byte("small")))
	m, ok := recvWithin(t, b, 2*time.Second)
	if !ok {
		t.Fatal("follow-up packet not delivered")
	}
	if d := m.Payload.(wire.Data); d.ID.Seq != 2 {
		t.Fatalf("delivered seq %d, want 2", d.ID.Seq)
	}
}

func TestOverflowDropped(t *testing.T) {
	tr := newTransport(t, Config{RecvQueue: 2})
	a := attach(t, tr, pa)
	attach(t, tr, pb)

	const sends = 20
	for i := 0; i < sends; i++ {
		a.Send(pb, data(pa, uint64(i), []byte("x")))
	}
	// Nobody drains pb's inbox: once it holds RecvQueue messages the
	// rest must be dropped as overflow, not queued unboundedly.
	eventually(t, 5*time.Second, "overflow accounting", func() bool {
		s := tr.Stats()
		return s.Delivered+s.DroppedOverflow == sends
	})
	s := tr.Stats()
	if s.Delivered != 2 {
		t.Fatalf("Delivered = %d, want 2 (the queue bound)", s.Delivered)
	}
	if s.DroppedOverflow != sends-2 {
		t.Fatalf("DroppedOverflow = %d, want %d", s.DroppedOverflow, sends-2)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	tr := newTransport(t, Config{})
	a := attach(t, tr, pa)
	b := attach(t, tr, pb)

	tr.SetPartitions([]string{"a"}, []string{"b"})
	if tr.Reachable("a", "b") {
		t.Fatal("partitioned sites reported reachable")
	}
	a.Send(pb, data(pa, 1, []byte("blocked")))
	eventually(t, 2*time.Second, "partition drop", func() bool {
		return tr.Stats().DroppedPartition >= 1
	})
	if _, ok := recvWithin(t, b, 50*time.Millisecond); ok {
		t.Fatal("message crossed the partition")
	}

	tr.Heal()
	if !tr.Reachable("a", "b") {
		t.Fatal("healed sites reported unreachable")
	}
	a.Send(pb, data(pa, 2, []byte("open")))
	if _, ok := recvWithin(t, b, 2*time.Second); !ok {
		t.Fatal("message not delivered after heal")
	}
}

func TestDeadDestinationDropped(t *testing.T) {
	tr := newTransport(t, Config{})
	a := attach(t, tr, pa)

	a.Send(ids.PID{Site: "z", Inc: 1}, hb(pa))
	if s := tr.Stats(); s.DroppedDead != 1 || s.Sent != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAddrAndAddPeer(t *testing.T) {
	tr := newTransport(t, Config{})
	attach(t, tr, pa)
	if tr.Addr(pa) == "" {
		t.Fatal("Addr empty for attached endpoint")
	}
	if tr.Addr(pb) != "" {
		t.Fatal("Addr non-empty for unknown pid")
	}
	if err := tr.AddPeer(pb, "127.0.0.1:9"); err != nil {
		t.Fatalf("AddPeer: %v", err)
	}
	// Addr reports locally attached endpoints only, but the registered
	// peer is now routable: a send to it is not a dead-destination drop.
	if tr.Addr(pb) != "" {
		t.Fatalf("Addr(pb) = %q, want \"\" (pb is remote)", tr.Addr(pb))
	}
	a := attach(t, tr, pc)
	a.Send(pb, hb(pc))
	if s := tr.Stats(); s.DroppedDead != 0 || s.Sent != 1 {
		t.Fatalf("send to registered peer: stats = %+v", s)
	}
	if err := tr.AddPeer(pc, "not an address"); err == nil {
		t.Fatal("AddPeer accepted a bad address")
	}
}

func TestCoalescingPacksFramesIntoDatagrams(t *testing.T) {
	reg := obs.NewRegistry()
	tr := newTransport(t, Config{Metrics: reg, FlushEvery: 2 * time.Millisecond})
	a := attach(t, tr, pa)
	b := attach(t, tr, pb)

	const sends = 50
	for i := 0; i < sends; i++ {
		a.Send(pb, data(pa, uint64(i), []byte("tiny")))
	}
	for i := 0; i < sends; i++ {
		if _, ok := recvWithin(t, b, 2*time.Second); !ok {
			t.Fatalf("message %d not delivered", i)
		}
	}
	// Back-to-back tiny sends within the flush window must share
	// datagrams — strictly fewer datagrams than messages.
	if dg := reg.Counter(MetricDatagramsSent).Value(); dg >= sends {
		t.Fatalf("datagrams sent = %d for %d messages; coalescing did nothing", dg, sends)
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	tr := newTransport(t, Config{})
	a := attach(t, tr, pa)
	b := attach(t, tr, pb)

	b.Detach()
	if !b.Closed() {
		t.Fatal("detached endpoint not closed")
	}
	a.Send(pb, hb(pa))
	eventually(t, 2*time.Second, "drop to detached peer", func() bool {
		s := tr.Stats()
		return s.DroppedDead+s.DroppedOverflow >= 1 || s.Sent == 1 && s.Delivered == 0
	})
	if s := tr.Stats(); s.Delivered != 0 {
		t.Fatalf("delivered to a detached endpoint: %+v", s)
	}
}
