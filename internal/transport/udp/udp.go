// Package udp carries the view-synchrony protocol over real UDP
// sockets, implementing transport.Transport with the same surface the
// simulator provides: named endpoints, LAN-style broadcast, per-kind
// statistics, and a partition fault-injection oracle (emulated with a
// send/receive-time filter, the socket-level analogue of a firewall
// rule).
//
// Each attached endpoint binds its own UDP socket (loopback by default)
// and registers in the transport's peer directory, which doubles as the
// broadcast target set. For multi-host use, seed remote processes into
// the directory with AddPeer.
//
// Packets are encoded with the internal/transport/wire codec. Writes
// coalesce: frames toward one destination gather in a per-destination
// buffer and leave as one datagram when the buffer fills or a short
// flush window (Config.FlushEvery) expires, so a burst of small
// protocol packets does not become a burst of system calls. Receives
// feed a bounded inbox queue; overflow, oversize, and undecodable
// traffic is dropped and counted, both in transport.Stats and — when a
// registry is wired — in obs metrics.
package udp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/eventq"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// Metric names surfaced through Config.Metrics.
const (
	MetricDatagramsSent = "udp.datagrams_sent_total"
	MetricDatagramsRecv = "udp.datagrams_recv_total"
	MetricBytesSent     = "udp.bytes_sent_total"
	MetricDropOversize  = "udp.drop_oversize_total"
	MetricDropOverflow  = "udp.drop_overflow_total"
	MetricDropDecode    = "udp.drop_decode_total"
)

// Config parametrizes a Transport.
type Config struct {
	// BindIP is the address endpoint sockets bind on. Default 127.0.0.1
	// (loopback); use a LAN interface address for multi-host runs.
	BindIP string
	// RecvQueue bounds each endpoint's inbox in messages; receives
	// beyond it are dropped (DroppedOverflow). Default 4096.
	RecvQueue int
	// FlushEvery is the write-coalescing window: a frame waits at most
	// this long for companions into the same datagram. Default 200µs.
	FlushEvery time.Duration
	// Metrics, when non-nil, receives datagram and drop counters.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.BindIP == "" {
		c.BindIP = "127.0.0.1"
	}
	if c.RecvQueue <= 0 {
		c.RecvQueue = 4096
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 200 * time.Microsecond
	}
	return c
}

// ErrClosed is returned for operations on a closed transport.
var ErrClosed = errors.New("udp: transport closed")

// Transport is a UDP-socket implementation of transport.Transport.
// Create with New, stop with Close.
type Transport struct {
	cfg Config

	mu        sync.Mutex
	endpoints map[ids.PID]*Endpoint
	// peers is the directory of every known process address — local
	// endpoints plus AddPeer seeds — and the broadcast target set.
	peers map[ids.PID]*net.UDPAddr
	// component maps a site to its emulated partition component (absent
	// means component 0), mirroring simnet's oracle.
	component map[string]int
	stats     transport.Stats
	closed    bool

	mDgramsSent, mDgramsRecv, mBytes     *obs.Counter
	mOversize, mOverflow, mDecodeDropped *obs.Counter
}

// Compile-time checks: same contract surface as the simulator.
var (
	_ transport.Transport   = (*Transport)(nil)
	_ transport.Partitioner = (*Transport)(nil)
)

// New creates a transport. Endpoints are bound lazily by Attach.
func New(cfg Config) *Transport {
	cfg = cfg.withDefaults()
	t := &Transport{
		cfg:       cfg,
		endpoints: make(map[ids.PID]*Endpoint),
		peers:     make(map[ids.PID]*net.UDPAddr),
		component: make(map[string]int),
		stats:     transport.NewStats(),
	}
	if m := cfg.Metrics; m != nil {
		t.mDgramsSent = m.Counter(MetricDatagramsSent)
		t.mDgramsRecv = m.Counter(MetricDatagramsRecv)
		t.mBytes = m.Counter(MetricBytesSent)
		t.mOversize = m.Counter(MetricDropOversize)
		t.mOverflow = m.Counter(MetricDropOverflow)
		t.mDecodeDropped = m.Counter(MetricDropDecode)
	}
	return t
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func add(c *obs.Counter, n uint64) {
	if c != nil {
		c.Add(n)
	}
}

// Attach binds a UDP socket for pid and registers it in the peer
// directory.
func (t *Transport) Attach(pid ids.PID) (transport.Endpoint, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(t.cfg.BindIP)})
	if err != nil {
		return nil, fmt.Errorf("udp: bind %s for %v: %w", t.cfg.BindIP, pid, err)
	}
	// Burst tolerance: a multicast storm writes datagrams faster than
	// the read loop can drain them, and data packets the kernel drops
	// are gone for good (the protocol retransmits only at flush time).
	// Errors are ignored — the OS clamps to its limits and the default
	// then bounds burst size instead.
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(4 << 20)
	ep := &Endpoint{
		pid:   pid,
		tr:    t,
		conn:  conn,
		inbox: eventq.New[transport.Message](),
		bufs:  make(map[ids.PID]*sendBuf),
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if _, dup := t.endpoints[pid]; dup {
		t.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("udp: pid %v already attached", pid)
	}
	t.endpoints[pid] = ep
	t.peers[pid] = conn.LocalAddr().(*net.UDPAddr)
	t.mu.Unlock()
	go ep.readLoop()
	return ep, nil
}

// AddPeer seeds a remote process into the directory (multi-host runs;
// local endpoints register themselves on Attach). addr is "ip:port".
func (t *Transport) AddPeer(pid ids.PID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udp: peer %v addr %q: %w", pid, addr, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	t.peers[pid] = ua
	return nil
}

// Addr returns the bound address of a locally attached pid ("" if not
// attached); tests and multi-host bootstrap use it to seed AddPeer on
// other hosts.
func (t *Transport) Addr(pid ids.PID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ep, ok := t.endpoints[pid]; ok {
		return ep.conn.LocalAddr().String()
	}
	return ""
}

// Close stops the transport and closes all endpoints.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	eps := make([]*Endpoint, 0, len(t.endpoints))
	for _, ep := range t.endpoints {
		eps = append(eps, ep)
	}
	t.endpoints = make(map[ids.PID]*Endpoint)
	t.peers = make(map[ids.PID]*net.UDPAddr)
	t.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
}

// Stats returns a consistent point-in-time snapshot of the transport
// counters (see transport.Stats for the semantics contract).
func (t *Transport) Stats() transport.Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats.Clone()
}

// ResetStats zeroes every counter atomically with respect to Stats.
func (t *Transport) ResetStats() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = transport.NewStats()
}

// SetPartitions emulates network partitions: traffic between sites in
// different components is discarded at send and at receive time, like a
// firewall between subnets. Semantics mirror simnet.Fabric.
func (t *Transport) SetPartitions(components ...[]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.component = make(map[string]int)
	for i, comp := range components {
		for _, site := range comp {
			t.component[site] = i + 1
		}
	}
}

// Heal removes all partitions.
func (t *Transport) Heal() { t.SetPartitions() }

// Reachable reports whether sites a and b are currently in the same
// emulated partition component.
func (t *Transport) Reachable(a, b string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.component[a] == t.component[b]
}

// sendBuf accumulates encoded frames toward one destination until the
// datagram budget fills or the flush window expires.
type sendBuf struct {
	addr  *net.UDPAddr
	buf   []byte
	timer *time.Timer
}

// Endpoint is one process's attachment: its own UDP socket plus the
// coalescing write path and the bounded receive queue.
type Endpoint struct {
	pid   ids.PID
	tr    *Transport
	conn  *net.UDPConn
	inbox *eventq.Queue[transport.Message]

	mu     sync.Mutex
	bufs   map[ids.PID]*sendBuf
	closed bool
}

var _ transport.Endpoint = (*Endpoint)(nil)

// PID returns the endpoint's process id.
func (e *Endpoint) PID() ids.PID { return e.pid }

// Send unicasts payload to `to`. Unknown or unreachable destinations
// are silent counted drops — the asynchronous-network contract.
func (e *Endpoint) Send(to ids.PID, payload any) {
	t := e.tr
	kind, size := transport.Describe(payload)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	addr := t.sendCheckLocked(e.pid, to, kind, size)
	t.mu.Unlock()
	if addr != nil {
		e.enqueueFrame(to, addr, payload, kind)
	}
}

// Broadcast sends payload to every process in the peer directory except
// the sender itself.
func (e *Endpoint) Broadcast(payload any) {
	t := e.tr
	kind, size := transport.Describe(payload)
	type target struct {
		pid  ids.PID
		addr *net.UDPAddr
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	// The whole fan-out is accounted under one critical section so a
	// Stats snapshot never observes half of it.
	targets := make([]target, 0, len(t.peers))
	for pid := range t.peers {
		if pid == e.pid {
			continue
		}
		if addr := t.sendCheckLocked(e.pid, pid, kind, size); addr != nil {
			targets = append(targets, target{pid: pid, addr: addr})
		}
	}
	t.mu.Unlock()
	for _, tg := range targets {
		e.enqueueFrame(tg.pid, tg.addr, payload, kind)
	}
}

// sendCheckLocked applies the send-side counters and drop checks for
// one message and resolves the destination address; nil means the
// message was counted as dropped. t.mu must be held.
func (t *Transport) sendCheckLocked(from, to ids.PID, kind string, size int) *net.UDPAddr {
	t.stats.Sent++
	t.stats.BytesSent += uint64(size)
	t.stats.PerKind[kind]++
	t.stats.PerKindBytes[kind] += uint64(size)
	if t.component[from.Site] != t.component[to.Site] {
		t.stats.DroppedPartition++
		return nil
	}
	addr, ok := t.peers[to]
	if !ok {
		t.stats.DroppedDead++
		return nil
	}
	return addr
}

// enqueueFrame encodes payload and appends it to the destination's
// coalescing buffer, flushing when the datagram budget fills.
func (e *Endpoint) enqueueFrame(to ids.PID, addr *net.UDPAddr, payload any, kind string) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	sb := e.bufs[to]
	if sb == nil {
		sb = &sendBuf{}
		e.bufs[to] = sb
	}
	sb.addr = addr // latest directory entry wins
	was := len(sb.buf)
	buf, err := wire.AppendFrame(sb.buf, e.pid, to, payload)
	if err != nil {
		// Oversize — or an unencodable payload that can never leave this
		// host, which lands in the same bucket.
		e.mu.Unlock()
		e.tr.mu.Lock()
		e.tr.stats.DroppedOversize++
		e.tr.mu.Unlock()
		inc(e.tr.mOversize)
		return
	}
	if was > 0 && len(buf) > wire.MaxFrame {
		// Appending would overflow the datagram: flush what was queued,
		// restart the buffer with the new frame alone.
		e.flushLocked(sb, sb.buf[:was])
		sb.buf = append(sb.buf[:0], buf[was:]...)
	} else {
		sb.buf = buf
	}
	if len(sb.buf) >= wire.MaxFrame {
		e.flushLocked(sb, sb.buf)
		sb.buf = sb.buf[:0]
	} else if sb.timer == nil && len(sb.buf) > 0 {
		sb.timer = time.AfterFunc(e.tr.cfg.FlushEvery, func() { e.flushDest(to) })
	}
	e.mu.Unlock()
}

// flushLocked writes one datagram; e.mu must be held. UDP writes do not
// block meaningfully and errors are deliberately ignored: an ICMP
// rejection from a dead peer is exactly a dropped message.
func (e *Endpoint) flushLocked(sb *sendBuf, data []byte) {
	if len(data) == 0 {
		return
	}
	if sb.timer != nil {
		sb.timer.Stop()
		sb.timer = nil
	}
	e.conn.WriteToUDP(data, sb.addr)
	inc(e.tr.mDgramsSent)
	add(e.tr.mBytes, uint64(len(data)))
}

// flushDest is the coalescing-timer callback for one destination.
func (e *Endpoint) flushDest(to ids.PID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	if sb := e.bufs[to]; sb != nil {
		sb.timer = nil
		e.flushLocked(sb, sb.buf)
		sb.buf = sb.buf[:0]
	}
}

// readLoop splits datagrams into frames, decodes them, and feeds the
// bounded inbox. It exits when the socket closes.
func (e *Endpoint) readLoop() {
	buf := make([]byte, 65536)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed by Detach/Close
		}
		inc(e.tr.mDgramsRecv)
		data := buf[:n]
		for len(data) > 0 {
			from, to, payload, rest, err := wire.ReadFrame(data)
			data = rest
			if err != nil {
				e.tr.mu.Lock()
				e.tr.stats.DroppedDecode++
				e.tr.mu.Unlock()
				inc(e.tr.mDecodeDropped)
				break // remaining bytes are unframeable
			}
			e.deliver(from, to, payload)
		}
	}
}

// deliver applies the receive-side checks and pushes one decoded
// message.
func (e *Endpoint) deliver(from, to ids.PID, payload any) {
	t := e.tr
	kind, size := transport.Describe(payload)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if t.component[from.Site] != t.component[e.pid.Site] {
		// Partition emulation, receive side: cuts off datagrams already
		// in flight when the partition formed.
		t.stats.DroppedPartition++
		t.mu.Unlock()
		return
	}
	if to != e.pid {
		// A stale sender is addressing a previous incarnation that owned
		// this port.
		t.stats.DroppedDead++
		t.mu.Unlock()
		return
	}
	if e.inbox.Len() >= t.cfg.RecvQueue {
		t.stats.DroppedOverflow++
		t.mu.Unlock()
		inc(t.mOverflow)
		return
	}
	t.stats.Delivered++
	t.stats.PerKindDelivered[kind]++
	t.mu.Unlock()
	e.inbox.Push(transport.Message{From: from, To: to, Payload: payload, Kind: kind, Size: size})
}

// Recv blocks for the next message. ok is false once the endpoint is
// detached or the transport closed, and the inbox has drained.
func (e *Endpoint) Recv() (transport.Message, bool) { return e.inbox.Pop() }

// TryRecv returns the next message without blocking.
func (e *Endpoint) TryRecv() (transport.Message, bool) { return e.inbox.TryPop() }

// Wait returns a channel signaled when the inbox may be non-empty; use
// with TryRecv in select loops.
func (e *Endpoint) Wait() <-chan struct{} { return e.inbox.Wait() }

// Closed reports whether the endpoint has been detached.
func (e *Endpoint) Closed() bool { return e.inbox.Closed() }

// Detach removes this endpoint, modeling a crash: the socket closes,
// unflushed coalescing buffers are discarded, and the inbox closes.
func (e *Endpoint) Detach() {
	t := e.tr
	t.mu.Lock()
	if t.endpoints[e.pid] == e {
		delete(t.endpoints, e.pid)
		delete(t.peers, e.pid)
	}
	t.mu.Unlock()
	e.shutdown()
}

// shutdown closes the socket and inbox and discards pending buffers.
func (e *Endpoint) shutdown() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for _, sb := range e.bufs {
		if sb.timer != nil {
			sb.timer.Stop()
		}
	}
	e.bufs = make(map[ids.PID]*sendBuf)
	e.mu.Unlock()
	e.conn.Close()
	e.inbox.Close()
}
