package transport

// Stats aggregates transport counters. Read a consistent snapshot via
// Transport.Stats.
//
// Snapshot semantics — the contract every backend must honor:
//
//   - Transport.Stats returns a point-in-time copy taken under the
//     backend's counter lock: all counters in one returned value are
//     mutually consistent, and the per-kind maps are deep copies the
//     caller owns (mutating them does not affect the transport, and
//     later traffic does not affect them).
//   - Counter updates for one logical send — the packet counter, the
//     byte counter, and the matching per-kind entries — are applied
//     atomically with respect to Stats, so within any snapshot
//     Sent == Σ PerKind, BytesSent == Σ PerKindBytes, and
//     Delivered == Σ PerKindDelivered. A multicast/broadcast fan-out is
//     additionally applied under one critical section, so a snapshot
//     never observes half of a fan-out.
//   - Delivered + the drop counters never exceed Sent; the difference
//     is traffic still in flight.
//   - Transport.ResetStats zeroes every counter, including the
//     per-kind maps, atomically with respect to Stats. Snapshots
//     returned by earlier Stats calls are unaffected.
//
// Messages counted as Sent include those subsequently dropped by loss,
// partition, queue-overflow, or dead-endpoint checks; Delivered counts
// only messages actually pushed to an endpoint inbox.
type Stats struct {
	Sent      uint64
	Delivered uint64
	// DroppedLoss counts messages dropped by a random-loss model
	// (simulator only).
	DroppedLoss uint64
	// DroppedPartition counts messages dropped because source and
	// destination were in different partition components (at send or at
	// delivery time).
	DroppedPartition uint64
	// DroppedDead counts messages to endpoints that no longer exist (or
	// were never known to the transport).
	DroppedDead uint64
	// DroppedOversize counts messages whose encoded frame exceeded the
	// backend's frame budget (real-socket backends only: a frame must
	// fit one datagram).
	DroppedOversize uint64
	// DroppedOverflow counts messages discarded because the receiver's
	// bounded inbox was full (real-socket backends only; the simulator's
	// queues are unbounded).
	DroppedOverflow uint64
	// DroppedDecode counts received frames that failed to decode
	// (truncated, unknown kind, or corrupt — real-socket backends only).
	DroppedDecode uint64
	// Piggybacked counts payloads coalesced onto an already-queued
	// packet instead of being sent as packets of their own (e.g.
	// heartbeats riding on data packets). Piggybacked payloads are NOT
	// counted in Sent/Delivered/PerKind/PerKindDelivered — those count
	// packets — but their bytes are on the wire and so are included in
	// BytesSent and PerKindBytes.
	Piggybacked uint64
	// BytesSent sums nominal payload sizes of sent messages (including
	// piggybacked payloads).
	BytesSent uint64
	// PerKind counts sent packets by payload kind (see Describe).
	PerKind map[string]uint64
	// PerKindBytes sums nominal payload sizes of sent traffic by kind,
	// including piggybacked payloads.
	PerKindBytes map[string]uint64
	// PerKindDelivered counts delivered packets by kind.
	PerKindDelivered map[string]uint64
	// PerKindPiggyback counts piggybacked payloads by kind (sent side).
	PerKindPiggyback map[string]uint64
}

// NewStats returns a zero Stats with allocated per-kind maps.
func NewStats() Stats {
	return Stats{
		PerKind:          make(map[string]uint64),
		PerKindBytes:     make(map[string]uint64),
		PerKindDelivered: make(map[string]uint64),
		PerKindPiggyback: make(map[string]uint64),
	}
}

// Clone returns a deep copy of s (the per-kind maps are copied).
func (s Stats) Clone() Stats {
	cp := s
	cp.PerKind = cloneKinds(s.PerKind)
	cp.PerKindBytes = cloneKinds(s.PerKindBytes)
	cp.PerKindDelivered = cloneKinds(s.PerKindDelivered)
	cp.PerKindPiggyback = cloneKinds(s.PerKindPiggyback)
	return cp
}

func cloneKinds(m map[string]uint64) map[string]uint64 {
	cp := make(map[string]uint64, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// Dropped sums all drop counters.
func (s Stats) Dropped() uint64 {
	return s.DroppedLoss + s.DroppedPartition + s.DroppedDead +
		s.DroppedOversize + s.DroppedOverflow + s.DroppedDecode
}
