package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/evs"
	"repro/internal/ids"
)

// Codec format
//
// Every encoded payload is
//
//	[version:1][kind:1][body]
//
// with all integers as unsigned varints, strings and byte slices
// length-prefixed, and every map or set written in sorted identifier
// order so that encoding is deterministic: the same packet value always
// produces the same bytes, which keeps byte counters and tests stable.
//
// The frame envelope used by socket backends is
//
//	[frameLen:uvarint][from:PID][to:PID][payload]
//
// so multiple frames can be packed into one datagram (write coalescing)
// and split again on receive. A frame must fit one datagram: AppendFrame
// rejects frames larger than MaxFrame with ErrOversize.

// Version is the codec version byte; decoders reject others.
const Version = 1

// MaxFrame is the largest frame AppendFrame will emit. It leaves
// headroom below the 65507-byte UDP payload ceiling so a frame always
// fits a single datagram.
const MaxFrame = 60 * 1024

// Codec errors.
var (
	ErrTruncated   = errors.New("wire: truncated frame")
	ErrOversize    = errors.New("wire: frame exceeds MaxFrame")
	ErrUnknownKind = errors.New("wire: unknown packet kind")
	ErrBadVersion  = errors.New("wire: unsupported codec version")
)

// Kind bytes, one per packet type.
const (
	kindHeartbeat byte = 1 + iota
	kindData
	kindEChange
	kindMergeReq
	kindPropose
	kindAck
	kindInstall
)

// Encode serializes a protocol packet. The payload must be one of the
// packet types of this package (value, not pointer); anything else is
// ErrUnknownKind.
func Encode(payload any) ([]byte, error) {
	return Append(nil, payload)
}

// Append serializes payload onto dst and returns the extended slice.
func Append(dst []byte, payload any) ([]byte, error) {
	dst = append(dst, Version)
	switch p := payload.(type) {
	case Heartbeat:
		dst = append(dst, kindHeartbeat)
		dst = putString(dst, p.Group)
		dst = putPID(dst, p.From)
		dst = putView(dst, p.View)
		dst = binary.AppendUvarint(dst, p.MaxEpoch)
		dst = putVector(dst, p.VC)
		dst = putBool(dst, p.Left)
	case Data:
		dst = append(dst, kindData)
		dst = putData(dst, p)
	case EChange:
		dst = append(dst, kindEChange)
		dst = putString(dst, p.Group)
		dst = putMsgID(dst, p.ID)
		dst = putView(dst, p.View)
		dst = putVector(dst, p.Stamp)
		dst = binary.AppendUvarint(dst, uint64(p.Seq))
		dst = binary.AppendUvarint(dst, uint64(p.Kind))
		dst = putSubviews(dst, p.Subviews)
		dst = putSVSets(dst, p.SVSets)
	case MergeReq:
		dst = append(dst, kindMergeReq)
		dst = putString(dst, p.Group)
		dst = putPID(dst, p.From)
		dst = putView(dst, p.View)
		dst = binary.AppendUvarint(dst, uint64(p.Kind))
		dst = putSubviews(dst, p.Subviews)
		dst = putSVSets(dst, p.SVSets)
	case Propose:
		dst = append(dst, kindPropose)
		dst = putString(dst, p.Group)
		dst = putView(dst, p.Proposal)
		dst = putPIDs(dst, p.Comp)
	case Ack:
		dst = append(dst, kindAck)
		dst = putString(dst, p.Group)
		dst = putView(dst, p.Proposal)
		dst = putPID(dst, p.From)
		dst = putView(dst, p.PredView)
		dst = putDelivered(dst, p.Delivered)
		dst = binary.AppendUvarint(dst, uint64(p.EChangeSeq))
		dst = putStructure(dst, p.Structure)
	case Install:
		dst = append(dst, kindInstall)
		dst = putString(dst, p.Group)
		dst = putView(dst, p.Proposal)
		dst = putPIDs(dst, p.Comp)
		dst = putFlush(dst, p.Flush)
		dst = putStructure(dst, p.Structure)
		dst = putBool(dst, p.Resend)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownKind, payload)
	}
	return dst, nil
}

// Decode parses one encoded payload, returning the concrete packet
// value (Heartbeat, Data, ...).
func Decode(b []byte) (any, error) {
	r := &reader{b: b}
	if v := r.byte_(); r.err == nil && v != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	kind := r.byte_()
	if r.err != nil {
		return nil, r.err
	}
	var out any
	switch kind {
	case kindHeartbeat:
		p := Heartbeat{}
		p.Group = r.str()
		p.From = r.pid()
		p.View = r.view()
		p.MaxEpoch = r.uvarint()
		p.VC = r.vector()
		p.Left = r.bool_()
		out = p
	case kindData:
		out = r.data()
	case kindEChange:
		p := EChange{}
		p.Group = r.str()
		p.ID = r.msgID()
		p.View = r.view()
		p.Stamp = r.vector()
		p.Seq = uint32(r.uvarint())
		p.Kind = EChangeKind(r.uvarint())
		p.Subviews = r.subviews()
		p.SVSets = r.svsets()
		out = p
	case kindMergeReq:
		p := MergeReq{}
		p.Group = r.str()
		p.From = r.pid()
		p.View = r.view()
		p.Kind = EChangeKind(r.uvarint())
		p.Subviews = r.subviews()
		p.SVSets = r.svsets()
		out = p
	case kindPropose:
		p := Propose{}
		p.Group = r.str()
		p.Proposal = r.view()
		p.Comp = r.pids()
		out = p
	case kindAck:
		p := Ack{}
		p.Group = r.str()
		p.Proposal = r.view()
		p.From = r.pid()
		p.PredView = r.view()
		p.Delivered = r.delivered()
		p.EChangeSeq = uint32(r.uvarint())
		p.Structure = r.structure()
		out = p
	case kindInstall:
		p := Install{}
		p.Group = r.str()
		p.Proposal = r.view()
		p.Comp = r.pids()
		p.Flush = r.flush()
		p.Structure = r.structure()
		p.Resend = r.bool_()
		out = p
	default:
		return nil, fmt.Errorf("%w: byte %d", ErrUnknownKind, kind)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %T", len(r.b), out)
	}
	return out, nil
}

// AppendFrame encodes payload with a [len][from][to] envelope onto dst.
// The frame (envelope included) must not exceed MaxFrame.
func AppendFrame(dst []byte, from, to ids.PID, payload any) ([]byte, error) {
	var body []byte
	body = putPID(body, from)
	body = putPID(body, to)
	body, err := Append(body, payload)
	if err != nil {
		return dst, err
	}
	if len(body)+binary.MaxVarintLen32 > MaxFrame {
		return dst, fmt.Errorf("%w: %d byte body", ErrOversize, len(body))
	}
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...), nil
}

// ReadFrame parses the first frame of data, returning the decoded
// payload and the remaining bytes (further frames of the same
// datagram).
func ReadFrame(data []byte) (from, to ids.PID, payload any, rest []byte, err error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || n > uint64(len(data)-used) {
		return from, to, nil, nil, ErrTruncated
	}
	body, rest := data[used:used+int(n)], data[used+int(n):]
	r := &reader{b: body}
	from = r.pid()
	to = r.pid()
	if r.err != nil {
		return from, to, nil, rest, r.err
	}
	payload, err = Decode(r.b)
	return from, to, payload, rest, err
}

// --- encoding primitives ---

func putBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func putString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func putBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func putPID(dst []byte, p ids.PID) []byte {
	dst = putString(dst, p.Site)
	return binary.AppendUvarint(dst, uint64(p.Inc))
}

func putView(dst []byte, v ids.ViewID) []byte {
	dst = binary.AppendUvarint(dst, v.Epoch)
	return putPID(dst, v.Coord)
}

func putMsgID(dst []byte, m ids.MsgID) []byte {
	dst = putPID(dst, m.Sender)
	return binary.AppendUvarint(dst, m.Seq)
}

func putVector(dst []byte, vc clock.Vector) []byte {
	pids := make([]ids.PID, 0, len(vc))
	for p := range vc {
		pids = append(pids, p)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i].Less(pids[j]) })
	dst = binary.AppendUvarint(dst, uint64(len(pids)))
	for _, p := range pids {
		dst = putPID(dst, p)
		dst = binary.AppendUvarint(dst, vc[p])
	}
	return dst
}

func putPIDs(dst []byte, ps []ids.PID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ps)))
	for _, p := range ps {
		dst = putPID(dst, p)
	}
	return dst
}

func putSubviews(dst []byte, svs []ids.SubviewID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(svs)))
	for _, sv := range svs {
		dst = putView(dst, sv.Origin)
		dst = binary.AppendUvarint(dst, uint64(sv.Seq))
	}
	return dst
}

func putSVSets(dst []byte, sss []ids.SVSetID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(sss)))
	for _, ss := range sss {
		dst = putView(dst, ss.Origin)
		dst = binary.AppendUvarint(dst, uint64(ss.Seq))
	}
	return dst
}

func putData(dst []byte, p Data) []byte {
	dst = putString(dst, p.Group)
	dst = putMsgID(dst, p.ID)
	dst = putView(dst, p.View)
	dst = putVector(dst, p.Stamp)
	dst = putBytes(dst, p.Payload)
	return putBool(dst, p.Unicast)
}

func putDelivered(dst []byte, m map[ids.MsgID]Data) []byte {
	keys := make([]ids.MsgID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Sender != keys[j].Sender {
			return keys[i].Sender.Less(keys[j].Sender)
		}
		return keys[i].Seq < keys[j].Seq
	})
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = putMsgID(dst, k)
		dst = putData(dst, m[k])
	}
	return dst
}

func putFlush(dst []byte, m map[ids.ViewID][]Data) []byte {
	keys := make([]ids.ViewID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = putView(dst, k)
		dst = binary.AppendUvarint(dst, uint64(len(m[k])))
		for _, d := range m[k] {
			dst = putData(dst, d)
		}
	}
	return dst
}

func putStructure(dst []byte, s evs.Structure) []byte {
	rows, nextSv, nextSs := s.Export()
	// A zero structure (pre-bootstrap acks) round-trips to zero, not to
	// an allocated-but-empty one.
	if s.View.IsZero() && len(rows) == 0 && nextSv == 0 && nextSs == 0 {
		return putBool(dst, false)
	}
	dst = putBool(dst, true)
	dst = putView(dst, s.View)
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, row := range rows {
		dst = putView(dst, row.Subview.Origin)
		dst = binary.AppendUvarint(dst, uint64(row.Subview.Seq))
		dst = putView(dst, row.SVSet.Origin)
		dst = binary.AppendUvarint(dst, uint64(row.SVSet.Seq))
		dst = putPIDs(dst, row.Members)
	}
	dst = binary.AppendUvarint(dst, uint64(nextSv))
	return binary.AppendUvarint(dst, uint64(nextSs))
}

// --- decoding primitives ---

// reader is a bounds-checked cursor over an encoded body. The first
// underflow or malformed prefix latches err (always wrapping
// ErrTruncated or a validation error) and every later read returns a
// zero value, so packet decoders can read field-by-field and check err
// once at the end.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) byte_() byte {
	if r.err != nil || len(r.b) == 0 {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) bool_() bool { return r.byte_() != 0 }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.b = r.b[n:]
	return v
}

// count reads a collection length and sanity-checks it against the
// bytes actually remaining (each element costs at least min bytes), so
// a corrupt length prefix cannot trigger a huge allocation.
func (r *reader) count(min int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(len(r.b)/min) {
		r.fail(ErrTruncated)
		return 0
	}
	return int(n)
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n > len(r.b) {
		r.fail(ErrTruncated)
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string {
	n := r.count(1)
	return string(r.take(n))
}

func (r *reader) bytes_() []byte {
	n := r.count(1)
	b := r.take(n)
	if len(b) == 0 {
		return nil
	}
	// Copy out of the frame buffer: payloads outlive the datagram.
	return append([]byte(nil), b...)
}

func (r *reader) pid() ids.PID {
	var p ids.PID
	p.Site = r.str()
	p.Inc = uint32(r.uvarint())
	return p
}

func (r *reader) view() ids.ViewID {
	var v ids.ViewID
	v.Epoch = r.uvarint()
	v.Coord = r.pid()
	return v
}

func (r *reader) msgID() ids.MsgID {
	var m ids.MsgID
	m.Sender = r.pid()
	m.Seq = r.uvarint()
	return m
}

func (r *reader) vector() clock.Vector {
	n := r.count(2)
	if n == 0 {
		return nil
	}
	vc := make(clock.Vector, n)
	for i := 0; i < n; i++ {
		p := r.pid()
		vc[p] = r.uvarint()
	}
	if r.err != nil {
		return nil
	}
	return vc
}

func (r *reader) pids() []ids.PID {
	n := r.count(2)
	if n == 0 {
		return nil
	}
	ps := make([]ids.PID, n)
	for i := range ps {
		ps[i] = r.pid()
	}
	return ps
}

func (r *reader) subviews() []ids.SubviewID {
	n := r.count(3)
	if n == 0 {
		return nil
	}
	svs := make([]ids.SubviewID, n)
	for i := range svs {
		svs[i].Origin = r.view()
		svs[i].Seq = uint32(r.uvarint())
	}
	return svs
}

func (r *reader) svsets() []ids.SVSetID {
	n := r.count(3)
	if n == 0 {
		return nil
	}
	sss := make([]ids.SVSetID, n)
	for i := range sss {
		sss[i].Origin = r.view()
		sss[i].Seq = uint32(r.uvarint())
	}
	return sss
}

func (r *reader) data() Data {
	var p Data
	p.Group = r.str()
	p.ID = r.msgID()
	p.View = r.view()
	p.Stamp = r.vector()
	p.Payload = r.bytes_()
	p.Unicast = r.bool_()
	return p
}

func (r *reader) delivered() map[ids.MsgID]Data {
	n := r.count(4)
	if n == 0 {
		return nil
	}
	m := make(map[ids.MsgID]Data, n)
	for i := 0; i < n; i++ {
		k := r.msgID()
		m[k] = r.data()
	}
	if r.err != nil {
		return nil
	}
	return m
}

func (r *reader) flush() map[ids.ViewID][]Data {
	n := r.count(4)
	if n == 0 {
		return nil
	}
	m := make(map[ids.ViewID][]Data, n)
	for i := 0; i < n; i++ {
		k := r.view()
		cnt := r.count(4)
		msgs := make([]Data, cnt)
		for j := range msgs {
			msgs[j] = r.data()
		}
		if r.err != nil {
			return nil
		}
		m[k] = msgs
	}
	return m
}

func (r *reader) structure() evs.Structure {
	if !r.bool_() {
		return evs.Structure{}
	}
	view := r.view()
	n := r.count(6)
	rows := make([]evs.Row, n)
	for i := range rows {
		rows[i].Subview.Origin = r.view()
		rows[i].Subview.Seq = uint32(r.uvarint())
		rows[i].SVSet.Origin = r.view()
		rows[i].SVSet.Seq = uint32(r.uvarint())
		rows[i].Members = r.pids()
	}
	nextSv := uint32(r.uvarint())
	nextSs := uint32(r.uvarint())
	if r.err != nil {
		return evs.Structure{}
	}
	s, err := evs.FromRows(view, rows, nextSv, nextSs)
	if err != nil {
		r.fail(fmt.Errorf("wire: structure: %w", err))
		return evs.Structure{}
	}
	return s
}
