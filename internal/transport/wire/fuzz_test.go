package wire

import (
	"reflect"
	"testing"

	"repro/internal/ids"
)

// Fuzz targets for the codec's two attack surfaces: Decode (payload
// bodies off the wire) and ReadFrame (datagram framing). Both must
// never panic and never allocate proportionally to attacker-chosen
// counts — the count(min) guard and MaxFrame bound are exactly what
// these harden. Seed corpora come from the golden packets covering all
// seven kinds, plus truncated/corrupted variants the mutator grows
// from; committed seeds live in testdata/fuzz.

// FuzzDecode feeds arbitrary bytes to Decode. Any input Decode accepts
// must survive a semantic round trip: re-encoding the decoded value
// and decoding again yields a deeply equal value. (Byte-identity is
// deliberately not required — varints in the input may be non-minimal,
// and map iteration order varies; the *values* must be stable.)
func FuzzDecode(f *testing.F) {
	for _, pkt := range goldenPackets() {
		b, err := Encode(pkt)
		if err != nil {
			f.Fatalf("encode golden %T: %v", pkt, err)
		}
		f.Add(b)
		// Truncations and a corrupted kind byte teach the mutator the
		// error paths early.
		if len(b) > 2 {
			f.Add(b[:len(b)/2])
			bad := append([]byte(nil), b...)
			bad[1] ^= 0xff
			f.Add(bad)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{Version})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(v)
		if err != nil {
			t.Fatalf("decoded value failed to re-encode: %T %v: %v", v, v, err)
		}
		v2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded bytes failed to decode: %T: %v", v, err)
		}
		if !reflect.DeepEqual(v, v2) {
			t.Fatalf("round trip changed the value:\n first: %#v\nsecond: %#v", v, v2)
		}
	})
}

// FuzzReadFrame feeds arbitrary datagrams to the frame iterator. The
// loop must terminate (every successful read strictly consumes input),
// never panic, and every recovered payload must re-frame cleanly.
func FuzzReadFrame(f *testing.F) {
	a := ids.PID{Site: "a", Inc: 1}
	b := ids.PID{Site: "b", Inc: 2}

	var single, multi []byte
	for i, pkt := range goldenPackets() {
		var err error
		single, err = AppendFrame(nil, a, b, pkt)
		if err != nil {
			f.Fatalf("frame golden %T: %v", pkt, err)
		}
		f.Add(single)
		if multi, err = AppendFrame(multi, a, b, pkt); err != nil {
			f.Fatalf("append golden %T: %v", pkt, err)
		}
		if i%3 == 2 {
			f.Add(multi)
		}
	}
	f.Add(multi)
	if len(single) > 3 {
		f.Add(single[:len(single)-2]) // truncated body
		f.Add(single[1:])             // mangled length prefix
	}
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge varint length

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			from, to, payload, next, err := ReadFrame(rest)
			if err != nil {
				return
			}
			if len(next) >= len(rest) {
				t.Fatalf("ReadFrame made no progress: %d -> %d bytes", len(rest), len(next))
			}
			if _, err := AppendFrame(nil, from, to, payload); err != nil {
				t.Fatalf("recovered frame failed to re-frame: %T: %v", payload, err)
			}
			rest = next
		}
	})
}
