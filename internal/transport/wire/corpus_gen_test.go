package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ids"
)

// TestWriteSeedCorpus regenerates the committed fuzz seed corpus from
// the golden packets. It only runs when WIRE_WRITE_CORPUS=1 so normal
// test runs never touch the checked-in files:
//
//	WIRE_WRITE_CORPUS=1 go test -run TestWriteSeedCorpus ./internal/transport/wire/
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("WIRE_WRITE_CORPUS") != "1" {
		t.Skip("set WIRE_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	write := func(target, name string, b []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	a := ids.PID{Site: "a", Inc: 1}
	bb := ids.PID{Site: "b", Inc: 2}
	var multi []byte
	for _, pkt := range goldenPackets() {
		enc, err := Encode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("golden-%T", pkt)
		write("FuzzDecode", name, enc)
		frame, err := AppendFrame(nil, a, bb, pkt)
		if err != nil {
			t.Fatal(err)
		}
		write("FuzzReadFrame", name, frame)
		if multi, err = AppendFrame(multi, a, bb, pkt); err != nil {
			t.Fatal(err)
		}
	}
	write("FuzzReadFrame", "golden-multiframe", multi)
}
