// Package wire defines the protocol packets of the view-synchrony
// run-time and a length-prefixed binary codec for them.
//
// Historically the packets were unexported types of internal/core and
// traveled as Go values through the in-memory simulator — they had no
// wire form at all. Real-socket backends (internal/transport/udp) need
// one, so the packet types live here, exported, and core aliases them;
// the codec round-trips every kind: heartbeats, data multicasts and
// unicasts (which also carry the group-object snapshot/pull payloads
// as opaque bytes), e-view changes, merge requests, proposals, acks
// (with their flush retransmission bodies), and installs (with their
// per-predecessor flush sets).
//
// All packets carry the group name; processes silently drop packets for
// other groups. Packets are treated as immutable once sent, whether
// they travel by value through the simulator or by bytes through a
// socket.
package wire

import (
	"repro/internal/clock"
	"repro/internal/evs"
	"repro/internal/ids"
)

// EChangeKind says which merge operation caused an e-view change.
type EChangeKind int

// E-view change kinds.
const (
	EChangeSubviewMerge EChangeKind = iota + 1
	EChangeSVSetMerge
)

// String renders the kind.
func (k EChangeKind) String() string {
	switch k {
	case EChangeSubviewMerge:
		return "SubviewMerge"
	case EChangeSVSetMerge:
		return "SVSetMerge"
	default:
		return "EChange(?)"
	}
}

// Heartbeat is the periodic liveness-and-discovery broadcast. Hearing
// a heartbeat from a process outside the current view (or advertising a
// different view) is the merge/join trigger.
type Heartbeat struct {
	Group string
	From  ids.PID
	// View is the sender's current view id; lets receivers detect
	// foreign views and stale members.
	View ids.ViewID
	// MaxEpoch is the highest proposal/view epoch the sender has seen;
	// gossiping it keeps coordinators' proposal epochs ahead of every
	// commitment in the partition.
	MaxEpoch uint64
	// VC is the sender's per-view delivery vector (its vector clock
	// restricted to the view composition). Receivers in the same view
	// compute the component-wise minimum across members: messages at or
	// below it are *stable* — delivered by everybody — and can be pruned
	// from the flush buffers.
	VC clock.Vector
	// Left is set on the farewell heartbeat of a leaving process.
	Left bool
}

func (Heartbeat) FabricKind() string { return "hb" }
func (p Heartbeat) FabricSize() int  { return 40 + 8*len(p.VC) }

// Data is an application multicast — or, when Unicast is set, an
// addressed point-to-point message within the view (used e.g. by the
// state-transfer tool and the group-object snapshot/pull exchange).
// Unicasts are delivered only in the view they were sent in, but are
// excluded from the flush (Agreement applies to multicasts; an
// addressed message concerns one recipient only).
type Data struct {
	Group   string
	ID      ids.MsgID
	View    ids.ViewID
	Stamp   clock.Vector
	Payload []byte
	Unicast bool
}

func (Data) FabricKind() string { return "data" }
func (p Data) FabricSize() int  { return 48 + len(p.Payload) + 8*len(p.Stamp) }

// CausalSender implements clock.CausalMsg.
func (p Data) CausalSender() ids.PID { return p.ID.Sender }

// CausalStamp implements clock.CausalMsg.
func (p Data) CausalStamp() clock.Vector { return p.Stamp }

// PktID returns the message identifier (causal-routing surface).
func (p Data) PktID() ids.MsgID { return p.ID }

// PktView returns the origin view (causal-routing surface).
func (p Data) PktView() ids.ViewID { return p.View }

// EChange is an e-view change multicast by the view's sequencer. It
// travels through the same causal channel as data so that Property 6.2
// (consistent cuts) holds.
type EChange struct {
	Group string
	ID    ids.MsgID
	View  ids.ViewID
	Stamp clock.Vector
	// Seq is the per-view e-view change sequence number (1-based).
	Seq  uint32
	Kind EChangeKind
	// Subviews is the argument of a SubviewMerge.
	Subviews []ids.SubviewID
	// SVSets is the argument of an SVSetMerge.
	SVSets []ids.SVSetID
}

func (EChange) FabricKind() string { return "echange" }
func (p EChange) FabricSize() int {
	return 64 + 24*len(p.Subviews) + 24*len(p.SVSets) + 8*len(p.Stamp)
}

// CausalSender implements clock.CausalMsg.
func (p EChange) CausalSender() ids.PID { return p.ID.Sender }

// CausalStamp implements clock.CausalMsg.
func (p EChange) CausalStamp() clock.Vector { return p.Stamp }

// PktID returns the message identifier (causal-routing surface).
func (p EChange) PktID() ids.MsgID { return p.ID }

// PktView returns the origin view (causal-routing surface).
func (p EChange) PktView() ids.ViewID { return p.View }

// MergeReq asks the view's sequencer to perform a merge. Fire-and-
// forget: if the sequencer or the view dies first, the application will
// observe the absence of the corresponding EChangeEvent and may retry.
type MergeReq struct {
	Group string
	From  ids.PID
	View  ids.ViewID
	Kind  EChangeKind
	// Subviews / SVSets are the merge arguments.
	Subviews []ids.SubviewID
	SVSets   []ids.SVSetID
}

func (MergeReq) FabricKind() string { return "mergereq" }
func (p MergeReq) FabricSize() int  { return 48 + 24*len(p.Subviews) + 24*len(p.SVSets) }

// Propose starts (or retries) a view agreement round.
type Propose struct {
	Group string
	// Proposal is the id the new view will have if installed.
	Proposal ids.ViewID
	// Comp is the proposed composition.
	Comp []ids.PID
}

func (Propose) FabricKind() string { return "propose" }
func (p Propose) FabricSize() int  { return 32 + 16*len(p.Comp) }

// Ack is a member's answer to a proposal. It reports everything the
// coordinator needs for the flush and for composing the new enriched
// view: the member's predecessor view, the application messages it has
// delivered in that view (with bodies, so the coordinator can
// retransmit), the e-view change prefix it has applied, and its current
// structure.
type Ack struct {
	Group    string
	Proposal ids.ViewID
	From     ids.PID
	// PredView is the view the member is leaving.
	PredView ids.ViewID
	// Delivered are the data packets the member has delivered in
	// PredView, keyed by message id.
	Delivered map[ids.MsgID]Data
	// EChangeSeq is the highest e-view change applied in PredView.
	EChangeSeq uint32
	// Structure is the member's current enriched structure (reflecting
	// EChangeSeq changes).
	Structure evs.Structure
}

func (Ack) FabricKind() string { return "ack" }
func (p Ack) FabricSize() int {
	n := 64
	for _, d := range p.Delivered {
		n += d.FabricSize()
	}
	return n
}

// Install finalizes a view agreement round.
type Install struct {
	Group    string
	Proposal ids.ViewID
	Comp     []ids.PID
	// Flush maps each predecessor view to the union of data packets
	// delivered in it by the members joining from it. A member delivers
	// the ones it misses before installing (P2.1).
	Flush map[ids.ViewID][]Data
	// Structure is the composed enriched structure of the new view.
	Structure evs.Structure
	// Resend marks a reconciliation re-delivery: the coordinator already
	// installed this view and is re-sending the packet to a member that
	// advertises an older view id with an unchanged composition. The
	// install itself is idempotent; the flag exists so traces and packet
	// accounting can tell a healing re-send from the original broadcast.
	Resend bool
}

func (Install) FabricKind() string { return "install" }
func (p Install) FabricSize() int {
	n := 48 + 16*len(p.Comp)
	for _, msgs := range p.Flush {
		for _, d := range msgs {
			n += d.FabricSize()
		}
	}
	return n
}
