package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/evs"
	"repro/internal/ids"
)

func pid(site string, inc uint32) ids.PID { return ids.PID{Site: site, Inc: inc} }

func view(epoch uint64, coord ids.PID) ids.ViewID { return ids.ViewID{Epoch: epoch, Coord: coord} }

// testStructure builds a two-subview structure via the same Export/
// FromRows surface the codec uses. It wraps goldenStructure for the
// tests; the fuzz targets use goldenStructure directly (testing.F has
// no *testing.T during seeding).
func testStructure(t *testing.T) evs.Structure {
	t.Helper()
	return goldenStructure()
}

func goldenStructure() evs.Structure {
	v := view(3, pid("a", 1))
	rows := []evs.Row{
		{
			Subview: ids.SubviewID{Origin: v, Seq: 1},
			SVSet:   ids.SVSetID{Origin: v, Seq: 1},
			Members: []ids.PID{pid("a", 1), pid("b", 2)},
		},
		{
			Subview: ids.SubviewID{Origin: v, Seq: 2},
			SVSet:   ids.SVSetID{Origin: v, Seq: 2},
			Members: []ids.PID{pid("c", 1)},
		},
	}
	s, err := evs.FromRows(v, rows, 3, 3)
	if err != nil {
		panic(err)
	}
	return s
}

// testPackets returns one rich instance of every packet kind. The Data
// payloads are opaque application bytes — e.g. the JSON snapshot/pull
// bodies of the group-object layer — so their round-trip covers those
// message kinds too.
func testPackets(t *testing.T) []any {
	t.Helper()
	return goldenPackets()
}

// goldenPackets returns one rich instance of every packet kind without
// needing a *testing.T — the fuzz targets seed their corpora from it.
func goldenPackets() []any {
	a, b, c := pid("a", 1), pid("b", 2), pid("c", 1)
	v := view(3, a)
	vc := clock.Vector{a: 4, b: 9, c: 1}
	data1 := Data{
		Group: "g", ID: ids.MsgID{Sender: b, Seq: 7}, View: v,
		Stamp:   clock.Vector{a: 1, b: 7},
		Payload: []byte(`{"k":"snapshot","rows":["x","y"]}`),
	}
	data2 := Data{
		Group: "g", ID: ids.MsgID{Sender: a, Seq: 3}, View: v,
		Stamp:   clock.Vector{a: 3},
		Payload: []byte{0, 1, 2, 0xff},
		Unicast: true,
	}
	sv1 := ids.SubviewID{Origin: v, Seq: 1}
	sv2 := ids.SubviewID{Origin: v, Seq: 2}
	ss1 := ids.SVSetID{Origin: v, Seq: 1}
	ss2 := ids.SVSetID{Origin: v, Seq: 2}
	return []any{
		Heartbeat{Group: "g", From: a, View: v, MaxEpoch: 17, VC: vc},
		Heartbeat{Group: "g", From: b, View: v, Left: true},
		data1,
		data2,
		EChange{
			Group: "g", ID: ids.MsgID{Sender: a, Seq: 11}, View: v,
			Stamp: vc, Seq: 2, Kind: EChangeSubviewMerge,
			Subviews: []ids.SubviewID{sv1, sv2},
		},
		EChange{
			Group: "g", ID: ids.MsgID{Sender: a, Seq: 12}, View: v,
			Stamp: vc, Seq: 3, Kind: EChangeSVSetMerge,
			SVSets: []ids.SVSetID{ss1, ss2},
		},
		MergeReq{Group: "g", From: c, View: v, Kind: EChangeSVSetMerge, SVSets: []ids.SVSetID{ss1, ss2}},
		Propose{Group: "g", Proposal: view(4, a), Comp: []ids.PID{a, b, c}},
		Ack{
			Group: "g", Proposal: view(4, a), From: b, PredView: v,
			Delivered: map[ids.MsgID]Data{
				data1.ID: data1,
				data2.ID: data2,
			},
			EChangeSeq: 3,
			Structure:  goldenStructure(),
		},
		Ack{Group: "g", Proposal: view(4, a), From: c, PredView: v},
		Install{
			Group: "g", Proposal: view(4, a), Comp: []ids.PID{a, b, c},
			Flush: map[ids.ViewID][]Data{
				v:          {data1, data2},
				view(2, b): {data2},
			},
			Structure: goldenStructure(),
		},
		Install{
			Group: "g", Proposal: view(4, a), Comp: []ids.PID{a, b},
			Structure: goldenStructure(),
			Resend:    true,
		},
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, pkt := range testPackets(t) {
		enc, err := Encode(pkt)
		if err != nil {
			t.Fatalf("Encode(%T): %v", pkt, err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%T): %v", pkt, err)
		}
		if !reflect.DeepEqual(normalize(pkt), normalize(dec)) {
			t.Errorf("%T round-trip mismatch:\n sent %#v\n got  %#v", pkt, pkt, dec)
		}
	}
}

// normalize maps empty collections to nil so that DeepEqual compares
// content, not allocation accidents (the codec decodes absent
// collections as nil).
func normalize(pkt any) any {
	switch p := pkt.(type) {
	case Ack:
		if len(p.Delivered) == 0 {
			p.Delivered = nil
		}
		return p
	case Install:
		if len(p.Flush) == 0 {
			p.Flush = nil
		}
		return p
	default:
		return pkt
	}
}

func TestEncodeDeterministic(t *testing.T) {
	// Map-carrying packets must encode identically on repeat — the
	// codec sorts every map — so byte counters and trace diffs are
	// stable.
	for _, pkt := range testPackets(t) {
		a, err := Encode(pkt)
		if err != nil {
			t.Fatalf("Encode(%T): %v", pkt, err)
		}
		for i := 0; i < 5; i++ {
			b, err := Encode(pkt)
			if err != nil {
				t.Fatalf("Encode(%T): %v", pkt, err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("%T: non-deterministic encoding", pkt)
			}
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	// Every strict prefix of a valid encoding must fail cleanly — no
	// panic, no silent success.
	for _, pkt := range testPackets(t) {
		enc, err := Encode(pkt)
		if err != nil {
			t.Fatalf("Encode(%T): %v", pkt, err)
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, err := Decode(enc[:cut]); err == nil {
				t.Fatalf("%T: Decode of %d/%d-byte prefix succeeded", pkt, cut, len(enc))
			}
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	// Flipping any single byte must never panic; errors are fine, and a
	// flip in an application payload legitimately still decodes.
	for _, pkt := range testPackets(t) {
		enc, _ := Encode(pkt)
		for i := range enc {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 0x80
			Decode(mut) // must not panic
		}
	}
}

func TestDecodeBadVersionAndKind(t *testing.T) {
	if _, err := Decode([]byte{Version + 1, kindData}); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: got %v", err)
	}
	if _, err := Decode([]byte{Version, 99}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("unknown kind: got %v", err)
	}
	if _, err := Encode(struct{}{}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("unknown payload type: got %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := pid("a", 1), pid("b", 2)
	pkts := testPackets(t)
	var buf []byte
	var err error
	for _, pkt := range pkts {
		buf, err = AppendFrame(buf, a, b, pkt)
		if err != nil {
			t.Fatalf("AppendFrame(%T): %v", pkt, err)
		}
	}
	rest := buf
	for i, want := range pkts {
		var from, to ids.PID
		var got any
		from, to, got, rest, err = ReadFrame(rest)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if from != a || to != b {
			t.Fatalf("ReadFrame #%d: envelope %v->%v", i, from, to)
		}
		if !reflect.DeepEqual(normalize(want), normalize(got)) {
			t.Fatalf("ReadFrame #%d: %T mismatch", i, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after all frames", len(rest))
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	a, b := pid("a", 1), pid("b", 2)
	big := Data{
		Group: "g", ID: ids.MsgID{Sender: a, Seq: 1}, View: view(1, a),
		Payload: make([]byte, MaxFrame+1),
	}
	if _, err := AppendFrame(nil, a, b, big); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize frame: got %v", err)
	}
	// And a truncated frame envelope must not read past the buffer.
	ok, err := AppendFrame(nil, a, b, Heartbeat{Group: "g", From: a})
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	for cut := 0; cut < len(ok); cut++ {
		if _, _, _, _, err := ReadFrame(ok[:cut]); err == nil {
			t.Fatalf("ReadFrame of %d/%d-byte prefix succeeded", cut, len(ok))
		}
	}
}

func TestStructureRoundTrip(t *testing.T) {
	s := testStructure(t)
	enc, err := Encode(Ack{Group: "g", Structure: s})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := dec.(Ack).Structure
	wr, wsv, wss := s.Export()
	gr, gsv, gss := got.Export()
	if !reflect.DeepEqual(wr, gr) || wsv != gsv || wss != gss {
		t.Fatalf("structure mismatch:\n want %v (next %d/%d)\n got  %v (next %d/%d)",
			wr, wsv, wss, gr, gsv, gss)
	}
}
