// Package transport defines the message-transport seam of the stack:
// the interfaces the run-time (internal/core), the failure-detection
// path, and the group-object layer need from a network, extracted from
// the original hard-wired simulator coupling.
//
// Two backends implement it today:
//
//   - internal/simnet: the deterministic in-process simulator (delays,
//     losses, partition oracle) — the default for tests and experiments;
//   - internal/transport/udp: real loopback/LAN UDP sockets with a
//     binary wire codec (internal/transport/wire), per-destination
//     write coalescing, and bounded receive queues.
//
// The paper's run-time assumes only an asynchronous, partitionable
// network; both backends provide exactly that surface, so every layer
// above this package is oblivious to which one carries its packets.
package transport

import "repro/internal/ids"

// Message is a payload in flight or delivered.
type Message struct {
	From    ids.PID
	To      ids.PID
	Payload any
	// Kind is a short label used for per-kind statistics (e.g. "data",
	// "propose"). Derived from the payload if it implements Kinder.
	Kind string
	// Size is the nominal size in bytes used for byte counters. Derived
	// from the payload if it implements Sizer, else 1.
	Size int
	// Piggyback carries payloads the transport coalesced onto this
	// message instead of sending them as packets of their own (e.g. a
	// pending heartbeat riding on an already-queued data packet).
	// Piggybacked payloads share the carrier's fate: they are delivered
	// with it or dropped with it. Receivers must process them after the
	// primary payload.
	Piggyback []Message
}

// Kinder lets payloads label themselves for transport statistics.
type Kinder interface{ FabricKind() string }

// Sizer lets payloads report a nominal wire size for transport
// statistics.
type Sizer interface{ FabricSize() int }

// Describe classifies a payload for statistics: its kind label (via
// Kinder, default "other") and nominal wire size in bytes (via Sizer,
// default 1). Instrumentation layers use it to label packets the same
// way the transports do.
func Describe(payload any) (kind string, size int) {
	kind, size = "other", 1
	if k, ok := payload.(Kinder); ok {
		kind = k.FabricKind()
	}
	if s, ok := payload.(Sizer); ok {
		size = s.FabricSize()
	}
	return kind, size
}

// Endpoint is one process's attachment to a transport.
type Endpoint interface {
	// PID returns the endpoint's process id.
	PID() ids.PID
	// Send unicasts payload to `to`. Sends never block on the network
	// and never fail loudly: an unreachable or unknown destination is a
	// silent drop counted in Stats, exactly the asynchronous-network
	// contract the protocol is built for.
	Send(to ids.PID, payload any)
	// Broadcast sends payload to every attached endpoint except the
	// sender itself, modeling LAN-style heartbeat broadcast; the
	// membership layer uses it for discovery after partitions heal.
	Broadcast(payload any)
	// Recv blocks for the next message. ok is false once the endpoint
	// is detached (crashed) or the transport closed, and the inbox has
	// drained.
	Recv() (Message, bool)
	// TryRecv returns the next message without blocking.
	TryRecv() (Message, bool)
	// Wait returns a channel signaled when the inbox may be non-empty;
	// use with TryRecv in select loops. A signal is a hint: always
	// re-check with TryRecv.
	Wait() <-chan struct{}
	// Closed reports whether the endpoint has been detached.
	Closed() bool
	// Detach removes this endpoint from the transport, modeling a
	// crash: in-flight messages to it are dropped and its inbox closes.
	Detach()
}

// Transport hands out endpoints and aggregates traffic statistics. All
// methods are safe for concurrent use.
type Transport interface {
	// Attach registers a new endpoint for pid. It is an error to attach
	// a pid that is already attached, or to attach after Close.
	Attach(pid ids.PID) (Endpoint, error)
	// Close stops the transport and closes all endpoints.
	Close()
	// Stats returns a consistent point-in-time snapshot of the traffic
	// counters. See the Stats type for the exact semantics promised.
	Stats() Stats
	// ResetStats zeroes every counter, including the per-kind maps,
	// atomically with respect to Stats; a Stats/ResetStats pair
	// brackets a measurement phase.
	ResetStats()
}

// Partitioner is the optional fault-injection surface of a transport:
// splitting the network into components of *sites* that cannot reach
// each other, and healing it. The simulator implements it natively; the
// UDP backend emulates it with a send/receive-time filter (the
// socket-level analogue of a firewall rule). Experiments and the fault
// harnesses type-assert for it.
type Partitioner interface {
	// SetPartitions splits the network into the given components of
	// sites. Sites not mentioned form one extra implicit component of
	// their own. Passing no arguments heals the network.
	SetPartitions(components ...[]string)
	// Heal removes all partitions.
	Heal()
	// Reachable reports whether sites a and b are currently in the same
	// partition component.
	Reachable(a, b string) bool
}
