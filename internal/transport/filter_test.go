// Tests for the fault-injection decorators: DropFilter's budget and
// re-arm semantics (including the concurrent self-disarm race the
// contract promises never double-counts), and FaultFilter's four
// verdicts over both backends, with broadcast expansion under an armed
// predicate.
package transport_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// recvAll drains ep for up to window, returning the payloads received.
func recvAll(ep transport.Endpoint, window time.Duration) []any {
	var out []any
	deadline := time.Now().Add(window)
	for {
		if m, ok := ep.TryRecv(); ok {
			out = append(out, m.Payload)
			for _, pb := range m.Piggyback {
				out = append(out, pb.Payload)
			}
			continue
		}
		if time.Now().After(deadline) {
			return out
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func countKind(payloads []any, kind string) int {
	n := 0
	for _, p := range payloads {
		if k, _ := transport.Describe(p); k == kind {
			n++
		}
	}
	return n
}

func TestDropFilterArmNRearmResetsBudgetNotDropped(t *testing.T) {
	sim := simnet.New(simnet.Config{Seed: 1})
	defer sim.Close()
	f := transport.NewDropFilter(sim)
	a, err := f.Attach(pid(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Attach(pid(2))
	if err != nil {
		t.Fatal(err)
	}

	all := func(ids.PID, ids.PID, any) bool { return true }

	// Budget 1: first send dropped, second passes (filter self-disarmed).
	f.ArmN(all, 1)
	a.Send(b.PID(), dataFrom(a.PID(), 1))
	a.Send(b.PID(), dataFrom(a.PID(), 2))
	if got := f.Dropped(); got != 1 {
		t.Fatalf("after first arm: Dropped = %d, want 1", got)
	}
	if got := len(recvAll(b, 50*time.Millisecond)); got != 1 {
		t.Fatalf("after first arm: b received %d, want 1", got)
	}

	// Re-arming resets the budget (another drop is allowed) but not the
	// cumulative Dropped counter.
	f.ArmN(all, 1)
	a.Send(b.PID(), dataFrom(a.PID(), 3))
	if got := f.Dropped(); got != 2 {
		t.Fatalf("after re-arm: Dropped = %d, want 2 (cumulative)", got)
	}
	if got := len(recvAll(b, 20*time.Millisecond)); got != 0 {
		t.Fatalf("after re-arm: b received %d, want 0", got)
	}
}

func TestDropFilterArmNZeroDisarms(t *testing.T) {
	sim := simnet.New(simnet.Config{Seed: 1})
	defer sim.Close()
	f := transport.NewDropFilter(sim)
	a, _ := f.Attach(pid(1))
	b, _ := f.Attach(pid(2))

	called := false
	f.ArmN(func(ids.PID, ids.PID, any) bool { called = true; return true }, 0)
	a.Send(b.PID(), dataFrom(a.PID(), 1))
	if got := len(recvAll(b, 50*time.Millisecond)); got != 1 {
		t.Fatalf("b received %d, want 1 (zero budget must pass)", got)
	}
	if called {
		t.Fatal("predicate ran despite zero budget; ArmN(pred, 0) must disarm")
	}
	if got := f.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
}

// TestDropFilterConcurrentDisarmNoDoubleCount hammers a budget-1 filter
// from many goroutines: exactly one send may be dropped, every other
// send must reach the receiver, no matter how the senders interleave
// with the filter's self-disarm.
func TestDropFilterConcurrentDisarmNoDoubleCount(t *testing.T) {
	const senders = 32
	sim := simnet.New(simnet.Config{Seed: 1})
	defer sim.Close()
	f := transport.NewDropFilter(sim)
	b, _ := f.Attach(pid(0))
	eps := make([]transport.Endpoint, senders)
	for i := range eps {
		ep, err := f.Attach(pid(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}

	f.ArmN(func(ids.PID, ids.PID, any) bool { return true }, 1)
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep transport.Endpoint) {
			defer wg.Done()
			ep.Send(b.PID(), dataFrom(ep.PID(), uint64(i)))
		}(i, ep)
	}
	wg.Wait()

	if got := f.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want exactly 1", got)
	}
	if got := len(recvAll(b, 200*time.Millisecond)); got != senders-1 {
		t.Fatalf("b received %d, want %d", got, senders-1)
	}
}

// faultBackends returns fresh filter-wrapped backends for FaultFilter
// tests: the simulator and real loopback UDP.
func faultBackends(t *testing.T) map[string]*transport.FaultFilter {
	t.Helper()
	out := make(map[string]*transport.FaultFilter, 2)
	for name, tr := range backends(t) {
		out[name] = transport.NewFaultFilter(tr)
	}
	return out
}

func TestFaultFilterVerdicts(t *testing.T) {
	for name, f := range faultBackends(t) {
		t.Run(name, func(t *testing.T) {
			a, err := f.Attach(pid(1))
			if err != nil {
				t.Fatal(err)
			}
			b, err := f.Attach(pid(2))
			if err != nil {
				t.Fatal(err)
			}

			// Drop.
			f.Arm(func(ids.PID, ids.PID, any) transport.Verdict { return transport.Drop() })
			a.Send(b.PID(), dataFrom(a.PID(), 1))
			if got := len(recvAll(b, 30*time.Millisecond)); got != 0 {
				t.Fatalf("drop: received %d, want 0", got)
			}
			if f.Dropped() != 1 {
				t.Fatalf("Dropped = %d, want 1", f.Dropped())
			}

			// Duplicate.
			f.Arm(func(ids.PID, ids.PID, any) transport.Verdict { return transport.Duplicate() })
			a.Send(b.PID(), dataFrom(a.PID(), 2))
			if got := len(recvAll(b, 100*time.Millisecond)); got != 2 {
				t.Fatalf("duplicate: received %d, want 2", got)
			}
			if f.Duplicated() != 1 {
				t.Fatalf("Duplicated = %d, want 1", f.Duplicated())
			}

			// Delay: the held packet arrives after a packet sent later.
			f.Arm(func(from, to ids.PID, payload any) transport.Verdict {
				if d, ok := payload.(wire.Data); ok && d.ID.Seq == 3 {
					return transport.Delay(40 * time.Millisecond)
				}
				return transport.Pass()
			})
			a.Send(b.PID(), dataFrom(a.PID(), 3))
			a.Send(b.PID(), dataFrom(a.PID(), 4))
			got := recvAll(b, 150*time.Millisecond)
			if len(got) != 2 {
				t.Fatalf("delay: received %d, want 2", len(got))
			}
			if first, ok := got[0].(wire.Data); !ok || first.ID.Seq != 4 {
				t.Fatalf("delay: first delivery %v, want seq 4 before the held seq 3", got[0])
			}
			if f.Delayed() != 1 {
				t.Fatalf("Delayed = %d, want 1", f.Delayed())
			}

			// Disarmed: pass-through.
			f.Disarm()
			a.Send(b.PID(), dataFrom(a.PID(), 5))
			if got := len(recvAll(b, 100*time.Millisecond)); got != 1 {
				t.Fatalf("disarmed: received %d, want 1", got)
			}
		})
	}
}

// TestFaultFilterBroadcastExpansion checks that an armed filter sees a
// concrete destination for every broadcast fan-out, so a one-way cut
// silences heartbeats toward one member only.
func TestFaultFilterBroadcastExpansion(t *testing.T) {
	for name, f := range faultBackends(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := f.Attach(pid(1))
			b, _ := f.Attach(pid(2))
			c, _ := f.Attach(pid(3))

			// One-way cut a -> b: b must miss a's broadcasts, c must not.
			f.Arm(func(from, to ids.PID, _ any) transport.Verdict {
				if from == a.PID() && to == b.PID() {
					return transport.Drop()
				}
				return transport.Pass()
			})
			for i := 0; i < 3; i++ {
				a.Broadcast(hbFrom(a.PID()))
			}
			if got := countKind(recvAll(b, 50*time.Millisecond), "hb"); got != 0 {
				t.Fatalf("cut side received %d heartbeats, want 0", got)
			}
			if got := countKind(recvAll(c, 100*time.Millisecond), "hb"); got != 3 {
				t.Fatalf("open side received %d heartbeats, want 3", got)
			}
			if f.Dropped() != 3 {
				t.Fatalf("Dropped = %d, want 3", f.Dropped())
			}
		})
	}
}

// TestFaultFilterDetachForgets checks a detached endpoint leaves the
// broadcast-expansion set: an armed broadcast after the detach must not
// fan out to it (the inner transport would silently drop, but the
// predicate should not even be consulted for a gone destination).
func TestFaultFilterDetachForgets(t *testing.T) {
	sim := simnet.New(simnet.Config{Seed: 1})
	defer sim.Close()
	f := transport.NewFaultFilter(sim)
	a, _ := f.Attach(pid(1))
	b, _ := f.Attach(pid(2))

	var mu sync.Mutex
	seen := make(map[ids.PID]int)
	f.Arm(func(_, to ids.PID, _ any) transport.Verdict {
		mu.Lock()
		seen[to]++
		mu.Unlock()
		return transport.Pass()
	})
	b.Detach()
	a.Broadcast(hbFrom(a.PID()))
	mu.Lock()
	defer mu.Unlock()
	if seen[b.PID()] != 0 {
		t.Fatalf("predicate consulted for detached destination %v", b.PID())
	}
}
