package transport

import (
	"sync"
	"sync/atomic"

	"repro/internal/ids"
)

// DropFilter decorates a Transport with a send-time drop predicate,
// giving tests and experiments packet-precise fault injection that
// works identically over the simulator and real UDP: a dropped packet
// simply never enters the underlying transport, exactly as if the
// asynchronous network had lost it. The reconcile experiments use it to
// lose a specific Install packet — a fault no Partitioner can express,
// since a partition cuts every packet between two sites, not one.
//
// The zero predicate (no Arm call) passes everything through.
type DropFilter struct {
	inner Transport

	mu   sync.Mutex
	pred func(from, to ids.PID, payload any) bool
	// budget, when non-negative, bounds how many packets the predicate
	// may drop before the filter disarms itself; a budget of n drops
	// exactly the first n matches. Negative means unlimited.
	budget  int
	dropped atomic.Uint64
}

// NewDropFilter wraps inner. The returned filter also implements
// Partitioner when inner does, forwarding the calls.
func NewDropFilter(inner Transport) *DropFilter {
	return &DropFilter{inner: inner, budget: -1}
}

// Arm installs the drop predicate with an unlimited budget. Passing nil
// disarms the filter.
func (f *DropFilter) Arm(pred func(from, to ids.PID, payload any) bool) {
	f.ArmN(pred, -1)
}

// ArmN installs the drop predicate with a drop budget: after n matches
// have been dropped the filter disarms itself, so a retransmission (or
// a reconcile re-send) of the same packet gets through. n < 0 means
// unlimited; n == 0 is equivalent to Disarm (a zero budget can never
// drop, so no predicate is installed).
//
// Re-arm semantics: re-arming replaces the predicate and resets the
// remaining budget to n, but never resets the cumulative Dropped
// counter — Dropped counts every drop since creation, across arms.
// Arming, budget accounting, and disarming all happen under one lock,
// so a send racing the filter's self-disarm either consumes budget
// (and is dropped and counted exactly once) or observes the disarmed
// filter and passes; the budget is never double-counted.
func (f *DropFilter) ArmN(pred func(from, to ids.PID, payload any) bool, n int) {
	if n == 0 {
		pred = nil
	}
	f.mu.Lock()
	f.pred = pred
	f.budget = n
	f.mu.Unlock()
}

// Disarm removes the predicate; subsequent sends pass through.
func (f *DropFilter) Disarm() { f.Arm(nil) }

// Dropped returns how many packets the filter has dropped since
// creation (never reset).
func (f *DropFilter) Dropped() uint64 { return f.dropped.Load() }

// drop decides one packet, consuming budget on a match.
func (f *DropFilter) drop(from, to ids.PID, payload any) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pred == nil || !f.pred(from, to, payload) {
		return false
	}
	if f.budget == 0 {
		return false
	}
	if f.budget > 0 {
		f.budget--
		if f.budget == 0 {
			f.pred = nil
		}
	}
	f.dropped.Add(1)
	return true
}

// Attach implements Transport.
func (f *DropFilter) Attach(pid ids.PID) (Endpoint, error) {
	ep, err := f.inner.Attach(pid)
	if err != nil {
		return nil, err
	}
	return &filterEndpoint{Endpoint: ep, f: f}, nil
}

// Close implements Transport.
func (f *DropFilter) Close() { f.inner.Close() }

// Stats implements Transport. Filter drops are not folded into the
// inner transport's counters (the packets never reached it); use
// Dropped for the filter's own count.
func (f *DropFilter) Stats() Stats { return f.inner.Stats() }

// ResetStats implements Transport.
func (f *DropFilter) ResetStats() { f.inner.ResetStats() }

// SetPartitions implements Partitioner when the inner transport does;
// it is a no-op otherwise.
func (f *DropFilter) SetPartitions(components ...[]string) {
	if p, ok := f.inner.(Partitioner); ok {
		p.SetPartitions(components...)
	}
}

// Heal implements Partitioner when the inner transport does.
func (f *DropFilter) Heal() {
	if p, ok := f.inner.(Partitioner); ok {
		p.Heal()
	}
}

// Reachable implements Partitioner; without an inner Partitioner every
// pair is reachable (matching an unpartitionable fabric).
func (f *DropFilter) Reachable(a, b string) bool {
	if p, ok := f.inner.(Partitioner); ok {
		return p.Reachable(a, b)
	}
	return true
}

// filterEndpoint intercepts sends; everything else passes through.
type filterEndpoint struct {
	Endpoint
	f *DropFilter
}

func (e *filterEndpoint) Send(to ids.PID, payload any) {
	if e.f.drop(e.PID(), to, payload) {
		return
	}
	e.Endpoint.Send(to, payload)
}

// Broadcast fans out through per-destination Send semantics on the
// inner endpoint; the predicate cannot see individual destinations
// here, so broadcasts are filtered with a zero `to`. Heartbeat-style
// broadcast traffic is rarely the target — predicates that only match
// concrete destinations pass broadcasts through untouched.
func (e *filterEndpoint) Broadcast(payload any) {
	if e.f.drop(e.PID(), ids.PID{}, payload) {
		return
	}
	e.Endpoint.Broadcast(payload)
}
