package quorum

import (
	"fmt"
	"testing"

	"repro/internal/ids"
)

// BenchmarkCanWrite measures the quorum predicate evaluated by mode
// functions on every view change.
func BenchmarkCanWrite(b *testing.B) {
	for _, n := range []int{3, 9, 33} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sites := make([]string, n)
			set := make(ids.PIDSet, n)
			for i := range sites {
				sites[i] = fmt.Sprintf("s%03d", i)
				set.Add(ids.PID{Site: sites[i], Inc: 1})
			}
			rw := MajorityRW(Uniform(sites...))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !rw.CanWrite(set) {
					b.Fatal("full set must hold quorum")
				}
			}
		})
	}
}
