// Package quorum implements weighted voting for replicated objects, the
// classic technique the paper's replicated-file example uses: each
// replica holds votes, and a quorum is a set of votes obtainable in at
// most one concurrent view, so conflicting operations can never both
// find a quorum across concurrent partitions.
package quorum

import (
	"fmt"

	"repro/internal/ids"
)

// Voting assigns votes to sites. Votes belong to sites, not incarnations:
// a recovered replica (new PID, same site) retains its votes.
type Voting struct {
	votes map[string]int
	total int
}

// New builds a vote assignment. Negative votes are rejected.
func New(votes map[string]int) (Voting, error) {
	v := Voting{votes: make(map[string]int, len(votes))}
	for site, n := range votes {
		if n < 0 {
			return Voting{}, fmt.Errorf("quorum: negative votes for %q", site)
		}
		v.votes[site] = n
		v.total += n
	}
	if v.total == 0 {
		return Voting{}, fmt.Errorf("quorum: no votes assigned")
	}
	return v, nil
}

// Uniform assigns one vote to each given site.
func Uniform(sites ...string) Voting {
	votes := make(map[string]int, len(sites))
	for _, s := range sites {
		votes[s] = 1
	}
	v, err := New(votes)
	if err != nil {
		panic(err) // unreachable: at least one site with one vote
	}
	return v
}

// Total returns the total number of votes.
func (v Voting) Total() int { return v.total }

// VotesOf sums the votes held by the distinct sites present in set.
// Multiple incarnations of one site count once.
func (v Voting) VotesOf(set ids.PIDSet) int {
	seen := make(map[string]struct{}, len(set))
	sum := 0
	for p := range set {
		if _, dup := seen[p.Site]; dup {
			continue
		}
		seen[p.Site] = struct{}{}
		sum += v.votes[p.Site]
	}
	return sum
}

// Majority reports whether set holds a strict majority of all votes.
// Strict majority guarantees at most one concurrent view can have it.
func (v Voting) Majority(set ids.PIDSet) bool {
	return v.VotesOf(set)*2 > v.total
}

// Meets reports whether set holds at least threshold votes.
func (v Voting) Meets(set ids.PIDSet, threshold int) bool {
	return v.VotesOf(set) >= threshold
}

// RW is a read/write quorum system over a vote assignment: any read
// quorum intersects any write quorum (R+W > total), and two write
// quorums always intersect (2W > total).
type RW struct {
	Voting Voting
	// R and W are the read and write thresholds in votes.
	R, W int
}

// NewRW validates the thresholds and returns the quorum system.
func NewRW(v Voting, r, w int) (RW, error) {
	if r <= 0 || w <= 0 {
		return RW{}, fmt.Errorf("quorum: thresholds must be positive (r=%d, w=%d)", r, w)
	}
	if r+w <= v.total {
		return RW{}, fmt.Errorf("quorum: r+w = %d must exceed total votes %d", r+w, v.total)
	}
	if 2*w <= v.total {
		return RW{}, fmt.Errorf("quorum: 2w = %d must exceed total votes %d", 2*w, v.total)
	}
	return RW{Voting: v, R: r, W: w}, nil
}

// MajorityRW returns the symmetric majority quorum system (R = W =
// floor(total/2)+1).
func MajorityRW(v Voting) RW {
	maj := v.total/2 + 1
	rw, err := NewRW(v, maj, maj)
	if err != nil {
		panic(err) // unreachable: majority thresholds always valid
	}
	return rw
}

// CanRead reports whether set holds a read quorum.
func (q RW) CanRead(set ids.PIDSet) bool { return q.Voting.Meets(set, q.R) }

// CanWrite reports whether set holds a write quorum.
func (q RW) CanWrite(set ids.PIDSet) bool { return q.Voting.Meets(set, q.W) }
