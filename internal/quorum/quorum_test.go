package quorum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func pid(site string, inc uint32) ids.PID { return ids.PID{Site: site, Inc: inc} }

func TestNewValidation(t *testing.T) {
	if _, err := New(map[string]int{"a": -1}); err == nil {
		t.Error("negative votes accepted")
	}
	if _, err := New(map[string]int{}); err == nil {
		t.Error("empty assignment accepted")
	}
	if _, err := New(map[string]int{"a": 0}); err == nil {
		t.Error("zero total accepted")
	}
	v, err := New(map[string]int{"a": 2, "b": 1})
	if err != nil || v.Total() != 3 {
		t.Fatalf("New = %v, %v", v, err)
	}
}

func TestUniform(t *testing.T) {
	v := Uniform("a", "b", "c")
	if v.Total() != 3 {
		t.Fatalf("Total = %d", v.Total())
	}
}

func TestVotesOfCountsSitesOnce(t *testing.T) {
	v := Uniform("a", "b", "c")
	// two incarnations of "a" must count a's vote once
	set := ids.NewPIDSet(pid("a", 1), pid("a", 2), pid("b", 1))
	if got := v.VotesOf(set); got != 2 {
		t.Fatalf("VotesOf = %d, want 2", got)
	}
}

func TestMajority(t *testing.T) {
	v := Uniform("a", "b", "c", "d")
	tests := []struct {
		name string
		set  ids.PIDSet
		want bool
	}{
		{"three of four", ids.NewPIDSet(pid("a", 1), pid("b", 1), pid("c", 1)), true},
		{"exactly half", ids.NewPIDSet(pid("a", 1), pid("b", 1)), false},
		{"one", ids.NewPIDSet(pid("a", 1)), false},
		{"unknown site", ids.NewPIDSet(pid("x", 1), pid("y", 1), pid("z", 1)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := v.Majority(tt.set); got != tt.want {
				t.Errorf("Majority(%v) = %v, want %v", tt.set, got, tt.want)
			}
		})
	}
}

func TestWeightedMajority(t *testing.T) {
	v, err := New(map[string]int{"a": 3, "b": 1, "c": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Majority(ids.NewPIDSet(pid("a", 1))) {
		t.Error("a alone holds 3/5 votes: majority")
	}
	if v.Majority(ids.NewPIDSet(pid("b", 1), pid("c", 1))) {
		t.Error("b+c hold 2/5 votes: not a majority")
	}
}

func TestNewRWValidation(t *testing.T) {
	v := Uniform("a", "b", "c")
	if _, err := NewRW(v, 1, 3); err != nil {
		t.Errorf("ROWA-style r=1,w=3: %v", err)
	}
	if _, err := NewRW(v, 1, 2); err == nil {
		t.Error("r+w <= total accepted")
	}
	if _, err := NewRW(v, 3, 1); err == nil {
		t.Error("2w <= total accepted")
	}
	if _, err := NewRW(v, 0, 3); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestMajorityRW(t *testing.T) {
	rw := MajorityRW(Uniform("a", "b", "c", "d", "e"))
	if rw.R != 3 || rw.W != 3 {
		t.Fatalf("thresholds = %d, %d", rw.R, rw.W)
	}
	three := ids.NewPIDSet(pid("a", 1), pid("b", 1), pid("c", 1))
	two := ids.NewPIDSet(pid("a", 1), pid("b", 1))
	if !rw.CanRead(three) || !rw.CanWrite(three) {
		t.Error("three of five must hold both quorums")
	}
	if rw.CanRead(two) || rw.CanWrite(two) {
		t.Error("two of five must hold neither quorum")
	}
}

// TestQuorumIntersection is the safety property the paper's file example
// rests on: two write quorums always share a site, so divergent writes
// cannot both succeed in concurrent partitions.
func TestQuorumIntersection(t *testing.T) {
	sites := []string{"a", "b", "c", "d", "e", "f", "g"}
	f := func(mask1, mask2 uint8) bool {
		v := Uniform(sites...)
		rw := MajorityRW(v)
		set1, set2 := make(ids.PIDSet), make(ids.PIDSet)
		for i, s := range sites {
			if mask1&(1<<i) != 0 {
				set1.Add(pid(s, 1))
			}
			if mask2&(1<<i) != 0 {
				set2.Add(pid(s, 1))
			}
		}
		if rw.CanWrite(set1) && rw.CanWrite(set2) {
			if len(set1.Intersect(set2)) == 0 {
				return false
			}
		}
		// read and write quorums intersect too
		if rw.CanRead(set1) && rw.CanWrite(set2) {
			if len(set1.Intersect(set2)) == 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(8)), MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDisjointPartitionsCannotBothWrite(t *testing.T) {
	// Direct form: any 2-partition of the sites gives at most one side a
	// write quorum.
	sites := []string{"a", "b", "c", "d", "e"}
	rw := MajorityRW(Uniform(sites...))
	for mask := 0; mask < 1<<len(sites); mask++ {
		left, right := make(ids.PIDSet), make(ids.PIDSet)
		for i, s := range sites {
			if mask&(1<<i) != 0 {
				left.Add(pid(s, 1))
			} else {
				right.Add(pid(s, 1))
			}
		}
		if rw.CanWrite(left) && rw.CanWrite(right) {
			t.Fatalf("both sides of partition %05b hold write quorums", mask)
		}
	}
}
