// Package vstest provides the shared test harness for integration tests
// and benchmarks across the stack: a fabric + stable-storage "cluster",
// event sinks, and convergence helpers. It is a test-support package (it
// takes testing.TB), kept out of _test files so that every package's
// tests and the root benchmarks can share it.
package vstest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/stable"
)

// FastOptions returns protocol options tuned for simulation speed — the
// same profile as experiments.FastTiming, via the core.Sim* constants it
// is built from (importing experiments here would cycle through the app
// packages whose tests use this harness).
func FastOptions() core.Options {
	return core.Options{
		Group:          "g",
		HeartbeatEvery: core.SimHeartbeatEvery,
		SuspectAfter:   core.SimSuspectAfter,
		Tick:           core.SimTick,
		ProposeTimeout: core.SimProposeTimeout,
		Enriched:       true,
		LogViews:       true,
	}
}

// Net is a simulated cluster: fabric, per-site stable storage, and the
// set of started processes with their event sinks.
type Net struct {
	TB     testing.TB
	Fabric *simnet.Fabric
	Reg    *stable.Registry

	mu    sync.Mutex
	procs map[string]*core.Process
	sinks map[ids.PID]*Sink
}

// NewNet creates a cluster with a seeded low-latency fabric.
func NewNet(tb testing.TB, seed int64) *Net { return NewNetLossy(tb, seed, 0) }

// NewNetLossy creates a cluster whose fabric drops each message with the
// given probability.
func NewNetLossy(tb testing.TB, seed int64, lossRate float64) *Net {
	tb.Helper()
	f := simnet.New(simnet.Config{
		Delay:    simnet.NewUniformDelay(50*time.Microsecond, 400*time.Microsecond, seed+1),
		Seed:     seed,
		LossRate: lossRate,
	})
	n := &Net{
		TB:     tb,
		Fabric: f,
		Reg:    stable.NewRegistry(),
		procs:  make(map[string]*core.Process),
		sinks:  make(map[ids.PID]*Sink),
	}
	tb.Cleanup(f.Close)
	return n
}

// Start boots a process at site with the given options and attaches an
// event sink.
func (n *Net) Start(site string, opts core.Options) *core.Process {
	n.TB.Helper()
	p, err := core.Start(n.Fabric, n.Reg, site, opts)
	if err != nil {
		n.TB.Fatalf("Start(%s): %v", site, err)
	}
	sk := &Sink{}
	go sk.run(p.Events())
	n.mu.Lock()
	n.procs[site] = p
	n.sinks[p.PID()] = sk
	n.mu.Unlock()
	return p
}

// StartRaw boots a process without attaching an event sink; the caller
// owns the event stream (e.g. to drive an application layer).
func (n *Net) StartRaw(site string, opts core.Options) *core.Process {
	n.TB.Helper()
	p, err := core.Start(n.Fabric, n.Reg, site, opts)
	if err != nil {
		n.TB.Fatalf("Start(%s): %v", site, err)
	}
	n.mu.Lock()
	n.procs[site] = p
	n.mu.Unlock()
	return p
}

// StartRawN boots count sink-less processes at sites "a", "b", ....
func (n *Net) StartRawN(count int, opts core.Options) []*core.Process {
	n.TB.Helper()
	out := make([]*core.Process, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, n.StartRaw(SiteName(i), opts))
	}
	return out
}

// StartN boots count processes at sites "a", "b", ... with shared options.
func (n *Net) StartN(count int, opts core.Options) []*core.Process {
	n.TB.Helper()
	out := make([]*core.Process, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, n.Start(SiteName(i), opts))
	}
	return out
}

// SiteName maps an index to a site name ("a".."z", then "s26"...).
func SiteName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return fmt.Sprintf("s%d", i)
}

// Proc returns the latest process started at site (nil if none).
func (n *Net) Proc(site string) *core.Process {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.procs[site]
}

// Sink returns p's event sink.
func (n *Net) Sink(p *core.Process) *Sink {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sinks[p.PID()]
}

// Sink drains one process's event stream into an inspectable log.
type Sink struct {
	mu     sync.Mutex
	events []core.Event
}

func (s *Sink) run(ch <-chan core.Event) {
	for ev := range ch {
		s.mu.Lock()
		s.events = append(s.events, ev)
		s.mu.Unlock()
	}
}

// Events returns a snapshot of all events in arrival order.
func (s *Sink) Events() []core.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]core.Event, len(s.events))
	copy(out, s.events)
	return out
}

// Views returns the installed views in order.
func (s *Sink) Views() []core.EView {
	var out []core.EView
	for _, ev := range s.Events() {
		if v, ok := ev.(core.ViewEvent); ok {
			out = append(out, v.EView)
		}
	}
	return out
}

// Msgs returns delivered messages grouped by delivery view.
func (s *Sink) Msgs() map[ids.ViewID][]core.MsgEvent {
	out := make(map[ids.ViewID][]core.MsgEvent)
	for _, ev := range s.Events() {
		if m, ok := ev.(core.MsgEvent); ok {
			out[m.View] = append(out[m.View], m)
		}
	}
	return out
}

// EChanges returns applied e-view changes in order.
func (s *Sink) EChanges() []core.EChangeEvent {
	var out []core.EChangeEvent
	for _, ev := range s.Events() {
		if e, ok := ev.(core.EChangeEvent); ok {
			out = append(out, e)
		}
	}
	return out
}

// WaitConverged blocks until all given processes have installed one
// common view containing exactly them.
func WaitConverged(tb testing.TB, procs []*core.Process, timeout time.Duration) core.EView {
	tb.Helper()
	want := make(ids.PIDSet, len(procs))
	for _, p := range procs {
		want.Add(p.PID())
	}
	deadline := time.Now().Add(timeout)
	for {
		v0 := procs[0].CurrentView()
		ok := v0.Comp().Equal(want)
		if ok {
			for _, p := range procs[1:] {
				v := p.CurrentView()
				if v.ID != v0.ID || !v.Comp().Equal(want) {
					ok = false
					break
				}
			}
		}
		if ok {
			return v0
		}
		if time.Now().After(deadline) {
			var state string
			for _, p := range procs {
				v := p.CurrentView()
				state += fmt.Sprintf("\n  %v: %v %v", p.PID(), v.ID, v.Members)
			}
			tb.Fatalf("convergence timeout; want %v, state:%s", want, state)
			return core.EView{}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Eventually polls cond until true or the timeout elapses (fatal).
func Eventually(tb testing.TB, timeout time.Duration, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			tb.Fatalf("timeout waiting for %s", what)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// WaitView polls p's current view until pred holds.
func WaitView(tb testing.TB, p *core.Process, timeout time.Duration, what string, pred func(core.EView) bool) core.EView {
	tb.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := p.CurrentView()
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			tb.Fatalf("%v: timeout waiting for %s; current view %v %v", p.PID(), what, v.ID, v.Members)
			return core.EView{}
		}
		time.Sleep(2 * time.Millisecond)
	}
}
