package transfer

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vstest"
)

// blobApp is a trivial App: the bulk state is a blob, the critical piece
// a small header.
type blobApp struct {
	mu       sync.Mutex
	critical []byte
	bulk     []byte
}

func (a *blobApp) MarshalCritical() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte{}, a.critical...), nil
}

func (a *blobApp) MarshalBulk() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte{}, a.bulk...), nil
}

func (a *blobApp) ApplyCritical(b []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.critical = append([]byte{}, b...)
	return nil
}

func (a *blobApp) ApplyBulk(b []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bulk = append([]byte{}, b...)
	return nil
}

func (a *blobApp) snapshot() (crit, bulk []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte{}, a.critical...), append([]byte{}, a.bulk...)
}

// pump drives a tool from a process's event stream, reporting each
// progress update.
func pump(t *testing.T, p *core.Process, tool *Tool, progress chan<- Progress) {
	t.Helper()
	go func() {
		for ev := range p.Events() {
			m, ok := ev.(core.MsgEvent)
			if !ok {
				continue
			}
			pr, handled, err := tool.HandleMessage(m)
			if err != nil {
				t.Errorf("HandleMessage at %v: %v", p.PID(), err)
			}
			if handled && progress != nil {
				progress <- pr
			}
		}
	}()
}

func runTransfer(t *testing.T, strategy Strategy, bulkSize, chunkSize int) (critFirst bool) {
	t.Helper()
	n := vstest.NewNet(t, int64(42+int(strategy)))
	procs := n.StartRawN(2, vstest.FastOptions())
	donor, joiner := procs[0], procs[1]
	vstest.WaitConverged(t, procs, 5*time.Second)

	donorApp := &blobApp{critical: []byte("hdr-v7"), bulk: bytes.Repeat([]byte("x"), bulkSize)}
	joinerApp := &blobApp{}
	donorTool := New(donor, donorApp, Options{Strategy: strategy, ChunkSize: chunkSize})
	joinerTool := New(joiner, joinerApp, Options{Strategy: strategy, ChunkSize: chunkSize})

	progress := make(chan Progress, 1024)
	pump(t, donor, donorTool, nil)
	pump(t, joiner, joinerTool, progress)

	if err := joinerTool.Request(donor.PID()); err != nil {
		t.Fatalf("Request: %v", err)
	}

	deadline := time.After(10 * time.Second)
	// A view change (e.g. a false suspicion under test load) legitimately
	// drops in-flight transfer traffic; the application-level contract is
	// to re-request, so the test does the same.
	retry := time.NewTicker(500 * time.Millisecond)
	defer retry.Stop()
	sawCriticalBeforeDone := false
	for {
		select {
		case <-retry.C:
			_ = joinerTool.Request(donor.PID())
		case pr := <-progress:
			if pr.CriticalDone && !pr.Done {
				sawCriticalBeforeDone = true
			}
			if pr.Done {
				crit, bulk := joinerApp.snapshot()
				if !bytes.Equal(bulk, donorApp.bulk) {
					t.Fatalf("bulk mismatch: got %d bytes, want %d", len(bulk), len(donorApp.bulk))
				}
				if strategy == Split && !bytes.Equal(crit, []byte("hdr-v7")) {
					t.Fatalf("critical mismatch: %q", crit)
				}
				if joinerTool.Receiving() {
					t.Fatal("Receiving still true after Done")
				}
				return sawCriticalBeforeDone
			}
		case <-deadline:
			t.Fatal("transfer did not complete")
		}
	}
}

func TestBlockingTransferMovesBulk(t *testing.T) {
	runTransfer(t, Blocking, 64*1024, 4096)
}

func TestSplitTransferDeliversCriticalFirst(t *testing.T) {
	critFirst := runTransfer(t, Split, 64*1024, 4096)
	if !critFirst {
		t.Fatal("split transfer did not surface the critical piece before completion")
	}
}

func TestEmptyBulkStillCompletes(t *testing.T) {
	runTransfer(t, Blocking, 0, 4096)
}

func TestSingleChunk(t *testing.T) {
	runTransfer(t, Split, 100, 4096)
}

func TestChunkHelper(t *testing.T) {
	if got := chunk(nil, 4); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("chunk(nil) = %v", got)
	}
	got := chunk([]byte("abcdefgh"), 3)
	if len(got) != 3 || string(got[0]) != "abc" || string(got[2]) != "gh" {
		t.Fatalf("chunk = %q", got)
	}
}

func TestAbortDropsReception(t *testing.T) {
	n := vstest.NewNet(t, 77)
	procs := n.StartRawN(2, vstest.FastOptions())
	vstest.WaitConverged(t, procs, 5*time.Second)
	app := &blobApp{}
	tool := New(procs[1], app, Options{})
	if err := tool.Request(procs[0].PID()); err != nil {
		t.Fatal(err)
	}
	if !tool.Receiving() {
		t.Fatal("Receiving false after Request")
	}
	tool.Abort()
	if tool.Receiving() {
		t.Fatal("Receiving true after Abort")
	}
}

func TestIsTransferMsg(t *testing.T) {
	payload, err := encode(envelope{Type: "req"})
	if err != nil {
		t.Fatal(err)
	}
	if !IsTransferMsg(payload) {
		t.Fatal("IsTransferMsg false for envelope")
	}
	if IsTransferMsg([]byte("app data")) {
		t.Fatal("IsTransferMsg true for app data")
	}
	if _, err := decode([]byte("junk")); err == nil {
		t.Fatal("decode accepted junk")
	}
}

// failingApp errors on every callback, driving the donor/receiver error
// paths.
type failingApp struct{}

func (failingApp) MarshalCritical() ([]byte, error) { return nil, fmt.Errorf("no critical") }
func (failingApp) MarshalBulk() ([]byte, error)     { return nil, fmt.Errorf("no bulk") }
func (failingApp) ApplyCritical([]byte) error       { return fmt.Errorf("reject critical") }
func (failingApp) ApplyBulk([]byte) error           { return fmt.Errorf("reject bulk") }

func TestDonorMarshalErrorsSurface(t *testing.T) {
	n := vstest.NewNet(t, 78)
	procs := n.StartRawN(2, vstest.FastOptions())
	vstest.WaitConverged(t, procs, 5*time.Second)
	donorTool := New(procs[0], failingApp{}, Options{Strategy: Split})
	joinerTool := New(procs[1], &blobApp{}, Options{Strategy: Split})

	errs := make(chan error, 16)
	go func() {
		for ev := range procs[0].Events() {
			if m, ok := ev.(core.MsgEvent); ok {
				if _, handled, err := donorTool.HandleMessage(m); handled && err != nil {
					errs <- err
				}
			}
		}
	}()
	go func() {
		for range procs[1].Events() {
		}
	}()
	if err := joinerTool.Request(procs[0].PID()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("nil error surfaced")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("donor marshal error never surfaced")
	}
}

func TestReceiverApplyErrorsSurface(t *testing.T) {
	n := vstest.NewNet(t, 79)
	procs := n.StartRawN(2, vstest.FastOptions())
	vstest.WaitConverged(t, procs, 5*time.Second)
	donorApp := &blobApp{critical: []byte("hdr"), bulk: []byte("data")}
	donorTool := New(procs[0], donorApp, Options{Strategy: Split})
	joinerTool := New(procs[1], failingApp{}, Options{Strategy: Split})

	go func() {
		for ev := range procs[0].Events() {
			if m, ok := ev.(core.MsgEvent); ok {
				_, _, _ = donorTool.HandleMessage(m)
			}
		}
	}()
	errs := make(chan error, 16)
	go func() {
		for ev := range procs[1].Events() {
			if m, ok := ev.(core.MsgEvent); ok {
				if _, handled, err := joinerTool.HandleMessage(m); handled && err != nil {
					errs <- err
				}
			}
		}
	}()
	if err := joinerTool.Request(procs[0].PID()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("nil error surfaced")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver apply error never surfaced")
	}
}

func TestUnsolicitedAndUnknownEnvelopes(t *testing.T) {
	n := vstest.NewNet(t, 80)
	procs := n.StartRawN(2, vstest.FastOptions())
	vstest.WaitConverged(t, procs, 5*time.Second)
	tool := New(procs[1], &blobApp{}, Options{})

	// Unsolicited chunk (no Request outstanding): handled, ignored.
	chunkPayload, err := encode(envelope{Type: "chunk", Seq: 0, Total: 1, Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	pr, handled, err := tool.HandleMessage(core.MsgEvent{From: procs[0].PID(), Payload: chunkPayload})
	if !handled || err != nil || pr.Done {
		t.Fatalf("unsolicited chunk: handled=%v err=%v pr=%+v", handled, err, pr)
	}
	// Unknown envelope type: handled with an error.
	bogus, err := encode(envelope{Type: "???"})
	if err != nil {
		t.Fatal(err)
	}
	if _, handled, err := tool.HandleMessage(core.MsgEvent{Payload: bogus}); !handled || err == nil {
		t.Fatalf("unknown envelope: handled=%v err=%v", handled, err)
	}
	// Non-transfer payload: not handled.
	if _, handled, _ := tool.HandleMessage(core.MsgEvent{Payload: []byte("app data")}); handled {
		t.Fatal("app payload claimed as transfer traffic")
	}
	// Corrupt transfer payload: handled with an error.
	if _, handled, err := tool.HandleMessage(core.MsgEvent{Payload: append(append([]byte{}, magic...), "not json"...)}); !handled || err == nil {
		t.Fatalf("corrupt payload: handled=%v err=%v", handled, err)
	}
}

func TestBadChunkIndicesRejected(t *testing.T) {
	n := vstest.NewNet(t, 81)
	procs := n.StartRawN(2, vstest.FastOptions())
	vstest.WaitConverged(t, procs, 5*time.Second)
	tool := New(procs[1], &blobApp{}, Options{})
	if err := tool.Request(procs[0].PID()); err != nil {
		t.Fatal(err)
	}
	view := procs[1].CurrentView().ID
	mk := func(seq, total int) core.MsgEvent {
		payload, err := encode(envelope{Type: "chunk", Seq: seq, Total: total, Data: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		return core.MsgEvent{From: procs[0].PID(), View: view, Payload: payload}
	}
	if _, _, err := tool.HandleMessage(mk(0, 2)); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	if _, _, err := tool.HandleMessage(mk(5, 2)); err == nil {
		t.Fatal("out-of-range seq accepted")
	}
	if _, _, err := tool.HandleMessage(mk(1, 9)); err == nil {
		t.Fatal("inconsistent total accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if Blocking.String() != "blocking" || Split.String() != "split" || Strategy(9).String() == "" {
		t.Fatal("strategy strings")
	}
}
