// Package transfer implements an Isis-style state transfer tool
// (Section 5 of the paper): the application declares what constitutes its
// shared state through marshal/apply callbacks, and the tool moves it
// from an up-to-date donor to a process entering the computation.
//
// Two strategies reproduce the paper's discussion:
//
//   - Blocking: the entire state is transferred before the receiver
//     resumes external operations — simple, but the resume time grows
//     with the state size, which the paper notes "might be infeasible"
//     for large states;
//
//   - Split: a small critical piece is transferred synchronously and the
//     bulk streams over afterwards, concurrently with application
//     activity in the new view — the alternative the paper (and [1])
//     advocates for file systems and databases.
//
// The tool is reactive: the application owns its event loop and feeds
// transfer messages into HandleMessage; the tool answers requests and
// tracks progress. Transfer traffic travels as unicasts within the
// current view, so a view change aborts an in-progress transfer cleanly
// (the application re-requests in the new view, per its classifier).
package transfer

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
)

// Strategy selects how the donor ships the state.
type Strategy int

// The transfer strategies.
const (
	// Blocking ships everything as bulk; the receiver should not resume
	// externals until Done.
	Blocking Strategy = iota + 1
	// Split ships the critical piece first (after which the receiver may
	// resume externals), then streams the bulk.
	Split
)

// String renders the strategy.
func (s Strategy) String() string {
	switch s {
	case Blocking:
		return "blocking"
	case Split:
		return "split"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// App is the application side of the tool: what Isis asked programmers to
// define — which program state is shared state.
type App interface {
	// MarshalCritical serializes the small piece that must transfer in
	// synchrony with the join (Split only; Blocking ignores it).
	MarshalCritical() ([]byte, error)
	// MarshalBulk serializes the (possibly large) remainder.
	MarshalBulk() ([]byte, error)
	// ApplyCritical installs a received critical piece.
	ApplyCritical([]byte) error
	// ApplyBulk installs a received bulk state.
	ApplyBulk([]byte) error
}

// Options configures a Tool.
type Options struct {
	// Strategy defaults to Blocking.
	Strategy Strategy
	// ChunkSize is the bulk chunk size in bytes (default 4096).
	ChunkSize int
}

// Tool drives transfers for one process. Safe for concurrent use: the
// typical application handles messages on its event goroutine while
// issuing (re-)requests from elsewhere.
type Tool struct {
	p    *core.Process
	app  App
	opts Options

	// mu guards the receiver state.
	mu  sync.Mutex
	rcv *rcvState
}

type rcvState struct {
	donor        ids.PID
	view         ids.ViewID
	criticalDone bool
	chunks       [][]byte
	total        int
	done         bool
}

// New creates a tool for p.
func New(p *core.Process, app App, opts Options) *Tool {
	if opts.Strategy == 0 {
		opts.Strategy = Blocking
	}
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = 4096
	}
	return &Tool{p: p, app: app, opts: opts}
}

// Progress reports the receiver's transfer progress.
type Progress struct {
	// CriticalDone is true once the critical piece is applied (Split) or
	// unconditionally for Blocking donors that sent no critical piece.
	CriticalDone bool
	// Received / Total count bulk chunks.
	Received, Total int
	// Done is true when the whole state is applied.
	Done bool
}

// envelope is the wire format of transfer messages.
type envelope struct {
	Type     string  `json:"t"` // "req", "crit", "chunk"
	To       ids.PID `json:"to"`
	Strategy int     `json:"strat,omitempty"`
	Seq      int     `json:"seq,omitempty"`
	Total    int     `json:"total,omitempty"`
	Data     []byte  `json:"data,omitempty"`
}

var magic = []byte("\x01xfer1\x00")

func encode(env envelope) ([]byte, error) {
	body, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("transfer: encode: %w", err)
	}
	return append(append([]byte{}, magic...), body...), nil
}

// IsTransferMsg reports whether a payload belongs to the transfer tool.
func IsTransferMsg(payload []byte) bool { return bytes.HasPrefix(payload, magic) }

func decode(payload []byte) (envelope, error) {
	var env envelope
	if !IsTransferMsg(payload) {
		return env, fmt.Errorf("transfer: not a transfer payload")
	}
	if err := json.Unmarshal(payload[len(magic):], &env); err != nil {
		return env, fmt.Errorf("transfer: decode: %w", err)
	}
	return env, nil
}

// Request asks donor for the shared state in the current view. Any
// in-progress reception is abandoned.
func (t *Tool) Request(donor ids.PID) error {
	view := t.p.CurrentView()
	payload, err := encode(envelope{Type: "req", To: donor, Strategy: int(t.opts.Strategy)})
	if err != nil {
		return err
	}
	if err := t.p.Unicast(donor, payload); err != nil {
		return fmt.Errorf("transfer: request to %v: %w", donor, err)
	}
	t.mu.Lock()
	t.rcv = &rcvState{donor: donor, view: view.ID}
	t.mu.Unlock()
	return nil
}

// Receiving reports whether a reception is in progress.
func (t *Tool) Receiving() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rcv != nil && !t.rcv.done
}

// Abort drops any in-progress reception (call on view changes).
func (t *Tool) Abort() {
	t.mu.Lock()
	t.rcv = nil
	t.mu.Unlock()
}

// HandleMessage feeds a delivered message into the tool. Non-transfer
// messages are ignored (ok=false). As a donor it answers requests; as a
// receiver it applies critical/bulk pieces and reports progress.
func (t *Tool) HandleMessage(m core.MsgEvent) (Progress, bool, error) {
	if !IsTransferMsg(m.Payload) {
		return Progress{}, false, nil
	}
	env, err := decode(m.Payload)
	if err != nil {
		return Progress{}, true, err
	}
	switch env.Type {
	case "req":
		return Progress{}, true, t.serve(m.From, Strategy(env.Strategy))
	case "crit":
		return t.onCritical(m, env)
	case "chunk":
		return t.onChunk(m, env)
	default:
		return Progress{}, true, fmt.Errorf("transfer: unknown envelope type %q", env.Type)
	}
}

// serve ships the state to a requester according to its strategy.
func (t *Tool) serve(to ids.PID, strat Strategy) error {
	if strat == Split {
		crit, err := t.app.MarshalCritical()
		if err != nil {
			return fmt.Errorf("transfer: marshal critical: %w", err)
		}
		payload, err := encode(envelope{Type: "crit", To: to, Data: crit})
		if err != nil {
			return err
		}
		if err := t.p.Unicast(to, payload); err != nil {
			return fmt.Errorf("transfer: send critical: %w", err)
		}
	}
	bulk, err := t.app.MarshalBulk()
	if err != nil {
		return fmt.Errorf("transfer: marshal bulk: %w", err)
	}
	chunks := chunk(bulk, t.opts.ChunkSize)
	for i, c := range chunks {
		payload, err := encode(envelope{Type: "chunk", To: to, Seq: i, Total: len(chunks), Data: c})
		if err != nil {
			return err
		}
		if err := t.p.Unicast(to, payload); err != nil {
			return fmt.Errorf("transfer: send chunk %d/%d: %w", i+1, len(chunks), err)
		}
	}
	return nil
}

func (t *Tool) onCritical(m core.MsgEvent, env envelope) (Progress, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rcv == nil || m.From != t.rcv.donor || m.View != t.rcv.view {
		return Progress{}, true, nil // stale or unsolicited
	}
	if err := t.app.ApplyCritical(env.Data); err != nil {
		return t.progressLocked(), true, fmt.Errorf("transfer: apply critical: %w", err)
	}
	t.rcv.criticalDone = true
	return t.progressLocked(), true, nil
}

func (t *Tool) onChunk(m core.MsgEvent, env envelope) (Progress, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rcv == nil || m.From != t.rcv.donor || m.View != t.rcv.view {
		return Progress{}, true, nil
	}
	if t.rcv.total == 0 {
		t.rcv.total = env.Total
		t.rcv.chunks = make([][]byte, env.Total)
	}
	if env.Seq < 0 || env.Seq >= t.rcv.total || env.Total != t.rcv.total {
		return t.progressLocked(), true, fmt.Errorf("transfer: bad chunk %d/%d", env.Seq, env.Total)
	}
	// Force non-nil so an empty chunk (omitted by JSON) still marks its
	// slot as received.
	t.rcv.chunks[env.Seq] = append([]byte{}, env.Data...)
	for _, c := range t.rcv.chunks {
		if c == nil {
			return t.progressLocked(), true, nil // still incomplete
		}
	}
	bulk := bytes.Join(t.rcv.chunks, nil)
	if err := t.app.ApplyBulk(bulk); err != nil {
		return t.progressLocked(), true, fmt.Errorf("transfer: apply bulk: %w", err)
	}
	t.rcv.done = true
	return t.progressLocked(), true, nil
}

// progressLocked reads progress; t.mu must be held.
func (t *Tool) progressLocked() Progress {
	if t.rcv == nil {
		return Progress{}
	}
	received := 0
	for _, c := range t.rcv.chunks {
		if c != nil {
			received++
		}
	}
	return Progress{
		CriticalDone: t.rcv.criticalDone,
		Received:     received,
		Total:        t.rcv.total,
		Done:         t.rcv.done,
	}
}

// chunk splits b into pieces of at most size bytes (at least one piece,
// possibly empty, so the receiver always observes completion).
func chunk(b []byte, size int) [][]byte {
	if len(b) == 0 {
		return [][]byte{{}}
	}
	var out [][]byte
	for len(b) > 0 {
		n := size
		if n > len(b) {
			n = len(b)
		}
		out = append(out, b[:n])
		b = b[n:]
	}
	return out
}
