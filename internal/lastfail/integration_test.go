package lastfail_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lastfail"
	"repro/internal/stable"
	"repro/internal/vstest"
)

// TestLastToFailAfterRealCrashes runs a live group through staggered
// crashes, then — before any recovery appends new log entries — gathers
// the persisted view logs and determines who failed last, as a
// recovering application would for state creation (§4).
func TestLastToFailAfterRealCrashes(t *testing.T) {
	n := vstest.NewNet(t, 400)
	opts := vstest.FastOptions() // LogViews is on
	procs := n.StartN(3, opts)
	vstest.WaitConverged(t, procs, 10*time.Second)

	// Crash c first, let {a,b} install a view, then crash b, let {a}
	// install its singleton, then crash a: a failed last.
	procs[2].Crash()
	vstest.WaitConverged(t, procs[:2], 10*time.Second)
	procs[1].Crash()
	vstest.WaitView(t, procs[0], 10*time.Second, "a alone", func(v core.EView) bool {
		return v.Size() == 1
	})
	procs[0].Crash()
	time.Sleep(50 * time.Millisecond)

	// Recovery-time log exchange: read each site's log BEFORE starting
	// new incarnations (a new incarnation's bootstrap view would append
	// and supersede the pre-crash dead end).
	logs := make(map[string][]stable.ViewRecord)
	for _, site := range []string{"a", "b", "c"} {
		logs[site] = n.Reg.Open(site).ViewLog()
	}
	res := lastfail.Determine(logs)
	last, ok := res.Unique()
	if !ok {
		t.Fatalf("expected a unique dead-end view, got %+v", res.LastViews)
	}
	if len(last.Members) != 1 || last.Members[0] != procs[0].PID() {
		t.Fatalf("last view members = %v, want just %v", last.Members, procs[0].PID())
	}
	if !res.Freshest("a") || res.Freshest("b") || res.Freshest("c") {
		t.Fatalf("freshest sites = %v, want only a", res.LastSites)
	}
}

// TestLastToFailWithConcurrentDeadEnds crashes both sides of a live
// partition and verifies the determination reports both final views.
func TestLastToFailWithConcurrentDeadEnds(t *testing.T) {
	n := vstest.NewNet(t, 401)
	opts := vstest.FastOptions()
	procs := n.StartN(4, opts)
	vstest.WaitConverged(t, procs, 10*time.Second)

	n.Fabric.SetPartitions([]string{"a", "b"}, []string{"c", "d"})
	vstest.WaitConverged(t, procs[:2], 10*time.Second)
	vstest.WaitConverged(t, procs[2:], 10*time.Second)
	for _, p := range procs {
		p.Crash()
	}
	time.Sleep(50 * time.Millisecond)

	logs := make(map[string][]stable.ViewRecord)
	for _, site := range []string{"a", "b", "c", "d"} {
		logs[site] = n.Reg.Open(site).ViewLog()
	}
	res := lastfail.Determine(logs)
	if len(res.LastViews) != 2 {
		t.Fatalf("dead ends = %+v, want the two partition finals", res.LastViews)
	}
	for _, site := range []string{"a", "b", "c", "d"} {
		if !res.Freshest(site) {
			t.Errorf("site %s missing from freshest set %v", site, res.LastSites)
		}
	}
}
