package lastfail

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/stable"
)

func pid(site string, inc uint32) ids.PID { return ids.PID{Site: site, Inc: inc} }
func vid(e uint64, c ids.PID) ids.ViewID  { return ids.ViewID{Epoch: e, Coord: c} }

func rec(v ids.ViewID, members ...ids.PID) stable.ViewRecord {
	return stable.ViewRecord{View: v, Members: members, Installer: members[0]}
}

func TestEmptyLogs(t *testing.T) {
	got := Determine(nil)
	if len(got.LastViews) != 0 || len(got.LastSites) != 0 {
		t.Fatalf("empty input gave %+v", got)
	}
	got = Determine(map[string][]stable.ViewRecord{"a": nil})
	if len(got.LastViews) != 0 {
		t.Fatalf("empty logs gave %+v", got)
	}
}

func TestSequentialShrinkingFailure(t *testing.T) {
	// Classic total-failure history: {a,b,c} -> {a,b} -> {a}; a failed
	// last and holds the freshest state.
	a, b, c := pid("a", 1), pid("b", 1), pid("c", 1)
	v1, v2, v3 := vid(1, a), vid(2, a), vid(3, a)
	logs := map[string][]stable.ViewRecord{
		"a": {rec(v1, a, b, c), rec(v2, a, b), rec(v3, a)},
		"b": {rec(v1, a, b, c), rec(v2, a, b)},
		"c": {rec(v1, a, b, c)},
	}
	got := Determine(logs)
	last, ok := got.Unique()
	if !ok {
		t.Fatalf("expected unique last view, got %+v", got)
	}
	if last.View != v3 || len(last.Members) != 1 || last.Members[0] != a {
		t.Fatalf("last = %+v", last)
	}
	if !got.Freshest("a") || got.Freshest("b") || got.Freshest("c") {
		t.Fatalf("freshest sites = %v", got.LastSites)
	}
}

func TestViewSupersededByOtherSiteLog(t *testing.T) {
	// b's log ends at v2, but a's log shows v2 was followed by v3: v2 is
	// not a dead end.
	a, b := pid("a", 1), pid("b", 1)
	v1, v2, v3 := vid(1, a), vid(2, a), vid(3, a)
	logs := map[string][]stable.ViewRecord{
		"a": {rec(v1, a, b), rec(v2, a, b), rec(v3, a)},
		"b": {rec(v1, a, b), rec(v2, a, b)},
	}
	got := Determine(logs)
	last, ok := got.Unique()
	if !ok || last.View != v3 {
		t.Fatalf("got %+v, want unique v3", got)
	}
}

func TestConcurrentPartitionsGiveTwoDeadEnds(t *testing.T) {
	// The group partitions into {a,b} and {c,d}, then everything fails:
	// both final views are last — the creation-plus-merging situation.
	a, b, c, d := pid("a", 1), pid("b", 1), pid("c", 1), pid("d", 1)
	v1 := vid(1, a)
	vLeft, vRight := vid(2, a), vid(2, c)
	logs := map[string][]stable.ViewRecord{
		"a": {rec(v1, a, b, c, d), rec(vLeft, a, b)},
		"b": {rec(v1, a, b, c, d), rec(vLeft, a, b)},
		"c": {rec(v1, a, b, c, d), rec(vRight, c, d)},
		"d": {rec(v1, a, b, c, d), rec(vRight, c, d)},
	}
	got := Determine(logs)
	if len(got.LastViews) != 2 {
		t.Fatalf("dead ends = %+v", got.LastViews)
	}
	if _, ok := got.Unique(); ok {
		t.Fatal("Unique must be false with two dead ends")
	}
	if len(got.LastSites) != 4 {
		t.Fatalf("freshest sites = %v", got.LastSites)
	}
}

func TestPartialKnowledge(t *testing.T) {
	// Only a subset of sites recovered and contributed logs; the dead end
	// computed from what is known still points at the freshest among
	// them.
	a, b, c := pid("a", 1), pid("b", 1), pid("c", 1)
	v1, v2 := vid(1, a), vid(2, a)
	logs := map[string][]stable.ViewRecord{
		"b": {rec(v1, a, b, c), rec(v2, a, b)},
	}
	got := Determine(logs)
	last, ok := got.Unique()
	if !ok || last.View != v2 {
		t.Fatalf("got %+v", got)
	}
	// Members of the dead-end view include a, even though a contributed
	// no log — its site still counts as freshest.
	if !got.Freshest("a") || !got.Freshest("b") || got.Freshest("c") {
		t.Fatalf("freshest = %v", got.LastSites)
	}
}

func TestMembersSortedAndCopied(t *testing.T) {
	a, b := pid("a", 1), pid("b", 1)
	v1 := vid(1, a)
	orig := []ids.PID{b, a}
	logs := map[string][]stable.ViewRecord{
		"a": {{View: v1, Members: orig, Installer: a}},
	}
	got := Determine(logs)
	if got.LastViews[0].Members[0] != a {
		t.Fatal("members not sorted")
	}
	got.LastViews[0].Members[0] = pid("x", 1)
	again := Determine(logs)
	if again.LastViews[0].Members[0] != a {
		t.Fatal("result shares storage with input")
	}
}
