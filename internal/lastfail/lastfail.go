// Package lastfail determines the last process(es) to fail from persisted
// view logs, in the spirit of Skeen's algorithm (ACM TOCS 1985), which the
// paper cites as the machinery state creation may need: after a total
// failure, the recovering processes must find out whose permanent state is
// freshest before recreating the shared state.
//
// Each process persists every view it installs (stable.Store.AppendView).
// After recovery, the participants exchange their logs and run Determine,
// which finds the "dead-end" views: views some process installed that no
// process ever replaced with a successor. The members of those views were
// the last to fail; their permanent state reflects every update the group
// performed. With partitions there can be several concurrent dead-ends —
// the creation-plus-merging case.
package lastfail

import (
	"sort"

	"repro/internal/ids"
	"repro/internal/stable"
)

// ViewInfo is one dead-end view: its id and membership.
type ViewInfo struct {
	View    ids.ViewID
	Members []ids.PID
}

// Result is the outcome of last-to-fail determination.
type Result struct {
	// LastViews are the dead-end views, sorted by id. In failure
	// histories without concurrent partitions there is exactly one.
	LastViews []ViewInfo
	// LastSites is the union of the sites of all dead-end members: the
	// sites whose permanent state is freshest.
	LastSites []string
}

// Determine analyzes the collected per-site view logs. Logs record views
// oldest-first (the order stable.Store.AppendView preserves). Sites with
// empty logs contribute nothing.
func Determine(logs map[string][]stable.ViewRecord) Result {
	// A view is superseded if any log contains a later entry after it.
	superseded := make(map[ids.ViewID]bool)
	lastOf := make(map[ids.ViewID]stable.ViewRecord)
	for _, log := range logs {
		for i, rec := range log {
			if i < len(log)-1 {
				superseded[rec.View] = true
			}
			lastOf[rec.View] = rec
		}
	}
	var out Result
	siteSet := make(map[string]struct{})
	for view, rec := range lastOf {
		if superseded[view] {
			continue
		}
		members := make([]ids.PID, len(rec.Members))
		copy(members, rec.Members)
		sort.Slice(members, func(i, j int) bool { return members[i].Less(members[j]) })
		out.LastViews = append(out.LastViews, ViewInfo{View: view, Members: members})
		for _, m := range members {
			siteSet[m.Site] = struct{}{}
		}
	}
	sort.Slice(out.LastViews, func(i, j int) bool {
		return out.LastViews[i].View.Less(out.LastViews[j].View)
	})
	for s := range siteSet {
		out.LastSites = append(out.LastSites, s)
	}
	sort.Strings(out.LastSites)
	return out
}

// Freshest reports whether the given site was a member of some dead-end
// view — i.e. whether its permanent state is among the freshest.
func (r Result) Freshest(site string) bool {
	for _, s := range r.LastSites {
		if s == site {
			return true
		}
	}
	return false
}

// Unique returns the single dead-end view if the failure history had no
// concurrent partitions at the end, and false otherwise.
func (r Result) Unique() (ViewInfo, bool) {
	if len(r.LastViews) == 1 {
		return r.LastViews[0], true
	}
	return ViewInfo{}, false
}
