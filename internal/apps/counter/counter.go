// Package counter implements a replicated grow-only counter as a group
// object on the gobject framework — the reference Object implementation.
//
// Semantics: Increment is an external operation served in N-mode; the
// counter's value is the sum of per-site contributions. Contribution
// vectors form a join semilattice (pointwise max), so the state merging
// problem after partitions (both sides incremented independently)
// resolves by snapshot exchange alone — NeedPull is always false, which
// also exercises the framework's no-transfer path.
//
// Like the paper's look-up database, reads work in any view and every
// view change passes through S-mode; like its state merging discussion,
// concurrent partitions make independent progress that the union
// reconciles.
package counter

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/gobject"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/transport"
	"repro/internal/stable"
)

// Counter is one replica.
type Counter struct {
	host *gobject.Host
	obj  *object
}

// object implements gobject.Object.
type object struct {
	self ids.PID
	mu   sync.Mutex
	// contrib maps each site to its cumulative increments.
	contrib map[string]uint64
}

var counterMagic = []byte("\x01counter1\x00")

type incMsg struct {
	Site  string `json:"site"`
	Delta uint64 `json:"delta"`
}

// Open starts a replica at the given site.
func Open(fabric transport.Transport, reg *stable.Registry, site string, coreOpts core.Options, enriched bool) (*Counter, error) {
	obj := &object{contrib: make(map[string]uint64)}
	host, err := gobject.Open(fabric, reg, site, coreOpts, gobject.Config{Enriched: enriched}, obj)
	if err != nil {
		return nil, fmt.Errorf("counter: %w", err)
	}
	obj.self = host.Process().PID()
	return &Counter{host: host, obj: obj}, nil
}

// Process exposes the underlying process.
func (c *Counter) Process() *core.Process { return c.host.Process() }

// Mode returns the current Figure-1 mode.
func (c *Counter) Mode() modes.Mode { return c.host.Mode() }

// Stats exposes the host counters.
func (c *Counter) Stats() gobject.Stats { return c.host.Stats() }

// Increment adds delta to this site's contribution; N-mode only.
func (c *Counter) Increment(delta uint64) error {
	body, err := json.Marshal(incMsg{Site: c.obj.self.Site, Delta: delta})
	if err != nil {
		return fmt.Errorf("counter: encode: %w", err)
	}
	return c.host.Multicast(append(append([]byte{}, counterMagic...), body...))
}

// Value returns the current counter value (readable in any view, like
// the paper's look-up example).
func (c *Counter) Value() uint64 {
	c.obj.mu.Lock()
	defer c.obj.mu.Unlock()
	var sum uint64
	for _, n := range c.obj.contrib {
		sum += n
	}
	return sum
}

// Contribution returns one site's share.
func (c *Counter) Contribution(site string) uint64 {
	c.obj.mu.Lock()
	defer c.obj.mu.Unlock()
	return c.obj.contrib[site]
}

// Close leaves the group.
func (c *Counter) Close() { c.host.Close() }

// ---- gobject.Object ----

// ModeFunc implements gobject.Object: every view change settles, R-mode
// does not exist (reads always work, increments gate on N).
func (o *object) ModeFunc(ids.PID) modes.Func { return modes.AlwaysSettle() }

// WasNormal implements gobject.Object: every non-singleton cluster kept
// serving increments; fresh singletons did not.
func (o *object) WasNormal(cluster ids.PIDSet) bool { return len(cluster) >= 2 }

// Snapshot implements gobject.Object.
func (o *object) Snapshot() ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return json.Marshal(o.contrib)
}

// MergeSnapshot implements gobject.Object: pointwise max — the lattice
// join, idempotent and order-insensitive.
func (o *object) MergeSnapshot(_ ids.PID, snap []byte) error {
	var contrib map[string]uint64
	if err := json.Unmarshal(snap, &contrib); err != nil {
		return fmt.Errorf("counter: snapshot: %w", err)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for site, n := range contrib {
		if n > o.contrib[site] {
			o.contrib[site] = n
		}
	}
	return nil
}

// NeedPull implements gobject.Object: snapshots carry the whole state,
// bulk transfer is never needed.
func (o *object) NeedPull(core.EView, map[ids.PID][]byte) (ids.PID, bool) {
	return ids.PID{}, false
}

// Apply implements gobject.Object: fold one increment.
func (o *object) Apply(m core.MsgEvent) {
	if !bytes.HasPrefix(m.Payload, counterMagic) {
		return
	}
	var inc incMsg
	if err := json.Unmarshal(m.Payload[len(counterMagic):], &inc); err != nil {
		return
	}
	o.mu.Lock()
	o.contrib[inc.Site] += inc.Delta
	o.mu.Unlock()
}

// errNoBulk marks the unused bulk-transfer path.
var errNoBulk = errors.New("counter: no bulk state")

// MarshalCritical implements transfer.App (unused: NeedPull is false).
func (o *object) MarshalCritical() ([]byte, error) { return nil, errNoBulk }

// MarshalBulk implements transfer.App (unused).
func (o *object) MarshalBulk() ([]byte, error) { return nil, errNoBulk }

// ApplyCritical implements transfer.App (unused).
func (o *object) ApplyCritical([]byte) error { return errNoBulk }

// ApplyBulk implements transfer.App (unused).
func (o *object) ApplyBulk([]byte) error { return errNoBulk }
