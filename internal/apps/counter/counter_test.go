package counter

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/gobject"
	"repro/internal/modes"
	"repro/internal/sstate"
	"repro/internal/vstest"
)

func clusterCounter(t *testing.T, seed int64, n int, enriched bool) (*vstest.Net, []*Counter) {
	t.Helper()
	net := vstest.NewNet(t, seed)
	cs := make([]*Counter, 0, n)
	for i := 0; i < n; i++ {
		c, err := Open(net.Fabric, net.Reg, vstest.SiteName(i), vstest.FastOptions(), enriched)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		t.Cleanup(c.Close)
		cs = append(cs, c)
	}
	waitNormal(t, cs, 15*time.Second)
	return net, cs
}

func waitNormal(t *testing.T, cs []*Counter, timeout time.Duration) {
	t.Helper()
	for _, c := range cs {
		c := c
		vstest.Eventually(t, timeout, fmt.Sprintf("%v in N-mode", c.Process().PID()), func() bool {
			return c.Mode() == modes.Normal
		})
	}
}

func incrRetry(t *testing.T, c *Counter, delta uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if err := c.Increment(delta); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("increment never succeeded")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitValue(t *testing.T, cs []*Counter, want uint64, timeout time.Duration) {
	t.Helper()
	vstest.Eventually(t, timeout, fmt.Sprintf("value %d everywhere", want), func() bool {
		for _, c := range cs {
			if c.Value() != want {
				return false
			}
		}
		return true
	})
}

func TestIncrementsReplicate(t *testing.T) {
	for _, enriched := range []bool{true, false} {
		enriched := enriched
		t.Run(fmt.Sprintf("enriched=%v", enriched), func(t *testing.T) {
			_, cs := clusterCounter(t, 500, 3, enriched)
			for i := 0; i < 9; i++ {
				incrRetry(t, cs[i%3], 1, 5*time.Second)
			}
			waitValue(t, cs, 9, 5*time.Second)
			// Contributions are tracked per site.
			if got := cs[0].Contribution("a"); got != 3 {
				t.Fatalf("site a contributed %d, want 3", got)
			}
		})
	}
}

func TestPartitionedIncrementsMerge(t *testing.T) {
	// The state merging problem: both partitions increment independently;
	// after the heal the lattice join recovers the total. Whether a
	// given heal classifies as *merging* depends on the membership path
	// (a side absorbed through an intermediate view presents as
	// singletons → creation), so the cycle repeats until the merging
	// incarnation occurs; value convergence is asserted on every cycle.
	net, cs := clusterCounter(t, 501, 4, true)
	incrRetry(t, cs[0], 10, 5*time.Second)
	waitValue(t, cs, 10, 5*time.Second)

	total := uint64(10)
	mergings := 0
	for attempt := 0; attempt < 4 && mergings == 0; attempt++ {
		net.Fabric.SetPartitions([]string{"a", "b"}, []string{"c", "d"})
		vstest.Eventually(t, 15*time.Second, "split views", func() bool {
			return cs[0].Process().CurrentView().Size() == 2 &&
				cs[2].Process().CurrentView().Size() == 2
		})
		waitNormal(t, cs, 15*time.Second)
		incrRetry(t, cs[0], 5, 10*time.Second)
		incrRetry(t, cs[3], 7, 10*time.Second)
		total += 12

		net.Fabric.Heal()
		vstest.Eventually(t, 20*time.Second, "merged view", func() bool {
			return cs[0].Process().CurrentView().Size() == 4
		})
		waitNormal(t, cs, 20*time.Second)
		waitValue(t, cs, total, 10*time.Second)

		mergings = 0
		for _, c := range cs {
			st := c.Stats()
			mergings += st.Classifications[sstate.Merging] + st.Classifications[sstate.TransferMerging]
		}
	}
	if mergings == 0 {
		t.Error("no merging classification recorded across four partition/heal cycles")
	}
}

func TestJoinerCatchesUpViaSnapshots(t *testing.T) {
	net, cs := clusterCounter(t, 502, 3, true)
	incrRetry(t, cs[1], 42, 5*time.Second)
	waitValue(t, cs, 42, 5*time.Second)

	joiner, err := Open(net.Fabric, net.Reg, "z", vstest.FastOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Close)
	vstest.Eventually(t, 20*time.Second, "joiner catches up", func() bool {
		return joiner.Mode() == modes.Normal && joiner.Value() == 42
	})
	// No bulk transfer was needed: snapshots carried everything.
	if joiner.Stats().Pulls != 0 {
		t.Errorf("joiner pulled bulk state %d times; snapshots should suffice", joiner.Stats().Pulls)
	}
}

func TestIncrementRejectedOutsideNormal(t *testing.T) {
	net := vstest.NewNet(t, 503)
	c, err := Open(net.Fabric, net.Reg, "solo", vstest.FastOptions(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Right after open the machine may still be settling; the call must
	// fail cleanly, never hang.
	if err := c.Increment(1); err != nil && err != gobject.ErrNotServing {
		t.Fatalf("increment while settling: %v", err)
	}
	c.Close()
	if err := c.Increment(1); err == nil {
		t.Fatal("increment after close succeeded")
	}
}
