// Package repfile implements the paper's first group-object example
// (Section 3): a replicated file with external operations read and write.
//
// Correctness criteria, straight from the paper: with respect to writes
// the object behaves as if there were a single copy; reads may return
// stale data. Each replica holds votes; a write quorum is obtainable in
// at most one concurrent view, so divergent writes are impossible.
//
// The mode mapping of the example:
//
//	N — the view holds a write quorum and this replica is up to date:
//	    reads and writes are served;
//	R — no write quorum: reads only (possibly stale);
//	S — quorum view but the replica set is not reconciled (a member
//	    joined, recovered, or the quorum was reassembled): the replica
//	    runs the internal reconciliation protocol before returning to N.
//
// Reconciliation is driven by the shared-state classifier: every member
// announces its version; behind members pull the state from an
// up-to-date donor with the transfer tool; under enriched views the
// subviews are then merged (§6.2 methodology) so the structure again
// shows one up-to-date quorum subview.
package repfile

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/quorum"
	"repro/internal/transport"
	"repro/internal/sstate"
	"repro/internal/stable"
	"repro/internal/transfer"
)

// Errors returned by the File API.
var (
	// ErrNotWritable is returned by Write outside N-mode.
	ErrNotWritable = errors.New("repfile: no write quorum / not reconciled")
	// ErrTimeout is returned when a write does not complete in time
	// (e.g. a view change interrupted it); the caller may retry.
	ErrTimeout = errors.New("repfile: operation timed out")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("repfile: closed")
)

// Config parametrizes a replica.
type Config struct {
	// RW is the quorum system shared by all replicas.
	RW quorum.RW
	// Enriched selects §6.2 local classification (requires the process
	// to run with enriched views); when false the replica runs the flat
	// classification protocol (one announcement round) instead.
	Enriched bool
	// Transfer configures the state transfer tool.
	Transfer transfer.Options
	// WriteTimeout bounds Write (default 2s).
	WriteTimeout time.Duration
}

// File is one replica of the group object.
type File struct {
	p    *core.Process
	cfg  Config
	st   *stable.Store
	tool *transfer.Tool

	mu      sync.Mutex
	machine *modes.Machine
	version uint64
	content []byte
	waiters map[string]chan error // pending writes by op id
	nextOp  uint64
	// lastAssigned is the highest version this replica handed out while
	// acting as write sequencer, so back-to-back requests get distinct
	// versions before the first write round-trips.
	lastAssigned uint64
	closed       bool
	settling     *settleState
	// verView / verTable track the per-view version announcements every
	// member multicasts at view installation. Members in N-mode use it
	// to drive subview merges for caught-up joiners without leaving N
	// (§6.2: processes in the up-to-date subview are not disturbed).
	verView  ids.ViewID
	verTable map[ids.PID]uint64
	// flatAnnouncement is this view's flat-protocol announcement, kept
	// verbatim for periodic re-announcement while settling.
	flatAnnouncement []byte

	// statsMu guards counters exported for experiments.
	statsMu sync.Mutex
	stats   FileStats

	done chan struct{}
}

// FileStats counts reconciliation activity for experiments.
type FileStats struct {
	Classifications map[sstate.Kind]int
	TransfersPulled int
	Reconciles      int
	WritesApplied   uint64
}

// settleState tracks one reconciliation round (one per installed view).
type settleState struct {
	view    core.EView
	proto   *sstate.Protocol // flat mode only
	class   *sstate.Classification
	pulling bool
}

// wire envelopes (application-level payloads).
type fileMsg struct {
	Type    string  `json:"t"`              // "wreq", "write", "ver"
	Op      string  `json:"op,omitempty"`   // write op id
	Version uint64  `json:"ver,omitempty"`  // write/announced version
	Data    []byte  `json:"data,omitempty"` // write payload
	From    ids.PID `json:"from"`
}

var fileMagic = []byte("\x01repfile1\x00")

func encodeMsg(m fileMsg) []byte {
	body, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("repfile: encode: %v", err)) // unreachable: static type
	}
	return append(append([]byte{}, fileMagic...), body...)
}

func decodeMsg(payload []byte) (fileMsg, bool) {
	if !bytes.HasPrefix(payload, fileMagic) {
		return fileMsg{}, false
	}
	var m fileMsg
	if err := json.Unmarshal(payload[len(fileMagic):], &m); err != nil {
		return fileMsg{}, false
	}
	return m, true
}

// Stable-storage keys.
const (
	keyVersion = "repfile/version"
	keyContent = "repfile/content"
)

// Open starts a replica at the given site. The core options' Enriched
// flag is forced to match cfg.Enriched.
func Open(fabric transport.Transport, reg *stable.Registry, site string, coreOpts core.Options, cfg Config) (*File, error) {
	coreOpts.Enriched = cfg.Enriched
	coreOpts.LogViews = true
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 2 * time.Second
	}
	p, err := core.Start(fabric, reg, site, coreOpts)
	if err != nil {
		return nil, fmt.Errorf("repfile: %w", err)
	}
	f := &File{
		p:       p,
		cfg:     cfg,
		st:      reg.Open(site),
		waiters: make(map[string]chan error),
		done:    make(chan struct{}),
	}
	f.stats.Classifications = make(map[sstate.Kind]int)
	// Recover permanent state (the paper's "part of the local state may
	// be permanent").
	if raw, ok := f.st.Get(keyVersion); ok && len(raw) == 8 {
		f.version = binary.BigEndian.Uint64(raw)
		if c, ok := f.st.Get(keyContent); ok {
			f.content = c
		}
	}
	f.tool = transfer.New(p, (*fileState)(f), cfg.Transfer)
	go f.run()
	return f, nil
}

// Process exposes the underlying process (tests and experiments).
func (f *File) Process() *core.Process { return f.p }

// Mode returns the current Figure-1 mode.
func (f *File) Mode() modes.Mode {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.machine == nil {
		return modes.Settling
	}
	return f.machine.Mode()
}

// ModeMachine gives tests access to transition statistics.
func (f *File) ModeMachine() *modes.Machine {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.machine
}

// Stats returns a snapshot of the reconciliation counters.
func (f *File) Stats() FileStats {
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	out := f.stats
	out.Classifications = make(map[sstate.Kind]int, len(f.stats.Classifications))
	for k, v := range f.stats.Classifications {
		out.Classifications[k] = v
	}
	return out
}

// Read returns the local replica content and its version. In R-mode the
// result may be stale, which the object's specification allows.
func (f *File) Read() (version uint64, content []byte, mode modes.Mode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := modes.Settling
	if f.machine != nil {
		m = f.machine.Mode()
	}
	return f.version, append([]byte{}, f.content...), m
}

// Write replaces the file content. It succeeds only in N-mode (write
// quorum present and replica reconciled); the write is sequenced by the
// view's smallest member and applied by every member of the view, giving
// single-copy semantics for writes.
func (f *File) Write(data []byte) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	if f.machine == nil || f.machine.Mode() != modes.Normal {
		f.mu.Unlock()
		return ErrNotWritable
	}
	f.nextOp++
	op := fmt.Sprintf("%v/%d", f.p.PID(), f.nextOp)
	ch := make(chan error, 1)
	f.waiters[op] = ch
	f.mu.Unlock()

	defer func() {
		f.mu.Lock()
		delete(f.waiters, op)
		f.mu.Unlock()
	}()

	view := f.p.CurrentView()
	seqr, ok := view.Comp().Min()
	if !ok {
		return ErrNotWritable
	}
	payload := encodeMsg(fileMsg{Type: "wreq", Op: op, Data: data, From: f.p.PID()})
	if err := f.p.Unicast(seqr, payload); err != nil {
		return fmt.Errorf("repfile: write request: %w", err)
	}
	select {
	case err := <-ch:
		return err
	case <-time.After(f.cfg.WriteTimeout):
		return ErrTimeout
	case <-f.done:
		return ErrClosed
	}
}

// Close leaves the group.
func (f *File) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	f.p.Leave()
	<-f.done
}

// fileState adapts File to transfer.App. Critical piece: version header;
// bulk: content.
type fileState File

// MarshalCritical implements transfer.App.
func (s *fileState) MarshalCritical() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], s.version)
	return buf[:], nil
}

// MarshalBulk implements transfer.App.
func (s *fileState) MarshalBulk() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], s.version)
	return append(buf[:], s.content...), nil
}

// ApplyCritical implements transfer.App: learning the target version
// early lets the replica know how far behind it is.
func (s *fileState) ApplyCritical(b []byte) error {
	return nil // informational only for this object
}

// ApplyBulk implements transfer.App.
func (s *fileState) ApplyBulk(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("repfile: short bulk state (%d bytes)", len(b))
	}
	version := binary.BigEndian.Uint64(b[:8])
	content := append([]byte{}, b[8:]...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if version > s.version {
		s.version = version
		s.content = content
		(*File)(s).persistLocked()
	}
	return nil
}

func (f *File) persistLocked() {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], f.version)
	f.st.Put(keyVersion, buf[:])
	f.st.Put(keyContent, f.content)
}
