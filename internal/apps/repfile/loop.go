package repfile

import (
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/modes"
	"repro/internal/sstate"
)

// run consumes the process's event stream; it is the only goroutine that
// drives the mode machine and the reconciliation protocol. A slow ticker
// re-announces while a settle round is open: an announcement can be
// deferred past its view by a racing view change, and without retries a
// quiet group would never complete the round.
func (f *File) run() {
	defer func() {
		f.mu.Lock()
		for _, ch := range f.waiters {
			ch <- ErrClosed
		}
		f.waiters = make(map[string]chan error)
		f.mu.Unlock()
		close(f.done)
	}()
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	events := f.p.Events()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			switch e := ev.(type) {
			case core.ViewEvent:
				f.onView(e.EView)
			case core.EChangeEvent:
				f.onEChange(e)
			case core.MsgEvent:
				f.onMsg(e)
			}
		case <-tick.C:
			f.reannounce()
		}
	}
}

// reannounce repeats the per-view announcements while a settle round is
// open. The version announcement carries the current version (receivers
// overwrite per sender); the flat-protocol announcement repeats the
// original claim verbatim — re-deriving it would change this member's
// reported predecessor mode and corrupt the classification.
func (f *File) reannounce() {
	f.mu.Lock()
	settling := f.settling != nil
	version := f.version
	flat := f.flatAnnouncement
	f.mu.Unlock()
	if !settling {
		return
	}
	_ = f.p.Multicast(encodeMsg(fileMsg{Type: "ver", Version: version, From: f.p.PID()}))
	if flat != nil {
		_ = f.p.Multicast(flat)
	}
	f.advance()
}

func (f *File) onView(v core.EView) {
	f.mu.Lock()
	// Capture the pre-change mode and view for the flat announcement.
	prevMode := modes.Settling
	prevView := ids.ViewID{}
	if f.machine != nil {
		prevMode = f.machine.Mode()
		prevView = f.machine.View().ID
	}

	if f.machine == nil {
		fn := modes.QuorumFlat(f.cfg.RW)
		if f.cfg.Enriched {
			fn = modes.QuorumEnriched(f.p.PID(), f.cfg.RW)
		}
		f.machine = modes.NewMachine(fn, v)
	} else {
		f.machine.OnView(v)
	}

	// A view change aborts in-flight writes (retryable) and transfers.
	for op, ch := range f.waiters {
		ch <- ErrTimeout
		delete(f.waiters, op)
	}
	f.tool.Abort()
	f.settling = nil

	// Fresh per-view version table; every member announces, whatever its
	// mode, so both settlers and the N-mode merge driver can proceed.
	f.verView = v.ID
	f.verTable = map[ids.PID]uint64{f.p.PID(): f.version}

	if f.machine.Mode() == modes.Settling {
		s := &settleState{view: v}
		f.settling = s
		if f.cfg.Enriched {
			class := sstate.ClassifyEnriched(v, f.wasNormal)
			s.class = &class
			f.countClassification(class.Kind)
		} else {
			s.proto = sstate.NewProtocol(v)
		}
	}
	version := f.version
	f.flatAnnouncement = nil
	if !f.cfg.Enriched {
		if payload, err := sstate.Announcement(f.p.PID(), prevView, prevMode); err == nil {
			f.flatAnnouncement = payload
		}
	}
	flat := f.flatAnnouncement
	f.mu.Unlock()

	_ = f.p.Multicast(encodeMsg(fileMsg{Type: "ver", Version: version, From: f.p.PID()}))
	if flat != nil {
		_ = f.p.Multicast(flat)
	}
	f.advance()
}

// wasNormal is the group-shared judgment for the classifier: a cluster
// was serving in N-mode iff it holds a write quorum.
func (f *File) wasNormal(cluster ids.PIDSet) bool {
	return f.cfg.RW.CanWrite(cluster)
}

func (f *File) countClassification(k sstate.Kind) {
	f.statsMu.Lock()
	f.stats.Classifications[k]++
	f.statsMu.Unlock()
}

func (f *File) onEChange(e core.EChangeEvent) {
	f.mu.Lock()
	if f.machine != nil {
		f.machine.OnView(e.EView)
	}
	if f.settling != nil {
		f.settling.view = e.EView
	}
	f.mu.Unlock()
	f.advance()
}

func (f *File) onMsg(m core.MsgEvent) {
	// Transfer traffic first.
	if pr, handled, _ := f.tool.HandleMessage(m); handled {
		if pr.Done {
			f.mu.Lock()
			pulled := f.settling != nil && f.settling.pulling
			if f.settling != nil {
				f.settling.pulling = false
			}
			f.verTable[f.p.PID()] = f.version
			version := f.version
			f.mu.Unlock()
			if pulled {
				f.statsMu.Lock()
				f.stats.TransfersPulled++
				f.statsMu.Unlock()
				// Re-announce so peers (and the merge-driving sequencer)
				// learn we caught up.
				_ = f.p.Multicast(encodeMsg(fileMsg{Type: "ver", Version: version, From: f.p.PID()}))
			}
			f.advance()
		}
		return
	}
	// Flat classification protocol traffic.
	if sstate.IsInfo(m.Payload) {
		f.mu.Lock()
		s := f.settling
		if s != nil && s.proto != nil && m.View == s.view.ID {
			done, _ := s.proto.Offer(m)
			if done && s.class == nil {
				if class, err := s.proto.Classify(); err == nil {
					s.class = &class
					f.countClassification(class.Kind)
				}
			}
		}
		f.mu.Unlock()
		f.advance()
		return
	}
	msg, ok := decodeMsg(m.Payload)
	if !ok {
		return
	}
	switch msg.Type {
	case "wreq":
		f.onWriteRequest(msg)
	case "write":
		f.onWrite(msg)
	case "ver":
		f.mu.Lock()
		if m.View == f.verView {
			f.verTable[m.From] = msg.Version
		}
		f.mu.Unlock()
		f.advance()
	}
}

// onWriteRequest runs at the view sequencer: assign the next version and
// multicast the write to the view.
func (f *File) onWriteRequest(msg fileMsg) {
	f.mu.Lock()
	isSeq := false
	if min, ok := f.p.CurrentView().Comp().Min(); ok {
		isSeq = min == f.p.PID()
	}
	serving := f.machine != nil && f.machine.Mode() == modes.Normal
	if !isSeq || !serving {
		f.mu.Unlock()
		return // requester times out and retries
	}
	if f.lastAssigned < f.version {
		f.lastAssigned = f.version
	}
	f.lastAssigned++
	next := f.lastAssigned
	f.mu.Unlock()
	_ = f.p.Multicast(encodeMsg(fileMsg{
		Type:    "write",
		Op:      msg.Op,
		Version: next,
		Data:    msg.Data,
		From:    msg.From,
	}))
}

// onWrite applies a sequenced write at every member.
func (f *File) onWrite(msg fileMsg) {
	f.mu.Lock()
	if msg.Version > f.version {
		f.version = msg.Version
		f.content = append([]byte{}, msg.Data...)
		f.persistLocked()
		f.statsMu.Lock()
		f.stats.WritesApplied++
		f.statsMu.Unlock()
	}
	// A write is multicast to (and, by Agreement, delivered by) every
	// view member, and it carries the complete content — so every member
	// that stays in the view is at least at msg.Version now. Refresh the
	// announcement table accordingly, or the merge driver would stall on
	// announcements that predate the write.
	for _, q := range f.p.CurrentView().Members {
		if f.verTable[q] < msg.Version {
			f.verTable[q] = msg.Version
		}
	}
	f.verTable[f.p.PID()] = f.version
	if ch, ok := f.waiters[msg.Op]; ok {
		ch <- nil
		delete(f.waiters, msg.Op)
	}
	f.mu.Unlock()
	f.advance()
}

// advance drives both the settler's reconciliation and the sequencer's
// merge duty; it is safe to call repeatedly from any event.
func (f *File) advance() {
	type action int
	const (
		actNone action = iota
		actPull
		actMergeSVSets
		actMergeSubviews
	)

	f.mu.Lock()
	if f.machine == nil {
		f.mu.Unlock()
		return
	}
	view := f.p.CurrentView()
	comp := view.Comp()

	allAnnounced := f.verView == view.ID && len(f.verTable) >= len(comp)
	var maxVer uint64
	for _, v := range f.verTable {
		if v > maxVer {
			maxVer = v
		}
	}
	allEqual := allAnnounced
	if allAnnounced {
		for _, v := range f.verTable {
			if v != maxVer {
				allEqual = false
				break
			}
		}
	}

	act := actNone
	var donor ids.PID

	// Settler duty: pull state if behind.
	if s := f.settling; s != nil && f.machine.Mode() == modes.Settling &&
		allAnnounced && s.class != nil && f.version < maxVer && !s.pulling {
		holders := make(ids.PIDSet)
		for p, v := range f.verTable {
			if v == maxVer {
				holders.Add(p)
			}
		}
		if d, ok := holders.Min(); ok {
			donor = d
			s.pulling = true
			act = actPull
		}
	}

	// Sequencer duty (enriched, any mode): once everyone is caught up,
	// merge the structure back into a single subview (§6.2).
	if act == actNone && f.cfg.Enriched && allEqual {
		if min, ok := comp.Min(); ok && min == f.p.PID() {
			if view.Structure.NumSVSets() > 1 {
				act = actMergeSVSets
			} else if view.Structure.NumSubviews() > 1 {
				act = actMergeSubviews
			}
		}
	}

	// Settler duty: reconcile once state and (enriched) structure agree.
	reconciled := false
	if act == actNone && f.settling != nil && f.machine.Mode() == modes.Settling &&
		allEqual && f.settling.class != nil {
		target := f.machine.Target()
		ready := (f.cfg.Enriched && target == modes.Normal) ||
			(!f.cfg.Enriched && target != modes.Reduced)
		if ready {
			if _, err := f.machine.Reconcile(); err == nil {
				f.settling = nil
				reconciled = true
			}
		}
	}

	var (
		svsets   []ids.SVSetID
		subviews []ids.SubviewID
	)
	switch act {
	case actMergeSVSets:
		svsets = view.Structure.SVSets()
	case actMergeSubviews:
		subviews = view.Structure.Subviews()
	}
	f.mu.Unlock()

	if reconciled {
		f.statsMu.Lock()
		f.stats.Reconciles++
		f.statsMu.Unlock()
	}
	switch act {
	case actPull:
		_ = f.tool.Request(donor)
	case actMergeSVSets:
		_ = f.p.SVSetMerge(svsets...)
	case actMergeSubviews:
		_ = f.p.SubviewMerge(subviews...)
	}
}
