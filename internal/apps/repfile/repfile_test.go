package repfile

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/modes"
	"repro/internal/quorum"
	"repro/internal/sstate"
	"repro/internal/vstest"
)

func fiveSiteRW() quorum.RW {
	return quorum.MajorityRW(quorum.Uniform("a", "b", "c", "d", "e"))
}

func threeSiteRW() quorum.RW {
	return quorum.MajorityRW(quorum.Uniform("a", "b", "c"))
}

// cluster opens n replicas and waits until all are in N-mode.
func cluster(t *testing.T, seed int64, n int, rw quorum.RW, enriched bool) (*vstest.Net, []*File) {
	t.Helper()
	net := vstest.NewNet(t, seed)
	cfg := Config{RW: rw, Enriched: enriched}
	files := make([]*File, 0, n)
	for i := 0; i < n; i++ {
		f, err := Open(net.Fabric, net.Reg, vstest.SiteName(i), vstest.FastOptions(), cfg)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		t.Cleanup(f.Close)
		files = append(files, f)
	}
	waitAllNormal(t, files, 10*time.Second)
	return net, files
}

func waitAllNormal(t *testing.T, files []*File, timeout time.Duration) {
	t.Helper()
	for _, f := range files {
		f := f
		vstest.Eventually(t, timeout, fmt.Sprintf("%v in N-mode", f.Process().PID()), func() bool {
			return f.Mode() == modes.Normal
		})
	}
}

// writeRetry retries a write through transient view changes.
func writeRetry(t *testing.T, f *File, data []byte, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		err := f.Write(data)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("write %q never succeeded: %v", data, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClusterReachesNormalMode(t *testing.T) {
	for _, enriched := range []bool{true, false} {
		t.Run(fmt.Sprintf("enriched=%v", enriched), func(t *testing.T) {
			_, files := cluster(t, 100, 3, threeSiteRW(), enriched)
			for _, f := range files {
				if got := f.Mode(); got != modes.Normal {
					t.Errorf("%v mode = %v", f.Process().PID(), got)
				}
			}
		})
	}
}

func TestWriteVisibleEverywhere(t *testing.T) {
	_, files := cluster(t, 101, 3, threeSiteRW(), true)
	writeRetry(t, files[1], []byte("v1 content"), 5*time.Second)
	for _, f := range files {
		f := f
		vstest.Eventually(t, 3*time.Second, "write propagation", func() bool {
			_, content, _ := f.Read()
			return bytes.Equal(content, []byte("v1 content"))
		})
	}
	// Versions agree too.
	v0, _, _ := files[0].Read()
	for _, f := range files[1:] {
		v, _, _ := f.Read()
		if v != v0 {
			t.Fatalf("version mismatch: %d vs %d", v, v0)
		}
	}
}

func TestSequentialWritesMonotone(t *testing.T) {
	_, files := cluster(t, 102, 3, threeSiteRW(), true)
	var lastVer uint64
	for i := 0; i < 5; i++ {
		writeRetry(t, files[i%3], []byte(fmt.Sprintf("rev-%d", i)), 5*time.Second)
		v, content, _ := files[i%3].Read()
		if v <= lastVer {
			t.Fatalf("version did not advance: %d after %d", v, lastVer)
		}
		lastVer = v
		if string(content) != fmt.Sprintf("rev-%d", i) {
			t.Fatalf("content = %q at rev %d", content, i)
		}
	}
}

func TestMinorityPartitionIsReadOnly(t *testing.T) {
	net, files := cluster(t, 103, 5, fiveSiteRW(), true)
	writeRetry(t, files[0], []byte("before partition"), 5*time.Second)
	for _, f := range files {
		f := f
		vstest.Eventually(t, 3*time.Second, "propagation", func() bool {
			_, c, _ := f.Read()
			return bytes.Equal(c, []byte("before partition"))
		})
	}

	// Partition: majority {a,b,c}, minority {d,e}.
	net.Fabric.SetPartitions([]string{"a", "b", "c"}, []string{"d", "e"})

	// Minority replicas drop to R (Failure transition) and refuse writes.
	for _, f := range files[3:] {
		f := f
		vstest.Eventually(t, 5*time.Second, "minority in R-mode", func() bool {
			return f.Mode() == modes.Reduced
		})
		if err := f.Write([]byte("should fail")); err != ErrNotWritable {
			t.Fatalf("minority write: %v, want ErrNotWritable", err)
		}
		// Reads still work (stale allowed).
		_, content, mode := f.Read()
		if mode != modes.Reduced || !bytes.Equal(content, []byte("before partition")) {
			t.Fatalf("minority read = %q in %v", content, mode)
		}
	}

	// Majority keeps writing.
	waitAllNormal(t, files[:3], 10*time.Second)
	writeRetry(t, files[0], []byte("during partition"), 5*time.Second)

	// Heal: minority repairs, transfers state, and rejoins N.
	net.Fabric.Heal()
	waitAllNormal(t, files, 15*time.Second)
	for _, f := range files {
		f := f
		vstest.Eventually(t, 5*time.Second, "post-heal content", func() bool {
			_, c, _ := f.Read()
			return bytes.Equal(c, []byte("during partition"))
		})
	}

	// The stale minority members pulled state: transfer stats moved.
	pulled := 0
	for _, f := range files {
		pulled += f.Stats().TransfersPulled
	}
	if pulled == 0 {
		t.Error("no state transfers recorded after heal")
	}
}

func TestAcknowledgedWritesSurviveCoordinatorCrash(t *testing.T) {
	_, files := cluster(t, 104, 5, fiveSiteRW(), true)
	writeRetry(t, files[1], []byte("durable"), 5*time.Second)

	// Crash the current sequencer (smallest member, site a).
	files[0].Process().Crash()
	waitAllNormal(t, files[1:], 15*time.Second)

	for _, f := range files[1:] {
		f := f
		vstest.Eventually(t, 5*time.Second, "durable content", func() bool {
			_, c, _ := f.Read()
			return bytes.Equal(c, []byte("durable"))
		})
	}
	// And the survivors can still write.
	writeRetry(t, files[1], []byte("after crash"), 10*time.Second)
}

func TestStateCreationAfterTotalFailure(t *testing.T) {
	net, files := cluster(t, 105, 3, threeSiteRW(), true)
	writeRetry(t, files[0], []byte("persisted"), 5*time.Second)
	for _, f := range files {
		f := f
		vstest.Eventually(t, 3*time.Second, "propagation", func() bool {
			_, c, _ := f.Read()
			return bytes.Equal(c, []byte("persisted"))
		})
	}

	// Total failure.
	for _, f := range files {
		f.Process().Crash()
	}
	time.Sleep(50 * time.Millisecond)

	// All three sites recover; permanent state brings the content back.
	cfg := Config{RW: threeSiteRW(), Enriched: true}
	var recovered []*File
	for i := 0; i < 3; i++ {
		f, err := Open(net.Fabric, net.Reg, vstest.SiteName(i), vstest.FastOptions(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(f.Close)
		recovered = append(recovered, f)
	}
	waitAllNormal(t, recovered, 15*time.Second)
	for _, f := range recovered {
		_, content, _ := f.Read()
		if !bytes.Equal(content, []byte("persisted")) {
			t.Fatalf("recovered content = %q", content)
		}
	}
	// The classifier saw a creation problem somewhere.
	creations := 0
	for _, f := range recovered {
		creations += f.Stats().Classifications[sstate.Creation]
	}
	if creations == 0 {
		t.Error("no creation classification recorded after total failure")
	}
}

func TestJoinerTriggersTransferClassification(t *testing.T) {
	net, files := cluster(t, 106, 3, fiveSiteRW(), true)
	_ = files
	writeRetry(t, files[0], []byte("big state"), 5*time.Second)

	// A fourth replica joins fresh.
	f4, err := Open(net.Fabric, net.Reg, "d", vstest.FastOptions(), Config{RW: fiveSiteRW(), Enriched: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f4.Close)
	vstest.Eventually(t, 15*time.Second, "joiner reaches N", func() bool {
		return f4.Mode() == modes.Normal
	})
	_, content, _ := f4.Read()
	if !bytes.Equal(content, []byte("big state")) {
		t.Fatalf("joiner content = %q", content)
	}
	transfers := 0
	for _, f := range append(files, f4) {
		st := f.Stats()
		transfers += st.TransfersPulled
		if st.Classifications[sstate.Transfer] > 0 {
			transfers++ // classification seen
		}
	}
	if f4.Stats().TransfersPulled == 0 {
		t.Error("joiner did not pull state")
	}
}

func TestFlatModeAlsoReconciles(t *testing.T) {
	net, files := cluster(t, 107, 3, threeSiteRW(), false)
	writeRetry(t, files[0], []byte("flat world"), 5*time.Second)

	net.Fabric.SetPartitions([]string{"a", "b"}, []string{"c"})
	vstest.Eventually(t, 5*time.Second, "c in R-mode", func() bool {
		return files[2].Mode() == modes.Reduced
	})
	waitAllNormal(t, files[:2], 10*time.Second)
	writeRetry(t, files[0], []byte("flat update"), 5*time.Second)

	net.Fabric.Heal()
	waitAllNormal(t, files, 15*time.Second)
	for _, f := range files {
		f := f
		vstest.Eventually(t, 5*time.Second, "flat reconciliation", func() bool {
			_, c, _ := f.Read()
			return bytes.Equal(c, []byte("flat update"))
		})
	}
	// Flat mode must have used the announcement protocol (messages!) to
	// classify — the cost enriched views avoid.
	classified := 0
	for _, f := range files {
		for _, n := range f.Stats().Classifications {
			classified += n
		}
	}
	if classified == 0 {
		t.Error("flat mode recorded no classifications")
	}
}

func TestModeHistoryFollowsFigure1(t *testing.T) {
	net, files := cluster(t, 108, 3, threeSiteRW(), true)
	net.Fabric.SetPartitions([]string{"a", "b"}, []string{"c"})
	vstest.Eventually(t, 5*time.Second, "c fails to R", func() bool {
		return files[2].Mode() == modes.Reduced
	})
	net.Fabric.Heal()
	vstest.Eventually(t, 15*time.Second, "c repairs to N", func() bool {
		return files[2].Mode() == modes.Normal
	})
	h := files[2].ModeMachine().History()
	// Every step must be a legal Figure-1 edge.
	legal := map[[2]modes.Mode]map[modes.Transition]bool{
		{modes.Normal, modes.Reduced}:    {modes.Failure: true},
		{modes.Normal, modes.Settling}:   {modes.Reconfigure: true},
		{modes.Reduced, modes.Settling}:  {modes.Repair: true},
		{modes.Settling, modes.Reduced}:  {modes.Failure: true},
		{modes.Settling, modes.Settling}: {modes.Reconfigure: true},
		{modes.Settling, modes.Normal}:   {modes.Reconcile: true},
	}
	for _, st := range h {
		if !legal[[2]modes.Mode{st.From, st.To}][st.Label] {
			t.Fatalf("illegal Figure-1 step: %v -%v-> %v", st.From, st.Label, st.To)
		}
	}
	// The schedule exercised Failure, Repair, and Reconcile.
	counts := files[2].ModeMachine().Counts()
	for _, tr := range []modes.Transition{modes.Failure, modes.Repair, modes.Reconcile} {
		if counts[tr] == 0 {
			t.Errorf("transition %v never taken: %v", tr, counts)
		}
	}
}

func TestWriteErrorsWhenClosed(t *testing.T) {
	net := vstest.NewNet(t, 109)
	f, err := Open(net.Fabric, net.Reg, "a", vstest.FastOptions(), Config{RW: threeSiteRW(), Enriched: true})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := f.Write([]byte("x")); err != ErrClosed && err != ErrNotWritable {
		t.Fatalf("Write after close: %v", err)
	}
	f.Close() // idempotent
}

func TestReadOnSingletonIsReduced(t *testing.T) {
	net := vstest.NewNet(t, 110)
	f, err := Open(net.Fabric, net.Reg, "a", vstest.FastOptions(), Config{RW: threeSiteRW(), Enriched: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	vstest.Eventually(t, 3*time.Second, "singleton settles", func() bool {
		_, _, mode := f.Read()
		return mode == modes.Reduced
	})
	if err := f.Write([]byte("x")); err != ErrNotWritable {
		t.Fatalf("singleton write: %v", err)
	}
}

// TestNoAcknowledgedWriteLost is the object's headline invariant: once
// Write returns nil, the content survives any single-partition schedule.
func TestNoAcknowledgedWriteLost(t *testing.T) {
	net, files := cluster(t, 111, 5, fiveSiteRW(), true)
	acked := make(map[string]bool)
	for round := 0; round < 3; round++ {
		data := []byte(fmt.Sprintf("round-%d", round))
		writeRetry(t, files[round%5], data, 10*time.Second)
		acked[string(data)] = true

		// Partition and heal between rounds, waiting for membership to
		// actually react (a partition shorter than the suspicion timeout
		// is legitimately invisible to the protocol).
		if round == 1 {
			net.Fabric.SetPartitions([]string{"a", "b", "c"}, []string{"d", "e"})
			for _, f := range files[3:] {
				f := f
				vstest.Eventually(t, 10*time.Second, "minority drops to R", func() bool {
					return f.Mode() == modes.Reduced
				})
			}
			waitAllNormal(t, files[:3], 15*time.Second)
		}
		if round == 2 {
			net.Fabric.Heal()
			waitAllNormal(t, files, 20*time.Second)
		}
	}
	// Final content is the last acknowledged write, everywhere.
	for _, f := range files {
		f := f
		vstest.Eventually(t, 10*time.Second, "final convergence", func() bool {
			_, c, _ := f.Read()
			return bytes.Equal(c, []byte("round-2"))
		})
	}
}

func TestVersionsNeverDivergeAtSameVersion(t *testing.T) {
	// Two replicas reporting the same version must hold the same bytes
	// (single-copy semantics for writes).
	_, files := cluster(t, 112, 3, threeSiteRW(), true)
	writeRetry(t, files[0], []byte("unique"), 5*time.Second)
	time.Sleep(200 * time.Millisecond)
	type snap struct {
		v uint64
		c string
	}
	byVersion := make(map[uint64]string)
	for _, f := range files {
		v, c, _ := f.Read()
		if prev, ok := byVersion[v]; ok && prev != string(c) {
			t.Fatalf("version %d maps to %q and %q", v, prev, c)
		}
		byVersion[v] = string(c)
	}
	_ = snap{}
}

func TestConcurrentWritersSerializeThroughSequencer(t *testing.T) {
	// All three replicas write concurrently; the sequencer must produce
	// one total version order, so any two replicas reporting the same
	// version hold identical bytes, and the final state is one of the
	// acknowledged writes.
	_, files := cluster(t, 114, 3, threeSiteRW(), true)
	var wg sync.WaitGroup
	var acked sync.Map
	for i, f := range files {
		i, f := i, f
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				data := []byte(fmt.Sprintf("writer%d-round%d", i, round))
				deadline := time.Now().Add(10 * time.Second)
				for {
					if err := f.Write(data); err == nil {
						acked.Store(string(data), true)
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("write %q starved", data)
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond)

	versions := make(map[uint64]string)
	var final string
	for _, f := range files {
		v, c, _ := f.Read()
		if prev, ok := versions[v]; ok && prev != string(c) {
			t.Fatalf("version %d holds %q and %q", v, prev, c)
		}
		versions[v] = string(c)
		final = string(c)
	}
	if _, ok := acked.Load(final); !ok {
		t.Fatalf("final content %q was never acknowledged", final)
	}
	// All replicas converge to the same version.
	vstest.Eventually(t, 5*time.Second, "version convergence", func() bool {
		v0, _, _ := files[0].Read()
		for _, f := range files[1:] {
			v, _, _ := f.Read()
			if v != v0 {
				return false
			}
		}
		return true
	})
}

func TestProcessAccessor(t *testing.T) {
	net := vstest.NewNet(t, 113)
	f, err := Open(net.Fabric, net.Reg, "a", vstest.FastOptions(), Config{RW: threeSiteRW(), Enriched: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	if f.Process() == nil || f.Process().Site() != "a" {
		t.Fatal("Process accessor broken")
	}
	var _ *core.Process = f.Process()
}
